package latest

// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation section (regenerating the artifact and reporting its
// headline numbers as custom metrics) plus ablation benchmarks for the
// design decisions called out in DESIGN.md §4.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark executes a scaled-down run per iteration; use
// cmd/latest-bench for the full-size artifacts.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/asptree"
	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/experiments"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/hoeffding"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
)

// benchCfg scales the experiments down so a full -bench=. pass stays in
// minutes. The shapes survive the scaling; EXPERIMENTS.md records the
// full-size numbers.
func benchCfg() experiments.RunConfig {
	return experiments.RunConfig{Queries: 800, PretrainQueries: 200}
}

// benchTimeline runs a switch-timeline experiment per iteration.
func benchTimeline(b *testing.B, id string) {
	b.Helper()
	var acc float64
	var switches int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		tl := res.(*experiments.TimelineResult)
		acc = tl.ModuleAccuracy
		switches = len(tl.Switches)
	}
	b.ReportMetric(acc, "module-accuracy")
	b.ReportMetric(float64(switches), "switches")
}

func BenchmarkFig3(b *testing.B)  { benchTimeline(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchTimeline(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchTimeline(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchTimeline(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchTimeline(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchTimeline(b, "fig8") }
func BenchmarkFig12(b *testing.B) { benchTimeline(b, "fig12") }

func BenchmarkTable1(b *testing.B) {
	var maxOverhead float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Queries = 400
		res, err := experiments.Run("table1", cfg)
		if err != nil {
			b.Fatal(err)
		}
		maxOverhead = 0
		for _, row := range res.(*experiments.OverheadResult).Rows {
			if row.OverheadFactor > maxOverhead {
				maxOverhead = row.OverheadFactor
			}
		}
	}
	b.ReportMetric(maxOverhead, "max-index-overhead-x")
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		if _, err := experiments.Run("table2", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep runs a sweep experiment per iteration and reports the chosen
// estimator's accuracy at the last point.
func benchSweep(b *testing.B, id string) {
	b.Helper()
	var choiceAcc float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Queries, cfg.PretrainQueries = 400, 120
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sw := res.(*experiments.SweepResult)
		last := sw.Points[len(sw.Points)-1]
		choiceAcc = last.Accuracy[last.Choice]
	}
	b.ReportMetric(choiceAcc, "choice-accuracy")
}

func BenchmarkFig9(b *testing.B)  { benchSweep(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchSweep(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchSweep(b, "fig11") }
func BenchmarkFig13(b *testing.B) { benchSweep(b, "fig13") }

// BenchmarkAblationSlices sweeps the time-slice ring granularity of the
// windowed quadtree (DESIGN.md §4.1): fewer slices mean coarser expiry and
// worse window tracking; more slices mean more per-advance work.
func BenchmarkAblationSlices(b *testing.B) {
	for _, slices := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("slices=%d", slices), func(b *testing.B) {
			const (
				spanMS = 10_000
				horizn = 40 * spanMS
			)
			sliceDur := spanMS / slices
			var meanErr float64
			for i := 0; i < b.N; i++ {
				tr := asptree.New(geo.UnitSquare, asptree.Config{
					SplitThreshold: 64, Slices: slices,
				})
				rng := rand.New(rand.NewSource(1))
				// Poisson-ish arrivals at ~1/ms; probe the tree against the
				// exact continuous-time window mid-slice, where bucketed
				// expiry is most stale. Few slices ⇒ coarse expiry ⇒ higher
				// window error; many slices ⇒ tighter tracking at more
				// per-advance cost (the reported ns/op).
				var arrivals []int64
				head := 0
				var errSum float64
				samples := 0
				ts := int64(0)
				nextRotate := int64(sliceDur)
				for ts < horizn {
					ts += int64(rng.Intn(3)) // mean ~1ms
					for ts >= nextRotate {
						tr.AdvanceSlice()
						nextRotate += int64(sliceDur)
					}
					tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
					arrivals = append(arrivals, ts)
					if len(arrivals)%997 == 0 && ts > spanMS {
						for head < len(arrivals) && arrivals[head] <= ts-spanMS {
							head++
						}
						exact := len(arrivals) - head
						est := tr.EstimateRange(geo.UnitSquare)
						errSum += metrics.RelativeError(est, float64(exact))
						samples++
					}
				}
				meanErr = errSum / float64(samples)
			}
			b.ReportMetric(meanErr, "window-rel-err")
		})
	}
}

// BenchmarkAblationBeta sweeps the pre-fill earliness β (DESIGN.md §4.2):
// late pre-fill (β→1) means colder switch targets; early pre-fill means
// longer double maintenance.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{0.5, 0.8, 0.95} {
		b.Run(fmt.Sprintf("beta=%.2f", beta), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg()
				cfg.Workload, cfg.Dataset = "TwQW6", "Twitter"
				cfg.Beta = beta
				res, err := experiments.Run("fig4", cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.(*experiments.TimelineResult).ModuleAccuracy
			}
			b.ReportMetric(acc, "module-accuracy")
		})
	}
}

// BenchmarkAblationOpportunity compares the adaptor with and without the
// proactive opportunity trigger (DESIGN.md §4.5): without it, switches
// happen only on τ violations, so a strictly faster equal-accuracy
// estimator is never adopted (the paper's Fig. 5 scenario).
func BenchmarkAblationOpportunity(b *testing.B) {
	run := func(b *testing.B, margin float64) (switches int) {
		world := geo.UnitSquare
		oracle := stream.NewWindow(world, 10_000, 1024)
		m, err := core.New(core.Config{
			World: world, Span: 10_000,
			Estimators:        []string{estimator.NameH4096, estimator.NameRSH},
			Default:           estimator.NameRSH,
			PretrainQueries:   150,
			AccWindow:         60,
			OpportunityMargin: margin,
			Seed:              1,
			Refill: func(e estimator.Estimator) {
				oracle.Each(func(o *stream.Object) bool { e.Insert(o); return true })
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		ts := int64(0)
		feed := func(n int) {
			for j := 0; j < n; j++ {
				ts++
				o := stream.Object{ID: uint64(ts), Loc: geo.Pt(rng.Float64(), rng.Float64()), Timestamp: ts}
				oracle.Insert(o)
				m.Insert(&o)
			}
		}
		feed(10_000)
		for q := 0; q < 900; q++ {
			feed(15)
			// Pure spatial workload: H4096 dominates RSH on latency at
			// equal accuracy, the opportunity trigger's home turf.
			qu := stream.SpatialQ(geo.CenteredRect(geo.Pt(rng.Float64(), rng.Float64()), 0.2, 0.2), ts)
			m.Estimate(&qu)
			m.Observe(float64(oracle.Answer(&qu)))
		}
		return len(m.Switches())
	}
	b.Run("enabled", func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			s = run(b, 0) // 0 = default margin
		}
		b.ReportMetric(float64(s), "switches")
	})
	b.Run("disabled", func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			s = run(b, -1)
		}
		b.ReportMetric(float64(s), "switches")
	})
}

// BenchmarkAblationCooldown sweeps the anti-flapping cooldown
// (DESIGN.md §4.5): shorter cooldowns react faster but can thrash.
func BenchmarkAblationCooldown(b *testing.B) {
	for _, cd := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("cooldown=%d", cd), func(b *testing.B) {
			var switches int
			for i := 0; i < b.N; i++ {
				world := geo.UnitSquare
				oracle := stream.NewWindow(world, 10_000, 1024)
				m, err := core.New(core.Config{
					World: world, Span: 10_000,
					Estimators:      []string{estimator.NameH4096, estimator.NameRSL, estimator.NameRSH},
					Default:         estimator.NameRSH,
					PretrainQueries: 150,
					AccWindow:       60,
					CooldownQueries: cd,
					Seed:            1,
					Refill: func(e estimator.Estimator) {
						oracle.Each(func(o *stream.Object) bool { e.Insert(o); return true })
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(4))
				ts := int64(0)
				kw := func() []string { return []string{fmt.Sprintf("kw%d", rng.Intn(10))} }
				feed := func(n int) {
					for j := 0; j < n; j++ {
						ts++
						o := stream.Object{ID: uint64(ts), Loc: geo.Pt(rng.Float64(), rng.Float64()),
							Keywords: kw(), Timestamp: ts}
						oracle.Insert(o)
						m.Insert(&o)
					}
				}
				feed(10_000)
				// Alternate spatial and keyword regimes every 120 queries
				// to invite flapping.
				for q := 0; q < 960; q++ {
					feed(15)
					var qu stream.Query
					if (q/120)%2 == 0 {
						qu = stream.SpatialQ(geo.CenteredRect(geo.Pt(rng.Float64(), rng.Float64()), 0.15, 0.15), ts)
					} else {
						qu = stream.KeywordQ(kw(), ts)
					}
					m.Estimate(&qu)
					m.Observe(float64(oracle.Answer(&qu)))
				}
				switches = len(m.Switches())
			}
			b.ReportMetric(float64(switches), "switches")
		})
	}
}

// BenchmarkAblationGracePeriod sweeps the Hoeffding tree's grace period
// (DESIGN.md §4.4): smaller periods attempt splits more often (slower
// learning steps, earlier structure); larger ones delay adaptation.
func BenchmarkAblationGracePeriod(b *testing.B) {
	for _, grace := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("grace=%d", grace), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				tr := hoeffding.New(
					[]hoeffding.Attribute{
						{Name: "qtype", Kind: hoeffding.Nominal, NumValues: 3},
						{Name: "size", Kind: hoeffding.Numeric},
					},
					[]string{"a", "b", "c"},
					hoeffding.Config{GracePeriod: grace},
				)
				rng := rand.New(rand.NewSource(2))
				correct, total := 0, 0
				for n := 0; n < 30_000; n++ {
					qt := rng.Intn(3)
					size := rng.Float64()
					want := qt
					if qt == 1 && size > 0.5 {
						want = 2
					}
					x := []float64{float64(qt), size}
					if n > 15_000 { // prequential accuracy on the back half
						if tr.Predict(x) == want {
							correct++
						}
						total++
					}
					tr.Learn(x, want)
				}
				acc = float64(correct) / float64(total)
			}
			b.ReportMetric(acc, "prequential-accuracy")
		})
	}
}

// BenchmarkSystemFeed measures the public API's ingest hot path.
func BenchmarkSystemFeed(b *testing.B) {
	sys, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, time.Minute, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	kws := []string{"a", "b", "c", "d"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Feed(Object{
			ID:        uint64(i),
			Loc:       Pt(rng.Float64(), rng.Float64()),
			Keywords:  kws[:1+i%3],
			Timestamp: int64(i / 2),
		})
	}
}

// benchFill pre-generates n objects uniformly over the unit square.
func benchFill(n int, seed int64) []Object {
	rng := rand.New(rand.NewSource(seed))
	kws := []string{"a", "b", "c", "d"}
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID:        uint64(i),
			Loc:       Pt(rng.Float64(), rng.Float64()),
			Keywords:  kws[:1+i%3],
			Timestamp: int64(i / 2),
		}
	}
	return objs
}

// BenchmarkParallelFeed compares multi-producer ingest throughput of the
// single-lock ConcurrentSystem against the spatially-partitioned
// ShardedSystem. Run with -cpu to vary producer counts, e.g.
//
//	go test -bench ParallelFeed -cpu 1,2,4,8
//
// Producers feed pre-generated batches; on a multicore host the sharded
// variant scales with producers while the single lock serializes them.
func BenchmarkParallelFeed(b *testing.B) {
	world := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	const batchLen = 256
	objs := benchFill(1<<16, 1)

	b.Run("concurrent", func(b *testing.B) {
		cs, err := NewConcurrent(world, time.Minute, WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			off := 0
			for pb.Next() {
				cs.FeedBatch(objs[off : off+batchLen])
				off = (off + batchLen) % (len(objs) - batchLen)
			}
		})
	})

	b.Run("sharded", func(b *testing.B) {
		ss, err := NewSharded(world, time.Minute, WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		defer ss.Close()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			off := 0
			for pb.Next() {
				ss.FeedBatch(objs[off : off+batchLen])
				off = (off + batchLen) % (len(objs) - batchLen)
			}
		})
	})
}

// BenchmarkSystemEstimate measures the public API's query hot path on the
// default estimator.
func BenchmarkSystemEstimate(b *testing.B) {
	sys, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, time.Minute,
		WithPretrainQueries(50), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 60_000; i++ {
		ts++
		sys.Feed(Object{ID: uint64(i), Loc: Pt(rng.Float64(), rng.Float64()),
			Keywords: []string{fmt.Sprintf("kw%d", i%20)}, Timestamp: ts})
	}
	for i := 0; i < 60; i++ {
		q := HybridQuery(CenteredRect(Pt(0.5, 0.5), 0.2, 0.2), []string{"kw3"}, ts)
		sys.EstimateAndExecute(&q)
	}
	q := HybridQuery(CenteredRect(Pt(0.5, 0.5), 0.2, 0.2), []string{"kw3"}, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Estimate(&q)
		sys.ObserveActual(120)
	}
}
