package latest

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/telemetry"
)

// chaos_test.go drives the engines with deterministic fault injection: the
// guard must contain every injected panic, the breaker must quarantine the
// faulting estimator, the fallback chain must keep every served answer
// finite, and probation must re-admit the estimator once the faults stop.

// chaosWorld is the unit square used throughout the chaos suite.
var chaosWorld = Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

// warmToIncremental feeds and queries until phase reports incremental —
// every shard of a sharded engine must individually finish pre-training,
// and a query only pre-trains the shards its range intersects.
func warmToIncremental(t *testing.T, feed func(Object), query func(*Query), phase func() Phase, rng *rand.Rand, ts *int64) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		*ts++
		feed(Object{
			ID:        uint64(*ts),
			Loc:       Pt(rng.Float64(), rng.Float64()),
			Keywords:  []string{fmt.Sprintf("kw%d", rng.Intn(20))},
			Timestamp: *ts,
		})
	}
	for i := 0; i < 2000 && phase() != PhaseIncremental; i++ {
		*ts++
		q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, *ts)
		query(&q)
	}
	if got := phase(); got != PhaseIncremental {
		t.Fatalf("engine never reached the incremental phase (still %v)", got)
	}
}

// TestChaosShardedPanicInjection is the headline resilience scenario: the
// default active estimator (RSH) panics on 100% of its Estimate calls, yet
// the sharded engine must serve 10k queries with zero escaped panics and
// only finite answers, quarantine the estimator (visible in the decision
// trace), and re-admit it once the injector is disabled.
func TestChaosShardedPanicInjection(t *testing.T) {
	inj := NewFaultInjector(7, FaultRule{
		Estimator:   EstimatorRSH,
		Op:          OpEstimate,
		Kind:        InjectPanic,
		Probability: 1,
	})
	inj.SetEnabled(false) // healthy until the fleet finishes pre-training

	sys, err := NewSharded(chaosWorld, 10*time.Second,
		WithShards(2),
		WithSeed(11),
		WithPretrainQueries(40),
		WithAccWindow(30),
		WithSynchronousPrefill(),
		WithFaultInjector(inj),
		WithBreaker(BreakerConfig{Window: 16, Threshold: 4, Cooldown: 40, ProbeSuccesses: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	rng := rand.New(rand.NewSource(13))
	var ts int64
	warmToIncremental(t,
		func(o Object) { sys.Feed(o) },
		func(q *Query) { sys.EstimateAndExecute(q) },
		sys.Phase, rng, &ts)

	// Chaos phase: every RSH Estimate call panics. A concurrent feeder
	// hammers ingest at the same time so the quarantine machinery is
	// exercised under real lock contention (this test runs under -race in
	// the chaos CI job).
	inj.SetEnabled(true)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	feedTS := ts
	go func() {
		defer wg.Done()
		frng := rand.New(rand.NewSource(17))
		for !stop.Load() {
			feedTS++
			sys.Feed(Object{
				ID:        uint64(feedTS),
				Loc:       Pt(frng.Float64(), frng.Float64()),
				Keywords:  []string{fmt.Sprintf("kw%d", frng.Intn(20))},
				Timestamp: feedTS,
			})
		}
	}()

	const chaosQueries = 10_000
	for i := 0; i < chaosQueries; i++ {
		ts++
		q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		est, _ := sys.EstimateAndExecute(&q)
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			t.Fatalf("query %d: non-finite or negative estimate %v under injection", i, est)
		}
	}
	stop.Store(true)
	wg.Wait()
	ts = feedTS + 1

	st := sys.PerShardStats()
	rsh := findHealth(t, st.Merged.Resilience, EstimatorRSH)
	if rsh.Panics == 0 {
		t.Error("no contained panics recorded for RSH")
	}
	if rsh.Quarantines == 0 {
		t.Error("RSH was never quarantined despite 100% Estimate panics")
	}
	quarantineTraced := false
	for _, d := range st.Merged.Decisions {
		if d.Reason == "quarantine" && d.From == EstimatorRSH {
			quarantineTraced = true
			break
		}
	}
	if !quarantineTraced {
		t.Error("no quarantine decision in the merged switch trace")
	}
	for i, sh := range st.Shards {
		for _, name := range []string{EstimatorRSH} {
			h := findHealth(t, sh.Core.Resilience, name)
			if h.State == "closed" && h.Quarantines == 0 && sh.Core.IncrementalSeen > 100 {
				t.Errorf("shard %d: RSH still closed with zero trips after sustained injection", i)
			}
		}
	}

	// Recovery phase: faults stop; cooldown elapses, probes succeed, the
	// breaker re-admits RSH into the candidate pool.
	inj.SetEnabled(false)
	readmitted := false
	for i := 0; i < 4000 && !readmitted; i++ {
		ts++
		q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		est, _ := sys.EstimateAndExecute(&q)
		if math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("non-finite estimate %v during recovery", est)
		}
		if i%50 == 0 {
			readmitted = findHealth(t, sys.Stats().Resilience, EstimatorRSH).Readmissions > 0
		}
	}
	if !readmitted {
		final := findHealth(t, sys.Stats().Resilience, EstimatorRSH)
		t.Fatalf("RSH never re-admitted after injector disabled (state %q, quarantines %d)",
			final.State, final.Quarantines)
	}
}

// TestChaosDurableDegradedServing layers the two fault planes the issue's
// acceptance run demands: 100% RSH estimator panics AND 100% WAL append
// failures, live at once under -race, while 10k queries and a concurrent
// feeder hammer a DurableEngine. Serving must never notice — every answer
// finite, zero errors — while the durability state machine oscillates
// healthy→degraded (append fails) →healthy (background repair snapshot)
// and finally settles healthy once the faults stop. The transition must be
// visible where operators look: Health(), and latest_durable_state in the
// prom exposition.
func TestChaosDurableDegradedServing(t *testing.T) {
	inj := NewFaultInjector(53, FaultRule{
		Estimator:   EstimatorRSH,
		Op:          OpEstimate,
		Kind:        InjectPanic,
		Probability: 1,
	})
	inj.SetEnabled(false)
	fstore := persist.NewFaultStore(NewMemStore(),
		persist.FaultRule{Op: persist.FaultAppend}) // Count 0: every append fails while enabled
	fstore.SetEnabled(false)

	eng, err := NewConcurrent(chaosWorld, 10*time.Second,
		WithSeed(59),
		WithPretrainQueries(40),
		WithAccWindow(30),
		WithFaultInjector(inj),
		WithBreaker(BreakerConfig{Window: 16, Threshold: 4, Cooldown: 40, ProbeSuccesses: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	dur, err := NewDurable(eng, fstore, DurableConfig{
		WALSyncEvery: 1,
		// Fast repairs so the run exercises many full degrade→repair cycles,
		// not one long outage.
		RepairBackoff:    time.Millisecond,
		RepairBackoffMax: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Shutdown(context.Background())

	rng := rand.New(rand.NewSource(61))
	var ts int64
	warmToIncremental(t,
		func(o Object) { dur.Feed(o) },
		func(q *Query) { dur.EstimateAndExecute(q) },
		eng.Phase, rng, &ts)

	inj.SetEnabled(true)
	fstore.SetEnabled(true)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	feedTS := ts
	go func() {
		defer wg.Done()
		frng := rand.New(rand.NewSource(67))
		for !stop.Load() {
			feedTS++
			dur.Feed(Object{
				ID:        uint64(feedTS),
				Loc:       Pt(frng.Float64(), frng.Float64()),
				Keywords:  []string{fmt.Sprintf("kw%d", frng.Intn(20))},
				Timestamp: feedTS,
			})
		}
	}()

	sawDegradedProm := false
	const chaosQueries = 10_000
	for i := 0; i < chaosQueries; i++ {
		ts++
		q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		est, _ := dur.EstimateAndExecute(&q)
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			t.Fatalf("query %d: non-finite or negative estimate %v under layered injection", i, est)
		}
		// Catch the machine degraded and prove the prom exposition says so.
		// The repair loop can re-arm between the Health probe and the
		// render, so keep trying — with every append failing, degraded
		// windows recur throughout the run.
		if !sawDegradedProm && i%16 == 0 && dur.Health().State == DurableDegraded {
			var b strings.Builder
			telemetry.WriteProm(&b, dur.TelemetrySnapshot())
			sawDegradedProm = strings.Contains(b.String(), "latest_durable_state 1")
		}
	}
	stop.Store(true)
	wg.Wait()

	if !sawDegradedProm {
		t.Error("latest_durable_state never rendered 1 while degraded")
	}

	// Faults off: the background repair loop must settle the machine back
	// to healthy on its own — no manual RepairNow.
	inj.SetEnabled(false)
	fstore.SetEnabled(false)
	deadline := time.Now().Add(10 * time.Second)
	for !dur.Health().Healthy() {
		if time.Now().After(deadline) {
			t.Fatalf("engine never re-armed after faults stopped: %+v", dur.Health())
		}
		time.Sleep(time.Millisecond)
	}

	h := dur.Health()
	if h.Degradations == 0 || h.Repairs == 0 {
		t.Fatalf("no full degrade→repair cycle observed: %+v", h)
	}
	if h.DroppedAppends == 0 || h.WALErrors == 0 {
		t.Fatalf("append faults left no trace: %+v", h)
	}
	// Appends must flow again on the post-repair generation.
	before := dur.WALAppends()
	ts++
	dur.Feed(Object{ID: uint64(ts), Loc: Pt(0.5, 0.5), Keywords: []string{"kw1"}, Timestamp: ts})
	if dur.WALAppends() != before+1 {
		t.Fatalf("WAL appends did not resume after repair: %d -> %d", before, dur.WALAppends())
	}
	var b strings.Builder
	telemetry.WriteProm(&b, dur.TelemetrySnapshot())
	out := b.String()
	if !strings.Contains(out, "latest_durable_state 0") {
		t.Error("final exposition does not report latest_durable_state 0")
	}
	if !strings.Contains(out, "latest_durable_repairs_total") {
		t.Error("final exposition missing latest_durable_repairs_total")
	}
}

// findHealth pulls one estimator's health row out of a ResilienceStats.
func findHealth(t *testing.T, r ResilienceStats, name string) EstimatorHealth {
	t.Helper()
	for _, h := range r.Estimators {
		if h.Estimator == name {
			return h
		}
	}
	t.Fatalf("estimator %q missing from resilience stats %+v", name, r)
	return EstimatorHealth{}
}

// TestChaosValueAndLatencyInjection exercises the non-panic fault kinds on
// the monolithic System: NaN and garbage estimates must be sanitized (never
// served), and the per-call deadline must convert injected latency into a
// contained fault.
func TestChaosValueAndLatencyInjection(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind InjectKind
	}{
		{"nan", InjectNaN},
		{"garbage", InjectGarbage},
		{"latency", InjectLatency},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := NewFaultInjector(23, FaultRule{
				Estimator:   EstimatorRSH,
				Op:          OpEstimate,
				Kind:        tc.kind,
				Probability: 1,
			})
			inj.SetEnabled(false)
			sys, err := New(chaosWorld, 10*time.Second,
				WithSeed(5),
				WithPretrainQueries(40),
				WithAccWindow(30),
				WithFaultInjector(inj),
				WithBreaker(BreakerConfig{Window: 16, Threshold: 4, Cooldown: 1_000_000, Deadline: 50 * time.Millisecond}),
			)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(29))
			var ts int64
			warmToIncremental(t,
				func(o Object) { sys.Feed(o) },
				func(q *Query) { sys.EstimateAndExecute(q) },
				sys.Phase, rng, &ts)

			inj.SetEnabled(true)
			for i := 0; i < 300; i++ {
				ts++
				q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
					[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
				est, _ := sys.EstimateAndExecute(&q)
				if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
					t.Fatalf("query %d: served un-sanitized estimate %v", i, est)
				}
			}
			h := findHealth(t, sys.Stats().Resilience, EstimatorRSH)
			if h.Faults() == 0 {
				t.Errorf("no faults recorded for RSH under %s injection", tc.name)
			}
			if h.Quarantines == 0 {
				t.Errorf("RSH not quarantined under %s injection", tc.name)
			}
		})
	}
}

// TestChaosFallbackOracle drives every estimator into quarantine at once:
// with no healthy runner-up the engine must fall back to the exact window
// oracle (or zero) and keep answering.
func TestChaosFallbackOracle(t *testing.T) {
	inj := NewFaultInjector(31, FaultRule{
		Op:          OpEstimate, // Estimator "" matches the whole fleet
		Kind:        InjectPanic,
		Probability: 1,
	})
	inj.SetEnabled(false)
	sys, err := New(chaosWorld, 10*time.Second,
		WithSeed(3),
		WithPretrainQueries(40),
		WithAccWindow(30),
		WithFaultInjector(inj),
		WithBreaker(BreakerConfig{Window: 8, Threshold: 3, Cooldown: 1_000_000}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	var ts int64
	warmToIncremental(t,
		func(o Object) { sys.Feed(o) },
		func(q *Query) { sys.EstimateAndExecute(q) },
		sys.Phase, rng, &ts)

	inj.SetEnabled(true)
	for i := 0; i < 400; i++ {
		ts++
		q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		est, actual := sys.EstimateAndExecute(&q)
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			t.Fatalf("query %d: non-finite estimate %v with whole fleet faulting", i, est)
		}
		_ = actual
	}
	st := sys.Stats()
	if st.Resilience.Quarantined() == 0 {
		t.Fatal("no estimator quarantined with the whole fleet panicking")
	}
	if st.Resilience.FallbackOracle == 0 && st.Resilience.FallbackZero == 0 && st.Resilience.FallbackRunnerUp == 0 {
		t.Errorf("no fallback answers recorded: %+v", st.Resilience)
	}
	if len(sys.QuarantinedEstimators()) == 0 {
		t.Error("QuarantinedEstimators empty with the whole fleet faulting")
	}
}

// TestQuarantineCountersSurfaceInGauges pins the telemetry plumbing: fault,
// quarantine and fallback counters produced under injection must appear in
// the merged sharded stats (the same path /metrics and /statusz render).
func TestQuarantineCountersSurfaceInGauges(t *testing.T) {
	inj := NewFaultInjector(41, FaultRule{
		Estimator:   EstimatorRSH,
		Op:          OpEstimate,
		Kind:        InjectPanic,
		Probability: 1,
	})
	inj.SetEnabled(false)
	sys, err := NewSharded(chaosWorld, 10*time.Second,
		WithShards(2),
		WithSeed(43),
		WithPretrainQueries(40),
		WithAccWindow(30),
		WithSynchronousPrefill(),
		WithFaultInjector(inj),
		WithBreaker(BreakerConfig{Window: 8, Threshold: 3, Cooldown: 1_000_000}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(47))
	var ts int64
	warmToIncremental(t,
		func(o Object) { sys.Feed(o) },
		func(q *Query) { sys.EstimateAndExecute(q) },
		sys.Phase, rng, &ts)
	inj.SetEnabled(true)
	for i := 0; i < 500; i++ {
		ts++
		q := HybridQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.8, 0.8),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		sys.EstimateAndExecute(&q)
	}

	st := sys.PerShardStats()
	merged := findHealth(t, st.Merged.Resilience, EstimatorRSH)
	var perShard uint64
	for _, sh := range st.Shards {
		perShard += findHealth(t, sh.Core.Resilience, EstimatorRSH).Panics
	}
	if merged.Panics != perShard {
		t.Errorf("merged panics %d != sum of per-shard panics %d", merged.Panics, perShard)
	}
	if merged.Panics == 0 {
		t.Error("no panics surfaced in merged stats")
	}
	snap := sys.telemetrySnapshot()
	if snap.Resilience.Faults() == 0 {
		t.Error("telemetry snapshot carries no faults")
	}
	found := false
	for _, sh := range snap.Shards {
		if findHealth(t, sh.Resilience, EstimatorRSH).Panics > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no per-shard telemetry sample carries RSH panics")
	}
}
