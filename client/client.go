// Package client is the Go client for latestd's binary wire protocol. A
// Client owns one TCP connection (redialed on demand with exponential
// backoff and jitter), multiplexes concurrent callers over it by request
// id — so callers pipeline naturally — and converts the server's typed
// error frames into *ServerError values whose Temporary method tells the
// caller whether a retry is safe.
//
// Refusals the server makes before touching the engine (backpressure,
// draining) are retried automatically, honoring the server's retry-after
// hint, up to the configured attempt budget. Connection failures before a
// request is written are retried the same way; failures after the write
// are returned to the caller, because the server may already have applied
// the request.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/wire"
)

// ErrClosed is returned for requests issued after Close.
var ErrClosed = errors.New("client: closed")

// ServerError is a typed refusal or failure frame from the server.
type ServerError struct {
	// Code is the wire error code; Name is its string form
	// ("backpressure", "draining", "malformed", ...).
	Code uint16
	Name string
	// RetryAfter is the server's hint for when a retryable refusal is
	// worth reissuing; zero when the server offered none.
	RetryAfter time.Duration
	Msg        string
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (retry after %s): %s", e.Name, e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("server: %s: %s", e.Name, e.Msg)
}

// Temporary reports whether the server refused the request before any
// engine state changed, making a retry safe.
func (e *ServerError) Temporary() bool {
	return wire.Code(e.Code).Retryable()
}

// IsDraining reports whether err is a server-draining refusal — the signal
// to stop sending to this instance.
func IsDraining(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && wire.Code(se.Code) == wire.CodeDraining
}

// NotOwnerError is a clustered node's refusal of a request whose objects or
// query footprint it does not own under its partition map. Epoch is the
// node's map version; a router holding an older epoch refetches the map and
// retries transparently, so callers normally never see this error unless
// they talk to a clustered node directly.
type NotOwnerError struct {
	Epoch uint64
	Msg   string
}

// Error implements error.
func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("server: not owner (map epoch %d): %s", e.Epoch, e.Msg)
}

// NotOwnerEpoch reports the refusing node's map epoch; the cluster router
// matches refusals by this method.
func (e *NotOwnerError) NotOwnerEpoch() uint64 { return e.Epoch }

// Options tune a Client. The zero value is usable.
type Options struct {
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds each request attempt when the caller's
	// context has no deadline, and is sent to the server as the request's
	// deadline budget. Default 10s.
	RequestTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the exponential reconnect/retry
	// backoff (with jitter). Defaults 50ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts is the total attempt budget per request for retryable
	// failures (dial errors, backpressure, draining). Default 4.
	MaxAttempts int

	// Trace enables end-to-end request tracing: every attempt carries a
	// freshly minted trace ID in the wire header extension
	// (wire.FlagTrace), the client records its own span timeline (encode,
	// write, wait, decode) into a sampled buffer readable via Traces, and
	// a tracing server attaches its server-side spans to the same ID in
	// its /debug/requests buffer.
	Trace bool
	// TraceDepth sizes the client trace ring; TraceEvery is the sampling
	// stride (1 retains every traced request). Defaults
	// telemetry.DefaultTraceBufferDepth / DefaultTraceSampleEvery.
	TraceDepth int
	TraceEvery int

	// sleep and jitter are test seams: sleep waits out a backoff delay
	// (respecting ctx), jitter yields a value in [0,1] scaling each
	// delay. Production code leaves them nil.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

func (o *Options) withDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.sleep == nil {
		o.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if o.jitter == nil {
		o.jitter = rand.Float64
	}
}

// backoff returns the delay before attempt n (0-based): exponential from
// BaseBackoff, capped at MaxBackoff, scaled into [50%,100%] by jitter so a
// reconnecting fleet does not thunder in lockstep.
func (o *Options) backoff(n int) time.Duration {
	d := o.BaseBackoff << uint(n)
	if d <= 0 || d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	return d/2 + time.Duration(o.jitter()*float64(d/2))
}

// result is one response delivered to a waiting caller.
type result struct {
	h       wire.Header
	payload []byte // copied out of the reader's buffer
	err     error
}

// Client is a connection to one latestd instance. Safe for concurrent use;
// concurrent requests pipeline over the single connection.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex // guards nc lifecycle and writes
	nc     net.Conn
	closed bool

	pmu     sync.Mutex
	pending map[uint64]chan result

	nextID    atomic.Uint64
	dialFails int // consecutive dial failures, for backoff pacing

	clusterEpoch atomic.Uint64 // last map epoch seen in a pong; 0 = none

	traces *telemetry.TraceBuffer // nil unless Options.Trace
}

// Dial creates a Client for addr. The first connection is established
// lazily by the first request, so Dial itself cannot fail on an
// unreachable server — the request path reports that with full retry
// semantics instead.
func Dial(addr string, opts Options) *Client {
	opts.withDefaults()
	c := &Client{addr: addr, opts: opts, pending: make(map[uint64]chan result)}
	if opts.Trace {
		c.traces = telemetry.NewTraceBuffer(opts.TraceDepth, opts.TraceEvery)
	}
	return c
}

// Traces returns the client-side sampled trace buffer, nil unless
// Options.Trace is set. Trace IDs here match the server's
// /debug/requests entries for the same requests.
func (c *Client) Traces() *telemetry.TraceBuffer { return c.traces }

// Close tears down the connection; in-flight requests fail with ErrClosed
// semantics (a connection-closed error).
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	nc := c.nc
	c.nc = nil
	c.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	return nil
}

// ensureConn dials if the connection is down. Callers hold no locks.
func (c *Client) ensureConn(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.nc != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		c.dialFails++
		return &dialError{err}
	}
	c.dialFails = 0
	c.nc = nc
	go c.readLoop(nc)
	return nil
}

// dialError marks connection-establishment failures, which are always
// safe to retry.
type dialError struct{ err error }

func (e *dialError) Error() string { return "client: dial: " + e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

// readLoop routes response frames to waiting callers by request id. On any
// read error it fails every pending request and marks the connection dead;
// the next request redials.
func (c *Client) readLoop(nc net.Conn) {
	fr := wire.NewFrameReader(bufio.NewReaderSize(nc, 64<<10), 0)
	var cause error
	for {
		h, payload, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				cause = errors.New("client: connection closed by server")
			} else {
				cause = fmt.Errorf("client: read: %w", err)
			}
			break
		}
		c.pmu.Lock()
		ch, ok := c.pending[h.ID]
		delete(c.pending, h.ID)
		c.pmu.Unlock()
		if ok {
			ch <- result{h: h, payload: append([]byte(nil), payload...)}
		}
	}
	c.mu.Lock()
	if c.nc == nc {
		c.nc = nil
	}
	c.mu.Unlock()
	nc.Close()
	c.pmu.Lock()
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- result{err: cause}
	}
	c.pmu.Unlock()
}

// send writes one frame, registering the pending id first so a fast
// response cannot race the registration.
func (c *Client) send(nc net.Conn, id uint64, frame []byte) (chan result, error) {
	ch := make(chan result, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()
	c.mu.Lock()
	if c.nc != nc {
		c.mu.Unlock()
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, errors.New("client: connection died before write")
	}
	_, err := nc.Write(frame)
	c.mu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, fmt.Errorf("client: write: %w", err)
	}
	return ch, nil
}

// roundTrip runs one request with retry semantics: dial failures and
// retryable server refusals are retried (honoring retry-after hints) up to
// MaxAttempts; anything after a successful write is returned as-is.
//
// The returned trace (nil unless tracing is on and the attempt was
// sampled) has recorded encode/write/wait spans; the caller records the
// decode span and finishes it.
func (c *Client) roundTrip(ctx context.Context, op string, build func(buf []byte, id, traceID uint64, deadlineMS uint32) []byte, want wire.Type) (result, *telemetry.ActiveTrace, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.opts.backoff(c.retryDelayBase(attempt - 1))
			if se := (*ServerError)(nil); errors.As(lastErr, &se) && se.RetryAfter > 0 {
				delay = se.RetryAfter
			}
			if err := c.opts.sleep(ctx, delay); err != nil {
				return result{}, nil, err
			}
		}
		res, tr, err := c.tryOnce(ctx, op, build, want)
		if err == nil {
			return res, tr, nil
		}
		lastErr = err
		if !retryable(err) {
			return result{}, nil, err
		}
	}
	return result{}, nil, fmt.Errorf("client: gave up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
}

// retryDelayBase picks the exponent for backoff: consecutive dial failures
// dominate the attempt number so a dead server backs off steadily even
// across separate requests.
func (c *Client) retryDelayBase(attempt int) int {
	c.mu.Lock()
	f := c.dialFails
	c.mu.Unlock()
	if f > attempt+1 {
		return f - 1
	}
	return attempt
}

func retryable(err error) bool {
	var de *dialError
	if errors.As(err, &de) {
		return true
	}
	var se *ServerError
	return errors.As(err, &se) && se.Temporary()
}

func (c *Client) tryOnce(ctx context.Context, op string, build func(buf []byte, id, traceID uint64, deadlineMS uint32) []byte, want wire.Type) (result, *telemetry.ActiveTrace, error) {
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	if err := c.ensureConn(ctx); err != nil {
		return result{}, nil, err
	}
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	if nc == nil {
		return result{}, nil, &dialError{errors.New("connection lost")}
	}

	var deadlineMS uint32
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			return result{}, nil, context.DeadlineExceeded
		}
		if ms > 1<<31 {
			ms = 1 << 31
		}
		deadlineMS = uint32(ms)
	}

	// Each attempt carries a fresh trace ID (a retried request is a new
	// wire exchange); zero when tracing is off, which builds byte-identical
	// untraced frames.
	var traceID uint64
	var tr *telemetry.ActiveTrace
	if c.opts.Trace {
		tid := telemetry.NewTraceID()
		traceID = uint64(tid)
		tr = c.traces.Start(op, tid)
	}

	id := c.nextID.Add(1)
	buf := wire.GetBuf()
	encStart := time.Now()
	*buf = build(*buf, id, traceID, deadlineMS)
	tr.AddSpan("encode", encStart)
	writeStart := time.Now()
	ch, err := c.send(nc, id, *buf)
	wire.PutBuf(buf)
	if err != nil {
		// The write failed; the kernel may still have delivered bytes, so
		// treat it as non-retryable unless nothing could have been sent.
		tr.SetError("write_failed")
		tr.Finish()
		return result{}, nil, err
	}
	tr.AddSpan("write", writeStart)
	waitStart := time.Now()
	select {
	case res := <-ch:
		tr.AddSpan("wait", waitStart)
		if res.err != nil {
			tr.SetError("conn_lost")
			tr.Finish()
			return result{}, nil, res.err
		}
		if res.h.Type == wire.TError {
			re, derr := wire.DecodeError(res.payload)
			if derr != nil {
				tr.SetError("undecodable_error")
				tr.Finish()
				return result{}, nil, fmt.Errorf("client: undecodable error frame: %w", derr)
			}
			tr.SetError(re.Code.String())
			tr.Finish()
			return result{}, nil, &ServerError{
				Code:       uint16(re.Code),
				Name:       re.Code.String(),
				RetryAfter: re.RetryAfter,
				Msg:        re.Msg,
			}
		}
		if res.h.Type == wire.TErrNotOwner {
			no, derr := wire.DecodeNotOwner(res.payload)
			if derr != nil {
				tr.SetError("undecodable_error")
				tr.Finish()
				return result{}, nil, fmt.Errorf("client: undecodable not-owner frame: %w", derr)
			}
			tr.SetError("not_owner")
			tr.Finish()
			return result{}, nil, &NotOwnerError{Epoch: no.Epoch, Msg: no.Msg}
		}
		if res.h.Type != want {
			tr.SetError("unexpected_type")
			tr.Finish()
			return result{}, nil, fmt.Errorf("client: expected %v response, got %v", want, res.h.Type)
		}
		return res, tr, nil
	case <-ctx.Done():
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		tr.SetError("context")
		tr.Finish()
		return result{}, nil, ctx.Err()
	}
}

// finishDecode closes a request trace around its payload decode stage.
func finishDecode(tr *telemetry.ActiveTrace, decStart time.Time) {
	tr.AddSpan("decode", decStart)
	tr.Finish()
}

// Ping round-trips a no-op frame. A clustered server's pong carries its
// partition-map epoch, readable afterwards via ClusterEpoch.
func (c *Client) Ping(ctx context.Context) error {
	res, tr, err := c.roundTrip(ctx, "ping", func(buf []byte, id, traceID uint64, _ uint32) []byte {
		return wire.AppendPingTraced(buf, id, traceID)
	}, wire.TPong)
	if err != nil {
		tr.Finish()
		return err
	}
	decStart := time.Now()
	epoch, has, derr := wire.DecodePong(res.payload)
	finishDecode(tr, decStart)
	if derr != nil {
		return derr
	}
	if has {
		c.clusterEpoch.Store(epoch)
	}
	return nil
}

// ClusterEpoch returns the partition-map epoch the server last reported in
// a pong, or 0 when the server is not clustered (or was never pinged).
func (c *Client) ClusterEpoch() uint64 { return c.clusterEpoch.Load() }

// FetchMap retrieves the server's current encoded partition map. Servers
// running without a cluster map refuse with CodeUnknownType.
func (c *Client) FetchMap(ctx context.Context) ([]byte, error) {
	res, tr, err := c.roundTrip(ctx, "map_fetch", func(buf []byte, id, traceID uint64, _ uint32) []byte {
		return wire.AppendMapFetchTraced(buf, id, traceID)
	}, wire.TMapResult)
	if err != nil {
		return nil, err
	}
	decStart := time.Now()
	raw, err := wire.DecodeMapResult(res.payload)
	finishDecode(tr, decStart)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), raw...), nil
}

// FeedBatch ingests a batch of stream objects, returning the accepted
// count from the server's ack.
func (c *Client) FeedBatch(ctx context.Context, objs []latest.Object) (uint32, error) {
	res, tr, err := c.roundTrip(ctx, "feed", func(buf []byte, id, traceID uint64, _ uint32) []byte {
		return wire.AppendFeedBatchTraced(buf, id, traceID, objs)
	}, wire.TAck)
	if err != nil {
		return 0, err
	}
	decStart := time.Now()
	n, err := wire.DecodeAck(res.payload)
	finishDecode(tr, decStart)
	return n, err
}

// Estimate answers one query approximately; the server closes the
// accuracy feedback loop with its own exact window answer.
func (c *Client) Estimate(ctx context.Context, q latest.Query) (float64, error) {
	res, tr, err := c.roundTrip(ctx, "estimate", func(buf []byte, id, traceID uint64, deadlineMS uint32) []byte {
		return wire.AppendEstimateTraced(buf, id, traceID, deadlineMS, &q)
	}, wire.TEstimateResult)
	if err != nil {
		return 0, err
	}
	decStart := time.Now()
	est, err := wire.DecodeEstimateResult(res.payload)
	finishDecode(tr, decStart)
	return est, err
}

// QueryBatch runs a batch of full estimate+execute cycles, returning
// parallel estimate and exact-count slices.
func (c *Client) QueryBatch(ctx context.Context, qs []latest.Query) ([]float64, []int, error) {
	res, tr, err := c.roundTrip(ctx, "query", func(buf []byte, id, traceID uint64, deadlineMS uint32) []byte {
		return wire.AppendQueryBatchTraced(buf, id, traceID, deadlineMS, qs)
	}, wire.TQueryBatchResult)
	if err != nil {
		return nil, nil, err
	}
	decStart := time.Now()
	ests, acts, err := wire.DecodeQueryBatchResult(res.payload, nil, nil)
	finishDecode(tr, decStart)
	return ests, acts, err
}
