package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/wire"
)

// fakeListener is a scripted server: each accepted connection is handed to
// the handler with its 0-based index, so tests choose per-connection
// behavior (answer, refuse, hang, drop).
type fakeListener struct {
	t       *testing.T
	ln      net.Listener
	accepts atomic.Int32
	wg      sync.WaitGroup
}

func newFakeListener(t *testing.T, handler func(nc net.Conn, index int)) *fakeListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeListener{t: t, ln: ln}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			idx := int(f.accepts.Add(1)) - 1
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				defer nc.Close()
				handler(nc, idx)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		f.wg.Wait()
	})
	return f
}

func (f *fakeListener) addr() string { return f.ln.Addr().String() }

// echoPong answers every request frame with a pong carrying its id.
func echoPong(nc net.Conn, _ int) {
	fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
	for {
		h, _, err := fr.Next()
		if err != nil {
			return
		}
		nc.Write(wire.AppendPong(nil, h.ID))
	}
}

// recorder wires deterministic seams into Options: jitter pinned to 1
// (delays become exactly base<<n) and sleeps recorded instead of slept.
func recorder(opts Options) (Options, *[]time.Duration) {
	sleeps := &[]time.Duration{}
	opts.jitter = func() float64 { return 1 }
	opts.sleep = func(ctx context.Context, d time.Duration) error {
		*sleeps = append(*sleeps, d)
		return ctx.Err()
	}
	return opts, sleeps
}

// TestReconnectBackoffCadence: against a dead address the client must
// space its dial attempts exponentially — base, 2·base, 4·base with
// jitter pinned — and give up after MaxAttempts with the dial error.
func TestReconnectBackoffCadence(t *testing.T) {
	// Grab an address that refuses connections: listen, then close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	opts, sleeps := recorder(Options{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		MaxAttempts: 4,
	})
	c := Dial(addr, opts)
	defer c.Close()

	err = c.Ping(context.Background())
	if err == nil {
		t.Fatal("ping succeeded against dead address")
	}
	var de *dialError
	if !errors.As(err, &de) {
		t.Fatalf("not a dial error: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(*sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", *sleeps, want)
	}
	for i, d := range want {
		if (*sleeps)[i] != d {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, (*sleeps)[i], d, *sleeps)
		}
	}
}

// TestBackoffCap: the exponential is clamped at MaxBackoff.
func TestBackoffCap(t *testing.T) {
	opts := Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	opts.withDefaults()
	opts.jitter = func() float64 { return 1 }
	if d := opts.backoff(0); d != 100*time.Millisecond {
		t.Fatalf("backoff(0) = %v", d)
	}
	if d := opts.backoff(10); d != 300*time.Millisecond {
		t.Fatalf("backoff(10) = %v, want cap", d)
	}
	// Jitter scales into [50%,100%].
	opts.jitter = func() float64 { return 0 }
	if d := opts.backoff(0); d != 50*time.Millisecond {
		t.Fatalf("backoff(0) with zero jitter = %v", d)
	}
}

// TestRetryAfterRespected: a backpressure refusal carrying a retry-after
// hint must be retried after exactly that hint, not the backoff curve.
func TestRetryAfterRespected(t *testing.T) {
	var requests atomic.Int32
	f := newFakeListener(t, func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		for {
			h, _, err := fr.Next()
			if err != nil {
				return
			}
			if requests.Add(1) == 1 {
				nc.Write(wire.AppendError(nil, h.ID, wire.CodeBackpressure, 123, "window full"))
				continue
			}
			nc.Write(wire.AppendPong(nil, h.ID))
		}
	})

	opts, sleeps := recorder(Options{BaseBackoff: 10 * time.Millisecond})
	c := Dial(f.addr(), opts)
	defer c.Close()

	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after refusal: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 123*time.Millisecond {
		t.Fatalf("sleeps = %v, want exactly [123ms]", *sleeps)
	}
	if n := requests.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}

// TestNonRetryableErrorReturnsImmediately: a malformed rejection is not
// Temporary, so the client must not burn attempts on it.
func TestNonRetryableErrorReturnsImmediately(t *testing.T) {
	var requests atomic.Int32
	f := newFakeListener(t, func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		for {
			h, _, err := fr.Next()
			if err != nil {
				return
			}
			requests.Add(1)
			nc.Write(wire.AppendError(nil, h.ID, wire.CodeMalformed, 0, "nope"))
		}
	})
	opts, sleeps := recorder(Options{})
	c := Dial(f.addr(), opts)
	defer c.Close()

	err := c.Ping(context.Background())
	var se *ServerError
	if !errors.As(err, &se) || se.Name != "malformed" {
		t.Fatalf("err = %v", err)
	}
	if se.Temporary() {
		t.Fatal("malformed must not be Temporary")
	}
	if len(*sleeps) != 0 || requests.Load() != 1 {
		t.Fatalf("retried a non-retryable error: sleeps=%v requests=%d", *sleeps, requests.Load())
	}
}

// TestDeadlineHonored: a hanging server (accepts, never answers) must not
// hold a request past its context deadline.
func TestDeadlineHonored(t *testing.T) {
	f := newFakeListener(t, func(nc net.Conn, _ int) {
		// Read forever, answer never.
		buf := make([]byte, 1024)
		for {
			if _, err := nc.Read(buf); err != nil {
				return
			}
		}
	})
	c := Dial(f.addr(), Options{})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Ping(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("deadline ignored: took %v", took)
	}
	// The abandoned request must not leak a pending entry.
	c.pmu.Lock()
	n := len(c.pending)
	c.pmu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries leaked", n)
	}
}

// TestReconnectAfterServerDrop: a connection the server drops mid-life is
// redialed transparently on the next request.
func TestReconnectAfterServerDrop(t *testing.T) {
	f := newFakeListener(t, func(nc net.Conn, idx int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		h, _, err := fr.Next()
		if err != nil {
			return
		}
		nc.Write(wire.AppendPong(nil, h.ID))
		if idx == 0 {
			return // drop the first connection after one answer
		}
		echoPong(nc, idx)
	})
	opts, _ := recorder(Options{})
	c := Dial(f.addr(), opts)
	defer c.Close()

	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	// Wait for the client to notice the drop so the next request redials
	// rather than racing a write onto the dying socket.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		down := c.nc == nil
		c.mu.Unlock()
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the dropped connection")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after drop: %v", err)
	}
	if n := f.accepts.Load(); n != 2 {
		t.Fatalf("accepts = %d, want 2", n)
	}
}

// TestPipelinedConcurrentRequests: many goroutines share one connection;
// responses route back by id even when the server answers out of order.
func TestPipelinedConcurrentRequests(t *testing.T) {
	f := newFakeListener(t, func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		var mu sync.Mutex
		batch := []uint64{}
		flush := func() {
			mu.Lock()
			// Answer in reverse arrival order to exercise id routing.
			for i := len(batch) - 1; i >= 0; i-- {
				nc.Write(wire.AppendPong(nil, batch[i]))
			}
			batch = batch[:0]
			mu.Unlock()
		}
		for {
			h, _, err := fr.Next()
			if err != nil {
				return
			}
			mu.Lock()
			batch = append(batch, h.ID)
			n := len(batch)
			mu.Unlock()
			if n >= 8 {
				flush()
			}
		}
	})
	c := Dial(f.addr(), Options{})
	defer c.Close()

	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- c.Ping(context.Background()) }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("pipelined ping: %v", err)
		}
	}
	if got := f.accepts.Load(); got != 1 {
		t.Fatalf("used %d connections, want 1 (pipelining broken)", got)
	}
}

// TestClosedClient: requests after Close fail fast with ErrClosed.
func TestClosedClient(t *testing.T) {
	f := newFakeListener(t, echoPong)
	c := Dial(f.addr(), Options{})
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestIsDraining classifies draining refusals for load-generator logic.
func TestIsDraining(t *testing.T) {
	se := &ServerError{Code: uint16(wire.CodeDraining), Name: "draining"}
	if !IsDraining(se) || !se.Temporary() {
		t.Fatal("draining classification broken")
	}
	if IsDraining(fmt.Errorf("other")) {
		t.Fatal("false positive")
	}
	wrapped := fmt.Errorf("attempt failed: %w", se)
	if !IsDraining(wrapped) {
		t.Fatal("wrapped draining not detected")
	}
}

// TestDataPlaneMethods: FeedBatch, Estimate, and QueryBatch round-trip
// their payloads through a scripted wire server — arguments arrive
// decoded correctly and typed results come back.
func TestDataPlaneMethods(t *testing.T) {
	f := newFakeListener(t, func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		for {
			h, payload, err := fr.Next()
			if err != nil {
				return
			}
			switch h.Type {
			case wire.TFeedBatch:
				objs, err := wire.DecodeFeedBatch(payload, nil)
				if err != nil {
					t.Errorf("decode feed: %v", err)
					return
				}
				nc.Write(wire.AppendAck(nil, h.ID, uint32(len(objs))))
			case wire.TEstimate:
				_, q, err := wire.DecodeEstimate(payload)
				if err != nil || len(q.Keywords) == 0 {
					t.Errorf("decode estimate: %v %+v", err, q)
					return
				}
				nc.Write(wire.AppendEstimateResult(nil, h.ID, 42.5))
			case wire.TQueryBatch:
				_, qs, err := wire.DecodeQueryBatch(payload, nil)
				if err != nil {
					t.Errorf("decode query batch: %v", err)
					return
				}
				ests := make([]float64, len(qs))
				acts := make([]int, len(qs))
				for i := range qs {
					ests[i], acts[i] = float64(i)+0.5, i*10
				}
				nc.Write(wire.AppendQueryBatchResult(nil, h.ID, ests, acts))
			default:
				nc.Write(wire.AppendPong(nil, h.ID))
			}
		}
	})
	c := Dial(f.addr(), Options{})
	defer c.Close()
	ctx := context.Background()

	objs := make([]latest.Object, 3)
	for i := range objs {
		objs[i] = latest.Object{ID: uint64(i + 1), Timestamp: int64(i), Keywords: []string{"fire"}}
		objs[i].Loc.X, objs[i].Loc.Y = -100, 35
	}
	accepted, err := c.FeedBatch(ctx, objs)
	if err != nil || accepted != 3 {
		t.Fatalf("FeedBatch = %d, %v", accepted, err)
	}

	var p geo.Point
	p.X, p.Y = -100, 35
	q := stream.HybridQ(geo.CenteredRect(p, 1, 1), []string{"fire"}, 6)
	est, err := c.Estimate(ctx, q)
	if err != nil || est != 42.5 {
		t.Fatalf("Estimate = %v, %v", est, err)
	}

	ests, acts, err := c.QueryBatch(ctx, []latest.Query{q, q})
	if err != nil || len(ests) != 2 || len(acts) != 2 {
		t.Fatalf("QueryBatch = %v %v %v", ests, acts, err)
	}
	if ests[1] != 1.5 || acts[1] != 10 {
		t.Fatalf("QueryBatch values = %v %v", ests, acts)
	}
}

// TestServerErrorString: the error text carries code name, message, and
// the retry-after hint when present.
func TestServerErrorString(t *testing.T) {
	e := &ServerError{Code: uint16(wire.CodeBackpressure), Name: "backpressure",
		RetryAfter: 50 * time.Millisecond, Msg: "window full"}
	s := e.Error()
	for _, want := range []string{"backpressure", "window full", "50ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
	if (&ServerError{Name: "internal"}).Temporary() {
		t.Error("internal must not be Temporary")
	}
}
