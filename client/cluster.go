// cluster.go embeds the scatter-gather routing layer in the client: a
// Cluster is the multi-node counterpart of Client, routing feeds to the
// owning nodes and fanning queries out across the nodes whose territory
// they overlap, with exact aggregation and transparent partition-map
// renegotiation. It exposes the same FeedBatch/Estimate/QueryBatch/Ping
// surface, so callers swap a Client for a Cluster without code changes.
package client

import (
	"context"
	"errors"
	"fmt"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/telemetry"
)

// ClusterReport is the routing layer's telemetry sample (epoch, routing
// mode counters, map negotiation counters, per-node request stats).
type ClusterReport = telemetry.ClusterSample

// Cluster routes requests across a multi-node latestd deployment. It owns
// one pipelined Client per node, dialed lazily. Safe for concurrent use.
type Cluster struct {
	r *cluster.Router
}

// nodeDialer adapts Dial to the router's Dialer: *Client satisfies
// cluster.Node directly (the public latest types alias the stream types).
func nodeDialer(opts Options) cluster.Dialer {
	return func(addr string) cluster.Node { return Dial(addr, opts) }
}

// DialCluster fetches the partition map from the first reachable seed —
// any cluster node or router — and returns a Cluster routing under it.
// opts applies to every per-node connection.
func DialCluster(ctx context.Context, seeds []string, opts Options) (*Cluster, error) {
	if len(seeds) == 0 {
		return nil, errors.New("client: no cluster seeds")
	}
	var lastErr error
	for _, seed := range seeds {
		c := Dial(seed, opts)
		raw, err := c.FetchMap(ctx)
		c.Close()
		if err != nil {
			lastErr = fmt.Errorf("seed %s: %w", seed, err)
			continue
		}
		cl, err := NewClusterFromMap(raw, opts)
		if err != nil {
			lastErr = fmt.Errorf("seed %s: %w", seed, err)
			continue
		}
		return cl, nil
	}
	return nil, fmt.Errorf("client: no seed yielded a partition map: %w", lastErr)
}

// NewClusterFromMap builds a Cluster from an encoded partition map (as
// written by latest-router -write-map or served over TMapFetch).
func NewClusterFromMap(raw []byte, opts Options) (*Cluster, error) {
	m, err := cluster.DecodeMap(raw)
	if err != nil {
		return nil, err
	}
	return &Cluster{r: cluster.NewRouter(m, nodeDialer(opts), cluster.Options{})}, nil
}

// Router exposes the underlying routing core — the Backend a
// wire-protocol proxy front end serves.
func (cl *Cluster) Router() *cluster.Router { return cl.r }

// Epoch returns the held partition map's version.
func (cl *Cluster) Epoch() uint64 { return cl.r.Epoch() }

// Nodes returns the node addresses of the held partition map.
func (cl *Cluster) Nodes() []string {
	return append([]string(nil), cl.r.Map().Nodes...)
}

// MapBytes returns the held partition map in encoded form.
func (cl *Cluster) MapBytes() []byte { return cl.r.MapBytes() }

// Sample returns the routing layer's telemetry counters.
func (cl *Cluster) Sample() ClusterReport { return cl.r.Sample() }

// Close closes every node connection.
func (cl *Cluster) Close() error { return cl.r.Close() }

// FeedBatch routes each object to its owning node, feeding the per-node
// buckets concurrently, and returns the total accepted count. Map
// staleness is renegotiated transparently; a hard node failure surfaces as
// one *cluster.NodeError with the counts accepted elsewhere still
// reported.
func (cl *Cluster) FeedBatch(ctx context.Context, objs []latest.Object) (uint32, error) {
	return cl.r.FeedBatch(ctx, objs)
}

// Estimate answers one query: forwarded whole to the owning node when one
// node covers it, otherwise clipped at partition boundaries and summed
// across the owners (keyword-only queries broadcast).
func (cl *Cluster) Estimate(ctx context.Context, q latest.Query) (float64, error) {
	return cl.r.Estimate(ctx, q)
}

// QueryBatch runs full estimate+execute cycles with the same routing,
// returning parallel estimate and exact-count slices.
func (cl *Cluster) QueryBatch(ctx context.Context, qs []latest.Query) ([]float64, []int, error) {
	return cl.r.QueryBatch(ctx, qs)
}

// Ping checks liveness of every node in the held map.
func (cl *Cluster) Ping(ctx context.Context) error { return cl.r.Ping(ctx) }
