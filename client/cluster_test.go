package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/server"
	"github.com/spatiotext/latest/internal/stream"
)

var clusterWorld = geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}

// bindListeners pre-binds n kernel-assigned listeners so the partition
// map can name real addresses before any server starts.
func bindListeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

// startNodes starts one clustered server per listener, all holding m.
func startNodes(t *testing.T, lns []net.Listener, m *cluster.Map) {
	t.Helper()
	for i, ln := range lns {
		eng, err := latest.NewConcurrent(clusterWorld, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(eng, server.Config{Listener: ln, ClusterMap: m, NodeID: i})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			eng.Shutdown(context.Background())
		})
	}
}

func clusterObjects(n int) []latest.Object {
	objs := make([]latest.Object, n)
	for i := range objs {
		o := stream.Object{ID: uint64(i + 1), Timestamp: int64(i + 1), Keywords: []string{"kw"}}
		o.Loc = geo.Pt(-170+float64(i)*340/float64(n), 10)
		objs[i] = o
	}
	return objs
}

// TestDialClusterBootstrap: DialCluster fetches the map from the first
// reachable seed (skipping dead ones) and serves the full surface through
// real servers.
func TestDialClusterBootstrap(t *testing.T) {
	lns, addrs := bindListeners(t, 3)
	m, err := cluster.Uniform(clusterWorld, 6, 1, addrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	startNodes(t, lns, m)

	ctx := context.Background()
	cl, err := DialCluster(ctx, []string{"127.0.0.1:1", addrs[1]}, Options{})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cl.Close()
	if cl.Epoch() != 3 || len(cl.Nodes()) != 3 {
		t.Fatalf("bootstrapped epoch=%d nodes=%v", cl.Epoch(), cl.Nodes())
	}

	objs := clusterObjects(48)
	accepted, err := cl.FeedBatch(ctx, objs)
	if err != nil || int(accepted) != len(objs) {
		t.Fatalf("feed: %d, %v", accepted, err)
	}

	// The whole-world spatial query spans all three territories; the
	// scatter-gather sum must count every object exactly once.
	world := stream.SpatialQ(clusterWorld, int64(len(objs)))
	_, acts, err := cl.QueryBatch(ctx, []latest.Query{world})
	if err != nil || acts[0] != len(objs) {
		t.Fatalf("whole-world count = %v, %v; want %d", acts, err, len(objs))
	}

	// A sub-rect covering only the western third forwards to one owner.
	west := stream.SpatialQ(geo.Rect{MinX: -175, MinY: 0, MaxX: -125, MaxY: 20}, int64(len(objs)))
	_, acts, err = cl.QueryBatch(ctx, []latest.Query{west})
	if err != nil {
		t.Fatalf("west query: %v", err)
	}
	wantWest := 0
	for _, o := range objs {
		if west.Range.Contains(o.Loc) {
			wantWest++
		}
	}
	if acts[0] != wantWest {
		t.Fatalf("west count %d, want %d", acts[0], wantWest)
	}

	if s := cl.Sample(); s.Epoch != 3 || s.FeedObjects != uint64(len(objs)) {
		t.Fatalf("sample %+v", s)
	}
}

// TestClusterStaleMapRetryRealServers: a router bootstrapped from an
// outdated map file is refused by every node (their map reassigned the
// stripes), refetches the live epoch over the wire, and retries without
// surfacing a single error.
func TestClusterStaleMapRetryRealServers(t *testing.T) {
	lns, addrs := bindListeners(t, 2)
	truth := &cluster.Map{Epoch: 2, World: clusterWorld, Cols: 4, Rows: 1, Nodes: addrs}
	truth.Owners = []int32{1, 1, 0, 0} // reverse of Uniform's stripes
	if err := truth.Validate(); err != nil {
		t.Fatal(err)
	}
	startNodes(t, lns, truth)

	stale, err := cluster.Uniform(clusterWorld, 4, 1, addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterFromMap(stale.Encode(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	objs := clusterObjects(32)
	accepted, err := cl.FeedBatch(ctx, objs)
	if err != nil || int(accepted) != len(objs) {
		t.Fatalf("feed under stale map: %d, %v", accepted, err)
	}
	if cl.Epoch() != 2 {
		t.Fatalf("router still at epoch %d after refusal, want 2", cl.Epoch())
	}
	world := stream.SpatialQ(clusterWorld, int64(len(objs)))
	_, acts, err := cl.QueryBatch(ctx, []latest.Query{world})
	if err != nil || acts[0] != len(objs) {
		t.Fatalf("post-retry count = %v, %v; want %d", acts, err, len(objs))
	}
	s := cl.Sample()
	if s.NotOwner == 0 || s.MapRefetches == 0 {
		t.Fatalf("retry counters unmoved: %+v", s)
	}
}

// TestClusterNodeDeathSurfacesTypedError: killing a member mid-run makes
// scatter queries fail with exactly one NodeError naming the dead node.
func TestClusterNodeDeathSurfacesTypedError(t *testing.T) {
	lns, addrs := bindListeners(t, 3)
	m, err := cluster.Uniform(clusterWorld, 6, 1, addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 never starts: its listener closes, simulating a death the
	// router discovers on first contact.
	startNodes(t, lns[:2], m)
	lns[2].Close()

	cl, err := NewClusterFromMap(m.Encode(), Options{MaxAttempts: 1, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	world := stream.SpatialQ(clusterWorld, 10)
	_, _, err = cl.QueryBatch(ctx, []latest.Query{world})
	var ne *cluster.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want *cluster.NodeError", err)
	}
	if ne.Addr != addrs[2] {
		t.Fatalf("NodeError names %s, want %s", ne.Addr, addrs[2])
	}
}

// TestDialClusterAllSeedsDead: bootstrap fails with a useful error when
// no seed answers.
func TestDialClusterAllSeedsDead(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := DialCluster(ctx, []string{"127.0.0.1:1"}, Options{MaxAttempts: 1, DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("DialCluster succeeded against dead seeds")
	}
}
