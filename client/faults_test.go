package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/netchaos"
	"github.com/spatiotext/latest/internal/wire"
)

// waitConnDown polls until the client has observed its connection die
// (readLoop clears nc). Retrying before that point would race a write
// onto the dying socket.
func waitConnDown(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		down := c.nc == nil
		c.mu.Unlock()
		if down {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the dead connection")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCutMidReplySurfacesOnceThenRedials: a connection severed inside a
// response frame is the hard failure mode — the request was delivered
// and possibly executed, so the client must surface the loss exactly
// once (no blind retry of a maybe-applied request) and then redial
// transparently for the next call.
func TestCutMidReplySurfacesOnceThenRedials(t *testing.T) {
	f := newFakeListener(t, echoPong)
	// Conn 0 dies 10 bytes into the 24-byte pong header; conn 1 onward
	// relays faithfully.
	p, err := netchaos.New(f.addr(),
		netchaos.ConnPlan{CutDownstreamAfter: 10},
		netchaos.ConnPlan{},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	opts, sleeps := recorder(Options{})
	c := Dial(p.Addr(), opts)
	defer c.Close()

	err = c.Ping(context.Background())
	if err == nil {
		t.Fatal("ping succeeded across a mid-frame cut")
	}
	var se *ServerError
	if errors.As(err, &se) {
		t.Fatalf("conn loss misreported as a server refusal: %v", err)
	}
	if len(*sleeps) != 0 {
		t.Fatalf("client retried a post-write failure: sleeps=%v", *sleeps)
	}

	waitConnDown(t, c)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
	if n := p.Conns(); n != 2 {
		t.Fatalf("proxy saw %d connections, want 2 (one dead, one redial)", n)
	}
}

// TestBlackholeDeadline: a partitioned link (alive but silent) must not
// hold a request past its deadline, and the abandoned request must not
// leak a pending entry.
func TestBlackholeDeadline(t *testing.T) {
	f := newFakeListener(t, echoPong)
	// Total-byte budget 60: ping 1 (24 up + 24 down = 48) completes, the
	// second ping's request trips the threshold and vanishes.
	p, err := netchaos.New(f.addr(), netchaos.ConnPlan{BlackholeAfter: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := Dial(p.Addr(), Options{})
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping before blackhole: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if err := c.Ping(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	c.pmu.Lock()
	n := len(c.pending)
	c.pmu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries leaked into the blackhole", n)
	}
}

// TestLinkLatencyDeadline: added link latency delays, not breaks — with
// a generous deadline the request completes; with a tight one it fails
// with the deadline, never a connection error.
func TestLinkLatencyDeadline(t *testing.T) {
	f := newFakeListener(t, echoPong)
	p, err := netchaos.New(f.addr(), netchaos.ConnPlan{Delay: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := Dial(p.Addr(), Options{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Ping(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping with slack deadline over slow link: %v", err)
	}
}

// TestDrainReconnect: a server draining mid-pipeline answers one request,
// refuses the next with a retryable draining error, and hangs up. The
// client must honor the retry-after hint, redial, and succeed on the new
// connection — the refusal never reaches the caller.
func TestDrainReconnect(t *testing.T) {
	f := newFakeListener(t, func(nc net.Conn, idx int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		if idx == 0 {
			h, _, err := fr.Next()
			if err != nil {
				return
			}
			nc.Write(wire.AppendPong(nil, h.ID))
			h, _, err = fr.Next()
			if err != nil {
				return
			}
			nc.Write(wire.AppendError(nil, h.ID, wire.CodeDraining, 7, "draining"))
			return // GOAWAY: refusal then hang-up
		}
		echoPong(nc, idx)
	})

	var c *Client
	var sleeps []time.Duration
	opts := Options{BaseBackoff: time.Millisecond}
	opts.jitter = func() float64 { return 1 }
	opts.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		// Let the hang-up land before retrying, so the retry is forced to
		// redial rather than reuse the dying connection.
		waitConnDown(t, c)
		return ctx.Err()
	}
	c = Dial(f.addr(), opts)
	defer c.Close()

	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping across drain: %v", err)
	}
	if n := f.accepts.Load(); n != 2 {
		t.Fatalf("accepts = %d, want 2 (draining conn + redial)", n)
	}
	if len(sleeps) != 1 || sleeps[0] != 7*time.Millisecond {
		t.Fatalf("sleeps = %v, want exactly the 7ms retry-after hint", sleeps)
	}
}

// TestDrainNonRetryableSurfacesOnce: mixed refusals during a drain — a
// malformed rejection is the caller's bug, not the drain's; it must
// surface exactly once even while the server is also hanging up on
// everyone.
func TestDrainNonRetryableSurfacesOnce(t *testing.T) {
	f := newFakeListener(t, func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		h, _, err := fr.Next()
		if err != nil {
			return
		}
		nc.Write(wire.AppendError(nil, h.ID, wire.CodeMalformed, 0, "bad frame"))
		// Hang up like a draining server would.
	})

	opts, sleeps := recorder(Options{})
	c := Dial(f.addr(), opts)
	defer c.Close()

	err := c.Ping(context.Background())
	var se *ServerError
	if !errors.As(err, &se) || se.Name != "malformed" {
		t.Fatalf("err = %v, want malformed refusal", err)
	}
	if len(*sleeps) != 0 {
		t.Fatalf("retried a non-retryable refusal: sleeps=%v", *sleeps)
	}
	if n := f.accepts.Load(); n != 1 {
		t.Fatalf("accepts = %d, want 1 (no retry, no redial)", n)
	}
}
