package client

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"

	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/wire"
)

// frameRecord captures what the server actually saw on the wire.
type frameRecord struct {
	flags   uint16
	traceID uint64
}

// recordingPong answers every frame with a pong and records its header
// flags and trace ID.
func recordingPong(mu *sync.Mutex, seen *[]frameRecord) func(net.Conn, int) {
	return func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		for {
			h, payload, err := fr.Next()
			if err != nil {
				return
			}
			id, _, err := wire.SplitTrace(h, payload)
			if err != nil {
				return
			}
			mu.Lock()
			*seen = append(*seen, frameRecord{flags: h.Flags, traceID: id})
			mu.Unlock()
			nc.Write(wire.AppendPong(nil, h.ID))
		}
	}
}

// TestClientTracePropagation: a tracing client stamps FlagTrace and a fresh
// nonzero trace ID on each request, and its local timeline carries the same
// ID the server saw.
func TestClientTracePropagation(t *testing.T) {
	var mu sync.Mutex
	var seen []frameRecord
	fl := newFakeListener(t, recordingPong(&mu, &seen))
	cl := Dial(fl.addr(), Options{Trace: true, TraceEvery: 1})
	defer cl.Close()

	for i := 0; i < 3; i++ {
		if err := cl.Ping(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	got := append([]frameRecord(nil), seen...)
	mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("server saw %d frames", len(got))
	}
	ids := map[uint64]bool{}
	for i, r := range got {
		if r.flags != wire.FlagTrace || r.traceID == 0 {
			t.Fatalf("frame %d: flags %#x trace %#x", i, r.flags, r.traceID)
		}
		if ids[r.traceID] {
			t.Fatalf("trace ID %#x reused across requests", r.traceID)
		}
		ids[r.traceID] = true
	}

	traces := cl.Traces().Snapshot()
	if len(traces) != 3 {
		t.Fatalf("client retained %d traces", len(traces))
	}
	for _, tr := range traces {
		if tr.Op != "ping" || tr.Error != "" {
			t.Fatalf("client trace = %+v", tr)
		}
		if !ids[uint64(tr.ID)] {
			t.Fatalf("client trace ID %s never crossed the wire", tr.ID)
		}
		// Pings carry no payload, so there is no decode stage.
		for _, want := range []string{"encode", "write", "wait"} {
			found := false
			for _, sp := range tr.Spans {
				if sp.Name == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("client trace missing %q span: %v", want, tr.Spans)
			}
		}
	}
}

// TestClientTraceRecordsError: a refused request's trace is sealed with the
// wire error code name, so failed exemplars are attributable too.
func TestClientTraceRecordsError(t *testing.T) {
	fl := newFakeListener(t, func(nc net.Conn, _ int) {
		fr := wire.NewFrameReader(bufio.NewReader(nc), 0)
		for {
			h, _, err := fr.Next()
			if err != nil {
				return
			}
			nc.Write(wire.AppendError(nil, h.ID, wire.CodeMalformed, 0, "scripted refusal"))
		}
	})
	cl := Dial(fl.addr(), Options{Trace: true, TraceEvery: 1})
	defer cl.Close()

	if err := cl.Ping(context.Background()); err == nil {
		t.Fatal("scripted refusal did not surface")
	}
	traces := cl.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("%d traces", len(traces))
	}
	if traces[0].Error != wire.CodeMalformed.String() {
		t.Fatalf("trace error = %q, want %q", traces[0].Error, wire.CodeMalformed.String())
	}
}

// TestUntracedClientSendsPlainFrames: without Trace, frames carry no flags
// and no buffer is allocated.
func TestUntracedClientSendsPlainFrames(t *testing.T) {
	var mu sync.Mutex
	var seen []frameRecord
	fl := newFakeListener(t, recordingPong(&mu, &seen))
	cl := Dial(fl.addr(), Options{})
	defer cl.Close()
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].flags != 0 || seen[0].traceID != 0 {
		t.Fatalf("untraced frames = %+v", seen)
	}
	var nilBuf *telemetry.TraceBuffer
	if cl.Traces() != nilBuf {
		t.Error("untraced client allocated a trace buffer")
	}
}
