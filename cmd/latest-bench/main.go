// latest-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	latest-bench -exp fig3            # one experiment, text output
//	latest-bench -exp all             # the full evaluation section
//	latest-bench -exp table1 -json    # machine-readable output
//	latest-bench -list                # available experiment ids
//
// The -queries/-pretrain/-scale/-seed flags rescale any experiment; zero
// values take the defaults documented in DESIGN.md §2.
//
// Beyond the paper, -exp ingest measures parallel ingest throughput of
// the single-lock ConcurrentSystem against the sharded engine:
//
//	latest-bench -exp ingest -shards 8 -producers 8 -objects 2000000
//
// and -exp query measures the estimate-path latency distribution of all
// three engines on one deterministic workload:
//
//	latest-bench -exp query -out BENCH_query.json
//
// -exp ingest-matrix sweeps the full shards × GOMAXPROCS × producers grid
// and reports one datapoint per cell, plus each cell's speedup over the
// 1-shard cell at the same (procs, producers) coordinate:
//
//	latest-bench -exp ingest-matrix -shards-list 1,2,4 -procs-list 1,2,4 \
//	    -producers-list 1,4 -objects 400000 -out BENCH_ingest.json
//
// With -min-speedup N the run fails unless some multi-shard cell reaches
// N× its 1-shard baseline; the gate auto-skips (with a warning) on hosts
// with fewer than 4 CPUs, where parallel speedup is physically capped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/experiments"
	"github.com/spatiotext/latest/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so tests can drive every flag
// path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latest-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment id (fig3..fig13, table1, table2), 'ingest', 'query' or 'all'")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		queries  = fs.Int("queries", 0, "incremental-phase query count (0 = default 3000)")
		pretrain = fs.Int("pretrain", 0, "pre-training query count (0 = default 600)")
		windowMS = fs.Int64("window", 0, "time window T in virtual ms (0 = default 30000)")
		rate     = fs.Float64("rate", 0, "stream rate in objects per virtual ms (0 = default 2)")
		scale    = fs.Float64("scale", 0, "estimator memory scale (0 = default 1)")
		seed     = fs.Int64("seed", 0, "random seed (0 = default 1)")
		alpha    = fs.Float64("alpha", -1, "accuracy/latency weight override (-1 = experiment default)")
		asJSON   = fs.Bool("json", false, "emit JSON instead of text")
		outFile  = fs.String("out", "", "also write JSON results to this file (e.g. BENCH_ingest.json)")

		shards    = fs.Int("shards", 0, "ingest/query: shard count (0 = GOMAXPROCS)")
		producers = fs.Int("producers", 8, "ingest: concurrent producer goroutines")
		objects   = fs.Int("objects", 1_000_000, "ingest: objects fed per engine")
		batchLen  = fs.Int("batch", 256, "ingest: objects per FeedBatch call")

		shardsList    = fs.String("shards-list", "1,2,4", "ingest-matrix: comma-separated shard counts")
		procsList     = fs.String("procs-list", "", "ingest-matrix: comma-separated GOMAXPROCS values (empty = current)")
		producersList = fs.String("producers-list", "", "ingest-matrix: comma-separated producer counts (empty = -producers)")
		minSpeedup    = fs.Float64("min-speedup", 0, "ingest-matrix: fail unless some multi-shard cell reaches this speedup over its 1-shard baseline (0 = report only; auto-skipped below 4 CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *exp == "ingest":
		return runIngest(stdout, stderr, *shards, *producers, *objects, *batchLen, *seed, *asJSON, *outFile)
	case *exp == "ingest-matrix":
		return runIngestMatrix(stdout, stderr, ingestMatrixConfig{
			ShardsList:    *shardsList,
			ProcsList:     *procsList,
			ProducersList: *producersList,
			Producers:     *producers,
			Objects:       *objects,
			BatchLen:      *batchLen,
			Seed:          *seed,
			MinSpeedup:    *minSpeedup,
		}, *asJSON, *outFile)
	case *exp == "query":
		return runQueryBench(stdout, stderr, queryBenchConfig{
			Shards:  *shards,
			Seed:    *seed,
			Queries: *queries,
		}, *asJSON, *outFile)
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-8s %s\n", id, experiments.Describe(id))
		}
		return 0
	case *exp == "":
		fmt.Fprintln(stderr, "latest-bench: -exp required (use -list to see ids)")
		return 2
	}

	cfg := experiments.RunConfig{
		Queries:         *queries,
		PretrainQueries: *pretrain,
		WindowMS:        *windowMS,
		Rate:            *rate,
		Scale:           *scale,
		Seed:            *seed,
	}
	if *alpha >= 0 {
		cfg.Alpha, cfg.AlphaSet = *alpha, true
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	var collected []any
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 1
		}
		if *outFile != "" {
			collected = append(collected, res)
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(stderr, "latest-bench: encoding %s: %v\n", id, err)
				return 1
			}
			continue
		}
		if _, err := res.WriteTo(stdout); err != nil {
			fmt.Fprintf(stderr, "latest-bench: writing %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(stdout, "(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *outFile != "" {
		if err := writeJSONFile(stderr, *outFile, collected); err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeJSONFile writes v to path as indented JSON (a lost result file is a
// benchmark run wasted, so failures propagate to the exit code).
func writeJSONFile(stderr io.Writer, path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "latest-bench: wrote %s\n", path)
	return nil
}

// queryEngineResult is one engine's estimate-path latency distribution.
type queryEngineResult struct {
	Engine  string  `json:"engine"`
	Shards  int     `json:"shards,omitempty"`
	Queries uint64  `json:"queries"`
	P50Us   float64 `json:"estimate_p50_us"`
	P95Us   float64 `json:"estimate_p95_us"`
	P99Us   float64 `json:"estimate_p99_us"`
	MeanUs  float64 `json:"estimate_mean_us"`
}

// queryResult is the machine-readable output of -exp query.
type queryResult struct {
	Experiment string              `json:"experiment"`
	Dataset    string              `json:"dataset"`
	Workload   string              `json:"workload"`
	Queries    int                 `json:"queries"`
	Seed       int64               `json:"seed"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Engines    []queryEngineResult `json:"engines"`
}

// queryBenchConfig shapes the -exp query run.
type queryBenchConfig struct {
	Shards  int
	Seed    int64
	Queries int
}

// runQueryBench drives an identical deterministic workload through all
// three engines and reports each one's estimate-path latency distribution
// from Stats().EstimateLatency. Unlike the correctness harness this keeps
// real wall-clock timing — the histogram is the measurement.
func runQueryBench(stdout, stderr io.Writer, cfg queryBenchConfig, asJSON bool, outFile string) int {
	const (
		dataset         = "Twitter"
		wlName          = "TwQW1"
		objectsPerQuery = 20
		window          = 10 * time.Second
		rate            = 2.0
	)
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 2000
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}

	type engine struct {
		name   string
		shards int
		feed   func(latest.Object)
		query  func(*latest.Query) (float64, int)
		stats  func() latest.Stats
		close  func()
	}
	world := datagen.ByName(dataset, cfg.Seed, rate).World()
	opts := func() []latest.Option {
		return []latest.Option{latest.WithSeed(cfg.Seed)}
	}
	var engines []engine

	sys, err := latest.New(world, window, opts()...)
	if err != nil {
		fmt.Fprintf(stderr, "latest-bench: %v\n", err)
		return 1
	}
	engines = append(engines, engine{
		name: "single", feed: sys.Feed, query: sys.EstimateAndExecute,
		stats: sys.Stats, close: func() {},
	})

	cs, err := latest.NewConcurrent(world, window, opts()...)
	if err != nil {
		fmt.Fprintf(stderr, "latest-bench: %v\n", err)
		return 1
	}
	engines = append(engines, engine{
		name: "concurrent", feed: cs.Feed, query: cs.EstimateAndExecute,
		stats: cs.Stats, close: cs.Close,
	})

	ss, err := latest.NewSharded(world, window, append(opts(), latest.WithShards(cfg.Shards))...)
	if err != nil {
		fmt.Fprintf(stderr, "latest-bench: %v\n", err)
		return 1
	}
	engines = append(engines, engine{
		name: "sharded", shards: cfg.Shards, feed: ss.Feed, query: ss.EstimateAndExecute,
		stats: ss.Stats, close: ss.Close,
	})

	result := queryResult{
		Experiment: "query", Dataset: dataset, Workload: wlName,
		Queries: cfg.Queries, Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, e := range engines {
		// Each engine gets its own generator so all three see the identical
		// object and query sequence.
		gen := datagen.ByName(dataset, cfg.Seed, rate)
		queries := workload.NewGenerator(workload.ByName(wlName), gen, cfg.Queries)
		for qi := 0; qi < cfg.Queries; qi++ {
			for j := 0; j < objectsPerQuery; j++ {
				e.feed(gen.Next())
			}
			q := queries.Next(gen.Now())
			e.query(&q)
		}
		hist := e.stats().EstimateLatency
		e.close()
		r := queryEngineResult{
			Engine: e.name, Shards: e.shards, Queries: hist.Count,
			P50Us: us(hist.P50()), P95Us: us(hist.P95()),
			P99Us: us(hist.P99()), MeanUs: us(hist.Mean()),
		}
		result.Engines = append(result.Engines, r)
		if !asJSON {
			fmt.Fprintf(stdout, "%-12s estimate latency p50=%.1fµs p95=%.1fµs p99=%.1fµs mean=%.1fµs (%d queries)\n",
				e.name, r.P50Us, r.P95Us, r.P99Us, r.MeanUs, r.Queries)
		}
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintf(stderr, "latest-bench: encoding query: %v\n", err)
			return 1
		}
	}
	if outFile != "" {
		if err := writeJSONFile(stderr, outFile, result); err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// ingestMatrixConfig shapes an -exp ingest-matrix sweep.
type ingestMatrixConfig struct {
	ShardsList    string
	ProcsList     string
	ProducersList string
	Producers     int
	Objects       int
	BatchLen      int
	Seed          int64
	MinSpeedup    float64
}

// ingestMatrixCell is one (shards, GOMAXPROCS, producers) datapoint. The
// key names deliberately match the flat -exp ingest output so downstream
// tooling greps the same fields in either file.
type ingestMatrixCell struct {
	Shards     int     `json:"shards"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Producers  int     `json:"producers"`
	Seconds    float64 `json:"seconds"`
	ObjectsSec float64 `json:"objects_per_sec"`
	WindowSize int     `json:"window_size"`
	BatchP50Ms float64 `json:"batch_p50_ms"`
	BatchP99Ms float64 `json:"batch_p99_ms"`
	BatchCount uint64  `json:"batch_count"`
	// SpeedupVs1Shard is this cell's throughput over the 1-shard cell at
	// the same (GOMAXPROCS, producers) coordinate; 0 when the sweep has no
	// such baseline cell.
	SpeedupVs1Shard float64 `json:"speedup_vs_1shard,omitempty"`
}

// ingestMatrixGate records whether the -min-speedup gate applied and what
// it saw, so a skipped gate is visible in the result file rather than
// indistinguishable from a passing one.
type ingestMatrixGate struct {
	MinSpeedup  float64 `json:"min_speedup"`
	Enforced    bool    `json:"enforced"`
	BestSpeedup float64 `json:"best_speedup"`
	Reason      string  `json:"reason,omitempty"`
}

// ingestMatrixResult is the machine-readable output of -exp ingest-matrix.
type ingestMatrixResult struct {
	Experiment string             `json:"experiment"`
	Objects    int                `json:"objects"`
	BatchLen   int                `json:"batch_len"`
	Seed       int64              `json:"seed"`
	NumCPU     int                `json:"num_cpu"`
	Cells      []ingestMatrixCell `json:"cells"`
	Gate       *ingestMatrixGate  `json:"gate,omitempty"`
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-%s: %q is not a positive integer", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", flagName)
	}
	return out, nil
}

// runIngestMatrix sweeps shards × GOMAXPROCS × producers over the sharded
// engine, one fresh engine per cell on the identical object stream, and
// reports per-cell throughput plus speedup against the 1-shard baseline at
// the same (procs, producers) coordinate. GOMAXPROCS is restored to its
// entry value before returning.
func runIngestMatrix(stdout, stderr io.Writer, cfg ingestMatrixConfig, asJSON bool, outFile string) int {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Objects < 1 {
		cfg.Objects = 1
	}
	if cfg.BatchLen < 1 {
		cfg.BatchLen = 1
	}
	shardsList, err := parseIntList("shards-list", cfg.ShardsList)
	if err != nil {
		fmt.Fprintf(stderr, "latest-bench: %v\n", err)
		return 2
	}
	procsList := []int{runtime.GOMAXPROCS(0)}
	if cfg.ProcsList != "" {
		if procsList, err = parseIntList("procs-list", cfg.ProcsList); err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 2
		}
	}
	producersList := []int{cfg.Producers}
	if cfg.ProducersList != "" {
		if producersList, err = parseIntList("producers-list", cfg.ProducersList); err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 2
		}
	}

	world := latest.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	objs := genIngestObjects(cfg.Objects, cfg.Seed)
	result := ingestMatrixResult{
		Experiment: "ingest-matrix", Objects: cfg.Objects,
		BatchLen: cfg.BatchLen, Seed: cfg.Seed, NumCPU: runtime.NumCPU(),
	}
	if !asJSON {
		fmt.Fprintf(stdout, "ingest-matrix: %d objects, batch %d, NumCPU %d\n",
			cfg.Objects, cfg.BatchLen, result.NumCPU)
		fmt.Fprintf(stdout, "%-8s %-6s %-10s %12s %14s %10s\n",
			"shards", "procs", "producers", "obj/s", "batch p99", "speedup")
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		for _, producers := range producersList {
			for _, shards := range shardsList {
				ss, serr := latest.NewSharded(world, time.Hour,
					latest.WithSeed(cfg.Seed), latest.WithShards(shards))
				if serr != nil {
					fmt.Fprintf(stderr, "latest-bench: shards=%d: %v\n", shards, serr)
					return 1
				}
				dur := driveProducers(objs, producers, cfg.BatchLen, ss.FeedBatch)
				ss.Drain()
				st := ss.PerShardStats()
				gauges := make([]latest.GaugeSnapshot, len(st.Shards))
				for i, sh := range st.Shards {
					gauges[i] = sh.Gauges
				}
				hist := batchHistOf(gauges...)
				windowSize := ss.WindowSize()
				ss.Close()

				cell := ingestMatrixCell{
					Shards: shards, GOMAXPROCS: procs, Producers: producers,
					Seconds: dur.Seconds(), ObjectsSec: float64(cfg.Objects) / dur.Seconds(),
					WindowSize: windowSize,
					BatchP50Ms: durMS(hist.P50()), BatchP99Ms: durMS(hist.P99()),
					BatchCount: hist.Count,
				}
				for _, base := range result.Cells {
					if base.Shards == 1 && base.GOMAXPROCS == procs && base.Producers == producers {
						cell.SpeedupVs1Shard = cell.ObjectsSec / base.ObjectsSec
						break
					}
				}
				result.Cells = append(result.Cells, cell)
				if !asJSON {
					sp := "-"
					if cell.SpeedupVs1Shard > 0 {
						sp = fmt.Sprintf("%.2fx", cell.SpeedupVs1Shard)
					}
					fmt.Fprintf(stdout, "%-8d %-6d %-10d %12.0f %12.3fms %10s\n",
						shards, procs, producers, cell.ObjectsSec, cell.BatchP99Ms, sp)
				}
			}
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	gateFailed := false
	if cfg.MinSpeedup > 0 {
		gate := &ingestMatrixGate{MinSpeedup: cfg.MinSpeedup}
		for _, c := range result.Cells {
			if c.Shards > 1 && c.SpeedupVs1Shard > gate.BestSpeedup {
				gate.BestSpeedup = c.SpeedupVs1Shard
			}
		}
		switch {
		case runtime.NumCPU() < 4:
			// Parallel speedup is capped by the core count; on a 1-2 core
			// host a 2x scaling demand is physically unmeetable, so the
			// gate reports instead of failing.
			gate.Reason = fmt.Sprintf("skipped: NumCPU=%d < 4, parallel speedup not measurable", runtime.NumCPU())
		case gate.BestSpeedup >= cfg.MinSpeedup:
			gate.Enforced = true
		default:
			gate.Enforced = true
			gateFailed = true
			gate.Reason = fmt.Sprintf("failed: best multi-shard speedup %.2fx below floor %.2fx", gate.BestSpeedup, cfg.MinSpeedup)
		}
		if gate.Reason != "" {
			fmt.Fprintf(stderr, "latest-bench: ingest-matrix gate %s (best %.2fx, floor %.2fx)\n",
				gate.Reason, gate.BestSpeedup, gate.MinSpeedup)
		}
		result.Gate = gate
	}

	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintf(stderr, "latest-bench: encoding ingest-matrix: %v\n", err)
			return 1
		}
	}
	if outFile != "" {
		if err := writeJSONFile(stderr, outFile, result); err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 1
		}
	}
	if gateFailed {
		return 1
	}
	return 0
}

// ingestEngineResult is one engine's share of an ingest benchmark run.
type ingestEngineResult struct {
	Engine     string  `json:"engine"`
	Shards     int     `json:"shards,omitempty"`
	Seconds    float64 `json:"seconds"`
	ObjectsSec float64 `json:"objects_per_sec"`
	WindowSize int     `json:"window_size"`
	// Batch latency distribution across all FeedBatch calls (merged over
	// shards for the sharded engine), in milliseconds.
	BatchP50Ms  float64 `json:"batch_p50_ms"`
	BatchP95Ms  float64 `json:"batch_p95_ms"`
	BatchP99Ms  float64 `json:"batch_p99_ms"`
	BatchMaxMs  float64 `json:"batch_max_ms"`
	BatchCount  uint64  `json:"batch_count"`
	Reordered   uint64  `json:"reordered"`
	SpeedupVs1L float64 `json:"speedup_vs_single_lock,omitempty"`
}

// ingestResult is the machine-readable output of -exp ingest.
type ingestResult struct {
	Experiment string               `json:"experiment"`
	Objects    int                  `json:"objects"`
	Producers  int                  `json:"producers"`
	BatchLen   int                  `json:"batch_len"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Engines    []ingestEngineResult `json:"engines"`
}

// batchHistOf folds an engine's per-shard batch-latency histograms into one.
func batchHistOf(gauges ...latest.GaugeSnapshot) latest.HistogramSnapshot {
	var merged latest.HistogramSnapshot
	for _, g := range gauges {
		merged.Merge(g.BatchLatency)
	}
	return merged
}

// genIngestObjects builds the deterministic synthetic stream every ingest
// experiment feeds: uniform locations over the unit world, a small rotating
// keyword set, monotonically increasing timestamps.
func genIngestObjects(objects int, seed int64) []latest.Object {
	rng := rand.New(rand.NewSource(seed))
	kws := []string{"a", "b", "c", "d", "e"}
	objs := make([]latest.Object, objects)
	for i := range objs {
		objs[i] = latest.Object{
			ID:        uint64(i + 1),
			Loc:       latest.Pt(rng.Float64(), rng.Float64()),
			Keywords:  kws[i%len(kws) : i%len(kws)+1],
			Timestamp: int64(i + 1),
		}
	}
	return objs
}

// driveProducers splits objs into producer-count contiguous shares and
// feeds them concurrently through fn in batchLen-sized slices, returning
// the wall-clock duration of the whole fan-in.
func driveProducers(objs []latest.Object, producers, batchLen int, fn func(batch []latest.Object)) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	per := (len(objs) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := p * per
		hi := lo + per
		if hi > len(objs) {
			hi = len(objs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(share []latest.Object) {
			defer wg.Done()
			for off := 0; off < len(share); off += batchLen {
				end := off + batchLen
				if end > len(share) {
					end = len(share)
				}
				fn(share[off:end])
			}
		}(objs[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// durMS converts a duration to float milliseconds for JSON output.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runIngest feeds the same synthetic stream through the single-lock
// ConcurrentSystem and the spatially-sharded engine with the requested
// producer parallelism, reporting objects/second and the batch-latency
// distribution for each.
func runIngest(stdout, stderr io.Writer, shards, producers, objects, batchLen int, seed int64, asJSON bool, outFile string) int {
	if seed == 0 {
		seed = 1
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if producers < 1 {
		producers = 1
	}
	if batchLen < 1 {
		batchLen = 1
	}
	world := latest.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	objs := genIngestObjects(objects, seed)
	if !asJSON {
		fmt.Fprintf(stdout, "ingest: %d objects, %d producers, batch %d, GOMAXPROCS %d\n\n",
			objects, producers, batchLen, runtime.GOMAXPROCS(0))
	}

	drive := func(fn func(batch []latest.Object)) time.Duration {
		return driveProducers(objs, producers, batchLen, fn)
	}
	ms := durMS
	report := func(name, engine string, engineShards int, d time.Duration, windowSize int,
		hist latest.HistogramSnapshot, reordered uint64) ingestEngineResult {
		rate := float64(objects) / d.Seconds()
		if !asJSON {
			fmt.Fprintf(stdout, "%-22s %10s  %12.0f obj/s  window=%d\n", name, d.Round(time.Millisecond), rate, windowSize)
			fmt.Fprintf(stdout, "%-22s batch latency p50=%s p95=%s p99=%s max=%s (%d batches)\n",
				"", hist.P50().Round(time.Microsecond), hist.P95().Round(time.Microsecond),
				hist.P99().Round(time.Microsecond), hist.Max.Round(time.Microsecond), hist.Count)
		}
		return ingestEngineResult{
			Engine: engine, Shards: engineShards,
			Seconds: d.Seconds(), ObjectsSec: rate, WindowSize: windowSize,
			BatchP50Ms: ms(hist.P50()), BatchP95Ms: ms(hist.P95()),
			BatchP99Ms: ms(hist.P99()), BatchMaxMs: ms(hist.Max),
			BatchCount: hist.Count, Reordered: reordered,
		}
	}

	cs, err := latest.NewConcurrent(world, time.Hour, latest.WithSeed(seed))
	if err != nil {
		fmt.Fprintf(stderr, "latest-bench: %v\n", err)
		return 1
	}
	csDur := drive(cs.FeedBatch)
	csGauges := cs.Gauges()
	base := report("concurrent (1 lock)", "concurrent", 0, csDur, cs.WindowSize(),
		batchHistOf(csGauges), csGauges.Reordered)

	ss, err := latest.NewSharded(world, time.Hour, latest.WithSeed(seed), latest.WithShards(shards))
	if err != nil {
		fmt.Fprintf(stderr, "latest-bench: %v\n", err)
		return 1
	}
	defer ss.Close()
	ssDur := drive(ss.FeedBatch)
	st := ss.PerShardStats()
	shardGauges := make([]latest.GaugeSnapshot, len(st.Shards))
	var ssReordered uint64
	for i, sh := range st.Shards {
		shardGauges[i] = sh.Gauges
		ssReordered += sh.Gauges.Reordered
	}
	sharded := report(fmt.Sprintf("sharded (%d shards)", shards), "sharded", shards,
		ssDur, ss.WindowSize(), batchHistOf(shardGauges...), ssReordered)
	sharded.SpeedupVs1L = sharded.ObjectsSec / base.ObjectsSec

	result := ingestResult{
		Experiment: "ingest", Objects: objects, Producers: producers,
		BatchLen: batchLen, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Engines: []ingestEngineResult{base, sharded},
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintf(stderr, "latest-bench: encoding ingest: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "\nspeedup: %.2fx\n", sharded.SpeedupVs1L)
		for _, sh := range st.Shards {
			fmt.Fprintf(stdout, "  shard %d: feeds=%-9d batches=%-7d reordered=%-7d occ=%d\n",
				sh.Index, sh.Gauges.Feeds, sh.Gauges.Batches, sh.Gauges.Reordered, sh.Gauges.Occupancy)
		}
	}
	if outFile != "" {
		if err := writeJSONFile(stderr, outFile, result); err != nil {
			fmt.Fprintf(stderr, "latest-bench: %v\n", err)
			return 1
		}
	}
	return 0
}
