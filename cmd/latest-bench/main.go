// latest-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	latest-bench -exp fig3            # one experiment, text output
//	latest-bench -exp all             # the full evaluation section
//	latest-bench -exp table1 -json    # machine-readable output
//	latest-bench -list                # available experiment ids
//
// The -queries/-pretrain/-scale/-seed flags rescale any experiment; zero
// values take the defaults documented in DESIGN.md §2.
//
// Beyond the paper, -exp ingest measures parallel ingest throughput of
// the single-lock ConcurrentSystem against the sharded engine:
//
//	latest-bench -exp ingest -shards 8 -producers 8 -objects 2000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig3..fig13, table1, table2) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		queries  = flag.Int("queries", 0, "incremental-phase query count (0 = default 3000)")
		pretrain = flag.Int("pretrain", 0, "pre-training query count (0 = default 600)")
		windowMS = flag.Int64("window", 0, "time window T in virtual ms (0 = default 30000)")
		rate     = flag.Float64("rate", 0, "stream rate in objects per virtual ms (0 = default 2)")
		scale    = flag.Float64("scale", 0, "estimator memory scale (0 = default 1)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default 1)")
		alpha    = flag.Float64("alpha", -1, "accuracy/latency weight override (-1 = experiment default)")
		asJSON   = flag.Bool("json", false, "emit JSON instead of text")
		outFile  = flag.String("out", "", "also write JSON results to this file (e.g. BENCH_ingest.json)")

		shards    = flag.Int("shards", 0, "ingest: shard count (0 = GOMAXPROCS)")
		producers = flag.Int("producers", 8, "ingest: concurrent producer goroutines")
		objects   = flag.Int("objects", 1_000_000, "ingest: objects fed per engine")
		batchLen  = flag.Int("batch", 256, "ingest: objects per FeedBatch call")
	)
	flag.Parse()

	if *exp == "ingest" {
		runIngest(*shards, *producers, *objects, *batchLen, *seed, *asJSON, *outFile)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "latest-bench: -exp required (use -list to see ids)")
		os.Exit(2)
	}
	cfg := experiments.RunConfig{
		Queries:         *queries,
		PretrainQueries: *pretrain,
		WindowMS:        *windowMS,
		Rate:            *rate,
		Scale:           *scale,
		Seed:            *seed,
	}
	if *alpha >= 0 {
		cfg.Alpha, cfg.AlphaSet = *alpha, true
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	var collected []any
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "latest-bench: %v\n", err)
			os.Exit(1)
		}
		if *outFile != "" {
			collected = append(collected, res)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "latest-bench: encoding %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		if _, err := res.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "latest-bench: writing %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *outFile != "" {
		writeJSONFile(*outFile, collected)
	}
}

// writeJSONFile writes v to path as indented JSON, exiting on failure (this
// is a benchmark driver; a lost result file is a run wasted).
func writeJSONFile(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "latest-bench: encoding %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "latest-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "latest-bench: wrote %s\n", path)
}

// ingestEngineResult is one engine's share of an ingest benchmark run.
type ingestEngineResult struct {
	Engine     string  `json:"engine"`
	Shards     int     `json:"shards,omitempty"`
	Seconds    float64 `json:"seconds"`
	ObjectsSec float64 `json:"objects_per_sec"`
	WindowSize int     `json:"window_size"`
	// Batch latency distribution across all FeedBatch calls (merged over
	// shards for the sharded engine), in milliseconds.
	BatchP50Ms  float64 `json:"batch_p50_ms"`
	BatchP95Ms  float64 `json:"batch_p95_ms"`
	BatchP99Ms  float64 `json:"batch_p99_ms"`
	BatchMaxMs  float64 `json:"batch_max_ms"`
	BatchCount  uint64  `json:"batch_count"`
	Reordered   uint64  `json:"reordered"`
	SpeedupVs1L float64 `json:"speedup_vs_single_lock,omitempty"`
}

// ingestResult is the machine-readable output of -exp ingest.
type ingestResult struct {
	Experiment string               `json:"experiment"`
	Objects    int                  `json:"objects"`
	Producers  int                  `json:"producers"`
	BatchLen   int                  `json:"batch_len"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Engines    []ingestEngineResult `json:"engines"`
}

// batchHistOf folds an engine's per-shard batch-latency histograms into one.
func batchHistOf(gauges ...latest.GaugeSnapshot) latest.HistogramSnapshot {
	var merged latest.HistogramSnapshot
	for _, g := range gauges {
		merged.Merge(g.BatchLatency)
	}
	return merged
}

// runIngest feeds the same synthetic stream through the single-lock
// ConcurrentSystem and the spatially-sharded engine with the requested
// producer parallelism, reporting objects/second and the batch-latency
// distribution for each.
func runIngest(shards, producers, objects, batchLen int, seed int64, asJSON bool, outFile string) {
	if seed == 0 {
		seed = 1
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if producers < 1 {
		producers = 1
	}
	if batchLen < 1 {
		batchLen = 1
	}
	world := latest.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	rng := rand.New(rand.NewSource(seed))
	kws := []string{"a", "b", "c", "d", "e"}
	objs := make([]latest.Object, objects)
	for i := range objs {
		objs[i] = latest.Object{
			ID:        uint64(i + 1),
			Loc:       latest.Pt(rng.Float64(), rng.Float64()),
			Keywords:  kws[i%len(kws) : i%len(kws)+1],
			Timestamp: int64(i + 1),
		}
	}
	if !asJSON {
		fmt.Printf("ingest: %d objects, %d producers, batch %d, GOMAXPROCS %d\n\n",
			objects, producers, batchLen, runtime.GOMAXPROCS(0))
	}

	// drive splits objs into producer-count interleaved shares and feeds
	// them concurrently through fn.
	drive := func(fn func(batch []latest.Object)) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		per := (len(objs) + producers - 1) / producers
		for p := 0; p < producers; p++ {
			lo := p * per
			hi := lo + per
			if hi > len(objs) {
				hi = len(objs)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(share []latest.Object) {
				defer wg.Done()
				for off := 0; off < len(share); off += batchLen {
					end := off + batchLen
					if end > len(share) {
						end = len(share)
					}
					fn(share[off:end])
				}
			}(objs[lo:hi])
		}
		wg.Wait()
		return time.Since(start)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	report := func(name, engine string, engineShards int, d time.Duration, windowSize int,
		hist latest.HistogramSnapshot, reordered uint64) ingestEngineResult {
		rate := float64(objects) / d.Seconds()
		if !asJSON {
			fmt.Printf("%-22s %10s  %12.0f obj/s  window=%d\n", name, d.Round(time.Millisecond), rate, windowSize)
			fmt.Printf("%-22s batch latency p50=%s p95=%s p99=%s max=%s (%d batches)\n",
				"", hist.P50().Round(time.Microsecond), hist.P95().Round(time.Microsecond),
				hist.P99().Round(time.Microsecond), hist.Max.Round(time.Microsecond), hist.Count)
		}
		return ingestEngineResult{
			Engine: engine, Shards: engineShards,
			Seconds: d.Seconds(), ObjectsSec: rate, WindowSize: windowSize,
			BatchP50Ms: ms(hist.P50()), BatchP95Ms: ms(hist.P95()),
			BatchP99Ms: ms(hist.P99()), BatchMaxMs: ms(hist.Max),
			BatchCount: hist.Count, Reordered: reordered,
		}
	}

	cs, err := latest.NewConcurrent(world, time.Hour, latest.WithSeed(seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "latest-bench: %v\n", err)
		os.Exit(1)
	}
	csDur := drive(cs.FeedBatch)
	csGauges := cs.Gauges()
	base := report("concurrent (1 lock)", "concurrent", 0, csDur, cs.WindowSize(),
		batchHistOf(csGauges), csGauges.Reordered)

	ss, err := latest.NewSharded(world, time.Hour, latest.WithSeed(seed), latest.WithShards(shards))
	if err != nil {
		fmt.Fprintf(os.Stderr, "latest-bench: %v\n", err)
		os.Exit(1)
	}
	defer ss.Close()
	ssDur := drive(ss.FeedBatch)
	st := ss.Stats()
	shardGauges := make([]latest.GaugeSnapshot, len(st.Shards))
	var ssReordered uint64
	for i, sh := range st.Shards {
		shardGauges[i] = sh.Gauges
		ssReordered += sh.Gauges.Reordered
	}
	sharded := report(fmt.Sprintf("sharded (%d shards)", shards), "sharded", shards,
		ssDur, ss.WindowSize(), batchHistOf(shardGauges...), ssReordered)
	sharded.SpeedupVs1L = sharded.ObjectsSec / base.ObjectsSec

	result := ingestResult{
		Experiment: "ingest", Objects: objects, Producers: producers,
		BatchLen: batchLen, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Engines: []ingestEngineResult{base, sharded},
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintf(os.Stderr, "latest-bench: encoding ingest: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("\nspeedup: %.2fx\n", sharded.SpeedupVs1L)
		for _, sh := range st.Shards {
			fmt.Printf("  shard %d: feeds=%-9d batches=%-7d reordered=%-7d occ=%d\n",
				sh.Index, sh.Gauges.Feeds, sh.Gauges.Batches, sh.Gauges.Reordered, sh.Gauges.Occupancy)
		}
	}
	if outFile != "" {
		writeJSONFile(outFile, result)
	}
}
