// latest-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	latest-bench -exp fig3            # one experiment, text output
//	latest-bench -exp all             # the full evaluation section
//	latest-bench -exp table1 -json    # machine-readable output
//	latest-bench -list                # available experiment ids
//
// The -queries/-pretrain/-scale/-seed flags rescale any experiment; zero
// values take the defaults documented in DESIGN.md §2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/spatiotext/latest/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig3..fig13, table1, table2) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		queries  = flag.Int("queries", 0, "incremental-phase query count (0 = default 3000)")
		pretrain = flag.Int("pretrain", 0, "pre-training query count (0 = default 600)")
		windowMS = flag.Int64("window", 0, "time window T in virtual ms (0 = default 30000)")
		rate     = flag.Float64("rate", 0, "stream rate in objects per virtual ms (0 = default 2)")
		scale    = flag.Float64("scale", 0, "estimator memory scale (0 = default 1)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default 1)")
		alpha    = flag.Float64("alpha", -1, "accuracy/latency weight override (-1 = experiment default)")
		asJSON   = flag.Bool("json", false, "emit JSON instead of text")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "latest-bench: -exp required (use -list to see ids)")
		os.Exit(2)
	}
	cfg := experiments.RunConfig{
		Queries:         *queries,
		PretrainQueries: *pretrain,
		WindowMS:        *windowMS,
		Rate:            *rate,
		Scale:           *scale,
		Seed:            *seed,
	}
	if *alpha >= 0 {
		cfg.Alpha, cfg.AlphaSet = *alpha, true
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "latest-bench: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "latest-bench: encoding %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		if _, err := res.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "latest-bench: writing %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
