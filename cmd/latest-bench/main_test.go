package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListFlag(t *testing.T) {
	code, stdout, stderr := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, id := range []string{"fig3", "table1"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output missing %s:\n%s", id, stdout)
		}
	}
}

func TestMissingExpIsUsageError(t *testing.T) {
	code, _, stderr := runBench(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-exp required") {
		t.Errorf("stderr missing usage hint:\n%s", stderr)
	}
}

func TestUnknownExp(t *testing.T) {
	code, _, stderr := runBench(t, "-exp", "nonsense")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if stderr == "" {
		t.Error("no error reported for unknown experiment")
	}
}

// TestExperimentJSONAndOut runs the smallest real experiment through the
// -json and -out paths and checks both emit parseable JSON.
func TestExperimentJSONAndOut(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips real experiment run")
	}
	outPath := filepath.Join(t.TempDir(), "res.json")
	code, stdout, stderr := runBench(t,
		"-exp", "fig3", "-queries", "60", "-pretrain", "30",
		"-window", "2000", "-rate", "0.5", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var viaStdout map[string]any
	if err := json.Unmarshal([]byte(stdout), &viaStdout); err != nil {
		t.Fatalf("-json stdout is not JSON: %v\n%s", err, stdout)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var viaFile []map[string]any
	if err := json.Unmarshal(raw, &viaFile); err != nil {
		t.Fatalf("-out file is not a JSON array: %v", err)
	}
	if len(viaFile) != 1 {
		t.Fatalf("-out collected %d results, want 1", len(viaFile))
	}
}

func TestQueryBenchJSONOut(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_query.json")
	code, stdout, stderr := runBench(t,
		"-exp", "query", "-queries", "60", "-shards", "2", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var res queryResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("query -json stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(res.Engines) != 3 {
		t.Fatalf("query result has %d engines, want 3", len(res.Engines))
	}
	for _, e := range res.Engines {
		// The sharded engine fans a query out to every overlapping shard, so
		// its merged histogram legitimately records more samples.
		if e.Engine == "sharded" {
			if e.Queries < 60 {
				t.Errorf("sharded recorded %d samples, want >= 60", e.Queries)
			}
		} else if e.Queries != 60 {
			t.Errorf("%s recorded %d queries, want 60", e.Engine, e.Queries)
		}
		if e.P99Us < e.P50Us {
			t.Errorf("%s p99 %.1fµs below p50 %.1fµs", e.Engine, e.P99Us, e.P50Us)
		}
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Errorf("-out file not written: %v", err)
	}
}

func TestIngestMatrixSmoke(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_ingest.json")
	code, stdout, stderr := runBench(t,
		"-exp", "ingest-matrix", "-objects", "4000", "-batch", "64",
		"-shards-list", "1,2", "-producers-list", "1,2", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var res ingestMatrixResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("ingest-matrix -json stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("matrix has %d cells, want 4 (2 shards × 2 producers)", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.WindowSize != 4000 {
			t.Errorf("cell shards=%d producers=%d: window %d, want 4000 (objects lost in pipeline)",
				c.Shards, c.Producers, c.WindowSize)
		}
		if c.ObjectsSec <= 0 {
			t.Errorf("cell shards=%d producers=%d: nonpositive throughput", c.Shards, c.Producers)
		}
		if c.Shards > 1 && c.SpeedupVs1Shard <= 0 {
			t.Errorf("cell shards=%d producers=%d: missing speedup vs 1-shard baseline", c.Shards, c.Producers)
		}
	}
	// The CI scaling gate greps these exact keys; keep them stable.
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"objects_per_sec"`, `"batch_p99_ms"`, `"speedup_vs_1shard"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("-out file missing key %s", key)
		}
	}
}

// TestIngestMatrixGate pins the gate's host-awareness: on a sub-4-CPU host
// an unmeetable floor must skip (exit 0, reason recorded); on a multi-core
// host a trivially meetable floor must enforce and pass.
func TestIngestMatrixGate(t *testing.T) {
	code, stdout, stderr := runBench(t,
		"-exp", "ingest-matrix", "-objects", "3000", "-batch", "64",
		"-shards-list", "1,2", "-producers-list", "2", "-min-speedup", "1000", "-json")
	var res ingestMatrixResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout)
	}
	if res.Gate == nil {
		t.Fatal("gate result missing from output")
	}
	if runtime.NumCPU() < 4 {
		if code != 0 || res.Gate.Enforced {
			t.Errorf("sub-4-CPU host: gate must skip, got exit %d enforced=%t (stderr: %s)",
				code, res.Gate.Enforced, stderr)
		}
		if !strings.Contains(res.Gate.Reason, "skipped") {
			t.Errorf("gate reason %q does not record the skip", res.Gate.Reason)
		}
	} else {
		// A 1000x floor is unmeetable anywhere: the gate must enforce and fail.
		if code != 1 || !res.Gate.Enforced {
			t.Errorf("multi-core host: unmeetable floor must fail, got exit %d enforced=%t", code, res.Gate.Enforced)
		}
	}
}

func TestIngestMatrixBadList(t *testing.T) {
	code, _, stderr := runBench(t, "-exp", "ingest-matrix", "-shards-list", "1,zero")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr, "shards-list") {
		t.Errorf("stderr does not name the bad flag:\n%s", stderr)
	}
}

func TestIngestSmoke(t *testing.T) {
	code, stdout, stderr := runBench(t,
		"-exp", "ingest", "-objects", "5000", "-producers", "2", "-shards", "2", "-batch", "64", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var res ingestResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("ingest -json stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(res.Engines) != 2 || res.Objects != 5000 {
		t.Errorf("unexpected ingest result: %+v", res)
	}
}
