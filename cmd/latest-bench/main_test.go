package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListFlag(t *testing.T) {
	code, stdout, stderr := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, id := range []string{"fig3", "table1"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output missing %s:\n%s", id, stdout)
		}
	}
}

func TestMissingExpIsUsageError(t *testing.T) {
	code, _, stderr := runBench(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-exp required") {
		t.Errorf("stderr missing usage hint:\n%s", stderr)
	}
}

func TestUnknownExp(t *testing.T) {
	code, _, stderr := runBench(t, "-exp", "nonsense")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if stderr == "" {
		t.Error("no error reported for unknown experiment")
	}
}

// TestExperimentJSONAndOut runs the smallest real experiment through the
// -json and -out paths and checks both emit parseable JSON.
func TestExperimentJSONAndOut(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips real experiment run")
	}
	outPath := filepath.Join(t.TempDir(), "res.json")
	code, stdout, stderr := runBench(t,
		"-exp", "fig3", "-queries", "60", "-pretrain", "30",
		"-window", "2000", "-rate", "0.5", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var viaStdout map[string]any
	if err := json.Unmarshal([]byte(stdout), &viaStdout); err != nil {
		t.Fatalf("-json stdout is not JSON: %v\n%s", err, stdout)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var viaFile []map[string]any
	if err := json.Unmarshal(raw, &viaFile); err != nil {
		t.Fatalf("-out file is not a JSON array: %v", err)
	}
	if len(viaFile) != 1 {
		t.Fatalf("-out collected %d results, want 1", len(viaFile))
	}
}

func TestQueryBenchJSONOut(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_query.json")
	code, stdout, stderr := runBench(t,
		"-exp", "query", "-queries", "60", "-shards", "2", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var res queryResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("query -json stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(res.Engines) != 3 {
		t.Fatalf("query result has %d engines, want 3", len(res.Engines))
	}
	for _, e := range res.Engines {
		// The sharded engine fans a query out to every overlapping shard, so
		// its merged histogram legitimately records more samples.
		if e.Engine == "sharded" {
			if e.Queries < 60 {
				t.Errorf("sharded recorded %d samples, want >= 60", e.Queries)
			}
		} else if e.Queries != 60 {
			t.Errorf("%s recorded %d queries, want 60", e.Engine, e.Queries)
		}
		if e.P99Us < e.P50Us {
			t.Errorf("%s p99 %.1fµs below p50 %.1fµs", e.Engine, e.P99Us, e.P50Us)
		}
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Errorf("-out file not written: %v", err)
	}
}

func TestIngestSmoke(t *testing.T) {
	code, stdout, stderr := runBench(t,
		"-exp", "ingest", "-objects", "5000", "-producers", "2", "-shards", "2", "-batch", "64", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var res ingestResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("ingest -json stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(res.Engines) != 2 || res.Objects != 5000 {
		t.Errorf("unexpected ingest result: %+v", res)
	}
}
