// latest-check is the CI entry point of the correctness-verification
// subsystem (internal/check). It runs the differential harness, the
// metamorphic property families, the estimator error envelopes and the
// golden-trace replay, and exits non-zero on the first divergence.
//
// Usage:
//
//	latest-check                       # everything, short-mode budgets
//	latest-check -mode diff -seed 7    # differential only, custom seed
//	latest-check -mode golden -update  # refresh goldens after an intentional change
//	latest-check -mode write-trace     # regenerate the trace (generator changes only)
//
// The golden directory defaults to testdata/check relative to the working
// directory, i.e. run it from the repo root.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/spatiotext/latest/internal/check"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so tests can drive every mode.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latest-check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode    = fs.String("mode", "all", "diff | meta | envelope | golden | write-trace | all")
		update  = fs.Bool("update", false, "golden mode: rewrite golden files instead of comparing")
		dir     = fs.String("testdata", filepath.Join("testdata", "check"), "golden file directory")
		seed    = fs.Int64("seed", 0, "differential seed override (0 = default)")
		queries = fs.Int("queries", 0, "differential query count override (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ok := true
	runs := map[string]func(io.Writer, io.Writer) bool{
		"diff":     func(out, errw io.Writer) bool { return runDiff(out, errw, *seed, *queries) },
		"meta":     runMeta,
		"envelope": runEnvelope,
		"golden": func(out, errw io.Writer) bool {
			return runGolden(out, errw, *dir, *update)
		},
	}
	order := []string{"diff", "meta", "envelope", "golden"}
	switch *mode {
	case "all":
		for _, m := range order {
			ok = runs[m](stdout, stderr) && ok
		}
	case "write-trace":
		ok = writeTrace(stdout, stderr, *dir)
	default:
		fn, known := runs[*mode]
		if !known {
			fmt.Fprintf(stderr, "latest-check: unknown -mode %q\n", *mode)
			return 2
		}
		ok = fn(stdout, stderr)
	}
	if !ok {
		fmt.Fprintln(stderr, "latest-check: FAIL")
		return 1
	}
	fmt.Fprintln(stdout, "latest-check: ok")
	return 0
}

func runDiff(stdout, stderr io.Writer, seed int64, queries int) bool {
	cfg := check.DefaultDiffConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	report, err := check.RunDifferential(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "latest-check: differential: %v\n", err)
		return false
	}
	fmt.Fprintln(stdout, report.Summary())
	for _, d := range report.Details {
		fmt.Fprintf(stderr, "  divergence: %s\n", d)
	}
	return report.Ok()
}

func runMeta(stdout, stderr io.Writer) bool {
	report, err := check.RunMetamorphic(check.DefaultMetaConfig())
	if err != nil {
		fmt.Fprintf(stderr, "latest-check: metamorphic: %v\n", err)
		return false
	}
	fmt.Fprintln(stdout, report.Summary())
	for _, d := range report.Details {
		fmt.Fprintf(stderr, "  violation: %s\n", d)
	}
	return report.Ok()
}

func runEnvelope(stdout, stderr io.Writer) bool {
	results, err := check.RunEnvelopes(check.DefaultEnvelopeConfig(), check.DefaultEnvelopes())
	if err != nil {
		fmt.Fprintf(stderr, "latest-check: envelopes: %v\n", err)
		return false
	}
	ok := true
	for i := range results {
		fmt.Fprintln(stdout, results[i].Summary())
		for _, v := range results[i].Violations {
			fmt.Fprintf(stderr, "  violation: %s\n", v)
			ok = false
		}
	}
	return ok
}

func writeTrace(stdout, stderr io.Writer, dir string) bool {
	path := filepath.Join(dir, "trace_twitter.jsonl")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "latest-check: %v\n", err)
		return false
	}
	if err := check.WriteTrace(f); err != nil {
		f.Close()
		fmt.Fprintf(stderr, "latest-check: write trace: %v\n", err)
		return false
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "latest-check: %v\n", err)
		return false
	}
	fmt.Fprintf(stdout, "wrote %s (%+v)\n", path, check.TraceSpec)
	return true
}

func runGolden(stdout, stderr io.Writer, dir string, update bool) bool {
	trace := filepath.Join(dir, "trace_twitter.jsonl")
	counts, decisions, err := check.RunGoldenFile(trace, check.DefaultGoldenConfig())
	if err != nil {
		fmt.Fprintf(stderr, "latest-check: golden replay: %v\n", err)
		return false
	}
	ok := true
	for _, g := range []struct{ name, got string }{
		{"golden_counts.txt", counts},
		{"golden_decisions.txt", decisions},
	} {
		path := filepath.Join(dir, g.name)
		if update {
			if err := os.WriteFile(path, []byte(g.got), 0o644); err != nil {
				fmt.Fprintf(stderr, "latest-check: %v\n", err)
				return false
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "latest-check: %v (run -mode golden -update to create)\n", err)
			ok = false
			continue
		}
		if string(want) == g.got {
			fmt.Fprintf(stdout, "golden %s: match\n", g.name)
			continue
		}
		ok = false
		fmt.Fprintf(stderr, "golden %s: DIVERGED (refresh with -update only for intentional semantics changes)\n", g.name)
		for _, line := range check.DiffLines(string(want), g.got, 10) {
			fmt.Fprintf(stderr, "  %s\n", line)
		}
	}
	return ok
}
