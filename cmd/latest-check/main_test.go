package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoTestdata points at the checked-in golden directory from this package.
const repoTestdata = "../../testdata/check"

func runCheck(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunDiffMode(t *testing.T) {
	code, stdout, stderr := runCheck(t, "-mode", "diff", "-queries", "120")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "0 mismatches") {
		t.Errorf("stdout missing mismatch summary:\n%s", stdout)
	}
}

func TestRunMetaMode(t *testing.T) {
	code, stdout, stderr := runCheck(t, "-mode", "meta")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "0 violations") {
		t.Errorf("stdout missing violation summary:\n%s", stdout)
	}
}

func TestRunGoldenModeAgainstCheckedIn(t *testing.T) {
	code, stdout, stderr := runCheck(t, "-mode", "golden", "-testdata", repoTestdata)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "golden_counts.txt: match") ||
		!strings.Contains(stdout, "golden_decisions.txt: match") {
		t.Errorf("stdout missing match lines:\n%s", stdout)
	}
}

// TestGoldenUpdateRoundTrip regenerates the trace and goldens into a temp
// dir and verifies a follow-up comparison run passes — the refresh flow
// documented in golden.go, end to end.
func TestGoldenUpdateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if code, _, stderr := runCheck(t, "-mode", "write-trace", "-testdata", dir); code != 0 {
		t.Fatalf("write-trace exit %d, stderr:\n%s", code, stderr)
	}
	if code, _, stderr := runCheck(t, "-mode", "golden", "-update", "-testdata", dir); code != 0 {
		t.Fatalf("golden -update exit %d, stderr:\n%s", code, stderr)
	}
	if code, _, stderr := runCheck(t, "-mode", "golden", "-testdata", dir); code != 0 {
		t.Fatalf("golden compare exit %d, stderr:\n%s", code, stderr)
	}
	// The regenerated trace must be byte-identical to the checked-in one.
	fresh, err := os.ReadFile(filepath.Join(dir, "trace_twitter.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(filepath.Join(repoTestdata, "trace_twitter.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, committed) {
		t.Error("regenerated trace differs from checked-in trace_twitter.jsonl")
	}
}

func TestGoldenModeDetectsDivergence(t *testing.T) {
	dir := t.TempDir()
	if code, _, stderr := runCheck(t, "-mode", "write-trace", "-testdata", dir); code != 0 {
		t.Fatalf("write-trace exit %d, stderr:\n%s", code, stderr)
	}
	if code, _, stderr := runCheck(t, "-mode", "golden", "-update", "-testdata", dir); code != 0 {
		t.Fatalf("golden -update exit %d, stderr:\n%s", code, stderr)
	}
	// Corrupt one golden line; the comparison must fail with a line diff.
	path := filepath.Join(dir, "golden_counts.txt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("tampered\n"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCheck(t, "-mode", "golden", "-testdata", dir)
	if code == 0 {
		t.Fatal("tampered golden accepted")
	}
	if !strings.Contains(stderr, "DIVERGED") || !strings.Contains(stderr, "line 1") {
		t.Errorf("stderr missing divergence diff:\n%s", stderr)
	}
}

func TestUnknownMode(t *testing.T) {
	code, _, stderr := runCheck(t, "-mode", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown -mode") {
		t.Errorf("stderr missing mode error:\n%s", stderr)
	}
}
