// latest-loadgen drives a running latestd over the wire protocol with a
// mixed feed/query workload and reports throughput, latency percentiles,
// and error counts as JSON — the serving layer's benchmark harness and
// smoke-test driver.
//
// Closed loop (default): each connection keeps exactly one request
// outstanding and issues the next as soon as the previous answers, until
// -requests complete. Open loop: -qps paces request starts at a target
// rate regardless of completions, which surfaces queueing collapse the
// closed loop hides.
//
//	latest-loadgen -addr 127.0.0.1:7707 -requests 5000 -conns 4 -feed-frac 0.9
//	latest-loadgen -addr 127.0.0.1:7707 -qps 2000 -duration 30s -out bench.json
//	latest-loadgen -addr 127.0.0.1:7707,127.0.0.1:7717,127.0.0.1:7727 -conns 6
//
// -addr accepts a comma-separated target list: worker i drives target
// i mod N, and the report carries a per-target request/error/latency
// split alongside the aggregate — the harness for N-daemon scaling runs
// and for driving a cluster through several router replicas.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type loadOptions struct {
	addr     string
	conns    int
	requests int
	duration time.Duration
	qps      float64
	feedFrac float64
	batch    int
	dataset  string
	wlName   string
	seed     int64
	deadline time.Duration
	outPath  string
}

// latencyStats summarizes one client-side latency distribution in
// microseconds.
type latencyStats struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

func latencyOf(hs telemetry.HistSnapshot) latencyStats {
	return latencyStats{
		P50:  float64(hs.P50().Microseconds()),
		P95:  float64(hs.P95().Microseconds()),
		P99:  float64(hs.P99().Microseconds()),
		Max:  float64(hs.Max.Microseconds()),
		Mean: float64(hs.Mean().Microseconds()),
	}
}

// report is the JSON result shape; BENCH_serve.json stores one of these
// per datapoint.
type report struct {
	Addr        string  `json:"addr"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Conns       int     `json:"conns"`
	FeedFrac    float64 `json:"feed_frac"`
	BatchSize   int     `json:"batch_size"`
	Dataset     string  `json:"dataset"`
	Workload    string  `json:"workload"`
	Seed        int64   `json:"seed"`
	Requests    uint64  `json:"requests"`
	Feeds       uint64  `json:"feeds"`
	FeedObjects uint64  `json:"feed_objects"`
	Queries     uint64  `json:"queries"`
	Errors      uint64  `json:"errors"`
	Drained     uint64  `json:"drained"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	Throughput  float64 `json:"requests_per_sec"`
	// LatencyUS covers all successful requests; FeedLatencyUS and
	// QueryLatencyUS split it by operation.
	LatencyUS      latencyStats `json:"latency_us"`
	FeedLatencyUS  latencyStats `json:"feed_latency_us"`
	QueryLatencyUS latencyStats `json:"query_latency_us"`
	// ErrorCodes counts failed requests by wire error code name (plus
	// "timeout" for client-side deadline expiry and "conn" for transport
	// failures).
	ErrorCodes map[string]uint64 `json:"error_codes,omitempty"`
	// PerTarget splits the run by target address when -addr lists
	// several; one entry per target in flag order.
	PerTarget []targetReport `json:"per_target,omitempty"`
}

// targetReport is one target's slice of a multi-target run.
type targetReport struct {
	Addr      string       `json:"addr"`
	Requests  uint64       `json:"requests"`
	Errors    uint64       `json:"errors"`
	LatencyUS latencyStats `json:"latency_us"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latest-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o loadOptions
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7707", "latestd wire address, or a comma-separated list (worker i drives target i mod N)")
	fs.IntVar(&o.conns, "conns", 4, "concurrent connections (one worker each)")
	fs.IntVar(&o.requests, "requests", 5000, "total requests for closed-loop mode")
	fs.DurationVar(&o.duration, "duration", 0, "run length for open-loop mode (with -qps)")
	fs.Float64Var(&o.qps, "qps", 0, "open-loop target request rate; 0 = closed loop")
	fs.Float64Var(&o.feedFrac, "feed-frac", 0.9, "fraction of requests that are feed batches (rest are estimates)")
	fs.IntVar(&o.batch, "batch", 64, "objects per feed batch")
	fs.StringVar(&o.dataset, "dataset", "Twitter", "synthetic dataset preset for objects and query sampling")
	fs.StringVar(&o.wlName, "workload", "TwQW1", "query workload preset")
	fs.Int64Var(&o.seed, "seed", 42, "deterministic workload seed")
	fs.DurationVar(&o.deadline, "request-deadline", 5*time.Second, "per-request deadline")
	fs.StringVar(&o.outPath, "out", "", "write the JSON report here as well as stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.conns <= 0 || o.batch <= 0 || o.feedFrac < 0 || o.feedFrac > 1 {
		fmt.Fprintln(stderr, "latest-loadgen: invalid -conns/-batch/-feed-frac")
		return 2
	}
	if o.qps > 0 && o.duration <= 0 {
		fmt.Fprintln(stderr, "latest-loadgen: open loop (-qps) requires -duration")
		return 2
	}
	switch o.dataset {
	case "Twitter", "eBird", "CheckIn":
	default:
		fmt.Fprintf(stderr, "latest-loadgen: unknown -dataset %q (want Twitter, eBird, or CheckIn)\n", o.dataset)
		return 2
	}
	if !knownWorkload(o.wlName) {
		fmt.Fprintf(stderr, "latest-loadgen: unknown -workload %q (one of %v)\n", o.wlName, workload.Names())
		return 2
	}

	rep, err := drive(o, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "latest-loadgen:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if o.outPath != "" {
		f, err := os.Create(o.outPath)
		if err != nil {
			fmt.Fprintln(stderr, "latest-loadgen:", err)
			return 1
		}
		je := json.NewEncoder(f)
		je.SetIndent("", "  ")
		je.Encode(rep)
		f.Close()
	}
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

func knownWorkload(name string) bool {
	for _, n := range workload.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// worker is one connection's request loop state.
type worker struct {
	c   *client.Client
	tc  *targetCounters
	rng *rand.Rand
	gen *datagen.Generator
	wl  *workload.Generator
	now int64
}

// targetCounters accumulates one target's slice of the run.
type targetCounters struct {
	addr     string
	requests atomic.Uint64
	errors   atomic.Uint64
	hist     telemetry.Histogram
}

// splitTargets parses the -addr list.
func splitTargets(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func drive(o loadOptions, stderr io.Writer) (*report, error) {
	rep := &report{
		Addr: o.addr, Conns: o.conns, FeedFrac: o.feedFrac, BatchSize: o.batch,
		Dataset: o.dataset, Workload: o.wlName, Seed: o.seed,
		Mode: "closed",
	}
	if o.qps > 0 {
		rep.Mode = "open"
	}

	var (
		requests, feeds, feedObjects, queries, errorsN, drained atomic.Uint64
		hist, feedHist, queryHist                               telemetry.Histogram
		remaining                                               atomic.Int64
		stop                                                    atomic.Bool

		errMu    sync.Mutex
		errCodes = map[string]uint64{}
	)
	remaining.Store(int64(o.requests))
	countErr := func(err error) {
		code := "conn"
		var se *client.ServerError
		switch {
		case errors.As(err, &se):
			code = se.Name
		case errors.Is(err, context.DeadlineExceeded):
			code = "timeout"
		}
		errMu.Lock()
		errCodes[code]++
		errMu.Unlock()
	}

	targets := splitTargets(o.addr)
	if len(targets) == 0 {
		return nil, errors.New("-addr lists no targets")
	}
	perTarget := make([]*targetCounters, len(targets))
	for i, addr := range targets {
		perTarget[i] = &targetCounters{addr: addr}
	}
	workers := make([]*worker, o.conns)
	for i := range workers {
		gen := datagen.ByName(o.dataset, o.seed+int64(i)*101, 1000)
		spec := workload.ByName(o.wlName)
		tc := perTarget[i%len(targets)]
		workers[i] = &worker{
			c:   client.Dial(tc.addr, client.Options{RequestTimeout: o.deadline}),
			tc:  tc,
			rng: rand.New(rand.NewSource(o.seed + int64(i)*977)),
			gen: gen,
			wl:  workload.NewGenerator(spec, gen, 1<<30),
		}
	}
	defer func() {
		for _, w := range workers {
			w.c.Close()
		}
	}()

	// one issues a single request and classifies the outcome.
	one := func(w *worker) {
		ctx, cancel := context.WithTimeout(context.Background(), o.deadline)
		defer cancel()
		start := time.Now()
		var err error
		isFeed := w.rng.Float64() < o.feedFrac
		if isFeed {
			objs := make([]latest.Object, o.batch)
			for j := range objs {
				objs[j] = w.gen.Next()
			}
			w.now = objs[len(objs)-1].Timestamp
			_, err = w.c.FeedBatch(ctx, objs)
			if err == nil {
				feeds.Add(1)
				feedObjects.Add(uint64(len(objs)))
			}
		} else {
			q := w.wl.Next(w.now)
			_, err = w.c.Estimate(ctx, q)
			if err == nil {
				queries.Add(1)
			}
		}
		requests.Add(1)
		w.tc.requests.Add(1)
		if err == nil {
			lat := time.Since(start)
			hist.Record(lat)
			w.tc.hist.Record(lat)
			if isFeed {
				feedHist.Record(lat)
			} else {
				queryHist.Record(lat)
			}
			return
		}
		if client.IsDraining(err) {
			// The server is going away cleanly: not a protocol error.
			drained.Add(1)
			stop.Store(true)
			return
		}
		countErr(err)
		errorsN.Add(1)
		w.tc.errors.Add(1)
		if errorsN.Load() <= 5 {
			fmt.Fprintln(stderr, "latest-loadgen: request error:", err)
		}
	}

	begin := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if o.qps > 0 {
				// Open loop: pace request starts; each worker owns an
				// interleaved slice of the global schedule.
				interval := time.Duration(float64(o.conns) / o.qps * float64(time.Second))
				end := begin.Add(o.duration)
				next := time.Now()
				for time.Now().Before(end) && !stop.Load() {
					one(w)
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
				return
			}
			// Closed loop: one outstanding request per connection.
			for remaining.Add(-1) >= 0 && !stop.Load() {
				one(w)
			}
		}(w)
	}
	wg.Wait()

	rep.Requests = requests.Load()
	rep.Feeds = feeds.Load()
	rep.FeedObjects = feedObjects.Load()
	rep.Queries = queries.Load()
	rep.Errors = errorsN.Load()
	rep.Drained = drained.Load()
	rep.ElapsedSec = time.Since(begin).Seconds()
	if rep.ElapsedSec > 0 {
		rep.Throughput = float64(rep.Requests) / rep.ElapsedSec
	}
	rep.LatencyUS = latencyOf(hist.Snapshot())
	rep.FeedLatencyUS = latencyOf(feedHist.Snapshot())
	rep.QueryLatencyUS = latencyOf(queryHist.Snapshot())
	if len(errCodes) > 0 {
		rep.ErrorCodes = errCodes
	}
	if len(perTarget) > 1 {
		for _, tc := range perTarget {
			rep.PerTarget = append(rep.PerTarget, targetReport{
				Addr:      tc.addr,
				Requests:  tc.requests.Load(),
				Errors:    tc.errors.Load(),
				LatencyUS: latencyOf(tc.hist.Snapshot()),
			})
		}
	}
	return rep, nil
}
