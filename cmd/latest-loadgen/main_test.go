package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/server"
)

func startTestServer(t *testing.T) string {
	t.Helper()
	eng, err := latest.NewConcurrent(latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv.Addr()
}

// TestClosedLoop: the default mode completes the exact request budget with
// zero errors against a live server and reports sane numbers.
func TestClosedLoop(t *testing.T) {
	addr := startTestServer(t)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", addr,
		"-conns", "2",
		"-requests", "300",
		"-batch", "16",
		"-feed-frac", "0.9",
		"-seed", "7",
		"-out", outPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}

	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Requests != 300 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	if rep.Feeds == 0 || rep.Queries == 0 {
		t.Fatalf("mix degenerate: feeds=%d queries=%d", rep.Feeds, rep.Queries)
	}
	if rep.Mode != "closed" || rep.Throughput <= 0 || rep.LatencyUS.P50 < 0 {
		t.Fatalf("report malformed: %+v", rep)
	}
	// -out writes the identical report.
	fileBytes, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var fromFile report
	if err := json.Unmarshal(fileBytes, &fromFile); err != nil || fromFile.Requests != rep.Requests {
		t.Fatalf("file report mismatch: %v %+v", err, fromFile)
	}
}

// TestOpenLoop: -qps paces a fixed-duration run.
func TestOpenLoop(t *testing.T) {
	addr := startTestServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", addr,
		"-conns", "2",
		"-qps", "500",
		"-duration", "300ms",
		"-feed-frac", "0.5",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("open loop report: %+v", rep)
	}
	// Open loop must not massively overshoot its schedule: 500 qps for
	// 300ms is ~150 starts; allow generous slack for coarse pacing.
	if rep.Requests > 400 {
		t.Fatalf("open loop overshot: %d requests", rep.Requests)
	}
}

// TestMultiTarget: a comma-separated -addr splits workers round-robin
// across targets and the report carries per-target slices that sum to the
// aggregate.
func TestMultiTarget(t *testing.T) {
	addrA, addrB := startTestServer(t), startTestServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", addrA + ", " + addrB,
		"-conns", "4",
		"-requests", "200",
		"-batch", "8",
		"-seed", "11",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Requests != 200 {
		t.Fatalf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	if len(rep.PerTarget) != 2 {
		t.Fatalf("per_target has %d entries, want 2: %+v", len(rep.PerTarget), rep)
	}
	var sum uint64
	for i, tr := range rep.PerTarget {
		if tr.Requests == 0 {
			t.Fatalf("target %d (%s) drove no requests", i, tr.Addr)
		}
		if tr.Errors != 0 {
			t.Fatalf("target %d (%s) errors=%d", i, tr.Addr, tr.Errors)
		}
		sum += tr.Requests
	}
	if sum != rep.Requests {
		t.Fatalf("per-target sum %d != total %d", sum, rep.Requests)
	}
	if rep.PerTarget[0].Addr != addrA || rep.PerTarget[1].Addr != addrB {
		t.Fatalf("per-target order %+v, want flag order %s,%s", rep.PerTarget, addrA, addrB)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-conns", "0"},
		{"-feed-frac", "1.5"},
		{"-qps", "100"}, // missing -duration
		{"-dataset", "Mars"},
		{"-workload", "NotAWorkload"},
		{"-addr", " , "},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}
