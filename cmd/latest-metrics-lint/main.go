// Command latest-metrics-lint validates a Prometheus text exposition
// (format 0.0.4) against the format contract scrapers depend on: line
// grammar, name charsets, HELP/TYPE placement, label escaping, and
// histogram structure (le on every bucket, cumulative monotone counts,
// +Inf equal to _count).
//
// It is the CI metrics-lint gate: point it at a live daemon with -url, at
// a captured scrape file, or pipe a scrape through stdin. Exit status is 0
// for a clean exposition, 1 with every violation on stderr otherwise.
//
//	latest-metrics-lint -url http://127.0.0.1:9090/metrics
//	latest-metrics-lint metrics.txt
//	curl -s $ADMIN/metrics | latest-metrics-lint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/spatiotext/latest/internal/telemetry"
)

func main() {
	url := flag.String("url", "", "scrape this /metrics URL instead of reading files or stdin")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout with -url")
	flag.Parse()

	type source struct {
		name string
		r    io.ReadCloser
	}
	var sources []source
	switch {
	case *url != "":
		cl := &http.Client{Timeout: *timeout}
		resp, err := cl.Get(*url)
		if err != nil {
			fatal("scrape %s: %v", *url, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fatal("scrape %s: status %s", *url, resp.Status)
		}
		sources = append(sources, source{*url, resp.Body})
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal("%v", err)
			}
			sources = append(sources, source{path, f})
		}
	default:
		sources = append(sources, source{"<stdin>", os.Stdin})
	}

	failed := false
	for _, src := range sources {
		errs := telemetry.LintProm(src.r)
		src.r.Close()
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "%s: %v\n", src.name, e)
		}
		if len(errs) > 0 {
			failed = true
		} else {
			fmt.Printf("%s: exposition clean\n", src.name)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "latest-metrics-lint: "+format+"\n", args...)
	os.Exit(1)
}
