// latest-router fronts a multi-node LATEST cluster: it speaks the binary
// wire protocol to clients on one TCP listener, owns a pipelined client
// per latestd node, and routes by the spatial partition map — feeds go to
// the cell owner, spatial queries forward to a single owner or
// scatter-gather across owners with exact boundary clipping, keyword-only
// queries broadcast. Unmodified clients talk to the cluster exactly as
// they talk to one node.
//
// Usage:
//
//	latest-router -map /etc/latest/cluster.map
//	latest-router -seed 127.0.0.1:7707,127.0.0.1:7717 -addr 127.0.0.1:7700
//	latest-router -write-map -world -125,24,-66,50 -grid 8x4 \
//	    -nodes 127.0.0.1:7707,127.0.0.1:7717,127.0.0.1:7727 \
//	    -epoch 1 -out cluster.map
//
// The partition map comes from -map (a file authored with -write-map) or
// is fetched over the wire from the first reachable -seed node. When a
// node answers with a newer epoch, the router refetches and retries
// transparently.
//
// -write-map authors a map file and exits: it assigns the uniform grid's
// column stripes to the listed nodes, encodes with the epoch and a CRC,
// and prints the assignment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/telemetry"
)

func main() {
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGTERM, os.Interrupt)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, shutdown))
}

type routerOptions struct {
	addr         string
	adminAddr    string
	addrFile     string
	mapFile      string
	seeds        string
	maxConns     int
	maxInFlight  int
	drainTimeout time.Duration
	reqTimeout   time.Duration
	mapRetries   int
	logLevel     string

	writeMap bool
	worldStr string
	gridStr  string
	nodesStr string
	epoch    uint64
	outFile  string
}

// run is the testable entrypoint: flags in, exit code out, shutdown
// triggered by whatever the caller feeds the signal channel.
func run(args []string, stdout, stderr io.Writer, shutdown <-chan os.Signal) int {
	fs := flag.NewFlagSet("latest-router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o routerOptions
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7700", "wire-protocol listen address (port 0 = kernel-assigned)")
	fs.StringVar(&o.adminAddr, "admin", "127.0.0.1:0", "admin/metrics listen address; empty disables the admin plane")
	fs.StringVar(&o.addrFile, "addr-file", "", "write the bound addresses here (line 1 wire, line 2 admin) once listening")
	fs.StringVar(&o.mapFile, "map", "", "partition map file (author one with -write-map)")
	fs.StringVar(&o.seeds, "seed", "", "comma-separated node addresses to fetch the map from (alternative to -map)")
	fs.IntVar(&o.maxConns, "max-conns", 256, "maximum concurrent wire connections")
	fs.IntVar(&o.maxInFlight, "max-inflight", 64, "per-connection in-flight request window")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "bound on graceful drain before force-closing connections")
	fs.DurationVar(&o.reqTimeout, "request-timeout", 10*time.Second, "per-node request deadline budget")
	fs.IntVar(&o.mapRetries, "map-retries", 0, "refetch-and-retry budget on stale-map refusals (0 = library default)")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log severity: debug, info, warn, error")

	fs.BoolVar(&o.writeMap, "write-map", false, "author a partition map file and exit")
	fs.StringVar(&o.worldStr, "world", "-125,24,-66,50", "(-write-map) world rect: minx,miny,maxx,maxy")
	fs.StringVar(&o.gridStr, "grid", "8x4", "(-write-map) partition grid: COLSxROWS")
	fs.StringVar(&o.nodesStr, "nodes", "", "(-write-map) comma-separated node addresses, territory owners in stripe order")
	fs.Uint64Var(&o.epoch, "epoch", 1, "(-write-map) map epoch; nodes refuse with this number so stale routers refetch")
	fs.StringVar(&o.outFile, "out", "cluster.map", "(-write-map) output file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var err error
	if o.writeMap {
		err = writeMap(o, stdout)
	} else {
		err = serve(o, stdout, stderr, shutdown)
	}
	if err != nil {
		fmt.Fprintln(stderr, "latest-router:", err)
		return 1
	}
	return 0
}

// parseWorld parses "minx,miny,maxx,maxy".
func parseWorld(spec string) (geo.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("want minx,miny,maxx,maxy, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, err
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Empty() {
		return geo.Rect{}, fmt.Errorf("invalid world %v", r)
	}
	return r, nil
}

// parseGrid parses "COLSxROWS".
func parseGrid(spec string) (cols, rows int, err error) {
	parts := strings.SplitN(strings.ToLower(spec), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want COLSxROWS, got %q", spec)
	}
	if cols, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, err
	}
	if rows, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, err
	}
	return cols, rows, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseLevel(s string) (telemetry.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return telemetry.LevelDebug, nil
	case "info":
		return telemetry.LevelInfo, nil
	case "warn":
		return telemetry.LevelWarn, nil
	case "error":
		return telemetry.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q", s)
}

// writeMap authors a partition map file: uniform grid, column stripes
// assigned to the listed nodes in order.
func writeMap(o routerOptions, stdout io.Writer) error {
	world, err := parseWorld(o.worldStr)
	if err != nil {
		return fmt.Errorf("-world: %w", err)
	}
	cols, rows, err := parseGrid(o.gridStr)
	if err != nil {
		return fmt.Errorf("-grid: %w", err)
	}
	nodes := splitList(o.nodesStr)
	if len(nodes) == 0 {
		return errors.New("-write-map needs -nodes")
	}
	m, err := cluster.Uniform(world, cols, rows, nodes, o.epoch)
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.outFile, m.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "latest-router wrote %s: epoch=%d grid=%dx%d world=%v\n",
		o.outFile, m.Epoch, m.Cols, m.Rows, m.World)
	for i, addr := range m.Nodes {
		cells := 0
		for _, owner := range m.Owners {
			if int(owner) == i {
				cells++
			}
		}
		fmt.Fprintf(stdout, "  node %d %s owns %d/%d cells\n", i, addr, cells, len(m.Owners))
	}
	return nil
}

// buildCluster resolves the partition map — from the -map file or fetched
// from the first reachable -seed — and dials the member nodes.
func buildCluster(o routerOptions, copts client.Options) (*client.Cluster, error) {
	switch {
	case o.mapFile != "" && o.seeds != "":
		return nil, errors.New("-map and -seed are mutually exclusive")
	case o.mapFile != "":
		raw, err := os.ReadFile(o.mapFile)
		if err != nil {
			return nil, fmt.Errorf("-map: %w", err)
		}
		cl, err := client.NewClusterFromMap(raw, copts)
		if err != nil {
			return nil, fmt.Errorf("-map %s: %w", o.mapFile, err)
		}
		return cl, nil
	case o.seeds != "":
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		cl, err := client.DialCluster(ctx, splitList(o.seeds), copts)
		if err != nil {
			return nil, fmt.Errorf("-seed: %w", err)
		}
		return cl, nil
	default:
		return nil, errors.New("need -map FILE or -seed ADDRS (or -write-map)")
	}
}

func serve(o routerOptions, stdout, stderr io.Writer, shutdown <-chan os.Signal) error {
	level, err := parseLevel(o.logLevel)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(stderr, level)
	cl, err := buildCluster(o, client.Options{RequestTimeout: o.reqTimeout})
	if err != nil {
		return err
	}
	if o.mapRetries > 0 {
		cl.Router().SetMaxMapRetries(o.mapRetries)
	}
	p, err := cluster.NewProxy(cl, cluster.ProxyConfig{
		Addr:        o.addr,
		AdminAddr:   o.adminAddr,
		MaxConns:    o.maxConns,
		MaxInFlight: o.maxInFlight,
		Log:         log,
	})
	if err != nil {
		cl.Close()
		return err
	}

	if o.addrFile != "" {
		content := p.Addr() + "\n" + p.AdminAddr() + "\n"
		if err := os.WriteFile(o.addrFile, []byte(content), 0o644); err != nil {
			p.Close()
			cl.Close()
			return fmt.Errorf("-addr-file: %w", err)
		}
	}
	fmt.Fprintf(stdout, "latest-router listening addr=%s admin=%s epoch=%d nodes=%d\n",
		p.Addr(), p.AdminAddr(), cl.Epoch(), len(cl.Nodes()))

	select {
	case sig := <-shutdown:
		fmt.Fprintf(stdout, "latest-router draining reason=%v\n", sig)
	case <-p.DrainRequested():
		fmt.Fprintln(stdout, "latest-router draining reason=admin")
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := p.Shutdown(ctx)
	closeErr := cl.Close()
	fmt.Fprintln(stdout, "latest-router stopped")
	return errors.Join(drainErr, closeErr)
}
