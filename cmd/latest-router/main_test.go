package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/server"
	"github.com/spatiotext/latest/internal/stream"
)

var testWorld = geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}

// startClusterNodes pre-binds n listeners, builds the partition map naming
// their real addresses, and starts one clustered server per listener.
func startClusterNodes(t *testing.T, n int) *cluster.Map {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m, err := cluster.Uniform(testWorld, 3*n, 1, addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range lns {
		eng, err := latest.NewConcurrent(testWorld, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(eng, server.Config{Listener: ln, ClusterMap: m, NodeID: i})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			eng.Shutdown(context.Background())
		})
	}
	return m
}

// startRouter runs the router command in a goroutine and waits for the
// addr file, mirroring the latestd test harness.
func startRouter(t *testing.T, extraArgs ...string) (addr string, shutdown chan os.Signal, wait func() (int, string)) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "router.addr")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-drain-timeout", "5s",
	}, extraArgs...)

	var stdout, stderr bytes.Buffer
	var mu sync.Mutex
	shutdown = make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		mu.Lock()
		defer mu.Unlock()
		done <- run(args, &stdout, &stderr, shutdown)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && bytes.Count(b, []byte("\n")) >= 2 {
			addr = strings.Split(string(b), "\n")[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never wrote addr file; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	wait = func() (int, string) {
		select {
		case code := <-done:
			mu.Lock()
			out := stdout.String()
			mu.Unlock()
			return code, out
		case <-time.After(15 * time.Second):
			t.Fatal("router did not exit")
			return -1, ""
		}
	}
	return addr, shutdown, wait
}

func writeMapFile(t *testing.T, m *cluster.Map) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.map")
	if err := os.WriteFile(path, m.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func spreadObjects(n int) []latest.Object {
	objs := make([]latest.Object, n)
	for i := range objs {
		o := stream.Object{ID: uint64(i + 1), Timestamp: int64(i + 1), Keywords: []string{"fire"}}
		// Sweep west to east so every node's territory receives objects.
		o.Loc = geo.Pt(-170+float64(i)*340/float64(n), 10)
		objs[i] = o
	}
	return objs
}

// TestWriteMapMode: -write-map authors a decodable map and prints the
// stripe assignment.
func TestWriteMapMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "authored.map")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-write-map", "-world", "0,0,10,10", "-grid", "6x2",
		"-nodes", "a:1, b:2,c:3", "-epoch", "5", "-out", out,
	}, &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cluster.DecodeMap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 5 || m.Cols != 6 || m.Rows != 2 || len(m.Nodes) != 3 {
		t.Fatalf("authored map %+v", m)
	}
	if !strings.Contains(stdout.String(), "node 1 b:2 owns") {
		t.Fatalf("stdout missing assignment:\n%s", stdout.String())
	}
}

// TestRouterServeFromMapFile: the full path — three clustered daemons, a
// router fronting them from a map file, an unmodified client feeding and
// querying through the router, graceful drain.
func TestRouterServeFromMapFile(t *testing.T) {
	m := startClusterNodes(t, 3)
	addr, shutdown, wait := startRouter(t, "-map", writeMapFile(t, m))

	c := client.Dial(addr, client.Options{})
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping through router: %v", err)
	}
	if got := c.ClusterEpoch(); got != m.Epoch {
		t.Fatalf("router pong epoch %d, want %d", got, m.Epoch)
	}

	objs := spreadObjects(60)
	accepted, err := c.FeedBatch(ctx, objs)
	if err != nil || int(accepted) != len(objs) {
		t.Fatalf("feed through router: %d, %v", accepted, err)
	}

	// Whole-world query scatters across all three nodes and sums exactly.
	world := stream.SpatialQ(testWorld, int64(len(objs)))
	_, acts, err := c.QueryBatch(ctx, []latest.Query{world})
	if err != nil {
		t.Fatalf("query through router: %v", err)
	}
	if acts[0] != len(objs) {
		t.Fatalf("whole-world count %d, want %d", acts[0], len(objs))
	}

	// Keyword-only queries broadcast to every node; the summed estimate is
	// approximate but must see the stream (every node holds matches).
	kw := stream.KeywordQ([]string{"fire"}, int64(len(objs)))
	est, err := c.Estimate(ctx, kw)
	if err != nil || est <= 0 {
		t.Fatalf("keyword estimate %v, %v, want > 0", est, err)
	}

	c.Close()
	shutdown <- syscall.SIGTERM
	code, out := wait()
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"latest-router listening", "draining reason=terminated", "latest-router stopped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestRouterSeedBootstrap: with -seed the router fetches the map over the
// wire from a member node instead of reading a file.
func TestRouterSeedBootstrap(t *testing.T) {
	m := startClusterNodes(t, 2)
	// First seed is unreachable: bootstrap must fall through to the live one.
	addr, shutdown, wait := startRouter(t, "-seed", "127.0.0.1:1,"+m.Nodes[0])

	c := client.Dial(addr, client.Options{})
	defer c.Close()
	ctx := context.Background()
	objs := spreadObjects(20)
	if accepted, err := c.FeedBatch(ctx, objs); err != nil || int(accepted) != len(objs) {
		t.Fatalf("feed: %d, %v", accepted, err)
	}
	world := stream.SpatialQ(testWorld, int64(len(objs)))
	if _, acts, err := c.QueryBatch(ctx, []latest.Query{world}); err != nil || acts[0] != len(objs) {
		t.Fatalf("query: %v, %v", acts, err)
	}

	c.Close()
	shutdown <- syscall.SIGTERM
	if code, _ := wait(); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestRouterBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	cases := [][]string{
		{},                          // neither -map nor -seed
		{"-map", "x", "-seed", "y"}, // mutually exclusive
		{"-map", filepath.Join(t.TempDir(), "missing.map")},
		{"-log-level", "loud"},
		{"-write-map", "-nodes", ""},
		{"-write-map", "-nodes", "a:1", "-grid", "bogus"},
		{"-write-map", "-nodes", "a:1", "-world", "1,2,3"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		ch := make(chan os.Signal)
		if code := run(args, &out, &errOut, ch); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParseGrid(t *testing.T) {
	cols, rows, err := parseGrid("8X4")
	if err != nil || cols != 8 || rows != 4 {
		t.Fatalf("parseGrid = (%d, %d, %v)", cols, rows, err)
	}
	for _, bad := range []string{"8", "x", "ax2", "2xb"} {
		if _, _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) accepted", bad)
		}
	}
}
