// latest-run drives a LATEST module over a stream — synthetic or replayed
// from a JSONL file — and narrates what the adaptor does: phase
// transitions, pre-fills, switches, and a rolling accuracy/latency report;
// the closest thing to watching Figure 2 live.
//
// Usage:
//
//	latest-run -dataset Twitter -workload TwQW1 -queries 3000
//	latest-run -dataset eBird -workload EbRQW1 -alpha 1
//	latest-run -input mystream.jsonl -world "-125,24,-66,50" -workload TwQW1
//
// The JSONL format is one object per line:
// {"id":1,"lon":-118.2,"lat":34.0,"keywords":["fire"],"ts":1700000000000}
// with non-decreasing ts. Query focal points and keywords are then sampled
// from the replayed data itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/workload"
)

// replaySource adapts a replayed object stream into a workload.Source:
// reservoirs of recent locations and keywords stand in for the synthetic
// generator's hotspot model, so query traffic keeps tracking data density.
type replaySource struct {
	world geo.Rect
	rng   *rand.Rand
	locs  []geo.Point
	kws   []string
	nLoc  int
	nKw   int
}

const replayReservoir = 4096

func newReplaySource(world geo.Rect, seed int64) *replaySource {
	return &replaySource{world: world, rng: rand.New(rand.NewSource(seed + 0x52))}
}

// observe folds an arriving object into the sampling reservoirs.
func (s *replaySource) observe(o *stream.Object) {
	s.nLoc++
	if len(s.locs) < replayReservoir {
		s.locs = append(s.locs, o.Loc)
	} else if j := s.rng.Intn(s.nLoc); j < replayReservoir {
		s.locs[j] = o.Loc
	}
	for _, kw := range o.Keywords {
		s.nKw++
		if len(s.kws) < replayReservoir {
			s.kws = append(s.kws, kw)
		} else if j := s.rng.Intn(s.nKw); j < replayReservoir {
			s.kws[j] = kw
		}
	}
}

func (s *replaySource) World() geo.Rect { return s.world }

func (s *replaySource) SampleQueryPoint() geo.Point {
	if len(s.locs) == 0 {
		return s.world.Center()
	}
	p := s.locs[s.rng.Intn(len(s.locs))]
	// Jitter by ~1% of the world so queries don't all snap to data points.
	return s.world.Clamp(geo.Pt(
		p.X+s.rng.NormFloat64()*s.world.Width()*0.01,
		p.Y+s.rng.NormFloat64()*s.world.Height()*0.01,
	))
}

func (s *replaySource) SampleQueryKeyword() string {
	if len(s.kws) == 0 {
		return "?"
	}
	return s.kws[s.rng.Intn(len(s.kws))]
}

func (s *replaySource) QueryRand() *rand.Rand { return s.rng }

// parseWorld parses "minx,miny,maxx,maxy".
func parseWorld(spec string) (geo.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("want minx,miny,maxx,maxy, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, err
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Empty() {
		return geo.Rect{}, fmt.Errorf("invalid world %v", r)
	}
	return r, nil
}

func main() {
	var (
		dataset  = flag.String("dataset", "Twitter", "dataset: Twitter, eBird or CheckIn")
		wlName   = flag.String("workload", "TwQW1", "workload preset (TwQW1..6, EbRQW1..6, CiQW1..3)")
		queries  = flag.Int("queries", 3000, "incremental-phase query count")
		pretrain = flag.Int("pretrain", 600, "pre-training query count")
		windowMS = flag.Int64("window", 30_000, "time window T in virtual ms")
		rate     = flag.Float64("rate", 2, "stream rate (objects per virtual ms)")
		alpha    = flag.Float64("alpha", 0.5, "accuracy/latency weight α")
		tau      = flag.Float64("tau", 0.75, "switch threshold τ")
		beta     = flag.Float64("beta", 0.8, "pre-fill fraction β")
		seed     = flag.Int64("seed", 1, "random seed")
		every    = flag.Int("report", 200, "progress report interval (queries)")
		input    = flag.String("input", "", "replay a JSONL object stream instead of generating one")
		worldStr = flag.String("world", "-125,24,-66,50", "world rect for -input mode: minx,miny,maxx,maxy")
	)
	flag.Parse()

	// nextObject abstracts over synthetic generation and file replay.
	var nextObject func() (stream.Object, bool)
	var world geo.Rect
	var src workload.Source
	if *input != "" {
		w, err := parseWorld(*worldStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "latest-run: -world: %v\n", err)
			os.Exit(2)
		}
		world = w
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "latest-run: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		rd := replay.NewReader(f)
		rd.SetWorld(world)
		rs := newReplaySource(world, *seed)
		src = rs
		nextObject = func() (stream.Object, bool) {
			o, err := rd.Next()
			if err == io.EOF {
				return stream.Object{}, false
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "latest-run: %v\n", err)
				os.Exit(1)
			}
			rs.observe(&o)
			return o, true
		}
	} else {
		data := datagen.ByName(*dataset, *seed, *rate)
		world = data.World()
		src = data
		nextObject = func() (stream.Object, bool) { return data.Next(), true }
	}
	spec := workload.ByName(*wlName)
	gen := workload.NewGenerator(spec, src, *pretrain+*queries)
	oracle := stream.NewWindow(world, *windowMS, 4096)

	// Scale the monitored accuracy window to 5% of the run, matching the
	// experiments harness.
	accWindow := *queries / 20
	if accWindow < 60 {
		accWindow = 60
	}
	module, err := core.New(core.Config{
		World:           world,
		Span:            *windowMS,
		Alpha:           *alpha,
		AlphaSet:        true,
		Tau:             *tau,
		Beta:            *beta,
		AccWindow:       accWindow,
		PretrainQueries: *pretrain,
		Seed:            *seed,
		Refill: func(e estimator.Estimator) {
			oracle.Each(func(o *stream.Object) bool {
				e.Insert(o)
				return true
			})
		},
		OnSwitch: func(ev core.SwitchEvent) {
			fmt.Printf("  >> %s\n", ev)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "latest-run: %v\n", err)
		os.Exit(1)
	}

	var exhausted bool
	var lastTS int64
	feed := func(n int) {
		for i := 0; i < n && !exhausted; i++ {
			o, ok := nextObject()
			if !ok {
				exhausted = true
				return
			}
			lastTS = o.Timestamp
			oracle.Insert(o)
			module.Insert(&o)
		}
	}

	sourceName := *dataset
	if *input != "" {
		sourceName = *input
	}
	fmt.Printf("warm-up: filling one %.0fs window of %s data...\n",
		float64(*windowMS)/1000, sourceName)
	if *input != "" {
		// Replayed time is whatever the file says: fill until one window
		// has elapsed.
		o, ok := nextObject()
		if !ok {
			fmt.Fprintln(os.Stderr, "latest-run: input is empty")
			os.Exit(1)
		}
		start := o.Timestamp
		lastTS = o.Timestamp
		oracle.Insert(o)
		module.Insert(&o)
		for lastTS-start < *windowMS && !exhausted {
			feed(1024)
		}
	} else {
		feed(int(float64(*windowMS) * *rate))
	}
	fmt.Printf("window holds %d objects; starting %s (%d pre-training + %d queries)\n",
		oracle.Size(), *wlName, *pretrain, *queries)

	var lat metrics.LatencyTracker
	accSum, n := 0.0, 0
	lastPhase := module.Phase()
	for gen.Remaining() > 0 && !exhausted {
		feed(40)
		q := gen.Next(lastTS)
		start := time.Now()
		est := module.Estimate(&q)
		lat.Add(time.Since(start))
		actual := oracle.Answer(&q)
		module.Observe(float64(actual))
		accSum += metrics.Accuracy(est, float64(actual))
		n++
		if module.Phase() != lastPhase {
			fmt.Printf("  -- phase: %s -> %s (after %d queries)\n", lastPhase, module.Phase(), n)
			lastPhase = module.Phase()
		}
		if n%*every == 0 {
			s := module.Snapshot()
			fmt.Printf("q=%-6d phase=%-11s active=%-5s prefill=%-5s acc(avg)=%.3f lat(p50)=%s tree{rec=%d nodes=%d}\n",
				n, s.Phase, s.Active, orDash(s.Prefilling), accSum/float64(n),
				lat.Percentile(0.5).Round(time.Microsecond), s.TrainingRecords, s.TreeNodes)
		}
	}

	s := module.Snapshot()
	fmt.Printf("\nfinished: %d queries, overall accuracy %.3f, mean latency %s\n",
		n, accSum/float64(n), lat.Mean().Round(time.Microsecond))
	fmt.Printf("switches (%d):\n", s.Switches)
	for _, ev := range module.Switches() {
		fmt.Printf("  %s\n", ev)
	}
	if s.Switches == 0 {
		fmt.Println("  none — the workload never degraded the active estimator")
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
