// latest-run drives a LATEST module over a stream — synthetic or replayed
// from a JSONL file — and narrates what the adaptor does: phase
// transitions, pre-fills, switches, and a rolling accuracy/latency report;
// the closest thing to watching Figure 2 live.
//
// Usage:
//
//	latest-run -dataset Twitter -workload TwQW1 -queries 3000
//	latest-run -dataset eBird -workload EbRQW1 -alpha 1
//	latest-run -input mystream.jsonl -world "-125,24,-66,50" -workload TwQW1
//
// The JSONL format is one object per line:
// {"id":1,"lon":-118.2,"lat":34.0,"keywords":["fire"],"ts":1700000000000}
// with non-decreasing ts. Query focal points and keywords are then sampled
// from the replayed data itself.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/workload"
)

// replaySource adapts a replayed object stream into a workload.Source:
// reservoirs of recent locations and keywords stand in for the synthetic
// generator's hotspot model, so query traffic keeps tracking data density.
type replaySource struct {
	world geo.Rect
	rng   *rand.Rand
	locs  []geo.Point
	kws   []string
	nLoc  int
	nKw   int
}

const replayReservoir = 4096

func newReplaySource(world geo.Rect, seed int64) *replaySource {
	return &replaySource{world: world, rng: rand.New(rand.NewSource(seed + 0x52))}
}

// observe folds an arriving object into the sampling reservoirs.
func (s *replaySource) observe(o *stream.Object) {
	s.nLoc++
	if len(s.locs) < replayReservoir {
		s.locs = append(s.locs, o.Loc)
	} else if j := s.rng.Intn(s.nLoc); j < replayReservoir {
		s.locs[j] = o.Loc
	}
	for _, kw := range o.Keywords {
		s.nKw++
		if len(s.kws) < replayReservoir {
			s.kws = append(s.kws, kw)
		} else if j := s.rng.Intn(s.nKw); j < replayReservoir {
			s.kws[j] = kw
		}
	}
}

func (s *replaySource) World() geo.Rect { return s.world }

func (s *replaySource) SampleQueryPoint() geo.Point {
	if len(s.locs) == 0 {
		return s.world.Center()
	}
	p := s.locs[s.rng.Intn(len(s.locs))]
	// Jitter by ~1% of the world so queries don't all snap to data points.
	return s.world.Clamp(geo.Pt(
		p.X+s.rng.NormFloat64()*s.world.Width()*0.01,
		p.Y+s.rng.NormFloat64()*s.world.Height()*0.01,
	))
}

func (s *replaySource) SampleQueryKeyword() string {
	if len(s.kws) == 0 {
		return "?"
	}
	return s.kws[s.rng.Intn(len(s.kws))]
}

func (s *replaySource) QueryRand() *rand.Rand { return s.rng }

// parseWorld parses "minx,miny,maxx,maxy".
func parseWorld(spec string) (geo.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("want minx,miny,maxx,maxy, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, err
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Empty() {
		return geo.Rect{}, fmt.Errorf("invalid world %v", r)
	}
	return r, nil
}

// runOptions is the parsed flag set of one invocation.
type runOptions struct {
	dataset   string
	wlName    string
	queries   int
	pretrain  int
	windowMS  int64
	rate      float64
	alpha     float64
	tau       float64
	beta      float64
	seed      int64
	every     int
	input     string
	worldStr  string
	serveAddr string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so tests can drive both the
// synthetic and the replay path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latest-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o runOptions
	fs.StringVar(&o.dataset, "dataset", "Twitter", "dataset: Twitter, eBird or CheckIn")
	fs.StringVar(&o.wlName, "workload", "TwQW1", "workload preset (TwQW1..6, EbRQW1..6, CiQW1..3)")
	fs.IntVar(&o.queries, "queries", 3000, "incremental-phase query count")
	fs.IntVar(&o.pretrain, "pretrain", 600, "pre-training query count")
	fs.Int64Var(&o.windowMS, "window", 30_000, "time window T in virtual ms")
	fs.Float64Var(&o.rate, "rate", 2, "stream rate (objects per virtual ms)")
	fs.Float64Var(&o.alpha, "alpha", 0.5, "accuracy/latency weight α")
	fs.Float64Var(&o.tau, "tau", 0.75, "switch threshold τ")
	fs.Float64Var(&o.beta, "beta", 0.8, "pre-fill fraction β")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.IntVar(&o.every, "report", 200, "progress report interval (queries)")
	fs.StringVar(&o.input, "input", "", "replay a JSONL object stream instead of generating one")
	fs.StringVar(&o.worldStr, "world", "-125,24,-66,50", "world rect for -input mode: minx,miny,maxx,maxy")
	fs.StringVar(&o.serveAddr, "serve-addr", "", "replay against a running latestd at this wire address instead of an in-process module (start latestd with a matching -window)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var err error
	if o.serveAddr != "" {
		err = driveRemote(o, stdout)
	} else {
		err = drive(o, stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "latest-run: %v\n", err)
		return 1
	}
	return 0
}

// objectSource bundles one run's object stream with its world rect and the
// workload.Source that samples query focal points from it. It abstracts
// over synthetic generation and file replay for both the in-process and
// the remote (-serve-addr) drivers.
type objectSource struct {
	next    func() (stream.Object, bool, error)
	world   geo.Rect
	src     workload.Source
	name    string
	cleanup func()
}

func openSource(o runOptions) (*objectSource, error) {
	if o.input != "" {
		world, err := parseWorld(o.worldStr)
		if err != nil {
			return nil, fmt.Errorf("-world: %w", err)
		}
		f, err := os.Open(o.input)
		if err != nil {
			return nil, err
		}
		rd := replay.NewReader(f)
		rd.SetWorld(world)
		rs := newReplaySource(world, o.seed)
		next := func() (stream.Object, bool, error) {
			obj, err := rd.Next()
			if err == io.EOF {
				return stream.Object{}, false, nil
			}
			if err != nil {
				return stream.Object{}, false, err
			}
			rs.observe(&obj)
			return obj, true, nil
		}
		return &objectSource{next: next, world: world, src: rs, name: o.input,
			cleanup: func() { f.Close() }}, nil
	}
	data := datagen.ByName(o.dataset, o.seed, o.rate)
	return &objectSource{
		next:    func() (stream.Object, bool, error) { return data.Next(), true, nil },
		world:   data.World(),
		src:     data,
		name:    o.dataset,
		cleanup: func() {},
	}, nil
}

// drive executes one narrated run, writing the report to out.
func drive(o runOptions, out io.Writer) error {
	osrc, err := openSource(o)
	if err != nil {
		return err
	}
	defer osrc.cleanup()
	nextObject, world, src := osrc.next, osrc.world, osrc.src
	spec := workload.ByName(o.wlName)
	gen := workload.NewGenerator(spec, src, o.pretrain+o.queries)
	oracle := stream.NewWindow(world, o.windowMS, 4096)

	// Scale the monitored accuracy window to 5% of the run, matching the
	// experiments harness.
	accWindow := o.queries / 20
	if accWindow < 60 {
		accWindow = 60
	}
	module, err := core.New(core.Config{
		World:           world,
		Span:            o.windowMS,
		Alpha:           o.alpha,
		AlphaSet:        true,
		Tau:             o.tau,
		Beta:            o.beta,
		AccWindow:       accWindow,
		PretrainQueries: o.pretrain,
		Seed:            o.seed,
		Refill: func(e estimator.Estimator) {
			oracle.Each(func(obj *stream.Object) bool {
				e.Insert(obj)
				return true
			})
		},
		OnSwitch: func(ev core.SwitchEvent) {
			fmt.Fprintf(out, "  >> %s\n", ev)
		},
	})
	if err != nil {
		return err
	}

	var exhausted bool
	var lastTS int64
	feed := func(n int) error {
		for i := 0; i < n && !exhausted; i++ {
			obj, ok, err := nextObject()
			if err != nil {
				return err
			}
			if !ok {
				exhausted = true
				return nil
			}
			lastTS = obj.Timestamp
			oracle.Insert(obj)
			module.Insert(&obj)
		}
		return nil
	}

	fmt.Fprintf(out, "warm-up: filling one %.0fs window of %s data...\n",
		float64(o.windowMS)/1000, osrc.name)
	if o.input != "" {
		// Replayed time is whatever the file says: fill until one window
		// has elapsed.
		obj, ok, err := nextObject()
		if err != nil {
			return err
		}
		if !ok {
			return errors.New("input is empty")
		}
		start := obj.Timestamp
		lastTS = obj.Timestamp
		oracle.Insert(obj)
		module.Insert(&obj)
		for lastTS-start < o.windowMS && !exhausted {
			if err := feed(1024); err != nil {
				return err
			}
		}
	} else {
		if err := feed(int(float64(o.windowMS) * o.rate)); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "window holds %d objects; starting %s (%d pre-training + %d queries)\n",
		oracle.Size(), o.wlName, o.pretrain, o.queries)

	var lat metrics.LatencyTracker
	accSum, n := 0.0, 0
	lastPhase := module.Phase()
	for gen.Remaining() > 0 && !exhausted {
		if err := feed(40); err != nil {
			return err
		}
		q := gen.Next(lastTS)
		start := time.Now()
		est := module.Estimate(&q)
		lat.Add(time.Since(start))
		actual := oracle.Answer(&q)
		module.Observe(float64(actual))
		accSum += metrics.Accuracy(est, float64(actual))
		n++
		if module.Phase() != lastPhase {
			fmt.Fprintf(out, "  -- phase: %s -> %s (after %d queries)\n", lastPhase, module.Phase(), n)
			lastPhase = module.Phase()
		}
		if n%o.every == 0 {
			s := module.Snapshot()
			fmt.Fprintf(out, "q=%-6d phase=%-11s active=%-5s prefill=%-5s acc(avg)=%.3f lat(p50)=%s tree{rec=%d nodes=%d}\n",
				n, s.Phase, s.Active, orDash(s.Prefilling), accSum/float64(n),
				lat.Percentile(0.5).Round(time.Microsecond), s.TrainingRecords, s.TreeNodes)
		}
	}

	s := module.Snapshot()
	fmt.Fprintf(out, "\nfinished: %d queries, overall accuracy %.3f, mean latency %s\n",
		n, accSum/float64(n), lat.Mean().Round(time.Microsecond))
	fmt.Fprintf(out, "switches (%d):\n", s.Switches)
	for _, ev := range module.Switches() {
		fmt.Fprintf(out, "  %s\n", ev)
	}
	if s.Switches == 0 {
		fmt.Fprintln(out, "  none — the workload never degraded the active estimator")
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// driveRemote replays the same stream-and-query loop against a running
// latestd over the wire protocol instead of an in-process module. A local
// window oracle still computes exact counts so the report carries the same
// rolling-accuracy column; for that column to be meaningful the daemon
// must have been started with the same -window span. Phase and switch
// narration is absent — the adaptor lives on the far side of the wire.
func driveRemote(o runOptions, out io.Writer) error {
	osrc, err := openSource(o)
	if err != nil {
		return err
	}
	defer osrc.cleanup()
	spec := workload.ByName(o.wlName)
	gen := workload.NewGenerator(spec, osrc.src, o.queries)
	oracle := stream.NewWindow(osrc.world, o.windowMS, 4096)

	c := client.Dial(o.serveAddr, client.Options{})
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		return fmt.Errorf("latestd at %s: %w", o.serveAddr, err)
	}

	var exhausted bool
	var lastTS int64
	batch := make([]stream.Object, 0, 256)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := c.FeedBatch(ctx, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	feed := func(n int) error {
		for i := 0; i < n && !exhausted; i++ {
			obj, ok, err := osrc.next()
			if err != nil {
				return err
			}
			if !ok {
				exhausted = true
				break
			}
			lastTS = obj.Timestamp
			oracle.Insert(obj)
			if batch = append(batch, obj); len(batch) == cap(batch) {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return flush()
	}

	fmt.Fprintf(out, "replaying %s to latestd at %s (%d queries, %.0fs window)\n",
		osrc.name, o.serveAddr, o.queries, float64(o.windowMS)/1000)
	// Warm-up: one full window of data before the first query, mirroring
	// the in-process driver.
	if o.input != "" {
		obj, ok, err := osrc.next()
		if err != nil {
			return err
		}
		if !ok {
			return errors.New("input is empty")
		}
		start := obj.Timestamp
		lastTS = obj.Timestamp
		oracle.Insert(obj)
		batch = append(batch, obj)
		for lastTS-start < o.windowMS && !exhausted {
			if err := feed(1024); err != nil {
				return err
			}
		}
	} else if err := feed(int(float64(o.windowMS) * o.rate)); err != nil {
		return err
	}

	var lat metrics.LatencyTracker
	accSum, n := 0.0, 0
	for gen.Remaining() > 0 && !exhausted {
		if err := feed(40); err != nil {
			return err
		}
		q := gen.Next(lastTS)
		start := time.Now()
		est, err := c.Estimate(ctx, q)
		if err != nil {
			if client.IsDraining(err) {
				fmt.Fprintf(out, "server draining after %d queries; stopping replay\n", n)
				break
			}
			return err
		}
		lat.Add(time.Since(start))
		actual := oracle.Answer(&q)
		accSum += metrics.Accuracy(est, float64(actual))
		n++
		if n%o.every == 0 {
			fmt.Fprintf(out, "q=%-6d acc(avg)=%.3f rtt(p50)=%s window=%d\n",
				n, accSum/float64(n), lat.Percentile(0.5).Round(time.Microsecond), oracle.Size())
		}
	}
	if n == 0 {
		return errors.New("stream exhausted before any query ran")
	}
	fmt.Fprintf(out, "\nfinished: %d remote queries, overall accuracy %.3f, mean round-trip %s\n",
		n, accSum/float64(n), lat.Mean().Round(time.Microsecond))
	return nil
}
