package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestSyntheticRun(t *testing.T) {
	code, stdout, stderr := runRun(t,
		"-queries", "120", "-pretrain", "40", "-window", "2000", "-rate", "0.5", "-report", "60")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	// The finished count includes the 40 pre-training queries.
	for _, want := range []string{"warm-up", "window holds", "finished: 160 queries", "switches ("} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestReplayRun replays the golden trace (a real JSONL stream with known
// provenance) through the -input path.
func TestReplayRun(t *testing.T) {
	trace := filepath.Join("..", "..", "testdata", "check", "trace_twitter.jsonl")
	code, stdout, stderr := runRun(t,
		"-input", trace, "-world", "-125,24,-66,50",
		"-queries", "80", "-pretrain", "20", "-window", "1000", "-report", "40")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "finished:") {
		t.Errorf("stdout missing completion line:\n%s", stdout)
	}
}

func TestReplayRunEmptyInput(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runRun(t, "-input", empty)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "input is empty") {
		t.Errorf("stderr missing empty-input error:\n%s", stderr)
	}
}

func TestBadWorldFlag(t *testing.T) {
	code, _, stderr := runRun(t, "-input", "whatever.jsonl", "-world", "1,2,3")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "-world") {
		t.Errorf("stderr missing world parse error:\n%s", stderr)
	}
}
