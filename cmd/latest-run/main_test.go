package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/server"
)

func runRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestSyntheticRun(t *testing.T) {
	code, stdout, stderr := runRun(t,
		"-queries", "120", "-pretrain", "40", "-window", "2000", "-rate", "0.5", "-report", "60")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	// The finished count includes the 40 pre-training queries.
	for _, want := range []string{"warm-up", "window holds", "finished: 160 queries", "switches ("} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestReplayRun replays the golden trace (a real JSONL stream with known
// provenance) through the -input path.
func TestReplayRun(t *testing.T) {
	trace := filepath.Join("..", "..", "testdata", "check", "trace_twitter.jsonl")
	code, stdout, stderr := runRun(t,
		"-input", trace, "-world", "-125,24,-66,50",
		"-queries", "80", "-pretrain", "20", "-window", "1000", "-report", "40")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "finished:") {
		t.Errorf("stdout missing completion line:\n%s", stdout)
	}
}

func TestReplayRunEmptyInput(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runRun(t, "-input", empty)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "input is empty") {
		t.Errorf("stderr missing empty-input error:\n%s", stderr)
	}
}

// TestServeAddrReplay replays the golden trace against an in-process
// serving stack — engine behind internal/server, driven over a real TCP
// socket through the public client — and expects the remote report.
func TestServeAddrReplay(t *testing.T) {
	world := latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}
	eng, err := latest.NewConcurrent(world, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		eng.Close()
	}()

	trace := filepath.Join("..", "..", "testdata", "check", "trace_twitter.jsonl")
	code, stdout, stderr := runRun(t,
		"-serve-addr", srv.Addr(),
		"-input", trace, "-world", "-125,24,-66,50",
		"-queries", "60", "-window", "1000", "-report", "30")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"replaying", "latestd at", "finished: 60 remote queries"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	// Local phase/switch narration must not appear in remote mode.
	if strings.Contains(stdout, "switches (") {
		t.Errorf("remote mode leaked local narration:\n%s", stdout)
	}
}

// TestServeAddrUnreachable fails fast with a useful error.
func TestServeAddrUnreachable(t *testing.T) {
	code, _, stderr := runRun(t,
		"-serve-addr", "127.0.0.1:1", "-queries", "10")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "latestd at") {
		t.Errorf("stderr missing dial context:\n%s", stderr)
	}
}

func TestBadWorldFlag(t *testing.T) {
	code, _, stderr := runRun(t, "-input", "whatever.jsonl", "-world", "1,2,3")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "-world") {
		t.Errorf("stderr missing world parse error:\n%s", stderr)
	}
}
