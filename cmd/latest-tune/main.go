// latest-tune grid-searches LATEST's tuning knobs on a workload and ranks
// the configurations — the systematic parameter exploration the paper
// leaves as future work ("Exploring systematic ways to tune the learning
// model parameters … may expedite achieving stability", §V-D).
//
// Each grid cell replays the same (dataset, workload, seed) with one
// (τ, β, grace-period) combination and records the module's served
// accuracy, mean served latency and switch count. Ranking weighs accuracy
// against switch churn; pass -alpha to also weigh latency the way the
// module itself would.
//
// Usage:
//
//	latest-tune -dataset Twitter -workload TwQW1
//	latest-tune -taus 0.6,0.75,0.85 -betas 0.5,0.8 -graces 100,200,400
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/spatiotext/latest/internal/experiments"
)

type cell struct {
	tau, beta float64
	grace     int
	accuracy  float64
	switches  int
	score     float64
}

func main() {
	var (
		dataset  = flag.String("dataset", "Twitter", "dataset: Twitter, eBird or CheckIn")
		wlName   = flag.String("workload", "TwQW1", "workload preset")
		queries  = flag.Int("queries", 1500, "incremental queries per grid cell")
		pretrain = flag.Int("pretrain", 400, "pre-training queries per cell")
		alpha    = flag.Float64("alpha", 0.5, "α used inside the module")
		taus     = flag.String("taus", "0.6,0.7,0.75,0.85", "τ values to sweep")
		betas    = flag.String("betas", "0.5,0.8,0.95", "β values to sweep")
		graces   = flag.String("graces", "100,200,400", "Hoeffding grace periods to sweep")
		seed     = flag.Int64("seed", 1, "random seed (same for every cell)")
		churnW   = flag.Float64("churn-weight", 0.005, "accuracy penalty per switch in the ranking")
	)
	flag.Parse()

	tauVals := parseFloats(*taus)
	betaVals := parseFloats(*betas)
	graceVals := parseInts(*graces)
	total := len(tauVals) * len(betaVals) * len(graceVals)
	fmt.Printf("sweeping %d configurations on %s/%s (%d+%d queries each)\n\n",
		total, *dataset, *wlName, *pretrain, *queries)

	var cells []cell
	i := 0
	for _, tau := range tauVals {
		for _, beta := range betaVals {
			for _, grace := range graceVals {
				i++
				res := experiments.RunSwitchTimeline("tune", experiments.RunConfig{
					Dataset:         *dataset,
					Workload:        *wlName,
					Queries:         *queries,
					PretrainQueries: *pretrain,
					Alpha:           *alpha,
					AlphaSet:        true,
					Tau:             tau,
					Beta:            beta,
					Grace:           grace,
					Seed:            *seed,
				})
				c := cell{
					tau: tau, beta: beta, grace: grace,
					accuracy: res.ModuleAccuracy,
					switches: len(res.Switches),
				}
				c.score = c.accuracy - *churnW*float64(c.switches)
				cells = append(cells, c)
				fmt.Printf("[%2d/%d] τ=%.2f β=%.2f grace=%-4d -> accuracy %.3f, %d switches\n",
					i, total, tau, beta, grace, c.accuracy, c.switches)
			}
		}
	}

	sort.Slice(cells, func(a, b int) bool { return cells[a].score > cells[b].score })
	fmt.Printf("\nranked (score = accuracy − %.3f × switches):\n", *churnW)
	fmt.Printf("%-4s %-6s %-6s %-6s %9s %9s %8s\n", "rank", "tau", "beta", "grace", "accuracy", "switches", "score")
	for r, c := range cells {
		if r >= 10 {
			break
		}
		fmt.Printf("%-4d %-6.2f %-6.2f %-6d %9.3f %9d %8.3f\n",
			r+1, c.tau, c.beta, c.grace, c.accuracy, c.switches, c.score)
	}
	best := cells[0]
	fmt.Printf("\nrecommended: -tau %.2f -beta %.2f (grace %d) for %s/%s at α=%.2f\n",
		best.tau, best.beta, best.grace, *dataset, *wlName, *alpha)
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || math.IsNaN(v) {
			fmt.Fprintf(os.Stderr, "latest-tune: bad float %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "latest-tune: bad int %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
