package main

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/spatiotext/latest/internal/persist"
)

// parseFaultSpec turns the -disk-fault flag into injector rules. The
// grammar is semicolon-separated rules, each an operation name optionally
// followed by colon-introduced comma-separated modifiers:
//
//	append:after=500,count=100;sync:count=5
//	save:after=2
//	append:after=10,count=1,short
//
// Operations: append, sync, save, load, remove, open, any. Modifiers:
// after=N (let N matching calls through first), count=M (fire M times
// then expire; omitted = forever), short (torn write instead of a clean
// failure).
func parseFaultSpec(spec string) ([]persist.FaultRule, error) {
	var rules []persist.FaultRule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opStr, rest, _ := strings.Cut(part, ":")
		var rule persist.FaultRule
		switch opStr {
		case "append":
			rule.Op = persist.FaultAppend
		case "sync":
			rule.Op = persist.FaultSync
		case "save":
			rule.Op = persist.FaultSave
		case "load":
			rule.Op = persist.FaultLoad
		case "remove":
			rule.Op = persist.FaultRemove
		case "open":
			rule.Op = persist.FaultOpenAppend
		case "any":
			rule.Op = persist.FaultAnyOp
		default:
			return nil, fmt.Errorf("unknown fault operation %q (want append, sync, save, load, remove, open or any)", opStr)
		}
		for _, mod := range strings.Split(rest, ",") {
			mod = strings.TrimSpace(mod)
			if mod == "" {
				continue
			}
			key, val, hasVal := strings.Cut(mod, "=")
			switch {
			case key == "short" && !hasVal:
				rule.Kind = persist.FaultShortWrite
			case key == "after" && hasVal:
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault rule %q: after: %w", part, err)
				}
				rule.After = n
			case key == "count" && hasVal:
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault rule %q: count: %w", part, err)
				}
				rule.Count = n
			default:
				return nil, fmt.Errorf("fault rule %q: unknown modifier %q", part, mod)
			}
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("empty fault spec")
	}
	return rules, nil
}
