package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/spatiotext/latest/internal/persist"
)

// TestParseFaultSpec pins the -disk-fault grammar: semicolon-separated
// rules, op names mapped to FaultOps, after=/count= modifiers, and the
// short torn-write kind.
func TestParseFaultSpec(t *testing.T) {
	rules, err := parseFaultSpec("append:after=500,count=100;sync:count=5,short;any")
	if err != nil {
		t.Fatal(err)
	}
	want := []persist.FaultRule{
		{Op: persist.FaultAppend, After: 500, Count: 100},
		{Op: persist.FaultSync, Count: 5, Kind: persist.FaultShortWrite},
		{Op: persist.FaultAnyOp},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d: %+v", len(rules), len(want), rules)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}

	for _, op := range []struct {
		name string
		op   persist.FaultOp
	}{
		{"save", persist.FaultSave},
		{"load", persist.FaultLoad},
		{"remove", persist.FaultRemove},
		{"open", persist.FaultOpenAppend},
	} {
		rules, err := parseFaultSpec(op.name)
		if err != nil || len(rules) != 1 || rules[0].Op != op.op {
			t.Errorf("parseFaultSpec(%q) = %+v, %v", op.name, rules, err)
		}
	}

	// Stray separators are tolerated; only an effectively empty spec is not.
	if rules, err := parseFaultSpec("append:after=1;;"); err != nil || len(rules) != 1 {
		t.Errorf("trailing separators rejected: %+v, %v", rules, err)
	}
}

// TestParseFaultSpecRejects: a bad spec must refuse startup, not silently
// arm the wrong fault.
func TestParseFaultSpecRejects(t *testing.T) {
	for _, spec := range []string{
		"",
		"fsync",            // unknown op
		"append:often",     // unknown modifier
		"append:after=",    // missing value
		"append:after=abc", // non-numeric
		"append:count=-1",  // negative
		";;",               // nothing but separators
	} {
		if _, err := parseFaultSpec(spec); err == nil {
			t.Errorf("parseFaultSpec(%q) accepted a bad spec", spec)
		}
	}
}

// TestBadDiskFaultFlagRefusesStartup: the flag error surfaces through run()
// as a startup refusal naming the flag.
func TestBadDiskFaultFlagRefusesStartup(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0", "-admin", "",
		"-data-dir", t.TempDir(),
		"-disk-fault", "explode",
	}, &stdout, &stderr, nil)
	if code == 0 {
		t.Fatal("daemon started with an unparseable -disk-fault spec")
	}
	if !strings.Contains(stderr.String(), "-disk-fault") {
		t.Fatalf("refusal does not name the flag: %q", stderr.String())
	}
}
