// latestd serves a LATEST engine over the network: the binary wire
// protocol from internal/wire on one TCP listener for the hot paths (feed
// batches, estimates, query batches), and the HTTP admin plane (health,
// /metrics, /statusz, pprof, drain trigger) on another.
//
// Usage:
//
//	latestd -addr 127.0.0.1:7707 -admin 127.0.0.1:7708
//	latestd -engine concurrent -window 2m -addr-file /tmp/latestd.addr
//	latestd -data-dir /var/lib/latestd -snapshot-interval 30s
//	latestd -cluster-map /etc/latest/cluster.map -node-id 0
//
// With -cluster-map the daemon serves one partition of a multi-node
// cluster: it refuses feeds and spatial queries outside its territory
// with a typed not-owner frame carrying the map epoch, answers TMapFetch
// with the map so routers can bootstrap, and stamps the epoch into pongs.
//
// With -data-dir the engine is wrapped in a latest.DurableEngine: every
// feed is write-ahead logged, snapshots are taken periodically and on
// drain, and a restart resumes from the newest snapshot plus the WAL
// tail. A corrupt or mismatched data directory refuses startup with the
// typed reason — the daemon never serves from partial state.
//
// SIGTERM or SIGINT (or POST /drain on the admin plane) begins a graceful
// drain: the listener closes, in-flight requests finish and flush, new
// requests are refused with a retryable draining error, and the process
// exits once peers hang up or the drain timeout expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/server"
	"github.com/spatiotext/latest/internal/telemetry"
)

func main() {
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGTERM, os.Interrupt)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, shutdown))
}

type daemonOptions struct {
	addr         string
	adminAddr    string
	addrFile     string
	engine       string
	shards       int
	window       time.Duration
	worldStr     string
	maxConns     int
	maxInFlight  int
	drainTimeout time.Duration
	logLevel     string
	clusterMap   string
	nodeID       int
	dataDir      string
	snapInterval time.Duration
	walSyncEvery int
	snapRetain   int
	diskFault    string
	traceDepth   int
	traceSample  int
}

// run is the testable entrypoint: flags in, exit code out, shutdown
// triggered by whatever the caller feeds the signal channel.
func run(args []string, stdout, stderr io.Writer, shutdown <-chan os.Signal) int {
	fs := flag.NewFlagSet("latestd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o daemonOptions
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7707", "wire-protocol listen address (port 0 = kernel-assigned)")
	fs.StringVar(&o.adminAddr, "admin", "127.0.0.1:0", "admin/metrics listen address; empty disables the admin plane")
	fs.StringVar(&o.addrFile, "addr-file", "", "write the bound addresses here (line 1 wire, line 2 admin) once listening")
	fs.StringVar(&o.engine, "engine", "sharded", "engine: sharded or concurrent")
	fs.IntVar(&o.shards, "shards", 0, "shard count for -engine sharded (0 = one per CPU core)")
	fs.DurationVar(&o.window, "window", time.Minute, "sliding-window span")
	fs.StringVar(&o.worldStr, "world", "-125,24,-66,50", "world rect: minx,miny,maxx,maxy")
	fs.IntVar(&o.maxConns, "max-conns", 256, "maximum concurrent wire connections")
	fs.IntVar(&o.maxInFlight, "max-inflight", 64, "per-connection in-flight request window")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "bound on graceful drain before force-closing connections")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log severity: debug, info, warn, error")
	fs.StringVar(&o.clusterMap, "cluster-map", "", "partition map file for multi-node serving (author one with latest-router -write-map); empty runs standalone")
	fs.IntVar(&o.nodeID, "node-id", 0, "this daemon's index in the cluster map's node list (used with -cluster-map)")
	fs.StringVar(&o.dataDir, "data-dir", "", "directory for durable state (snapshots + feed WAL); empty serves from memory only")
	fs.DurationVar(&o.snapInterval, "snapshot-interval", 30*time.Second, "how often the durable engine snapshots (requires -data-dir)")
	fs.IntVar(&o.walSyncEvery, "wal-sync-every", 0, "fsync the feed WAL every N records (0 = library default)")
	fs.IntVar(&o.snapRetain, "snapshot-retain", 0, "snapshot generations to keep for fallback recovery (0 = library default)")
	fs.StringVar(&o.diskFault, "disk-fault", "", "deterministic disk-fault injection for chaos drills, e.g. append:after=500,count=100;sync:count=5 (ops: append, sync, save, load, remove, open, any; add 'short' for torn writes)")
	fs.IntVar(&o.traceDepth, "trace-depth", 0, "retained span timelines in /debug/requests (0 = library default)")
	fs.IntVar(&o.traceSample, "trace-sample", 0, "sample one trace-flagged request in N (1 = all, 0 = library default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := serve(o, stdout, stderr, shutdown); err != nil {
		fmt.Fprintln(stderr, "latestd:", err)
		return 1
	}
	return 0
}

func parseLevel(s string) (telemetry.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return telemetry.LevelDebug, nil
	case "info":
		return telemetry.LevelInfo, nil
	case "warn":
		return telemetry.LevelWarn, nil
	case "error":
		return telemetry.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q", s)
}

// loadClusterMap reads and validates the -cluster-map file. The daemon
// refuses to start as a node the map does not know: serving with a wrong
// -node-id would silently accept objects another node owns.
func loadClusterMap(o daemonOptions) (*cluster.Map, error) {
	if o.clusterMap == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(o.clusterMap)
	if err != nil {
		return nil, fmt.Errorf("-cluster-map: %w", err)
	}
	m, err := cluster.DecodeMap(raw)
	if err != nil {
		return nil, fmt.Errorf("-cluster-map %s: %w", o.clusterMap, err)
	}
	if o.nodeID < 0 || o.nodeID >= len(m.Nodes) {
		return nil, fmt.Errorf("-node-id %d out of range: map %s names %d nodes", o.nodeID, o.clusterMap, len(m.Nodes))
	}
	return m, nil
}

// parseWorld parses "minx,miny,maxx,maxy".
func parseWorld(spec string) (geo.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("want minx,miny,maxx,maxy, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, err
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Empty() {
		return geo.Rect{}, fmt.Errorf("invalid world %v", r)
	}
	return r, nil
}

// buildEngine constructs the serving engine: the unified latest.Engine is
// the daemon's whole view of it — serving surface, persistence hooks and
// graceful teardown. With -data-dir the core engine is wrapped in a
// DurableEngine, which restores the newest snapshot plus the WAL tail (or
// refuses with the typed reason) before the listener opens.
func buildEngine(o daemonOptions, world geo.Rect, logW io.Writer, level telemetry.Level, log *telemetry.Logger) (latest.Engine, error) {
	// The daemon owns the exposition listener through internal/server, so
	// the engine is built WITHOUT WithTelemetry — its snapshot is scraped
	// through the admin plane instead.
	opts := []latest.Option{latest.WithLogger(logW, level)}
	var eng latest.Engine
	var err error
	switch o.engine {
	case "sharded":
		if o.shards > 0 {
			opts = append(opts, latest.WithShards(o.shards))
		}
		eng, err = latest.NewSharded(world, o.window, opts...)
	case "concurrent":
		eng, err = latest.NewConcurrent(world, o.window, opts...)
	default:
		return nil, fmt.Errorf("unknown engine %q (want sharded or concurrent)", o.engine)
	}
	if err != nil || o.dataDir == "" {
		return eng, err
	}
	st, err := latest.NewFileStore(o.dataDir)
	if err != nil {
		eng.Shutdown(context.Background())
		return nil, err
	}
	var store latest.Store = st
	if o.diskFault != "" {
		// Chaos drills: the data dir sits behind a deterministic fault
		// injector so degraded-mode behavior can be exercised end to end
		// on a real process without a failing disk.
		rules, perr := parseFaultSpec(o.diskFault)
		if perr != nil {
			eng.Shutdown(context.Background())
			return nil, fmt.Errorf("-disk-fault: %w", perr)
		}
		store = persist.NewFaultStore(st, rules...)
		log.Warn("disk-fault injection armed", "spec", o.diskFault)
	}
	dur, err := latest.NewDurable(eng, store, latest.DurableConfig{
		SnapshotInterval: o.snapInterval,
		WALSyncEvery:     o.walSyncEvery,
		Retain:           o.snapRetain,
		Log:              log.Named("durable"),
	})
	if err != nil {
		eng.Shutdown(context.Background())
		// A typed refusal names the exact reason: checksum failure, version
		// skew, configuration mismatch, foreign engine kind. The operator
		// decision (restore a backup, wipe the dir, fix the flags) differs
		// per code, so surface it verbatim.
		return nil, fmt.Errorf("recover %s (code %v): %w", o.dataDir, latest.PersistCode(err), err)
	}
	return dur, nil
}

func serve(o daemonOptions, stdout, stderr io.Writer, shutdown <-chan os.Signal) error {
	level, err := parseLevel(o.logLevel)
	if err != nil {
		return err
	}
	world, err := parseWorld(o.worldStr)
	if err != nil {
		return fmt.Errorf("-world: %w", err)
	}
	cm, err := loadClusterMap(o)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(stderr, level)
	eng, err := buildEngine(o, world, stderr, level, log)
	if err != nil {
		return err
	}
	srv, err := server.New(eng, server.Config{
		Addr:        o.addr,
		AdminAddr:   o.adminAddr,
		ClusterMap:  cm,
		NodeID:      o.nodeID,
		MaxConns:    o.maxConns,
		MaxInFlight: o.maxInFlight,
		TraceDepth:  o.traceDepth,
		TraceEvery:  o.traceSample,
		Log:         log,
	})
	if err != nil {
		eng.Shutdown(context.Background())
		return err
	}

	if o.addrFile != "" {
		content := srv.Addr() + "\n" + srv.AdminAddr() + "\n"
		if err := os.WriteFile(o.addrFile, []byte(content), 0o644); err != nil {
			srv.Close()
			eng.Shutdown(context.Background())
			return fmt.Errorf("-addr-file: %w", err)
		}
	}
	durability := "none"
	if dur, ok := eng.(*latest.DurableEngine); ok {
		h := dur.Health()
		durability = fmt.Sprintf("%s gen=%d wal=%d recovery=%.3fs state=%s",
			o.dataDir, dur.Generation(), dur.WALAppends(), dur.RecoverySeconds(), h.State)
	}
	clusterInfo := "standalone"
	if cm != nil {
		clusterInfo = fmt.Sprintf("node=%d/%d epoch=%d", o.nodeID, len(cm.Nodes), cm.Epoch)
	}
	fmt.Fprintf(stdout, "latestd listening addr=%s admin=%s engine=%s window=%s durability=%s cluster=%s\n",
		srv.Addr(), srv.AdminAddr(), o.engine, o.window, durability, clusterInfo)

	select {
	case sig := <-shutdown:
		fmt.Fprintf(stdout, "latestd draining reason=%v\n", sig)
	case <-srv.DrainRequested():
		fmt.Fprintln(stdout, "latestd draining reason=admin")
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	// Engine shutdown runs after the listener has drained, so the final
	// snapshot a DurableEngine takes here captures every acknowledged feed:
	// a clean stop/start cycle loses nothing.
	engErr := eng.Shutdown(ctx)
	if dur, ok := eng.(*latest.DurableEngine); ok {
		if h := dur.Health(); !h.Healthy() || h.ErrorsTotal > 0 {
			fmt.Fprintf(stderr, "latestd: durability %s errors=%d degradations=%d repairs=%d dropped_appends=%d\n",
				h.State, h.ErrorsTotal, h.Degradations, h.Repairs, h.DroppedAppends)
		}
		fmt.Fprintf(stdout, "latestd final snapshot gen=%d\n", dur.Generation())
	}
	fmt.Fprintln(stdout, "latestd stopped")
	return errors.Join(drainErr, engErr)
}
