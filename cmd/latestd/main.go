// latestd serves a LATEST engine over the network: the binary wire
// protocol from internal/wire on one TCP listener for the hot paths (feed
// batches, estimates, query batches), and the HTTP admin plane (health,
// /metrics, /statusz, pprof, drain trigger) on another.
//
// Usage:
//
//	latestd -addr 127.0.0.1:7707 -admin 127.0.0.1:7708
//	latestd -engine concurrent -window 2m -addr-file /tmp/latestd.addr
//
// SIGTERM or SIGINT (or POST /drain on the admin plane) begins a graceful
// drain: the listener closes, in-flight requests finish and flush, new
// requests are refused with a retryable draining error, and the process
// exits once peers hang up or the drain timeout expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/server"
	"github.com/spatiotext/latest/internal/telemetry"
)

func main() {
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGTERM, os.Interrupt)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, shutdown))
}

type daemonOptions struct {
	addr         string
	adminAddr    string
	addrFile     string
	engine       string
	shards       int
	window       time.Duration
	worldStr     string
	maxConns     int
	maxInFlight  int
	drainTimeout time.Duration
	logLevel     string
}

// run is the testable entrypoint: flags in, exit code out, shutdown
// triggered by whatever the caller feeds the signal channel.
func run(args []string, stdout, stderr io.Writer, shutdown <-chan os.Signal) int {
	fs := flag.NewFlagSet("latestd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o daemonOptions
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7707", "wire-protocol listen address (port 0 = kernel-assigned)")
	fs.StringVar(&o.adminAddr, "admin", "127.0.0.1:0", "admin/metrics listen address; empty disables the admin plane")
	fs.StringVar(&o.addrFile, "addr-file", "", "write the bound addresses here (line 1 wire, line 2 admin) once listening")
	fs.StringVar(&o.engine, "engine", "sharded", "engine: sharded or concurrent")
	fs.IntVar(&o.shards, "shards", 0, "shard count for -engine sharded (0 = one per CPU core)")
	fs.DurationVar(&o.window, "window", time.Minute, "sliding-window span")
	fs.StringVar(&o.worldStr, "world", "-125,24,-66,50", "world rect: minx,miny,maxx,maxy")
	fs.IntVar(&o.maxConns, "max-conns", 256, "maximum concurrent wire connections")
	fs.IntVar(&o.maxInFlight, "max-inflight", 64, "per-connection in-flight request window")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "bound on graceful drain before force-closing connections")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log severity: debug, info, warn, error")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := serve(o, stdout, stderr, shutdown); err != nil {
		fmt.Fprintln(stderr, "latestd:", err)
		return 1
	}
	return 0
}

func parseLevel(s string) (telemetry.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return telemetry.LevelDebug, nil
	case "info":
		return telemetry.LevelInfo, nil
	case "warn":
		return telemetry.LevelWarn, nil
	case "error":
		return telemetry.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q", s)
}

// parseWorld parses "minx,miny,maxx,maxy".
func parseWorld(spec string) (geo.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("want minx,miny,maxx,maxy, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, err
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Empty() {
		return geo.Rect{}, fmt.Errorf("invalid world %v", r)
	}
	return r, nil
}

// engine is the daemon's view of the systems it can front: the serving
// Engine surface plus graceful teardown.
type engine interface {
	server.Engine
	Shutdown(ctx context.Context) error
}

func buildEngine(o daemonOptions, world geo.Rect, logW io.Writer, level telemetry.Level) (engine, error) {
	// The daemon owns the exposition listener through internal/server, so
	// the engine is built WITHOUT WithTelemetry — its snapshot is scraped
	// through the admin plane instead.
	opts := []latest.Option{latest.WithLogger(logW, level)}
	switch o.engine {
	case "sharded":
		if o.shards > 0 {
			opts = append(opts, latest.WithShards(o.shards))
		}
		return latest.NewSharded(world, o.window, opts...)
	case "concurrent":
		return latest.NewConcurrent(world, o.window, opts...)
	}
	return nil, fmt.Errorf("unknown engine %q (want sharded or concurrent)", o.engine)
}

func serve(o daemonOptions, stdout, stderr io.Writer, shutdown <-chan os.Signal) error {
	level, err := parseLevel(o.logLevel)
	if err != nil {
		return err
	}
	world, err := parseWorld(o.worldStr)
	if err != nil {
		return fmt.Errorf("-world: %w", err)
	}
	eng, err := buildEngine(o, world, stderr, level)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(stderr, level)
	srv, err := server.New(eng, server.Config{
		Addr:        o.addr,
		AdminAddr:   o.adminAddr,
		MaxConns:    o.maxConns,
		MaxInFlight: o.maxInFlight,
		Log:         log,
	})
	if err != nil {
		eng.Shutdown(context.Background())
		return err
	}

	if o.addrFile != "" {
		content := srv.Addr() + "\n" + srv.AdminAddr() + "\n"
		if err := os.WriteFile(o.addrFile, []byte(content), 0o644); err != nil {
			srv.Close()
			eng.Shutdown(context.Background())
			return fmt.Errorf("-addr-file: %w", err)
		}
	}
	fmt.Fprintf(stdout, "latestd listening addr=%s admin=%s engine=%s window=%s\n",
		srv.Addr(), srv.AdminAddr(), o.engine, o.window)

	select {
	case sig := <-shutdown:
		fmt.Fprintf(stdout, "latestd draining reason=%v\n", sig)
	case <-srv.DrainRequested():
		fmt.Fprintln(stdout, "latestd draining reason=admin")
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	engErr := eng.Shutdown(ctx)
	fmt.Fprintln(stdout, "latestd stopped")
	return errors.Join(drainErr, engErr)
}
