package main

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// startDaemon runs the daemon in a goroutine and waits for the addr file.
// Returns the wire and admin addresses, the shutdown trigger, and a
// function that waits for exit and returns (code, stdout).
func startDaemon(t *testing.T, extraArgs ...string) (addr, admin string, shutdown chan os.Signal, wait func() (int, string)) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "latestd.addr")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-engine", "concurrent",
		"-window", "30s",
		"-drain-timeout", "5s",
	}, extraArgs...)

	var stdout, stderr bytes.Buffer
	var mu sync.Mutex
	shutdown = make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		mu.Lock()
		defer mu.Unlock()
		done <- run(args, &stdout, &stderr, shutdown)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && bytes.Count(b, []byte("\n")) >= 2 {
			lines := strings.Split(string(b), "\n")
			addr, admin = lines[0], lines[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote addr file; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	wait = func() (int, string) {
		select {
		case code := <-done:
			mu.Lock()
			out := stdout.String()
			mu.Unlock()
			return code, out
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not exit")
			return -1, ""
		}
	}
	return addr, admin, shutdown, wait
}

func testObjects(n int) []latest.Object {
	objs := make([]latest.Object, n)
	for i := range objs {
		o := stream.Object{ID: uint64(i + 1), Timestamp: int64(i), Keywords: []string{"fire"}}
		o.Loc.X, o.Loc.Y = -100+float64(i)*0.01, 35
		objs[i] = o
	}
	return objs
}

// TestServeFeedQueryDrain: the full daemon loop — serve traffic through
// the public client, then SIGTERM and verify a clean exit.
func TestServeFeedQueryDrain(t *testing.T) {
	addr, admin, shutdown, wait := startDaemon(t)

	c := client.Dial(addr, client.Options{})
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	accepted, err := c.FeedBatch(ctx, testObjects(50))
	if err != nil || accepted != 50 {
		t.Fatalf("feed: %d, %v", accepted, err)
	}
	var p geo.Point
	p.X, p.Y = -100, 35
	q := stream.HybridQ(geo.CenteredRect(p, 5, 5), []string{"fire"}, 6)
	if _, err := c.Estimate(ctx, q); err != nil {
		t.Fatalf("estimate: %v", err)
	}

	// The admin plane must expose health and server metric families.
	resp, err := http.Get("http://" + admin + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()

	c.Close()
	shutdown <- syscall.SIGTERM
	code, out := wait()
	if code != 0 {
		t.Fatalf("exit code %d; stdout: %s", code, out)
	}
	for _, want := range []string{"latestd listening", "draining reason=terminated", "latestd stopped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestAdminDrainTrigger: POST /drain is equivalent to SIGTERM.
func TestAdminDrainTrigger(t *testing.T) {
	_, admin, _, wait := startDaemon(t)
	resp, err := http.Post("http://"+admin+"/drain", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /drain: %v", err)
	}
	resp.Body.Close()
	code, out := wait()
	if code != 0 || !strings.Contains(out, "draining reason=admin") {
		t.Fatalf("code=%d out=%s", code, out)
	}
}

// TestShardedEngineOption: the default sharded engine also serves.
func TestShardedEngineOption(t *testing.T) {
	addr, _, shutdown, wait := startDaemon(t, "-engine", "sharded", "-shards", "2")
	c := client.Dial(addr, client.Options{})
	defer c.Close()
	if _, err := c.FeedBatch(context.Background(), testObjects(10)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	shutdown <- syscall.SIGTERM
	if code, _ := wait(); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestClusteredDaemon: with -cluster-map the daemon serves one partition —
// pongs carry the map epoch, TMapFetch serves the map, and objects outside
// the node's territory are refused with a typed not-owner error.
func TestClusteredDaemon(t *testing.T) {
	world := geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	m, err := cluster.Uniform(world, 4, 1, []string{"127.0.0.1:1", "127.0.0.1:2"}, 9)
	if err != nil {
		t.Fatal(err)
	}
	mapFile := filepath.Join(t.TempDir(), "cluster.map")
	if err := os.WriteFile(mapFile, m.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}

	addr, _, shutdown, wait := startDaemon(t,
		"-world", "-180,-90,180,90", "-cluster-map", mapFile, "-node-id", "0")
	c := client.Dial(addr, client.Options{})
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got := c.ClusterEpoch(); got != 9 {
		t.Fatalf("pong epoch %d, want 9", got)
	}
	raw, err := c.FetchMap(ctx)
	if err != nil {
		t.Fatalf("fetch map: %v", err)
	}
	served, err := cluster.DecodeMap(raw)
	if err != nil || served.Epoch != 9 {
		t.Fatalf("served map = (%+v, %v), want epoch 9", served, err)
	}

	// Node 0 owns the west half: owned feeds ack, strangers are refused.
	if _, err := c.FeedBatch(ctx, testObjects(10)); err != nil {
		t.Fatalf("owned feed: %v", err)
	}
	stranger := stream.Object{ID: 99, Timestamp: 1}
	stranger.Loc.X, stranger.Loc.Y = 100, 35
	_, err = c.FeedBatch(ctx, []latest.Object{stranger})
	var no *client.NotOwnerError
	if !errors.As(err, &no) || no.Epoch != 9 {
		t.Fatalf("stranger feed err = %v, want NotOwnerError epoch 9", err)
	}

	c.Close()
	shutdown <- syscall.SIGTERM
	code, out := wait()
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "cluster=node=0/2 epoch=9") {
		t.Fatalf("stdout missing cluster info:\n%s", out)
	}
}

func TestClusterFlagValidation(t *testing.T) {
	world := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	m, err := cluster.Uniform(world, 2, 1, []string{"a:1", "b:2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mapFile := filepath.Join(dir, "ok.map")
	if err := os.WriteFile(mapFile, m.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.map")
	raw := m.Encode()
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	cases := [][]string{
		{"-cluster-map", filepath.Join(dir, "missing.map")},
		{"-cluster-map", corrupt},
		{"-cluster-map", mapFile, "-node-id", "2"},
		{"-cluster-map", mapFile, "-node-id", "-1"},
	}
	for _, args := range cases {
		ch := make(chan os.Signal)
		if code := run(args, &out, &errOut, ch); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	cases := [][]string{
		{"-engine", "bogus"},
		{"-world", "1,2,3"},
		{"-log-level", "loud"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		ch := make(chan os.Signal)
		if code := run(args, &out, &errOut, ch); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]telemetry.Level{
		"debug": telemetry.LevelDebug, "Info": telemetry.LevelInfo,
		"WARN": telemetry.LevelWarn, "error": telemetry.LevelError,
	} {
		got, err := parseLevel(in)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseLevel("loud"); err == nil {
		t.Error("parseLevel accepted garbage")
	}
}
