// workloadgen generates and inspects query workloads. It either prints a
// composition summary (query types per timeline decile — handy for
// verifying a phase schedule) or emits the queries as JSON lines for
// external tooling.
//
// Usage:
//
//	workloadgen -workload TwQW1 -n 100000            # composition summary
//	workloadgen -workload CiQW1 -n 1000 -emit        # queries as JSONL
//	workloadgen -exportstream Twitter -n 100000      # objects as JSONL (for latest-run -input)
//	workloadgen -list                                # available presets
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/workload"
)

// jsonQuery is the emitted wire format of one query.
type jsonQuery struct {
	Type     string    `json:"type"`
	Range    []float64 `json:"range,omitempty"` // minx, miny, maxx, maxy
	Keywords []string  `json:"keywords,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so tests can drive every flag
// path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wlName = fs.String("workload", "TwQW1", "workload preset name")
		n      = fs.Int("n", 100_000, "number of queries (the paper uses 100K)")
		seed   = fs.Int64("seed", 1, "random seed")
		emit   = fs.Bool("emit", false, "emit queries as JSON lines instead of a summary")
		list   = fs.Bool("list", false, "list workload presets and exit")
		export = fs.String("exportstream", "", "emit n *objects* of the named dataset (Twitter/eBird/CheckIn) as JSONL")
		rate   = fs.Float64("rate", 2, "stream rate for -exportstream (objects per virtual ms)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *export != "" {
		if err := exportStream(stdout, *export, *n, *seed, *rate); err != nil {
			fmt.Fprintf(stderr, "workloadgen: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		names := workload.Names()
		sort.Strings(names)
		for _, name := range names {
			spec := workload.ByName(name)
			fmt.Fprintf(stdout, "%-8s dataset=%-8s phases=%d rangeSide=%.3f kw=%d..%d\n",
				name, spec.Dataset, len(spec.Phases), spec.RangeSide, spec.KwMin, spec.KwMax)
		}
		return 0
	}

	spec := workload.ByName(*wlName)
	data := datagen.ByName(spec.Dataset, *seed, 2)
	gen := workload.NewGenerator(spec, data, *n)

	if *emit {
		if err := emitQueries(stdout, gen); err != nil {
			fmt.Fprintf(stderr, "workloadgen: %v\n", err)
			return 1
		}
		return 0
	}
	summarize(stdout, spec, gen, *n)
	return 0
}

// exportStream writes n dataset objects as replay JSONL.
func exportStream(w io.Writer, dataset string, n int, seed int64, rate float64) error {
	data := datagen.ByName(dataset, seed, rate)
	out := replay.NewWriter(w)
	for i := 0; i < n; i++ {
		o := data.Next()
		if err := out.Write(&o); err != nil {
			return err
		}
	}
	return out.Flush()
}

// emitQueries drains gen as JSON lines.
func emitQueries(w io.Writer, gen *workload.Generator) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for gen.Remaining() > 0 {
		q := gen.Next(0)
		jq := jsonQuery{Type: q.Type().String(), Keywords: q.Keywords}
		if q.HasRange {
			jq.Range = []float64{q.Range.MinX, q.Range.MinY, q.Range.MaxX, q.Range.MaxY}
		}
		if err := enc.Encode(jq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// summarize prints query-type counts per timeline decile.
func summarize(w io.Writer, spec workload.Spec, gen *workload.Generator, n int) {
	const deciles = 10
	var counts [deciles][3]int
	kwTotal, kwQueries := 0, 0
	for gen.Remaining() > 0 {
		d := int(gen.Progress() * deciles)
		if d >= deciles {
			d = deciles - 1
		}
		q := gen.Next(0)
		counts[d][q.Type()]++
		if len(q.Keywords) > 0 {
			kwTotal += len(q.Keywords)
			kwQueries++
		}
	}
	fmt.Fprintf(w, "# %s on %s — %d queries\n", spec.Name, spec.Dataset, n)
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "decile", "spatial", "keyword", "hybrid")
	var totals [3]int
	for d := 0; d < deciles; d++ {
		fmt.Fprintf(w, "%d0-%d0%%   %10d %10d %10d\n", d, d+1,
			counts[d][stream.SpatialQuery], counts[d][stream.KeywordQuery], counts[d][stream.HybridQuery])
		for t := 0; t < 3; t++ {
			totals[t] += counts[d][t]
		}
	}
	fmt.Fprintf(w, "%-8s %10d %10d %10d\n", "total", totals[0], totals[1], totals[2])
	if kwQueries > 0 {
		fmt.Fprintf(w, "mean keywords per keyword-bearing query: %.2f\n", float64(kwTotal)/float64(kwQueries))
	}
}
