// workloadgen generates and inspects query workloads. It either prints a
// composition summary (query types per timeline decile — handy for
// verifying a phase schedule) or emits the queries as JSON lines for
// external tooling.
//
// Usage:
//
//	workloadgen -workload TwQW1 -n 100000            # composition summary
//	workloadgen -workload CiQW1 -n 1000 -emit        # queries as JSONL
//	workloadgen -exportstream Twitter -n 100000      # objects as JSONL (for latest-run -input)
//	workloadgen -list                                # available presets
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/workload"
)

// jsonQuery is the emitted wire format of one query.
type jsonQuery struct {
	Type     string    `json:"type"`
	Range    []float64 `json:"range,omitempty"` // minx, miny, maxx, maxy
	Keywords []string  `json:"keywords,omitempty"`
}

func main() {
	var (
		wlName = flag.String("workload", "TwQW1", "workload preset name")
		n      = flag.Int("n", 100_000, "number of queries (the paper uses 100K)")
		seed   = flag.Int64("seed", 1, "random seed")
		emit   = flag.Bool("emit", false, "emit queries as JSON lines instead of a summary")
		list   = flag.Bool("list", false, "list workload presets and exit")
		export = flag.String("exportstream", "", "emit n *objects* of the named dataset (Twitter/eBird/CheckIn) as JSONL")
		rate   = flag.Float64("rate", 2, "stream rate for -exportstream (objects per virtual ms)")
	)
	flag.Parse()

	if *export != "" {
		data := datagen.ByName(*export, *seed, *rate)
		w := replay.NewWriter(os.Stdout)
		for i := 0; i < *n; i++ {
			o := data.Next()
			if err := w.Write(&o); err != nil {
				fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
				os.Exit(1)
			}
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		names := workload.Names()
		sort.Strings(names)
		for _, name := range names {
			spec := workload.ByName(name)
			fmt.Printf("%-8s dataset=%-8s phases=%d rangeSide=%.3f kw=%d..%d\n",
				name, spec.Dataset, len(spec.Phases), spec.RangeSide, spec.KwMin, spec.KwMax)
		}
		return
	}

	spec := workload.ByName(*wlName)
	data := datagen.ByName(spec.Dataset, *seed, 2)
	gen := workload.NewGenerator(spec, data, *n)

	if *emit {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		enc := json.NewEncoder(w)
		for gen.Remaining() > 0 {
			q := gen.Next(0)
			jq := jsonQuery{Type: q.Type().String(), Keywords: q.Keywords}
			if q.HasRange {
				jq.Range = []float64{q.Range.MinX, q.Range.MinY, q.Range.MaxX, q.Range.MaxY}
			}
			if err := enc.Encode(jq); err != nil {
				fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	// Composition summary: query-type counts per timeline decile.
	const deciles = 10
	var counts [deciles][3]int
	kwTotal, kwQueries := 0, 0
	for gen.Remaining() > 0 {
		d := int(gen.Progress() * deciles)
		if d >= deciles {
			d = deciles - 1
		}
		q := gen.Next(0)
		counts[d][q.Type()]++
		if len(q.Keywords) > 0 {
			kwTotal += len(q.Keywords)
			kwQueries++
		}
	}
	fmt.Printf("# %s on %s — %d queries\n", spec.Name, spec.Dataset, *n)
	fmt.Printf("%-8s %10s %10s %10s\n", "decile", "spatial", "keyword", "hybrid")
	var totals [3]int
	for d := 0; d < deciles; d++ {
		fmt.Printf("%d0-%d0%%   %10d %10d %10d\n", d, d+1,
			counts[d][stream.SpatialQuery], counts[d][stream.KeywordQuery], counts[d][stream.HybridQuery])
		for t := 0; t < 3; t++ {
			totals[t] += counts[d][t]
		}
	}
	fmt.Printf("%-8s %10d %10d %10d\n", "total", totals[0], totals[1], totals[2])
	if kwQueries > 0 {
		fmt.Printf("mean keywords per keyword-bearing query: %.2f\n", float64(kwTotal)/float64(kwQueries))
	}
}
