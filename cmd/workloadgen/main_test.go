package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runGen(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListPresets(t *testing.T) {
	code, stdout, stderr := runGen(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"TwQW1", "EbRQW1", "CiQW1"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list missing preset %s:\n%s", want, stdout)
		}
	}
}

func TestSummary(t *testing.T) {
	code, stdout, stderr := runGen(t, "-workload", "TwQW1", "-n", "500")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "# TwQW1 on Twitter — 500 queries") {
		t.Errorf("summary header missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "total") {
		t.Errorf("summary totals missing:\n%s", stdout)
	}
}

func TestEmitQueriesJSONL(t *testing.T) {
	code, stdout, stderr := runGen(t, "-workload", "TwQW1", "-n", "200", "-emit")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	sc := bufio.NewScanner(strings.NewReader(stdout))
	lines := 0
	for sc.Scan() {
		var q jsonQuery
		if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		if q.Type == "" {
			t.Fatalf("line %d missing type: %s", lines+1, sc.Text())
		}
		lines++
	}
	if lines != 200 {
		t.Errorf("emitted %d lines, want 200", lines)
	}
}

// TestExportStreamRoundTrip checks the exported object JSONL is readable by
// the replay package contract latest-run -input relies on (non-decreasing
// timestamps, required fields).
func TestExportStreamRoundTrip(t *testing.T) {
	code, stdout, stderr := runGen(t, "-exportstream", "Twitter", "-n", "300", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	sc := bufio.NewScanner(strings.NewReader(stdout))
	var lastTS int64
	lines := 0
	for sc.Scan() {
		var o struct {
			ID  uint64 `json:"id"`
			TS  int64  `json:"ts"`
			Lon float64
			Lat float64
		}
		if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		if o.TS < lastTS {
			t.Fatalf("line %d timestamp regressed: %d < %d", lines+1, o.TS, lastTS)
		}
		lastTS = o.TS
		lines++
	}
	if lines != 300 {
		t.Errorf("exported %d lines, want 300", lines)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, first, _ := runGen(t, "-workload", "CiQW1", "-n", "100", "-emit", "-seed", "9")
	_, second, _ := runGen(t, "-workload", "CiQW1", "-n", "100", "-emit", "-seed", "9")
	if first != second {
		t.Error("same seed produced different workloads")
	}
}
