package latest

import (
	"context"
	"sync"
	"time"

	"github.com/spatiotext/latest/internal/telemetry"
)

// ConcurrentSystem wraps a System with a mutex so multiple goroutines can
// feed and query it. Every operation — including Estimate, which records
// per-query measurement state — mutates the module, so a single exclusive
// lock is the honest synchronization (streaming ingest paths are
// single-writer in practice; this wrapper exists for applications that
// fan queries out across request handlers). For parallel ingest across
// CPU cores, see ShardedSystem, which partitions the lock spatially.
//
// Estimate and the feedback call must still pair up per query; under
// concurrency that pairing is only maintainable atomically, so
// ConcurrentSystem exposes the combined EstimateAndExecute/EstimateWith
// operations instead of the split halves.
//
// Timestamps should be non-decreasing per producer. With multiple
// producers, interleavings can present an older timestamp after a newer
// one; those arrivals are clamped to the system's high-water mark rather
// than panicking the window store.
type ConcurrentSystem struct {
	mu      sync.Mutex
	sys     *System
	scratch Object

	telem     *telemetry.Server
	closeOnce sync.Once
}

// NewConcurrent builds a thread-safe LATEST system over the given world
// and sliding-window span. Sharding options (WithShards,
// WithSynchronousPrefill, WithPrefillQueueDepth) are rejected with a
// descriptive error.
func NewConcurrent(world Rect, window time.Duration, opts ...Option) (*ConcurrentSystem, error) {
	cfg := buildConfig(world, window, opts)
	sys, err := newSystem(cfg, nil, "inline", "concurrent", kindConcurrent)
	if err != nil {
		return nil, err
	}
	c := &ConcurrentSystem{sys: sys}
	if cfg.TelemetryAddr != "" {
		srv, err := telemetry.Serve(cfg.TelemetryAddr, c.telemetrySnapshot, sys.log)
		if err != nil {
			return nil, err
		}
		c.telem = srv
	}
	return c, nil
}

// MustNewConcurrent is NewConcurrent but panics on error — for tests,
// examples and programs whose configuration is static.
func MustNewConcurrent(world Rect, window time.Duration, opts ...Option) *ConcurrentSystem {
	c, err := NewConcurrent(world, window, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Close stops the telemetry server if one was started. Idempotent; the
// system remains usable afterwards.
func (c *ConcurrentSystem) Close() {
	c.closeOnce.Do(func() {
		if c.telem != nil {
			c.telem.Close()
		}
	})
}

// Shutdown is the graceful form of Close: the telemetry exposition server
// (if one was started) finishes in-flight scrapes before stopping, bounded
// by ctx. Shares Close's once — whichever runs first wins, the other is a
// no-op.
func (c *ConcurrentSystem) Shutdown(ctx context.Context) error {
	var err error
	c.closeOnce.Do(func() {
		if c.telem != nil {
			err = c.telem.Shutdown(ctx)
		}
	})
	return err
}

// TelemetryAddr returns the bound address of the telemetry server, or ""
// when WithTelemetry was not used. With a ":0" listen address this is how
// callers learn the kernel-assigned port.
func (c *ConcurrentSystem) TelemetryAddr() string {
	if c.telem == nil {
		return ""
	}
	return c.telem.Addr()
}

// feedLocked ingests one object, clamping regressed timestamps to the
// high-water mark under the default ValidationClamp policy (counted in the
// Reordered gauge; under stricter policies the System-level validation
// rejects the arrival instead). The high-water mark is the wrapped
// System's lastTS, which advances only when validation accepts an object,
// so a rejected arrival (e.g. NaN coordinates) carrying a garbage
// timestamp cannot poison the stream clock. Caller holds c.mu.
func (c *ConcurrentSystem) feedLocked(o *Object) {
	if o.Timestamp < c.sys.lastTS && c.sys.policy == ValidationClamp {
		c.scratch = *o
		c.scratch.Timestamp = c.sys.lastTS
		o = &c.scratch
		c.sys.gauges.RecordReordered()
	}
	c.sys.feedPtr(o)
}

// Feed ingests one stream object. One in metrics.FeedSampleInterval feeds
// is timed (clock reads outside the lock) into the ingest histogram.
func (c *ConcurrentSystem) Feed(o Object) {
	sampled := c.sys.gauges.RecordFeed()
	var start time.Time
	if sampled {
		start = time.Now()
	}
	c.mu.Lock()
	c.feedLocked(&o)
	occ := c.sys.window.Size()
	c.mu.Unlock()
	if sampled {
		c.sys.gauges.RecordFeedLatency(time.Since(start))
	}
	c.sys.gauges.SetOccupancy(occ)
}

// FeedBatch ingests a batch of stream objects under a single lock
// acquisition, amortizing the contention cost across the batch.
func (c *ConcurrentSystem) FeedBatch(objs []Object) {
	if len(objs) == 0 {
		return
	}
	start := time.Now()
	c.mu.Lock()
	for i := range objs {
		c.feedLocked(&objs[i])
	}
	occ := c.sys.window.Size()
	c.mu.Unlock()
	c.sys.gauges.RecordBatch(len(objs), time.Since(start))
	c.sys.gauges.SetOccupancy(occ)
}

// EstimateAndExecute answers the query approximately, then exactly, and
// feeds the truth back — one atomic estimate/observe cycle.
func (c *ConcurrentSystem) EstimateAndExecute(q *Query) (estimate float64, actual int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.EstimateAndExecute(q)
}

// EstimateAndExecuteBatch runs EstimateAndExecute over a batch of queries
// under a single lock acquisition, returning the parallel estimate and
// exact-count slices.
func (c *ConcurrentSystem) EstimateAndExecuteBatch(qs []Query) (estimates []float64, actuals []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.EstimateAndExecuteBatch(qs)
}

// EstimateWith answers the query approximately and immediately closes the
// feedback loop with the truth produced by fn (called under the lock with
// the exact window count, letting callers substitute their own execution
// result or accept the store's).
func (c *ConcurrentSystem) EstimateWith(q *Query, fn func(windowExact int) (actual float64)) float64 {
	start := time.Now()
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
		c.sys.gauges.RecordQuery(time.Since(start))
	}()
	est := c.sys.Estimate(q)
	if c.sys.pendingRejected {
		// The validation policy refused the query: no estimate was made,
		// so there is no feedback loop to close and no store to consult.
		c.sys.pendingRejected = false
		return est
	}
	exact := c.sys.window.Answer(q)
	c.sys.ObserveActual(fn(exact))
	return est
}

// ActiveEstimator returns the currently employed estimator's name.
func (c *ConcurrentSystem) ActiveEstimator() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.ActiveEstimator()
}

// Phase returns the lifecycle phase.
func (c *ConcurrentSystem) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Phase()
}

// Switches returns the switch history.
func (c *ConcurrentSystem) Switches() []SwitchEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Switches()
}

// WindowSize returns the number of live objects in the exact store.
func (c *ConcurrentSystem) WindowSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.WindowSize()
}

// Stats returns a snapshot of the module internals.
func (c *ConcurrentSystem) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Stats()
}

// Gauges returns a point-in-time copy of the engine's operational counters
// and latency histograms without taking the engine lock.
func (c *ConcurrentSystem) Gauges() GaugeSnapshot { return c.sys.gauges.Snapshot() }

// Decisions returns the recent switch-decision audit records, oldest first.
func (c *ConcurrentSystem) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Decisions()
}
