package latest

import "sync"

// ConcurrentSystem wraps a System with a mutex so multiple goroutines can
// feed and query it. Every operation — including Estimate, which records
// per-query measurement state — mutates the module, so a single exclusive
// lock is the honest synchronization (streaming ingest paths are
// single-writer in practice; this wrapper exists for applications that
// fan queries out across request handlers).
//
// Estimate and the feedback call must still pair up per query; under
// concurrency that pairing is only maintainable atomically, so
// ConcurrentSystem exposes the combined EstimateAndExecute/EstimateWith
// operations instead of the split halves.
type ConcurrentSystem struct {
	mu  sync.Mutex
	sys *System
}

// NewConcurrent builds a thread-safe LATEST system.
func NewConcurrent(cfg Config) (*ConcurrentSystem, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentSystem{sys: sys}, nil
}

// Feed ingests one stream object. Timestamps must still be globally
// non-decreasing; with multiple producers, order them before calling.
func (c *ConcurrentSystem) Feed(o Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sys.Feed(o)
}

// EstimateAndExecute answers the query approximately, then exactly, and
// feeds the truth back — one atomic estimate/observe cycle.
func (c *ConcurrentSystem) EstimateAndExecute(q *Query) (estimate float64, actual int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.EstimateAndExecute(q)
}

// EstimateWith answers the query approximately and immediately closes the
// feedback loop with the truth produced by fn (called under the lock with
// the exact window count, letting callers substitute their own execution
// result or accept the store's).
func (c *ConcurrentSystem) EstimateWith(q *Query, fn func(windowExact int) (actual float64)) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	est := c.sys.Estimate(q)
	exact := c.sys.window.Answer(q)
	c.sys.ObserveActual(fn(exact))
	return est
}

// ActiveEstimator returns the currently employed estimator's name.
func (c *ConcurrentSystem) ActiveEstimator() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.ActiveEstimator()
}

// Phase returns the lifecycle phase.
func (c *ConcurrentSystem) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Phase()
}

// Switches returns the switch history.
func (c *ConcurrentSystem) Switches() []SwitchEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Switches()
}

// WindowSize returns the number of live objects in the exact store.
func (c *ConcurrentSystem) WindowSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.WindowSize()
}

// Stats returns a snapshot of the module internals.
func (c *ConcurrentSystem) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Stats()
}
