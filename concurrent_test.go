package latest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestConcurrentSystemBasics(t *testing.T) {
	cs, err := NewConcurrent(Config{
		World:           Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		Window:          10 * time.Second,
		PretrainQueries: 100,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConcurrent(Config{}); err == nil {
		t.Error("bad config accepted")
	}
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 2000; i++ {
		ts++
		cs.Feed(Object{ID: uint64(i), Loc: Pt(rng.Float64(), rng.Float64()),
			Keywords: []string{"a"}, Timestamp: ts})
	}
	q := HybridQuery(CenteredRect(Pt(0.5, 0.5), 0.4, 0.4), []string{"a"}, ts)
	est, actual := cs.EstimateAndExecute(&q)
	if est < 0 || actual <= 0 {
		t.Errorf("est %v actual %d", est, actual)
	}
	// EstimateWith lets the caller adjust the truth before feedback.
	got := cs.EstimateWith(&q, func(exact int) float64 {
		if exact != actual {
			t.Errorf("exact %d != previous actual %d", exact, actual)
		}
		return float64(exact)
	})
	if got < 0 {
		t.Errorf("EstimateWith = %v", got)
	}
	if cs.WindowSize() == 0 || cs.ActiveEstimator() == "" {
		t.Error("accessors broken")
	}
	if cs.Phase() != PhasePretrain {
		t.Errorf("phase = %v", cs.Phase())
	}
	if len(cs.Switches()) != 0 {
		t.Errorf("switches = %v", cs.Switches())
	}
	if cs.Stats().TrainingRecords == 0 {
		t.Error("no training records")
	}
}

// TestConcurrentSystemParallel hammers the wrapper from many goroutines;
// run with -race to verify the locking. One producer owns the clock (the
// stream contract requires non-decreasing timestamps); many consumers
// query concurrently.
func TestConcurrentSystemParallel(t *testing.T) {
	cs, err := NewConcurrent(Config{
		World:           Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		Window:          10 * time.Second,
		PretrainQueries: 50,
		AccWindow:       30,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed data first so queries see a populated window.
	rng := rand.New(rand.NewSource(2))
	var clock int64
	for i := 0; i < 5000; i++ {
		clock++
		cs.Feed(Object{ID: uint64(i), Loc: Pt(rng.Float64(), rng.Float64()),
			Keywords: []string{fmt.Sprintf("kw%d", i%10)}, Timestamp: clock})
	}

	stop := make(chan struct{})
	var producer sync.WaitGroup
	producer.Add(1)
	go func() {
		defer producer.Done()
		prng := rand.New(rand.NewSource(3))
		var localClock int64 = clock
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			localClock++
			cs.Feed(Object{ID: uint64(10000 + i), Loc: Pt(prng.Float64(), prng.Float64()),
				Keywords: []string{fmt.Sprintf("kw%d", i%10)}, Timestamp: localClock})
		}
	}()

	var queriers sync.WaitGroup
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func(seed int64) {
			defer queriers.Done()
			qrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				// Query at the already-seeded clock: older than live feeds,
				// but within the window — valid and race-free.
				q := HybridQuery(
					CenteredRect(Pt(qrng.Float64(), qrng.Float64()), 0.3, 0.3),
					[]string{fmt.Sprintf("kw%d", qrng.Intn(10))},
					clock)
				est, _ := cs.EstimateAndExecute(&q)
				if est < 0 {
					t.Errorf("negative estimate %v", est)
					return
				}
				_ = cs.Stats()
			}
		}(int64(10 + g))
	}
	queriers.Wait()
	close(stop)
	producer.Wait()

	// Tree records can reset on a drift retrain; the query counters are the
	// stable invariant.
	st := cs.Stats()
	if st.PretrainSeen != 50 || st.IncrementalSeen != 800-50 {
		t.Errorf("query accounting: pretrain=%d incremental=%d", st.PretrainSeen, st.IncrementalSeen)
	}
}
