package latest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestConcurrentSystemBasics(t *testing.T) {
	cs, err := NewConcurrent(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithPretrainQueries(100), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConcurrent(Rect{}, 0); err == nil {
		t.Error("bad world/window accepted")
	}
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 2000; i++ {
		ts++
		cs.Feed(Object{ID: uint64(i), Loc: Pt(rng.Float64(), rng.Float64()),
			Keywords: []string{"a"}, Timestamp: ts})
	}
	q := HybridQuery(CenteredRect(Pt(0.5, 0.5), 0.4, 0.4), []string{"a"}, ts)
	est, actual := cs.EstimateAndExecute(&q)
	if est < 0 || actual <= 0 {
		t.Errorf("est %v actual %d", est, actual)
	}
	// EstimateWith lets the caller adjust the truth before feedback.
	got := cs.EstimateWith(&q, func(exact int) float64 {
		if exact != actual {
			t.Errorf("exact %d != previous actual %d", exact, actual)
		}
		return float64(exact)
	})
	if got < 0 {
		t.Errorf("EstimateWith = %v", got)
	}
	if cs.WindowSize() == 0 || cs.ActiveEstimator() == "" {
		t.Error("accessors broken")
	}
	if cs.Phase() != PhasePretrain {
		t.Errorf("phase = %v", cs.Phase())
	}
	if len(cs.Switches()) != 0 {
		t.Errorf("switches = %v", cs.Switches())
	}
	if cs.Stats().TrainingRecords == 0 {
		t.Error("no training records")
	}
}

// TestConcurrentSystemParallel hammers the wrapper from many goroutines;
// run with -race to verify the locking. One producer owns the clock (the
// stream contract requires non-decreasing timestamps); many consumers
// query concurrently.
func TestConcurrentSystemParallel(t *testing.T) {
	cs, err := NewConcurrent(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithPretrainQueries(50), WithAccWindow(30), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	// Seed data first so queries see a populated window.
	rng := rand.New(rand.NewSource(2))
	var clock int64
	for i := 0; i < 5000; i++ {
		clock++
		cs.Feed(Object{ID: uint64(i), Loc: Pt(rng.Float64(), rng.Float64()),
			Keywords: []string{fmt.Sprintf("kw%d", i%10)}, Timestamp: clock})
	}

	stop := make(chan struct{})
	var producer sync.WaitGroup
	producer.Add(1)
	go func() {
		defer producer.Done()
		prng := rand.New(rand.NewSource(3))
		var localClock int64 = clock
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			localClock++
			cs.Feed(Object{ID: uint64(10000 + i), Loc: Pt(prng.Float64(), prng.Float64()),
				Keywords: []string{fmt.Sprintf("kw%d", i%10)}, Timestamp: localClock})
		}
	}()

	var queriers sync.WaitGroup
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func(seed int64) {
			defer queriers.Done()
			qrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				// Query at the already-seeded clock: older than live feeds,
				// but within the window — valid and race-free.
				q := HybridQuery(
					CenteredRect(Pt(qrng.Float64(), qrng.Float64()), 0.3, 0.3),
					[]string{fmt.Sprintf("kw%d", qrng.Intn(10))},
					clock)
				est, _ := cs.EstimateAndExecute(&q)
				if est < 0 {
					t.Errorf("negative estimate %v", est)
					return
				}
				_ = cs.Stats()
			}
		}(int64(10 + g))
	}
	queriers.Wait()
	close(stop)
	producer.Wait()

	// Tree records can reset on a drift retrain; the query counters are the
	// stable invariant.
	st := cs.Stats()
	if st.PretrainSeen != 50 || st.IncrementalSeen != 800-50 {
		t.Errorf("query accounting: pretrain=%d incremental=%d", st.PretrainSeen, st.IncrementalSeen)
	}
}

// TestConcurrentSystemMultiProducer runs several batch producers at once.
// Producer interleavings inevitably present regressed timestamps; the
// wrapper clamps them to its high-water mark instead of letting the window
// store panic. Run with -race.
func TestConcurrentSystemMultiProducer(t *testing.T) {
	cs, err := NewConcurrent(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, time.Minute,
		WithPretrainQueries(50), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	const producers, batches, batchLen = 4, 25, 40
	var clock int64
	var mu sync.Mutex
	nextTS := func() int64 { mu.Lock(); clock++; ts := clock; mu.Unlock(); return ts }

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				batch := make([]Object, batchLen)
				for i := range batch {
					ts := nextTS()
					batch[i] = Object{ID: uint64(ts), Loc: Pt(prng.Float64(), prng.Float64()),
						Keywords: []string{"kw"}, Timestamp: ts}
				}
				// Sleep-free jitter: interleave Feed and FeedBatch paths.
				if b%5 == 0 {
					for i := range batch {
						cs.Feed(batch[i])
					}
				} else {
					cs.FeedBatch(batch)
				}
			}
		}(int64(40 + p))
	}
	wg.Wait()

	want := producers * batches * batchLen
	if got := cs.WindowSize(); got != want {
		t.Fatalf("window holds %d objects, want %d", got, want)
	}
	qs := []Query{
		KeywordQuery([]string{"kw"}, clock),
		SpatialQuery(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, clock),
	}
	_, acts := cs.EstimateAndExecuteBatch(qs)
	if acts[0] != want || acts[1] != want {
		t.Errorf("exact counts %v, want %d", acts, want)
	}
}
