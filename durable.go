package latest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// DefaultSnapshotRetain is how many committed snapshot generations the
// durable layer keeps when DurableConfig.Retain is zero. Two generations
// means recovery survives the newest snapshot being corrupt: it falls
// back one generation and replays both generations' WALs.
const DefaultSnapshotRetain = 2

// DurableConfig tunes the persistence wrapper.
type DurableConfig struct {
	// SnapshotInterval, when positive, starts a background goroutine that
	// takes a snapshot every interval. Zero means snapshots happen only on
	// SnapshotNow and Shutdown.
	SnapshotInterval time.Duration
	// WALSyncEvery batches fsyncs: the feed WAL is flushed to stable
	// storage every N appended records (default
	// persist.DefaultWALSyncEvery). Lower is more durable, higher is
	// faster; a crash loses at most the un-fsynced tail, which the
	// checksummed record framing detects and drops on recovery.
	WALSyncEvery int
	// Retain is how many snapshot generations to keep (default
	// DefaultSnapshotRetain, minimum 1). Each retained generation keeps
	// its WAL too, so recovery can fall back past a corrupt newest
	// snapshot and replay the full chain.
	Retain int
	// RepairBackoff is the repair loop's initial retry delay after a
	// degradation (default 250ms); it doubles per attempt up to
	// RepairBackoffMax (default 5s).
	RepairBackoff    time.Duration
	RepairBackoffMax time.Duration
	// Log, when non-nil, receives state-machine transitions (degraded,
	// repaired, fallback recovery). A nil logger drops everything.
	Log *telemetry.Logger
}

// DurableEngine wraps any Engine with crash-durable state: every fed
// object is appended to a checksummed write-ahead log before it reaches
// the engine, and periodic snapshots capture the engine's full state —
// window, module counters, learning model, estimator summaries. After a
// crash, NewDurable rebuilds the engine from the newest decodable
// snapshot plus every WAL generation written since it.
//
// What recovery restores exactly: every object the WAL had fsynced, and
// all engine state as of the snapshot. What it does not: queries answered
// after the snapshot (their model feedback is not logged — re-deriving it
// would require re-running the queries) and the un-fsynced WAL tail. Both
// are documented trade-offs of logging only the feed stream.
//
// Persistence failures never stop serving. A failed WAL append or
// snapshot commit flips the engine into the degraded state (see
// DurableHealth): queries and feeds continue from memory, further WAL
// appends are dropped and counted rather than attempted against a broken
// store, and a background repair loop retries a fresh snapshot commit
// with backoff until durability is restored.
//
// Locking: feeds take the write lock — the WAL append and the engine
// apply must commit in the same order, or a replay could present two
// concurrent producers' objects in an order the original engine never saw.
// Queries take the read lock (the inner engine provides its own mutual
// exclusion); snapshots take the write lock, so a capture is atomic with
// respect to both feeds and query fan-outs.
//
// The snapshot/WAL pairing is atomic: each committed snapshot generation
// gets its own file (snapshot-<g>.snap, via atomic rename) and the paired
// WAL is named after it (feed-<g>.wal). Whatever instant a crash hits,
// the store holds at least one committed snapshot and the WAL chain that
// extends it.
type DurableEngine struct {
	mu    sync.RWMutex
	eng   Engine
	store Store
	cfg   DurableConfig
	log   *telemetry.Logger

	wal *persist.WAL
	gen uint64
	// snaps indexes the retained snapshot files by generation (values are
	// file names; the legacy un-numbered snapshot.snap can appear here
	// after recovering a store written by an older build).
	snaps map[uint64]string

	// stats instruments the layer: WAL append/fsync latency, snapshot
	// outcomes, recovery cost. Exposed via TelemetrySnapshot as the
	// latest_wal_* / latest_snapshot_* / latest_recovery_* /
	// latest_durable_* families.
	stats durableStats

	// The degraded-mode state machine (durable_health.go): state is read
	// on the feed path without the engine lock; healthMu guards the
	// bounded error ring and the transition timestamp.
	state     atomic.Uint32
	healthMu  sync.Mutex
	since     time.Time
	ring      []DurableErrorRecord
	errsTotal uint64
	repairCh  chan struct{}

	done      chan struct{}
	ticker    *time.Ticker
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewDurable wraps eng with snapshot + WAL persistence backed by st.
//
// eng must be freshly constructed with the same options as the engine that
// wrote the store's state. If st holds snapshots, the newest decodable
// generation is restored and the WAL chain extending it replayed; a
// corrupt newest generation falls back to the previous retained one. Only
// when no generation can be decoded — or the surviving one fails the
// engine's own kind/fingerprint validation — does startup refuse with the
// typed error; never a partial restore. An empty store starts fresh at
// generation zero.
func NewDurable(eng Engine, st Store, cfg DurableConfig) (*DurableEngine, error) {
	if cfg.WALSyncEvery == 0 {
		cfg.WALSyncEvery = persist.DefaultWALSyncEvery
	}
	if cfg.Retain < 1 {
		cfg.Retain = DefaultSnapshotRetain
	}
	if cfg.RepairBackoff <= 0 {
		cfg.RepairBackoff = 250 * time.Millisecond
	}
	if cfg.RepairBackoffMax <= 0 {
		cfg.RepairBackoffMax = 5 * time.Second
	}
	d := &DurableEngine{
		eng: eng, store: st, cfg: cfg, log: cfg.Log,
		snaps:    make(map[uint64]string),
		repairCh: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	d.since = time.Now()
	recoverStart := time.Now()
	if err := d.recover(); err != nil {
		return nil, err
	}
	d.stats.recoverySeconds = time.Since(recoverStart).Seconds()
	d.wg.Add(1)
	go d.repairLoop()
	if cfg.SnapshotInterval > 0 {
		d.ticker = time.NewTicker(cfg.SnapshotInterval)
		d.wg.Add(1)
		go d.snapshotLoop()
	}
	return d, nil
}

// snapCandidate is one restorable snapshot file found during recovery.
type snapCandidate struct {
	gen  uint64
	name string
}

// recover restores the newest decodable snapshot generation (falling back
// to older retained generations when the newest fails its CRCs), replays
// the WAL chain from the restored generation through the newest one, and
// leaves the top WAL open for appends.
func (d *DurableEngine) recover() error {
	names, err := d.store.List()
	if err != nil {
		return err
	}
	wals := make(map[uint64]bool)
	var cands []snapCandidate
	var lastErr error
	var badNames []string
	legacy := false
	for _, name := range names {
		if gen, ok := persist.ParseSnapshotName(name); ok {
			cands = append(cands, snapCandidate{gen: gen, name: name})
		} else if gen, ok := persist.ParseWALName(name); ok {
			wals[gen] = true
		} else if name == persist.SnapshotName {
			legacy = true
		}
	}
	if legacy {
		// A store written by an older build: the generation lives inside
		// the snapshot's meta section, not its name.
		if gen, lerr := snapshotGeneration(d.store); lerr == nil {
			cands = append(cands, snapCandidate{gen: gen, name: persist.SnapshotName})
		} else {
			lastErr = lerr
			badNames = append(badNames, persist.SnapshotName)
			d.noteErr("recover-snapshot", lerr)
		}
	}
	// Newest generation first; a numbered file wins a same-generation tie
	// against the legacy name (they hold identical state when both exist).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gen != cands[j].gen {
			return cands[i].gen > cands[j].gen
		}
		return cands[i].name != persist.SnapshotName
	})
	maxGen := uint64(0) // newest generation ever seen, restored or not
	for _, c := range cands {
		if c.gen > maxGen {
			maxGen = c.gen
		}
	}
	restored := false
	var restoredGen uint64
	for _, c := range cands {
		// Pre-validate before the engine sees anything: DecodeSnapshot
		// checks every CRC, so a fallback here never leaves the engine
		// partially mutated.
		data, lerr := d.store.Load(c.name)
		if lerr == nil {
			_, lerr = persist.DecodeSnapshot(data)
		}
		if lerr != nil {
			lastErr = lerr
			badNames = append(badNames, c.name)
			d.noteErr("recover-snapshot",
				fmt.Errorf("snapshot generation %d (%s): %w", c.gen, c.name, lerr))
			continue
		}
		// The engine's Restore validates kind and fingerprint. A refusal
		// there is semantic (wrong engine shape, config mismatch), not
		// corruption — falling back to an older generation would restore
		// state this process equally cannot speak, so refuse outright.
		if rerr := d.eng.Restore(context.Background(), readRedirect{Store: d.store, name: c.name}); rerr != nil {
			return rerr
		}
		restored = true
		restoredGen = c.gen
		d.snaps[c.gen] = c.name
		if c.gen < maxGen {
			d.stats.recoveredFallback = true
			d.log.Warn("newest snapshot generation unreadable; falling back",
				"restored_generation", c.gen, "newest_generation", maxGen, "err", lastErr)
		}
		break
	}
	if !restored && lastErr != nil {
		// Snapshots existed but none decoded: that is a refusal, not a
		// fresh start — silently dropping state would be data loss.
		return lastErr
	}
	// Index the older retained generations too (not re-validated here:
	// they are fallback candidates by presence; a future recovery
	// validates whichever it needs).
	for _, c := range cands {
		if restored && c.gen < restoredGen {
			if _, ok := d.snaps[c.gen]; !ok {
				d.snaps[c.gen] = c.name
			}
		}
	}
	// Known-bad files are removed so retention never counts a corrupt
	// generation as a keeper.
	for _, name := range badNames {
		if err := d.store.Remove(name); err != nil && !persist.IsNotExist(err) {
			d.noteErr("cleanup", err)
		}
	}
	d.stats.recoveredSnapshot = restored
	d.stats.recoveredGen = restoredGen

	// Replay the WAL chain. Generations between the restored snapshot and
	// the newest generation seen anywhere must all be present — a gap in
	// the middle means lost feeds, which is a refusal. The top generation
	// may be absent (a crash between snapshot commit and WAL open); it is
	// created empty.
	start := restoredGen // 0 when starting fresh
	top := start
	for g := range wals {
		if g > top {
			top = g
		}
	}
	if maxGen > top {
		top = maxGen
	}
	for g := start; g < top; g++ {
		data, lerr := d.store.Load(persist.WALName(g))
		if lerr != nil {
			if persist.IsNotExist(lerr) {
				return persist.Errf(persist.CodeTruncated, "wal replay",
					"wal chain broken: generation %d missing below generation %d", g, top)
			}
			return lerr
		}
		records, tail := persist.ParseWAL(data)
		if tail.DroppedBytes > 0 {
			// Only the final chain link may legitimately tear; a torn
			// middle generation means its rotation never flushed.
			d.noteErr("wal-recover", fmt.Errorf(
				"wal generation %d: dropped %d-byte torn tail after %d valid records",
				g, tail.DroppedBytes, tail.Records))
		}
		if err := d.replayRecords(records); err != nil {
			return err
		}
		d.stats.recoveryRecords += uint64(len(records))
		d.stats.recoveryTruncated += tail.DroppedBytes
	}
	wal, records, tail, err := persist.OpenWAL(d.store, persist.WALName(top), d.cfg.WALSyncEvery)
	if err != nil {
		return err
	}
	wal.SetObserver(&d.stats)
	d.stats.recoveryRecords += uint64(len(records))
	d.stats.recoveryTruncated += tail.DroppedBytes
	if tail.DroppedBytes > 0 {
		// A torn tail is the expected shape of a crash mid-append; the
		// checksummed framing identified the exact valid prefix.
		d.noteErr("wal-recover", fmt.Errorf("wal: dropped %d-byte torn tail after %d valid records",
			tail.DroppedBytes, tail.Records))
	}
	if err := d.replayRecords(records); err != nil {
		wal.Close()
		return err
	}
	d.wal = wal
	d.gen = top
	d.pruneGenerations()
	return nil
}

// replayRecords decodes one WAL generation's records and feeds them.
func (d *DurableEngine) replayRecords(records [][]byte) error {
	if len(records) == 0 {
		return nil
	}
	objs := make([]Object, 0, len(records))
	for i, rec := range records {
		dec := persist.NewDec(rec)
		o := stream.DecodeObject(dec)
		if dec.Err() != nil || dec.Done() != nil {
			return persist.Errf(persist.CodeMalformed, "wal replay",
				"record %d of %d does not decode as a feed object", i, len(records))
		}
		objs = append(objs, o)
	}
	d.eng.FeedBatch(objs)
	return nil
}

// readRedirect lets the engine's Restore — which reads the conventional
// persist.SnapshotName — load a specific retained generation file instead.
type readRedirect struct {
	Store
	name string
}

// Load implements Store.
func (r readRedirect) Load(name string) ([]byte, error) {
	if name == persist.SnapshotName {
		name = r.name
	}
	return r.Store.Load(name)
}

// snapshotGeneration reads the generation embedded in the store's legacy
// snapshot.snap without validating kind or fingerprint — the engine's
// Restore does that; this only answers "which WAL extends this snapshot".
func snapshotGeneration(st Store) (uint64, error) {
	data, err := st.Load(persist.SnapshotName)
	if err != nil {
		return 0, err
	}
	snap, err := persist.DecodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	payload, ok := snap.Section(metaSectionName)
	if !ok {
		return 0, persist.Errf(persist.CodeMalformed, "snapshot meta", "section missing")
	}
	dec := persist.NewDec(payload)
	dec.Str()  // kind
	dec.Blob() // fingerprint
	gen := dec.U64()
	if dec.Err() != nil {
		return 0, dec.Err()
	}
	return gen, nil
}

// pruneGenerations enforces the retention policy: the newest cfg.Retain
// snapshot generations stay (with every WAL from the oldest keeper
// through the current generation — the fallback replay chain), everything
// older goes. Removal failures are recorded, never fatal: stale files
// cost disk, not correctness.
func (d *DurableEngine) pruneGenerations() {
	gens := make([]uint64, 0, len(d.snaps))
	for g := range d.snaps {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	oldestKept := d.gen
	for i, g := range gens {
		if i < d.cfg.Retain {
			if g < oldestKept {
				oldestKept = g
			}
			continue
		}
		if err := d.store.Remove(d.snaps[g]); err != nil && !persist.IsNotExist(err) {
			d.noteErr("cleanup", err)
			continue
		}
		delete(d.snaps, g)
	}
	names, err := d.store.List()
	if err != nil {
		d.noteErr("cleanup", err)
		return
	}
	for _, name := range names {
		g, ok := persist.ParseWALName(name)
		if !ok || g == d.gen || g >= oldestKept {
			continue
		}
		if err := d.store.Remove(name); err != nil && !persist.IsNotExist(err) {
			d.noteErr("cleanup", err)
		}
	}
}

// snapshotLoop drives the periodic snapshot ticker.
func (d *DurableEngine) snapshotLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case <-d.ticker.C:
			// A failure degrades and is recorded inside snapshotLocked;
			// the repair loop takes over from there.
			_ = d.SnapshotNow(context.Background())
		}
	}
}

// Generation returns the current snapshot generation (zero until the first
// snapshot commits).
func (d *DurableEngine) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// WALAppends returns how many records the current-generation WAL holds
// (replayed + appended) — the recovery-test observable for "the tail was
// actually logged".
func (d *DurableEngine) WALAppends() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.wal == nil {
		return 0
	}
	return d.wal.Appends()
}

// appendWAL logs one object. Caller holds the write lock. While degraded
// the append is not attempted — the store already failed; hammering it
// from the feed path would add latency for nothing — but it is counted,
// and the repair snapshot will capture the object from engine memory.
func (d *DurableEngine) appendWAL(o *Object) {
	if d.wal == nil {
		return // Shutdown already closed the log
	}
	if DurableState(d.state.Load()) == DurableDegraded {
		d.stats.droppedAppends.Add(1)
		return
	}
	var e persist.Enc
	stream.EncodeObject(&e, o)
	if err := d.wal.Append(e.Data()); err != nil {
		d.stats.droppedAppends.Add(1)
		d.degrade("wal-append", err)
	}
}

// Feed logs the object to the WAL, then feeds the engine.
func (d *DurableEngine) Feed(o Object) {
	d.mu.Lock()
	d.appendWAL(&o)
	d.eng.Feed(o)
	d.mu.Unlock()
}

// FeedBatch logs every object to the WAL, then feeds the engine.
func (d *DurableEngine) FeedBatch(objs []Object) {
	if len(objs) == 0 {
		return
	}
	d.mu.Lock()
	for i := range objs {
		d.appendWAL(&objs[i])
	}
	d.eng.FeedBatch(objs)
	d.mu.Unlock()
}

// EstimateAndExecute delegates to the engine under the read lock. Queries
// are not write-ahead logged; see the type comment for what that means on
// recovery.
func (d *DurableEngine) EstimateAndExecute(q *Query) (float64, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EstimateAndExecute(q)
}

// EstimateAndExecuteBatch delegates to the engine under the read lock.
func (d *DurableEngine) EstimateAndExecuteBatch(qs []Query) ([]float64, []int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EstimateAndExecuteBatch(qs)
}

// Stats delegates to the engine.
func (d *DurableEngine) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Stats()
}

// TelemetrySnapshot delegates to the engine and attaches the durability
// layer's sample (generation, WAL and snapshot counters/latencies,
// recovery cost, health state) so /metrics and /statusz describe the
// whole stack.
func (d *DurableEngine) TelemetrySnapshot() TelemetryReport {
	d.mu.RLock()
	defer d.mu.RUnlock()
	snap := d.eng.TelemetrySnapshot()
	snap.Durable = d.stats.sample(d.gen, d.Health())
	return snap
}

// SnapshotNow takes a snapshot into the backing store and rotates the feed
// WAL, all atomically with respect to feeds and queries: the engine
// serializes generation g+1 into snapshot-<g+1>.snap via rename, appends
// switch to feed-<g+1>.wal, and generations past the retention horizon are
// removed. A crash at any point leaves a recoverable snapshot generation
// and the WAL chain extending it — never a torn pairing. A successful
// commit also repairs a degraded engine: everything in memory (dropped
// appends included) just became durable.
func (d *DurableEngine) SnapshotNow(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked(ctx)
}

func (d *DurableEngine) snapshotLocked(ctx context.Context) error {
	start := time.Now()
	if err := d.snapshotCommit(ctx); err != nil {
		d.stats.snapErrors.Add(1)
		d.degrade("snapshot", err)
		return err
	}
	d.stats.snapshots.Add(1)
	d.stats.snapLat.Record(time.Since(start))
	return nil
}

// snapshotCommit is the uninstrumented snapshot + rotation sequence.
// Caller holds the write lock.
func (d *DurableEngine) snapshotCommit(ctx context.Context) error {
	if d.wal != nil && DurableState(d.state.Load()) == DurableHealthy {
		// Flush pending appends first: if the snapshot fails the WAL must
		// still fully extend the previous one. A failed flush degrades but
		// does not abort — the snapshot below supersedes the WAL, and
		// committing it is exactly the repair.
		if err := d.wal.Sync(); err != nil {
			d.degrade("wal-sync", err)
		}
	}
	target := persist.SnapshotNameFor(d.gen + 1)
	cs := &commitStore{Store: d.store, target: target}
	// For a pipelined ShardedSystem, eng.Snapshot drains the per-shard feed
	// queues before capturing. That ordering is load-bearing: Feed appends
	// to the WAL before enqueueing (both under d.mu, which we hold), so
	// every logged feed is enqueued by now, and the drain guarantees the
	// snapshot that supersedes this WAL generation has applied them all.
	if err := d.eng.Snapshot(ctx, cs); err != nil {
		return err
	}
	d.stats.lastSnapBytes.Store(cs.bytes)
	wal, _, _, err := persist.OpenWAL(d.store, persist.WALName(d.gen+1), d.cfg.WALSyncEvery)
	if err != nil {
		// The snapshot committed but the new WAL did not open: recovery
		// from the new snapshot with an empty tail is still correct, but
		// this process can no longer log feeds. Fail the commit so the
		// machine degrades and the repair loop retries the whole sequence.
		return err
	}
	wal.SetObserver(&d.stats)
	if d.wal != nil {
		if cerr := d.wal.Close(); cerr != nil {
			d.noteErr("wal-close", cerr)
		}
		d.stats.rotations.Add(1)
	}
	d.wal = wal
	d.gen++
	d.snaps[d.gen] = target
	d.pruneGenerations()
	// The commit captured every acknowledged feed — including any dropped
	// from the WAL while degraded — so durability is whole again.
	d.rearm()
	return nil
}

// Snapshot satisfies the unified Engine interface. Snapshotting into the
// backing store is SnapshotNow — full WAL rotation semantics. Snapshotting
// into any other store writes a standalone full-state artifact (for
// backups or seeding a replica) without touching this engine's WAL
// pairing or generation naming.
func (d *DurableEngine) Snapshot(ctx context.Context, st Store) error {
	if st == Store(d.store) || st == nil {
		return d.SnapshotNow(ctx)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eng.Snapshot(ctx, st)
}

// Restore refuses: a DurableEngine restores exactly once, at construction
// (NewDurable), where the WAL replay and generation bookkeeping happen.
// Restoring mid-flight would desynchronize the WAL from the engine.
func (d *DurableEngine) Restore(context.Context, Store) error {
	return persist.Errf(persist.CodeState, "durable engine",
		"restore happens at construction (NewDurable); build a fresh engine instead")
}

// Shutdown drains gracefully: the background loops stop, a final snapshot
// captures everything — so a clean shutdown/restart cycle loses nothing —
// the WAL closes, and the inner engine shuts down, bounded by ctx. The
// first error is returned but every step still runs.
func (d *DurableEngine) Shutdown(ctx context.Context) error {
	var first error
	note := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	d.closeOnce.Do(func() {
		close(d.done)
		if d.ticker != nil {
			d.ticker.Stop()
		}
		d.wg.Wait()
		d.mu.Lock()
		note(d.snapshotLocked(ctx))
		if d.wal != nil {
			note(d.wal.Close())
			d.wal = nil
		}
		d.mu.Unlock()
		note(d.eng.Shutdown(ctx))
	})
	return first
}
