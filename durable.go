package latest

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/stream"
)

// DurableConfig tunes the persistence wrapper.
type DurableConfig struct {
	// SnapshotInterval, when positive, starts a background goroutine that
	// takes a snapshot every interval. Zero means snapshots happen only on
	// SnapshotNow and Shutdown.
	SnapshotInterval time.Duration
	// WALSyncEvery batches fsyncs: the feed WAL is flushed to stable
	// storage every N appended records (default
	// persist.DefaultWALSyncEvery). Lower is more durable, higher is
	// faster; a crash loses at most the un-fsynced tail, which the
	// checksummed record framing detects and drops on recovery.
	WALSyncEvery int
}

// DurableEngine wraps any Engine with crash-durable state: every fed
// object is appended to a checksummed write-ahead log before it reaches
// the engine, and periodic snapshots capture the engine's full state —
// window, module counters, learning model, estimator summaries. After a
// crash, NewDurable rebuilds the engine from the newest snapshot plus the
// WAL tail written since it.
//
// What recovery restores exactly: every object the WAL had fsynced, and
// all engine state as of the snapshot. What it does not: queries answered
// after the snapshot (their model feedback is not logged — re-deriving it
// would require re-running the queries) and the un-fsynced WAL tail. Both
// are documented trade-offs of logging only the feed stream.
//
// Locking: feeds take the write lock — the WAL append and the engine
// apply must commit in the same order, or a replay could present two
// concurrent producers' objects in an order the original engine never saw.
// Queries take the read lock (the inner engine provides its own mutual
// exclusion); snapshots take the write lock, so a capture is atomic with
// respect to both feeds and query fan-outs.
//
// The snapshot/WAL pairing is atomic: each snapshot embeds a generation
// number, the paired WAL is named after it (feed-<generation>.wal), and
// the snapshot commits via an atomic rename. Whatever instant a crash
// hits, the store holds one committed snapshot and the WAL that extends
// it.
type DurableEngine struct {
	mu    sync.RWMutex
	eng   Engine
	store Store
	cfg   DurableConfig

	wal *persist.WAL
	gen uint64

	// stats instruments the layer: WAL append/fsync latency, snapshot
	// outcomes, recovery cost. Exposed via TelemetrySnapshot as the
	// latest_wal_* / latest_snapshot_* / latest_recovery_* families.
	stats durableStats

	// persistErr is the latest background persistence failure (WAL append
	// or ticker snapshot); the feed path cannot return errors, so failures
	// are recorded here and surfaced by Err.
	persistErr error
	errMu      sync.Mutex

	done      chan struct{}
	ticker    *time.Ticker
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewDurable wraps eng with snapshot + WAL persistence backed by st.
//
// eng must be freshly constructed with the same options as the engine that
// wrote the store's state. If st holds a snapshot, it is restored and the
// paired WAL tail replayed; a checksum failure, version skew or
// configuration mismatch refuses startup with the typed error — never a
// partial restore. An empty store starts fresh at generation zero.
func NewDurable(eng Engine, st Store, cfg DurableConfig) (*DurableEngine, error) {
	if cfg.WALSyncEvery == 0 {
		cfg.WALSyncEvery = persist.DefaultWALSyncEvery
	}
	d := &DurableEngine{eng: eng, store: st, cfg: cfg, done: make(chan struct{})}
	recoverStart := time.Now()
	if err := d.recover(); err != nil {
		return nil, err
	}
	d.stats.recoverySeconds = time.Since(recoverStart).Seconds()
	if cfg.SnapshotInterval > 0 {
		d.ticker = time.NewTicker(cfg.SnapshotInterval)
		d.wg.Add(1)
		go d.snapshotLoop()
	}
	return d, nil
}

// recover restores the snapshot (if any), replays the paired WAL tail and
// leaves the WAL open for appends.
func (d *DurableEngine) recover() error {
	gen, err := snapshotGeneration(d.store)
	switch {
	case err == nil:
		if rerr := d.eng.Restore(context.Background(), d.store); rerr != nil {
			return rerr
		}
		d.gen = gen
		d.stats.recoveredSnapshot = true
	case persist.IsNotExist(err):
		d.gen = 0 // fresh store: generation zero, WAL feed-00000000.wal
	default:
		return err
	}
	wal, records, tail, err := persist.OpenWAL(d.store, persist.WALName(d.gen), d.cfg.WALSyncEvery)
	if err != nil {
		return err
	}
	wal.SetObserver(&d.stats)
	d.stats.recoveryRecords = uint64(len(records))
	d.stats.recoveryTruncated = tail.DroppedBytes
	if tail.DroppedBytes > 0 {
		// A torn tail is the expected shape of a crash mid-append; the
		// checksummed framing identified the exact valid prefix.
		d.noteErr(fmt.Errorf("wal: dropped %d-byte torn tail after %d valid records",
			tail.DroppedBytes, tail.Records))
	}
	if len(records) > 0 {
		objs := make([]Object, 0, len(records))
		for i, rec := range records {
			dec := persist.NewDec(rec)
			o := stream.DecodeObject(dec)
			if dec.Err() != nil || dec.Done() != nil {
				wal.Close()
				return persist.Errf(persist.CodeMalformed, "wal replay",
					"record %d of %d does not decode as a feed object", i, len(records))
			}
			objs = append(objs, o)
		}
		d.eng.FeedBatch(objs)
	}
	d.wal = wal
	d.removeStaleWALs()
	return nil
}

// snapshotGeneration reads the generation embedded in the store's snapshot
// without validating kind or fingerprint — the engine's Restore does that;
// this only answers "which WAL extends this snapshot".
func snapshotGeneration(st Store) (uint64, error) {
	data, err := st.Load(persist.SnapshotName)
	if err != nil {
		return 0, err
	}
	snap, err := persist.DecodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	payload, ok := snap.Section(metaSectionName)
	if !ok {
		return 0, persist.Errf(persist.CodeMalformed, "snapshot meta", "section missing")
	}
	dec := persist.NewDec(payload)
	dec.Str()  // kind
	dec.Blob() // fingerprint
	gen := dec.U64()
	if dec.Err() != nil {
		return 0, dec.Err()
	}
	return gen, nil
}

// removeStaleWALs deletes feed WALs of generations other than the current
// one. They are obsolete — their snapshot has been superseded — and
// removal is safe at any crash point: recovery only ever opens the WAL
// named by the committed snapshot's generation.
func (d *DurableEngine) removeStaleWALs() {
	names, err := d.store.List()
	if err != nil {
		d.noteErr(err)
		return
	}
	current := persist.WALName(d.gen)
	for _, name := range names {
		if name == current || !strings.HasPrefix(name, "feed-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		if err := d.store.Remove(name); err != nil {
			d.noteErr(err)
		}
	}
}

// snapshotLoop drives the periodic snapshot ticker.
func (d *DurableEngine) snapshotLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case <-d.ticker.C:
			if err := d.SnapshotNow(context.Background()); err != nil {
				d.noteErr(err)
			}
		}
	}
}

// noteErr records a background persistence failure for Err.
func (d *DurableEngine) noteErr(err error) {
	d.errMu.Lock()
	d.persistErr = err
	d.errMu.Unlock()
}

// Err returns the most recent background persistence failure (WAL append,
// ticker snapshot, stale-WAL cleanup), or nil. The serving path never
// blocks on persistence errors — the engine keeps answering from memory —
// so operators must watch this (cmd/latestd logs it).
func (d *DurableEngine) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.persistErr
}

// Generation returns the current snapshot generation (zero until the first
// snapshot commits).
func (d *DurableEngine) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// WALAppends returns how many records the current-generation WAL holds
// (replayed + appended) — the recovery-test observable for "the tail was
// actually logged".
func (d *DurableEngine) WALAppends() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.wal == nil {
		return 0
	}
	return d.wal.Appends()
}

// appendWAL logs one object. Caller holds the write lock.
func (d *DurableEngine) appendWAL(o *Object) {
	if d.wal == nil {
		return // Shutdown already closed the log
	}
	var e persist.Enc
	stream.EncodeObject(&e, o)
	if err := d.wal.Append(e.Data()); err != nil {
		d.noteErr(err)
	}
}

// Feed logs the object to the WAL, then feeds the engine.
func (d *DurableEngine) Feed(o Object) {
	d.mu.Lock()
	d.appendWAL(&o)
	d.eng.Feed(o)
	d.mu.Unlock()
}

// FeedBatch logs every object to the WAL, then feeds the engine.
func (d *DurableEngine) FeedBatch(objs []Object) {
	if len(objs) == 0 {
		return
	}
	d.mu.Lock()
	for i := range objs {
		d.appendWAL(&objs[i])
	}
	d.eng.FeedBatch(objs)
	d.mu.Unlock()
}

// EstimateAndExecute delegates to the engine under the read lock. Queries
// are not write-ahead logged; see the type comment for what that means on
// recovery.
func (d *DurableEngine) EstimateAndExecute(q *Query) (float64, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EstimateAndExecute(q)
}

// EstimateAndExecuteBatch delegates to the engine under the read lock.
func (d *DurableEngine) EstimateAndExecuteBatch(qs []Query) ([]float64, []int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EstimateAndExecuteBatch(qs)
}

// Stats delegates to the engine.
func (d *DurableEngine) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Stats()
}

// TelemetrySnapshot delegates to the engine and attaches the durability
// layer's sample (generation, WAL and snapshot counters/latencies,
// recovery cost) so /metrics and /statusz describe the whole stack.
func (d *DurableEngine) TelemetrySnapshot() TelemetryReport {
	d.mu.RLock()
	defer d.mu.RUnlock()
	snap := d.eng.TelemetrySnapshot()
	snap.Durable = d.stats.sample(d.gen)
	return snap
}

// SnapshotNow takes a snapshot into the backing store and rotates the feed
// WAL, all atomically with respect to feeds and queries: the engine
// serializes generation g+1, the snapshot commits via rename, appends
// switch to feed-<g+1>.wal, and older WALs are removed. A crash at any
// point leaves either (old snapshot + old WAL) or (new snapshot + new WAL)
// recoverable — never a torn pairing.
func (d *DurableEngine) SnapshotNow(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked(ctx)
}

func (d *DurableEngine) snapshotLocked(ctx context.Context) error {
	start := time.Now()
	err := d.snapshotCommit(ctx)
	if err != nil {
		d.stats.snapErrors.Add(1)
		return err
	}
	d.stats.snapshots.Add(1)
	d.stats.snapLat.Record(time.Since(start))
	return nil
}

// snapshotCommit is the uninstrumented snapshot + rotation sequence.
func (d *DurableEngine) snapshotCommit(ctx context.Context) error {
	if d.wal != nil {
		// Flush pending appends first: if the snapshot fails the WAL must
		// still fully extend the previous one.
		if err := d.wal.Sync(); err != nil {
			return err
		}
	}
	// The counting wrapper measures the serialized size; the engine writes
	// through it to the same backing store.
	cs := &countingStore{Store: d.store}
	if err := d.eng.Snapshot(ctx, cs); err != nil {
		return err
	}
	d.stats.lastSnapBytes.Store(cs.bytes)
	gen, err := snapshotGeneration(d.store)
	if err != nil {
		return err
	}
	wal, _, _, err := persist.OpenWAL(d.store, persist.WALName(gen), d.cfg.WALSyncEvery)
	if err != nil {
		// The snapshot committed but the new WAL did not open: recovery
		// from the new snapshot with an empty tail is still correct, but
		// this process can no longer log feeds. Fail loudly.
		return err
	}
	wal.SetObserver(&d.stats)
	if d.wal != nil {
		if cerr := d.wal.Close(); cerr != nil {
			d.noteErr(cerr)
		}
		d.stats.rotations.Add(1)
	}
	d.wal = wal
	d.gen = gen
	d.removeStaleWALs()
	return nil
}

// Snapshot satisfies the unified Engine interface. Snapshotting into the
// backing store is SnapshotNow — full WAL rotation semantics. Snapshotting
// into any other store writes a standalone full-state artifact (for
// backups or seeding a replica) without touching this engine's WAL
// pairing; note the inner engine's generation still advances, so the
// backing store's next snapshot skips a generation number — harmless, the
// pairing is by name, not by density.
func (d *DurableEngine) Snapshot(ctx context.Context, st Store) error {
	if st == Store(d.store) || st == nil {
		return d.SnapshotNow(ctx)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eng.Snapshot(ctx, st)
}

// Restore refuses: a DurableEngine restores exactly once, at construction
// (NewDurable), where the WAL replay and generation bookkeeping happen.
// Restoring mid-flight would desynchronize the WAL from the engine.
func (d *DurableEngine) Restore(context.Context, Store) error {
	return persist.Errf(persist.CodeState, "durable engine",
		"restore happens at construction (NewDurable); build a fresh engine instead")
}

// Shutdown drains gracefully: the snapshot ticker stops, a final snapshot
// captures everything — so a clean shutdown/restart cycle loses nothing —
// the WAL closes, and the inner engine shuts down, bounded by ctx. The
// first error is returned but every step still runs.
func (d *DurableEngine) Shutdown(ctx context.Context) error {
	var first error
	note := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	d.closeOnce.Do(func() {
		close(d.done)
		if d.ticker != nil {
			d.ticker.Stop()
		}
		d.wg.Wait()
		d.mu.Lock()
		note(d.snapshotLocked(ctx))
		if d.wal != nil {
			note(d.wal.Close())
			d.wal = nil
		}
		d.mu.Unlock()
		note(d.eng.Shutdown(ctx))
	})
	return first
}
