package latest

import (
	"context"
	"time"
)

// durable_health.go is the durability layer's failure surface: a two-state
// machine (healthy/degraded), a bounded ring of recent persistence errors
// replacing the old single latched Err(), and the background repair loop
// that re-arms a degraded engine.
//
// The contract: serving never stops. A WAL or snapshot failure flips the
// engine to degraded — queries and feeds keep running from memory, doomed
// WAL appends stop (counted, not attempted), and the repair loop retries
// with exponential backoff. A repair is a fresh snapshot commit: it
// captures the full engine state (including every feed dropped from the
// WAL while degraded), rotates to a fresh WAL on a new generation, and
// re-arms the machine. What a crash loses while degraded is exactly the
// feeds since the last committed snapshot — the same bound a healthy
// engine has between fsyncs, just wider.

// DurableState is the durability layer's serving-independent health state.
type DurableState uint32

const (
	// DurableHealthy: WAL appends and snapshots are succeeding.
	DurableHealthy DurableState = iota
	// DurableDegraded: a persistence operation failed; serving continues
	// from memory, WAL appends are dropped (counted), and the repair loop
	// is retrying.
	DurableDegraded
)

// String implements fmt.Stringer.
func (s DurableState) String() string {
	switch s {
	case DurableHealthy:
		return "healthy"
	case DurableDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// durableErrRing bounds how many recent persistence errors Health keeps.
const durableErrRing = 8

// DurableErrorRecord is one retained persistence failure.
type DurableErrorRecord struct {
	// Time is when the failure was recorded.
	Time time.Time `json:"time"`
	// Op names the failing operation ("wal-append", "snapshot",
	// "wal-recover", "cleanup", ...).
	Op string `json:"op"`
	// Err is the failure's rendered message.
	Err string `json:"err"`
}

// DurableHealth is the typed replacement for the old latched Err(): the
// state machine's position, when it got there, lifetime counters, and the
// most recent errors (oldest first, at most durableErrRing retained —
// ErrorsTotal says how many there were in all).
type DurableHealth struct {
	// State is the machine's current position; Since when it was entered.
	State DurableState `json:"state"`
	Since time.Time    `json:"since"`

	// WALErrors counts failed WAL operations (append, sync, close,
	// recovery-time truncation); StoreErrors failed housekeeping
	// (cleanup, listing); SnapshotErrors failed snapshot commits.
	WALErrors      uint64 `json:"wal_errors"`
	StoreErrors    uint64 `json:"store_errors"`
	SnapshotErrors uint64 `json:"snapshot_errors"`

	// DroppedAppends counts feeds not written to the WAL while degraded
	// (the failing append itself included). They are in engine memory and
	// become durable with the repair snapshot; a crash before it loses
	// them.
	DroppedAppends uint64 `json:"dropped_appends"`

	// Degradations counts healthy→degraded transitions; RepairAttempts
	// snapshot-based repair tries; Repairs successful re-arms.
	Degradations   uint64 `json:"degradations"`
	RepairAttempts uint64 `json:"repair_attempts"`
	Repairs        uint64 `json:"repairs"`

	// ErrorsTotal is the lifetime persistence-error count; Errors the
	// retained tail of them, oldest first.
	ErrorsTotal uint64               `json:"errors_total"`
	Errors      []DurableErrorRecord `json:"errors,omitempty"`
}

// Healthy reports whether the machine is in the healthy state.
func (h DurableHealth) Healthy() bool { return h.State == DurableHealthy }

// HealthReporter is the optional health extension of Engine: engines that
// own a durability layer report its state machine. The serving layer
// (internal/server) type-asserts it to drive /healthz and /readyz, the
// same pattern TracedEngine uses for span attribution.
type HealthReporter interface {
	Health() DurableHealth
}

var _ HealthReporter = (*DurableEngine)(nil)

// Health returns the durability layer's failure surface. Cheap enough for
// per-request probes: counters are atomics, the ring copy is bounded.
func (d *DurableEngine) Health() DurableHealth {
	h := DurableHealth{
		State:          DurableState(d.state.Load()),
		WALErrors:      d.stats.walErrors.Load(),
		StoreErrors:    d.stats.storeErrors.Load(),
		SnapshotErrors: d.stats.snapErrors.Load(),
		DroppedAppends: d.stats.droppedAppends.Load(),
		Degradations:   d.stats.degradations.Load(),
		RepairAttempts: d.stats.repairAttempts.Load(),
		Repairs:        d.stats.repairs.Load(),
	}
	d.healthMu.Lock()
	h.Since = d.since
	h.ErrorsTotal = d.errsTotal
	h.Errors = append(h.Errors, d.ring...)
	d.healthMu.Unlock()
	return h
}

// noteErr records one persistence failure into the bounded ring and the
// per-surface counters. It does not change the state machine — degrade
// does that for failures that stop durability.
func (d *DurableEngine) noteErr(op string, err error) {
	if err == nil {
		return
	}
	switch op {
	case "wal-append", "wal-sync", "wal-close", "wal-recover":
		d.stats.walErrors.Add(1)
	case "cleanup", "recover-scan":
		d.stats.storeErrors.Add(1)
	}
	d.healthMu.Lock()
	d.errsTotal++
	if len(d.ring) == durableErrRing {
		copy(d.ring, d.ring[1:])
		d.ring = d.ring[:durableErrRing-1]
	}
	d.ring = append(d.ring, DurableErrorRecord{Time: time.Now(), Op: op, Err: err.Error()})
	d.healthMu.Unlock()
}

// degrade records the failure and transitions healthy→degraded (a no-op
// transition when already degraded). The first transition stamps Since,
// logs, and wakes the repair loop.
func (d *DurableEngine) degrade(op string, err error) {
	d.noteErr(op, err)
	if !d.state.CompareAndSwap(uint32(DurableHealthy), uint32(DurableDegraded)) {
		return
	}
	d.stats.degradations.Add(1)
	d.healthMu.Lock()
	d.since = time.Now()
	d.healthMu.Unlock()
	d.log.Warn("durability degraded; serving continues from memory", "op", op, "err", err)
	select {
	case d.repairCh <- struct{}{}:
	default: // the loop is already awake
	}
}

// rearm transitions back to healthy after a successful repair (or a
// successful ordinary snapshot commit, which is the same thing: every
// acknowledged feed is durable again).
func (d *DurableEngine) rearm() {
	if !d.state.CompareAndSwap(uint32(DurableDegraded), uint32(DurableHealthy)) {
		return
	}
	d.stats.repairs.Add(1)
	d.healthMu.Lock()
	d.since = time.Now()
	d.healthMu.Unlock()
	d.log.Info("durability repaired", "generation", d.gen,
		"dropped_appends", d.stats.droppedAppends.Load())
}

// RepairNow makes one synchronous repair attempt: a fresh snapshot commit
// onto a new generation. A success re-arms the state machine (the commit
// captures every feed dropped while degraded); a failure records the
// error and leaves the engine degraded. A no-op when healthy. The
// background repair loop calls this with backoff; tests and operators can
// call it directly for a deterministic repair point.
func (d *DurableEngine) RepairNow(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if DurableState(d.state.Load()) != DurableDegraded {
		return nil
	}
	d.stats.repairAttempts.Add(1)
	return d.snapshotLocked(ctx)
}

// repairLoop waits for degradations and retries RepairNow with doubling
// backoff until the machine re-arms or the engine shuts down.
func (d *DurableEngine) repairLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case <-d.repairCh:
		}
		backoff := d.cfg.RepairBackoff
		for DurableState(d.state.Load()) == DurableDegraded {
			timer := time.NewTimer(backoff)
			select {
			case <-d.done:
				timer.Stop()
				return
			case <-timer.C:
			}
			if backoff *= 2; backoff > d.cfg.RepairBackoffMax {
				backoff = d.cfg.RepairBackoffMax
			}
			// Errors are recorded by the attempt itself; the loop only
			// paces retries.
			_ = d.RepairNow(context.Background())
		}
	}
}
