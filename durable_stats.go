package latest

import (
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/telemetry"
)

// durable_stats.go instruments the persistence wrapper: WAL append/fsync
// counters and latency histograms (fed by the persist.WALObserver
// callbacks, so they survive WAL rotations), snapshot commit outcomes and
// sizes, and the one-time startup recovery cost. Everything on the feed
// path is a few atomic adds into lock-free histograms.

// durableStats is the DurableEngine's measurement sink.
type durableStats struct {
	appends     atomic.Uint64
	appendBytes atomic.Uint64
	syncs       atomic.Uint64
	rotations   atomic.Uint64

	snapshots     atomic.Uint64
	snapErrors    atomic.Uint64
	lastSnapBytes atomic.Uint64

	appendLat telemetry.Histogram
	syncLat   telemetry.Histogram
	snapLat   telemetry.Histogram

	// Recovery facts are written once inside NewDurable, before the engine
	// is shared, so plain fields suffice.
	recoverySeconds   float64
	recoveryRecords   uint64
	recoveryTruncated int64
	recoveredSnapshot bool
}

// durableStats implements persist.WALObserver.
var _ persist.WALObserver = (*durableStats)(nil)

// WALAppend implements persist.WALObserver.
func (s *durableStats) WALAppend(bytes int, d time.Duration) {
	s.appends.Add(1)
	s.appendBytes.Add(uint64(bytes))
	s.appendLat.Record(d)
}

// WALSync implements persist.WALObserver.
func (s *durableStats) WALSync(d time.Duration) {
	s.syncs.Add(1)
	s.syncLat.Record(d)
}

// sample builds the exposition view.
func (s *durableStats) sample(gen uint64) *telemetry.DurableSample {
	return &telemetry.DurableSample{
		Generation:             gen,
		WALAppends:             s.appends.Load(),
		WALBytes:               s.appendBytes.Load(),
		WALSyncs:               s.syncs.Load(),
		WALRotations:           s.rotations.Load(),
		Snapshots:              s.snapshots.Load(),
		SnapshotErrors:         s.snapErrors.Load(),
		LastSnapshotBytes:      s.lastSnapBytes.Load(),
		RecoverySeconds:        s.recoverySeconds,
		RecoveryWALRecords:     s.recoveryRecords,
		RecoveryTruncatedBytes: s.recoveryTruncated,
		RecoveredSnapshot:      s.recoveredSnapshot,
		AppendLatency:          s.appendLat.Snapshot(),
		SyncLatency:            s.syncLat.Snapshot(),
		SnapshotLatency:        s.snapLat.Snapshot(),
	}
}

// RecoverySeconds reports the startup cost of snapshot restore plus WAL
// replay, for operator log lines and dashboards.
func (d *DurableEngine) RecoverySeconds() float64 { return d.stats.recoverySeconds }

// countingStore wraps a Store to measure the bytes a snapshot writes. It
// is used only inside snapshotLocked — the wrapper is handed to the inner
// engine's Snapshot and discarded, so the DurableEngine's own store
// identity (which Snapshot's routing depends on) never changes.
type countingStore struct {
	Store
	bytes uint64
}

func (c *countingStore) Save(name string, data []byte) error {
	err := c.Store.Save(name, data)
	if err == nil {
		c.bytes += uint64(len(data))
	}
	return err
}
