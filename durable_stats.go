package latest

import (
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/telemetry"
)

// durable_stats.go instruments the persistence wrapper: WAL append/fsync
// counters and latency histograms (fed by the persist.WALObserver
// callbacks, so they survive WAL rotations), snapshot commit outcomes and
// sizes, degraded-mode transition counters, and the one-time startup
// recovery cost. Everything on the feed path is a few atomic adds into
// lock-free histograms.

// durableStats is the DurableEngine's measurement sink.
type durableStats struct {
	appends     atomic.Uint64
	appendBytes atomic.Uint64
	syncs       atomic.Uint64
	rotations   atomic.Uint64

	snapshots     atomic.Uint64
	snapErrors    atomic.Uint64
	lastSnapBytes atomic.Uint64

	// Failure-surface counters for the degraded-mode state machine
	// (durable_health.go reads them into DurableHealth).
	walErrors      atomic.Uint64
	storeErrors    atomic.Uint64
	droppedAppends atomic.Uint64
	degradations   atomic.Uint64
	repairAttempts atomic.Uint64
	repairs        atomic.Uint64

	appendLat telemetry.Histogram
	syncLat   telemetry.Histogram
	snapLat   telemetry.Histogram

	// Recovery facts are written once inside NewDurable, before the engine
	// is shared, so plain fields suffice.
	recoverySeconds   float64
	recoveryRecords   uint64
	recoveryTruncated int64
	recoveredSnapshot bool
	recoveredGen      uint64
	recoveredFallback bool
}

// durableStats implements persist.WALObserver.
var _ persist.WALObserver = (*durableStats)(nil)

// WALAppend implements persist.WALObserver.
func (s *durableStats) WALAppend(bytes int, d time.Duration) {
	s.appends.Add(1)
	s.appendBytes.Add(uint64(bytes))
	s.appendLat.Record(d)
}

// WALSync implements persist.WALObserver.
func (s *durableStats) WALSync(d time.Duration) {
	s.syncs.Add(1)
	s.syncLat.Record(d)
}

// sample builds the exposition view. h carries the state machine's
// position and counters so the sample is one consistent read.
func (s *durableStats) sample(gen uint64, h DurableHealth) *telemetry.DurableSample {
	d := &telemetry.DurableSample{
		Generation:             gen,
		State:                  h.State.String(),
		WALAppends:             s.appends.Load(),
		WALBytes:               s.appendBytes.Load(),
		WALSyncs:               s.syncs.Load(),
		WALRotations:           s.rotations.Load(),
		WALErrors:              h.WALErrors,
		StoreErrors:            h.StoreErrors,
		DroppedAppends:         h.DroppedAppends,
		Degradations:           h.Degradations,
		RepairAttempts:         h.RepairAttempts,
		Repairs:                h.Repairs,
		ErrorsTotal:            h.ErrorsTotal,
		Snapshots:              s.snapshots.Load(),
		SnapshotErrors:         s.snapErrors.Load(),
		LastSnapshotBytes:      s.lastSnapBytes.Load(),
		RecoverySeconds:        s.recoverySeconds,
		RecoveryWALRecords:     s.recoveryRecords,
		RecoveryTruncatedBytes: s.recoveryTruncated,
		RecoveredSnapshot:      s.recoveredSnapshot,
		RecoveredGeneration:    s.recoveredGen,
		RecoveredFallback:      s.recoveredFallback,
		AppendLatency:          s.appendLat.Snapshot(),
		SyncLatency:            s.syncLat.Snapshot(),
		SnapshotLatency:        s.snapLat.Snapshot(),
	}
	if !h.Since.IsZero() {
		d.StateSeconds = time.Since(h.Since).Seconds()
	}
	for _, e := range h.Errors {
		d.LastErrors = append(d.LastErrors, telemetry.DurableError{
			UnixNanos: e.Time.UnixNano(), Op: e.Op, Err: e.Err,
		})
	}
	return d
}

// RecoverySeconds reports the startup cost of snapshot restore plus WAL
// replay, for operator log lines and dashboards.
func (d *DurableEngine) RecoverySeconds() float64 { return d.stats.recoverySeconds }

// commitStore wraps the backing Store for one snapshot commit: it
// redirects the engine's conventional persist.SnapshotName write to the
// retained generation file (snapshot-<g>.snap) and measures the bytes
// written. It is used only inside snapshotCommit — the wrapper is handed
// to the inner engine's Snapshot and discarded, so the DurableEngine's
// own store identity (which Snapshot's routing depends on) never changes.
type commitStore struct {
	Store
	target string
	bytes  uint64
}

func (c *commitStore) Save(name string, data []byte) error {
	if name == persist.SnapshotName {
		name = c.target
	}
	err := c.Store.Save(name, data)
	if err == nil {
		c.bytes += uint64(len(data))
	}
	return err
}
