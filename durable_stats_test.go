package latest

import (
	"context"
	"testing"
)

// TestDurableTelemetryStats: the durability layer's slice of the telemetry
// snapshot reflects WAL traffic, snapshot commits and recovery cost.
func TestDurableTelemetryStats(t *testing.T) {
	st := NewMemStore()
	dur := newDurable(t, st)
	w := newWorkload(31)
	w.feed(dur, 300)
	if err := dur.SnapshotNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	w.feed(dur, 50) // WAL tail past the snapshot

	d := dur.TelemetrySnapshot().Durable
	if d == nil {
		t.Fatal("DurableEngine snapshot has no Durable sample")
	}
	if d.WALAppends != 350 {
		t.Errorf("WALAppends = %d, want 350 (counter spans rotations)", d.WALAppends)
	}
	if d.WALBytes == 0 {
		t.Error("WALBytes = 0")
	}
	if d.WALSyncs == 0 {
		t.Error("WALSyncs = 0 with WALSyncEvery=1")
	}
	if d.AppendLatency.Count != d.WALAppends {
		t.Errorf("append histogram count %d != appends %d", d.AppendLatency.Count, d.WALAppends)
	}
	if d.SyncLatency.Count != d.WALSyncs {
		t.Errorf("sync histogram count %d != syncs %d", d.SyncLatency.Count, d.WALSyncs)
	}
	if d.Snapshots != 1 || d.SnapshotErrors != 0 {
		t.Errorf("snapshots = %d errors = %d", d.Snapshots, d.SnapshotErrors)
	}
	if d.Generation != 1 || d.WALRotations != 1 {
		t.Errorf("generation = %d rotations = %d, want 1/1", d.Generation, d.WALRotations)
	}
	if d.LastSnapshotBytes == 0 {
		t.Error("LastSnapshotBytes = 0 after a committed snapshot")
	}
	if d.SnapshotLatency.Count != 1 {
		t.Errorf("snapshot histogram count = %d", d.SnapshotLatency.Count)
	}
	// Fresh directory: nothing was recovered.
	if d.RecoveredSnapshot || d.RecoveryWALRecords != 0 {
		t.Errorf("fresh start reported recovery: %+v", d)
	}

	// A second incarnation recovers snapshot + WAL tail and reports the cost.
	re := newDurable(t, st)
	rd := re.TelemetrySnapshot().Durable
	if !rd.RecoveredSnapshot {
		t.Error("recovered engine did not report RecoveredSnapshot")
	}
	if rd.RecoveryWALRecords != 50 {
		t.Errorf("RecoveryWALRecords = %d, want 50", rd.RecoveryWALRecords)
	}
	if rd.RecoverySeconds <= 0 {
		t.Errorf("RecoverySeconds = %v, want > 0", rd.RecoverySeconds)
	}
	if got := re.RecoverySeconds(); got != rd.RecoverySeconds {
		t.Errorf("accessor RecoverySeconds() = %v, sample = %v", got, rd.RecoverySeconds)
	}
	// Per-process counters restart; recovery replay is not WAL traffic.
	if rd.WALAppends != 0 {
		t.Errorf("recovered engine WALAppends = %d before any feed", rd.WALAppends)
	}
	w.feed(re, 10)
	if got := re.TelemetrySnapshot().Durable.WALAppends; got != 10 {
		t.Errorf("WALAppends after 10 feeds = %d", got)
	}
}
