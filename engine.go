package latest

import (
	"context"

	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/telemetry"
)

// TelemetryReport is the point-in-time engine view served by the /statusz
// endpoint and returned by TelemetrySnapshot: merged stats plus per-shard
// operational samples.
type TelemetryReport = telemetry.Snapshot

// Engine is the unified surface every LATEST deployment shape serves:
// System (single-goroutine), ConcurrentSystem (one mutex) and ShardedSystem
// (spatial partitions) all implement it, as does the DurableEngine wrapper
// that adds snapshot + WAL persistence. Embedding applications, the network
// serving layer (internal/server) and the correctness harness
// (internal/check) program against this interface and work with any shape.
//
// Concurrency follows the concrete type: System is single-goroutine, the
// others are safe for concurrent use. Snapshot and Restore are safe to call
// on a concurrency-safe engine while traffic flows — they take the engine's
// own locks — but Restore additionally requires a freshly constructed
// engine (it returns a CodeState error otherwise), so in practice it runs
// before traffic starts.
type Engine interface {
	// Feed ingests one stream object.
	Feed(o Object)
	// FeedBatch ingests a batch of stream objects in order.
	FeedBatch(objs []Object)
	// EstimateAndExecute answers the query approximately, then exactly,
	// and feeds the truth back to the switching model.
	EstimateAndExecute(q *Query) (estimate float64, actual int)
	// EstimateAndExecuteBatch runs EstimateAndExecute over a batch.
	EstimateAndExecuteBatch(qs []Query) (estimates []float64, actuals []int)
	// Stats returns a snapshot of the module internals (merged across
	// shards for a ShardedSystem).
	Stats() Stats
	// TelemetrySnapshot returns the /statusz view: merged stats plus
	// per-shard operational gauges.
	TelemetrySnapshot() TelemetryReport
	// Shutdown releases background resources gracefully, bounded by ctx.
	// On a DurableEngine it also takes a final snapshot, so a clean
	// shutdown loses nothing.
	Shutdown(ctx context.Context) error
	// Snapshot serializes the engine's full state — window store, module
	// counters, learning model, active estimator summaries — into st as
	// one atomic, checksummed artifact.
	Snapshot(ctx context.Context, st Store) error
	// Restore loads a Snapshot artifact into this freshly constructed
	// engine. The engine must have been built with the same options
	// (CodeMismatch otherwise) and never fed (CodeState otherwise); on
	// error the engine must be discarded — never partially restored.
	Restore(ctx context.Context, st Store) error
}

// Compile-time interface checks: the unified Engine API is the contract
// this PR establishes; losing a method on any shape is a build error.
var (
	_ Engine = (*System)(nil)
	_ Engine = (*ConcurrentSystem)(nil)
	_ Engine = (*ShardedSystem)(nil)
	_ Engine = (*DurableEngine)(nil)
)

// Persistence surface, aliased from the internal implementation package so
// user code never imports internal paths.
type (
	// Store is where snapshots and write-ahead logs live: a directory on
	// disk (NewFileStore) or memory (NewMemStore, for tests).
	Store = persist.Store
	// MemStore is an in-memory Store for tests and ephemeral deployments.
	MemStore = persist.MemStore
	// FileStore is a directory-backed Store with atomic snapshot renames
	// and fsynced appends.
	FileStore = persist.FileStore
	// PersistError is the typed error every persistence failure surfaces
	// as; PersistCode extracts its code.
	PersistError = persist.Error
	// PersistErrorCode classifies persistence failures (corrupt artifact,
	// version skew, configuration mismatch, ...).
	PersistErrorCode = persist.ErrorCode
)

// Persistence error codes, re-exported for callers switching on
// PersistCode(err).
const (
	// CodeNotExist: the artifact does not exist (fresh data directory).
	CodeNotExist = persist.CodeNotExist
	// CodeCorrupt: a checksum failed — bit rot, torn write, tampering.
	CodeCorrupt = persist.CodeCorrupt
	// CodeVersionSkew: the artifact's format version is not understood.
	CodeVersionSkew = persist.CodeVersionSkew
	// CodeMalformed: structurally invalid content behind a valid checksum.
	CodeMalformed = persist.CodeMalformed
	// CodeTruncated: the artifact ends mid-structure.
	CodeTruncated = persist.CodeTruncated
	// CodeMismatch: the artifact was written under a different
	// configuration than the restoring engine's.
	CodeMismatch = persist.CodeMismatch
	// CodeState: the operation is invalid in the engine's current state
	// (restoring into a non-fresh engine, snapshotting mid-query).
	CodeState = persist.CodeState
)

// NewMemStore returns an empty in-memory Store.
func NewMemStore() *MemStore { return persist.NewMemStore() }

// NewFileStore opens (creating if needed) a directory-backed Store.
func NewFileStore(dir string) (*FileStore, error) { return persist.NewFileStore(dir) }

// OpenFileStore opens an existing directory-backed Store, returning a
// CodeNotExist error when the directory is missing — for deployments that
// must refuse to start from an empty data directory.
func OpenFileStore(dir string) (*FileStore, error) { return persist.OpenFileStore(dir) }

// PersistCode extracts the PersistErrorCode from err, or 0 when err is not
// a persistence error.
func PersistCode(err error) PersistErrorCode { return persist.CodeOf(err) }

// IsNotExist reports whether err means "no such artifact" — the expected
// first-boot condition, as opposed to a refusal.
func IsNotExist(err error) bool { return persist.IsNotExist(err) }
