package latest_test

import (
	"fmt"
	"time"

	"github.com/spatiotext/latest"
)

// ExampleSystem demonstrates the full feedback loop on a tiny deterministic
// stream: ingest, estimate, execute, and inspect the adaptor.
func ExampleSystem() {
	sys, err := latest.New(
		latest.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		time.Minute,
		latest.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}

	// Ten objects: five tagged "fire" clustered in the south-west, five
	// tagged "food" in the north-east.
	for i := 0; i < 5; i++ {
		sys.Feed(latest.Object{
			ID: uint64(i), Loc: latest.Pt(2+float64(i)*0.1, 2),
			Keywords: []string{"fire"}, Timestamp: int64(i),
		})
	}
	for i := 5; i < 10; i++ {
		sys.Feed(latest.Object{
			ID: uint64(i), Loc: latest.Pt(8, 8+float64(i-5)*0.1),
			Keywords: []string{"food"}, Timestamp: int64(i),
		})
	}

	// How many "fire" objects in the south-west quadrant?
	q := latest.HybridQuery(latest.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, []string{"fire"}, 10)
	estimate := sys.Estimate(&q) // approximate, via the active estimator
	actual := sys.Execute(&q)    // exact, and feeds the switching model

	fmt.Printf("estimate: %.0f\n", estimate)
	fmt.Printf("actual: %d\n", actual)
	fmt.Printf("window size: %d\n", sys.WindowSize())
	fmt.Printf("active estimator: %s\n", sys.ActiveEstimator())
	fmt.Printf("phase: %v\n", sys.Phase())
	// Output:
	// estimate: 5
	// actual: 5
	// window size: 10
	// active estimator: RSH
	// phase: pretrain
}

// ExampleKeywordQuery shows a pure distinct-value query (no spatial
// predicate).
func ExampleKeywordQuery() {
	q := latest.KeywordQuery([]string{"fire", "rescue"}, 42)
	fmt.Println(q.Type())
	fmt.Println(q.HasRange)
	// Output:
	// keyword
	// false
}
