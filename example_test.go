package latest_test

import (
	"context"
	"fmt"
	"time"

	"github.com/spatiotext/latest"
)

// ExampleNew demonstrates the full feedback loop on a tiny deterministic
// stream: ingest, estimate, execute, and inspect the adaptor.
func ExampleNew() {
	sys, err := latest.New(
		latest.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		time.Minute,
		latest.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}

	// Ten objects: five tagged "fire" clustered in the south-west, five
	// tagged "food" in the north-east.
	for i := 0; i < 5; i++ {
		sys.Feed(latest.Object{
			ID: uint64(i), Loc: latest.Pt(2+float64(i)*0.1, 2),
			Keywords: []string{"fire"}, Timestamp: int64(i),
		})
	}
	for i := 5; i < 10; i++ {
		sys.Feed(latest.Object{
			ID: uint64(i), Loc: latest.Pt(8, 8+float64(i-5)*0.1),
			Keywords: []string{"food"}, Timestamp: int64(i),
		})
	}

	// How many "fire" objects in the south-west quadrant?
	q := latest.HybridQuery(latest.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, []string{"fire"}, 10)
	estimate := sys.Estimate(&q) // approximate, via the active estimator
	actual := sys.Execute(&q)    // exact, and feeds the switching model

	fmt.Printf("estimate: %.0f\n", estimate)
	fmt.Printf("actual: %d\n", actual)
	fmt.Printf("window size: %d\n", sys.WindowSize())
	fmt.Printf("active estimator: %s\n", sys.ActiveEstimator())
	fmt.Printf("phase: %v\n", sys.Phase())
	// Output:
	// estimate: 5
	// actual: 5
	// window size: 10
	// active estimator: RSH
	// phase: pretrain
}

// ExampleKeywordQuery shows a pure distinct-value query (no spatial
// predicate).
func ExampleKeywordQuery() {
	q := latest.KeywordQuery([]string{"fire", "rescue"}, 42)
	fmt.Println(q.Type())
	fmt.Println(q.HasRange)
	// Output:
	// keyword
	// false
}

// feedDemoStream feeds the ten-object demo stream the examples share:
// five "fire" objects clustered south-west, five "food" north-east.
func feedDemoStream(eng latest.Engine) {
	for i := 0; i < 5; i++ {
		eng.Feed(latest.Object{
			ID: uint64(i), Loc: latest.Pt(2+float64(i)*0.1, 2),
			Keywords: []string{"fire"}, Timestamp: int64(i),
		})
	}
	for i := 5; i < 10; i++ {
		eng.Feed(latest.Object{
			ID: uint64(i), Loc: latest.Pt(8, 8+float64(i-5)*0.1),
			Keywords: []string{"food"}, Timestamp: int64(i),
		})
	}
}

// ExampleNewConcurrent builds the mutex-wrapped engine — the same
// estimator behaviour as New, safe for concurrent producers — and runs
// one query through the combined estimate-then-execute feedback call.
func ExampleNewConcurrent() {
	eng, err := latest.NewConcurrent(
		latest.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		time.Minute,
		latest.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	feedDemoStream(eng)
	q := latest.HybridQuery(latest.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, []string{"fire"}, 10)
	est, actual := eng.EstimateAndExecute(&q)
	fmt.Printf("estimate: %.0f actual: %d\n", est, actual)
	fmt.Printf("window size: %d\n", eng.WindowSize())
	// Output:
	// estimate: 5 actual: 5
	// window size: 10
}

// ExampleNewSharded partitions the world into a grid of independent
// LATEST instances; spatial queries fan out only to overlapping shards.
func ExampleNewSharded() {
	eng, err := latest.NewSharded(
		latest.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		time.Minute,
		latest.WithSeed(1),
		latest.WithShards(4),
	)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	feedDemoStream(eng)
	q := latest.HybridQuery(latest.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, []string{"fire"}, 10)
	est, actual := eng.EstimateAndExecute(&q)
	fmt.Printf("shards: %d\n", eng.NumShards())
	fmt.Printf("estimate: %.0f actual: %d\n", est, actual)
	// Output:
	// shards: 4
	// estimate: 5 actual: 5
}

// ExampleNewDurable wraps an engine with snapshot + write-ahead-log
// persistence: a clean Shutdown takes a final snapshot, and the next
// NewDurable over the same store resumes exactly where it left off.
func ExampleNewDurable() {
	store := latest.NewMemStore() // use NewFileStore(dir) in production
	world := latest.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}

	sys, err := latest.New(world, time.Minute, latest.WithSeed(1))
	if err != nil {
		panic(err)
	}
	eng, err := latest.NewDurable(sys, store, latest.DurableConfig{})
	if err != nil {
		panic(err)
	}
	feedDemoStream(eng)
	if err := eng.Shutdown(context.Background()); err != nil {
		panic(err)
	}

	// A new process: same options, same store — state comes back.
	sys2, err := latest.New(world, time.Minute, latest.WithSeed(1))
	if err != nil {
		panic(err)
	}
	eng2, err := latest.NewDurable(sys2, store, latest.DurableConfig{})
	if err != nil {
		panic(err)
	}
	defer eng2.Shutdown(context.Background())
	fmt.Printf("generation: %d\n", eng2.Generation())
	fmt.Printf("recovered window size: %d\n", sys2.WindowSize())
	// Output:
	// generation: 1
	// recovered window size: 10
}
