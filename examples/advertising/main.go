// Targeted advertising: the paper's second motivating application (§I) —
// gauge the popularity of product-related keywords per metro area in real
// time to place advertisements effectively. The ad platform cares about
// *throughput*: thousands of candidate (area, keyword) placements are
// scored per second, so this example configures α=0.8, telling LATEST to
// weigh estimator latency heavily (§VI-C's tuning knob).
//
// Run with:
//
//	go run ./examples/advertising
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/spatiotext/latest"
)

var world = latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50} // CONUS

type metro struct {
	name string
	loc  latest.Point
}

var metros = []metro{
	{"NYC", latest.Pt(-74.0, 40.7)},
	{"LA", latest.Pt(-118.2, 34.1)},
	{"Chicago", latest.Pt(-87.6, 41.9)},
	{"Houston", latest.Pt(-95.4, 29.8)},
	{"Miami", latest.Pt(-80.2, 25.8)},
	{"Seattle", latest.Pt(-122.3, 47.6)},
}

var products = []string{"sneakers", "coffee", "phone", "pizza", "festival", "suv"}

// params sizes the demo; fastParams shrinks it for the smoke test.
type params struct {
	window       time.Duration
	warmObjects  int
	pretrainCfg  int
	pretrainLoop int
	feedPerQ     int
}

func defaultParams() params {
	return params{
		window:       10 * time.Minute,
		warmObjects:  600_000,
		pretrainCfg:  400,
		pretrainLoop: 400,
		feedPerQ:     100,
	}
}

func fastParams() params {
	return params{
		window:       15 * time.Second,
		warmObjects:  15_000,
		pretrainCfg:  40,
		pretrainLoop: 40,
		feedPerQ:     20,
	}
}

func main() {
	if err := run(os.Stdout, defaultParams()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	sys, err := latest.New(world, p.window,
		latest.WithAlpha(0.8), // throughput-first: latency dominates switching
		latest.WithPretrainQueries(p.pretrainCfg),
		latest.WithSeed(11),
	)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	id := uint64(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			now += 1
			id++
			m := metros[rng.Intn(len(metros))]
			// Each metro skews toward two product topics.
			kw := products[(int(id)+rng.Intn(2))%len(products)]
			sys.Feed(latest.Object{
				ID:        id,
				Loc:       world.Clamp(latest.Pt(m.loc.X+rng.NormFloat64()*0.6, m.loc.Y+rng.NormFloat64()*0.5)),
				Keywords:  []string{kw, "shopping"},
				Timestamp: now,
			})
		}
	}

	fmt.Fprintf(out, "warming up with %.0fs of purchase-intent chatter...\n", p.window.Seconds())
	feed(p.warmObjects)

	// Pre-train with the kind of hybrid queries the ad scorer issues.
	for i := 0; i < p.pretrainLoop; i++ {
		feed(p.feedPerQ)
		m := metros[rng.Intn(len(metros))]
		q := latest.HybridQuery(latest.CenteredRect(m.loc, 3, 2.4), []string{products[rng.Intn(len(products))]}, now)
		sys.EstimateAndExecute(&q)
	}
	fmt.Fprintf(out, "pre-training done; active estimator: %s (α=0.8 favors fast structures)\n\n", sys.ActiveEstimator())

	// Score every (metro, product) placement using cheap estimates; verify
	// a sample against exact counts to keep the model learning.
	type placement struct {
		metro, product string
		score          float64
	}
	var board []placement
	start := time.Now()
	scored := 0
	for _, m := range metros {
		area := latest.CenteredRect(m.loc, 3, 2.4)
		for _, prod := range products {
			feed(p.feedPerQ / 2)
			q := latest.HybridQuery(area, []string{prod}, now)
			// Estimate scores the placement; Execute closes the feedback
			// loop with the true count from the window store (in a real ad
			// platform the executed campaign query plays this role).
			est, _ := sys.EstimateAndExecute(&q)
			scored++
			board = append(board, placement{m.name, prod, est})
		}
	}
	elapsed := time.Since(start)

	sort.Slice(board, func(i, j int) bool { return board[i].score > board[j].score })
	fmt.Fprintln(out, "top ad placements by estimated keyword volume (last window):")
	for i, pl := range board[:8] {
		fmt.Fprintf(out, "  %d. %-8s × %-9s ≈ %6.0f mentions\n", i+1, pl.metro, pl.product, pl.score)
	}
	fmt.Fprintf(out, "\nscored %d placements in %s (%.0f estimates/sec) using %s\n",
		scored, elapsed.Round(time.Millisecond),
		float64(scored)/elapsed.Seconds(), sys.ActiveEstimator())
	return nil
}
