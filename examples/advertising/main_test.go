package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pre-training done", "top ad placements", "scored 36 placements"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
