// Custom estimator: §IV notes that LATEST is orthogonal to the estimator
// set — "system administrators can select a different set of estimators
// that fit their needs". This example implements a tiny exponential-decay
// count sketch, registers it alongside two built-ins, and shows LATEST
// profiling and (when it earns it) selecting the custom structure.
//
// Run with:
//
//	go run ./examples/customestimator
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"github.com/spatiotext/latest"
)

// DecayCount estimates every query as a keyword-frequency product over an
// exponentially decayed global count — crude, tiny, and extremely fast.
// It implements latest.Estimator.
type DecayCount struct {
	window   float64 // T in ms
	total    float64 // decayed object count
	kwCounts map[string]float64
	lastTS   int64
}

// NewDecayCount builds the sketch for the given window.
func NewDecayCount(p latest.EstimatorParams) *DecayCount {
	return &DecayCount{window: float64(p.Span), kwCounts: make(map[string]float64)}
}

// Name implements latest.Estimator.
func (d *DecayCount) Name() string { return "Decay" }

// decayTo ages all counts to timestamp ts. A count decays by e⁻¹ per
// window, roughly emulating the sliding window's forgetting.
func (d *DecayCount) decayTo(ts int64) {
	if ts <= d.lastTS {
		return
	}
	f := 1.0
	for t := float64(ts-d.lastTS) / d.window; t > 0; t -= 1 {
		if t >= 1 {
			f *= 0.3678794
		} else {
			f *= 1 - 0.6321206*t
		}
	}
	d.total *= f
	for k := range d.kwCounts {
		d.kwCounts[k] *= f
		if d.kwCounts[k] < 0.5 {
			delete(d.kwCounts, k)
		}
	}
	d.lastTS = ts
}

// Insert implements latest.Estimator.
func (d *DecayCount) Insert(o *latest.Object) {
	d.decayTo(o.Timestamp)
	d.total++
	for _, kw := range o.Keywords {
		d.kwCounts[kw]++
	}
}

// Estimate implements latest.Estimator: keyword fraction times total,
// ignoring spatial predicates entirely (it keeps no spatial statistics).
func (d *DecayCount) Estimate(q *latest.Query) float64 {
	d.decayTo(q.Timestamp)
	if d.total == 0 {
		return 0
	}
	if len(q.Keywords) == 0 {
		return d.total
	}
	match := 0.0
	for _, kw := range q.Keywords {
		match += d.kwCounts[kw]
	}
	if match > d.total {
		match = d.total
	}
	return match
}

// Observe implements latest.Estimator (no feedback learning).
func (d *DecayCount) Observe(q *latest.Query, actual float64) {}

// Reset implements latest.Estimator.
func (d *DecayCount) Reset() {
	d.total = 0
	d.kwCounts = make(map[string]float64)
	d.lastTS = 0
}

// MemoryBytes implements latest.Estimator.
func (d *DecayCount) MemoryBytes() int { return 64 + 48*len(d.kwCounts) }

// params sizes the demo; fastParams shrinks it for the smoke test.
type params struct {
	window      time.Duration
	warmObjects int
	pretrain    int
	queries     int
	feedPerQ    int
	report      int
}

func defaultParams() params {
	return params{
		window:      time.Minute,
		warmObjects: 30_000,
		pretrain:    300,
		queries:     800,
		feedPerQ:    30,
		report:      200,
	}
}

func fastParams() params {
	return params{
		window:      5 * time.Second,
		warmObjects: 2_500,
		pretrain:    40,
		queries:     100,
		feedPerQ:    10,
		report:      50,
	}
}

func main() {
	if err := run(os.Stdout, defaultParams()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	// Register the custom estimator next to two built-ins and make it the
	// fleet: LATEST will profile all three and keep whichever wins.
	reg := latest.DefaultRegistry()
	reg.Register("Decay", func(ep latest.EstimatorParams) latest.Estimator {
		return NewDecayCount(ep)
	})

	world := latest.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	sys, err := latest.New(world, p.window,
		latest.WithRegistry(reg),
		latest.WithEstimators(latest.EstimatorH4096, latest.EstimatorRSH, "Decay"),
		latest.WithDefaultEstimator(latest.EstimatorRSH),
		latest.WithPretrainQueries(p.pretrain),
		latest.WithSeed(3),
	)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			now += 2
			sys.Feed(latest.Object{
				ID:        uint64(now),
				Loc:       latest.Pt(rng.Float64()*10, rng.Float64()*10),
				Keywords:  []string{fmt.Sprintf("tag%d", rng.Intn(40))},
				Timestamp: now,
			})
		}
	}
	fmt.Fprintln(out, "warming up...")
	feed(p.warmObjects)

	// A pure keyword workload: the custom sketch answers these well (its
	// keyword counts are exact up to decay) at near-zero latency, so LATEST
	// should discover it as a contender.
	for i := 0; i < p.queries; i++ {
		feed(p.feedPerQ)
		q := latest.KeywordQuery([]string{fmt.Sprintf("tag%d", rng.Intn(40))}, now)
		sys.EstimateAndExecute(&q)
		if i%p.report == 0 {
			fmt.Fprintf(out, "q%-4d phase=%-11s active=%s\n", i, sys.Phase(), sys.ActiveEstimator())
		}
	}

	fmt.Fprintf(out, "\nfinal active estimator: %s\n", sys.ActiveEstimator())
	for _, ev := range sys.Switches() {
		fmt.Fprintf(out, "  %v\n", ev)
	}
	q := latest.KeywordQuery([]string{"tag1"}, now)
	fmt.Fprintf(out, "model recommendation for a keyword query: %s\n", sys.RecommendFor(&q))
	return nil
}
