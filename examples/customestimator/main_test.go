package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/spatiotext/latest"
)

func TestSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"warming up", "final active estimator:", "model recommendation"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDecayCountContract holds the example estimator to the package's
// universal contract: finite, non-negative estimates.
func TestDecayCountContract(t *testing.T) {
	d := NewDecayCount(latest.EstimatorParams{Span: 1000})
	for i := 0; i < 100; i++ {
		d.Insert(&latest.Object{
			ID: uint64(i + 1), Loc: latest.Pt(1, 1),
			Keywords: []string{"a"}, Timestamp: int64(i * 10),
		})
	}
	for _, q := range []latest.Query{
		latest.KeywordQuery([]string{"a"}, 1000),
		latest.KeywordQuery([]string{"missing"}, 2000),
		latest.SpatialQuery(latest.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, 50_000),
	} {
		q := q
		got := d.Estimate(&q)
		if got < 0 || got != got {
			t.Errorf("estimate for %v = %v, want finite non-negative", q, got)
		}
	}
	d.Reset()
	q := latest.KeywordQuery([]string{"a"}, 60_000)
	if got := d.Estimate(&q); got != 0 {
		t.Errorf("estimate after Reset = %v, want 0", got)
	}
}
