// Disaster response: the paper's motivating scenario (§I). First responders
// estimate how many stream objects mention "fire" inside an affected area
// to gauge how many people are seeking help — in real time, over a moving
// window, while the incident changes the workload under the system's feet.
//
// The simulation runs three acts:
//
//  1. normal times — mixed city chatter, mixed queries;
//  2. the incident — a keyword burst around the fire zone while responders
//     flood the system with keyword-heavy estimation queries;
//  3. containment — traffic normalizes.
//
// Watch LATEST switch estimators when the workload turns keyword-heavy and
// switch back afterwards. Run with:
//
//	go run ./examples/disaster
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"github.com/spatiotext/latest"
)

// Thousand Oaks, CA and surroundings (the paper cites the Erbes fire).
var (
	world    = latest.Rect{MinX: -119.4, MinY: 34.0, MaxX: -118.5, MaxY: 34.5}
	fireZone = latest.CenteredRect(latest.Pt(-118.84, 34.19), 0.12, 0.1)
)

type simulation struct {
	sys    *latest.System
	rng    *rand.Rand
	now    int64
	nextID uint64

	// incident intensity in [0,1]: fraction of objects that are fire
	// related and clustered around the zone.
	intensity float64
}

func (s *simulation) feed(n int) {
	for i := 0; i < n; i++ {
		s.now += 2
		s.nextID++
		o := latest.Object{ID: s.nextID, Timestamp: s.now}
		if s.rng.Float64() < s.intensity {
			// Fire-related chatter clustered near the zone.
			c := fireZone.Center()
			o.Loc = world.Clamp(latest.Pt(c.X+s.rng.NormFloat64()*0.05, c.Y+s.rng.NormFloat64()*0.04))
			o.Keywords = []string{"fire", []string{"evacuation", "rescue", "smoke"}[s.rng.Intn(3)]}
		} else {
			o.Loc = latest.Pt(world.MinX+s.rng.Float64()*world.Width(), world.MinY+s.rng.Float64()*world.Height())
			o.Keywords = []string{[]string{"traffic", "food", "school", "weather", "sports"}[s.rng.Intn(5)]}
		}
		s.sys.Feed(o)
	}
}

// normalQuery is everyday mixed traffic.
func (s *simulation) normalQuery() latest.Query {
	area := latest.CenteredRect(
		latest.Pt(world.MinX+s.rng.Float64()*world.Width(), world.MinY+s.rng.Float64()*world.Height()),
		0.08, 0.06)
	switch s.rng.Intn(3) {
	case 0:
		return latest.SpatialQuery(area, s.now)
	case 1:
		return latest.KeywordQuery([]string{"traffic"}, s.now)
	default:
		return latest.HybridQuery(area, []string{"food", "sports"}, s.now)
	}
}

// responderQuery is what the rescue team asks during the incident.
func (s *simulation) responderQuery() latest.Query {
	if s.rng.Intn(4) == 0 {
		return latest.KeywordQuery([]string{"fire", "evacuation"}, s.now)
	}
	return latest.HybridQuery(fireZone, []string{"fire", "rescue", "evacuation"}, s.now)
}

// params sizes the simulation; fastParams shrinks it for the smoke test.
type params struct {
	window      time.Duration
	warmObjects int
	pretrain    int
	actQueries  [3]int
	feedPerQ    int
}

func defaultParams() params {
	return params{
		window:      3 * time.Minute,
		warmObjects: 90_000,
		pretrain:    300,
		actQueries:  [3]int{500, 700, 500},
		feedPerQ:    40,
	}
}

func fastParams() params {
	return params{
		window:      8 * time.Second,
		warmObjects: 4_000,
		pretrain:    40,
		actQueries:  [3]int{60, 90, 60},
		feedPerQ:    10,
	}
}

func main() {
	if err := run(os.Stdout, defaultParams()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	sys, err := latest.New(world, p.window,
		latest.WithPretrainQueries(p.pretrain),
		latest.WithSeed(7),
		latest.WithOnSwitch(func(ev latest.SwitchEvent) {
			fmt.Fprintf(out, "  ** LATEST switched %s -> %s (prefilled=%v)\n", ev.From, ev.To, ev.Prefilled)
		}),
	)
	if err != nil {
		return err
	}
	sim := &simulation{sys: sys, rng: rand.New(rand.NewSource(7))}

	fmt.Fprintln(out, "act 0: warming up (normal city chatter)...")
	sim.feed(p.warmObjects)

	runQueries := func(n int, incident bool, label string) {
		fmt.Fprintf(out, "\n%s (active estimator: %s)\n", label, sys.ActiveEstimator())
		accSum, cnt := 0.0, 0
		for i := 0; i < n; i++ {
			sim.feed(p.feedPerQ)
			var q latest.Query
			if incident {
				q = sim.responderQuery()
			} else {
				q = sim.normalQuery()
			}
			est, actual := sys.EstimateAndExecute(&q)
			if actual > 0 {
				a := 1 - abs(est-float64(actual))/float64(actual)
				if a > 0 {
					accSum += a
				}
				cnt++
			}
		}
		if cnt > 0 {
			fmt.Fprintf(out, "  %d queries, mean accuracy %.2f, active now: %s\n", n, accSum/float64(cnt), sys.ActiveEstimator())
		}
	}

	runQueries(p.actQueries[0], false, "act 1: normal operations — mixed workload")

	fmt.Fprintln(out, "\n!! fire breaks out: chatter spikes, responders issue keyword-heavy estimation queries")
	sim.intensity = 0.5
	runQueries(p.actQueries[1], true, "act 2: incident response — keyword-dominated workload")

	// A concrete responder question, answered both ways.
	q := latest.HybridQuery(fireZone, []string{"fire"}, sim.now)
	est, actual := sys.EstimateAndExecute(&q)
	fmt.Fprintf(out, "  'how many posts mention fire inside the zone?': estimate %.0f, actual %d\n", est, actual)

	fmt.Fprintln(out, "\n-- containment: traffic normalizes")
	sim.intensity = 0.02
	runQueries(p.actQueries[2], false, "act 3: back to normal")

	st := sys.Stats()
	fmt.Fprintf(out, "\nsummary: %d switches over the incident lifecycle, %d model records, final active %s\n",
		st.Switches, st.TrainingRecords, st.Active)
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
