package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"act 0: warming up",
		"act 1: normal operations",
		"act 2: incident response",
		"act 3: back to normal",
		"how many posts mention fire",
		"summary:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
