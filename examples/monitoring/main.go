// Monitoring service: a long-running sharded deployment shape. Several
// producer goroutines ingest the stream in batches through
// latest.ShardedSystem (each shard has its own lock, window and estimator
// fleet), request handlers serve estimation queries concurrently, and an
// operations loop polls Stats() to watch the adaptor work per shard —
// phase, active estimator, switch count, ingest/query gauges — the numbers
// an SRE would export to a metrics system.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest"
)

var world = latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}

func main() {
	sys, err := latest.NewSharded(world, 2*time.Minute,
		latest.WithShards(4),
		latest.WithPretrainQueries(400),
		latest.WithAccWindow(100),
		latest.WithSeed(21),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Virtual clock shared by the producers; queries read it atomically.
	var clock atomic.Int64

	// Producers: simulated social streams with two topic clusters, each
	// feeding batches so a shard's lock is taken once per batch.
	const producers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			topics := []string{"news", "traffic", "sports", "food", "music"}
			batch := make([]latest.Object, 0, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch = batch[:0]
				for i := 0; i < 64; i++ {
					ts := clock.Add(1)
					var loc latest.Point
					if rng.Float64() < 0.5 {
						loc = world.Clamp(latest.Pt(-74+rng.NormFloat64(), 40.7+rng.NormFloat64()))
					} else {
						loc = latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height())
					}
					batch = append(batch, latest.Object{
						ID: uint64(ts), Loc: loc,
						Keywords:  []string{topics[rng.Intn(len(topics))]},
						Timestamp: ts,
					})
				}
				sys.FeedBatch(batch)
			}
		}(int64(21 + p))
	}

	// Wait for one full window of data before serving.
	for clock.Load() < (2 * time.Minute).Milliseconds() {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("window primed: %d objects live across %d shards\n",
		sys.WindowSize(), sys.NumShards())

	// Request handlers: each serves a mix of dashboard queries.
	var served atomic.Int64
	for h := 0; h < 3; h++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			topics := []string{"news", "traffic", "sports", "food", "music"}
			for i := 0; i < 700; i++ {
				area := latest.CenteredRect(
					latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height()),
					4, 3)
				var q latest.Query
				switch rng.Intn(3) {
				case 0:
					q = latest.SpatialQuery(area, clock.Load())
				case 1:
					q = latest.KeywordQuery([]string{topics[rng.Intn(len(topics))]}, clock.Load())
				default:
					q = latest.HybridQuery(area, []string{topics[rng.Intn(len(topics))]}, clock.Load())
				}
				sys.EstimateAndExecute(&q)
				served.Add(1)
			}
		}(int64(100 + h))
	}

	// Operations loop: the metrics an exporter would scrape, merged and
	// per shard.
	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		ticker := time.NewTicker(300 * time.Millisecond)
		defer ticker.Stop()
		for served.Load() < 3*700 {
			<-ticker.C
			st := sys.Stats()
			m := st.Merged
			fmt.Printf("[ops] served=%-5d phase=%-11s active={%s} switches=%d accuracy=%.3f mem=%dKB\n",
				served.Load(), m.Phase, m.Active, m.Switches, m.AccuracyAvg, m.MemoryBytes/1024)
			for _, sh := range st.Shards {
				fmt.Printf("      shard %d: occ=%-6d feeds=%-7d queries=%-5d qlat=%-10v active=%s\n",
					sh.Index, sh.Gauges.Occupancy, sh.Gauges.Feeds, sh.Gauges.Queries,
					sh.Gauges.AvgQueryLatency.Round(time.Microsecond), sh.Core.Active)
			}
		}
	}()
	<-opsDone
	close(stop)
	wg.Wait()

	st := sys.Stats()
	fmt.Printf("\nshutdown: %d requests served, active per shard [%s], %d switches total\n",
		served.Load(), strings.Join(sys.ActiveEstimators(), " "), st.Merged.Switches)
	for _, ev := range sys.Switches() {
		fmt.Printf("  %v\n", ev)
	}
}
