// Monitoring service: a long-running sharded deployment shape. Several
// producer goroutines ingest the stream in batches through
// latest.ShardedSystem (each shard has its own lock, window and estimator
// fleet), request handlers serve estimation queries concurrently, and the
// engine's own telemetry server — enabled with latest.WithTelemetry —
// exposes everything an SRE would wire into a metrics stack:
//
//	/metrics       Prometheus text (counters, gauges, latency histograms)
//	/statusz       JSON snapshot (switch-decision trace, q-error, percentiles)
//	/debug/vars    expvar
//	/debug/pprof/  runtime profiling
//
// The operations loop below plays the scraper: it polls /metrics and
// /statusz over plain HTTP, exactly as Prometheus or a curl-wielding
// operator would.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest"
)

var world = latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}

// params sizes the deployment simulation; fastParams shrinks it for the
// smoke test.
type params struct {
	window       time.Duration
	shards       int
	producers    int
	handlers     int
	queriesPerH  int
	pretrain     int
	scrapeEvery  time.Duration
	logterminals io.Writer // switch/prefill logfmt destination
}

func defaultParams() params {
	return params{
		window:       2 * time.Minute,
		shards:       4,
		producers:    4,
		handlers:     3,
		queriesPerH:  700,
		pretrain:     400,
		scrapeEvery:  500 * time.Millisecond,
		logterminals: os.Stderr,
	}
}

func fastParams() params {
	return params{
		window:       2 * time.Second,
		shards:       2,
		producers:    2,
		handlers:     2,
		queriesPerH:  40,
		pretrain:     30,
		scrapeEvery:  50 * time.Millisecond,
		logterminals: io.Discard,
	}
}

func main() {
	if err := run(os.Stdout, defaultParams()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	sys, err := latest.NewSharded(world, p.window,
		latest.WithShards(p.shards),
		latest.WithPretrainQueries(p.pretrain),
		latest.WithAccWindow(100),
		latest.WithSeed(21),
		// Port 0: let the kernel pick, read it back with TelemetryAddr.
		latest.WithTelemetry("127.0.0.1:0"),
		// Switch decisions and prefill activity as logfmt lines.
		latest.WithLogger(p.logterminals, latest.LogInfo),
	)
	if err != nil {
		return err
	}
	defer sys.Close()
	addr := sys.TelemetryAddr()
	fmt.Fprintf(out, "telemetry: http://%s/metrics and http://%s/statusz\n", addr, addr)

	// Virtual clock shared by the producers; queries read it atomically.
	var clock atomic.Int64

	// Producers: simulated social streams with two topic clusters, each
	// feeding batches so a shard's lock is taken once per batch.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for prod := 0; prod < p.producers; prod++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			topics := []string{"news", "traffic", "sports", "food", "music"}
			batch := make([]latest.Object, 0, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch = batch[:0]
				for i := 0; i < 64; i++ {
					ts := clock.Add(1)
					var loc latest.Point
					if rng.Float64() < 0.5 {
						loc = world.Clamp(latest.Pt(-74+rng.NormFloat64(), 40.7+rng.NormFloat64()))
					} else {
						loc = latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height())
					}
					batch = append(batch, latest.Object{
						ID: uint64(ts), Loc: loc,
						Keywords:  []string{topics[rng.Intn(len(topics))]},
						Timestamp: ts,
					})
				}
				sys.FeedBatch(batch)
			}
		}(int64(21 + prod))
	}

	// Wait for one full window of data before serving.
	for clock.Load() < p.window.Milliseconds() {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Fprintf(out, "window primed: %d objects live across %d shards\n",
		sys.WindowSize(), sys.NumShards())

	// Request handlers: each serves a mix of dashboard queries.
	var served atomic.Int64
	total := int64(p.handlers * p.queriesPerH)
	for h := 0; h < p.handlers; h++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			topics := []string{"news", "traffic", "sports", "food", "music"}
			for i := 0; i < p.queriesPerH; i++ {
				area := latest.CenteredRect(
					latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height()),
					4, 3)
				var q latest.Query
				switch rng.Intn(3) {
				case 0:
					q = latest.SpatialQuery(area, clock.Load())
				case 1:
					q = latest.KeywordQuery([]string{topics[rng.Intn(len(topics))]}, clock.Load())
				default:
					q = latest.HybridQuery(area, []string{topics[rng.Intn(len(topics))]}, clock.Load())
				}
				sys.EstimateAndExecute(&q)
				served.Add(1)
			}
		}(int64(100 + h))
	}

	// Operations loop: scrape the engine's own HTTP endpoints, as a
	// Prometheus server (or an operator with curl) would.
	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		ticker := time.NewTicker(p.scrapeEvery)
		defer ticker.Stop()
		for served.Load() < total {
			<-ticker.C
			fmt.Fprintf(out, "[scrape] served=%d\n", served.Load())
			for _, line := range scrapeMetrics(addr) {
				fmt.Fprintf(out, "  %s\n", line)
			}
			if s := scrapeStatusz(addr); s != "" {
				fmt.Fprintf(out, "  statusz: %s\n", s)
			}
		}
	}()
	<-opsDone
	close(stop)
	wg.Wait()

	st := sys.PerShardStats()
	fmt.Fprintf(out, "\nshutdown: %d requests served, active per shard [%s], %d switches total\n",
		served.Load(), strings.Join(sys.ActiveEstimators(), " "), st.Merged.Switches)
	for _, ev := range sys.Switches() {
		fmt.Fprintf(out, "  %v\n", ev)
	}
	// The merged decision trace says why each switch happened.
	for _, d := range st.Merged.Decisions {
		fmt.Fprintf(out, "  shard %d: %s->%s reason=%s confidence=%.2f prefill=%s\n",
			d.Shard, d.From, d.To, d.Reason, d.Confidence, d.PrefillMode)
	}
	return nil
}

// scrapeMetrics GETs /metrics and returns a few representative sample
// lines (a real deployment points Prometheus at the endpoint instead).
func scrapeMetrics(addr string) []string {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return []string{"scrape failed: " + err.Error()}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return []string{"scrape failed: " + err.Error()}
	}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "latest_feeds_total") ||
			strings.HasPrefix(line, "latest_active_estimator") ||
			strings.HasPrefix(line, "latest_query_latency_seconds_count") {
			out = append(out, line)
		}
	}
	return out
}

// scrapeStatusz GETs /statusz and summarizes the JSON snapshot.
func scrapeStatusz(addr string) string {
	resp, err := http.Get("http://" + addr + "/statusz")
	if err != nil {
		return "scrape failed: " + err.Error()
	}
	defer resp.Body.Close()
	var snap struct {
		Phase     string `json:"phase"`
		Active    string `json:"active"`
		Switches  int    `json:"switches"`
		Decisions []struct {
			From string `json:"from"`
			To   string `json:"to"`
		} `json:"decisions"`
		QError []struct {
			Estimator string  `json:"estimator"`
			QError    float64 `json:"qerror"`
		} `json:"qerror"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return "decode failed: " + err.Error()
	}
	qerr := make([]string, 0, len(snap.QError))
	for _, qe := range snap.QError {
		if qe.QError > 0 {
			qerr = append(qerr, fmt.Sprintf("%s=%.2f", qe.Estimator, qe.QError))
		}
	}
	return fmt.Sprintf("phase=%s active={%s} switches=%d decisions=%d qerror[%s]",
		snap.Phase, snap.Active, snap.Switches, len(snap.Decisions), strings.Join(qerr, " "))
}
