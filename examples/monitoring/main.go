// Monitoring service: a long-running deployment shape. One goroutine
// ingests the stream, several serve estimation requests concurrently
// through latest.ConcurrentSystem, and an operations loop polls Stats() to
// watch the adaptor work (phase, active estimator, switch count, model
// size) — the numbers an SRE would export to a metrics system.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest"
)

var world = latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}

func main() {
	sys, err := latest.NewConcurrent(latest.Config{
		World:           world,
		Window:          2 * time.Minute,
		PretrainQueries: 400,
		AccWindow:       100,
		Seed:            21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Virtual clock shared by the single producer; queries read it
	// atomically.
	var clock atomic.Int64

	// Producer: ~simulated social stream with two topic clusters.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(21))
		topics := []string{"news", "traffic", "sports", "food", "music"}
		id := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts := clock.Add(1)
			id++
			var loc latest.Point
			if rng.Float64() < 0.5 {
				loc = world.Clamp(latest.Pt(-74+rng.NormFloat64(), 40.7+rng.NormFloat64()))
			} else {
				loc = latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height())
			}
			sys.Feed(latest.Object{
				ID: id, Loc: loc,
				Keywords:  []string{topics[rng.Intn(len(topics))]},
				Timestamp: ts,
			})
		}
	}()

	// Wait for one full window of data before serving.
	for clock.Load() < (2 * time.Minute).Milliseconds() {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("window primed: %d objects live\n", sys.WindowSize())

	// Request handlers: each serves a mix of dashboard queries.
	var served atomic.Int64
	for h := 0; h < 3; h++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			topics := []string{"news", "traffic", "sports", "food", "music"}
			for i := 0; i < 700; i++ {
				area := latest.CenteredRect(
					latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height()),
					4, 3)
				var q latest.Query
				switch rng.Intn(3) {
				case 0:
					q = latest.SpatialQuery(area, clock.Load())
				case 1:
					q = latest.KeywordQuery([]string{topics[rng.Intn(len(topics))]}, clock.Load())
				default:
					q = latest.HybridQuery(area, []string{topics[rng.Intn(len(topics))]}, clock.Load())
				}
				sys.EstimateAndExecute(&q)
				served.Add(1)
			}
		}(int64(100 + h))
	}

	// Operations loop: the metrics an exporter would scrape.
	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		ticker := time.NewTicker(300 * time.Millisecond)
		defer ticker.Stop()
		for served.Load() < 3*700 {
			<-ticker.C
			st := sys.Stats()
			fmt.Printf("[ops] served=%-5d phase=%-11s active=%-5s switches=%d accuracy=%.3f model{records=%d nodes=%d retrains=%d} mem=%dKB\n",
				served.Load(), st.Phase, st.Active, st.Switches, st.AccuracyAvg,
				st.TrainingRecords, st.TreeNodes, st.ModelRetrains, st.MemoryBytes/1024)
		}
	}()
	<-opsDone
	close(stop)
	wg.Wait()

	st := sys.Stats()
	fmt.Printf("\nshutdown: %d requests served, final active %s, %d switches\n",
		served.Load(), st.Active, st.Switches)
	for _, ev := range sys.Switches() {
		fmt.Printf("  %v\n", ev)
	}
}
