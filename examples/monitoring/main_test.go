package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"telemetry: http://",
		"window primed",
		"shutdown: 80 requests served",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The scraper must have reached the live /metrics endpoint at least once.
	if !strings.Contains(out, "latest_feeds_total") && !strings.Contains(out, "[scrape]") {
		t.Errorf("no scrape output captured:\n%s", out)
	}
}
