// Quickstart: feed a spatio-textual stream into LATEST, ask estimation
// queries, and let the module learn from the executed queries' true
// selectivity. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/spatiotext/latest"
)

func main() {
	// A LATEST system over a city-scale bounding box (Los Angeles county,
	// roughly), keeping the last 5 minutes of stream data.
	world := latest.Rect{MinX: -118.7, MinY: 33.7, MaxX: -117.6, MaxY: 34.4}
	sys, err := latest.New(world, 5*time.Minute,
		latest.WithPretrainQueries(300), // short demo; production uses thousands
		latest.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	now := int64(0)
	topics := []string{"traffic", "concert", "food", "fire", "news"}

	feed := func(n int) {
		for i := 0; i < n; i++ {
			now += 2 // one object every 2 virtual ms
			sys.Feed(latest.Object{
				ID:        uint64(now),
				Loc:       latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height()),
				Keywords:  []string{topics[rng.Intn(len(topics))]},
				Timestamp: now,
			})
		}
	}

	// Warm up: one full window of data before the first query (Figure 2's
	// warm-up phase).
	fmt.Println("warming up with 5 minutes of stream data...")
	feed(150_000)
	fmt.Printf("window holds %d objects\n\n", sys.WindowSize())

	// Drive queries. Estimate is the query optimizer's cheap call; Execute
	// answers exactly and feeds the truth back to the switching model.
	downtown := latest.CenteredRect(latest.Pt(-118.24, 34.05), 0.1, 0.1)
	for i := 0; i < 400; i++ {
		feed(50)
		var q latest.Query
		switch i % 3 {
		case 0:
			q = latest.SpatialQuery(downtown, now)
		case 1:
			q = latest.KeywordQuery([]string{"traffic"}, now)
		default:
			q = latest.HybridQuery(downtown, []string{"fire", "news"}, now)
		}
		est, actual := sys.EstimateAndExecute(&q)
		if i%100 == 0 {
			fmt.Printf("q%-4d %-8s estimate=%-8.0f actual=%-7d active=%s phase=%s\n",
				i, q.Type(), est, actual, sys.ActiveEstimator(), sys.Phase())
		}
	}

	stats := sys.Stats()
	fmt.Printf("\nafter %d queries: active=%s, %d switches, %d training records, monitored accuracy %.2f\n",
		400, stats.Active, stats.Switches, stats.TrainingRecords, stats.AccuracyAvg)
}
