// Quickstart: feed a spatio-textual stream into LATEST, ask estimation
// queries, and let the module learn from the executed queries' true
// selectivity. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"github.com/spatiotext/latest"
)

// params sizes the demo; fastParams shrinks it for the smoke test.
type params struct {
	window      time.Duration
	warmObjects int
	queries     int
	feedPerQ    int
	pretrain    int
	report      int
}

func defaultParams() params {
	return params{
		window:      5 * time.Minute,
		warmObjects: 150_000,
		queries:     400,
		feedPerQ:    50,
		pretrain:    300, // short demo; production uses thousands
		report:      100,
	}
}

func fastParams() params {
	return params{
		window:      10 * time.Second,
		warmObjects: 5_000,
		queries:     60,
		feedPerQ:    10,
		pretrain:    30,
		report:      20,
	}
}

func main() {
	if err := run(os.Stdout, defaultParams()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	// A LATEST system over a city-scale bounding box (Los Angeles county,
	// roughly), keeping the last window of stream data.
	world := latest.Rect{MinX: -118.7, MinY: 33.7, MaxX: -117.6, MaxY: 34.4}
	sys, err := latest.New(world, p.window,
		latest.WithPretrainQueries(p.pretrain),
		latest.WithSeed(42),
	)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(42))
	now := int64(0)
	topics := []string{"traffic", "concert", "food", "fire", "news"}

	feed := func(n int) {
		for i := 0; i < n; i++ {
			now += 2 // one object every 2 virtual ms
			sys.Feed(latest.Object{
				ID:        uint64(now),
				Loc:       latest.Pt(world.MinX+rng.Float64()*world.Width(), world.MinY+rng.Float64()*world.Height()),
				Keywords:  []string{topics[rng.Intn(len(topics))]},
				Timestamp: now,
			})
		}
	}

	// Warm up: one full window of data before the first query (Figure 2's
	// warm-up phase).
	fmt.Fprintf(out, "warming up with %.0fs of stream data...\n", p.window.Seconds())
	feed(p.warmObjects)
	fmt.Fprintf(out, "window holds %d objects\n\n", sys.WindowSize())

	// Drive queries. Estimate is the query optimizer's cheap call; Execute
	// answers exactly and feeds the truth back to the switching model.
	downtown := latest.CenteredRect(latest.Pt(-118.24, 34.05), 0.1, 0.1)
	for i := 0; i < p.queries; i++ {
		feed(p.feedPerQ)
		var q latest.Query
		switch i % 3 {
		case 0:
			q = latest.SpatialQuery(downtown, now)
		case 1:
			q = latest.KeywordQuery([]string{"traffic"}, now)
		default:
			q = latest.HybridQuery(downtown, []string{"fire", "news"}, now)
		}
		est, actual := sys.EstimateAndExecute(&q)
		if i%p.report == 0 {
			fmt.Fprintf(out, "q%-4d %-8s estimate=%-8.0f actual=%-7d active=%s phase=%s\n",
				i, q.Type(), est, actual, sys.ActiveEstimator(), sys.Phase())
		}
	}

	stats := sys.Stats()
	fmt.Fprintf(out, "\nafter %d queries: active=%s, %d switches, %d training records, monitored accuracy %.2f\n",
		p.queries, stats.Active, stats.Switches, stats.TrainingRecords, stats.AccuracyAvg)
	return nil
}
