package latest

import (
	"math"
	"testing"
	"time"
)

// fuzz_test.go drives the public ingest and query paths with arbitrary
// float64 coordinates, rectangle corners and timestamps. The contract under
// every validation policy is the same: no input may panic the engine, and
// every estimate the engine does emit is finite and non-negative.

// fuzzWorlds builds one small engine per validation policy. Engines are
// deliberately shared across iterations of a fuzz target: accumulated state
// (clamped clocks, evicted windows, phase transitions) is part of the
// surface being fuzzed.
func fuzzWorlds(f *testing.F) []*System {
	f.Helper()
	policies := []ValidationPolicy{ValidationClamp, ValidationStrict, ValidationDrop}
	systems := make([]*System, 0, len(policies))
	for _, p := range policies {
		sys, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
			WithSeed(7), WithPretrainQueries(20), WithAccWindow(10),
			WithValidation(p))
		if err != nil {
			f.Fatal(err)
		}
		systems = append(systems, sys)
	}
	return systems
}

func FuzzFeed(f *testing.F) {
	f.Add(0.5, 0.5, int64(10))
	f.Add(math.NaN(), 0.5, int64(20))
	f.Add(0.5, math.Inf(1), int64(30))
	f.Add(math.Inf(-1), math.Inf(1), int64(-40))
	f.Add(1e308, -1e308, int64(math.MaxInt64))
	f.Add(0.25, 0.75, int64(math.MinInt64))
	f.Add(math.SmallestNonzeroFloat64, -0.0, int64(0))

	systems := fuzzWorlds(f)
	var id uint64
	f.Fuzz(func(t *testing.T, x, y float64, ts int64) {
		id++
		for _, sys := range systems {
			sys.Feed(Object{ID: id, Loc: Pt(x, y), Keywords: []string{"fz"}, Timestamp: ts})
			// A benign probe query after every ingest: whatever the feed
			// did to internal state, the query path must stay finite.
			probe := SpatialQuery(Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75}, ts)
			est, actual := sys.EstimateAndExecute(&probe)
			if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
				t.Fatalf("%v: estimate %v after feeding (%v,%v,%d)", sys.policy, est, x, y, ts)
			}
			if actual < 0 {
				t.Fatalf("%v: exact count %d", sys.policy, actual)
			}
		}
	})
}

func FuzzEstimate(f *testing.F) {
	f.Add(0.2, 0.2, 0.8, 0.8, int64(10))
	f.Add(0.8, 0.8, 0.2, 0.2, int64(20)) // inverted
	f.Add(math.NaN(), 0.0, 1.0, 1.0, int64(30))
	f.Add(0.0, 0.0, math.Inf(1), 1.0, int64(40))
	f.Add(-5.0, -5.0, 5.0, 5.0, int64(50)) // world-swallowing
	f.Add(0.5, 0.5, 0.5, 0.5, int64(60))   // empty
	f.Add(1e308, 1e308, -1e308, -1e308, int64(math.MaxInt64))
	f.Add(0.1, 0.9, 0.2, math.Inf(-1), int64(math.MinInt64))

	systems := fuzzWorlds(f)
	for _, sys := range systems {
		for i := int64(1); i <= 64; i++ {
			sys.Feed(Object{ID: uint64(i), Loc: Pt(float64(i%8)/8, float64(i%5)/5),
				Keywords: []string{"fz"}, Timestamp: i})
		}
	}
	f.Fuzz(func(t *testing.T, minX, minY, maxX, maxY float64, ts int64) {
		for _, sys := range systems {
			q := Query{Range: Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY},
				HasRange: true, Timestamp: ts}
			est, actual := sys.EstimateAndExecute(&q)
			if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
				t.Fatalf("%v: estimate %v for rect (%v,%v,%v,%v,%d)",
					sys.policy, est, minX, minY, maxX, maxY, ts)
			}
			if actual < 0 {
				t.Fatalf("%v: exact count %d", sys.policy, actual)
			}
		}
	})
}
