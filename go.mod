module github.com/spatiotext/latest

go 1.22
