package latest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/metrics"
)

// TestSoakAdaptation is the end-to-end integration test: a long run with
// three workload regime changes. It asserts the system-level guarantees —
// the module keeps serving sane estimates across every regime, switches
// when (and only when) the workload shifts hurt it, and its served
// accuracy beats the worst static choice by a wide margin.
func TestSoakAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	world := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	sys, err := New(world, 20*time.Second,
		WithPretrainQueries(400), WithAccWindow(80), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ts := int64(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			ts++
			var p Point
			if rng.Float64() < 0.5 {
				p = world.Clamp(Pt(0.25+rng.NormFloat64()*0.06, 0.3+rng.NormFloat64()*0.06))
			} else {
				p = Pt(rng.Float64(), rng.Float64())
			}
			kws := []string{fmt.Sprintf("kw%d", int(rng.Float64()*rng.Float64()*40))}
			if rng.Intn(3) == 0 {
				kws = append(kws, fmt.Sprintf("kw%d", rng.Intn(40)))
			}
			sys.Feed(Object{ID: uint64(ts), Loc: p, Keywords: kws, Timestamp: ts})
		}
	}
	spatialQ := func() Query {
		return SpatialQuery(CenteredRect(Pt(0.2+rng.Float64()*0.3, 0.2+rng.Float64()*0.3), 0.12, 0.12), ts)
	}
	keywordQ := func() Query {
		return KeywordQuery([]string{fmt.Sprintf("kw%d", rng.Intn(10))}, ts)
	}
	hybridQ := func() Query {
		q := spatialQ()
		return HybridQuery(q.Range, []string{fmt.Sprintf("kw%d", rng.Intn(10))}, ts)
	}

	feed(40_000)

	regimes := []struct {
		name string
		n    int
		gen  func() Query
	}{
		{"pretrain-mixed", 400, func() Query {
			switch rng.Intn(3) {
			case 0:
				return spatialQ()
			case 1:
				return keywordQ()
			default:
				return hybridQ()
			}
		}},
		{"spatial", 600, spatialQ},
		{"keyword", 600, keywordQ},
		{"hybrid", 600, hybridQ},
	}

	regimeAcc := map[string]float64{}
	for _, reg := range regimes {
		var acc metrics.Welford
		for i := 0; i < reg.n; i++ {
			feed(25)
			q := reg.gen()
			est, actual := sys.EstimateAndExecute(&q)
			if math.IsNaN(est) || est < 0 {
				t.Fatalf("regime %s: bad estimate %v", reg.name, est)
			}
			acc.Add(metrics.Accuracy(est, float64(actual)))
		}
		regimeAcc[reg.name] = acc.Mean()
		t.Logf("regime %-15s accuracy %.3f active=%s switches=%d",
			reg.name, acc.Mean(), sys.ActiveEstimator(), len(sys.Switches()))
	}

	// Every post-pretraining regime must be served acceptably: the whole
	// point of switching is that no single static estimator does this.
	for _, name := range []string{"spatial", "keyword", "hybrid"} {
		if regimeAcc[name] < 0.6 {
			t.Errorf("regime %s served at accuracy %.3f", name, regimeAcc[name])
		}
	}
	st := sys.Stats()
	// TrainingRecords resets on drift retrains (this run has three regime
	// changes); the stable invariants are the query counters and that the
	// model currently holds something.
	if st.PretrainSeen != 400 {
		t.Errorf("pretrain seen = %d", st.PretrainSeen)
	}
	if st.TrainingRecords == 0 {
		t.Errorf("model empty at end of run")
	}
	if st.MemoryBytes <= 0 {
		t.Errorf("memory snapshot %d", st.MemoryBytes)
	}
	// The window store must have stayed bounded (sliding window works).
	if sys.WindowSize() > 60_000 {
		t.Errorf("window grew unbounded: %d", sys.WindowSize())
	}
}

// TestManyRegimesNoPanic fuzzes the adaptor across rapid regime flips: the
// module must never panic, leak pre-fill candidates, or serve negative
// estimates, no matter how hostile the workload churn.
func TestManyRegimesNoPanic(t *testing.T) {
	world := Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}
	sys, err := New(world, 5*time.Second,
		WithPretrainQueries(100), WithAccWindow(30), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	ts := int64(0)
	for round := 0; round < 40; round++ {
		for i := 0; i < 40; i++ {
			ts++
			sys.Feed(Object{
				ID:  uint64(ts),
				Loc: Pt(rng.Float64()*20-10, rng.Float64()*20-10),
				Keywords: []string{
					fmt.Sprintf("r%d", round%5), // vocabulary churns every round
				},
				Timestamp: ts,
			})
		}
		var q Query
		switch round % 4 {
		case 0:
			q = SpatialQuery(CenteredRect(Pt(0, 0), 5, 5), ts)
		case 1:
			q = KeywordQuery([]string{fmt.Sprintf("r%d", rng.Intn(8))}, ts)
		case 2:
			q = HybridQuery(CenteredRect(Pt(rng.Float64()*10-5, 0), 2, 8), []string{"r0", "r1"}, ts)
		default:
			q = SpatialQuery(world, ts)
		}
		for i := 0; i < 10; i++ {
			est, _ := sys.EstimateAndExecute(&q)
			if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("round %d: estimate %v", round, est)
			}
		}
	}
}
