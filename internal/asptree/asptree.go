// Package asptree implements the adaptive space-partitioning (ASP) tree of
// Hershberger et al. ("Adaptive Spatial Partitioning for Multidimensional
// Data Streams"), augmented per Wang et al.'s AASP design with per-node
// keyword summaries so that local spatial-keyword correlations can be
// exploited (paper §IV, Figure 1(c)).
//
// The tree is a 4-ary quadtree over the world rectangle in which every data
// point is counted by exactly one node: points land in the deepest existing
// node covering them, and a node splits once its live count crosses the
// split threshold, directing *future* points into its children while the
// node keeps the counts it already absorbed. Counts are kept in a ring of
// time slices so the structure tracks a sliding window without storing
// points: advancing a slice retires the oldest counts everywhere in one
// O(nodes) sweep.
//
// Keyword information is summarised per node by hashing keywords into a
// fixed number of buckets of per-slice counts. Bucket collisions make the
// per-keyword fractions approximate, which is faithful to AASP's observed
// behaviour in the paper: strong on spatially-clustered keyword
// correlations, weak on high-cardinality keyword workloads.
package asptree

import (
	"fmt"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/kmv"
)

// Config controls tree shape and windowing.
type Config struct {
	// SplitThreshold is the live count at which a leaf splits. The paper's
	// "split value of 0.5" is mapped by the AASP estimator to a threshold of
	// 0.5% of the expected window size (see internal/estimator).
	SplitThreshold int
	// MaxNodes caps the total node count; splits stop once reached. This is
	// the tree's memory budget lever.
	MaxNodes int
	// MaxDepth caps subdivision depth to keep cells above floating-point
	// noise. Zero means the default of 20.
	MaxDepth int
	// Slices is the number of time slices in the window ring. Zero means
	// the default of 8.
	Slices int
	// KeywordBuckets is the number of hash buckets in each node's keyword
	// summary. Zero means the default of 32.
	KeywordBuckets int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.SplitThreshold <= 0 {
		out.SplitThreshold = 128
	}
	if out.MaxNodes <= 0 {
		out.MaxNodes = 4096
	}
	if out.MaxDepth <= 0 {
		out.MaxDepth = 20
	}
	if out.Slices <= 0 {
		out.Slices = 8
	}
	if out.KeywordBuckets <= 0 {
		out.KeywordBuckets = 32
	}
	return out
}

// node is a quadtree cell with windowed count summaries. children[i] follows
// geo.Rect.Quadrants order; a node either has all four children or none.
type node struct {
	bounds   geo.Rect
	depth    int
	children *[4]node

	// slices[s] counts points absorbed by this node (not descendants)
	// during time slice s; live caches the ring sum.
	slices []uint32
	live   uint32

	// kw[b*S+s] counts keyword occurrences hashed to bucket b in slice s.
	// kwLive[b] caches each bucket's ring sum.
	kw     []uint32
	kwLive []uint32
}

// Tree is a windowed AASP tree. Not safe for concurrent use.
type Tree struct {
	cfg   Config
	root  *node
	nodes int
	cur   int // current slice index

	totalLive uint32
	synopsis  *kmv.Sliced // windowed distinct-keyword synopsis
}

// synopsisK is the size of the windowed distinct-keyword synopsis.
const synopsisK = 256

// New creates an empty tree over the given world rectangle.
func New(world geo.Rect, cfg Config) *Tree {
	if world.Empty() || !world.Valid() {
		panic(fmt.Sprintf("asptree: invalid world %v", world))
	}
	c := cfg.withDefaults()
	t := &Tree{cfg: c, synopsis: kmv.NewSliced(synopsisK, c.Slices)}
	t.root = t.newNode(world, 0)
	t.nodes = 1
	return t
}

func (t *Tree) newNode(bounds geo.Rect, depth int) *node {
	return &node{
		bounds: bounds,
		depth:  depth,
		slices: make([]uint32, t.cfg.Slices),
		kw:     make([]uint32, t.cfg.KeywordBuckets*t.cfg.Slices),
		kwLive: make([]uint32, t.cfg.KeywordBuckets),
	}
}

// NodeCount returns the number of nodes currently allocated.
func (t *Tree) NodeCount() int { return t.nodes }

// Live returns the total windowed count across all nodes.
func (t *Tree) Live() int { return int(t.totalLive) }

// DistinctKeywords estimates the number of distinct keywords in the window
// via the tree's KMV synopsis.
func (t *Tree) DistinctKeywords() float64 { return t.synopsis.Distinct() }

// Insert counts a point with its keywords into the deepest covering node,
// splitting that node when it crosses the threshold.
func (t *Tree) Insert(p geo.Point, kws []string) {
	n := t.root
	for n.children != nil {
		n = &n.children[n.bounds.QuadrantOf(p)]
	}
	n.slices[t.cur]++
	n.live++
	t.totalLive++
	for _, kw := range kws {
		b := int(kmv.Hash64(kw) % uint64(t.cfg.KeywordBuckets))
		n.kw[b*t.cfg.Slices+t.cur]++
		n.kwLive[b]++
		t.synopsis.Add(kw)
	}
	if int(n.live) > t.cfg.SplitThreshold &&
		n.depth < t.cfg.MaxDepth &&
		t.nodes+4 <= t.cfg.MaxNodes {
		t.split(n)
	}
}

// split attaches four empty children; the node keeps its absorbed counts.
func (t *Tree) split(n *node) {
	quads := n.bounds.Quadrants()
	var ch [4]node
	for i := range ch {
		ch[i] = *t.newNode(quads[i], n.depth+1)
	}
	n.children = &ch
	t.nodes += 4
}

// AdvanceSlice rotates the window ring, retiring the oldest slice in every
// node, and collapses subtrees that have gone empty so the node budget is
// reclaimed for the stream's current hot spots.
func (t *Tree) AdvanceSlice() {
	t.cur = (t.cur + 1) % t.cfg.Slices
	t.retire(t.root)
	t.collapse(t.root)
	t.synopsis.Advance()
}

// retire zeroes the (new) current slice throughout the subtree, updating
// live caches.
func (t *Tree) retire(n *node) {
	old := n.slices[t.cur]
	n.slices[t.cur] = 0
	n.live -= old
	t.totalLive -= old
	S := t.cfg.Slices
	for b := 0; b < t.cfg.KeywordBuckets; b++ {
		k := n.kw[b*S+t.cur]
		n.kw[b*S+t.cur] = 0
		n.kwLive[b] -= k
	}
	if n.children != nil {
		for i := range n.children {
			t.retire(&n.children[i])
		}
	}
}

// collapse removes child quartets whose subtrees hold no live counts.
// It returns the subtree's live total.
func (t *Tree) collapse(n *node) uint32 {
	if n.children == nil {
		return n.live
	}
	sub := uint32(0)
	for i := range n.children {
		sub += t.collapse(&n.children[i])
	}
	if sub == 0 {
		n.children = nil
		t.nodes -= 4
	}
	return n.live + sub
}

// EstimateRange estimates how many windowed points fall inside r, assuming
// points are uniform within each node's cell (the quadtree's adaptivity is
// what keeps that assumption tolerable).
func (t *Tree) EstimateRange(r geo.Rect) float64 {
	return t.estimate(t.root, r, nil)
}

// EstimateRangeKeywords estimates points inside r carrying at least one of
// kws, using each node's local keyword summary.
func (t *Tree) EstimateRangeKeywords(r geo.Rect, kws []string) float64 {
	if len(kws) == 0 {
		return t.EstimateRange(r)
	}
	return t.estimate(t.root, r, kws)
}

// EstimateKeywords estimates windowed points carrying at least one of kws,
// regardless of location.
func (t *Tree) EstimateKeywords(kws []string) float64 {
	return t.estimate(t.root, t.root.bounds.Expand(1), kws)
}

func (t *Tree) estimate(n *node, r geo.Rect, kws []string) float64 {
	if !n.bounds.Intersects(r) {
		return 0
	}
	frac := 1.0
	if !r.ContainsRect(n.bounds) {
		frac = r.Intersect(n.bounds).Area() / n.bounds.Area()
	}
	est := float64(n.live) * frac
	if kws != nil {
		est *= t.keywordFraction(n, kws)
	}
	if n.children != nil {
		for i := range n.children {
			est += t.estimate(&n.children[i], r, kws)
		}
	}
	return est
}

// keywordFraction estimates the fraction of this node's own points matching
// any query keyword, as the capped sum of per-bucket frequencies. Bucket
// collisions and multi-keyword objects both bias this upward; the cap keeps
// it a probability.
func (t *Tree) keywordFraction(n *node, kws []string) float64 {
	if n.live == 0 {
		return 0
	}
	sum := 0.0
	for _, kw := range kws {
		b := int(kmv.Hash64(kw) % uint64(t.cfg.KeywordBuckets))
		sum += float64(n.kwLive[b])
	}
	frac := sum / float64(n.live)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// KeywordFloor estimates the background frequency of a single unseen
// keyword as 1/D, where D is the KMV synopsis's distinct-keyword estimate.
// The AASP estimator consults it on every query to bound collision noise
// from below; the synopsis merge it forces is an inherent per-query cost of
// the augmented design (the paper reports AASP as the slowest estimator on
// every workload, spatial ones included).
func (t *Tree) KeywordFloor() float64 {
	d := t.synopsis.Distinct()
	if d < 1 {
		return 0
	}
	return 1 / d
}

// Reset drops all counts and structure, returning the tree to its freshly
// constructed state (used when an estimator is wiped after pre-training).
func (t *Tree) Reset() {
	t.root = t.newNode(t.root.bounds, 0)
	t.nodes = 1
	t.cur = 0
	t.totalLive = 0
	t.synopsis = kmv.NewSliced(synopsisK, t.cfg.Slices)
}

// MemoryBytes approximates the tree's footprint for the memory-budget
// experiment.
func (t *Tree) MemoryBytes() int {
	perNode := 64 + // struct overhead
		4*t.cfg.Slices + // slices ring
		4*t.cfg.KeywordBuckets*t.cfg.Slices + // kw ring
		4*t.cfg.KeywordBuckets // kwLive cache
	return t.nodes*perNode + t.synopsis.MemoryBytes()
}

// Depth returns the maximum depth of any node, a diagnostics hook used by
// tests and the workload explorer.
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		d := n.depth
		if n.children != nil {
			for i := range n.children {
				if cd := walk(&n.children[i]); cd > d {
					d = cd
				}
			}
		}
		return d
	}
	return walk(t.root)
}
