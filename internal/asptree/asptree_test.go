package asptree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
)

func newTestTree(cfg Config) *Tree { return New(geo.UnitSquare, cfg) }

func TestInsertCountsExactlyOnce(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 10})
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
	}
	if tr.Live() != n {
		t.Fatalf("Live = %d, want %d", tr.Live(), n)
	}
	// The whole world must estimate the exact total regardless of splits.
	got := tr.EstimateRange(geo.UnitSquare)
	if math.Abs(got-n) > 1e-6 {
		t.Fatalf("EstimateRange(world) = %v, want %d", got, n)
	}
	if tr.NodeCount() <= 1 {
		t.Error("tree should have split under threshold 10")
	}
}

func TestSplitRespectsMaxNodes(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 1, MaxNodes: 9})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
	}
	if tr.NodeCount() > 9 {
		t.Fatalf("NodeCount = %d exceeds MaxNodes 9", tr.NodeCount())
	}
}

func TestSplitRespectsMaxDepth(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 1, MaxDepth: 3, MaxNodes: 1 << 20})
	// Hammer one point so only one path can deepen.
	for i := 0; i < 1000; i++ {
		tr.Insert(geo.Pt(0.1, 0.1), nil)
	}
	if d := tr.Depth(); d > 3 {
		t.Fatalf("Depth = %d exceeds MaxDepth 3", d)
	}
}

func TestEstimateRangeUniformData(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 64})
	rng := rand.New(rand.NewSource(3))
	const n = 40000
	for i := 0; i < n; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
	}
	// A quarter of uniform space should hold ~a quarter of the points.
	got := tr.EstimateRange(geo.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5})
	if rel := math.Abs(got-n/4) / (n / 4); rel > 0.1 {
		t.Errorf("quarter estimate %v, want ~%d (rel err %.3f)", got, n/4, rel)
	}
	// Out-of-world range estimates zero.
	if got := tr.EstimateRange(geo.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}); got != 0 {
		t.Errorf("out-of-world estimate = %v", got)
	}
}

func TestEstimateAdaptsToSkew(t *testing.T) {
	// Clustered data: adaptivity should give a much better estimate for a
	// query on the dense cluster than a single uniform cell would.
	tr := newTestTree(Config{SplitThreshold: 32, MaxNodes: 1 << 14})
	rng := rand.New(rand.NewSource(4))
	const n = 30000
	for i := 0; i < n; i++ {
		// 90% in a tight cluster, 10% uniform noise.
		if rng.Float64() < 0.9 {
			tr.Insert(geo.Pt(0.7+rng.NormFloat64()*0.01, 0.7+rng.NormFloat64()*0.01), nil)
		} else {
			tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
		}
	}
	cluster := geo.CenteredRect(geo.Pt(0.7, 0.7), 0.08, 0.08)
	got := tr.EstimateRange(cluster)
	// Truth is ~0.9*n (cluster ±4σ) + tiny uniform part.
	want := 0.9 * float64(n)
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Errorf("cluster estimate %v, want ~%v (rel %.3f)", got, want, rel)
	}
	// Far empty area estimates near zero.
	empty := geo.CenteredRect(geo.Pt(0.2, 0.2), 0.05, 0.05)
	if got := tr.EstimateRange(empty); got > 0.02*float64(n) {
		t.Errorf("empty-area estimate too high: %v", got)
	}
}

func TestKeywordEstimates(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 256, KeywordBuckets: 64})
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	for i := 0; i < n; i++ {
		kws := []string{"common"}
		if i%10 == 0 {
			kws = append(kws, "rare")
		}
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), kws)
	}
	// "common" appears on every object.
	got := tr.EstimateKeywords([]string{"common"})
	if rel := math.Abs(got-n) / n; rel > 0.15 {
		t.Errorf("common keyword estimate %v, want ~%d", got, n)
	}
	// "rare" appears on 10%: collisions may inflate, so allow headroom
	// above but require at least the true frequency.
	got = tr.EstimateKeywords([]string{"rare"})
	if got < 0.08*n || got > 0.35*n {
		t.Errorf("rare keyword estimate %v, want ~%d", got, n/10)
	}
	// Unknown keyword may only pick up collision mass.
	got = tr.EstimateKeywords([]string{"nonexistent-kw-xyz"})
	if got > 0.3*n {
		t.Errorf("unknown keyword estimate too high: %v", got)
	}
}

func TestHybridEstimateUsesLocalCorrelation(t *testing.T) {
	// Keyword "fire" only occurs in the north-east; a south-west hybrid
	// query should estimate near zero even though "fire" is common overall.
	tr := newTestTree(Config{SplitThreshold: 64, MaxNodes: 1 << 14})
	rng := rand.New(rand.NewSource(6))
	const n = 20000
	for i := 0; i < n; i++ {
		p := geo.Pt(rng.Float64(), rng.Float64())
		kws := []string{"base"}
		if p.X > 0.5 && p.Y > 0.5 {
			kws = append(kws, "fire")
		}
		tr.Insert(p, kws)
	}
	sw := geo.Rect{MinX: 0, MinY: 0, MaxX: 0.4, MaxY: 0.4}
	ne := geo.Rect{MinX: 0.6, MinY: 0.6, MaxX: 1, MaxY: 1}
	swEst := tr.EstimateRangeKeywords(sw, []string{"fire"})
	neEst := tr.EstimateRangeKeywords(ne, []string{"fire"})
	if neEst < 5*math.Max(swEst, 1) {
		t.Errorf("local correlation lost: sw=%v ne=%v", swEst, neEst)
	}
	// NE truth: all ~0.16*n objects there carry "fire".
	want := 0.16 * float64(n)
	if rel := math.Abs(neEst-want) / want; rel > 0.3 {
		t.Errorf("ne estimate %v, want ~%v", neEst, want)
	}
}

func TestAdvanceSliceExpiresCounts(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 100, Slices: 4})
	for i := 0; i < 1000; i++ {
		tr.Insert(geo.Pt(0.5, 0.5), []string{"k"})
	}
	if tr.Live() != 1000 {
		t.Fatalf("Live = %d", tr.Live())
	}
	// Counts live for Slices-1 more advances, then expire.
	for i := 0; i < 3; i++ {
		tr.AdvanceSlice()
		if tr.Live() != 1000 {
			t.Fatalf("Live after %d advances = %d, want 1000", i+1, tr.Live())
		}
	}
	tr.AdvanceSlice()
	if tr.Live() != 0 {
		t.Fatalf("Live after expiry = %d, want 0", tr.Live())
	}
	if got := tr.EstimateRange(geo.UnitSquare); got != 0 {
		t.Fatalf("estimate after expiry = %v", got)
	}
	if got := tr.EstimateKeywords([]string{"k"}); got != 0 {
		t.Fatalf("keyword estimate after expiry = %v", got)
	}
}

func TestCollapseReclaimsNodes(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 8, Slices: 2, MaxNodes: 1 << 14})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
	}
	grown := tr.NodeCount()
	if grown < 100 {
		t.Fatalf("tree did not grow: %d nodes", grown)
	}
	tr.AdvanceSlice()
	tr.AdvanceSlice() // everything expired
	if tr.Live() != 0 {
		t.Fatalf("Live = %d", tr.Live())
	}
	if tr.NodeCount() != 1 {
		t.Fatalf("collapse left %d nodes, want 1", tr.NodeCount())
	}
	// The tree keeps working after a full collapse.
	tr.Insert(geo.Pt(0.5, 0.5), []string{"x"})
	if tr.Live() != 1 {
		t.Fatalf("post-collapse insert lost: Live = %d", tr.Live())
	}
}

func TestSlidingWindowMatchesSteadyState(t *testing.T) {
	// Continuous arrival with periodic advances: live count must track
	// exactly the inserts of the last `Slices` slices.
	tr := newTestTree(Config{SplitThreshold: 50, Slices: 5})
	perSlice := 200
	for s := 0; s < 20; s++ {
		for i := 0; i < perSlice; i++ {
			tr.Insert(geo.Pt(rand.New(rand.NewSource(int64(s*1000+i))).Float64(), 0.5), nil)
		}
		if s >= 4 {
			if tr.Live() != perSlice*5 {
				t.Fatalf("slice %d: Live = %d, want %d", s, tr.Live(), perSlice*5)
			}
		}
		tr.AdvanceSlice()
	}
}

func TestResetAndMemory(t *testing.T) {
	tr := newTestTree(Config{SplitThreshold: 4})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), []string{fmt.Sprintf("k%d", i%50)})
	}
	memGrown := tr.MemoryBytes()
	tr.Reset()
	if tr.Live() != 0 || tr.NodeCount() != 1 {
		t.Fatalf("Reset incomplete: live=%d nodes=%d", tr.Live(), tr.NodeCount())
	}
	if tr.MemoryBytes() >= memGrown {
		t.Errorf("memory did not shrink after Reset: %d >= %d", tr.MemoryBytes(), memGrown)
	}
	if tr.DistinctKeywords() != 0 {
		t.Errorf("synopsis not reset: %v", tr.DistinctKeywords())
	}
}

func TestDistinctKeywords(t *testing.T) {
	tr := newTestTree(Config{})
	for i := 0; i < 500; i++ {
		tr.Insert(geo.Pt(0.5, 0.5), []string{fmt.Sprintf("kw%d", i%100)})
	}
	got := tr.DistinctKeywords()
	if got != 100 { // below KMV k: exact
		t.Errorf("DistinctKeywords = %v, want 100", got)
	}
}

func TestInvalidWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(geo.Rect{}, Config{})
}

func BenchmarkTreeInsert(b *testing.B) {
	tr := newTestTree(Config{SplitThreshold: 256, MaxNodes: 1 << 14})
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 4096)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64(), rng.Float64())
	}
	kws := []string{"a", "b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i&4095], kws)
		if i%100_000 == 99_999 {
			tr.AdvanceSlice()
		}
	}
}

func BenchmarkTreeEstimate(b *testing.B) {
	tr := newTestTree(Config{SplitThreshold: 128, MaxNodes: 1 << 14})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200_000; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), []string{"a"})
	}
	r := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.EstimateRangeKeywords(r, []string{"a"})
	}
}
