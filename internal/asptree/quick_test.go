package asptree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spatiotext/latest/internal/geo"
)

// Property: with no slice advances, the whole-world estimate equals the
// exact insert count regardless of split structure — every point is
// counted by exactly one node.
func TestWholeWorldCountExact(t *testing.T) {
	f := func(seed int64, nRaw uint16, threshRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%3000 + 1
		thresh := int(threshRaw)%200 + 2
		tr := New(geo.UnitSquare, Config{SplitThreshold: thresh, MaxNodes: 1 << 14})
		for i := 0; i < n; i++ {
			tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), nil)
		}
		got := tr.EstimateRange(geo.UnitSquare)
		return got > float64(n)-1e-6 && got < float64(n)+1e-6 && tr.Live() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: estimates are monotone under range growth — a superset range
// never estimates fewer points.
func TestEstimateMonotoneInRange(t *testing.T) {
	tr := New(geo.UnitSquare, Config{SplitThreshold: 32, MaxNodes: 1 << 14})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		tr.Insert(geo.Pt(rng.Float64()*rng.Float64(), rng.Float64()), nil)
	}
	f := func(cxRaw, cyRaw, wRaw, hRaw, growRaw uint16) bool {
		cx := float64(cxRaw) / 65536
		cy := float64(cyRaw) / 65536
		w := float64(wRaw)/65536*0.5 + 1e-6
		h := float64(hRaw)/65536*0.5 + 1e-6
		grow := float64(growRaw) / 65536 * 0.3
		inner := geo.CenteredRect(geo.Pt(cx, cy), w, h)
		outer := inner.Expand(grow)
		return tr.EstimateRange(outer) >= tr.EstimateRange(inner)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: keyword estimates never exceed the spatial estimate for the
// same range (the keyword predicate only filters).
func TestKeywordEstimateBounded(t *testing.T) {
	tr := New(geo.UnitSquare, Config{SplitThreshold: 64})
	rng := rand.New(rand.NewSource(6))
	kws := []string{"a", "b", "c", "d"}
	for i := 0; i < 10000; i++ {
		tr.Insert(geo.Pt(rng.Float64(), rng.Float64()), kws[:1+rng.Intn(2)])
	}
	f := func(cxRaw, cyRaw, sRaw uint16, kwPick uint8) bool {
		cx := float64(cxRaw) / 65536
		cy := float64(cyRaw) / 65536
		s := float64(sRaw)/65536*0.6 + 0.01
		r := geo.CenteredRect(geo.Pt(cx, cy), s, s)
		kw := kws[int(kwPick)%len(kws)]
		spatial := tr.EstimateRange(r)
		both := tr.EstimateRangeKeywords(r, []string{kw})
		return both <= spatial+1e-9 && both >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
