package asptree

import (
	"github.com/spatiotext/latest/internal/kmv"
	"github.com/spatiotext/latest/internal/persist"
)

// SaveState serializes the tree: counters, a preorder walk of the nodes,
// then the keyword synopsis. Node bounds and depths are not written — they
// re-derive deterministically from the world rectangle via Quadrants on
// load, because a node either has all four children or none.
func (t *Tree) SaveState(e *persist.Enc) {
	e.Int(t.nodes)
	e.Int(t.cur)
	e.U32(t.totalLive)
	saveNode(e, t.root)
	t.synopsis.SaveState(e)
}

func saveNode(e *persist.Enc, n *node) {
	e.Bool(n.children != nil)
	e.U32s(n.slices)
	e.U32(n.live)
	e.U32s(n.kw)
	e.U32s(n.kwLive)
	if n.children != nil {
		for i := range n.children {
			saveNode(e, &n.children[i])
		}
	}
}

// LoadState restores a tree saved under the same Config and world
// rectangle. The restore is atomic: the receiver is untouched on error.
func (t *Tree) LoadState(d *persist.Dec) error {
	const op = "asp tree"
	nodes := d.Int()
	cur := d.Int()
	totalLive := d.U32()
	if d.Err() != nil {
		return d.Err()
	}
	if cur < 0 || cur >= t.cfg.Slices {
		return persist.Errf(persist.CodeMalformed, op, "slice %d of %d", cur, t.cfg.Slices)
	}
	if nodes < 1 || nodes > t.cfg.MaxNodes {
		return persist.Errf(persist.CodeMalformed, op, "node count %d (cap %d)", nodes, t.cfg.MaxNodes)
	}
	root := t.newNode(t.root.bounds, 0)
	read, liveSum := 1, uint32(0)
	if err := t.loadNode(d, root, &read, nodes, &liveSum); err != nil {
		return err
	}
	if read != nodes {
		return persist.Errf(persist.CodeMalformed, op, "%d nodes decoded, header says %d", read, nodes)
	}
	if liveSum != totalLive {
		return persist.Errf(persist.CodeMalformed, op, "live sum %d, header says %d", liveSum, totalLive)
	}
	syn := kmv.NewSliced(synopsisK, t.cfg.Slices)
	if err := syn.LoadState(d); err != nil {
		return err
	}
	t.root, t.nodes, t.cur, t.totalLive, t.synopsis = root, nodes, cur, totalLive, syn
	return nil
}

func (t *Tree) loadNode(d *persist.Dec, n *node, read *int, limit int, liveSum *uint32) error {
	const op = "asp node"
	hasChildren := d.Bool()
	slices := d.U32s()
	live := d.U32()
	kw := d.U32s()
	kwLive := d.U32s()
	if d.Err() != nil {
		return d.Err()
	}
	S, B := t.cfg.Slices, t.cfg.KeywordBuckets
	if len(slices) != S || len(kw) != B*S || len(kwLive) != B {
		return persist.Errf(persist.CodeMismatch, op,
			"ring shapes %d/%d/%d, config wants %d/%d/%d",
			len(slices), len(kw), len(kwLive), S, B*S, B)
	}
	copy(n.slices, slices)
	n.live = live
	*liveSum += live
	copy(n.kw, kw)
	copy(n.kwLive, kwLive)
	if !hasChildren {
		return nil
	}
	if n.depth >= t.cfg.MaxDepth {
		return persist.Errf(persist.CodeMalformed, op, "children below max depth %d", t.cfg.MaxDepth)
	}
	*read += 4
	if *read > limit {
		return persist.Errf(persist.CodeMalformed, op, "more nodes than the header's %d", limit)
	}
	quads := n.bounds.Quadrants()
	var ch [4]node
	for i := range ch {
		ch[i] = *t.newNode(quads[i], n.depth+1)
	}
	n.children = &ch
	for i := range n.children {
		if err := t.loadNode(d, &n.children[i], read, limit, liveSum); err != nil {
			return err
		}
	}
	return nil
}
