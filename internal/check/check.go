// Package check is the repository's correctness-verification subsystem.
// It proves, rather than assumes, that the three deployment shapes of the
// public API — System, ConcurrentSystem and ShardedSystem — still serve the
// paper's RC-DVQ semantics after every layer of sharding, telemetry and
// resilience added on top, and that the exact window store itself agrees
// with a second, independently written implementation of the query
// definition.
//
// Three pillars (DESIGN.md §9):
//
//   - Differential testing (differential.go): one deterministic workload is
//     fed into all three engines configured for bit-reproducibility plus a
//     brute-force oracle; exact counts, estimates, switch decisions and
//     stats snapshots must agree at every step.
//   - Metamorphic properties (metamorphic.go): RC-DVQ identities that must
//     hold whatever the data — growing R/W/T never shrinks the exact count,
//     quadrants partition a count exactly, keyword order is irrelevant —
//     plus per-estimator statistical error envelopes.
//   - Golden replay (golden.go): a checked-in object trace replayed through
//     a deterministic System, diffed against checked-in count and
//     decision-trace files, so silent semantic drift fails a readable diff.
//
// The same entry points back both the go test suites in this directory
// (short mode runs in seconds; -tags slowcheck unlocks the 10k-step runs)
// and the cmd/latest-check CI binary.
package check

import (
	"math"

	"github.com/spatiotext/latest/internal/stream"
)

// Oracle is a brute-force RC-DVQ evaluator: a flat slice of live objects,
// scanned linearly per query. It is written from the query definition in
// the paper (§III) on purpose — no grid, no inverted index, no code shared
// with internal/stream — so that a bug in the window store's index
// maintenance cannot hide inside an identical bug here.
//
// Semantics mirrored from the definition: the window holds objects of the
// last span milliseconds, eviction is physical (an object dropped because
// of one query's timestamp never reappears for a later, older-stamped
// query), rectangles are min-closed/max-open, the keyword predicate is
// "carries at least one of W", and a query with no predicate — or a
// non-finite, inverted or degenerate rectangle — counts zero.
type Oracle struct {
	span int64
	objs []oracleObj
	head int
}

type oracleObj struct {
	x, y float64
	kws  []string
	ts   int64
}

// NewOracle builds an oracle keeping the last span milliseconds.
func NewOracle(span int64) *Oracle {
	if span <= 0 {
		panic("check: oracle span must be positive")
	}
	return &Oracle{span: span}
}

// Insert appends one object and expires everything older than its window.
// Keywords are copied; the caller may reuse the slice.
func (o *Oracle) Insert(obj *stream.Object) {
	o.objs = append(o.objs, oracleObj{
		x:   obj.Loc.X,
		y:   obj.Loc.Y,
		kws: append([]string(nil), obj.Keywords...),
		ts:  obj.Timestamp,
	})
	o.Advance(obj.Timestamp)
}

// Advance expires every object with timestamp < ts-span. Like the real
// store's eviction it only ever moves forward: a ts older than a previous
// one is a no-op, not a resurrection.
func (o *Oracle) Advance(ts int64) {
	cutoff := ts - o.span
	for o.head < len(o.objs) && o.objs[o.head].ts < cutoff {
		o.head++
	}
	if o.head > 1024 && o.head*2 >= len(o.objs) {
		n := copy(o.objs, o.objs[o.head:])
		o.objs = o.objs[:n]
		o.head = 0
	}
}

// Size returns the number of live objects.
func (o *Oracle) Size() int { return len(o.objs) - o.head }

// Count advances the window to the query's timestamp and then answers the
// RC-DVQ by linear scan.
func (o *Oracle) Count(q *stream.Query) int {
	o.Advance(q.Timestamp)
	return o.CountLive(q)
}

// CountLive answers the query over the current live set without advancing
// the window — the form the metamorphic suite uses so that many query
// variants observe the identical snapshot.
func (o *Oracle) CountLive(q *stream.Query) int {
	if !queryMeaningful(q) {
		return 0
	}
	total := 0
	for i := o.head; i < len(o.objs); i++ {
		if o.matches(&o.objs[i], q) {
			total++
		}
	}
	return total
}

// queryMeaningful re-derives the validity rule: at least one predicate, and
// a present rectangle must be finite, ordered and of positive area.
func queryMeaningful(q *stream.Query) bool {
	if !q.HasRange && len(q.Keywords) == 0 {
		return false
	}
	if q.HasRange {
		r := q.Range
		for _, v := range [...]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		if r.MaxX <= r.MinX || r.MaxY <= r.MinY {
			return false
		}
	}
	return true
}

func (o *Oracle) matches(obj *oracleObj, q *stream.Query) bool {
	if q.HasRange {
		r := q.Range
		if obj.x < r.MinX || obj.x >= r.MaxX || obj.y < r.MinY || obj.y >= r.MaxY {
			return false
		}
	}
	if len(q.Keywords) > 0 {
		found := false
	scan:
		for _, want := range q.Keywords {
			for _, have := range obj.kws {
				if have == want {
					found = true
					break scan
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}
