package check

import (
	"math"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

func obj(id uint64, x, y float64, ts int64, kws ...string) stream.Object {
	return stream.Object{ID: id, Loc: geo.Pt(x, y), Keywords: kws, Timestamp: ts}
}

func TestOracleWindowSemantics(t *testing.T) {
	o := NewOracle(1000)
	for i, spec := range []struct {
		x, y float64
		ts   int64
		kws  []string
	}{
		{1, 1, 0, []string{"fire"}},
		{2, 2, 400, []string{"flood"}},
		{3, 3, 900, []string{"fire", "flood"}},
	} {
		ob := obj(uint64(i), spec.x, spec.y, spec.ts, spec.kws...)
		o.Insert(&ob)
	}
	if o.Size() != 3 {
		t.Fatalf("size = %d, want 3", o.Size())
	}

	all := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 900)
	if got := o.Count(&all); got != 3 {
		t.Errorf("count all = %d, want 3", got)
	}
	// Advancing to ts=1001 evicts the ts=0 object (cutoff 1, and 0 < 1).
	late := stream.KeywordQ([]string{"fire"}, 1001)
	if got := o.Count(&late); got != 1 {
		t.Errorf("count fire after eviction = %d, want 1", got)
	}
	// Eviction is permanent: an older query timestamp cannot resurrect.
	early := stream.KeywordQ([]string{"fire"}, 500)
	if got := o.Count(&early); got != 1 {
		t.Errorf("count fire at regressed ts = %d, want 1 (no resurrection)", got)
	}
}

func TestOracleRectEdges(t *testing.T) {
	o := NewOracle(1_000_000)
	for i, p := range []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 10, Y: 10}} {
		ob := obj(uint64(i), p.X, p.Y, 0, "k")
		o.Insert(&ob)
	}
	// Min edge closed, max edge open: exactly the (0,0) and (5,5) points.
	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 0)
	if got := o.Count(&q); got != 2 {
		t.Errorf("half-open count = %d, want 2", got)
	}
}

func TestOracleInvalidQueries(t *testing.T) {
	o := NewOracle(1000)
	ob := obj(1, 1, 1, 0, "fire")
	o.Insert(&ob)
	for name, q := range map[string]stream.Query{
		"no predicates": {Timestamp: 0},
		"nan rect":      stream.SpatialQ(geo.Rect{MinX: math.NaN(), MaxX: 1, MaxY: 1}, 0),
		"inf rect":      stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: math.Inf(1), MaxY: 1}, 0),
		"inverted":      stream.SpatialQ(geo.Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}, 0),
		"degenerate":    stream.SpatialQ(geo.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 2}, 0),
	} {
		q := q
		if got := o.Count(&q); got != 0 {
			t.Errorf("%s: count = %d, want 0", name, got)
		}
	}
}

// TestDifferentialShort is the short-mode differential gate: all three
// engines and the brute-force oracle must agree on every count, estimate
// and switching decision of a phase-changing workload.
func TestDifferentialShort(t *testing.T) {
	report, err := RunDifferential(DefaultDiffConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report.Summary())
	for _, d := range report.Details {
		t.Errorf("divergence: %s", d)
	}
	if !report.Ok() {
		t.Fatalf("differential run diverged: %s", report.Summary())
	}
	if report.Switches == 0 {
		t.Error("differential run exercised no estimator switches; workload too tame to verify switching agreement")
	}
	if report.FinalWindow == 0 {
		t.Error("final window empty; run too short to exercise eviction")
	}
}

// TestDifferentialSeeds varies the seed so agreement is not an artifact of
// one lucky RNG stream.
func TestDifferentialSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single-seed differential only")
	}
	for _, seed := range []int64{2, 42} {
		cfg := DefaultDiffConfig()
		cfg.Seed = seed
		cfg.Queries = 200
		report, err := RunDifferential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Ok() {
			for _, d := range report.Details {
				t.Errorf("seed %d divergence: %s", seed, d)
			}
			t.Fatalf("seed %d: %s", seed, report.Summary())
		}
	}
}
