package check

import (
	"fmt"
	"strings"
)

// DiffLines renders the first maxShown differing lines of two texts, for
// golden-file mismatch reports in both the test suite and cmd/latest-check.
func DiffLines(want, got string, maxShown int) []string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	var out []string
	for i := 0; i < n && len(out) < maxShown; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			out = append(out, fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, wl, gl))
		}
	}
	return out
}
