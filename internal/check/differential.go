package check

import (
	"fmt"
	"hash/fnv"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/workload"
)

// DeterministicLatencyModel is the WithLatencyModel function the harness
// installs in every engine: a fixed synthetic latency per estimator name,
// loosely following the paper's relative costs (histogram lookups are
// cheap, sample scans and learned-model inference are not). With measured
// wall time out of the training signal, the α-weighted switching decisions
// of two runs — or of three engines fed the same stream — are
// bit-identical.
func DeterministicLatencyModel(name string, _ *latest.Query, _ time.Duration) time.Duration {
	switch name {
	case latest.EstimatorH4096:
		return 50 * time.Microsecond
	case latest.EstimatorAASP:
		return 80 * time.Microsecond
	case latest.EstimatorRSH:
		return 120 * time.Microsecond
	case latest.EstimatorFFN:
		return 200 * time.Microsecond
	case latest.EstimatorSPN:
		return 300 * time.Microsecond
	case latest.EstimatorRSL:
		return 400 * time.Microsecond
	default:
		// Custom estimators get a stable pseudo-latency from their name so
		// the model still ranks them deterministically.
		h := fnv.New32a()
		h.Write([]byte(name))
		return time.Duration(100+h.Sum32()%400) * time.Microsecond
	}
}

// DiffConfig parameterizes one differential run. The zero value is not
// runnable; use DefaultDiffConfig for the CI shape.
type DiffConfig struct {
	Dataset  string // datagen preset: Twitter, eBird, CheckIn
	Workload string // workload preset, e.g. TwQW1
	Seed     int64
	// Queries is the number of query steps; ObjectsPerQuery objects are fed
	// before each, so the run makes Queries*(ObjectsPerQuery+1) steps.
	Queries         int
	ObjectsPerQuery int
	Window          time.Duration
	Rate            float64 // objects per virtual millisecond
	Pretrain        int     // pre-training phase length
	AccWindow       int
	Alpha           float64
	Tau             float64 // switch threshold; zero keeps the engine default
	// MemoryScale shrinks estimator capacities (zero keeps 1.0). At harness
	// scale the default capacities cover the whole window, making every
	// estimator near-exact and switching pressure nil; a small scale
	// restores the paper's capacity-to-window ratio.
	MemoryScale float64
	// CheckEvery is the cadence (in queries) of the deep coherence check
	// over stats snapshots, switch histories and decision traces; counts
	// and estimates are compared on every query regardless. Zero = 50.
	CheckEvery int
	// MaxDetails caps the recorded mismatch detail strings (zero = 20).
	MaxDetails int
}

// DefaultDiffConfig is the short-mode differential run: a phase-changing
// workload that actually exercises estimator switches, small enough for
// seconds-scale test time.
func DefaultDiffConfig() DiffConfig {
	return DiffConfig{
		Dataset:         "Twitter",
		Workload:        "TwQW1",
		Seed:            1,
		Queries:         400,
		ObjectsPerQuery: 20,
		Window:          8 * time.Second,
		Rate:            1,
		Pretrain:        120,
		AccWindow:       60,
		Alpha:           0.5,
		// A tenth of the default estimator memory restores the paper's
		// capacity-to-window ratio at harness scale, so the run actually
		// exercises estimator switches rather than six near-exact summaries.
		MemoryScale: 0.1,
	}
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	Config      DiffConfig
	FeedSteps   int
	QuerySteps  int
	Switches    int // switch events observed on the reference engine
	FinalActive string
	FinalWindow int

	CountMismatches     int
	EstimateMismatches  int
	StateMismatches     int // active-estimator / phase disagreement
	DecisionDivergences int
	StatsDivergences    int

	// Details holds the first MaxDetails human-readable mismatch
	// descriptions.
	Details []string
}

// Steps returns the total feed+query step count of the run.
func (r *DiffReport) Steps() int { return r.FeedSteps + r.QuerySteps }

// Mismatches returns the total number of divergences of any kind.
func (r *DiffReport) Mismatches() int {
	return r.CountMismatches + r.EstimateMismatches + r.StateMismatches +
		r.DecisionDivergences + r.StatsDivergences
}

// Ok reports whether the run was divergence-free.
func (r *DiffReport) Ok() bool { return r.Mismatches() == 0 }

// Summary renders a one-line verdict.
func (r *DiffReport) Summary() string {
	return fmt.Sprintf("differential %s/%s seed=%d: %d steps (%d feeds, %d queries), %d switches, window=%d, active=%s — %d mismatches (counts=%d estimates=%d state=%d decisions=%d stats=%d)",
		r.Config.Dataset, r.Config.Workload, r.Config.Seed,
		r.Steps(), r.FeedSteps, r.QuerySteps, r.Switches, r.FinalWindow, r.FinalActive,
		r.Mismatches(), r.CountMismatches, r.EstimateMismatches,
		r.StateMismatches, r.DecisionDivergences, r.StatsDivergences)
}

func (r *DiffReport) note(kind *int, format string, args ...any) {
	*kind++
	max := r.Config.MaxDetails
	if max == 0 {
		max = 20
	}
	if len(r.Details) < max {
		r.Details = append(r.Details, fmt.Sprintf(format, args...))
	}
}

// engine adapts the three public deployment shapes to one comparable
// surface.
type engine struct {
	name string
	// eng carries the whole serving surface — feeds, queries, stats — so
	// the harness exercises exactly the unified public contract every
	// deployment shape implements.
	eng latest.Engine
	// The remaining accessors are shape-specific diagnostics the Engine
	// interface deliberately does not carry.
	active  func() string
	phase   func() latest.Phase
	winSize func() int
}

// RunDifferential feeds one deterministic workload into System,
// ConcurrentSystem and a 1-shard synchronous-prefill ShardedSystem plus the
// brute-force oracle, comparing counts, estimates, switching state and
// stats snapshots at every step. The returned report is non-nil whenever
// err is nil, even when it records mismatches.
func RunDifferential(cfg DiffConfig) (*DiffReport, error) {
	if cfg.Queries <= 0 || cfg.ObjectsPerQuery <= 0 {
		return nil, fmt.Errorf("check: Queries and ObjectsPerQuery must be positive, got %d/%d", cfg.Queries, cfg.ObjectsPerQuery)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 50
	}

	gen := datagen.ByName(cfg.Dataset, cfg.Seed, cfg.Rate)
	spec := workload.ByName(cfg.Workload)
	queries := workload.NewGenerator(spec, gen, cfg.Queries)
	world := gen.World()

	opts := []latest.Option{
		latest.WithSeed(cfg.Seed),
		latest.WithPretrainQueries(cfg.Pretrain),
		latest.WithAccWindow(cfg.AccWindow),
		latest.WithAlpha(cfg.Alpha),
		latest.WithLatencyModel(DeterministicLatencyModel),
		// A CI scheduler stall must not turn into a deadline fault on one
		// engine but not another; estimator faults are chaos_test.go's
		// subject, not this harness's.
		latest.WithBreaker(latest.BreakerConfig{Deadline: 10 * time.Minute}),
	}
	if cfg.Tau > 0 {
		opts = append(opts, latest.WithTau(cfg.Tau))
	}
	if cfg.MemoryScale > 0 {
		opts = append(opts, latest.WithMemoryScale(cfg.MemoryScale))
	}

	sys, err := latest.New(world, cfg.Window, opts...)
	if err != nil {
		return nil, fmt.Errorf("check: build System: %w", err)
	}
	conc, err := latest.NewConcurrent(world, cfg.Window, opts...)
	if err != nil {
		return nil, fmt.Errorf("check: build ConcurrentSystem: %w", err)
	}
	shard, err := latest.NewSharded(world, cfg.Window,
		append(append([]latest.Option(nil), opts...),
			latest.WithShards(1), latest.WithSynchronousPrefill())...)
	if err != nil {
		return nil, fmt.Errorf("check: build ShardedSystem: %w", err)
	}
	defer shard.Close()

	engines := []engine{
		{
			name: "system", eng: sys,
			active:  sys.ActiveEstimator,
			phase:   sys.Phase,
			winSize: sys.WindowSize,
		},
		{
			name: "concurrent", eng: conc,
			active:  conc.ActiveEstimator,
			phase:   conc.Phase,
			winSize: conc.WindowSize,
		},
		{
			name: "sharded1", eng: shard,
			active:  func() string { return shard.ActiveEstimators()[0] },
			phase:   shard.Phase,
			winSize: shard.WindowSize,
		},
	}

	oracle := NewOracle(cfg.Window.Milliseconds())
	report := &DiffReport{Config: cfg}

	for qi := 0; qi < cfg.Queries; qi++ {
		for j := 0; j < cfg.ObjectsPerQuery; j++ {
			o := gen.Next()
			for _, e := range engines {
				e.eng.Feed(o)
			}
			oracle.Insert(&o)
			report.FeedSteps++
		}

		q := queries.Next(gen.Now())
		want := oracle.Count(&q)
		report.QuerySteps++

		var ests [3]float64
		var acts [3]int
		for i, e := range engines {
			// Each engine gets its own copy: ValidationClamp repairs in
			// place, and a shared struct would let one engine's repair leak
			// into the next engine's input.
			qc := q
			ests[i], acts[i] = e.eng.EstimateAndExecute(&qc)
		}
		for i, e := range engines {
			if acts[i] != want {
				report.note(&report.CountMismatches,
					"q%d %s: %s exact count %d, oracle %d", qi, q.Type(), e.name, acts[i], want)
			}
		}
		for i := 1; i < len(engines); i++ {
			if ests[i] != ests[0] {
				report.note(&report.EstimateMismatches,
					"q%d %s: %s estimate %v, %s estimate %v", qi, q.Type(),
					engines[i].name, ests[i], engines[0].name, ests[0])
			}
		}
		a0, p0 := engines[0].active(), engines[0].phase()
		for i := 1; i < len(engines); i++ {
			if a, p := engines[i].active(), engines[i].phase(); a != a0 || p != p0 {
				report.note(&report.StateMismatches,
					"q%d: %s active=%s phase=%v, %s active=%s phase=%v", qi,
					engines[i].name, a, p, engines[0].name, a0, p0)
			}
		}

		if (qi+1)%cfg.CheckEvery == 0 || qi == cfg.Queries-1 {
			compareDeep(report, qi, engines, oracle)
		}
	}

	report.Switches = len(sys.Stats().Decisions)
	report.FinalActive = engines[0].active()
	report.FinalWindow = oracle.Size()
	return report, nil
}

// compareDeep cross-checks window occupancy against the oracle and the
// deterministic parts of the stats snapshots, switch histories and
// decision traces across engines.
func compareDeep(report *DiffReport, qi int, engines []engine, oracle *Oracle) {
	for _, e := range engines {
		if ws := e.winSize(); ws != oracle.Size() {
			report.note(&report.StatsDivergences,
				"q%d: %s window size %d, oracle %d", qi, e.name, ws, oracle.Size())
		}
	}
	ref := engines[0].eng.Stats()
	for i := 1; i < len(engines); i++ {
		st := engines[i].eng.Stats()
		diffStats(report, qi, engines[i].name, &st, engines[0].name, &ref)
	}
}

// diffStats compares every wall-clock-free Stats field. EstimateLatency
// and Decision.WallTime are genuinely nondeterministic (they time the host)
// and are skipped.
func diffStats(report *DiffReport, qi int, name string, got *latest.Stats, refName string, want *latest.Stats) {
	mismatch := func(field string, g, w any) {
		report.note(&report.StatsDivergences,
			"q%d stats.%s: %s=%v, %s=%v", qi, field, name, g, refName, w)
	}
	if got.Phase != want.Phase {
		mismatch("Phase", got.Phase, want.Phase)
	}
	if got.Active != want.Active {
		mismatch("Active", got.Active, want.Active)
	}
	if got.Prefilling != want.Prefilling {
		mismatch("Prefilling", got.Prefilling, want.Prefilling)
	}
	if got.PretrainSeen != want.PretrainSeen {
		mismatch("PretrainSeen", got.PretrainSeen, want.PretrainSeen)
	}
	if got.IncrementalSeen != want.IncrementalSeen {
		mismatch("IncrementalSeen", got.IncrementalSeen, want.IncrementalSeen)
	}
	if got.Switches != want.Switches {
		mismatch("Switches", got.Switches, want.Switches)
	}
	if got.TrainingRecords != want.TrainingRecords {
		mismatch("TrainingRecords", got.TrainingRecords, want.TrainingRecords)
	}
	if got.TreeNodes != want.TreeNodes {
		mismatch("TreeNodes", got.TreeNodes, want.TreeNodes)
	}
	if got.TreeSplits != want.TreeSplits {
		mismatch("TreeSplits", got.TreeSplits, want.TreeSplits)
	}
	if got.ModelRetrains != want.ModelRetrains {
		mismatch("ModelRetrains", got.ModelRetrains, want.ModelRetrains)
	}
	if got.AccuracyAvg != want.AccuracyAvg {
		mismatch("AccuracyAvg", got.AccuracyAvg, want.AccuracyAvg)
	}
	if got.MemoryBytes != want.MemoryBytes {
		mismatch("MemoryBytes", got.MemoryBytes, want.MemoryBytes)
	}
	if len(got.QError) != len(want.QError) {
		mismatch("len(QError)", len(got.QError), len(want.QError))
	} else {
		for i := range got.QError {
			if got.QError[i] != want.QError[i] {
				mismatch(fmt.Sprintf("QError[%d]", i), got.QError[i], want.QError[i])
			}
		}
	}
	if len(got.Decisions) != len(want.Decisions) {
		mismatch("len(Decisions)", len(got.Decisions), len(want.Decisions))
		return
	}
	for i := range got.Decisions {
		g, w := got.Decisions[i], want.Decisions[i]
		if !decisionsEqual(&g, &w) {
			report.note(&report.DecisionDivergences,
				"q%d decision[%d]: %s %s→%s(%s) @q%d, %s %s→%s(%s) @q%d", qi, i,
				name, g.From, g.To, g.Reason, g.QueryIndex,
				refName, w.From, w.To, w.Reason, w.QueryIndex)
		}
	}
}

// decisionsEqual compares the deterministic fields of two switch-decision
// audit records — everything except WallTime (host clock) and Shard (the
// sharded engine stamps its shard index, trivially 0 here but semantically
// an addressing detail, not a decision).
func decisionsEqual(a, b *latest.Decision) bool {
	if a.QueryIndex != b.QueryIndex || a.Timestamp != b.Timestamp ||
		a.From != b.From || a.To != b.To || a.Reason != b.Reason ||
		a.AccuracyAvg != b.AccuracyAvg || a.QueryType != b.QueryType ||
		a.Prefilled != b.Prefilled ||
		a.Recommended != b.Recommended || a.Confidence != b.Confidence ||
		a.RunnerUp != b.RunnerUp || a.RunnerUpConf != b.RunnerUpConf {
		return false
	}
	if len(a.Features) != len(b.Features) || len(a.QError) != len(b.QError) {
		return false
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			return false
		}
	}
	for i := range a.QError {
		if a.QError[i] != b.QError[i] {
			return false
		}
	}
	return true
}

// buildStandalone constructs one registered estimator directly — the
// envelope suite drives estimators outside any engine so their raw error
// is measured, not the switching module's.
func buildStandalone(name string, p estimator.Params) (estimator.Estimator, error) {
	return estimator.DefaultRegistry().Build(name, p)
}
