package check

import (
	"fmt"
	"math"
	"time"

	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/workload"
)

// envelope.go bounds each estimator's statistical error on a fixed
// deterministic workload. The envelopes are deliberately loose — they are
// not benchmarks but tripwires: a regression that makes an estimator
// drastically wrong (unit mix-up, broken expiry, inverted predicate) blows
// through them, while ordinary estimation noise does not. Hard invariants
// (finite, non-negative estimates) are checked on every single query.

// Envelope is one estimator's documented error budget on the envelope
// workload.
type Envelope struct {
	// MinMeanAccuracy lower-bounds the mean paper-accuracy
	// (1 − relative error, clamped to [0,1]) over the scored queries.
	MinMeanAccuracy float64
	// MaxMeanQError upper-bounds the mean symmetric multiplicative error.
	MaxMeanQError float64
}

// DefaultEnvelopes is the documented budget per built-in estimator on
// DefaultEnvelopeConfig. Values were measured on seeds 1/7/42 and widened
// by roughly a third; the calibration table lives in envelope_test.go.
func DefaultEnvelopes() map[string]Envelope {
	return map[string]Envelope{
		estimator.NameH4096: {MinMeanAccuracy: 0.35, MaxMeanQError: 14.0},
		estimator.NameRSL:   {MinMeanAccuracy: 0.90, MaxMeanQError: 1.5},
		estimator.NameRSH:   {MinMeanAccuracy: 0.90, MaxMeanQError: 1.5},
		estimator.NameAASP:  {MinMeanAccuracy: 0.28, MaxMeanQError: 5.0},
		estimator.NameFFN:   {MinMeanAccuracy: 0.08, MaxMeanQError: 15.0},
		estimator.NameSPN:   {MinMeanAccuracy: 0.26, MaxMeanQError: 9.0},
	}
}

// EnvelopeConfig parameterizes the envelope run.
type EnvelopeConfig struct {
	Dataset         string
	Workload        string
	Seed            int64
	Queries         int
	ObjectsPerQuery int
	Window          time.Duration
	Rate            float64
	// Warmup is how many leading queries feed the estimator ground truth
	// without being scored, so workload-driven estimators (FFN) get the
	// training phase the engine would give them.
	Warmup int
}

// DefaultEnvelopeConfig is the short-mode shape.
func DefaultEnvelopeConfig() EnvelopeConfig {
	return EnvelopeConfig{
		Dataset:         "Twitter",
		Workload:        "TwQW3",
		Seed:            1,
		Queries:         500,
		ObjectsPerQuery: 8,
		Window:          10 * time.Second,
		Rate:            0.5,
		Warmup:          150,
	}
}

// EnvelopeResult is one estimator's measured error against its budget.
type EnvelopeResult struct {
	Name         string
	Scored       int
	MeanAccuracy float64
	MeanQError   float64
	Violations   []string
}

// Ok reports whether the estimator stayed inside its envelope and broke no
// hard invariant.
func (r *EnvelopeResult) Ok() bool { return len(r.Violations) == 0 }

// Summary renders a one-line verdict.
func (r *EnvelopeResult) Summary() string {
	return fmt.Sprintf("envelope %-5s: meanAcc=%.3f meanQErr=%.2f over %d queries — %d violations",
		r.Name, r.MeanAccuracy, r.MeanQError, r.Scored, len(r.Violations))
}

// RunEnvelopes drives every estimator in envs standalone — outside any
// engine, so the raw summary is measured rather than the switching module —
// through one deterministic workload, scoring each query against the
// brute-force oracle.
func RunEnvelopes(cfg EnvelopeConfig, envs map[string]Envelope) ([]EnvelopeResult, error) {
	if cfg.Queries <= cfg.Warmup {
		return nil, fmt.Errorf("check: Queries (%d) must exceed Warmup (%d)", cfg.Queries, cfg.Warmup)
	}
	names := make([]string, 0, len(envs))
	for _, n := range estimator.DefaultRegistry().Names() {
		if _, ok := envs[n]; ok {
			names = append(names, n)
		}
	}
	if len(names) != len(envs) {
		return nil, fmt.Errorf("check: envelope map names unregistered estimators (have %v)", names)
	}

	results := make([]EnvelopeResult, 0, len(names))
	for _, name := range names {
		res, err := runEnvelope(cfg, name, envs[name])
		if err != nil {
			return nil, err
		}
		results = append(results, *res)
	}
	return results, nil
}

func runEnvelope(cfg EnvelopeConfig, name string, env Envelope) (*EnvelopeResult, error) {
	gen := datagen.ByName(cfg.Dataset, cfg.Seed, cfg.Rate)
	queries := workload.NewGenerator(workload.ByName(cfg.Workload), gen, cfg.Queries)
	span := cfg.Window.Milliseconds()
	oracle := NewOracle(span)
	est, err := buildStandalone(name, estimator.Params{
		World: gen.World(),
		Span:  span,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	res := &EnvelopeResult{Name: name}
	var accSum, qerrSum float64
	for qi := 0; qi < cfg.Queries; qi++ {
		for j := 0; j < cfg.ObjectsPerQuery; j++ {
			o := gen.Next()
			est.Insert(&o)
			oracle.Insert(&o)
		}
		q := queries.Next(gen.Now())
		got := est.Estimate(&q)
		actual := oracle.Count(&q)
		est.Observe(&q, float64(actual))

		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("q%d: %s returned %v for %v (estimates must be finite and non-negative)", qi, name, got, q))
			continue
		}
		if qi < cfg.Warmup {
			continue
		}
		res.Scored++
		accSum += metrics.Accuracy(got, float64(actual))
		qerrSum += metrics.QError(got, float64(actual))
	}

	res.MeanAccuracy = accSum / float64(res.Scored)
	res.MeanQError = qerrSum / float64(res.Scored)
	if res.MeanAccuracy < env.MinMeanAccuracy {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s mean accuracy %.3f below envelope %.3f", name, res.MeanAccuracy, env.MinMeanAccuracy))
	}
	if res.MeanQError > env.MaxMeanQError {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s mean q-error %.2f above envelope %.2f", name, res.MeanQError, env.MaxMeanQError))
	}
	return res, nil
}
