package check

import "testing"

// Calibration table for DefaultEnvelopes, measured standalone on
// DefaultEnvelopeConfig (Twitter/TwQW3, 500 queries, 150 warmup) across
// seeds 1, 7 and 42:
//
//	estimator   meanAcc range   meanQErr range
//	H4096       0.453–0.500     7.39–9.35
//	RSL         1.000           1.00
//	RSH         1.000           1.00
//	AASP        0.387–0.435     2.86–3.20
//	FFN         0.136–0.139     8.18–9.62
//	SPN         0.366–0.401     5.72–5.82
//
// Each bound is the worst observed value widened by roughly a third, so
// the envelope trips on structural regressions (unit mix-ups, broken
// expiry, inverted predicates) rather than estimation noise. Re-measure
// with a throwaway RunEnvelopes call over those seeds if the estimator
// internals change intentionally.

// TestEnvelopes holds every registered estimator inside its documented
// error envelope on the canonical workload — the tripwire for silently
// broken estimator arithmetic.
func TestEnvelopes(t *testing.T) {
	results, err := RunEnvelopes(DefaultEnvelopeConfig(), DefaultEnvelopes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		res := &results[i]
		t.Log(res.Summary())
		for _, v := range res.Violations {
			t.Errorf("envelope violation: %s", v)
		}
	}
}

// TestEnvelopeSeeds re-scores the envelopes on the other calibration seeds
// so the budget is not an artifact of seed 1.
func TestEnvelopeSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: seed 1 only")
	}
	for _, seed := range []int64{7, 42} {
		cfg := DefaultEnvelopeConfig()
		cfg.Seed = seed
		results, err := RunEnvelopes(cfg, DefaultEnvelopes())
		if err != nil {
			t.Fatal(err)
		}
		for i := range results {
			for _, v := range results[i].Violations {
				t.Errorf("seed %d envelope violation: %s", seed, v)
			}
		}
	}
}
