package check

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/stream"
)

// golden.go replays a checked-in object trace through a fully deterministic
// System and renders two textual artifacts — the per-query count report and
// the switch-decision trace — that are diffed against golden files in
// testdata/check/. Any PR that silently changes window semantics, estimator
// arithmetic or switching behaviour turns into a readable line-level diff
// instead of a distant downstream symptom.
//
// Refresh flow (after an *intentional* semantics change):
//
//	go run ./cmd/latest-check -mode golden -update
//	git diff testdata/check/   # review every golden line that moved
//
// The trace itself is regenerated only when the generator is meant to
// change: go run ./cmd/latest-check -mode write-trace.

// TraceSpec pins the provenance of the checked-in object trace so it can be
// regenerated bit-identically.
var TraceSpec = struct {
	Dataset string
	Seed    int64
	Rate    float64
	Objects int
}{Dataset: "Twitter", Seed: 11, Rate: 0.5, Objects: 4000}

// WriteTrace renders the canonical golden object trace as JSONL.
func WriteTrace(w io.Writer) error {
	gen := datagen.ByName(TraceSpec.Dataset, TraceSpec.Seed, TraceSpec.Rate)
	out := replay.NewWriter(w)
	for i := 0; i < TraceSpec.Objects; i++ {
		o := gen.Next()
		if err := out.Write(&o); err != nil {
			return err
		}
	}
	return out.Flush()
}

// GoldenConfig parameterizes the golden replay. The zero value is not
// runnable; use DefaultGoldenConfig, which must stay in lockstep with the
// checked-in golden files.
type GoldenConfig struct {
	Seed            int64
	Window          time.Duration
	Pretrain        int
	AccWindow       int
	Alpha           float64
	ObjectsPerQuery int
	// MemoryScale shrinks estimator capacity so the replay exercises real
	// switching pressure (see DiffConfig.MemoryScale).
	MemoryScale float64
}

// DefaultGoldenConfig is the configuration the goldens were recorded under.
func DefaultGoldenConfig() GoldenConfig {
	return GoldenConfig{
		Seed:            11,
		Window:          5 * time.Second,
		Pretrain:        100,
		AccWindow:       40,
		Alpha:           0.5,
		ObjectsPerQuery: 8,
		// 2% of default estimator memory: at this trace's scale that is the
		// most switch-rich shape probed (15 decisions over 500 queries).
		MemoryScale: 0.02,
	}
}

// RunGolden replays the trace from r through a deterministic System,
// issuing one synthetic query per ObjectsPerQuery objects, and returns the
// count report and the decision trace as golden-comparable text.
func RunGolden(r io.Reader, cfg GoldenConfig) (counts, decisions string, err error) {
	world := datagen.ByName(TraceSpec.Dataset, TraceSpec.Seed, TraceSpec.Rate).World()
	opts := []latest.Option{
		latest.WithSeed(cfg.Seed),
		latest.WithPretrainQueries(cfg.Pretrain),
		latest.WithAccWindow(cfg.AccWindow),
		latest.WithAlpha(cfg.Alpha),
		latest.WithLatencyModel(DeterministicLatencyModel),
		latest.WithBreaker(latest.BreakerConfig{Deadline: 10 * time.Minute}),
	}
	if cfg.MemoryScale > 0 {
		opts = append(opts, latest.WithMemoryScale(cfg.MemoryScale))
	}
	sys, err := latest.New(world, cfg.Window, opts...)
	if err != nil {
		return "", "", fmt.Errorf("check: build golden System: %w", err)
	}

	qm := newQueryMaker(cfg.Seed, world)
	var report strings.Builder
	reader := replay.NewReader(r)
	fed, qi := 0, 0
	var lastTS int64
	for {
		o, rerr := reader.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return "", "", rerr
		}
		sys.Feed(o)
		qm.observe(&o)
		lastTS = o.Timestamp
		fed++
		if fed%cfg.ObjectsPerQuery != 0 {
			continue
		}
		q := qm.next(lastTS)
		est, actual := sys.EstimateAndExecute(&q)
		fmt.Fprintf(&report, "q=%04d type=%-7s est=%.6f actual=%d active=%s phase=%s window=%d\n",
			qi, q.Type(), est, actual, sys.ActiveEstimator(), phaseName(sys.Phase()), sys.WindowSize())
		qi++
	}

	var trace strings.Builder
	for i, d := range sys.Decisions() {
		fmt.Fprintf(&trace, "switch=%02d q=%d ts=%d from=%s to=%s reason=%s prefilled=%t qtype=%s recommended=%s\n",
			i, d.QueryIndex, d.Timestamp, d.From, d.To, d.Reason, d.Prefilled, d.QueryType, d.Recommended)
	}
	return report.String(), trace.String(), nil
}

// RunGoldenFile is RunGolden over a trace file path.
func RunGoldenFile(tracePath string, cfg GoldenConfig) (counts, decisions string, err error) {
	f, err := os.Open(tracePath)
	if err != nil {
		return "", "", err
	}
	defer f.Close()
	return RunGolden(f, cfg)
}

func phaseName(p latest.Phase) string {
	switch p {
	case latest.PhaseWarmup:
		return "warmup"
	case latest.PhasePretrain:
		return "pretrain"
	case latest.PhaseIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// queryMaker derives a deterministic query stream from the trace itself: a
// seeded RNG picks types, ranges and keywords, with keywords drawn from a
// bounded pool of words actually seen in the stream so queries hit data.
type queryMaker struct {
	rng   *rand.Rand
	world latest.Rect
	pool  []string
	seen  map[string]bool
}

const queryMakerPoolSize = 512

func newQueryMaker(seed int64, world latest.Rect) *queryMaker {
	return &queryMaker{
		rng:   rand.New(rand.NewSource(seed ^ 0x607C)),
		world: world,
		seen:  make(map[string]bool),
	}
}

// observe harvests keywords into the pool (first come, bounded) so the
// query vocabulary is exactly reproducible from the trace prefix.
func (m *queryMaker) observe(o *stream.Object) {
	if len(m.pool) >= queryMakerPoolSize {
		return
	}
	for _, kw := range o.Keywords {
		if !m.seen[kw] {
			m.seen[kw] = true
			m.pool = append(m.pool, kw)
			if len(m.pool) >= queryMakerPoolSize {
				return
			}
		}
	}
}

func (m *queryMaker) next(ts int64) latest.Query {
	switch m.rng.Intn(3) {
	case 0:
		return latest.SpatialQuery(m.makeRect(), ts)
	case 1:
		return latest.KeywordQuery(m.makeKeywords(), ts)
	default:
		return latest.HybridQuery(m.makeRect(), m.makeKeywords(), ts)
	}
}

func (m *queryMaker) makeRect() latest.Rect {
	w, h := m.world.Width(), m.world.Height()
	cx := m.world.MinX + m.rng.Float64()*w
	cy := m.world.MinY + m.rng.Float64()*h
	side := 0.02 + m.rng.Float64()*0.12
	return latest.CenteredRect(latest.Pt(cx, cy), side*w, side*h)
}

func (m *queryMaker) makeKeywords() []string {
	n := 1 + m.rng.Intn(2)
	kws := make([]string, 0, n)
	for len(kws) < n && len(kws) < len(m.pool) {
		kw := m.pool[m.rng.Intn(len(m.pool))]
		if !contains(kws, kw) {
			kws = append(kws, kw)
		}
	}
	if len(kws) == 0 {
		kws = append(kws, "fire") // trace prefix had no keywords yet
	}
	return kws
}
