package check

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/server"
	"github.com/spatiotext/latest/internal/telemetry"
)

// golden_cluster.go is the cross-node exactness oracle: the golden trace
// replays through a real N-node cluster — pre-bound listeners, a partition
// map naming their addresses, one clustered latestd-equivalent server per
// node, a scatter-gather router on top — and the per-query actual counts
// must be byte-identical to a 1-node control run of the same stack.
// Partitioning must be invisible in the counts: feeds route to cell
// owners, spatial queries clip at partition boundaries into disjoint
// territories, keyword-only queries broadcast, and the per-node answers
// sum exactly. Estimates are deliberately NOT compared: per-node sketches
// see different substreams, so summed estimates legitimately differ from a
// single node's — only the exact path is partition-invariant.

// ClusterConfig parameterizes the exactness replay.
type ClusterConfig struct {
	// Nodes is the cluster size; 1 is the control.
	Nodes int
	// Cols, Rows form the partition grid.
	Cols, Rows int
	// Window is each node engine's sliding-window span.
	Window time.Duration
	// BatchSize groups trace objects into feed batches.
	BatchSize int
	// ObjectsPerQuery issues one query per that many objects, like the
	// single-process golden replay.
	ObjectsPerQuery int
	// WholeWorldEvery replaces every Nth query with the whole-world rect,
	// guaranteeing queries that span every partition.
	WholeWorldEvery int
	// Seed drives the deterministic query maker.
	Seed int64
}

// DefaultClusterConfig mirrors DefaultGoldenConfig's replay shape.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Nodes:           3,
		Cols:            9,
		Rows:            3,
		Window:          5 * time.Second,
		BatchSize:       8,
		ObjectsPerQuery: 8,
		WholeWorldEvery: 16,
		Seed:            11,
	}
}

// RunClusterReplay replays the trace from r through a live cluster of
// cfg.Nodes servers and returns the per-query count report plus the
// router's final telemetry sample.
func RunClusterReplay(r io.Reader, cfg ClusterConfig) (string, telemetry.ClusterSample, error) {
	var sample telemetry.ClusterSample
	world := datagen.ByName(TraceSpec.Dataset, TraceSpec.Seed, TraceSpec.Rate).World()

	// Pre-bind listeners so the map can name real addresses before any
	// server exists — the coordinator sequence cmd/latestd documents.
	lns := make([]net.Listener, cfg.Nodes)
	addrs := make([]string, cfg.Nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", sample, err
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m, err := cluster.Uniform(world, cfg.Cols, cfg.Rows, addrs, 1)
	if err != nil {
		return "", sample, err
	}
	for i, ln := range lns {
		eng, err := latest.NewConcurrent(world, cfg.Window)
		if err != nil {
			return "", sample, err
		}
		defer eng.Shutdown(context.Background())
		srv, err := server.New(eng, server.Config{Listener: ln, ClusterMap: m, NodeID: i})
		if err != nil {
			return "", sample, fmt.Errorf("check: start cluster node %d: %w", i, err)
		}
		defer srv.Close()
	}
	cl, err := client.NewClusterFromMap(m.Encode(), client.Options{})
	if err != nil {
		return "", sample, err
	}
	defer cl.Close()

	ctx := context.Background()
	qm := newQueryMaker(cfg.Seed, world)
	var report strings.Builder
	reader := replay.NewReader(r)
	batch := make([]latest.Object, 0, cfg.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		accepted, err := cl.FeedBatch(ctx, batch)
		if err != nil {
			return fmt.Errorf("check: cluster feed: %w", err)
		}
		if int(accepted) != len(batch) {
			return fmt.Errorf("check: cluster feed accepted %d of %d", accepted, len(batch))
		}
		batch = batch[:0]
		return nil
	}

	fed, qi := 0, 0
	var lastTS int64
	for {
		o, rerr := reader.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return "", sample, rerr
		}
		batch = append(batch, o)
		if len(batch) >= cfg.BatchSize {
			if err := flush(); err != nil {
				return "", sample, err
			}
		}
		qm.observe(&o)
		lastTS = o.Timestamp
		fed++
		if fed%cfg.ObjectsPerQuery != 0 {
			continue
		}
		// Every acknowledged feed must be visible to the query that
		// follows it, so the batch flushes before the query runs.
		if err := flush(); err != nil {
			return "", sample, err
		}
		q := qm.next(lastTS)
		if cfg.WholeWorldEvery > 0 && qi%cfg.WholeWorldEvery == 0 {
			// The whole world overlaps every partition: the scatter leg
			// with boundary clipping is exercised on all nodes at once.
			q = latest.SpatialQuery(world, lastTS)
		}
		_, acts, err := cl.QueryBatch(ctx, []latest.Query{q})
		if err != nil {
			return "", sample, fmt.Errorf("check: cluster query %d: %w", qi, err)
		}
		fmt.Fprintf(&report, "q=%04d type=%-7s actual=%d\n", qi, q.Type(), acts[0])
		qi++
	}
	return report.String(), cl.Sample(), nil
}

// RunClusterExactness replays the trace through an N-node cluster and a
// 1-node control and diffs the count reports. An empty diff is the
// exactness proof; a non-empty one lists the first diverging lines.
func RunClusterExactness(tracePath string, cfg ClusterConfig) (diff []string, sample telemetry.ClusterSample, err error) {
	multi, sample, err := runClusterReplayFile(tracePath, cfg)
	if err != nil {
		return nil, sample, err
	}
	control := cfg
	control.Nodes = 1
	single, _, err := runClusterReplayFile(tracePath, control)
	if err != nil {
		return nil, sample, err
	}
	return DiffLines(single, multi, 10), sample, nil
}

func runClusterReplayFile(tracePath string, cfg ClusterConfig) (string, telemetry.ClusterSample, error) {
	f, err := os.Open(tracePath)
	if err != nil {
		return "", telemetry.ClusterSample{}, err
	}
	defer f.Close()
	return RunClusterReplay(f, cfg)
}
