package check

import (
	"path/filepath"
	"testing"
)

// TestClusterExactness is the cross-node exactness oracle: the golden
// trace replayed through a live 3-node cluster must produce per-query
// actual counts byte-identical to a 1-node control of the same stack —
// partitioning is invisible in the exact path.
func TestClusterExactness(t *testing.T) {
	cfg := DefaultClusterConfig()
	diff, sample, err := RunClusterExactness(filepath.Join(goldenDir, traceFile), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range diff {
		t.Error(line)
	}
	if t.Failed() {
		t.Fatal("3-node counts diverged from 1-node control")
	}
	// The run must actually have exercised every routing mode: forwards
	// into single territories, boundary-clipped scatters (the periodic
	// whole-world queries guarantee all-partition spans), and keyword
	// broadcasts — an oracle that never scattered would prove nothing.
	if sample.Nodes != 3 {
		t.Fatalf("sample reports %d nodes, want 3", sample.Nodes)
	}
	if sample.ScatterMulti == 0 || sample.Broadcasts == 0 || sample.ForwardSingle == 0 {
		t.Fatalf("routing modes unexercised: %+v", sample)
	}
	if sample.NodeErrors != 0 || sample.Retries != 0 {
		t.Fatalf("oracle run saw errors: %+v", sample)
	}
}
