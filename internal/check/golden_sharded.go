package check

import (
	"fmt"
	"io"
	"os"
	"strings"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/replay"
)

// golden_sharded.go replays the golden trace through a 1-shard
// ShardedSystem with the ingest pipeline ON: objects flow through the
// shard's bounded feed queue and are applied by its worker goroutine, and
// the observable output must still be byte-identical to the monolithic
// goldens. That is the determinism proof for the pipeline — hand-off order
// is apply order within a shard, and the query path's drain barrier gives
// single-threaded callers read-your-writes semantics.

// engineView abstracts the observables a golden report line reads, so one
// formatter serves both the monolithic System and the sharded engine.
type engineView interface {
	ActiveName() string
	Phase() latest.Phase
	WindowSize() int
	Decisions() []latest.Decision
}

// sysView adapts *latest.System to engineView.
type sysView struct{ *latest.System }

func (v sysView) ActiveName() string { return v.ActiveEstimator() }

// shardedView adapts *latest.ShardedSystem to engineView (1-shard use:
// the golden replays pin shard 0's observables).
type shardedView struct{ *latest.ShardedSystem }

func (v shardedView) ActiveName() string           { return v.ActiveEstimators()[0] }
func (v shardedView) Decisions() []latest.Decision { return v.Stats().Decisions }

// RunGoldenSharded replays the trace from r through a 1-shard pipelined
// ShardedSystem and returns the same golden-comparable count report and
// decision trace as RunGolden. Synchronous prefill keeps switch-candidate
// warming on the query path (the monolithic behaviour); ingest stays on
// the pipeline — the property under test.
func RunGoldenSharded(r io.Reader, cfg GoldenConfig) (counts, decisions string, err error) {
	world := goldenWorld()
	opts := append(goldenOptions(cfg),
		latest.WithShards(1),
		latest.WithSynchronousPrefill(),
	)
	s, err := latest.NewSharded(world, cfg.Window, opts...)
	if err != nil {
		return "", "", fmt.Errorf("check: build golden ShardedSystem: %w", err)
	}
	defer s.Close()
	view := shardedView{s}

	qm := newQueryMaker(cfg.Seed, world)
	var report strings.Builder
	reader := replay.NewReader(r)
	fed, qi := 0, 0
	var lastTS int64
	for {
		o, rerr := reader.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return "", "", rerr
		}
		s.Feed(o)
		qm.observe(&o)
		lastTS = o.Timestamp
		fed++
		if fed%cfg.ObjectsPerQuery != 0 {
			continue
		}
		q := qm.next(lastTS)
		est, actual := s.EstimateAndExecute(&q)
		reportLine(&report, qi, &q, est, actual, view)
		qi++
	}
	return report.String(), renderDecisions(view.Decisions()), nil
}

// RunGoldenShardedFile is RunGoldenSharded over a trace file path.
func RunGoldenShardedFile(tracePath string, cfg GoldenConfig) (counts, decisions string, err error) {
	f, err := os.Open(tracePath)
	if err != nil {
		return "", "", err
	}
	defer f.Close()
	return RunGoldenSharded(f, cfg)
}
