package check

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenReplayShardedPipeline is the pipeline determinism regression:
// the golden trace replayed through a 1-shard ShardedSystem with the
// ingest pipeline ON must match the monolithic System's golden files
// byte-for-byte — counts AND switch decisions. Never refresh the goldens
// from this runner; if it diverges, the pipeline broke per-shard feed
// order (or the drain barrier stopped giving read-your-writes).
func TestGoldenReplayShardedPipeline(t *testing.T) {
	counts, decisions, err := RunGoldenShardedFile(
		filepath.Join(goldenDir, traceFile), DefaultGoldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(decisions, "switch=") {
		t.Fatal("sharded replay recorded no switches; the scenario is not exercising the adaptor")
	}
	compareGolden(t, filepath.Join(goldenDir, countsGolden), counts)
	compareGolden(t, filepath.Join(goldenDir, decisionGolden), decisions)
}

// TestGoldenRecoveryPipelinedDrain is the crash-during-drain oracle: a
// pipelined 1-shard engine under the durable layer takes a snapshot at
// object 2000 (which must first drain the feed queue), feeds a 400-object
// WAL tail that may still be sitting in the queue when the SIGKILL-style
// crash lands, and recovers from snapshot + WAL replay. Byte-identity with
// the uninterrupted pipelined control run proves both drain orderings: the
// snapshot carried everything handed to the pipeline before it, and the
// WAL carried everything the crash left queued.
func TestGoldenRecoveryPipelinedDrain(t *testing.T) {
	objs := loadGoldenTrace(t)
	control, recovered, err := RunGoldenRecovery(objs, RecoveryConfig{
		Golden:         DefaultGoldenConfig(),
		SnapshotAt:     2000,
		WALTailObjects: 400,
		Pipelined:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(control.Decisions, "switch=") {
		t.Fatal("control run recorded no switches; the scenario is not exercising the adaptor")
	}
	diffReplays(t, "count report", control.Counts, recovered.Counts)
	diffReplays(t, "decision trace", control.Decisions, recovered.Decisions)
}
