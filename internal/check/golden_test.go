package check

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update refreshes the golden files after an intentional semantics change:
//
//	go test ./internal/check -run Golden -update
//
// Review the diff before committing — every changed line is a behaviour
// change.
var update = flag.Bool("update", false, "rewrite golden files from the current implementation")

const (
	goldenDir      = "../../testdata/check"
	traceFile      = "trace_twitter.jsonl"
	countsGolden   = "golden_counts.txt"
	decisionGolden = "golden_decisions.txt"
)

// TestTraceMatchesSpec regenerates the checked-in object trace from its
// recorded provenance (TraceSpec) and requires byte equality — the trace is
// an artifact of the generator, never hand-edited.
func TestTraceMatchesSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(goldenDir, traceFile)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("checked-in trace %s no longer matches TraceSpec %+v; regenerate with -update and review why the generator changed", path, TraceSpec)
	}
}

// TestGoldenReplay replays the checked-in trace through a deterministic
// System and diffs the count report and decision trace against the golden
// files.
func TestGoldenReplay(t *testing.T) {
	counts, decisions, err := RunGoldenFile(filepath.Join(goldenDir, traceFile), DefaultGoldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(goldenDir, countsGolden), counts)
	compareGolden(t, filepath.Join(goldenDir, decisionGolden), decisions)
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	want := string(raw)
	if got == want {
		return
	}
	t.Errorf("%s: output diverged from golden (refresh with -update only for intentional semantics changes)", path)
	for _, line := range DiffLines(want, got, 10) {
		t.Error(line)
	}
}
