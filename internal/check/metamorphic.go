package check

import (
	"fmt"
	"math"
	"time"

	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// metamorphic.go checks RC-DVQ identities that must hold on any data:
//
//   - R-monotonicity: enlarging the rectangle never decreases the count.
//   - W-monotonicity: adding keywords never decreases the count.
//   - T-monotonicity: lengthening the window never decreases the count.
//   - Partition: the four quadrants of R tile it exactly under
//     min-closed/max-open semantics, so their counts sum to R's count —
//     and a fortiori any disjoint sub-rectangles bound the sum.
//   - Keyword-set semantics: W is a set, so reordering or duplicating
//     keywords cannot change the count.
//
// Every count is evaluated twice — by the grid+inverted-index Window and by
// the brute-force Oracle — so the suite doubles as a store-level
// differential test on structured query families rather than workload
// samples.

// MetaConfig parameterizes the metamorphic run.
type MetaConfig struct {
	Dataset string
	Seed    int64
	Objects int
	Window  time.Duration
	Rate    float64
	// Queries is the number of base queries probed; each expands into a
	// family of derived variants.
	Queries int
	// MaxDetails caps recorded violation strings (zero = 20).
	MaxDetails int
}

// DefaultMetaConfig is the short-mode shape.
func DefaultMetaConfig() MetaConfig {
	return MetaConfig{
		Dataset: "Twitter",
		Seed:    7,
		Objects: 4000,
		Window:  8 * time.Second,
		Rate:    0.5,
		Queries: 60,
	}
}

// MetaReport accumulates metamorphic check outcomes.
type MetaReport struct {
	Checks     int
	Violations int
	Details    []string

	maxDetails int
}

// Ok reports whether every property held.
func (r *MetaReport) Ok() bool { return r.Violations == 0 }

// Summary renders a one-line verdict.
func (r *MetaReport) Summary() string {
	return fmt.Sprintf("metamorphic: %d checks, %d violations", r.Checks, r.Violations)
}

func (r *MetaReport) check(ok bool, format string, args ...any) {
	r.Checks++
	if ok {
		return
	}
	r.Violations++
	if r.maxDetails == 0 {
		r.maxDetails = 20
	}
	if len(r.Details) < r.maxDetails {
		r.Details = append(r.Details, fmt.Sprintf(format, args...))
	}
}

// metaFixture is one populated window snapshot probed by the property
// families: the indexed store and the brute-force oracle, frozen at the
// stream's final timestamp.
type metaFixture struct {
	window *stream.Window
	oracle *Oracle
	world  geo.Rect
	now    int64
	report *MetaReport
}

// count evaluates q against both stores, records their agreement as a
// check, and returns the oracle's answer.
func (f *metaFixture) count(q stream.Query) int {
	q.Timestamp = f.now
	got := f.window.Count(&q)
	want := f.oracle.CountLive(&q)
	f.report.check(got == want, "store disagreement on %v: window=%d oracle=%d", q, got, want)
	return want
}

// RunMetamorphic populates a window from the named dataset and probes the
// property families over generated base queries.
func RunMetamorphic(cfg MetaConfig) (*MetaReport, error) {
	if cfg.Objects <= 0 || cfg.Queries <= 0 {
		return nil, fmt.Errorf("check: Objects and Queries must be positive, got %d/%d", cfg.Objects, cfg.Queries)
	}
	report := &MetaReport{maxDetails: cfg.MaxDetails}
	span := cfg.Window.Milliseconds()

	// Two extra stores at double the span, fed the identical stream, give
	// the T-monotonicity comparison: same data, longer memory.
	gen := datagen.ByName(cfg.Dataset, cfg.Seed, cfg.Rate)
	world := gen.World()
	short := &metaFixture{
		window: stream.NewWindow(world, span, 4096),
		oracle: NewOracle(span),
		world:  world,
		report: report,
	}
	long := &metaFixture{
		window: stream.NewWindow(world, 2*span, 4096),
		oracle: NewOracle(2 * span),
		world:  world,
		report: report,
	}
	for i := 0; i < cfg.Objects; i++ {
		o := gen.Next()
		short.window.Insert(o)
		short.oracle.Insert(&o)
		long.window.Insert(o)
		long.oracle.Insert(&o)
	}
	now := gen.Now()
	for _, f := range []*metaFixture{short, long} {
		f.now = now
		f.window.EvictBefore(now - f.window.Span())
		f.oracle.Advance(now)
	}
	report.check(short.window.Size() == short.oracle.Size(),
		"occupancy: window=%d oracle=%d", short.window.Size(), short.oracle.Size())

	rng := gen.QueryRand()
	for i := 0; i < cfg.Queries; i++ {
		// Base ingredients: a rectangle around a data-following focal point
		// and 1-3 workload-skewed keywords.
		side := (0.01 + rng.Float64()*0.15) * math.Min(world.Width(), world.Height())
		rect := geo.CenteredRect(gen.SampleQueryPoint(), side, side)
		kws := make([]string, 0, 3)
		for len(kws) < 1+rng.Intn(3) {
			kw := gen.SampleQueryKeyword()
			if !contains(kws, kw) {
				kws = append(kws, kw)
			}
		}
		extra := gen.SampleQueryKeyword()
		for contains(kws, extra) {
			extra = gen.SampleQueryKeyword()
		}

		checkMonotonicity(short, rect, kws)
		checkPartition(short, rect, kws)
		checkKeywordSet(short, rect, kws)
		checkWindowGrowth(short, long, rect, kws)
		checkKeywordGrowth(short, rect, kws, extra)
	}
	return report, nil
}

// checkMonotonicity: enlarging R never decreases the count, for the pure
// spatial and the hybrid form; the world-spanning rectangle dominates all.
func checkMonotonicity(f *metaFixture, rect geo.Rect, kws []string) {
	worldQ := f.world
	// The world's max edges are open; data clamped to the world boundary
	// must still land inside the grown rectangle.
	worldQ.MaxX += 1e-6
	worldQ.MaxY += 1e-6
	grown := rect.Expand(rect.Width()/2 + 1e-9)

	base := f.count(stream.SpatialQ(rect, 0))
	bigger := f.count(stream.SpatialQ(grown, 0))
	all := f.count(stream.SpatialQ(worldQ, 0))
	f.report.check(base <= bigger, "R-monotonicity: |%v|=%d > |expand|=%d", rect, base, bigger)
	f.report.check(bigger <= all, "R-monotonicity: |expand|=%d > |world|=%d", bigger, all)
	f.report.check(all == f.oracle.Size(), "world query %d ≠ occupancy %d", all, f.oracle.Size())

	hBase := f.count(stream.HybridQ(rect, kws, 0))
	hGrown := f.count(stream.HybridQ(grown, kws, 0))
	hAll := f.count(stream.KeywordQ(kws, 0))
	f.report.check(hBase <= hGrown, "hybrid R-monotonicity: %d > %d", hBase, hGrown)
	f.report.check(hGrown <= hAll, "hybrid ≤ keyword-only: %d > %d", hGrown, hAll)
	f.report.check(hBase <= base, "hybrid ≤ spatial-only: %d > %d", hBase, base)
}

// checkPartition: quadrants tile R exactly (half-open rectangles), so their
// counts sum to R's count; any two of them bound the sum from below.
func checkPartition(f *metaFixture, rect geo.Rect, kws []string) {
	whole := f.count(stream.HybridQ(rect, kws, 0))
	sum := 0
	for _, quad := range rect.Quadrants() {
		if quad.Empty() {
			continue
		}
		sum += f.count(stream.HybridQ(quad, kws, 0))
	}
	f.report.check(sum == whole, "quadrant partition: Σ=%d, whole=%d for %v", sum, whole, rect)

	quads := rect.Quadrants()
	if !quads[0].Empty() && !quads[3].Empty() {
		disjoint := f.count(stream.SpatialQ(quads[0], 0)) + f.count(stream.SpatialQ(quads[3], 0))
		wholeSpatial := f.count(stream.SpatialQ(rect, 0))
		f.report.check(disjoint <= wholeSpatial,
			"disjoint union bound: %d > %d for %v", disjoint, wholeSpatial, rect)
	}
}

// checkKeywordSet: W is a set — permuting or duplicating keywords leaves
// the exact count unchanged.
func checkKeywordSet(f *metaFixture, rect geo.Rect, kws []string) {
	base := f.count(stream.KeywordQ(kws, 0))

	reversed := make([]string, len(kws))
	for i, kw := range kws {
		reversed[len(kws)-1-i] = kw
	}
	f.report.check(f.count(stream.KeywordQ(reversed, 0)) == base,
		"keyword reorder changed count for %v", kws)

	doubled := append(append([]string(nil), kws...), kws...)
	f.report.check(f.count(stream.KeywordQ(doubled, 0)) == base,
		"keyword duplication changed count for %v", kws)

	hybrid := f.count(stream.HybridQ(rect, kws, 0))
	f.report.check(f.count(stream.HybridQ(rect, doubled, 0)) == hybrid,
		"hybrid keyword duplication changed count for %v", kws)
}

// checkKeywordGrowth: adding a keyword to W never decreases the count.
func checkKeywordGrowth(f *metaFixture, rect geo.Rect, kws []string, extra string) {
	wider := append(append([]string(nil), kws...), extra)
	f.report.check(f.count(stream.KeywordQ(kws, 0)) <= f.count(stream.KeywordQ(wider, 0)),
		"W-monotonicity violated adding %q to %v", extra, kws)
	f.report.check(f.count(stream.HybridQ(rect, kws, 0)) <= f.count(stream.HybridQ(rect, wider, 0)),
		"hybrid W-monotonicity violated adding %q to %v", extra, kws)
}

// checkWindowGrowth: the same stream remembered twice as long can only
// contain more matches (T-monotonicity).
func checkWindowGrowth(short, long *metaFixture, rect geo.Rect, kws []string) {
	qs := stream.HybridQ(rect, kws, 0)
	short.report.check(short.count(qs) <= long.count(qs),
		"T-monotonicity: span %d count > span %d count for %v",
		short.window.Span(), long.window.Span(), qs)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
