package check

import "testing"

// TestMetamorphicShort runs the property families in short mode — this is
// the "at least one property test in short mode" gate.
func TestMetamorphicShort(t *testing.T) {
	report, err := RunMetamorphic(DefaultMetaConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report.Summary())
	for _, d := range report.Details {
		t.Errorf("violation: %s", d)
	}
	if !report.Ok() {
		t.Fatalf("metamorphic suite failed: %s", report.Summary())
	}
	if report.Checks < 1000 {
		t.Errorf("only %d checks ran; property families lost coverage", report.Checks)
	}
}

func TestMetamorphicDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: Twitter only")
	}
	for _, ds := range []string{"eBird", "CheckIn"} {
		cfg := DefaultMetaConfig()
		cfg.Dataset = ds
		cfg.Seed = 21
		report, err := RunMetamorphic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range report.Details {
			t.Errorf("%s violation: %s", ds, d)
		}
		if !report.Ok() {
			t.Fatalf("%s: %s", ds, report.Summary())
		}
	}
}
