package check

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/replay"
	"github.com/spatiotext/latest/internal/stream"
)

// recovery.go turns the golden replay into a recovery-correctness oracle:
// the same deterministic trace is driven through an engine that crashes
// and recovers from persisted state mid-run, and the per-query count
// report plus the switch-decision trace must come out identical to the
// uninterrupted run. Because the golden replay pins every observable the
// engine produces, any state the snapshot or WAL fails to carry — a
// sampler's RNG position, a sliding accuracy average, the learner's
// profile grids — surfaces as a readable line diff, not a vague
// statistical drift.

// goldenWorld returns the world rect the golden trace was generated in.
func goldenWorld() latest.Rect {
	return datagen.ByName(TraceSpec.Dataset, TraceSpec.Seed, TraceSpec.Rate).World()
}

// goldenOptions builds the exact option set RunGolden uses; recovery runs
// must construct every engine incarnation with it, both because the replay
// must be deterministic and because Restore fingerprints the options.
func goldenOptions(cfg GoldenConfig) []latest.Option {
	opts := []latest.Option{
		latest.WithSeed(cfg.Seed),
		latest.WithPretrainQueries(cfg.Pretrain),
		latest.WithAccWindow(cfg.AccWindow),
		latest.WithAlpha(cfg.Alpha),
		latest.WithLatencyModel(DeterministicLatencyModel),
		latest.WithBreaker(latest.BreakerConfig{Deadline: 10 * time.Minute}),
	}
	if cfg.MemoryScale > 0 {
		opts = append(opts, latest.WithMemoryScale(cfg.MemoryScale))
	}
	return opts
}

// LoadTrace reads a full JSONL object trace into memory, for runners that
// need to replay segments of it against multiple engine incarnations.
func LoadTrace(r io.Reader) ([]stream.Object, error) {
	reader := replay.NewReader(r)
	var objs []stream.Object
	for {
		o, err := reader.Next()
		if err == io.EOF {
			return objs, nil
		}
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
}

// reportLine appends one golden count-report line; every runner goes
// through here so the formats can never drift apart. The engineView
// indirection lets monolithic and sharded incarnations share it.
func reportLine(b *strings.Builder, qi int, q *latest.Query, est float64, actual int, v engineView) {
	fmt.Fprintf(b, "q=%04d type=%-7s est=%.6f actual=%d active=%s phase=%s window=%d\n",
		qi, q.Type(), est, actual, v.ActiveName(), phaseName(v.Phase()), v.WindowSize())
}

// renderDecisions formats the switch-decision trace; same single-source
// rule as reportLine.
func renderDecisions(ds []latest.Decision) string {
	var trace strings.Builder
	for i, d := range ds {
		fmt.Fprintf(&trace, "switch=%02d q=%d ts=%d from=%s to=%s reason=%s prefilled=%t qtype=%s recommended=%s\n",
			i, d.QueryIndex, d.Timestamp, d.From, d.To, d.Reason, d.Prefilled, d.QueryType, d.Recommended)
	}
	return trace.String()
}

// RecoveryConfig shapes a mid-run crash/recovery replay.
type RecoveryConfig struct {
	Golden GoldenConfig
	// SnapshotAt: the snapshot is taken right after this many objects have
	// been fed (2000 in the checked-in scenario) and after any query due at
	// that exact point has been served — query feedback lives only in
	// process memory, so a snapshot taken between a feed and its co-located
	// query would silently shed that query's learning from the durable
	// state while the control run keeps it.
	SnapshotAt int
	// WALTailObjects: how many objects past the snapshot are fed — and
	// write-ahead logged — before the simulated crash. Queries pause for
	// this span: the WAL records feeds only, so the control run must have
	// the same no-query gap for the comparison to be exact. Zero means the
	// crash happens immediately after the snapshot (pure snapshot restore).
	WALTailObjects int
	// SecondSnapshotAt (> SnapshotAt, < SnapshotAt+WALTailObjects) takes a
	// second snapshot inside the WAL tail, producing generation 2 on top of
	// generation 1. On its own it just proves multi-generation recovery
	// restores the newest snapshot; combined with CorruptLatest it becomes
	// the fallback oracle. Zero disables it.
	SecondSnapshotAt int
	// CorruptLatest flips a byte in the middle of the newest snapshot
	// generation right before the crash-recovery rebuild. Recovery must
	// detect the damage (whole-file CRC), fall back to generation 1, and
	// replay BOTH WAL generations — byte-identical to the control run, or
	// the fallback chain is losing state. Requires SecondSnapshotAt:
	// corrupting the only snapshot is the refusal case, not fallback.
	CorruptLatest bool
	// Pipelined runs both incarnations as 1-shard ShardedSystems with the
	// ingest pipeline on: every feed is write-ahead logged, then handed to
	// the shard's bounded feed queue. The crash at the end of the WAL tail
	// lands while tail objects may still be queued but unapplied — the
	// crash-during-drain case — and any snapshot taken must first drain
	// the queue or it would persist a state the WAL generation before it
	// already superseded. Recovery replays the WAL into a fresh pipelined
	// engine and must come out byte-identical to the control run.
	Pipelined bool
}

// RunGoldenRecovery replays the golden trace through an engine that is
// snapshotted, crashed and recovered mid-run, and through an uninterrupted
// control engine with an identical query schedule. It returns both runs'
// count reports and decision traces; recovery is correct iff they are
// byte-identical.
//
// The crash is simulated faithfully: the first engine incarnation is
// abandoned (no Shutdown, no final snapshot), so recovery sees exactly
// what a SIGKILL would leave on disk — the committed snapshot plus the
// fsynced WAL tail.
func RunGoldenRecovery(objs []stream.Object, rc RecoveryConfig) (control, recovered Replay, err error) {
	if rc.SnapshotAt <= 0 || rc.SnapshotAt >= len(objs) {
		return control, recovered, fmt.Errorf("check: SnapshotAt %d out of trace (%d objects)", rc.SnapshotAt, len(objs))
	}
	gapStart := rc.SnapshotAt
	gapEnd := rc.SnapshotAt + rc.WALTailObjects
	if gapEnd > len(objs) {
		return control, recovered, fmt.Errorf("check: WAL tail past trace end (%d+%d > %d)", rc.SnapshotAt, rc.WALTailObjects, len(objs))
	}
	if rc.SecondSnapshotAt != 0 && (rc.SecondSnapshotAt <= rc.SnapshotAt || rc.SecondSnapshotAt >= gapEnd) {
		return control, recovered, fmt.Errorf("check: SecondSnapshotAt %d outside (%d, %d)", rc.SecondSnapshotAt, rc.SnapshotAt, gapEnd)
	}
	if rc.CorruptLatest && rc.SecondSnapshotAt == 0 {
		return control, recovered, fmt.Errorf("check: CorruptLatest needs SecondSnapshotAt (one corrupt snapshot is refusal, not fallback)")
	}

	control, err = runGoldenSegmented(objs, rc, gapStart, gapEnd, -1)
	if err != nil {
		return control, recovered, fmt.Errorf("check: control run: %w", err)
	}
	recovered, err = runGoldenSegmented(objs, rc, gapStart, gapEnd, rc.SnapshotAt)
	if err != nil {
		return control, recovered, fmt.Errorf("check: recovery run: %w", err)
	}
	return control, recovered, nil
}

// Replay is one run's observable output. Fallback records whether the
// crash-recovery incarnation restored an older snapshot generation than
// the newest written — always false for control runs; the corruption
// oracle asserts it so a fallback test can never pass vacuously.
type Replay struct {
	Counts    string
	Decisions string
	Fallback  bool
}

// runGoldenSegmented drives the golden replay with a no-query gap over
// [gapStart, gapEnd) and, when crashAt >= 0, a snapshot + simulated crash
// + recovery at that object index. The crash engine persists into a
// latest.MemStore via a DurableEngine with per-record WAL fsync, so the
// post-crash incarnation recovers through exactly the production path:
// NewDurable -> Restore -> WAL tail replay (falling back across snapshot
// generations when rc.CorruptLatest damages the newest one).
func runGoldenSegmented(objs []stream.Object, rc RecoveryConfig, gapStart, gapEnd, crashAt int) (Replay, error) {
	cfg := rc.Golden
	world := goldenWorld()
	build := func() (latest.Engine, engineView, error) {
		if rc.Pipelined {
			opts := append(goldenOptions(cfg),
				latest.WithShards(1), latest.WithSynchronousPrefill())
			s, err := latest.NewSharded(world, cfg.Window, opts...)
			if err != nil {
				return nil, nil, err
			}
			return s, shardedView{s}, nil
		}
		s, err := latest.New(world, cfg.Window, goldenOptions(cfg)...)
		if err != nil {
			return nil, nil, err
		}
		return s, sysView{s}, nil
	}
	base, view, err := build()
	if err != nil {
		return Replay{}, err
	}

	eng := base
	store := latest.NewMemStore()
	if crashAt >= 0 {
		dur, derr := latest.NewDurable(base, store, latest.DurableConfig{WALSyncEvery: 1})
		if derr != nil {
			return Replay{}, derr
		}
		eng = dur
	}

	qm := newQueryMaker(cfg.Seed, world)
	var report strings.Builder
	var fellBack bool
	fed, qi := 0, 0
	var lastTS int64
	for i := range objs {
		eng.Feed(objs[i])
		qm.observe(&objs[i])
		lastTS = objs[i].Timestamp
		fed++

		// Any query due at this object is served BEFORE a co-located
		// snapshot or crash: query feedback is process memory, not durable
		// state, so a snapshot taken between the feed and its query would
		// shed that query's learning while the control engine keeps it —
		// the runs would then disagree about history, not about recovery.
		if fed%cfg.ObjectsPerQuery == 0 && !(fed > gapStart && fed <= gapEnd) {
			q := qm.next(lastTS)
			est, actual := eng.EstimateAndExecute(&q)
			reportLine(&report, qi, &q, est, actual, view)
			qi++
		}

		if fed == crashAt || (crashAt >= 0 && rc.SecondSnapshotAt > 0 && fed == rc.SecondSnapshotAt) {
			if err := eng.(*latest.DurableEngine).SnapshotNow(context.Background()); err != nil {
				return Replay{}, fmt.Errorf("snapshot at object %d: %w", fed, err)
			}
		}
		if crashAt >= 0 && fed == gapEnd {
			if rc.CorruptLatest {
				// Bit rot on the newest generation, right where a crash
				// would find it. The whole-file CRC must catch this before
				// any section reaches the engine.
				name := persist.SnapshotNameFor(eng.(*latest.DurableEngine).Generation())
				data, lerr := store.Load(name)
				if lerr != nil {
					return Replay{}, fmt.Errorf("corrupt %s: %w", name, lerr)
				}
				if cerr := store.Corrupt(name, len(data)/2); cerr != nil {
					return Replay{}, fmt.Errorf("corrupt %s: %w", name, cerr)
				}
			}
			// Crash: abandon the incarnation without Shutdown and recover a
			// fresh one from the store — under Pipelined, with whatever the
			// abandoned incarnation still had queued left unapplied, exactly
			// as a SIGKILL mid-drain would. Everything since the restored
			// snapshot must come back out of the WAL chain.
			base, view, err = build()
			if err != nil {
				return Replay{}, err
			}
			dur, derr := latest.NewDurable(base, store, latest.DurableConfig{WALSyncEvery: 1})
			if derr != nil {
				return Replay{}, fmt.Errorf("recover at object %d: %w", fed, derr)
			}
			if s := dur.TelemetrySnapshot().Durable; s != nil && s.RecoveredFallback {
				fellBack = true
			}
			eng = dur
		}
	}
	return Replay{Counts: report.String(), Decisions: renderDecisions(view.Decisions()), Fallback: fellBack}, nil
}
