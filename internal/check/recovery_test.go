package check

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spatiotext/latest/internal/stream"
)

func loadGoldenTrace(t *testing.T) []stream.Object {
	t.Helper()
	f, err := os.Open(filepath.Join(goldenDir, traceFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	objs, err := LoadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != TraceSpec.Objects {
		t.Fatalf("trace holds %d objects, spec says %d", len(objs), TraceSpec.Objects)
	}
	return objs
}

// diffReplays fails with the first differing line — a readable, localized
// diff rather than a byte-offset mismatch.
func diffReplays(t *testing.T, what string, control, recovered string) {
	t.Helper()
	if control == recovered {
		return
	}
	cl := strings.Split(control, "\n")
	rl := strings.Split(recovered, "\n")
	for i := 0; i < len(cl) || i < len(rl); i++ {
		var c, r string
		if i < len(cl) {
			c = cl[i]
		}
		if i < len(rl) {
			r = rl[i]
		}
		if c != r {
			t.Fatalf("%s diverges at line %d:\n  control:   %s\n  recovered: %s", what, i+1, c, r)
		}
	}
	t.Fatalf("%s differs (lengths %d vs %d)", what, len(control), len(recovered))
}

// TestGoldenRecoverySnapshot is the pure snapshot/restore oracle: the
// engine is snapshotted at object 2000, crashed immediately, restored from
// the snapshot alone, and must finish the golden trace with per-query
// counts and switch decisions identical to the uninterrupted run. Every
// piece of engine state the snapshot fails to carry — a sampler's RNG
// position, an accuracy window, the learner's profiles — shows up here as
// a line diff.
func TestGoldenRecoverySnapshot(t *testing.T) {
	objs := loadGoldenTrace(t)
	control, recovered, err := RunGoldenRecovery(objs, RecoveryConfig{
		Golden:     DefaultGoldenConfig(),
		SnapshotAt: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(control.Decisions, "switch=") {
		t.Fatal("control run recorded no switches; the scenario is not exercising the adaptor")
	}
	diffReplays(t, "count report", control.Counts, recovered.Counts)
	diffReplays(t, "decision trace", control.Decisions, recovered.Decisions)
}

// TestGoldenRecoveryWALTail extends the oracle through the write-ahead
// log: snapshot at object 2000, four hundred more objects fed (and WAL'd)
// before a SIGKILL-style crash, recovery from snapshot + WAL replay, then
// the rest of the trace. The control run pauses queries over the same
// span — the WAL logs feeds only, which is the durable layer's documented
// contract — so any divergence is a WAL replay defect, not a scheduling
// artifact.
func TestGoldenRecoveryWALTail(t *testing.T) {
	objs := loadGoldenTrace(t)
	control, recovered, err := RunGoldenRecovery(objs, RecoveryConfig{
		Golden:         DefaultGoldenConfig(),
		SnapshotAt:     2000,
		WALTailObjects: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	diffReplays(t, "count report", control.Counts, recovered.Counts)
	diffReplays(t, "decision trace", control.Decisions, recovered.Decisions)
}

// TestGoldenRecoveryCorruptLatestGeneration is the fallback oracle: two
// snapshot generations are written mid-run (objects 2000 and 2200), the
// newest is bit-flipped, and the crash at object 2400 recovers through
// the fallback chain — generation 1 restored, BOTH WAL generations
// replayed. The run must still be byte-identical to the uninterrupted
// control; any state the older-generation path loses (a WAL record
// skipped at the generation seam, a sampler restored from the wrong
// epoch) shows up as a line diff.
func TestGoldenRecoveryCorruptLatestGeneration(t *testing.T) {
	objs := loadGoldenTrace(t)
	control, recovered, err := RunGoldenRecovery(objs, RecoveryConfig{
		Golden:           DefaultGoldenConfig(),
		SnapshotAt:       2000,
		WALTailObjects:   400,
		SecondSnapshotAt: 2200,
		CorruptLatest:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Fallback {
		t.Fatal("recovery restored the corrupt generation; the fallback path was never exercised")
	}
	if control.Fallback {
		t.Fatal("control run reported a fallback; the oracle is mislabeling runs")
	}
	diffReplays(t, "count report", control.Counts, recovered.Counts)
	diffReplays(t, "decision trace", control.Decisions, recovered.Decisions)
}

// TestGoldenRecoveryMatchesGoldenFiles pins the snapshot-only recovery run
// against the same checked-in goldens as the uninterrupted replay: the
// recovered engine must not only agree with its own control run, it must
// reproduce the repository's canonical behaviour record.
func TestGoldenRecoveryMatchesGoldenFiles(t *testing.T) {
	objs := loadGoldenTrace(t)
	_, recovered, err := RunGoldenRecovery(objs, RecoveryConfig{
		Golden:     DefaultGoldenConfig(),
		SnapshotAt: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, countsGolden))
	if err != nil {
		t.Fatal(err)
	}
	diffReplays(t, "count report vs golden file", string(want), recovered.Counts)
}
