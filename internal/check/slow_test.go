//go:build slowcheck

package check

import (
	"testing"
	"time"
)

// slow_test.go is the long-mode correctness gate, unlocked with
// -tags slowcheck (CI runs it under -race). The differential run below
// makes >10k deterministic feed/query steps across all three engines plus
// the brute-force oracle and requires zero divergences of any kind.

func TestDifferentialSlow(t *testing.T) {
	cfg := DefaultDiffConfig()
	cfg.Queries = 1000
	cfg.ObjectsPerQuery = 20
	cfg.Tau = 0.85
	cfg.Window = 10 * time.Second
	report, err := RunDifferential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report.Summary())
	for _, d := range report.Details {
		t.Errorf("divergence: %s", d)
	}
	if !report.Ok() {
		t.Fatalf("slow differential run diverged: %s", report.Summary())
	}
	if steps := report.Steps(); steps < 10_000 {
		t.Fatalf("run made %d steps, want >= 10000", steps)
	}
	if report.Switches == 0 {
		t.Error("no estimator switches exercised at slow scale")
	}
}

// TestDifferentialSlowAllDatasets sweeps the remaining dataset/workload
// pairings at a smaller per-pair budget.
func TestDifferentialSlowAllDatasets(t *testing.T) {
	for _, tc := range []struct{ dataset, workload string }{
		{"eBird", "EbRQW6"},
		{"CheckIn", "CiQW2"},
		{"Twitter", "TwQW6"},
	} {
		cfg := DefaultDiffConfig()
		cfg.Dataset, cfg.Workload = tc.dataset, tc.workload
		cfg.Seed = 5
		cfg.Queries = 600
		report, err := RunDifferential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range report.Details {
			t.Errorf("%s/%s divergence: %s", tc.dataset, tc.workload, d)
		}
		if !report.Ok() {
			t.Fatalf("%s/%s: %s", tc.dataset, tc.workload, report.Summary())
		}
	}
}

func TestMetamorphicSlow(t *testing.T) {
	cfg := DefaultMetaConfig()
	cfg.Objects = 12_000
	cfg.Queries = 200
	cfg.Window = 12 * time.Second
	report, err := RunMetamorphic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report.Summary())
	for _, d := range report.Details {
		t.Errorf("violation: %s", d)
	}
	if !report.Ok() {
		t.Fatal(report.Summary())
	}
}
