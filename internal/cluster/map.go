// Package cluster is the multi-node serving layer: a versioned spatial
// partition map assigning uniform grid cells over the world rectangle to
// nodes, a router that fans feeds and queries out to the owning nodes with
// exact scatter-gather aggregation, and a wire-speaking proxy front end
// (cmd/latest-router) so unmodified clients talk to a cluster exactly as
// they talk to one latestd.
//
// Exactness rests on two invariants. First, every object lives on exactly
// one node: the map routes a point by locating it against the precomputed
// cell boundary arrays, clamping out-of-world points onto the boundary
// cells. Second, a multi-owner query is clipped at interior partition
// boundaries only — the clip rectangles use the same boundary values, with
// the same half-open comparisons, as point routing, and extend to the
// query's own edges at the world border — so the per-node sub-rectangles
// are disjoint, cover the query exactly, and agree bit-for-bit with object
// placement. Window counts depend only on the query timestamp (execution
// evicts to q.Timestamp - span before counting), so summing per-node
// counts over disjoint object sets equals the single-node answer exactly.
package cluster

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/persist"
)

// mapMagic and mapVersion frame the serialized partition map.
var mapMagic = [4]byte{'L', 'M', 'A', 'P'}

const mapVersion = 1

// maxCells bounds a decoded grid so a corrupt cell count cannot drive a
// huge allocation; 1M cells is far beyond any deployment this package
// targets.
const maxCells = 1 << 20

// Map is a versioned spatial partition map: a Cols×Rows uniform grid over
// the world rectangle, each cell owned by one node. Maps are immutable
// after construction (Uniform or DecodeMap); a new assignment is a new Map
// with a higher Epoch.
type Map struct {
	// Epoch orders map versions; a node refusing a request as not-owner
	// reports its epoch so a stale router knows to refetch.
	Epoch uint64
	// World is the partitioned region. Out-of-world points clamp onto the
	// boundary cells, exactly as the engines' grid estimators do.
	World geo.Rect
	Cols  int
	Rows  int
	// Owners holds the owning node index of each cell, row-major
	// (cell = row*Cols + col).
	Owners []int32
	// Nodes holds the wire-protocol addresses, indexed by owner.
	Nodes []string

	// xs and ys are the cell boundary coordinates (len Cols+1 / Rows+1),
	// precomputed once so routing and clipping share identical values.
	xs, ys []float64
}

// Uniform builds a map assigning contiguous column stripes to nodes:
// cell (col, row) belongs to node col*len(nodes)/cols. Stripes keep each
// node's territory a single rectangle, which maximizes the single-owner
// fast path for small query rects.
func Uniform(world geo.Rect, cols, rows int, nodes []string, epoch uint64) (*Map, error) {
	m := &Map{Epoch: epoch, World: world, Cols: cols, Rows: rows, Nodes: nodes}
	if cols > 0 && rows > 0 && cols*rows <= maxCells {
		m.Owners = make([]int32, cols*rows)
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				m.Owners[row*cols+col] = int32(col * len(nodes) / cols)
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks structural invariants and builds the boundary arrays.
// Constructors call it; hand-assembled maps (tests) must call it before
// use.
func (m *Map) Validate() error {
	if m.Cols <= 0 || m.Rows <= 0 {
		return fmt.Errorf("cluster: map grid %dx%d not positive", m.Cols, m.Rows)
	}
	if m.Cols*m.Rows > maxCells {
		return fmt.Errorf("cluster: map grid %dx%d exceeds %d cells", m.Cols, m.Rows, maxCells)
	}
	if m.World.Empty() || !m.World.Valid() {
		return fmt.Errorf("cluster: map world %v empty or invalid", m.World)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: map has no nodes")
	}
	if len(m.Owners) != m.Cols*m.Rows {
		return fmt.Errorf("cluster: map has %d owners for %d cells", len(m.Owners), m.Cols*m.Rows)
	}
	for i, o := range m.Owners {
		if o < 0 || int(o) >= len(m.Nodes) {
			return fmt.Errorf("cluster: cell %d owned by node %d, have %d nodes", i, o, len(m.Nodes))
		}
	}
	m.xs = boundaries(m.World.MinX, m.World.Width(), m.Cols)
	m.ys = boundaries(m.World.MinY, m.World.Height(), m.Rows)
	return nil
}

// boundaries returns the n+1 cell edge coordinates of one axis. Index i is
// min + i*step — the exact expression both routing and clipping evaluate,
// computed once so they cannot disagree.
func boundaries(min, span float64, n int) []float64 {
	step := span / float64(n)
	bs := make([]float64, n+1)
	for i := range bs {
		bs[i] = min + float64(i)*step
	}
	return bs
}

// locate returns the index of the half-open interval [bs[i], bs[i+1])
// containing v, clamped onto [0, len(bs)-2] for out-of-range values.
func locate(bs []float64, v float64) int {
	// Smallest i with bs[i] > v; the containing interval starts one left.
	i := sort.Search(len(bs), func(i int) bool { return bs[i] > v }) - 1
	if i < 0 {
		return 0
	}
	if i > len(bs)-2 {
		return len(bs) - 2
	}
	return i
}

// OwnerOf returns the node index owning point p, clamping out-of-world
// points onto the boundary cells.
func (m *Map) OwnerOf(p geo.Point) int {
	col, row := locate(m.xs, p.X), locate(m.ys, p.Y)
	return int(m.Owners[row*m.Cols+col])
}

// OwnsPoint reports whether node owns point p.
func (m *Map) OwnsPoint(node int, p geo.Point) bool { return m.OwnerOf(p) == node }

// NodeClips is one node's share of a scattered query: disjoint clip
// rectangles covering the cells the node owns within the query rect.
type NodeClips struct {
	Node  int
	Rects []geo.Rect
}

// PlanQuery classifies a range query rect against the map. When every cell
// the rect overlaps — out-of-world extents clamp onto the boundary cells,
// exactly as points do — has one owner, it returns (owner, nil): forward
// the query unmodified. Otherwise it returns (-1, parts): per-node disjoint
// clips whose per-node counts sum to the unpartitioned answer.
//
// Clips cut only at interior partition boundaries. A clip bordering the
// world edge extends to the query's own edge on that side, so out-of-world
// points — clamped onto boundary cells for placement — stay in the clip of
// the node that stores them.
func (m *Map) PlanQuery(r geo.Rect) (owner int, parts []NodeClips) {
	colMin, colMax := spanOf(m.xs, r.MinX, r.MaxX)
	rowMin, rowMax := spanOf(m.ys, r.MinY, r.MaxY)

	first := m.Owners[rowMin*m.Cols+colMin]
	single := true
	for row := rowMin; row <= rowMax && single; row++ {
		for col := colMin; col <= colMax; col++ {
			if m.Owners[row*m.Cols+col] != first {
				single = false
				break
			}
		}
	}
	if single {
		return int(first), nil
	}

	// Scatter: horizontal runs of same-owner cells per row, merged
	// vertically when adjacent rows produce an identical column range for
	// the same owner — a stripe map yields one rect per node.
	type strip struct {
		owner      int32
		c0, c1     int
		row0, row1 int
	}
	var strips []strip
	for row := rowMin; row <= rowMax; row++ {
		rowStart := len(strips)
		cur, c0 := m.Owners[row*m.Cols+colMin], colMin
		for col := colMin + 1; col <= colMax+1; col++ {
			if col <= colMax && m.Owners[row*m.Cols+col] == cur {
				continue
			}
			merged := false
			for i := 0; i < rowStart; i++ {
				s := &strips[i]
				if s.owner == cur && s.c0 == c0 && s.c1 == col-1 && s.row1 == row-1 {
					s.row1 = row
					merged = true
					break
				}
			}
			if !merged {
				strips = append(strips, strip{owner: cur, c0: c0, c1: col - 1, row0: row, row1: row})
			}
			if col <= colMax {
				cur, c0 = m.Owners[row*m.Cols+col], col
			}
		}
	}

	byNode := make(map[int32]int)
	for _, s := range strips {
		xlo, xhi := math.Inf(-1), math.Inf(1)
		if s.c0 > 0 {
			xlo = m.xs[s.c0]
		}
		if s.c1 < m.Cols-1 {
			xhi = m.xs[s.c1+1]
		}
		ylo, yhi := math.Inf(-1), math.Inf(1)
		if s.row0 > 0 {
			ylo = m.ys[s.row0]
		}
		if s.row1 < m.Rows-1 {
			yhi = m.ys[s.row1+1]
		}
		clip := r.Intersect(geo.Rect{MinX: xlo, MinY: ylo, MaxX: xhi, MaxY: yhi})
		if clip.Empty() {
			// A query edge exactly on a partition boundary leaves a
			// zero-area sliver on the far side; half-open rects contain no
			// points there and the engines reject empty rects, so skip.
			continue
		}
		i, ok := byNode[s.owner]
		if !ok {
			i = len(parts)
			parts = append(parts, NodeClips{Node: int(s.owner)})
			byNode[s.owner] = i
		}
		parts[i].Rects = append(parts[i].Rects, clip)
	}
	if len(parts) == 1 {
		// All surviving clips landed on one node (the competing cells held
		// only zero-area slivers): forwarding the whole rect is exact.
		return parts[0].Node, nil
	}
	return -1, parts
}

// spanOf returns the inclusive range of cell indices a half-open interval
// [lo, hi) overlaps, clamped onto the boundary cells exactly as locate
// clamps points: an interval entirely outside the world overlaps the cell
// its points clamp into. For any v in [lo, hi), locate(bs, v) falls inside
// the returned range — the property query planning rests on.
func spanOf(bs []float64, lo, hi float64) (int, int) {
	first := locate(bs, lo)
	// Last overlapped cell: the one whose start is strictly below hi.
	last := sort.Search(len(bs), func(i int) bool { return bs[i] >= hi }) - 1
	if last < first {
		last = first
	}
	if last > len(bs)-2 {
		last = len(bs) - 2
	}
	return first, last
}

// OwnsQuery reports whether node may answer query footprint r under this
// map: the rect (or its clamped landing cell, when out of world) must be
// owned entirely by node. Clipped sub-rects produced by PlanQuery against
// the same map always pass on their target node.
func (m *Map) OwnsQuery(node int, r geo.Rect) bool {
	owner, parts := m.PlanQuery(r)
	return parts == nil && owner == node
}

// Encode serializes the map in the CRC-framed persist format:
//
//	magic "LMAP", version u16, epoch u64, world 4×f64, cols u32, rows u32,
//	nodes []string, owners u32 count + count×u32, crc32-IEEE of all
//	preceding bytes
func (m *Map) Encode() []byte {
	var e persist.Enc
	e.U8(mapMagic[0])
	e.U8(mapMagic[1])
	e.U8(mapMagic[2])
	e.U8(mapMagic[3])
	e.U16(mapVersion)
	e.U64(m.Epoch)
	e.F64(m.World.MinX)
	e.F64(m.World.MinY)
	e.F64(m.World.MaxX)
	e.F64(m.World.MaxY)
	e.U32(uint32(m.Cols))
	e.U32(uint32(m.Rows))
	e.Strs(m.Nodes)
	e.U32(uint32(len(m.Owners)))
	for _, o := range m.Owners {
		e.U32(uint32(o))
	}
	crc := crc32.ChecksumIEEE(e.Data())
	e.U32(crc)
	return e.Data()
}

// DecodeMap parses and validates an encoded partition map. The returned
// map is fully initialized and shares no memory with data.
func DecodeMap(data []byte) (*Map, error) {
	if len(data) < 4+2+4 {
		return nil, fmt.Errorf("cluster: map blob truncated (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	d := persist.NewDec(crcBytes)
	if got, want := d.U32(), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("cluster: map CRC mismatch (got %08x want %08x)", got, want)
	}
	d = persist.NewDec(body)
	var magic [4]byte
	magic[0], magic[1], magic[2], magic[3] = d.U8(), d.U8(), d.U8(), d.U8()
	if magic != mapMagic {
		return nil, fmt.Errorf("cluster: bad map magic %q", magic[:])
	}
	if v := d.U16(); v != mapVersion {
		return nil, fmt.Errorf("cluster: map version %d, this build reads %d", v, mapVersion)
	}
	m := &Map{Epoch: d.U64()}
	m.World.MinX = d.F64()
	m.World.MinY = d.F64()
	m.World.MaxX = d.F64()
	m.World.MaxY = d.F64()
	m.Cols = int(d.U32())
	m.Rows = int(d.U32())
	m.Nodes = d.Strs()
	n := int(d.U32())
	if d.Err() == nil && (n < 0 || n*4 > d.Remaining()) {
		return nil, fmt.Errorf("cluster: map declares %d owners, %d bytes remain", n, d.Remaining())
	}
	m.Owners = make([]int32, n)
	for i := range m.Owners {
		m.Owners[i] = int32(d.U32())
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("cluster: map decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
