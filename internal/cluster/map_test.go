package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
)

var testNodes = []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"}

func mustUniform(t *testing.T, world geo.Rect, cols, rows int, nodes []string, epoch uint64) *Map {
	t.Helper()
	m, err := Uniform(world, cols, rows, nodes, epoch)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return m
}

func TestUniformStripes(t *testing.T) {
	m := mustUniform(t, geo.UnitSquare, 6, 2, testNodes, 1)
	// 6 columns over 3 nodes: columns 0-1 -> node 0, 2-3 -> node 1, 4-5 -> node 2.
	for row := 0; row < 2; row++ {
		for col := 0; col < 6; col++ {
			want := int32(col / 2)
			if got := m.Owners[row*6+col]; got != want {
				t.Errorf("cell (%d,%d) owner %d, want %d", col, row, got, want)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		m    Map
	}{
		{"zero grid", Map{World: geo.UnitSquare, Nodes: testNodes}},
		{"huge grid", Map{World: geo.UnitSquare, Cols: 4096, Rows: 4096, Nodes: testNodes}},
		{"empty world", Map{Cols: 2, Rows: 2, Nodes: testNodes}},
		{"no nodes", Map{World: geo.UnitSquare, Cols: 1, Rows: 1, Owners: []int32{0}}},
		{"owner count", Map{World: geo.UnitSquare, Cols: 2, Rows: 2, Nodes: testNodes, Owners: []int32{0}}},
		{"owner range", Map{World: geo.UnitSquare, Cols: 1, Rows: 1, Nodes: testNodes, Owners: []int32{3}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid map", tc.name)
		}
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := mustUniform(t, geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}, 8, 4, testNodes, 42)
	enc := m.Encode()
	got, err := DecodeMap(enc)
	if err != nil {
		t.Fatalf("DecodeMap: %v", err)
	}
	if got.Epoch != m.Epoch || got.World != m.World || got.Cols != m.Cols || got.Rows != m.Rows {
		t.Fatalf("decoded header mismatch: %+v vs %+v", got, m)
	}
	if !reflect.DeepEqual(got.Owners, m.Owners) || !reflect.DeepEqual(got.Nodes, m.Nodes) {
		t.Fatalf("decoded body mismatch")
	}
	if !reflect.DeepEqual(got.xs, m.xs) || !reflect.DeepEqual(got.ys, m.ys) {
		t.Fatalf("decoded map boundaries differ from original: routing would diverge")
	}
}

func TestMapDecodeRejectsCorruption(t *testing.T) {
	enc := mustUniform(t, geo.UnitSquare, 4, 4, testNodes, 7).Encode()

	for _, n := range []int{0, 3, 9} {
		if _, err := DecodeMap(enc[:n]); err == nil {
			t.Errorf("DecodeMap accepted %d-byte truncation", n)
		}
	}
	for _, i := range []int{0, 5, 12, len(enc) - 5, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeMap(bad); err == nil {
			t.Errorf("DecodeMap accepted flipped bit at offset %d", i)
		}
	}
}

func TestLocateHalfOpenBoundaries(t *testing.T) {
	m := mustUniform(t, geo.UnitSquare, 4, 4, testNodes, 1)
	// A point exactly on an interior boundary belongs to the cell on its
	// right (min-closed), matching geo.Rect semantics.
	if got := locate(m.xs, m.xs[2]); got != 2 {
		t.Errorf("locate(boundary x2) = %d, want 2", got)
	}
	if got := locate(m.xs, math.Nextafter(m.xs[2], 0)); got != 1 {
		t.Errorf("locate(just below x2) = %d, want 1", got)
	}
	// Out-of-range values clamp onto the boundary cells.
	if got := locate(m.xs, -5); got != 0 {
		t.Errorf("locate(-5) = %d, want 0", got)
	}
	if got := locate(m.xs, 5); got != 3 {
		t.Errorf("locate(5) = %d, want 3", got)
	}
	// The world max edge itself clamps into the last cell.
	if got := locate(m.xs, 1); got != 3 {
		t.Errorf("locate(max edge) = %d, want 3", got)
	}
}

func TestPlanQueryForward(t *testing.T) {
	m := mustUniform(t, geo.UnitSquare, 6, 2, testNodes, 1)
	cases := []struct {
		name  string
		r     geo.Rect
		owner int
	}{
		{"inside one stripe", geo.Rect{MinX: 0.05, MinY: 0.1, MaxX: 0.3, MaxY: 0.9}, 0},
		{"exact stripe", geo.Rect{MinX: 1.0 / 3, MinY: 0, MaxX: 2.0 / 3, MaxY: 1}, 1},
		{"out of world left", geo.Rect{MinX: -3, MinY: 0.2, MaxX: -2, MaxY: 0.4}, 0},
		{"out of world right", geo.Rect{MinX: 2, MinY: 0.2, MaxX: 3, MaxY: 0.4}, 2},
		{"beyond world edge", geo.Rect{MinX: 0.9, MinY: 0.5, MaxX: 4, MaxY: 5}, 2},
	}
	for _, tc := range cases {
		owner, parts := m.PlanQuery(tc.r)
		if parts != nil {
			t.Errorf("%s: expected forward, got %d parts", tc.name, len(parts))
			continue
		}
		if owner != tc.owner {
			t.Errorf("%s: owner %d, want %d", tc.name, owner, tc.owner)
		}
		if !m.OwnsQuery(tc.owner, tc.r) {
			t.Errorf("%s: OwnsQuery(%d) = false for a forwarded rect", tc.name, tc.owner)
		}
	}
}

func TestPlanQueryScatterStripeMap(t *testing.T) {
	m := mustUniform(t, geo.UnitSquare, 6, 2, testNodes, 1)
	r := geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	owner, parts := m.PlanQuery(r)
	if owner != -1 || len(parts) != 3 {
		t.Fatalf("PlanQuery = (%d, %d parts), want (-1, 3 parts)", owner, len(parts))
	}
	// Vertical merge must give one rect per node on a stripe map.
	for _, p := range parts {
		if len(p.Rects) != 1 {
			t.Fatalf("node %d got %d rects, want 1 (vertical merge)", p.Node, len(p.Rects))
		}
		if !m.OwnsQuery(p.Node, p.Rects[0]) {
			t.Errorf("node %d does not own its own clip %v", p.Node, p.Rects[0])
		}
	}
}

func TestPlanQuerySliverOnBoundary(t *testing.T) {
	m := mustUniform(t, geo.UnitSquare, 3, 1, testNodes, 1)
	// MaxX exactly on the node-0/node-1 boundary: the node-1 share is a
	// zero-area sliver, so the whole rect forwards to node 0.
	r := geo.Rect{MinX: 0.1, MinY: 0.2, MaxX: m.xs[1], MaxY: 0.8}
	owner, parts := m.PlanQuery(r)
	if parts != nil || owner != 0 {
		t.Fatalf("PlanQuery = (%d, %v), want forward to 0", owner, parts)
	}
}

func TestPlanQueryOutOfWorldSpansStripes(t *testing.T) {
	m := mustUniform(t, geo.UnitSquare, 6, 2, testNodes, 1)
	// A rect entirely above the world spanning every column stripe: objects
	// inside it clamp onto top-row cells of *different* nodes, so the plan
	// must scatter across all three — forwarding to the min corner's owner
	// would lose the other stripes' clamped objects.
	r := geo.Rect{MinX: -1, MinY: 2, MaxX: 2, MaxY: 3}
	owner, parts := m.PlanQuery(r)
	if owner != -1 || len(parts) != 3 {
		t.Fatalf("PlanQuery = (%d, %d parts), want scatter to 3 nodes", owner, len(parts))
	}
	checkDisjointExact(t, m, r, parts)
}

func TestPlanQueryCheckerboardMerge(t *testing.T) {
	// Hand-assembled 4x4 checkerboard between two nodes: exercises run
	// splitting and vertical-merge candidate matching off the stripe path.
	m := &Map{
		Epoch: 1, World: geo.UnitSquare, Cols: 4, Rows: 4,
		Nodes: testNodes[:2],
	}
	m.Owners = make([]int32, 16)
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			m.Owners[row*4+col] = int32((row + col) % 2)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r := geo.Rect{MinX: 0.01, MinY: 0.01, MaxX: 0.99, MaxY: 0.99}
	_, parts := m.PlanQuery(r)
	checkDisjointExact(t, m, r, parts)
}

// checkDisjointExact asserts the clipping invariant directly: every point of
// the query rect lies in exactly one clip, and that clip belongs to the node
// that owns the point.
func checkDisjointExact(t *testing.T, m *Map, r geo.Rect, parts []NodeClips) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	samplePoints := boundaryBiasedPoints(rng, m, r, 400)
	for _, p := range samplePoints {
		hits, hitNode := 0, -1
		for _, part := range parts {
			for _, clip := range part.Rects {
				if clip.Contains(p) {
					hits++
					hitNode = part.Node
				}
			}
		}
		if !r.Contains(p) {
			if hits != 0 {
				t.Fatalf("point %v outside query hit %d clips", p, hits)
			}
			continue
		}
		if hits != 1 {
			t.Fatalf("point %v in query hit %d clips, want exactly 1", p, hits)
		}
		if own := m.OwnerOf(p); own != hitNode {
			t.Fatalf("point %v in clip of node %d but owned by node %d", p, hitNode, own)
		}
	}
}

// boundaryBiasedPoints samples points around r, snapping coordinates onto
// partition boundaries often — the 1-ulp disagreements live there.
func boundaryBiasedPoints(rng *rand.Rand, m *Map, r geo.Rect, n int) []geo.Point {
	coord := func(bs []float64, lo, hi float64) float64 {
		switch rng.Intn(4) {
		case 0:
			return bs[rng.Intn(len(bs))] // exactly on a boundary
		case 1:
			b := bs[rng.Intn(len(bs))]
			return math.Nextafter(b, lo) // one ulp off a boundary
		default:
			return lo + rng.Float64()*(hi-lo)
		}
	}
	pts := make([]geo.Point, 0, n)
	pad := 0.1 * (r.MaxX - r.MinX)
	for i := 0; i < n; i++ {
		pts = append(pts, geo.Pt(
			coord(m.xs, r.MinX-pad, r.MaxX+pad),
			coord(m.ys, r.MinY-pad, r.MaxY+pad),
		))
	}
	return pts
}

func TestPlanQueryPropertyRandom(t *testing.T) {
	world := geo.Rect{MinX: -10, MinY: -5, MaxX: 10, MaxY: 5}
	m := mustUniform(t, world, 9, 3, testNodes, 1)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		// Random rect, sometimes snapped to boundaries, sometimes poking
		// past the world edges.
		rc := func(bs []float64, lo, hi float64) float64 {
			if rng.Intn(3) == 0 {
				return bs[rng.Intn(len(bs))]
			}
			return lo + rng.Float64()*(hi-lo)
		}
		x1, x2 := rc(m.xs, -14, 14), rc(m.xs, -14, 14)
		y1, y2 := rc(m.ys, -8, 8), rc(m.ys, -8, 8)
		r := geo.NewRect(geo.Pt(x1, y1), geo.Pt(x2, y2))
		if r.Empty() {
			continue
		}
		owner, parts := m.PlanQuery(r)
		if parts == nil {
			// Forwarded: the owner must own every sampled in-rect point.
			for _, p := range boundaryBiasedPoints(rng, m, r, 40) {
				if r.Contains(p) && m.OwnerOf(p) != owner {
					t.Fatalf("trial %d: rect %v forwarded to %d but point %v owned by %d",
						trial, r, owner, p, m.OwnerOf(p))
				}
			}
			continue
		}
		checkDisjointExact(t, m, r, parts)
	}
}
