package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/wire"
)

// Backend is the routing surface a Proxy fronts. *Router implements it;
// client.Cluster re-exposes the same router, so cmd/latest-router can
// build a Proxy over either.
type Backend interface {
	FeedBatch(ctx context.Context, objs []stream.Object) (uint32, error)
	Estimate(ctx context.Context, q stream.Query) (float64, error)
	QueryBatch(ctx context.Context, qs []stream.Query) ([]float64, []int, error)
	Epoch() uint64
	MapBytes() []byte
	Sample() telemetry.ClusterSample
}

// ProxyConfig tunes a Proxy. Zero values mean defaults.
type ProxyConfig struct {
	// Addr is the wire-protocol listen address (port 0 lets the kernel
	// pick; read it back with Addr).
	Addr string
	// AdminAddr, when non-empty, starts the HTTP admin/exposition plane
	// with the latest_cluster_* families.
	AdminAddr string
	// MaxConns caps open client connections. Default 256.
	MaxConns int
	// MaxInFlight bounds each connection's queued-but-unwritten
	// responses. Default 64.
	MaxInFlight int
	// MaxPayload bounds accepted frame payloads. Default
	// wire.DefaultMaxPayload.
	MaxPayload int
	// RetryAfter is the hint carried in backpressure/draining refusals.
	// Default 50ms.
	RetryAfter time.Duration
	// Log receives lifecycle lines. nil is silent.
	Log *telemetry.Logger
}

func (c *ProxyConfig) withDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = wire.DefaultMaxPayload
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
}

// Proxy speaks the latestd wire protocol to clients and drives a Backend
// (normally a Router) to answer: unmodified clients talk to a cluster
// exactly as they talk to a single node. Pings answer locally with the
// router's map epoch; TMapFetch serves the router's current map, so a
// proxy is also a valid map seed for other routers.
type Proxy struct {
	cfg     ProxyConfig
	backend Backend
	ln      net.Listener
	admin   *telemetry.Server
	log     *telemetry.Logger

	connsActive   atomic.Int64
	connsAccepted atomic.Uint64
	connsRejected atomic.Uint64
	reqErrors     atomic.Uint64

	draining atomic.Bool
	drainCh  chan struct{}
	drainReq sync.Once

	mu     sync.Mutex
	conns  map[*pconn]struct{}
	closed bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	stopOnce sync.Once
}

// NewProxy binds the listener (and admin plane when configured) and
// starts accepting.
func NewProxy(backend Backend, cfg ProxyConfig) (*Proxy, error) {
	if backend == nil {
		return nil, errors.New("cluster: nil proxy backend")
	}
	cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: proxy listen: %w", err)
	}
	p := &Proxy{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		log:     cfg.Log.Named("router"),
		drainCh: make(chan struct{}),
		conns:   make(map[*pconn]struct{}),
	}
	if cfg.AdminAddr != "" {
		admin, err := telemetry.Serve(cfg.AdminAddr, p.snapshot, cfg.Log,
			telemetry.Route{Pattern: "/healthz", Handler: http.HandlerFunc(p.handleHealthz)},
			telemetry.Route{Pattern: "/readyz", Handler: http.HandlerFunc(p.handleReadyz)},
			telemetry.Route{Pattern: "/drain", Handler: http.HandlerFunc(p.handleDrain)},
		)
		if err != nil {
			ln.Close()
			return nil, err
		}
		p.admin = admin
	}
	p.acceptWG.Add(1)
	go p.acceptLoop()
	p.log.Info("routing", "addr", ln.Addr().String(), "admin", cfg.AdminAddr,
		"epoch", backend.Epoch())
	return p, nil
}

// Addr returns the bound wire-protocol address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// AdminAddr returns the bound admin address, or "" when disabled.
func (p *Proxy) AdminAddr() string {
	if p.admin == nil {
		return ""
	}
	return p.admin.Addr()
}

// DrainRequested is closed when an operator hits the admin /drain
// endpoint.
func (p *Proxy) DrainRequested() <-chan struct{} { return p.drainCh }

func (p *Proxy) snapshot() telemetry.Snapshot {
	sample := p.backend.Sample()
	return telemetry.Snapshot{Engine: "router", Cluster: &sample}
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":%q,"draining":%v,"conns":%d,"epoch":%d}`+"\n",
		statusOf(p.draining.Load()), p.draining.Load(), p.connsActive.Load(), p.backend.Epoch())
}

func statusOf(draining bool) string {
	if draining {
		return "draining"
	}
	return "ok"
}

func (p *Proxy) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if p.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false,"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"ready":true,"status":"ok"}`)
}

func (p *Proxy) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	p.drainReq.Do(func() { close(p.drainCh) })
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"draining":true}`)
}

func (p *Proxy) acceptLoop() {
	defer p.acceptWG.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.draining.Load() || p.connsActive.Load() >= int64(p.cfg.MaxConns) {
			p.connsRejected.Add(1)
			nc.Close()
			continue
		}
		c := newPconn(p, nc)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.connsActive.Add(1)
		p.connsAccepted.Add(1)
		p.connWG.Add(1)
		go c.serve()
	}
}

func (p *Proxy) removeConn(c *pconn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	p.connsActive.Add(-1)
	p.connWG.Done()
}

// Shutdown drains gracefully, mirroring the server's GOAWAY sequence:
// stop accepting, refuse new requests with CodeDraining, flush accepted
// work, wait for peers to hang up, force-close at ctx expiry.
func (p *Proxy) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	p.stopOnce.Do(func() {
		p.draining.Store(true)
		p.ln.Close()
		p.acceptWG.Wait()
		p.log.Info("draining", "conns", p.connsActive.Load())
		done := make(chan struct{})
		go func() {
			p.connWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			p.mu.Lock()
			n := len(p.conns)
			for c := range p.conns {
				c.nc.Close()
			}
			p.mu.Unlock()
			<-done
			err = fmt.Errorf("cluster: drain deadline: force-closed %d conns: %w", n, ctx.Err())
		}
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		if p.admin != nil {
			if aerr := p.admin.Shutdown(ctx); err == nil {
				err = aerr
			}
		}
		p.log.Info("stopped")
	})
	return err
}

// Close force-stops the proxy.
func (p *Proxy) Close() error {
	var err error
	p.stopOnce.Do(func() {
		p.draining.Store(true)
		p.ln.Close()
		p.acceptWG.Wait()
		p.mu.Lock()
		p.closed = true
		for c := range p.conns {
			c.nc.Close()
		}
		p.mu.Unlock()
		p.connWG.Wait()
		if p.admin != nil {
			err = p.admin.Close()
		}
		p.log.Info("stopped")
	})
	return err
}

// pconn is one proxied client connection: the same read/write loop split
// as the server's conn, minus feed coalescing (the router re-batches by
// owner anyway) and tracing.
type pconn struct {
	p      *Proxy
	nc     net.Conn
	fr     *wire.FrameReader
	out    chan *[]byte
	window chan struct{}

	workers sync.WaitGroup
	objs    []stream.Object // decode scratch, read loop only
}

func newPconn(p *Proxy, nc net.Conn) *pconn {
	return &pconn{
		p:      p,
		nc:     nc,
		fr:     wire.NewFrameReader(bufio.NewReaderSize(nc, 64<<10), p.cfg.MaxPayload),
		out:    make(chan *[]byte, p.cfg.MaxInFlight+outHeadroom),
		window: make(chan struct{}, p.cfg.MaxInFlight),
	}
}

// outHeadroom mirrors the server's: refusal frames must always enqueue.
const outHeadroom = 16

func (c *pconn) serve() {
	defer c.p.removeConn(c)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	c.readLoop()
	c.workers.Wait()
	close(c.out)
	wg.Wait()
	c.nc.Close()
}

func (c *pconn) writeLoop() {
	failed := false
	for b := range c.out {
		if !failed {
			if _, err := c.nc.Write(*b); err != nil {
				failed = true
				c.nc.Close()
			}
		}
		wire.PutBuf(b)
	}
}

func (c *pconn) enqueue(b *[]byte) { c.out <- b }

func (c *pconn) sendErr(id uint64, code wire.Code, retryAfter time.Duration, msg string) {
	c.p.reqErrors.Add(1)
	b := wire.GetBuf()
	*b = wire.AppendError(*b, id, code, uint32(retryAfter.Milliseconds()), msg)
	c.enqueue(b)
}

func (c *pconn) decodeErr(id uint64, err error) {
	var pe *wire.ProtoError
	if errors.As(err, &pe) {
		c.sendErr(id, pe.Code, 0, pe.Reason)
		return
	}
	c.sendErr(id, wire.CodeMalformed, 0, err.Error())
}

// backendErr maps a routing failure onto a typed error frame.
func (c *pconn) backendErr(id uint64, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		c.sendErr(id, wire.CodeDeadlineExceeded, 0, err.Error())
	default:
		c.sendErr(id, wire.CodeInternal, 0, err.Error())
	}
}

func (c *pconn) readLoop() {
	for {
		h, payload, err := c.fr.Next()
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			var pe *wire.ProtoError
			if errors.As(err, &pe) {
				c.sendErr(0, pe.Code, 0, pe.Reason)
				c.p.log.Warn("framing error, dropping conn",
					"remote", c.nc.RemoteAddr().String(), "err", pe.Reason)
			}
			return
		}
		c.dispatch(h, payload)
	}
}

func (c *pconn) dispatch(h wire.Header, payload []byte) {
	_, payload, err := wire.SplitTrace(h, payload)
	if err != nil {
		c.decodeErr(h.ID, err)
		return
	}
	if !h.Type.Request() {
		c.sendErr(h.ID, wire.CodeUnknownType, 0, "not a request type: "+h.Type.String())
		return
	}
	if c.p.draining.Load() {
		c.sendErr(h.ID, wire.CodeDraining, c.p.cfg.RetryAfter, "router draining")
		return
	}
	switch h.Type {
	case wire.TPing:
		if len(c.out) >= c.p.cfg.MaxInFlight {
			c.sendErr(h.ID, wire.CodeBackpressure, c.p.cfg.RetryAfter, "in-flight window full")
			return
		}
		b := wire.GetBuf()
		*b = wire.AppendPongEpoch(*b, h.ID, c.p.backend.Epoch())
		c.enqueue(b)
	case wire.TMapFetch:
		if len(c.out) >= c.p.cfg.MaxInFlight {
			c.sendErr(h.ID, wire.CodeBackpressure, c.p.cfg.RetryAfter, "in-flight window full")
			return
		}
		b := wire.GetBuf()
		*b = wire.AppendMapResult(*b, h.ID, c.p.backend.MapBytes())
		c.enqueue(b)
	case wire.TFeedBatch:
		if len(c.out) >= c.p.cfg.MaxInFlight {
			c.sendErr(h.ID, wire.CodeBackpressure, c.p.cfg.RetryAfter, "in-flight window full")
			return
		}
		c.handleFeed(h, payload)
	case wire.TEstimate, wire.TQueryBatch:
		select {
		case c.window <- struct{}{}:
		default:
			c.sendErr(h.ID, wire.CodeBackpressure, c.p.cfg.RetryAfter, "in-flight window full")
			return
		}
		if h.Type == wire.TEstimate {
			c.handleEstimate(h, payload)
		} else {
			c.handleQueryBatch(h, payload)
		}
	}
}

// handleFeed routes one feed batch inline on the read loop: ingest order
// is part of stream semantics, exactly as on the server.
func (c *pconn) handleFeed(h wire.Header, payload []byte) {
	objs, err := wire.DecodeFeedBatch(payload, c.objs)
	if err != nil {
		c.decodeErr(h.ID, err)
		return
	}
	n, err := c.p.backend.FeedBatch(context.Background(), objs)
	c.objs = objs[:0]
	if err != nil {
		c.backendErr(h.ID, err)
		return
	}
	b := wire.GetBuf()
	*b = wire.AppendAck(*b, h.ID, n)
	c.enqueue(b)
}

// deadlineCtx applies a request's relative deadline budget.
func deadlineCtx(deadlineMS uint32) (context.Context, context.CancelFunc) {
	if deadlineMS == 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(deadlineMS)*time.Millisecond)
}

func (c *pconn) handleEstimate(h wire.Header, payload []byte) {
	deadlineMS, q, err := wire.DecodeEstimate(payload)
	if err != nil {
		<-c.window
		c.decodeErr(h.ID, err)
		return
	}
	c.workers.Add(1)
	go func() {
		defer c.workers.Done()
		defer func() { <-c.window }()
		ctx, cancel := deadlineCtx(deadlineMS)
		defer cancel()
		est, err := c.p.backend.Estimate(ctx, q)
		if err != nil {
			c.backendErr(h.ID, err)
			return
		}
		b := wire.GetBuf()
		*b = wire.AppendEstimateResult(*b, h.ID, est)
		c.enqueue(b)
	}()
}

func (c *pconn) handleQueryBatch(h wire.Header, payload []byte) {
	deadlineMS, qs, err := wire.DecodeQueryBatch(payload, nil)
	if err != nil {
		<-c.window
		c.decodeErr(h.ID, err)
		return
	}
	c.workers.Add(1)
	go func() {
		defer c.workers.Done()
		defer func() { <-c.window }()
		ctx, cancel := deadlineCtx(deadlineMS)
		defer cancel()
		ests, acts, err := c.p.backend.QueryBatch(ctx, qs)
		if err != nil {
			c.backendErr(h.ID, err)
			return
		}
		b := wire.GetBuf()
		*b = wire.AppendQueryBatchResult(*b, h.ID, ests, acts)
		c.enqueue(b)
	}()
}
