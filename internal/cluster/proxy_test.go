package cluster

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/wire"
)

// rawProxyConn drives the proxy's wire plane directly.
type rawProxyConn struct {
	t  *testing.T
	nc net.Conn
	fr *wire.FrameReader
}

func dialProxy(t *testing.T, addr string) *rawProxyConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawProxyConn{t: t, nc: nc, fr: wire.NewFrameReader(bufio.NewReader(nc), 0)}
}

func (r *rawProxyConn) roundTrip(frame []byte) (wire.Header, []byte) {
	r.t.Helper()
	if _, err := r.nc.Write(frame); err != nil {
		r.t.Fatal(err)
	}
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	h, payload, err := r.fr.Next()
	if err != nil {
		r.t.Fatal(err)
	}
	return h, append([]byte(nil), payload...)
}

func startTestProxy(t *testing.T) (*Proxy, *fakeCluster, *Map) {
	t.Helper()
	truth := mustUniform(t, geo.UnitSquare, 6, 1, testNodes, 3)
	fc := newFakeCluster(t, truth)
	r := NewRouter(truth, fc.dial, Options{})
	p, err := NewProxy(r, ProxyConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		r.Close()
	})
	return p, fc, truth
}

func TestProxyPingCarriesEpoch(t *testing.T) {
	p, _, m := startTestProxy(t)
	rc := dialProxy(t, p.Addr())
	h, payload := rc.roundTrip(wire.AppendPing(nil, 1))
	if h.Type != wire.TPong {
		t.Fatalf("got %v, want pong", h.Type)
	}
	epoch, has, err := wire.DecodePong(payload)
	if err != nil || !has || epoch != m.Epoch {
		t.Fatalf("pong epoch = (%d, %v, %v), want (%d, true, nil)", epoch, has, err, m.Epoch)
	}
}

func TestProxyServesMap(t *testing.T) {
	p, _, m := startTestProxy(t)
	rc := dialProxy(t, p.Addr())
	h, payload := rc.roundTrip(wire.AppendMapFetch(nil, 1))
	if h.Type != wire.TMapResult {
		t.Fatalf("got %v, want map_result", h.Type)
	}
	raw, err := wire.DecodeMapResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch {
		t.Fatalf("served epoch %d, want %d", got.Epoch, m.Epoch)
	}
}

func TestProxyFeedAndQueryEndToEnd(t *testing.T) {
	p, fc, _ := startTestProxy(t)
	rc := dialProxy(t, p.Addr())

	objs := testObjects()
	h, payload := rc.roundTrip(wire.AppendFeedBatch(nil, 1, objs))
	if h.Type != wire.TAck {
		t.Fatalf("feed answered %v, want ack", h.Type)
	}
	n, err := wire.DecodeAck(payload)
	if err != nil || int(n) != len(objs) {
		t.Fatalf("ack = (%d, %v), want %d", n, err, len(objs))
	}
	// The router spread the batch across all three owners.
	spread := 0
	for _, fn := range fc.nodes {
		if fn.count() > 0 {
			spread++
		}
	}
	if spread != 3 {
		t.Fatalf("objects landed on %d nodes, want 3", spread)
	}

	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100)
	h, payload = rc.roundTrip(wire.AppendQueryBatch(nil, 2, 0, []stream.Query{q}))
	if h.Type != wire.TQueryBatchResult {
		t.Fatalf("query answered %v, want result", h.Type)
	}
	_, acts, err := wire.DecodeQueryBatchResult(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acts[0] != len(objs) {
		t.Fatalf("whole-world count through proxy = %d, want %d", acts[0], len(objs))
	}

	h, payload = rc.roundTrip(wire.AppendEstimate(nil, 3, 0, &q))
	if h.Type != wire.TEstimateResult {
		t.Fatalf("estimate answered %v, want result", h.Type)
	}
	est, err := wire.DecodeEstimateResult(payload)
	if err != nil || est != float64(len(objs)) {
		t.Fatalf("estimate = (%v, %v), want %v", est, err, float64(len(objs)))
	}
}

func TestProxyMapsBackendFailureToInternal(t *testing.T) {
	p, fc, _ := startTestProxy(t)
	fc.nodes[testNodes[1]].queryErr = context.DeadlineExceeded
	rc := dialProxy(t, p.Addr())
	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100)
	h, payload := rc.roundTrip(wire.AppendQueryBatch(nil, 1, 0, []stream.Query{q}))
	if h.Type != wire.TError {
		t.Fatalf("got %v, want error frame", h.Type)
	}
	re, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("code %v, want deadline_exceeded", re.Code)
	}
}

func TestProxyDrainRefusesNewRequests(t *testing.T) {
	p, _, _ := startTestProxy(t)
	rc := dialProxy(t, p.Addr())
	// Open the connection before drain starts so it survives the listener
	// close; prime it with a ping.
	if h, _ := rc.roundTrip(wire.AppendPing(nil, 1)); h.Type != wire.TPong {
		t.Fatal("prime ping failed")
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- p.Shutdown(ctx)
	}()
	// Wait until draining is visible, then expect CodeDraining.
	deadline := time.Now().Add(2 * time.Second)
	for !p.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("proxy never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	h, payload := rc.roundTrip(wire.AppendPing(nil, 2))
	if h.Type != wire.TError {
		t.Fatalf("got %v, want draining error", h.Type)
	}
	re, err := wire.DecodeError(payload)
	if err != nil || re.Code != wire.CodeDraining {
		t.Fatalf("code = (%v, %v), want draining", re, err)
	}
	rc.nc.Close()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
