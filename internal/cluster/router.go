package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// Node is one backend latestd as the router sees it: the pipelined request
// surface plus the map-fetch exchange. The client package adapts
// client.Client onto it; tests substitute in-process fakes.
type Node interface {
	FeedBatch(ctx context.Context, objs []stream.Object) (uint32, error)
	Estimate(ctx context.Context, q stream.Query) (float64, error)
	QueryBatch(ctx context.Context, qs []stream.Query) ([]float64, []int, error)
	Ping(ctx context.Context) error
	// FetchMap returns the node's current encoded partition map.
	FetchMap(ctx context.Context) ([]byte, error)
	Close() error
}

// Dialer creates the Node for a map address. The router dials lazily and
// redials only when a map swap introduces a new address.
type Dialer func(addr string) Node

// notOwner matches not-owner refusals across packages: wire.NotOwnerError
// and client.NotOwnerError both implement it, so the router detects the
// refusal regardless of which layer wrapped it.
type notOwner interface{ NotOwnerEpoch() uint64 }

// NodeError is a hard failure of one backend node, surfaced to the caller
// after the router's transparent retries are exhausted or when the failure
// is not a map-staleness refusal.
type NodeError struct {
	Addr string
	Err  error
}

// Error implements error.
func (e *NodeError) Error() string { return "cluster: node " + e.Addr + ": " + e.Err.Error() }

// Unwrap exposes the underlying failure.
func (e *NodeError) Unwrap() error { return e.Err }

// Options tune a Router. The zero value is usable.
type Options struct {
	// MaxMapRetries bounds transparent refetch-and-retry rounds per
	// operation when nodes refuse with not-owner. Default 3.
	MaxMapRetries int
	// Log receives routing lifecycle lines (map swaps). nil is silent.
	Log *telemetry.Logger
}

// nodeStat is one backend's per-node counters.
type nodeStat struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  telemetry.Histogram
}

// routerStats backs telemetry.ClusterSample.
type routerStats struct {
	feedObjects   atomic.Uint64
	feedBatches   atomic.Uint64
	estimates     atomic.Uint64
	queries       atomic.Uint64
	forwardSingle atomic.Uint64
	scatterMulti  atomic.Uint64
	broadcasts    atomic.Uint64
	subqueries    atomic.Uint64
	notOwner      atomic.Uint64
	mapRefetches  atomic.Uint64
	retries       atomic.Uint64
	nodeErrors    atomic.Uint64
}

// Router routes feeds to owning nodes and queries to the nodes whose
// territory they overlap, aggregating scattered answers by exact sum. It
// holds one Node per backend address and swaps its partition map when a
// backend refuses with a newer epoch. Safe for concurrent use.
type Router struct {
	dial Dialer
	opts Options
	log  *telemetry.Logger

	mu      sync.RWMutex
	m       *Map
	encoded []byte
	nodes   map[string]Node
	stats   map[string]*nodeStat
	closed  bool

	st routerStats
}

// NewRouter creates a Router over a validated map. Nodes are dialed
// lazily on first use.
func NewRouter(m *Map, dial Dialer, opts Options) *Router {
	if opts.MaxMapRetries <= 0 {
		opts.MaxMapRetries = 3
	}
	return &Router{
		dial:    dial,
		opts:    opts,
		log:     opts.Log.Named("cluster"),
		m:       m,
		encoded: m.Encode(),
		nodes:   make(map[string]Node),
		stats:   make(map[string]*nodeStat),
	}
}

// SetMaxMapRetries adjusts the stale-map retry budget. Call before the
// router starts carrying traffic; values <= 0 are ignored.
func (r *Router) SetMaxMapRetries(n int) {
	if n > 0 {
		r.opts.MaxMapRetries = n
	}
}

// Map returns the currently held partition map.
func (r *Router) Map() *Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Epoch returns the held map's epoch.
func (r *Router) Epoch() uint64 { return r.Map().Epoch }

// MapBytes returns the held map in encoded form (for serving TMapFetch).
func (r *Router) MapBytes() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.encoded
}

// Close closes every dialed node connection.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	var first error
	for addr, n := range r.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
		delete(r.nodes, addr)
	}
	return first
}

// node returns (dialing if needed) the Node for a map node index.
func (r *Router) node(m *Map, idx int) (Node, *nodeStat, error) {
	addr := m.Nodes[idx]
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, errors.New("cluster: router closed")
	}
	n, ok := r.nodes[addr]
	if !ok {
		n = r.dial(addr)
		r.nodes[addr] = n
	}
	st, ok := r.stats[addr]
	if !ok {
		st = &nodeStat{}
		r.stats[addr] = st
	}
	return n, st, nil
}

// call runs one sub-request against a node with per-node accounting.
func (r *Router) call(m *Map, idx int, fn func(Node) error) error {
	n, st, err := r.node(m, idx)
	if err != nil {
		return err
	}
	st.requests.Add(1)
	start := time.Now()
	err = fn(n)
	st.latency.Record(time.Since(start))
	if err != nil {
		st.errors.Add(1)
	}
	return err
}

// classify splits a sub-request error: a not-owner refusal reports the
// refusing node's epoch; anything else is a hard NodeError.
func (r *Router) classify(m *Map, idx int, err error) (staleEpoch uint64, hard error) {
	var no notOwner
	if errors.As(err, &no) {
		r.st.notOwner.Add(1)
		return no.NotOwnerEpoch(), nil
	}
	r.st.nodeErrors.Add(1)
	return 0, &NodeError{Addr: m.Nodes[idx], Err: err}
}

// refresh fetches a newer map after a not-owner refusal, preferring the
// refusing node (it demonstrably holds a newer epoch), falling back to the
// rest. It returns the map to use for the retry.
func (r *Router) refresh(ctx context.Context, m *Map, preferIdx int) (*Map, error) {
	order := make([]int, 0, len(m.Nodes))
	if preferIdx >= 0 && preferIdx < len(m.Nodes) {
		order = append(order, preferIdx)
	}
	for i := range m.Nodes {
		if i != preferIdx {
			order = append(order, i)
		}
	}
	var lastErr error
	for _, idx := range order {
		var raw []byte
		err := r.call(m, idx, func(n Node) error {
			var ferr error
			raw, ferr = n.FetchMap(ctx)
			return ferr
		})
		if err != nil {
			lastErr = err
			continue
		}
		nm, err := DecodeMap(raw)
		if err != nil {
			lastErr = err
			continue
		}
		r.st.mapRefetches.Add(1)
		return r.install(nm), nil
	}
	return m, fmt.Errorf("cluster: map refetch failed: %w", lastErr)
}

// install swaps in nm when it is newer than the held map and closes node
// connections no newer map references. Returns the map now held.
func (r *Router) install(nm *Map) *Map {
	r.mu.Lock()
	if nm.Epoch <= r.m.Epoch {
		cur := r.m
		r.mu.Unlock()
		return cur
	}
	old := r.m
	r.m = nm
	r.encoded = nm.Encode()
	keep := make(map[string]bool, len(nm.Nodes))
	for _, a := range nm.Nodes {
		keep[a] = true
	}
	var orphans []Node
	for addr, n := range r.nodes {
		if !keep[addr] {
			orphans = append(orphans, n)
			delete(r.nodes, addr)
		}
	}
	r.mu.Unlock()
	for _, n := range orphans {
		n.Close()
	}
	r.log.Info("partition map swapped", "from", old.Epoch, "to", nm.Epoch,
		"nodes", len(nm.Nodes))
	return nm
}

// FeedBatch routes each object to its owning node and feeds the per-node
// buckets concurrently. On a not-owner refusal the affected bucket is
// transparently re-routed under the refetched map; objects already
// accepted by other nodes are never re-sent. Returns the total accepted
// count; a hard node failure surfaces as exactly one *NodeError (with the
// counts accepted elsewhere still reported).
func (r *Router) FeedBatch(ctx context.Context, objs []stream.Object) (uint32, error) {
	r.st.feedBatches.Add(1)
	r.st.feedObjects.Add(uint64(len(objs)))
	if len(objs) == 0 {
		return 0, nil
	}
	var accepted atomic.Uint64
	pending := objs
	m := r.Map()
	for attempt := 0; ; attempt++ {
		buckets := make(map[int][]stream.Object)
		for i := range pending {
			owner := m.OwnerOf(pending[i].Loc)
			buckets[owner] = append(buckets[owner], pending[i])
		}
		type outcome struct {
			idx   int
			err   error
			batch []stream.Object
		}
		results := make(chan outcome, len(buckets))
		for idx, batch := range buckets {
			go func(idx int, batch []stream.Object) {
				err := r.call(m, idx, func(n Node) error {
					got, ferr := n.FeedBatch(ctx, batch)
					if ferr == nil {
						accepted.Add(uint64(got))
					}
					return ferr
				})
				results <- outcome{idx: idx, err: err, batch: batch}
			}(idx, batch)
		}
		var retry []stream.Object
		staleIdx := -1
		var staleEpoch uint64
		var hard error
		for range buckets {
			out := <-results
			if out.err == nil {
				continue
			}
			epoch, nerr := r.classify(m, out.idx, out.err)
			if nerr != nil {
				if hard == nil {
					hard = nerr
				}
				continue
			}
			retry = append(retry, out.batch...)
			staleIdx, staleEpoch = out.idx, epoch
		}
		if hard != nil {
			return uint32(accepted.Load()), hard
		}
		if len(retry) == 0 {
			return uint32(accepted.Load()), nil
		}
		if attempt >= r.opts.MaxMapRetries {
			return uint32(accepted.Load()), fmt.Errorf(
				"cluster: feed still refused after %d map refetches (node epoch %d, router epoch %d)",
				attempt, staleEpoch, m.Epoch)
		}
		nm, err := r.refresh(ctx, m, staleIdx)
		if err != nil {
			return uint32(accepted.Load()), err
		}
		r.st.retries.Add(1)
		m = nm
		pending = retry
	}
}

// subQueries builds the per-node sub-queries for one query under m:
// targets[i] parallels queries[i]. A nil slice with owner >= 0 means
// "forward unmodified to owner".
func planSubQueries(m *Map, q *stream.Query) (owner int, targets []int, qs []stream.Query, mode string) {
	if !q.HasRange {
		// Keyword-only queries count objects, not distinct keywords, so
		// per-node counts over disjoint object sets sum exactly.
		for idx := range m.Nodes {
			targets = append(targets, idx)
			qs = append(qs, *q)
		}
		return -1, targets, qs, "broadcast"
	}
	single, parts := m.PlanQuery(q.Range)
	if parts == nil {
		return single, nil, nil, "forward"
	}
	for _, p := range parts {
		for _, rect := range p.Rects {
			sub := *q
			sub.Range = rect
			targets = append(targets, p.Node)
			qs = append(qs, sub)
		}
	}
	return -1, targets, qs, "scatter"
}

// runQuery answers one query under the current map with transparent
// stale-map retry, returning the summed estimate and exact count.
func (r *Router) runQuery(ctx context.Context, q *stream.Query) (float64, int, error) {
	m := r.Map()
	for attempt := 0; ; attempt++ {
		est, act, staleIdx, staleEpoch, err := r.runQueryOnce(ctx, m, q)
		if err == nil && staleIdx < 0 {
			return est, act, nil
		}
		if err != nil {
			return 0, 0, err
		}
		if attempt >= r.opts.MaxMapRetries {
			return 0, 0, fmt.Errorf(
				"cluster: query still refused after %d map refetches (node epoch %d, router epoch %d)",
				attempt, staleEpoch, m.Epoch)
		}
		nm, rerr := r.refresh(ctx, m, staleIdx)
		if rerr != nil {
			return 0, 0, rerr
		}
		r.st.retries.Add(1)
		m = nm
	}
}

// runQueryOnce scatters one query under m. A not-owner refusal reports
// (staleIdx, staleEpoch) so the caller refetches and reruns the whole
// query — re-asking nodes that already answered is harmless (counts are a
// pure function of the query) — while any hard failure surfaces as one
// *NodeError.
func (r *Router) runQueryOnce(ctx context.Context, m *Map, q *stream.Query) (est float64, act int, staleIdx int, staleEpoch uint64, err error) {
	owner, targets, qs, mode := planSubQueries(m, q)
	switch mode {
	case "forward":
		r.st.forwardSingle.Add(1)
	case "scatter":
		r.st.scatterMulti.Add(1)
	case "broadcast":
		r.st.broadcasts.Add(1)
	}
	if targets == nil {
		r.st.subqueries.Add(1)
		var ests []float64
		var acts []int
		cerr := r.call(m, owner, func(n Node) error {
			var ferr error
			ests, acts, ferr = n.QueryBatch(ctx, []stream.Query{*q})
			return ferr
		})
		if cerr != nil {
			epoch, nerr := r.classify(m, owner, cerr)
			if nerr != nil {
				return 0, 0, -1, 0, nerr
			}
			return 0, 0, owner, epoch, nil
		}
		if len(ests) != 1 || len(acts) != 1 {
			return 0, 0, -1, 0, &NodeError{Addr: m.Nodes[owner],
				Err: fmt.Errorf("forwarded query answered with %d results", len(ests))}
		}
		return ests[0], acts[0], -1, 0, nil
	}

	// Group sub-queries by node: one QueryBatch round trip per node.
	perNode := make(map[int][]stream.Query)
	for i, idx := range targets {
		perNode[idx] = append(perNode[idx], qs[i])
	}
	r.st.subqueries.Add(uint64(len(targets)))
	type outcome struct {
		idx  int
		ests []float64
		acts []int
		err  error
	}
	results := make(chan outcome, len(perNode))
	for idx, batch := range perNode {
		go func(idx int, batch []stream.Query) {
			var o outcome
			o.idx = idx
			o.err = r.call(m, idx, func(n Node) error {
				var ferr error
				o.ests, o.acts, ferr = n.QueryBatch(ctx, batch)
				if ferr == nil && len(o.ests) != len(batch) {
					ferr = fmt.Errorf("scatter sent %d sub-queries, got %d results", len(batch), len(o.ests))
				}
				return ferr
			})
			results <- o
		}(idx, batch)
	}
	staleIdx = -1
	var hard error
	for range perNode {
		o := <-results
		if o.err != nil {
			epoch, nerr := r.classify(m, o.idx, o.err)
			if nerr != nil {
				if hard == nil {
					hard = nerr
				}
				continue
			}
			staleIdx, staleEpoch = o.idx, epoch
			continue
		}
		for i := range o.ests {
			est += o.ests[i]
			act += o.acts[i]
		}
	}
	if hard != nil {
		return 0, 0, -1, 0, hard
	}
	if staleIdx >= 0 {
		return 0, 0, staleIdx, staleEpoch, nil
	}
	return est, act, -1, 0, nil
}

// Estimate answers one query's selectivity estimate: the sum of the
// owning nodes' estimates (each node also closes its own accuracy
// feedback loop on its slice of the data).
func (r *Router) Estimate(ctx context.Context, q stream.Query) (float64, error) {
	r.st.estimates.Add(1)
	est, _, err := r.runQuery(ctx, &q)
	return est, err
}

// QueryBatch runs full estimate+execute cycles, returning summed per-node
// estimates and exact counts. Queries run in order; each query's scatter
// fans out concurrently.
func (r *Router) QueryBatch(ctx context.Context, qs []stream.Query) ([]float64, []int, error) {
	r.st.queries.Add(1)
	ests := make([]float64, len(qs))
	acts := make([]int, len(qs))
	for i := range qs {
		est, act, err := r.runQuery(ctx, &qs[i])
		if err != nil {
			return nil, nil, err
		}
		ests[i], acts[i] = est, act
	}
	return ests, acts, nil
}

// Ping checks liveness of every node in the held map.
func (r *Router) Ping(ctx context.Context) error {
	m := r.Map()
	for idx := range m.Nodes {
		if err := r.call(m, idx, func(n Node) error { return n.Ping(ctx) }); err != nil {
			return &NodeError{Addr: m.Nodes[idx], Err: err}
		}
	}
	return nil
}

// Sample builds the routing layer's slice of a telemetry snapshot.
func (r *Router) Sample() telemetry.ClusterSample {
	m := r.Map()
	s := telemetry.ClusterSample{
		Epoch:         m.Epoch,
		Nodes:         len(m.Nodes),
		Cols:          m.Cols,
		Rows:          m.Rows,
		FeedObjects:   r.st.feedObjects.Load(),
		FeedBatches:   r.st.feedBatches.Load(),
		Estimates:     r.st.estimates.Load(),
		Queries:       r.st.queries.Load(),
		ForwardSingle: r.st.forwardSingle.Load(),
		ScatterMulti:  r.st.scatterMulti.Load(),
		Broadcasts:    r.st.broadcasts.Load(),
		Subqueries:    r.st.subqueries.Load(),
		NotOwner:      r.st.notOwner.Load(),
		MapRefetches:  r.st.mapRefetches.Load(),
		Retries:       r.st.retries.Load(),
		NodeErrors:    r.st.nodeErrors.Load(),
	}
	r.mu.RLock()
	addrs := make([]string, 0, len(r.stats))
	for addr := range r.stats {
		addrs = append(addrs, addr)
	}
	r.mu.RUnlock()
	sort.Strings(addrs)
	for _, addr := range addrs {
		r.mu.RLock()
		st := r.stats[addr]
		r.mu.RUnlock()
		s.PerNode = append(s.PerNode, telemetry.ClusterNode{
			Addr:     addr,
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			Latency:  st.latency.Snapshot(),
		})
	}
	return s
}
