package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/wire"
)

// fakeCluster is an in-process backend set: every fakeNode enforces
// ownership against the cluster's current "truth" map, exactly as latestd
// does, so routing under a stale router map draws real not-owner refusals.
type fakeCluster struct {
	mu    sync.Mutex
	truth *Map
	nodes map[string]*fakeNode
}

func newFakeCluster(t *testing.T, truth *Map) *fakeCluster {
	t.Helper()
	fc := &fakeCluster{truth: truth, nodes: make(map[string]*fakeNode)}
	for _, addr := range truth.Nodes {
		fc.nodes[addr] = &fakeNode{fc: fc, addr: addr}
	}
	return fc
}

func (fc *fakeCluster) Truth() *Map {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.truth
}

func (fc *fakeCluster) dial(addr string) Node {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	n, ok := fc.nodes[addr]
	if !ok {
		n = &fakeNode{fc: fc, addr: addr}
		fc.nodes[addr] = n
	}
	return n
}

// fakeNode implements Node over an in-memory object list.
type fakeNode struct {
	fc   *fakeCluster
	addr string

	mu   sync.Mutex
	objs []stream.Object

	feedErr  error // forced hard failure
	queryErr error
	closed   bool
}

func (n *fakeNode) idx(m *Map) int {
	for i, a := range m.Nodes {
		if a == n.addr {
			return i
		}
	}
	return -1
}

func (n *fakeNode) FeedBatch(_ context.Context, objs []stream.Object) (uint32, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.feedErr != nil {
		return 0, n.feedErr
	}
	truth := n.fc.Truth()
	me := n.idx(truth)
	for i := range objs {
		if truth.OwnerOf(objs[i].Loc) != me {
			return 0, &wire.NotOwnerError{Epoch: truth.Epoch, Msg: "wrong node"}
		}
	}
	n.objs = append(n.objs, objs...)
	return uint32(len(objs)), nil
}

func (n *fakeNode) QueryBatch(_ context.Context, qs []stream.Query) ([]float64, []int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.queryErr != nil {
		return nil, nil, n.queryErr
	}
	truth := n.fc.Truth()
	me := n.idx(truth)
	ests := make([]float64, len(qs))
	acts := make([]int, len(qs))
	for i := range qs {
		if qs[i].HasRange && !truth.OwnsQuery(me, qs[i].Range) {
			return nil, nil, &wire.NotOwnerError{Epoch: truth.Epoch, Msg: "not my territory"}
		}
		for j := range n.objs {
			if qs[i].Matches(&n.objs[j]) {
				acts[i]++
			}
		}
		ests[i] = float64(acts[i])
	}
	return ests, acts, nil
}

func (n *fakeNode) Estimate(ctx context.Context, q stream.Query) (float64, error) {
	ests, _, err := n.QueryBatch(ctx, []stream.Query{q})
	if err != nil {
		return 0, err
	}
	return ests[0], nil
}

func (n *fakeNode) Ping(context.Context) error { return nil }

func (n *fakeNode) FetchMap(context.Context) ([]byte, error) {
	return n.fc.Truth().Encode(), nil
}

func (n *fakeNode) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	return nil
}

func (n *fakeNode) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.objs)
}

// reversedMap returns a two-node truth map whose stripe assignment is the
// reverse of Uniform's, so a router holding the Uniform epoch-1 map is
// wrong about every cell.
func reversedMap(t *testing.T, epoch uint64, nodes []string) *Map {
	t.Helper()
	m := &Map{Epoch: epoch, World: geo.UnitSquare, Cols: 4, Rows: 1, Nodes: nodes}
	m.Owners = []int32{1, 1, 0, 0}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func testObjects() []stream.Object {
	var objs []stream.Object
	for i := 0; i < 16; i++ {
		objs = append(objs, stream.Object{
			ID:        uint64(i + 1),
			Loc:       geo.Pt(float64(i)/16+0.01, 0.5),
			Keywords:  []string{"kw"},
			Timestamp: int64(i + 1),
		})
	}
	return objs
}

// TestRouterStaleMapFeedRetry is the stale-map satellite: every node
// refuses under the router's outdated map, and the router must refetch and
// re-route transparently — zero errors surfaced, every object accepted by
// its true owner, nothing double-fed.
func TestRouterStaleMapFeedRetry(t *testing.T) {
	nodes := []string{"n0", "n1"}
	truth := reversedMap(t, 2, nodes)
	fc := newFakeCluster(t, truth)
	stale := mustUniform(t, geo.UnitSquare, 4, 1, nodes, 1)
	r := NewRouter(stale, fc.dial, Options{})
	defer r.Close()

	objs := testObjects()
	accepted, err := r.FeedBatch(context.Background(), objs)
	if err != nil {
		t.Fatalf("FeedBatch surfaced error despite retry: %v", err)
	}
	if int(accepted) != len(objs) {
		t.Fatalf("accepted %d of %d objects", accepted, len(objs))
	}
	if got := fc.nodes["n0"].count() + fc.nodes["n1"].count(); got != len(objs) {
		t.Fatalf("nodes hold %d objects, want %d (no double-feed, no loss)", got, len(objs))
	}
	for _, fn := range fc.nodes {
		me := fn.idx(truth)
		for _, o := range fn.objs {
			if truth.OwnerOf(o.Loc) != me {
				t.Fatalf("object %d landed on %s, not its owner", o.ID, fn.addr)
			}
		}
	}
	if r.Epoch() != 2 {
		t.Fatalf("router epoch %d after retry, want 2", r.Epoch())
	}
	s := r.Sample()
	if s.NotOwner == 0 || s.MapRefetches == 0 || s.Retries == 0 {
		t.Fatalf("negotiation counters not incremented: %+v", s)
	}
}

// TestRouterStaleMapQueryRetry covers the query path of the same
// negotiation: a scatter planned under a stale map is refused, refetched
// and rerun, and the caller still gets the exact answer with no error.
func TestRouterStaleMapQueryRetry(t *testing.T) {
	nodes := []string{"n0", "n1"}
	truth := reversedMap(t, 2, nodes)
	fc := newFakeCluster(t, truth)

	// Feed through an up-to-date router first.
	fresh := NewRouter(truth, fc.dial, Options{})
	objs := testObjects()
	if _, err := fresh.FeedBatch(context.Background(), objs); err != nil {
		t.Fatal(err)
	}
	fresh.Close()

	stale := NewRouter(mustUniform(t, geo.UnitSquare, 4, 1, nodes, 1), fc.dial, Options{})
	defer stale.Close()
	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100)
	ests, acts, err := stale.QueryBatch(context.Background(), []stream.Query{q})
	if err != nil {
		t.Fatalf("QueryBatch surfaced error despite retry: %v", err)
	}
	if acts[0] != len(objs) {
		t.Fatalf("whole-world count %d, want %d", acts[0], len(objs))
	}
	if ests[0] != float64(len(objs)) {
		t.Fatalf("summed estimate %v, want %v", ests[0], float64(len(objs)))
	}
	if stale.Epoch() != 2 {
		t.Fatalf("router epoch %d after query retry, want 2", stale.Epoch())
	}
}

// TestRouterNodeDeathMidScatter is the failure satellite: one backend dies
// mid-scatter and the caller sees exactly one typed *NodeError naming it.
func TestRouterNodeDeathMidScatter(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	truth := mustUniform(t, geo.UnitSquare, 6, 1, nodes, 1)
	fc := newFakeCluster(t, truth)
	r := NewRouter(truth, fc.dial, Options{})
	defer r.Close()
	if _, err := r.FeedBatch(context.Background(), testObjects()); err != nil {
		t.Fatal(err)
	}
	fc.nodes["n1"].queryErr = errors.New("connection reset by peer")

	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100)
	_, _, err := r.QueryBatch(context.Background(), []stream.Query{q})
	if err == nil {
		t.Fatal("scatter across a dead node returned no error")
	}
	var ne *NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("error %v (%T) is not a *NodeError", err, err)
	}
	if ne.Addr != "n1" {
		t.Fatalf("NodeError names %q, want n1", ne.Addr)
	}
	if s := r.Sample(); s.NodeErrors != 1 {
		t.Fatalf("NodeErrors = %d, want exactly 1", s.NodeErrors)
	}
}

// TestRouterNodeDeathMidFeed: a hard feed failure surfaces one *NodeError
// while still reporting the objects other nodes accepted.
func TestRouterNodeDeathMidFeed(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	truth := mustUniform(t, geo.UnitSquare, 6, 1, nodes, 1)
	fc := newFakeCluster(t, truth)
	r := NewRouter(truth, fc.dial, Options{})
	defer r.Close()
	fc.nodes["n2"].feedErr = errors.New("broken pipe")

	objs := testObjects()
	wantElsewhere := 0
	for i := range objs {
		if truth.Nodes[truth.OwnerOf(objs[i].Loc)] != "n2" {
			wantElsewhere++
		}
	}
	accepted, err := r.FeedBatch(context.Background(), objs)
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Addr != "n2" {
		t.Fatalf("err = %v, want *NodeError for n2", err)
	}
	if int(accepted) != wantElsewhere {
		t.Fatalf("accepted %d, want %d (objects owned by live nodes)", accepted, wantElsewhere)
	}
}

// TestRouterRetryBudgetExhausted: refusals that never resolve (the refetch
// yields no newer epoch) stop after MaxMapRetries instead of spinning.
func TestRouterRetryBudgetExhausted(t *testing.T) {
	nodes := []string{"n0", "n1"}
	// Truth and router maps share epoch 1, but the node enforces the
	// reversed assignment: refusals carry epoch 1, refetch installs
	// nothing newer, and the retry loop must terminate.
	truth := reversedMap(t, 1, nodes)
	fc := newFakeCluster(t, truth)
	r := NewRouter(mustUniform(t, geo.UnitSquare, 4, 1, nodes, 1), fc.dial, Options{MaxMapRetries: 2})
	defer r.Close()

	_, err := r.FeedBatch(context.Background(), testObjects())
	if err == nil {
		t.Fatal("feed with unresolvable refusals returned no error")
	}
	if s := r.Sample(); s.Retries != 2 {
		t.Fatalf("Retries = %d, want MaxMapRetries = 2", s.Retries)
	}
}

// TestRouterBroadcastKeywordQuery: keyword-only queries broadcast and sum
// object counts across every node.
func TestRouterBroadcastKeywordQuery(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	truth := mustUniform(t, geo.UnitSquare, 6, 1, nodes, 1)
	fc := newFakeCluster(t, truth)
	r := NewRouter(truth, fc.dial, Options{})
	defer r.Close()
	objs := testObjects()
	if _, err := r.FeedBatch(context.Background(), objs); err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(context.Background(), stream.KeywordQ([]string{"kw"}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if est != float64(len(objs)) {
		t.Fatalf("broadcast keyword estimate %v, want %v", est, float64(len(objs)))
	}
	if s := r.Sample(); s.Broadcasts != 1 || s.Subqueries < 3 {
		t.Fatalf("broadcast counters off: %+v", s)
	}
}

// TestRouterMapSwapClosesOrphans: installing a newer map that drops a node
// closes its connection.
func TestRouterMapSwapClosesOrphans(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	truth := mustUniform(t, geo.UnitSquare, 6, 1, nodes, 1)
	fc := newFakeCluster(t, truth)
	r := NewRouter(truth, fc.dial, Options{})
	defer r.Close()
	if _, err := r.FeedBatch(context.Background(), testObjects()); err != nil {
		t.Fatal(err)
	}

	shrunk := mustUniform(t, geo.UnitSquare, 6, 1, nodes[:2], 5)
	fc.mu.Lock()
	fc.truth = shrunk
	fc.mu.Unlock()
	nm, err := DecodeMap(shrunk.Encode())
	if err != nil {
		t.Fatal(err)
	}
	r.install(nm)
	if r.Epoch() != 5 {
		t.Fatalf("epoch %d after install, want 5", r.Epoch())
	}
	if !fc.nodes["n2"].closed {
		t.Fatal("orphaned node n2 connection not closed on map swap")
	}
}
