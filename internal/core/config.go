// Package core implements LATEST itself (paper §V): the learning-assisted
// selectivity-estimation module that maintains a fleet of estimators,
// answers RC-DVQ queries through exactly one *active* estimator at a time,
// and uses an incrementally trained Hoeffding tree to decide which
// estimator to switch to when the monitored accuracy degrades.
//
// Lifecycle (Figure 2):
//
//	Warm-up      — objects flow in, no queries; every estimator pre-fills.
//	Pre-training — every query runs on every estimator; the measured
//	               (accuracy, latency) pairs become Hoeffding training
//	               records labelled with the α-best estimator.
//	Incremental  — only the active estimator is maintained. Every executed
//	               query's true selectivity (from the system logs) yields
//	               one more training record; a sliding accuracy average is
//	               compared against β·τ (start pre-filling the recommended
//	               replacement) and τ (perform the switch).
package core

import (
	"fmt"
	"time"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/hoeffding"
	"github.com/spatiotext/latest/internal/resilience"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// Config parameterizes a LATEST module. Zero values take the paper's
// defaults where the paper states them.
type Config struct {
	// World is the spatial domain of the stream.
	World geo.Rect
	// Span is the time window T in virtual milliseconds.
	Span int64
	// Registry supplies estimator factories; nil means the paper's six.
	Registry *estimator.Registry
	// Estimators lists which registered estimators form the fleet; empty
	// means all registered, in registration order.
	Estimators []string
	// Default is the estimator employed when the incremental phase begins.
	// The paper's default is RSH.
	Default string
	// Alpha weighs latency vs accuracy in training labels (§V-C): 0 means
	// accuracy only, 1 means latency only. Default 0.5.
	Alpha float64
	// AlphaSet marks Alpha as explicitly provided so a literal 0 (accuracy
	// only) is distinguishable from "use the default".
	AlphaSet bool
	// Tau is the switch threshold τ on the sliding accuracy average.
	// Default 0.75.
	Tau float64
	// Beta is the pre-fill fraction β ∈ (0,1): pre-filling starts when the
	// average accuracy falls below β·τ. Default 0.8.
	Beta float64
	// AccWindow is how many recent queries the accuracy average covers.
	// Default 200.
	AccWindow int
	// PretrainQueries is the length of the pre-training phase in queries.
	// Default 2000.
	PretrainQueries int
	// CooldownQueries is the minimum number of queries between switches,
	// letting the fresh estimator populate the accuracy window. Default
	// AccWindow/2.
	CooldownQueries int
	// OpportunityMargin enables proactive switches to a strictly better
	// estimator even while the active one's accuracy is above τ (the
	// paper's Fig. 5/8 switches: RSH accuracy was fine, but H4096 offered
	// the same accuracy at a fraction of the latency). The switch fires
	// after the α-weighted profile score of the best estimator has
	// exceeded the active one's by this margin for half an accuracy
	// window. Default 0.15; negative disables.
	OpportunityMargin float64
	// Scale is the estimator memory budget multiplier (Fig. 13).
	Scale float64
	// Seed drives estimator-internal randomness.
	Seed int64
	// Hoeffding overrides the learning model's hyper-parameters; the zero
	// value uses the WEKA defaults the paper quotes.
	Hoeffding hoeffding.Config
	// Refill, when non-nil, is called with every freshly wiped estimator
	// that is about to start serving (a pre-fill candidate or a cold
	// switch target). The driver should replay the current window's
	// objects into it — the DBMS holds the actual window data, so a new
	// summary structure is seeded from the store rather than starting
	// blind (§V-D's pre-filling, extended to cover the data that arrived
	// before the candidate existed). Without it, a fresh sampler would
	// scale its estimates by an arrival count that missed most of the
	// window.
	Refill func(e estimator.Estimator)
	// LatencyOf, when non-nil, replaces wall-clock latency measurement.
	// The simulation harness uses it to model the paper's millisecond-scale
	// estimator latencies deterministically; production deployments leave
	// it nil.
	LatencyOf func(name string, q *stream.Query, measured time.Duration) time.Duration
	// OnSwitch, when non-nil, is invoked after every estimator switch.
	OnSwitch func(ev SwitchEvent)
	// Logger receives switch-path and pre-fill lifecycle lines; nil is
	// silent (logging never touches the per-object or per-query hot path).
	Logger *telemetry.Logger
	// TraceDepth sizes the switch-decision audit ring (zero =
	// telemetry.DefaultTraceDepth).
	TraceDepth int
	// DriftWindow sizes the accuracy-drift watchdog's reference and current
	// q-error windows (zero = telemetry.DefaultDriftWindow).
	DriftWindow int
	// DriftThreshold is the current/reference mean q-error ratio at which
	// an estimator is flagged drifted (zero =
	// telemetry.DefaultDriftThreshold).
	DriftThreshold float64
	// PrefillMode annotates trace decisions with how this deployment warms
	// switch candidates: "inline" (on the query path) or "async" (a
	// background worker). Informational only; empty means "inline".
	PrefillMode string
	// Resilience parameterizes the per-estimator guard and circuit breaker
	// (fault window, quarantine threshold, cooldown, probe count, latency
	// deadline). The zero value takes the resilience package defaults —
	// fault isolation is always on.
	Resilience resilience.Config
	// Injector, when non-nil, deterministically injects faults into guarded
	// estimator calls. Chaos testing only; nil in production.
	Injector *resilience.Injector
	// Oracle, when non-nil, answers a query exactly from the live window
	// store. The module uses it as the terminal fallback when the active
	// estimator faults and no runner-up is warm — the answer is then exact
	// rather than approximate, trading latency for availability.
	Oracle func(q *stream.Query) float64
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = estimator.DefaultRegistry()
	}
	if len(c.Estimators) == 0 {
		c.Estimators = c.Registry.Names()
	}
	if c.Default == "" {
		c.Default = estimator.NameRSH
	}
	if !c.AlphaSet && c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Tau == 0 {
		c.Tau = 0.75
	}
	if c.Beta == 0 {
		c.Beta = 0.8
	}
	if c.AccWindow == 0 {
		c.AccWindow = 200
	}
	if c.PretrainQueries == 0 {
		c.PretrainQueries = 2000
	}
	if c.CooldownQueries == 0 {
		c.CooldownQueries = c.AccWindow / 2
	}
	if c.OpportunityMargin == 0 {
		c.OpportunityMargin = 0.15
	}
	if c.PrefillMode == "" {
		c.PrefillMode = "inline"
	}
	if c.Hoeffding == (hoeffding.Config{}) {
		// The paper's model reference [44] is the Extremely Fast Decision
		// Tree (Hoeffding Anytime Tree); split re-evaluation is its
		// defining feature, so it is the default. Supplying any explicit
		// Hoeffding config takes full control.
		c.Hoeffding.ReevaluateSplits = true
	}
	return c
}

func (c Config) validate() error {
	if c.World.Empty() || !c.World.Valid() {
		return fmt.Errorf("core: invalid world %v", c.World)
	}
	if c.Span <= 0 {
		return fmt.Errorf("core: span must be positive, got %d", c.Span)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha must be in [0,1], got %v", c.Alpha)
	}
	if c.Tau <= 0 || c.Tau >= 1 {
		return fmt.Errorf("core: tau must be in (0,1), got %v", c.Tau)
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("core: beta must be in (0,1), got %v", c.Beta)
	}
	if len(c.Estimators) < 2 {
		return fmt.Errorf("core: need at least 2 estimators, got %v", c.Estimators)
	}
	found := false
	for _, n := range c.Estimators {
		if n == c.Default {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: default estimator %q not in fleet %v", c.Default, c.Estimators)
	}
	if err := c.Resilience.Validate(); err != nil {
		return err
	}
	return nil
}

// Phase is where the module sits in the Figure 2 lifecycle.
type Phase int

const (
	// PhaseWarmup: receiving data, not yet queries.
	PhaseWarmup Phase = iota
	// PhasePretrain: every query exercises every estimator.
	PhasePretrain
	// PhaseIncremental: one active estimator, adaptive switching.
	PhaseIncremental
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseWarmup:
		return "warmup"
	case PhasePretrain:
		return "pretrain"
	case PhaseIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// SwitchEvent records one estimator switch.
type SwitchEvent struct {
	// QueryIndex is the 0-based index of the query that triggered the
	// switch, counted from the start of the incremental phase.
	QueryIndex int
	// Timestamp is the virtual time of the trigger query.
	Timestamp int64
	// From and To name the estimators.
	From, To string
	// Prefilled reports whether the new estimator had been warming since
	// the β·τ crossing (vs a cold emergency switch).
	Prefilled bool
}

// String implements fmt.Stringer.
func (e SwitchEvent) String() string {
	return fmt.Sprintf("switch@q%d(t=%d) %s->%s prefilled=%v",
		e.QueryIndex, e.Timestamp, e.From, e.To, e.Prefilled)
}
