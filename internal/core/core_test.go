package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// paperLatency models the paper's Table I millisecond-scale latencies so
// switching tests are deterministic regardless of the test machine.
func paperLatency(name string, q *stream.Query, measured time.Duration) time.Duration {
	switch name {
	case estimator.NameH4096:
		return 20 * time.Millisecond
	case estimator.NameRSL:
		return 53 * time.Millisecond
	case estimator.NameRSH:
		return 34 * time.Millisecond
	case estimator.NameAASP:
		return 111 * time.Millisecond
	case estimator.NameFFN:
		return 15 * time.Millisecond
	default:
		return 60 * time.Millisecond
	}
}

func testConfig() Config {
	return Config{
		World:           geo.UnitSquare,
		Span:            10_000,
		PretrainQueries: 300,
		AccWindow:       60,
		LatencyOf:       paperLatency,
		Seed:            1,
	}
}

// driver couples a module with the exact oracle.
type driver struct {
	m   *Module
	w   *stream.Window
	rng *rand.Rand
	ts  int64
	id  uint64
}

func newDriver(t *testing.T, cfg Config) *driver {
	t.Helper()
	w := stream.NewWindow(cfg.World, cfg.Span, 1024)
	cfg.Refill = func(e estimator.Estimator) {
		w.Each(func(o *stream.Object) bool {
			e.Insert(o)
			return true
		})
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &driver{
		m:   m,
		w:   w,
		rng: rand.New(rand.NewSource(7)),
	}
}

// feed inserts n objects (two hotspots + Zipf-ish keywords), one per ms.
func (d *driver) feed(n int) {
	for i := 0; i < n; i++ {
		d.ts++
		var p geo.Point
		if d.rng.Float64() < 0.6 {
			p = geo.UnitSquare.Clamp(geo.Pt(0.3+d.rng.NormFloat64()*0.05, 0.3+d.rng.NormFloat64()*0.05))
		} else {
			p = geo.Pt(d.rng.Float64(), d.rng.Float64())
		}
		o := stream.Object{
			ID:        d.id,
			Loc:       p,
			Keywords:  []string{fmt.Sprintf("kw%d", int(d.rng.Float64()*d.rng.Float64()*30))},
			Timestamp: d.ts,
		}
		d.id++
		d.w.Insert(o)
		d.m.Insert(&o)
	}
}

// spatialQ / keywordQ / hybridQ build queries at the current time.
func (d *driver) spatialQ() stream.Query {
	c := geo.Pt(0.25+d.rng.Float64()*0.15, 0.25+d.rng.Float64()*0.15)
	return stream.SpatialQ(geo.CenteredRect(c, 0.1, 0.1), d.ts)
}

func (d *driver) keywordQ() stream.Query {
	return stream.KeywordQ([]string{fmt.Sprintf("kw%d", d.rng.Intn(8))}, d.ts)
}

func (d *driver) hybridQ() stream.Query {
	c := geo.Pt(0.25+d.rng.Float64()*0.15, 0.25+d.rng.Float64()*0.15)
	return stream.HybridQ(geo.CenteredRect(c, 0.15, 0.15), []string{fmt.Sprintf("kw%d", d.rng.Intn(8))}, d.ts)
}

// runQuery drives one full Estimate/Observe cycle with interleaved data.
func (d *driver) runQuery(q stream.Query) float64 {
	d.feed(20)
	q.Timestamp = d.ts
	est := d.m.Estimate(&q)
	actual := float64(d.w.Answer(&q))
	d.m.Observe(actual)
	return est
}

func TestConfigDefaults(t *testing.T) {
	c := Config{World: geo.UnitSquare, Span: 1000}.withDefaults()
	if c.Alpha != 0.5 || c.Tau != 0.75 || c.Beta != 0.8 {
		t.Errorf("defaults: alpha=%v tau=%v beta=%v", c.Alpha, c.Tau, c.Beta)
	}
	if c.Default != estimator.NameRSH {
		t.Errorf("default estimator = %q", c.Default)
	}
	if len(c.Estimators) != 6 {
		t.Errorf("fleet = %v", c.Estimators)
	}
	// AlphaSet preserves an explicit zero.
	c2 := Config{World: geo.UnitSquare, Span: 1000, Alpha: 0, AlphaSet: true}.withDefaults()
	if c2.Alpha != 0 {
		t.Errorf("explicit alpha 0 overridden to %v", c2.Alpha)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{World: geo.Rect{}, Span: 1000},
		{World: geo.UnitSquare, Span: 0},
		{World: geo.UnitSquare, Span: 1000, Alpha: 2, AlphaSet: true},
		{World: geo.UnitSquare, Span: 1000, Tau: 1.5},
		{World: geo.UnitSquare, Span: 1000, Beta: 1},
		{World: geo.UnitSquare, Span: 1000, Default: "nope"},
		{World: geo.UnitSquare, Span: 1000, Estimators: []string{estimator.NameRSH}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPhaseTransitions(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainQueries = 50
	d := newDriver(t, cfg)
	if d.m.Phase() != PhaseWarmup {
		t.Fatalf("initial phase = %v", d.m.Phase())
	}
	d.feed(2000)
	if d.m.Phase() != PhaseWarmup {
		t.Fatalf("phase after warmup data = %v", d.m.Phase())
	}
	d.runQuery(d.spatialQ())
	if d.m.Phase() != PhasePretrain {
		t.Fatalf("phase after first query = %v", d.m.Phase())
	}
	for i := 0; i < 49; i++ {
		d.runQuery(d.hybridQ())
	}
	if d.m.Phase() != PhaseIncremental {
		t.Fatalf("phase after %d queries = %v", 50, d.m.Phase())
	}
	if d.m.ActiveName() != estimator.NameRSH {
		t.Errorf("incremental starts with %q, want RSH", d.m.ActiveName())
	}
	if d.m.TrainingRecords() < 50*6 {
		t.Errorf("training records = %d, want ≥ %d", d.m.TrainingRecords(), 300)
	}
}

func TestProtocolPanics(t *testing.T) {
	d := newDriver(t, testConfig())
	d.feed(500)
	q := d.spatialQ()
	d.m.Estimate(&q)
	t.Run("double estimate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		q2 := d.spatialQ()
		d.m.Estimate(&q2)
	})
	d.m.Observe(10)
	t.Run("observe without estimate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		d.m.Observe(10)
	})
	t.Run("invalid query", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		bad := stream.Query{}
		d.m.Estimate(&bad)
	})
}

func TestSwitchOnWorkloadChange(t *testing.T) {
	// Default H4096 under a spatial workload is fine; when the workload
	// turns pure-keyword its accuracy collapses (it answers the whole
	// window count) and LATEST must switch to a sampling estimator.
	cfg := testConfig()
	cfg.Default = estimator.NameH4096
	cfg.Estimators = []string{estimator.NameH4096, estimator.NameRSL, estimator.NameRSH}
	cfg.PretrainQueries = 240
	var events []SwitchEvent
	cfg.OnSwitch = func(ev SwitchEvent) { events = append(events, ev) }
	d := newDriver(t, cfg)
	d.feed(3000)

	// Pre-training with a mix of all types so the tree sees every regime.
	for i := 0; i < 240; i++ {
		switch i % 3 {
		case 0:
			d.runQuery(d.spatialQ())
		case 1:
			d.runQuery(d.keywordQ())
		default:
			d.runQuery(d.hybridQ())
		}
	}
	if d.m.Phase() != PhaseIncremental {
		t.Fatalf("phase = %v", d.m.Phase())
	}
	// Spatial-only period: H4096 is accurate, no switch expected.
	for i := 0; i < 150; i++ {
		d.runQuery(d.spatialQ())
	}
	if len(events) != 0 {
		t.Fatalf("spurious switch during spatial period: %v", events)
	}
	// Keyword period: accuracy collapses, a switch must happen.
	for i := 0; i < 400 && len(events) == 0; i++ {
		d.runQuery(d.keywordQ())
	}
	if len(events) == 0 {
		t.Fatalf("no switch after keyword flood (accAvg=%v active=%s)",
			d.m.AccuracyAverage(), d.m.ActiveName())
	}
	ev := events[0]
	if ev.From != estimator.NameH4096 {
		t.Errorf("switched from %q", ev.From)
	}
	if ev.To != estimator.NameRSL && ev.To != estimator.NameRSH {
		t.Errorf("switched to %q, want a sampling estimator", ev.To)
	}
	if d.m.ActiveName() != ev.To {
		t.Errorf("ActiveName %q != event target %q", d.m.ActiveName(), ev.To)
	}
	// The switch should have been anticipated by pre-filling.
	if !ev.Prefilled {
		t.Logf("note: switch was cold (accuracy collapsed within one window)")
	}
	// After the switch, accuracy on keyword queries recovers.
	for i := 0; i < 150; i++ {
		d.runQuery(d.keywordQ())
	}
	if acc := d.m.AccuracyAverage(); acc < 0.7 {
		t.Errorf("post-switch accuracy %v", acc)
	}
	if got := d.m.Switches(); len(got) != len(events) {
		t.Errorf("Switches() = %d, events %d", len(got), len(events))
	}
	// Every switch leaves an audit record carrying the model consultation
	// and the q-error ledger.
	decs := d.m.Decisions()
	if len(decs) != len(events) {
		t.Fatalf("Decisions() = %d, want %d", len(decs), len(events))
	}
	dec := decs[0]
	if dec.From != ev.From || dec.To != ev.To || dec.QueryIndex != ev.QueryIndex {
		t.Errorf("decision %+v does not match event %+v", dec, ev)
	}
	if dec.Reason != "tau-breach" && dec.Reason != "opportunity" {
		t.Errorf("decision reason = %q", dec.Reason)
	}
	if dec.QueryType != "keyword" {
		t.Errorf("decision query type = %q, want keyword", dec.QueryType)
	}
	if dec.Recommended == "" || dec.Confidence <= 0 || len(dec.Features) == 0 {
		t.Errorf("decision missing consultation: %+v", dec)
	}
	if len(dec.QError) != 3 {
		t.Errorf("decision q-error ledger = %+v, want 3 estimators", dec.QError)
	}
	for _, qe := range dec.QError {
		if qe.Samples == 0 || qe.QError < 1 {
			t.Errorf("q-error sample %+v, want samples>0 and qerror>=1", qe)
		}
	}
	if dec.WallTime == 0 {
		t.Error("decision wall time not stamped")
	}
}

func TestPrefillAndRecovery(t *testing.T) {
	// Drive accuracy into the pre-fill band (below τ/β but above τ) and
	// back out: the candidate must be discarded without a switch.
	cfg := testConfig()
	cfg.Default = estimator.NameH4096
	cfg.Estimators = []string{estimator.NameH4096, estimator.NameRSH}
	cfg.PretrainQueries = 200
	cfg.Tau = 0.6
	cfg.Beta = 0.7 // pre-fill threshold ≈ 0.857
	d := newDriver(t, cfg)
	d.feed(3000)
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			d.runQuery(d.spatialQ())
		} else {
			d.runQuery(d.keywordQ())
		}
	}
	// Mixed traffic with enough keyword queries to dent the average below
	// τ/β without crossing τ.
	sawPrefill := false
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			d.runQuery(d.keywordQ())
		} else {
			d.runQuery(d.spatialQ())
		}
		if d.m.PrefillingName() != "" {
			sawPrefill = true
		}
		if len(d.m.Switches()) > 0 {
			t.Skip("mixture crossed τ on this seed; prefill-only band not observable")
		}
	}
	if !sawPrefill {
		t.Skip("accuracy never entered the pre-fill band on this seed")
	}
	// Recovery: pure spatial traffic lifts the average; candidate dropped.
	for i := 0; i < 200; i++ {
		d.runQuery(d.spatialQ())
	}
	if d.m.PrefillingName() != "" {
		t.Errorf("prefill candidate not discarded after recovery")
	}
	if len(d.m.Switches()) != 0 {
		t.Errorf("unexpected switch: %v", d.m.Switches())
	}
}

func TestAlphaDrivesRecommendation(t *testing.T) {
	// With α=1 (latency only) the recommendation must be the fastest
	// estimator under the synthetic latency model (FFN at 15ms, H4096 at
	// 20ms); with α=0 it must be an accuracy leader for keyword queries
	// (a sampling estimator, since H4096 tanks there).
	run := func(alpha float64) string {
		cfg := testConfig()
		cfg.Alpha = alpha
		cfg.AlphaSet = true
		cfg.PretrainQueries = 300
		d := newDriver(t, cfg)
		d.feed(3000)
		for i := 0; i < 300; i++ {
			switch i % 3 {
			case 0:
				d.runQuery(d.spatialQ())
			case 1:
				d.runQuery(d.keywordQ())
			default:
				d.runQuery(d.hybridQ())
			}
		}
		q := d.keywordQ()
		return d.m.RecommendFor(&q)
	}
	fast := run(1)
	if fast != estimator.NameFFN && fast != estimator.NameH4096 {
		t.Errorf("α=1 recommends %q, want a low-latency estimator", fast)
	}
	accurate := run(0)
	if accurate != estimator.NameRSL && accurate != estimator.NameRSH {
		t.Errorf("α=0 recommends %q for keyword queries, want RSL/RSH", accurate)
	}
}

func TestPretrainWipesInactiveEstimators(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainQueries = 100
	cfg.Estimators = []string{estimator.NameH4096, estimator.NameRSH, estimator.NameRSL}
	cfg.Default = estimator.NameRSH
	d := newDriver(t, cfg)
	d.feed(2000)
	for i := 0; i < 100; i++ {
		d.runQuery(d.spatialQ())
	}
	if d.m.Phase() != PhaseIncremental {
		t.Fatalf("phase = %v", d.m.Phase())
	}
	snap := d.m.Snapshot()
	// Memory now only counts the active estimator.
	if snap.Active != estimator.NameRSH || snap.Prefilling != "" {
		t.Errorf("snapshot: %+v", snap)
	}
	// The inactive estimators were Reset: verify via the module's internal
	// fleet by asking a wiped estimator for an estimate through a fresh
	// query routed at it — indirectly: total memory should be far below
	// the pretraining footprint (which held 3 filled structures).
	if snap.MemoryBytes <= 0 {
		t.Error("memory snapshot empty")
	}
}

func TestSnapshotProgression(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainQueries = 80
	d := newDriver(t, cfg)
	d.feed(1500)
	s := d.m.Snapshot()
	if s.Phase != PhaseWarmup || s.PretrainSeen != 0 {
		t.Errorf("warmup snapshot: %+v", s)
	}
	for i := 0; i < 80; i++ {
		d.runQuery(d.hybridQ())
	}
	s = d.m.Snapshot()
	if s.Phase != PhaseIncremental || s.PretrainSeen != 80 {
		t.Errorf("post-pretrain snapshot: %+v", s)
	}
	if s.TrainingRecords < 80 {
		t.Errorf("records = %d", s.TrainingRecords)
	}
	for i := 0; i < 30; i++ {
		d.runQuery(d.hybridQ())
	}
	s = d.m.Snapshot()
	if s.IncrementalSeen != 30 {
		t.Errorf("IncrementalSeen = %d", s.IncrementalSeen)
	}
	if s.AccuracyAvg <= 0 {
		t.Errorf("AccuracyAvg = %v", s.AccuracyAvg)
	}
}

func TestEstimatesTrackOracleOnStableWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainQueries = 150
	d := newDriver(t, cfg)
	d.feed(3000)
	for i := 0; i < 150; i++ {
		d.runQuery(d.hybridQ())
	}
	// Stable hybrid workload on RSH: accuracy should hold above τ with no
	// switches.
	for i := 0; i < 300; i++ {
		d.runQuery(d.hybridQ())
	}
	if len(d.m.Switches()) != 0 {
		t.Errorf("switches on a stable workload: %v", d.m.Switches())
	}
	if acc := d.m.AccuracyAverage(); acc < 0.7 {
		t.Errorf("stable accuracy = %v", acc)
	}
}
