package core

import (
	"math"
	"time"

	"github.com/spatiotext/latest/internal/hoeffding"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
)

// brain bundles the Hoeffding tree, its feature encoding, the min-max
// normalizers of §V-C and the per-(estimator, query-type) performance
// profile that turns raw system-log feedback into training labels.
//
// The paper lists the training features as (data structure, query type,
// accuracy, latency, error rate); each measured (query, estimator) pair
// becomes one record carrying those features plus the query's geometry.
// The record's *label* is the estimator whose α-weighted profile score is
// currently best for that query type — i.e. the tree distills "which
// structure wins under these conditions" from the log evidence, and
// consulting it answers "given what I am running and seeing now, what
// should I run instead".
type brain struct {
	tree  *hoeffding.Tree
	names []string
	alpha float64
	// accGate disqualifies switch candidates whose profile accuracy is
	// already below the switching threshold — adopting one would trigger
	// an immediate τ-switch away again. The gate relaxes with α: in a
	// latency-dominant configuration (α→1) the paper itself adopts
	// low-accuracy fast estimators (Table II picks FFN at α=1), so the
	// gate goes to zero there: gate = τ·min(1, 2(1−α)).
	accGate float64

	// masked is shared with the owning module's quarantine bookkeeping:
	// masked[i] means estimator i is quarantined by its circuit breaker and
	// must appear in no switch recommendation and no training label until
	// it is re-admitted.
	masked []bool

	accNorm metrics.MinMax
	latNorm metrics.MinMax

	// profile[est][qtype] tracks EWMA accuracy and latency (µs).
	profAcc [][]*metrics.EWMA
	profLat [][]*metrics.EWMA

	// Model self-monitoring (§V-D's manual retraining trigger): the tree's
	// prequential accuracy against the labels it is about to learn, and the
	// recent labels themselves. The tree is rebuilt only when it scores
	// materially worse than the trivial predict-the-window-majority
	// baseline — that means its learned structure actively contradicts the
	// current workload (true drift). Scoring merely low because labels are
	// churning between near-tied estimators, or because a workload phase
	// shifted the majority, is NOT a rebuild trigger: the incremental
	// learner absorbs those on its own.
	selfAcc    *metrics.SlidingAverage
	labels     []int8
	labelN     int
	retrains   int
	minRecords int // records required before a retrain may trigger
}

// retrainSlack is how far below the windowed-majority baseline the tree's
// prequential accuracy must fall before a rebuild.
const retrainSlack = 0.25

// profileAlpha is the EWMA smoothing for profile cells: recent queries
// dominate within a few dozen observations, matching the "recent window"
// framing of §V-D.
const profileAlpha = 0.08

// numQueryTypes mirrors stream's three RC-DVQ classes.
const numQueryTypes = 3

func newBrain(names []string, cfg Config) *brain {
	attrs := []hoeffding.Attribute{
		{Name: "qtype", Kind: hoeffding.Nominal, NumValues: numQueryTypes},
		{Name: "estimator", Kind: hoeffding.Nominal, NumValues: len(names)},
		{Name: "accuracy", Kind: hoeffding.Numeric},
		{Name: "latency", Kind: hoeffding.Numeric},
		{Name: "error", Kind: hoeffding.Numeric},
		{Name: "rangeFrac", Kind: hoeffding.Numeric},
		{Name: "kwCount", Kind: hoeffding.Numeric},
	}
	b := &brain{
		tree:       hoeffding.New(attrs, names, cfg.Hoeffding),
		names:      names,
		alpha:      cfg.Alpha,
		accGate:    cfg.Tau * clampUnit(2*(1-cfg.Alpha)),
		selfAcc:    metrics.NewSlidingAverage(maxInt(cfg.AccWindow, 8)),
		labels:     make([]int8, maxInt(cfg.AccWindow, 8)),
		minRecords: cfg.AccWindow * len(names),
	}
	for range names {
		accRow := make([]*metrics.EWMA, numQueryTypes)
		latRow := make([]*metrics.EWMA, numQueryTypes)
		for t := 0; t < numQueryTypes; t++ {
			accRow[t] = metrics.NewEWMA(profileAlpha)
			latRow[t] = metrics.NewEWMA(profileAlpha)
		}
		b.profAcc = append(b.profAcc, accRow)
		b.profLat = append(b.profLat, latRow)
	}
	return b
}

// excluded reports whether an estimator is quarantine-masked.
func (b *brain) excluded(est int) bool {
	return b.masked != nil && est >= 0 && est < len(b.masked) && b.masked[est]
}

// observe folds one measurement into the normalizers and profile.
func (b *brain) observe(est int, qt stream.QueryType, acc float64, lat time.Duration) {
	us := float64(lat.Microseconds())
	b.accNorm.Observe(acc)
	b.latNorm.Observe(us)
	b.profAcc[est][qt].Update(acc)
	b.profLat[est][qt].Update(us)
}

// Spread floors for fleet-relative score normalization. Without them,
// min-max would blow a 0.01 accuracy difference between near-perfect
// estimators up to a full-scale gap and trigger churn.
const (
	// accSpreadFloor: accuracy differences below a quarter of the scale
	// are normalized against the floor rather than themselves.
	accSpreadFloor = 0.25
	// latSpreadFloor: one decade of log-latency. This substrate's
	// estimator latencies span three orders of magnitude (sub-µs histogram
	// lookups to near-ms reservoir scans) where the paper's plain min-max
	// (its fleet stayed within one order) would compress every meaningful
	// gap to noise; log-scale min-max with a decade floor keeps gaps
	// proportionate at both scales.
	latSpreadFloor = 2.302585 // ln(10)
)

// scores computes the α-weighted goodness of every estimator for a query
// type (§V-C): α=0 weighs only accuracy, α=1 only (inverted) latency.
// Both features are normalized across the fleet for this query type —
// accuracy linearly, latency on a log scale — against spreads floored by
// the constants above. ok[i] reports whether estimator i has been measured
// for qt at all.
func (b *brain) scores(qt stream.QueryType) (score []float64, ok []bool) {
	n := len(b.names)
	score = make([]float64, n)
	ok = make([]bool, n)
	accLo, accHi := math.Inf(1), math.Inf(-1)
	latLo, latHi := math.Inf(1), math.Inf(-1)
	logLat := make([]float64, n)
	any := false
	for est := 0; est < n; est++ {
		if !b.profAcc[est][qt].Seen() {
			continue
		}
		ok[est] = true
		any = true
		a := b.profAcc[est][qt].Value()
		l := math.Log1p(b.profLat[est][qt].Value())
		logLat[est] = l
		accLo, accHi = math.Min(accLo, a), math.Max(accHi, a)
		latLo, latHi = math.Min(latLo, l), math.Max(latHi, l)
	}
	if !any {
		return score, ok
	}
	accMid, accSpread := (accLo+accHi)/2, math.Max(accHi-accLo, accSpreadFloor)
	latMid, latSpread := (latLo+latHi)/2, math.Max(latHi-latLo, latSpreadFloor)
	for est := 0; est < n; est++ {
		if !ok[est] {
			continue
		}
		accN := clampUnit(0.5 + (b.profAcc[est][qt].Value()-accMid)/accSpread)
		latN := clampUnit(0.5 + (logLat[est]-latMid)/latSpread)
		score[est] = (1-b.alpha)*accN + b.alpha*(1-latN)
	}
	return score, ok
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// score returns one estimator's α-weighted profile score for qt.
func (b *brain) score(est int, qt stream.QueryType) (float64, bool) {
	s, ok := b.scores(qt)
	return s[est], ok[est]
}

// bestByProfile returns the profile-argmax estimator for a query type,
// or -1 when nothing has been measured yet.
func (b *brain) bestByProfile(qt stream.QueryType) int {
	return b.bestByProfileExcluding(qt, -1)
}

// passesGate reports whether an estimator's profile accuracy for qt clears
// the α-scaled accuracy gate.
func (b *brain) passesGate(est int, qt stream.QueryType) bool {
	return b.profAcc[est][qt].Value() >= b.accGate
}

// bestOpportunity picks the proactive-switch candidate for qt: the highest
// α-weighted score among estimators that clear the accuracy gate AND are
// not materially less accurate than the active one. The tolerance widens
// with α — a latency-dominant configuration is allowed to trade accuracy
// away (§VI-C), an accuracy-dominant one is not. Returns -1 when no
// candidate qualifies.
func (b *brain) bestOpportunity(qt stream.QueryType, active int) int {
	s, ok := b.scores(qt)
	if !ok[active] {
		return -1
	}
	tol := 0.05 * (1 + 3*b.alpha)
	floor := b.profAcc[active][qt].Value() - tol
	best := -1
	for est := range b.names {
		if est == active || b.excluded(est) || !ok[est] || !b.passesGate(est, qt) {
			continue
		}
		if b.profAcc[est][qt].Value() < floor {
			continue
		}
		if best < 0 || s[est] > s[best] {
			best = est
		}
	}
	return best
}

// features encodes one measurement into a tree instance.
func (b *brain) features(q *stream.Query, est int, acc float64, lat time.Duration, relErr float64) []float64 {
	rangeFrac := 0.0
	if q.HasRange {
		rangeFrac = q.Range.Area()
	}
	if relErr > 5 {
		relErr = 5
	}
	return []float64{
		float64(q.Type()),
		float64(est),
		b.accNorm.Normalize(acc),
		b.latNorm.Normalize(float64(lat.Microseconds())),
		relErr,
		rangeFrac,
		float64(len(q.Keywords)) / 5,
	}
}

// learn feeds one training record: the measured features labelled with the
// currently best-scoring estimator for this query type. Before learning,
// the tree is scored prequentially against the label; sustained
// disagreement means the workload has drifted past what the tree encodes,
// and it is rebuilt from scratch (§V-D's manual retraining — cheap for a
// VFDT, which relearns in one pass over the ongoing stream).
func (b *brain) learn(q *stream.Query, est int, acc float64, lat time.Duration, relErr float64) {
	label := b.bestByProfile(q.Type())
	if label < 0 {
		return // nothing measured yet; no label to assign
	}
	x := b.features(q, est, acc, lat, relErr)
	if b.tree.Predict(x) == label {
		b.selfAcc.Add(1)
	} else {
		b.selfAcc.Add(0)
	}
	b.labels[b.labelN%len(b.labels)] = int8(label)
	b.labelN++
	if b.tree.Instances() > b.minRecords && b.selfAcc.Full() &&
		b.selfAcc.Mean()+retrainSlack < b.majorityShare() {
		b.tree.Reset()
		b.selfAcc.Reset()
		b.retrains++
	}
	b.tree.Learn(x, label)
}

// majorityShare is the best achievable prequential accuracy of a constant
// predictor over the recent label window.
func (b *brain) majorityShare() float64 {
	var counts [32]int
	best := 0
	for _, l := range b.labels {
		counts[l]++
		if counts[l] > best {
			best = counts[l]
		}
	}
	return float64(best) / float64(len(b.labels))
}

// Retrains reports how many times the model was rebuilt due to drift.
func (b *brain) Retrains() int { return b.retrains }

// recommend consults the tree for the estimator to use instead of the
// active one for queries like q. The consultation instance carries the
// active estimator's *current profile* performance — "this is what I am
// running and how it is doing". When the tree's answer is the active
// estimator itself (it usually is right after good periods), the
// second-most-probable class wins; the profile argmax is the final
// fallback.
func (b *brain) recommend(q *stream.Query, active int) int {
	qt := q.Type()
	acc := b.profAcc[active][qt]
	lat := b.profLat[active][qt]
	if !acc.Seen() {
		return b.bestByProfileExcluding(qt, active)
	}
	x := b.features(q, active, acc.Value(),
		time.Duration(lat.Value())*time.Microsecond,
		1-acc.Value())
	proba := b.tree.PredictProba(x)
	best, second := -1, -1
	for i, p := range proba {
		if best < 0 || p > proba[best] {
			second = best
			best = i
		} else if second < 0 || p > proba[second] {
			second = i
		}
	}
	if best >= 0 && best != active && !b.excluded(best) && proba[best] > 0 && b.passesGate(best, qt) {
		return best
	}
	if second >= 0 && second != active && !b.excluded(second) && proba[second] > 0 && b.passesGate(second, qt) {
		return second
	}
	return b.bestByProfileExcluding(qt, active)
}

// consult is the read-only version of recommend for the decision audit
// trail: it returns the consultation feature vector and the tree's top two
// classes with their probabilities (the margin between them is the tie
// info an operator reads to judge how close the call was). best is -1 when
// the active estimator has no profile yet.
func (b *brain) consult(q *stream.Query, active int) (x []float64, best int, bestP float64, second int, secondP float64) {
	qt := q.Type()
	acc := b.profAcc[active][qt]
	if !acc.Seen() {
		return nil, -1, 0, -1, 0
	}
	x = b.features(q, active, acc.Value(),
		time.Duration(b.profLat[active][qt].Value())*time.Microsecond,
		1-acc.Value())
	proba := b.tree.PredictProba(x)
	best, second = -1, -1
	for i, p := range proba {
		switch {
		case best < 0 || p > proba[best]:
			second = best
			best = i
		case second < 0 || p > proba[second]:
			second = i
		}
	}
	if best >= 0 {
		bestP = proba[best]
	}
	if second >= 0 {
		secondP = proba[second]
	}
	return x, best, bestP, second, secondP
}

// recommendAny is recommend without excluding the active estimator — the
// model's unconstrained choice for a query (Table II's read-out).
func (b *brain) recommendAny(q *stream.Query) int {
	qt := q.Type()
	best := b.bestByProfile(qt)
	if best < 0 {
		return -1
	}
	acc := b.profAcc[best][qt]
	lat := b.profLat[best][qt]
	x := b.features(q, best, acc.Value(),
		time.Duration(lat.Value())*time.Microsecond,
		1-acc.Value())
	proba := b.tree.PredictProba(x)
	treeBest, bestP := -1, 0.0
	for i, p := range proba {
		if p > bestP {
			treeBest, bestP = i, p
		}
	}
	if treeBest >= 0 && bestP > 0 && !b.excluded(treeBest) {
		return treeBest
	}
	return best
}

// bestByProfileExcluding is bestByProfile skipping one estimator. Gate-
// failing candidates are considered only if nothing clears the gate.
func (b *brain) bestByProfileExcluding(qt stream.QueryType, skip int) int {
	s, ok := b.scores(qt)
	best, bestUngated := -1, -1
	for est := range b.names {
		if est == skip || b.excluded(est) || !ok[est] {
			continue
		}
		if bestUngated < 0 || s[est] > s[bestUngated] {
			bestUngated = est
		}
		if !b.passesGate(est, qt) {
			continue
		}
		if best < 0 || s[est] > s[best] {
			best = est
		}
	}
	if best >= 0 {
		return best
	}
	return bestUngated
}
