package core

import (
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// newTestBrain builds a brain over three fake estimators.
func newTestBrain(alpha float64) *brain {
	cfg := Config{
		World: geo.UnitSquare, Span: 1000,
		Alpha: alpha, AlphaSet: true,
		Estimators: []string{"fast-sloppy", "slow-sharp", "balanced"},
		Default:    "balanced",
		AccWindow:  20,
	}.withDefaults()
	return newBrain([]string{"fast-sloppy", "slow-sharp", "balanced"}, cfg)
}

// seedProfile feeds n observations per estimator with fixed accuracy and
// latency so profile EWMAs converge to those values.
func seedProfile(b *brain, qt stream.QueryType, accs []float64, lats []time.Duration, n int) {
	for i := 0; i < n; i++ {
		for est := range accs {
			b.observe(est, qt, accs[est], lats[est])
		}
	}
}

func TestBrainScoresAlphaExtremes(t *testing.T) {
	qt := stream.SpatialQuery
	accs := []float64{0.3, 0.95, 0.8}
	lats := []time.Duration{time.Microsecond, 500 * time.Microsecond, 50 * time.Microsecond}

	// α=0: pure accuracy — slow-sharp wins.
	b0 := newTestBrain(0)
	seedProfile(b0, qt, accs, lats, 50)
	if got := b0.bestByProfile(qt); got != 1 {
		s, _ := b0.scores(qt)
		t.Errorf("α=0 best = %d (scores %v), want slow-sharp", got, s)
	}
	// α=1: pure latency — fast-sloppy wins (the gate is zero at α=1).
	b1 := newTestBrain(1)
	seedProfile(b1, qt, accs, lats, 50)
	if got := b1.bestByProfile(qt); got != 0 {
		s, _ := b1.scores(qt)
		t.Errorf("α=1 best = %d (scores %v), want fast-sloppy", got, s)
	}
}

func TestBrainAccuracyGate(t *testing.T) {
	// At α=0.5 the gate is τ (0.75): the fast-but-sloppy estimator (acc
	// 0.3) must never be recommended even though its latency score is
	// perfect — unless nothing else qualifies.
	qt := stream.KeywordQuery
	b := newTestBrain(0.5)
	seedProfile(b, qt,
		[]float64{0.3, 0.9, 0.85},
		[]time.Duration{time.Microsecond, 400 * time.Microsecond, 300 * time.Microsecond}, 50)
	if b.passesGate(0, qt) {
		t.Error("sloppy estimator passed the gate at α=0.5")
	}
	if !b.passesGate(1, qt) || !b.passesGate(2, qt) {
		t.Error("accurate estimators failed the gate")
	}
	if got := b.bestByProfileExcluding(qt, 1); got != 2 {
		t.Errorf("excluding slow-sharp, best = %d, want balanced", got)
	}
	// When every candidate fails the gate, the ungated best is returned
	// rather than -1 (the adaptor must always have a fallback).
	b2 := newTestBrain(0.5)
	seedProfile(b2, qt,
		[]float64{0.3, 0.2, 0.25},
		[]time.Duration{time.Microsecond, 400 * time.Microsecond, 300 * time.Microsecond}, 50)
	if got := b2.bestByProfileExcluding(qt, -1); got < 0 {
		t.Error("no fallback when all fail the gate")
	}
}

func TestBrainOpportunityTolerance(t *testing.T) {
	qt := stream.SpatialQuery
	// balanced (active, idx 2) at acc 0.95; fast-sloppy at 0.80 is much
	// faster but 0.15 less accurate — outside the α=0.5 tolerance.
	b := newTestBrain(0.5)
	seedProfile(b, qt,
		[]float64{0.80, 0.94, 0.95},
		[]time.Duration{time.Microsecond, 600 * time.Microsecond, 400 * time.Microsecond}, 50)
	got := b.bestOpportunity(qt, 2)
	if got == 0 {
		t.Error("opportunity accepted a materially less accurate candidate at α=0.5")
	}
	// slow-sharp (0.94, within tolerance) remains eligible; whether it
	// wins depends on latency, but it must be the only possible answer.
	if got != 1 && got != -1 {
		t.Errorf("bestOpportunity = %d", got)
	}
	// At α=1 the tolerance widens and the fast candidate qualifies.
	b1 := newTestBrain(1)
	seedProfile(b1, qt,
		[]float64{0.80, 0.94, 0.95},
		[]time.Duration{time.Microsecond, 600 * time.Microsecond, 400 * time.Microsecond}, 50)
	if got := b1.bestOpportunity(qt, 2); got != 0 {
		t.Errorf("α=1 bestOpportunity = %d, want fast-sloppy", got)
	}
}

func TestBrainRetrainsOnDrift(t *testing.T) {
	b := newTestBrain(0)
	qt := stream.SpatialQuery
	q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.5, 0.5), 0.1, 0.1), 0)

	// Regime A: estimator 1 dominates. Train well past minRecords.
	seedProfile(b, qt, []float64{0.2, 0.95, 0.5}, []time.Duration{1, 1, 1}, 50)
	for i := 0; i < b.minRecords+500; i++ {
		b.learn(&q, i%3, 0.9, time.Microsecond, 0.1)
	}
	if b.Retrains() != 0 {
		t.Fatalf("spurious retrain during stable regime: %d", b.Retrains())
	}
	// Regime B: estimator 0 dominates; the stale tree keeps predicting 1
	// until the self-accuracy window collapses and triggers a rebuild.
	seedProfile(b, qt, []float64{0.95, 0.2, 0.5}, []time.Duration{1, 1, 1}, 200)
	for i := 0; i < 2000 && b.Retrains() == 0; i++ {
		b.learn(&q, i%3, 0.9, time.Microsecond, 0.1)
	}
	if b.Retrains() == 0 {
		t.Fatal("drift never triggered a model retrain")
	}
	// After relearning, the tree tracks the new regime again.
	for i := 0; i < 1000; i++ {
		b.learn(&q, i%3, 0.9, time.Microsecond, 0.1)
	}
	x := b.features(&q, 0, 0.9, time.Microsecond, 0.1)
	if got := b.tree.Predict(x); got != 0 {
		t.Errorf("post-retrain prediction = %s, want fast-sloppy", b.names[got])
	}
}

func TestBrainLearnWithoutProfileIsNoop(t *testing.T) {
	b := newTestBrain(0.5)
	q := stream.KeywordQ([]string{"x"}, 0)
	b.learn(&q, 0, 0.5, time.Millisecond, 0.5)
	if b.tree.Instances() != 0 {
		t.Error("learn absorbed a record with no label available")
	}
}
