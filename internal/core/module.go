package core

import (
	"fmt"
	"time"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/resilience"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// Module is a LATEST instance. It is single-goroutine like the estimators
// it drives; the stream driver owns it.
//
// Protocol: Insert for every stream object; for every query, Estimate
// followed by exactly one Observe carrying the true selectivity from the
// executed query (the system-log feedback). The strict pairing is asserted
// because the adaptor's bookkeeping is per-query.
type Module struct {
	cfg   Config
	names []string
	index map[string]int
	ests  []estimator.Estimator

	// Fault isolation (the resilience layer): every estimator call goes
	// through its guard; every outcome feeds its breaker; masked[i] mirrors
	// breaker quarantine and is shared with the brain so quarantined
	// estimators drop out of switch candidates and training labels. The
	// fallback counters record how faulted active-estimator queries were
	// served instead.
	guards   []*resilience.Guard
	breakers []*resilience.Breaker
	masked   []bool

	fallbackRunnerUp uint64
	fallbackOracle   uint64
	fallbackZero     uint64

	active     int
	prefill    int // -1 when no candidate is warming
	prefillAge int // adapt() calls since the candidate began warming

	brain     *brain // Hoeffding tree + features + profile (features.go)
	accWindow *metrics.SlidingAverage

	phase           Phase
	pretrainSeen    int
	incrementalSeen int
	cooldown        int

	switches []SwitchEvent
	pending  *pendingQuery

	prefillThreshold float64

	// Observability: the switch-decision audit ring, the active
	// estimator's estimation-latency histogram, per-estimator rolling
	// q-error (EWMA over ground-truth observations) and the structured
	// logger for the switch path. All cold-path except estLat.Record,
	// which is a few atomic adds per query.
	trace  *telemetry.DecisionTrace
	estLat telemetry.Histogram
	qerr   []*metrics.EWMA
	qerrN  []uint64
	log    *telemetry.Logger

	// Accuracy-drift watchdog: per-estimator windowed q-error drift
	// trackers (frozen reference window vs rolling current window) plus the
	// last drifted flag so the transition is logged exactly once per
	// excursion. Updated on the Observe path, read by Snapshot.
	drift   []*telemetry.DriftTracker
	drifted []bool

	// qtrace is the in-flight request trace the serving layer installed for
	// the current Estimate/Observe cycle (nil when untraced). The module is
	// single-goroutine, so a plain field under the owner's lock suffices.
	qtrace *telemetry.ActiveTrace

	// Opportunity-switch state: a sliding window of per-query score gaps
	// (best alternative minus active, for that query's type) and of which
	// alternative was best. Averaging over the window weighs the gap by
	// the live workload mix, so a 95%-spatial phase accumulates evidence
	// even with keyword queries interleaved.
	oppGap  *metrics.SlidingAverage
	oppBest []int
	oppQt   []stream.QueryType
	oppN    int
}

// pendingQuery carries the measurements taken at Estimate time until the
// matching Observe supplies the ground truth.
type pendingQuery struct {
	q         stream.Query
	estimates []float64
	latencies []time.Duration
	measured  []bool
	answer    float64
}

// New builds a LATEST module. The returned module is in the warm-up phase:
// feed it objects, then start issuing queries.
func New(cfg Config) (*Module, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Module{
		cfg:       cfg,
		names:     append([]string(nil), cfg.Estimators...),
		index:     make(map[string]int, len(cfg.Estimators)),
		accWindow: metrics.NewSlidingAverage(cfg.AccWindow),
		oppGap:    metrics.NewSlidingAverage(maxInt(cfg.AccWindow/2, 8)),
		oppBest:   make([]int, maxInt(cfg.AccWindow/2, 8)),
		oppQt:     make([]stream.QueryType, maxInt(cfg.AccWindow/2, 8)),
		prefill:   -1,
		phase:     PhaseWarmup,
		trace:     telemetry.NewDecisionTrace(cfg.TraceDepth),
		log:       cfg.Logger,
	}
	for range cfg.Estimators {
		m.qerr = append(m.qerr, metrics.NewEWMA(profileAlpha))
		m.drift = append(m.drift, telemetry.NewDriftTracker(cfg.DriftWindow, cfg.DriftThreshold))
	}
	m.qerrN = make([]uint64, len(cfg.Estimators))
	m.drifted = make([]bool, len(cfg.Estimators))
	// The paper's text places pre-filling at β·τ and switching at τ, but
	// with 0<β<1 a falling average crosses τ first; the mechanism is only
	// coherent with the pre-fill threshold above the switch threshold. We
	// keep τ as the switch threshold exactly as stated and anticipate
	// pre-filling at τ/β (β→1 ⇒ late pre-fill, low overhead, colder start;
	// β→0 ⇒ early pre-fill, more overhead, warmer start — the trade-off
	// §V-D describes).
	m.prefillThreshold = cfg.Tau / cfg.Beta
	if m.prefillThreshold > 0.999 {
		m.prefillThreshold = 0.999
	}
	p := estimator.Params{World: cfg.World, Span: cfg.Span, Scale: cfg.Scale, Seed: cfg.Seed}
	for i, name := range m.names {
		e, err := cfg.Registry.Build(name, p)
		if err != nil {
			return nil, err
		}
		m.ests = append(m.ests, e)
		m.guards = append(m.guards, resilience.NewGuard(e, cfg.Resilience, cfg.Injector))
		m.breakers = append(m.breakers, resilience.NewBreaker(cfg.Resilience))
		m.index[name] = i
	}
	m.masked = make([]bool, len(m.ests))
	m.active = m.index[cfg.Default]
	m.brain = newBrain(m.names, cfg)
	m.brain.masked = m.masked
	return m, nil
}

// Phase returns the current lifecycle phase.
func (m *Module) Phase() Phase { return m.phase }

// ActiveName returns the currently employed estimator's name.
func (m *Module) ActiveName() string { return m.names[m.active] }

// PrefillingName returns the name of the estimator being pre-filled, or ""
// when none is warming.
func (m *Module) PrefillingName() string {
	if m.prefill < 0 {
		return ""
	}
	return m.names[m.prefill]
}

// Switches returns the switch history (incremental phase only).
func (m *Module) Switches() []SwitchEvent {
	return append([]SwitchEvent(nil), m.switches...)
}

// AccuracyAverage returns the sliding accuracy average the adaptor
// monitors.
func (m *Module) AccuracyAverage() float64 { return m.accWindow.Mean() }

// Estimators returns the fleet's names in order.
func (m *Module) Estimators() []string { return append([]string(nil), m.names...) }

// TrainingRecords returns how many records the Hoeffding tree has absorbed.
func (m *Module) TrainingRecords() int { return m.brain.tree.Instances() }

// Insert feeds a stream object. During warm-up and pre-training every
// estimator is filled; afterwards only the active estimator (plus any
// pre-filling candidate) is maintained — the paper's single-active-summary
// invariant.
func (m *Module) Insert(o *stream.Object) {
	switch m.phase {
	case PhaseWarmup, PhasePretrain:
		for i := range m.guards {
			if m.masked[i] {
				continue
			}
			m.noteCall(i, m.guards[i].Insert(o))
		}
	default:
		if !m.masked[m.active] {
			m.noteCall(m.active, m.guards[m.active].Insert(o))
		}
		if m.prefill >= 0 {
			m.noteCall(m.prefill, m.guards[m.prefill].Insert(o))
		}
	}
}

// Estimate answers an RC-DVQ from the active estimator. During
// pre-training it additionally runs the query on every other estimator to
// harvest training measurements. Each Estimate must be followed by Observe
// before the next Estimate.
func (m *Module) Estimate(q *stream.Query) float64 {
	if m.pending != nil {
		panic("core: Estimate called before Observe of previous query")
	}
	if !q.Valid() {
		panic(fmt.Sprintf("core: invalid query %v", q))
	}
	if m.phase == PhaseWarmup {
		m.phase = PhasePretrain
	}
	m.tickBreakers()
	if m.masked[m.active] {
		// The active estimator tripped during Insert/Observe (or the module
		// is running degraded): install a replacement before serving.
		m.rescueActive(q)
	}
	p := &pendingQuery{
		q:         *q,
		estimates: make([]float64, len(m.ests)),
		latencies: make([]time.Duration, len(m.ests)),
		measured:  make([]bool, len(m.ests)),
	}
	measure := func(i int) {
		est, lat, k := m.guards[i].Estimate(q)
		m.noteCall(i, k)
		if k != resilience.FaultNone {
			return // faulted measurement: never trains, never answers
		}
		if m.cfg.LatencyOf != nil {
			lat = m.cfg.LatencyOf(m.names[i], q, lat)
		}
		p.estimates[i] = est
		p.latencies[i] = lat
		p.measured[i] = true
		if i == m.active {
			m.estLat.Record(lat)
			m.qtrace.AddSpanDur("estimator", m.names[i], lat)
		}
	}
	if m.phase == PhasePretrain {
		for i := range m.ests {
			if m.masked[i] {
				continue
			}
			measure(i)
		}
	} else {
		if !m.masked[m.active] {
			measure(m.active)
		}
		if m.prefill >= 0 {
			// The warming candidate is measured too: its feedback seeds the
			// profile so a recovery-discard or the eventual switch is an
			// informed decision, at the cost of one extra lookup.
			measure(m.prefill)
		}
	}
	if p.measured[m.active] {
		p.answer = p.estimates[m.active]
	} else {
		// The active estimator faulted on this query (or is quarantined with
		// no replacement installed): serve the fallback chain.
		p.answer = m.fallbackAnswer(p, q)
	}
	if m.masked[m.active] {
		// The fault above tripped the breaker: re-route future queries now
		// rather than waiting for the next Estimate.
		m.rescueActive(q)
	}
	m.probeQuarantined(q)
	m.pending = p
	return p.answer
}

// Observe supplies the executed query's true selectivity (the system-log
// entry for the query Estimate just answered), closing the feedback loop:
// profile and normalizer updates, a Hoeffding training record per measured
// estimator, accuracy monitoring, and — in the incremental phase — the
// adaptor's pre-fill/switch decisions.
func (m *Module) Observe(actual float64) {
	p := m.pending
	if p == nil {
		panic("core: Observe without a pending Estimate")
	}
	m.pending = nil

	qt := p.q.Type()
	for i := range m.ests {
		if !p.measured[i] {
			continue
		}
		acc := metrics.Accuracy(p.estimates[i], actual)
		relErr := metrics.RelativeError(p.estimates[i], actual)
		qe := metrics.QError(p.estimates[i], actual)
		m.qerr[i].Update(qe)
		m.qerrN[i]++
		m.drift[i].Observe(qe)
		if s := m.drift[i].Sample(m.names[i]); s.Drifted != m.drifted[i] {
			m.drifted[i] = s.Drifted
			if s.Drifted {
				m.log.Warn("q-error drift", "estimator", s.Estimator,
					"ratio", s.Ratio, "reference", s.Reference,
					"current", s.Current, "threshold", s.Threshold)
			} else {
				m.log.Info("q-error drift recovered", "estimator", s.Estimator,
					"ratio", s.Ratio)
			}
		}
		m.brain.observe(i, qt, acc, p.latencies[i])
		m.brain.learn(&p.q, i, acc, p.latencies[i], relErr)
		// Workload-driven estimators get the raw feedback as well.
		m.noteCall(i, m.guards[i].Observe(&p.q, actual))
	}
	// The monitored accuracy is that of the *served* answer — identical to
	// the active estimate on the healthy path, the fallback's accuracy when
	// the active estimator faulted (a faulted raw estimate must not poison
	// the switching statistics).
	m.accWindow.Add(metrics.Accuracy(p.answer, actual))

	switch m.phase {
	case PhasePretrain:
		m.pretrainSeen++
		if m.pretrainSeen >= m.cfg.PretrainQueries {
			m.concludePretraining()
		}
	case PhaseIncremental:
		m.incrementalSeen++
		m.adapt(&p.q)
	}
}

// concludePretraining wipes every estimator except the default and enters
// the incremental phase (§V-C's overhead reduction).
func (m *Module) concludePretraining() {
	m.active = m.index[m.cfg.Default]
	if m.masked[m.active] {
		// The configured default is quarantined: start the incremental phase
		// on the best live candidate instead (first unmasked as last resort).
		if rec := m.brain.bestByProfileExcluding(stream.SpatialQuery, m.active); rec >= 0 {
			m.active = rec
		} else {
			for i := range m.masked {
				if !m.masked[i] {
					m.active = i
					break
				}
			}
		}
	}
	for i := range m.ests {
		if i != m.active {
			m.noteCall(i, m.guards[i].Reset())
		}
	}
	m.phase = PhaseIncremental
	m.accWindow.Reset()
	m.cooldown = m.cfg.CooldownQueries
	m.incrementalSeen = 0
}

// adapt is the Estimator Adaptor (§V-D): monitors the sliding accuracy
// average against the pre-fill and switch thresholds, and additionally
// watches for a strictly dominating alternative (the opportunity trigger
// behind the paper's Fig. 5/8 switches, where the active estimator's
// accuracy never degraded but a faster equal-accuracy one existed).
func (m *Module) adapt(q *stream.Query) {
	if m.prefill >= 0 {
		m.prefillAge++
		if m.prefillAge > 2*m.cfg.AccWindow {
			// The candidate has been warming for two full monitoring
			// windows without a switch materializing: the degradation that
			// motivated it has stalled. Stop paying double maintenance.
			m.log.Debug("prefill discarded", "candidate", m.names[m.prefill],
				"reason", "stalled", "age", m.prefillAge)
			m.noteCall(m.prefill, m.guards[m.prefill].Reset())
			m.prefill = -1
		}
	}
	if m.cooldown > 0 {
		m.cooldown--
		return
	}
	// Decisions need a reasonably full window; otherwise one bad query
	// right after a switch would trigger flapping.
	if m.accWindow.Len() < m.cfg.AccWindow/2 {
		return
	}
	mean := m.accWindow.Mean()

	if mean < m.cfg.Tau {
		m.performSwitch(q)
		return
	}
	if m.opportunity(q) {
		return
	}
	if m.prefill < 0 && mean < m.prefillThreshold {
		if rec := m.brain.recommend(q, m.active); rec >= 0 && rec != m.active {
			m.log.Debug("prefill start", "candidate", m.names[rec],
				"active", m.names[m.active], "accuracy", mean)
			m.freshen(rec)
			m.prefill = rec
			m.prefillAge = 0
		}
		return
	}
	if m.prefill >= 0 && mean >= m.prefillThreshold {
		// Accuracy recovered: discard the warming candidate (§V-D).
		m.log.Debug("prefill discarded", "candidate", m.names[m.prefill],
			"reason", "recovered", "accuracy", mean)
		m.noteCall(m.prefill, m.guards[m.prefill].Reset())
		m.prefill = -1
	}
}

// opportunity maintains a sliding window of per-query score gaps between
// the best alternative and the active estimator. A window mean above the
// margin pre-fills (at half the margin) and then switches to the
// alternative that was best most often. Returns true when it owns the
// current pre-fill, so the τ/β logic leaves the candidate alone.
func (m *Module) opportunity(q *stream.Query) bool {
	if m.cfg.OpportunityMargin < 0 {
		return false
	}
	qt := q.Type()
	scores, ok := m.brain.scores(qt)
	if !ok[m.active] {
		return false
	}
	best := m.brain.bestOpportunity(qt, m.active)
	gap := 0.0
	if best >= 0 {
		gap = scores[best] - scores[m.active]
	}
	m.oppGap.Add(gap)
	m.oppBest[m.oppN%len(m.oppBest)] = best
	m.oppQt[m.oppN%len(m.oppQt)] = qt
	m.oppN++
	if !m.oppGap.Full() {
		return false
	}
	mean := m.oppGap.Mean()
	if mean <= m.cfg.OpportunityMargin/2 {
		return false
	}
	// Target: the alternative that won most of the recent window.
	counts := make(map[int]int, len(m.names))
	for _, b := range m.oppBest {
		if b >= 0 {
			counts[b]++
		}
	}
	target, targetN := -1, 0
	for est, n := range counts {
		if n > targetN {
			target, targetN = est, n
		}
	}
	if target < 0 || target == m.active || m.masked[target] {
		return false
	}
	// The target will serve the *whole* mix, not just the type it wins on:
	// it must clear the accuracy gate for every query type that forms a
	// material share of the recent window. Without this, a 50/50
	// spatial-hybrid workload would flap into the histogram on the
	// strength of its spatial half alone.
	if !m.passesPrevalentGates(target) {
		return false
	}
	if mean > m.cfg.OpportunityMargin {
		prefilled := m.prefill == target
		if !prefilled {
			if m.prefill >= 0 {
				m.noteCall(m.prefill, m.guards[m.prefill].Reset())
				m.prefill = -1
			}
			m.freshen(target)
		}
		m.switchTo(target, q, prefilled, "opportunity")
		return true
	}
	if m.prefill < 0 {
		m.freshen(target)
		m.prefill = target
		m.prefillAge = 0
	}
	return m.prefill == target
}

// passesPrevalentGates reports whether an estimator clears the accuracy
// gate for every query type forming at least a quarter of the recent
// opportunity window.
func (m *Module) passesPrevalentGates(est int) bool {
	if m.oppN < len(m.oppQt) {
		return true // window not yet representative
	}
	var qtShare [numQueryTypes]int
	for _, t := range m.oppQt {
		qtShare[t]++
	}
	for t := 0; t < numQueryTypes; t++ {
		if qtShare[t]*4 >= len(m.oppQt) && !m.brain.passesGate(est, stream.QueryType(t)) {
			return false
		}
	}
	return true
}

// freshen wipes an estimator and seeds it from the live window store.
func (m *Module) freshen(i int) {
	m.noteCall(i, m.guards[i].Reset())
	if m.cfg.Refill != nil {
		m.cfg.Refill(m.ests[i])
	}
}

// performSwitch activates the pre-filled candidate, or consults the model
// for a cold switch when accuracy collapsed before any pre-fill began. The
// switch is score-gated: moving to an estimator the profile scores *worse*
// than the active one would be pure churn (this is also what keeps an
// α=1 run parked on the fastest estimator instead of fleeing its poor
// accuracy — the paper's Fig. 7 behaviour).
func (m *Module) performSwitch(q *stream.Query) {
	target := m.prefill
	prefilled := target >= 0
	if target < 0 {
		target = m.brain.recommend(q, m.active)
		if target < 0 || target == m.active {
			return // no credible alternative; stay put
		}
	}
	if !m.passesPrevalentGates(target) {
		// The recommendation wins on this query's type but would violate τ
		// on another prevalent type; pick the best candidate that serves
		// the whole mix, if any.
		if alt := m.brain.bestByProfileExcluding(q.Type(), m.active); alt >= 0 &&
			alt != target && m.passesPrevalentGates(alt) {
			target = alt
			prefilled = false
			if m.prefill >= 0 {
				m.noteCall(m.prefill, m.guards[m.prefill].Reset())
				m.prefill = -1
			}
		} else {
			m.cooldown = m.cfg.CooldownQueries / 2
			return
		}
	}
	qt := q.Type()
	// Score-gate the switch — except when the active estimator violates
	// the accuracy gate for this query type while the target clears it.
	// In that case the τ breach is an SLA violation and the recommendation
	// wins regardless of score ties: at α=0.5 a useless-but-instant
	// estimator scores the same 0.5 as an accurate-but-slow one
	// (all-latency vs all-accuracy), and without the bypass the module
	// could sit on zero accuracy forever. When the target is just as
	// gate-failing as the active (near-tied samplers during a hard
	// stretch), the tie-gate still holds position — swapping equals is
	// pure churn.
	if m.brain.passesGate(m.active, qt) || !m.brain.passesGate(target, qt) {
		targetScore, ok1 := m.brain.score(target, qt)
		activeScore, ok2 := m.brain.score(m.active, qt)
		if ok1 && ok2 && targetScore <= activeScore {
			// The alternative is no better under the configured α; discard
			// any warming candidate and hold position until the profile
			// changes.
			if m.prefill >= 0 {
				m.noteCall(m.prefill, m.guards[m.prefill].Reset())
				m.prefill = -1
			}
			m.cooldown = m.cfg.CooldownQueries / 2
			return
		}
	}
	if !prefilled {
		m.freshen(target)
	}
	m.switchTo(target, q, prefilled, "tau-breach")
}

// switchTo performs the actual estimator swap and bookkeeping. The target
// must already be filled (pre-filled or freshened by the caller); reason
// names the trigger ("tau-breach" or "opportunity") for the audit trace.
func (m *Module) switchTo(target int, q *stream.Query, prefilled bool, reason string) {
	ev := SwitchEvent{
		QueryIndex: m.incrementalSeen - 1,
		Timestamp:  q.Timestamp,
		From:       m.names[m.active],
		To:         m.names[target],
		Prefilled:  prefilled,
	}
	m.traceDecision(ev, q, reason)
	// The displaced estimator is wiped: only one summary (plus at most one
	// warming candidate) is ever maintained.
	m.noteCall(m.active, m.guards[m.active].Reset())
	m.active = target
	m.prefill = -1
	m.oppGap.Reset()
	m.oppN = 0
	for i := range m.oppBest {
		m.oppBest[i] = -1
	}
	m.accWindow.Reset()
	m.cooldown = m.cfg.CooldownQueries
	m.switches = append(m.switches, ev)
	if m.cfg.OnSwitch != nil {
		m.cfg.OnSwitch(ev)
	}
}

// traceDecision records the audit-trail entry for a switch: what the
// sliding average looked like, what the Hoeffding tree would have said for
// the trigger query (features, top class and the runner-up's probability —
// the tie info), and every estimator's rolling q-error at that moment.
// Runs only on the switch path, so the allocations are irrelevant.
func (m *Module) traceDecision(ev SwitchEvent, q *stream.Query, reason string) {
	d := telemetry.Decision{
		QueryIndex:  ev.QueryIndex,
		Timestamp:   ev.Timestamp,
		From:        ev.From,
		To:          ev.To,
		Reason:      reason,
		AccuracyAvg: m.accWindow.Mean(),
		QueryType:   q.Type().String(),
		Prefilled:   ev.Prefilled,
		PrefillMode: m.cfg.PrefillMode,
		QError:      m.qerrSamples(),
	}
	if x, best, bestP, second, secondP := m.brain.consult(q, m.active); best >= 0 {
		d.Features = x
		d.Recommended = m.names[best]
		d.Confidence = bestP
		if second >= 0 {
			d.RunnerUp = m.names[second]
			d.RunnerUpConf = secondP
		}
	}
	m.trace.Record(d)
	m.log.Info("estimator switch",
		"from", ev.From, "to", ev.To, "reason", reason,
		"query", ev.QueryIndex, "accuracy", d.AccuracyAvg,
		"prefilled", ev.Prefilled, "recommended", d.Recommended,
		"confidence", d.Confidence)
}

// SetTrace installs (or, with nil, clears) the request trace for the next
// Estimate/Observe cycle. Like every other module method it must be called
// by the module's owning goroutine; the serving layer sets it under the
// same lock that serializes the query itself.
func (m *Module) SetTrace(tr *telemetry.ActiveTrace) { m.qtrace = tr }

// driftSamples snapshots every estimator's drift-watchdog state.
func (m *Module) driftSamples() []telemetry.DriftSample {
	out := make([]telemetry.DriftSample, len(m.names))
	for i, name := range m.names {
		out[i] = m.drift[i].Sample(name)
	}
	return out
}

// qerrSamples snapshots every estimator's rolling q-error.
func (m *Module) qerrSamples() []telemetry.QErrorSample {
	out := make([]telemetry.QErrorSample, len(m.names))
	for i, name := range m.names {
		out[i] = telemetry.QErrorSample{
			Estimator: name,
			QError:    m.qerr[i].Value(),
			Samples:   m.qerrN[i],
		}
	}
	return out
}

// Decisions returns the retained switch-decision audit records,
// oldest-first.
func (m *Module) Decisions() []telemetry.Decision { return m.trace.Snapshot() }

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats is a snapshot of the module's internals for logging and tests.
type Stats struct {
	Phase           Phase
	Active          string
	Prefilling      string
	PretrainSeen    int
	IncrementalSeen int
	Switches        int
	TrainingRecords int
	TreeNodes       int
	TreeSplits      int
	ModelRetrains   int
	AccuracyAvg     float64
	MemoryBytes     int
	// EstimateLatency is the distribution of the active estimator's
	// approximate-answer latencies (every query, not sampled).
	EstimateLatency telemetry.HistSnapshot
	// QError is each estimator's rolling q-error over ground-truth
	// observations, in fleet order.
	QError []telemetry.QErrorSample
	// Drift is the accuracy-drift watchdog's reading per estimator, in
	// fleet order.
	Drift []telemetry.DriftSample
	// Decisions is the retained switch-decision audit trail, oldest-first.
	Decisions []telemetry.Decision
	// Resilience is the fault-isolation layer's health: per-estimator
	// breaker states and fault counters, plus how faulted queries were
	// answered.
	Resilience telemetry.ResilienceStats
}

// Snapshot returns current Stats.
func (m *Module) Snapshot() Stats {
	mem := 0
	for i := range m.ests {
		if m.phase != PhaseIncremental || i == m.active || i == m.prefill {
			mem += m.guards[i].MemoryBytes()
		}
	}
	return Stats{
		Phase:           m.phase,
		Active:          m.ActiveName(),
		Prefilling:      m.PrefillingName(),
		PretrainSeen:    m.pretrainSeen,
		IncrementalSeen: m.incrementalSeen,
		Switches:        len(m.switches),
		TrainingRecords: m.brain.tree.Instances(),
		TreeNodes:       m.brain.tree.NodeCount(),
		TreeSplits:      m.brain.tree.Splits(),
		ModelRetrains:   m.brain.Retrains(),
		AccuracyAvg:     m.accWindow.Mean(),
		MemoryBytes:     mem,
		EstimateLatency: m.estLat.Snapshot(),
		QError:          m.qerrSamples(),
		Drift:           m.driftSamples(),
		Decisions:       m.trace.Snapshot(),
		Resilience:      m.resilienceStats(),
	}
}

// RecommendFor exposes the model's current recommendation for a query
// without changing any state — the hook Table II uses to read LATEST's
// choice at fixed time points.
func (m *Module) RecommendFor(q *stream.Query) string {
	rec := m.brain.recommendAny(q)
	if rec < 0 {
		return m.ActiveName()
	}
	return m.names[rec]
}
