package core

import (
	"testing"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// TestPrefillAgingDiscardsStalledCandidate drives adapt() directly with the
// monitored accuracy parked between τ and the pre-fill threshold: the
// warming candidate must be discarded after two monitoring windows instead
// of being maintained forever.
func TestPrefillAgingDiscardsStalledCandidate(t *testing.T) {
	cfg := Config{
		World:           geo.UnitSquare,
		Span:            10_000,
		Estimators:      []string{estimator.NameH4096, estimator.NameRSH},
		Default:         estimator.NameRSH,
		AccWindow:       40,
		PretrainQueries: 10,
		Seed:            1,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fast-forward to the incremental phase and install a warming
	// candidate by hand (white-box: the aging path is hard to stage
	// through the public API because any natural accuracy trajectory
	// either recovers past the threshold or falls to a switch).
	m.phase = PhaseIncremental
	m.cooldown = 0
	refilled := 0
	m.cfg.Refill = func(e estimator.Estimator) { refilled++ }
	m.prefill = 0
	m.prefillAge = 0

	// Park the monitored accuracy in the pre-fill band: below τ/β≈0.94,
	// above τ=0.75.
	for i := 0; i < cfg.AccWindow; i++ {
		m.accWindow.Add(0.85)
	}
	q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.5, 0.5), 0.1, 0.1), 0)
	for i := 0; i <= 2*cfg.AccWindow && m.prefill >= 0; i++ {
		m.accWindow.Add(0.85) // hold the band
		m.adapt(&q)
	}
	if m.prefill >= 0 {
		t.Fatalf("stalled candidate never discarded (age cap 2×AccWindow)")
	}
	if len(m.Switches()) != 0 {
		t.Fatalf("aging must discard, not switch: %v", m.Switches())
	}
}

// TestCooldownBlocksAdaptation verifies that no decision fires during the
// post-switch cooldown even under terrible accuracy.
func TestCooldownBlocksAdaptation(t *testing.T) {
	cfg := Config{
		World:           geo.UnitSquare,
		Span:            10_000,
		Estimators:      []string{estimator.NameH4096, estimator.NameRSH},
		Default:         estimator.NameRSH,
		AccWindow:       40,
		CooldownQueries: 25,
		PretrainQueries: 10,
		Seed:            1,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.phase = PhaseIncremental
	m.cooldown = 25
	for i := 0; i < cfg.AccWindow; i++ {
		m.accWindow.Add(0.0) // catastrophic
	}
	q := stream.KeywordQ([]string{"x"}, 0)
	for i := 0; i < 24; i++ {
		m.adapt(&q)
		if len(m.switches) != 0 || m.prefill >= 0 {
			t.Fatalf("decision fired during cooldown at step %d", i)
		}
	}
	if m.cooldown != 1 {
		t.Fatalf("cooldown = %d after 24 decrements", m.cooldown)
	}
}
