package core

import (
	"math"

	"github.com/spatiotext/latest/internal/resilience"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// This file is the module side of the resilience layer: outcome recording,
// quarantine bookkeeping, active-estimator rescue and the fallback answer
// chain. The guard/breaker mechanics themselves live in
// internal/resilience; the policy — who replaces a quarantined active
// estimator, what answers a query when nobody can — lives here, because it
// needs the brain and the phase machine.

// noteCall folds one guarded call's outcome into the estimator's breaker
// and handles the quarantine transition when this call trips it.
func (m *Module) noteCall(i int, k resilience.FaultKind) {
	if m.breakers[i].RecordCall(k) {
		m.onTrip(i)
	}
}

// onTrip runs the quarantine transition for estimator i: mask it out of
// switch candidates and training labels, discard it as a warming candidate.
// A tripped *active* estimator is not replaced here — trips can surface
// mid-Insert or mid-Observe where no query is at hand; the Estimate path
// checks the mask at its safe points and runs rescueActive there.
func (m *Module) onTrip(i int) {
	m.masked[i] = true
	snap := m.breakers[i].Snapshot()
	m.log.Warn("estimator quarantined",
		"estimator", m.names[i],
		"panics", snap.Panics, "valueFaults", snap.ValueFaults,
		"deadlines", snap.Deadlines, "quarantines", snap.Quarantines,
		"active", i == m.active)
	if i == m.prefill {
		// The warming candidate is poisoned: best-effort wipe, stop paying
		// double maintenance. The outcome is not re-recorded — the breaker
		// is already open.
		m.guards[i].Reset()
		m.prefill = -1
	}
}

// rescueActive installs a replacement for a quarantined active estimator:
// the warming runner-up if one is live, else the brain's recommendation
// (quarantine-masked, so it never proposes another tripped estimator).
// When nobody is available the module stays degraded — the mask keeps the
// broken estimator out of the serving path and fallbackAnswer carries the
// queries until a breaker re-admits somebody.
func (m *Module) rescueActive(q *stream.Query) {
	if m.prefill >= 0 && !m.masked[m.prefill] {
		m.switchTo(m.prefill, q, true, "quarantine")
		return
	}
	if rec := m.brain.recommend(q, m.active); rec >= 0 && rec != m.active && !m.masked[rec] {
		m.freshen(rec)
		m.switchTo(rec, q, false, "quarantine")
		return
	}
	m.log.Warn("no live replacement for quarantined estimator; serving degraded",
		"quarantined", m.names[m.active])
}

// fallbackAnswer serves a query whose active estimate faulted (or whose
// active estimator is quarantined with no replacement): the runner-up's
// clean measurement if one exists, else the exact window oracle, else zero.
// The returned value is always finite and non-negative.
func (m *Module) fallbackAnswer(p *pendingQuery, q *stream.Query) float64 {
	if m.prefill >= 0 && p.measured[m.prefill] {
		m.fallbackRunnerUp++
		return p.estimates[m.prefill]
	}
	if m.phase == PhasePretrain {
		// Every healthy estimator was measured: prefer the profile-best.
		if rec := m.brain.bestByProfileExcluding(q.Type(), m.active); rec >= 0 && p.measured[rec] {
			m.fallbackRunnerUp++
			return p.estimates[rec]
		}
		for i := range p.measured {
			if i != m.active && p.measured[i] {
				m.fallbackRunnerUp++
				return p.estimates[i]
			}
		}
	}
	if m.cfg.Oracle != nil {
		if v := m.cfg.Oracle(q); v >= 0 && !math.IsInf(v, 0) { // v>=0 is false for NaN
			m.fallbackOracle++
			return v
		}
	}
	m.fallbackZero++
	return 0
}

// tickBreakers advances quarantine time by one query: open breakers count
// down their cooldown and move to half-open when it elapses.
func (m *Module) tickBreakers() {
	for _, b := range m.breakers {
		b.Tick()
	}
}

// probeQuarantined sends the current query through every half-open
// estimator as a probe (the result is discarded, never served, never
// trained on). Enough consecutive clean probes re-admit the estimator:
// unmask it and reset+prefill it from the window store so it re-enters the
// candidate pool with clean state.
func (m *Module) probeQuarantined(q *stream.Query) {
	for i, b := range m.breakers {
		if !b.ReadyToProbe() {
			continue
		}
		_, _, k := m.guards[i].Estimate(q)
		if b.RecordProbe(k) {
			m.masked[i] = false
			m.freshen(i)
			m.log.Info("estimator re-admitted",
				"estimator", m.names[i],
				"readmissions", m.breakers[i].Snapshot().Readmissions)
		}
	}
}

// resilienceStats snapshots the fault-isolation layer for Stats.
func (m *Module) resilienceStats() telemetry.ResilienceStats {
	out := telemetry.ResilienceStats{
		Estimators:       make([]telemetry.EstimatorHealth, len(m.names)),
		FallbackRunnerUp: m.fallbackRunnerUp,
		FallbackOracle:   m.fallbackOracle,
		FallbackZero:     m.fallbackZero,
	}
	for i, name := range m.names {
		s := m.breakers[i].Snapshot()
		out.Estimators[i] = telemetry.EstimatorHealth{
			Estimator:    name,
			State:        s.State.String(),
			Panics:       s.Panics,
			ValueFaults:  s.ValueFaults,
			Deadlines:    s.Deadlines,
			Quarantines:  s.Quarantines,
			Readmissions: s.Readmissions,
			Sanitized:    m.guards[i].Sanitized(),
		}
	}
	return out
}

// QuarantinedNames returns the currently quarantined estimators, in fleet
// order. Test and operator hook.
func (m *Module) QuarantinedNames() []string {
	var out []string
	for i, masked := range m.masked {
		if masked {
			out = append(out, m.names[i])
		}
	}
	return out
}
