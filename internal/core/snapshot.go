package core

import "strings"

// MergeStats folds per-shard module snapshots into one system-level Stats.
// A sharded deployment runs one Module per spatial shard; operators want a
// single dashboard row, so counters sum, the lifecycle phase is the
// earliest any shard is in (the system is not incremental until every
// shard is), and the accuracy average weighs each shard by the number of
// queries it has actually monitored.
func MergeStats(parts []Stats) Stats {
	if len(parts) == 0 {
		return Stats{}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	out := Stats{Phase: parts[0].Phase}
	var accWeighted float64
	var accWeight float64
	actives := make([]string, 0, len(parts))
	prefills := make([]string, 0, len(parts))
	for _, p := range parts {
		if p.Phase < out.Phase {
			out.Phase = p.Phase
		}
		actives = appendUnique(actives, p.Active)
		if p.Prefilling != "" {
			prefills = appendUnique(prefills, p.Prefilling)
		}
		out.PretrainSeen += p.PretrainSeen
		out.IncrementalSeen += p.IncrementalSeen
		out.Switches += p.Switches
		out.TrainingRecords += p.TrainingRecords
		out.TreeNodes += p.TreeNodes
		out.TreeSplits += p.TreeSplits
		out.ModelRetrains += p.ModelRetrains
		out.MemoryBytes += p.MemoryBytes
		w := float64(p.PretrainSeen + p.IncrementalSeen)
		accWeighted += p.AccuracyAvg * w
		accWeight += w
	}
	out.Active = strings.Join(actives, ",")
	out.Prefilling = strings.Join(prefills, ",")
	if accWeight > 0 {
		out.AccuracyAvg = accWeighted / accWeight
	}
	return out
}

// appendUnique appends s to list unless already present, preserving order.
func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}
