package core

import (
	"sort"
	"strings"

	"github.com/spatiotext/latest/internal/telemetry"
)

// MergeStats folds per-shard module snapshots into one system-level Stats.
// A sharded deployment runs one Module per spatial shard; operators want a
// single dashboard row, so counters sum, the lifecycle phase is the
// earliest any shard is in (the system is not incremental until every
// shard is), and the accuracy average weighs each shard by the number of
// queries it has actually monitored. Estimation-latency histograms merge
// bucket-wise (log bucketing commutes with summation, so the merged
// percentiles describe the whole system's distribution), per-estimator
// q-error merges weighted by observation count, and the decision traces
// interleave by wall time keeping the most recent telemetry.DefaultTraceDepth.
func MergeStats(parts []Stats) Stats {
	if len(parts) == 0 {
		return Stats{}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	out := Stats{Phase: parts[0].Phase}
	var accWeighted float64
	var accWeight float64
	actives := make([]string, 0, len(parts))
	prefills := make([]string, 0, len(parts))
	qerrIdx := make(map[string]int)
	qerrWeighted := make([]float64, 0, 8)
	for _, p := range parts {
		if p.Phase < out.Phase {
			out.Phase = p.Phase
		}
		actives = appendUnique(actives, p.Active)
		if p.Prefilling != "" {
			prefills = appendUnique(prefills, p.Prefilling)
		}
		out.PretrainSeen += p.PretrainSeen
		out.IncrementalSeen += p.IncrementalSeen
		out.Switches += p.Switches
		out.TrainingRecords += p.TrainingRecords
		out.TreeNodes += p.TreeNodes
		out.TreeSplits += p.TreeSplits
		out.ModelRetrains += p.ModelRetrains
		out.MemoryBytes += p.MemoryBytes
		w := float64(p.PretrainSeen + p.IncrementalSeen)
		accWeighted += p.AccuracyAvg * w
		accWeight += w
		out.EstimateLatency.Merge(p.EstimateLatency)
		for _, qe := range p.QError {
			i, ok := qerrIdx[qe.Estimator]
			if !ok {
				i = len(out.QError)
				qerrIdx[qe.Estimator] = i
				out.QError = append(out.QError, telemetry.QErrorSample{Estimator: qe.Estimator})
				qerrWeighted = append(qerrWeighted, 0)
			}
			out.QError[i].Samples += qe.Samples
			qerrWeighted[i] += qe.QError * float64(qe.Samples)
		}
		out.Decisions = append(out.Decisions, p.Decisions...)
	}
	out.Active = strings.Join(actives, ",")
	out.Prefilling = strings.Join(prefills, ",")
	if accWeight > 0 {
		out.AccuracyAvg = accWeighted / accWeight
	}
	for i := range out.QError {
		if out.QError[i].Samples > 0 {
			out.QError[i].QError = qerrWeighted[i] / float64(out.QError[i].Samples)
		}
	}
	sort.SliceStable(out.Decisions, func(i, j int) bool {
		return out.Decisions[i].WallTime < out.Decisions[j].WallTime
	})
	if n := len(out.Decisions); n > telemetry.DefaultTraceDepth {
		out.Decisions = out.Decisions[n-telemetry.DefaultTraceDepth:]
	}
	res := make([]telemetry.ResilienceStats, len(parts))
	drifts := make([][]telemetry.DriftSample, len(parts))
	for i, p := range parts {
		res[i] = p.Resilience
		drifts[i] = p.Drift
	}
	out.Resilience = telemetry.MergeResilience(res)
	out.Drift = telemetry.MergeDriftSamples(drifts...)
	return out
}

// appendUnique appends s to list unless already present, preserving order.
func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}
