package core

import "testing"

func TestMergeStats(t *testing.T) {
	a := Stats{
		Phase: PhaseIncremental, Active: "RSH", Prefilling: "H4096",
		PretrainSeen: 100, IncrementalSeen: 300, Switches: 2,
		TrainingRecords: 400, TreeNodes: 5, TreeSplits: 2, ModelRetrains: 1,
		AccuracyAvg: 0.9, MemoryBytes: 1000,
	}
	b := Stats{
		Phase: PhasePretrain, Active: "RSH",
		PretrainSeen: 100, IncrementalSeen: 0,
		TrainingRecords: 100, TreeNodes: 1,
		AccuracyAvg: 0.5, MemoryBytes: 500,
	}
	c := Stats{
		Phase: PhaseIncremental, Active: "H4096",
		PretrainSeen: 100, IncrementalSeen: 100, Switches: 1,
		TrainingRecords: 200, TreeNodes: 3, TreeSplits: 1,
		AccuracyAvg: 0.7, MemoryBytes: 700,
	}
	m := MergeStats([]Stats{a, b, c})

	if m.Phase != PhasePretrain {
		t.Errorf("phase = %v, want earliest (pretrain)", m.Phase)
	}
	if m.Active != "RSH,H4096" {
		t.Errorf("active = %q", m.Active)
	}
	if m.Prefilling != "H4096" {
		t.Errorf("prefilling = %q", m.Prefilling)
	}
	if m.PretrainSeen != 300 || m.IncrementalSeen != 400 || m.Switches != 3 {
		t.Errorf("counters = %+v", m)
	}
	if m.TrainingRecords != 700 || m.TreeNodes != 9 || m.TreeSplits != 3 || m.ModelRetrains != 1 {
		t.Errorf("model counters = %+v", m)
	}
	if m.MemoryBytes != 2200 {
		t.Errorf("memory = %d", m.MemoryBytes)
	}
	// Weighted by monitored queries: (0.9*400 + 0.5*100 + 0.7*200) / 700.
	want := (0.9*400 + 0.5*100 + 0.7*200) / 700
	if diff := m.AccuracyAvg - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("accuracy = %v, want %v", m.AccuracyAvg, want)
	}
}

func TestMergeStatsDegenerate(t *testing.T) {
	if got := MergeStats(nil); got != (Stats{}) {
		t.Errorf("empty merge = %+v", got)
	}
	one := Stats{Active: "RSL", AccuracyAvg: 0.3}
	if got := MergeStats([]Stats{one}); got != one {
		t.Errorf("single merge = %+v", got)
	}
}
