package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/telemetry"
)

func TestMergeStats(t *testing.T) {
	a := Stats{
		Phase: PhaseIncremental, Active: "RSH", Prefilling: "H4096",
		PretrainSeen: 100, IncrementalSeen: 300, Switches: 2,
		TrainingRecords: 400, TreeNodes: 5, TreeSplits: 2, ModelRetrains: 1,
		AccuracyAvg: 0.9, MemoryBytes: 1000,
	}
	b := Stats{
		Phase: PhasePretrain, Active: "RSH",
		PretrainSeen: 100, IncrementalSeen: 0,
		TrainingRecords: 100, TreeNodes: 1,
		AccuracyAvg: 0.5, MemoryBytes: 500,
	}
	c := Stats{
		Phase: PhaseIncremental, Active: "H4096",
		PretrainSeen: 100, IncrementalSeen: 100, Switches: 1,
		TrainingRecords: 200, TreeNodes: 3, TreeSplits: 1,
		AccuracyAvg: 0.7, MemoryBytes: 700,
	}
	m := MergeStats([]Stats{a, b, c})

	if m.Phase != PhasePretrain {
		t.Errorf("phase = %v, want earliest (pretrain)", m.Phase)
	}
	if m.Active != "RSH,H4096" {
		t.Errorf("active = %q", m.Active)
	}
	if m.Prefilling != "H4096" {
		t.Errorf("prefilling = %q", m.Prefilling)
	}
	if m.PretrainSeen != 300 || m.IncrementalSeen != 400 || m.Switches != 3 {
		t.Errorf("counters = %+v", m)
	}
	if m.TrainingRecords != 700 || m.TreeNodes != 9 || m.TreeSplits != 3 || m.ModelRetrains != 1 {
		t.Errorf("model counters = %+v", m)
	}
	if m.MemoryBytes != 2200 {
		t.Errorf("memory = %d", m.MemoryBytes)
	}
	// Weighted by monitored queries: (0.9*400 + 0.5*100 + 0.7*200) / 700.
	want := (0.9*400 + 0.5*100 + 0.7*200) / 700
	if diff := m.AccuracyAvg - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("accuracy = %v, want %v", m.AccuracyAvg, want)
	}
}

func TestMergeStatsDegenerate(t *testing.T) {
	if got := MergeStats(nil); !reflect.DeepEqual(got, Stats{}) {
		t.Errorf("empty merge = %+v", got)
	}
	one := Stats{Active: "RSL", AccuracyAvg: 0.3}
	if got := MergeStats([]Stats{one}); !reflect.DeepEqual(got, one) {
		t.Errorf("single merge = %+v", got)
	}
}

// TestMergeStatsHistograms verifies the telemetry fields merge: latency
// histograms bucket-wise, q-error weighted by samples, decision traces
// interleaved by wall time.
func TestMergeStatsHistograms(t *testing.T) {
	var ha, hb telemetry.Histogram
	for i := 0; i < 10; i++ {
		ha.Record(time.Microsecond)
	}
	for i := 0; i < 30; i++ {
		hb.Record(time.Millisecond)
	}
	a := Stats{
		EstimateLatency: ha.Snapshot(),
		QError: []telemetry.QErrorSample{
			{Estimator: "RSH", QError: 2.0, Samples: 10},
			{Estimator: "H4096", QError: 4.0, Samples: 5},
		},
		Decisions: []telemetry.Decision{
			{From: "RSH", To: "H4096", WallTime: 100},
			{From: "H4096", To: "RSH", WallTime: 300},
		},
	}
	b := Stats{
		EstimateLatency: hb.Snapshot(),
		QError: []telemetry.QErrorSample{
			{Estimator: "RSH", QError: 6.0, Samples: 30},
		},
		Decisions: []telemetry.Decision{
			{From: "RSH", To: "AASP", WallTime: 200},
		},
	}
	m := MergeStats([]Stats{a, b})

	if m.EstimateLatency.Count != 40 {
		t.Errorf("merged histogram count = %d, want 40", m.EstimateLatency.Count)
	}
	if m.EstimateLatency.Sum != 10*time.Microsecond+30*time.Millisecond {
		t.Errorf("merged histogram sum = %v", m.EstimateLatency.Sum)
	}
	if m.EstimateLatency.Max != time.Millisecond {
		t.Errorf("merged histogram max = %v", m.EstimateLatency.Max)
	}
	var bucketTotal uint64
	for _, n := range m.EstimateLatency.Buckets {
		bucketTotal += n
	}
	if bucketTotal != 40 {
		t.Errorf("merged bucket total = %d", bucketTotal)
	}
	// The merged p99 must land in the millisecond bucket: the 30 slow
	// samples dominate the upper tail.
	if p99 := m.EstimateLatency.P99(); p99 < 100*time.Microsecond {
		t.Errorf("merged p99 = %v, want ≥100µs", p99)
	}

	want := map[string]struct {
		q float64
		n uint64
	}{
		"RSH":   {(2.0*10 + 6.0*30) / 40, 40},
		"H4096": {4.0, 5},
	}
	if len(m.QError) != 2 {
		t.Fatalf("merged qerror = %+v", m.QError)
	}
	for _, qe := range m.QError {
		w, ok := want[qe.Estimator]
		if !ok {
			t.Fatalf("unexpected estimator %q", qe.Estimator)
		}
		if qe.Samples != w.n || qe.QError < w.q-1e-12 || qe.QError > w.q+1e-12 {
			t.Errorf("%s merged = %+v, want q=%v n=%d", qe.Estimator, qe, w.q, w.n)
		}
	}

	if len(m.Decisions) != 3 {
		t.Fatalf("merged decisions = %d", len(m.Decisions))
	}
	for i, wantTo := range []string{"H4096", "AASP", "RSH"} {
		if m.Decisions[i].To != wantTo {
			t.Errorf("decision %d = %+v, want To=%s (wall-time order)", i, m.Decisions[i], wantTo)
		}
	}
}
