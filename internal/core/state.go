package core

import (
	"encoding/json"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// State codec for the module: lifecycle counters, the adaptor's sliding
// statistics, the brain (profile + normalizers + Hoeffding tree) and every
// live estimator's summary. Together with the restored window this is
// everything the switching machinery needs to continue bit-exactly.
//
// Deliberately NOT serialized — documented behaviour, not an oversight:
//
//   - Resilience state (guards, breakers, masked flags, fault counters):
//     quarantine is a judgement about the *process* that crashed, not about
//     the data; a restored process starts with healthy breakers.
//   - estLat, the estimate-latency histogram: wall-clock latencies of the
//     dead process are meaningless to the new one.
//
// Both reset to their fresh state on restore.

// SaveState serializes the module. It must be called between queries — a
// pending Estimate whose Observe has not arrived cannot be captured because
// the paired ground truth lives in the DBMS's in-flight query, and returns
// CodeState.
func (m *Module) SaveState(e *persist.Enc) error {
	const op = "module"
	if m.pending != nil {
		return persist.Errf(persist.CodeState, op, "Estimate pending without Observe")
	}
	e.Strs(m.names)
	e.U8(uint8(m.phase))
	e.Int(m.active)
	e.Int(m.prefill)
	e.Int(m.prefillAge)
	e.Int(m.pretrainSeen)
	e.Int(m.incrementalSeen)
	e.Int(m.cooldown)
	e.U64(m.fallbackRunnerUp)
	e.U64(m.fallbackOracle)
	e.U64(m.fallbackZero)
	m.accWindow.SaveState(e)
	m.oppGap.SaveState(e)
	e.Int(len(m.oppBest))
	for _, b := range m.oppBest {
		e.Int(b)
	}
	for _, t := range m.oppQt {
		e.U8(uint8(t))
	}
	e.Int(m.oppN)
	for i := range m.names {
		m.qerr[i].SaveState(e)
		e.U64(m.qerrN[i])
	}
	// The switch history and decision ring hold operator-facing records with
	// string and slice fields; JSON inside a CRC-guarded binary section is
	// simpler than a hand codec and round-trips float64 exactly.
	switches, err := json.Marshal(m.switches)
	if err != nil {
		return persist.Errf(persist.CodeMalformed, op, "encode switches: %v", err)
	}
	e.Blob(switches)
	decisions, err := json.Marshal(m.trace.Snapshot())
	if err != nil {
		return persist.Errf(persist.CodeMalformed, op, "encode decisions: %v", err)
	}
	e.Blob(decisions)
	e.U64(m.trace.Total())
	m.brain.saveState(e)
	m.saveEstimators(e)
	return nil
}

// Per-estimator restore directives written by saveEstimators.
const (
	estSkip    = 0 // stays freshly constructed
	estBlob    = 1 // exact state follows as a length-prefixed blob
	estFreshen = 2 // rebuild by replaying the restored window
)

// saveEstimators writes each fleet member's summary. Every Stateful
// estimator serializes exactly — even ones that are idle in the
// incremental phase. An idle summary looks dead (the next switch to it
// runs Reset + window refill anyway), but its RNG stream position survives
// Reset by design, and a refill drawing from a rewound stream would select
// a different sample than the uninterrupted process: recovery must
// reproduce the original's future, not merely its present. Stateless
// (third-party) estimators can't serialize; live ones are marked for a
// window replay on load, idle ones stay empty, and quarantined ones are
// skipped outright — a fault mid-operation may have left the summary
// inconsistent, and their breakers reset on restore anyway.
func (m *Module) saveEstimators(e *persist.Enc) {
	for i, est := range m.ests {
		live := m.phase != PhaseIncremental || i == m.active || i == m.prefill
		s, stateful := est.(estimator.Stateful)
		switch {
		case m.masked[i]:
			e.U8(estSkip)
		case stateful:
			e.U8(estBlob)
			var sub persist.Enc
			s.SaveState(&sub)
			e.Blob(sub.Data())
		case live:
			e.U8(estFreshen)
		default:
			e.U8(estSkip)
		}
	}
}

// LoadState restores a module saved with the same configuration. The
// receiver must be freshly constructed (CodeState otherwise) and the
// module's window store must already be restored: estimators whose summary
// did not serialize (third-party registry entries) are rebuilt by replaying
// the window through cfg.Refill. On error the receiver must be discarded.
func (m *Module) LoadState(d *persist.Dec) error {
	const op = "module"
	if m.phase != PhaseWarmup || m.pretrainSeen != 0 || m.brain.tree.Instances() != 0 {
		return persist.Errf(persist.CodeState, op, "receiver is not freshly constructed")
	}
	names := d.Strs()
	if d.Err() != nil {
		return d.Err()
	}
	if len(names) != len(m.names) {
		return persist.Errf(persist.CodeMismatch, op, "fleet %v, receiver has %v", names, m.names)
	}
	for i, n := range names {
		if n != m.names[i] {
			return persist.Errf(persist.CodeMismatch, op, "fleet %v, receiver has %v", names, m.names)
		}
	}
	phase := Phase(d.U8())
	active := d.Int()
	prefill := d.Int()
	prefillAge := d.Int()
	pretrainSeen := d.Int()
	incrementalSeen := d.Int()
	cooldown := d.Int()
	fbRunnerUp := d.U64()
	fbOracle := d.U64()
	fbZero := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if phase < PhaseWarmup || phase > PhaseIncremental {
		return persist.Errf(persist.CodeMalformed, op, "phase %d", phase)
	}
	if active < 0 || active >= len(m.names) {
		return persist.Errf(persist.CodeMalformed, op, "active estimator %d of %d", active, len(m.names))
	}
	if prefill < -1 || prefill >= len(m.names) {
		return persist.Errf(persist.CodeMalformed, op, "prefill estimator %d of %d", prefill, len(m.names))
	}
	if err := m.accWindow.LoadState(d); err != nil {
		return err
	}
	if err := m.oppGap.LoadState(d); err != nil {
		return err
	}
	oppLen := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if oppLen != len(m.oppBest) {
		return persist.Errf(persist.CodeMismatch, op, "opportunity window %d, receiver has %d", oppLen, len(m.oppBest))
	}
	for i := 0; i < oppLen; i++ {
		b := d.Int()
		if b < -1 || b >= len(m.names) {
			if d.Err() != nil {
				return d.Err()
			}
			return persist.Errf(persist.CodeMalformed, op, "opportunity best %d of %d", b, len(m.names))
		}
		m.oppBest[i] = b
	}
	for i := 0; i < oppLen; i++ {
		t := d.U8()
		if int(t) >= numQueryTypes {
			if d.Err() != nil {
				return d.Err()
			}
			return persist.Errf(persist.CodeMalformed, op, "query type %d", t)
		}
		m.oppQt[i] = stream.QueryType(t)
	}
	oppN := d.Int()
	for i := range m.names {
		if err := m.qerr[i].LoadState(d); err != nil {
			return err
		}
		m.qerrN[i] = d.U64()
	}
	switchesJSON := d.Blob()
	decisionsJSON := d.Blob()
	traceTotal := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	var switches []SwitchEvent
	if err := json.Unmarshal(switchesJSON, &switches); err != nil {
		return persist.Errf(persist.CodeMalformed, op, "decode switches: %v", err)
	}
	var decisions []telemetry.Decision
	if err := json.Unmarshal(decisionsJSON, &decisions); err != nil {
		return persist.Errf(persist.CodeMalformed, op, "decode decisions: %v", err)
	}
	if err := m.brain.loadState(d); err != nil {
		return err
	}
	m.phase = phase
	m.active = active
	m.prefill = prefill
	m.prefillAge = prefillAge
	m.pretrainSeen = pretrainSeen
	m.incrementalSeen = incrementalSeen
	m.cooldown = cooldown
	m.fallbackRunnerUp = fbRunnerUp
	m.fallbackOracle = fbOracle
	m.fallbackZero = fbZero
	m.oppN = oppN
	m.switches = switches
	m.trace.Restore(decisions, traceTotal)
	return m.loadEstimators(d)
}

// loadEstimators restores each fleet member's summary per the directives
// saveEstimators wrote: an estBlob entry round-trips through its own
// codec; an estFreshen entry is rebuilt by replaying the already-restored
// window (the same refill path a cold switch target takes); an estSkip
// entry stays at its freshly-constructed empty state.
func (m *Module) loadEstimators(d *persist.Dec) error {
	const op = "module estimators"
	for i, est := range m.ests {
		mode := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		switch mode {
		case estSkip:
		case estFreshen:
			m.freshen(i)
		case estBlob:
			s, ok := est.(estimator.Stateful)
			if !ok {
				return persist.Errf(persist.CodeMismatch, op,
					"%s was saved with internal state but the registered implementation cannot load it", m.names[i])
			}
			blob := d.Blob()
			if d.Err() != nil {
				return d.Err()
			}
			sub := persist.NewDec(blob)
			if err := s.LoadState(sub); err != nil {
				return err
			}
			if err := sub.Done(); err != nil {
				return err
			}
		default:
			return persist.Errf(persist.CodeMalformed, op,
				"unknown restore directive %d for %s", mode, m.names[i])
		}
	}
	return nil
}

// saveState serializes the brain: normalizers, the per-(estimator, query
// type) performance profile, the self-monitoring window and the Hoeffding
// tree itself.
func (b *brain) saveState(e *persist.Enc) {
	b.accNorm.SaveState(e)
	b.latNorm.SaveState(e)
	for est := range b.names {
		for t := 0; t < numQueryTypes; t++ {
			b.profAcc[est][t].SaveState(e)
			b.profLat[est][t].SaveState(e)
		}
	}
	b.selfAcc.SaveState(e)
	labels := make([]byte, len(b.labels))
	for i, l := range b.labels {
		labels[i] = byte(l)
	}
	e.Blob(labels)
	e.Int(b.labelN)
	e.Int(b.retrains)
	b.tree.SaveState(e)
}

func (b *brain) loadState(d *persist.Dec) error {
	const op = "brain"
	if err := b.accNorm.LoadState(d); err != nil {
		return err
	}
	if err := b.latNorm.LoadState(d); err != nil {
		return err
	}
	for est := range b.names {
		for t := 0; t < numQueryTypes; t++ {
			if err := b.profAcc[est][t].LoadState(d); err != nil {
				return err
			}
			if err := b.profLat[est][t].LoadState(d); err != nil {
				return err
			}
		}
	}
	if err := b.selfAcc.LoadState(d); err != nil {
		return err
	}
	labels := d.Blob()
	labelN := d.Int()
	retrains := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if len(labels) != len(b.labels) {
		return persist.Errf(persist.CodeMismatch, op, "label window %d, receiver has %d", len(labels), len(b.labels))
	}
	for i, l := range labels {
		// majorityShare indexes a fixed 32-slot counter by label.
		if int(l) >= len(b.names) || l >= 32 {
			return persist.Errf(persist.CodeMalformed, op, "label %d of %d estimators", l, len(b.names))
		}
		b.labels[i] = int8(l)
	}
	b.labelN = labelN
	b.retrains = retrains
	return b.tree.LoadState(d)
}
