// Package datagen simulates the paper's three evaluation data streams.
// The real datasets (75M geotagged tweets, 41M eBird records, 973K
// Foursquare check-ins) are not redistributable, so each generator
// reproduces the *statistical shape* that drives estimator behaviour —
// spatial skew (Gaussian hotspot mixtures over a realistic bounding box),
// keyword skew (Zipf vocabularies of dataset-appropriate cardinality) and
// window churn (Poisson arrivals at a configurable rate) — as documented in
// DESIGN.md §3. Generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// Hotspot is one spatial cluster of the mixture.
type Hotspot struct {
	Center geo.Point
	Sigma  float64 // isotropic std-dev in world units
	Weight float64 // relative mixture weight
}

// Config fully describes a synthetic stream.
type Config struct {
	// Name labels the dataset in figures ("Twitter", "eBird", "CheckIn").
	Name string
	// World is the spatial bounding box.
	World geo.Rect
	// Hotspots is the Gaussian mixture; weights need not be normalized.
	Hotspots []Hotspot
	// UniformFrac is the probability an object is drawn uniformly from the
	// world instead of a hotspot (background noise).
	UniformFrac float64
	// VocabSize is the number of distinct keywords.
	VocabSize int
	// ZipfS is the Zipf skew parameter (> 1).
	ZipfS float64
	// KwMin/KwMax bound the per-object keyword count (inclusive).
	KwMin, KwMax int
	// RatePerMS is the mean arrival rate in objects per virtual
	// millisecond (Poisson arrivals).
	RatePerMS float64
	// DriftPeriodMS, when positive, rotates hotspot weights with this
	// period so the spatial distribution shifts over the stream lifetime.
	DriftPeriodMS int64
	// Seed drives all randomness.
	Seed int64
}

// Generator produces a deterministic object stream and doubles as the
// query-location sampler (query focal points follow data density plus a
// uniform floor — the "Bing search locations" substitution).
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	vocab   []string
	weights []float64 // cumulative hotspot weights, re-derived under drift
	nextID  uint64
	nowF    float64 // fractional virtual time accumulator
	now     int64   // virtual ms of the last emitted object

	// Separate query-side randomness so data and query streams are
	// independently reproducible.
	qrng  *rand.Rand
	qzipf *rand.Zipf
}

// New builds a generator from an explicit config. It panics on nonsense
// configuration, which is a harness bug rather than a data condition.
func New(cfg Config) *Generator {
	if cfg.World.Empty() || !cfg.World.Valid() {
		panic(fmt.Sprintf("datagen: invalid world %v", cfg.World))
	}
	if cfg.VocabSize < 1 || cfg.ZipfS <= 1 || cfg.KwMin < 0 || cfg.KwMax < cfg.KwMin || cfg.RatePerMS <= 0 {
		panic(fmt.Sprintf("datagen: invalid config %+v", cfg))
	}
	if len(cfg.Hotspots) == 0 && cfg.UniformFrac < 1 {
		panic("datagen: need hotspots or UniformFrac=1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qrng := rand.New(rand.NewSource(cfg.Seed + 0x51))
	g := &Generator{
		cfg:   cfg,
		rng:   rng,
		zipf:  rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1)),
		vocab: makeVocab(cfg.Name, cfg.VocabSize),
		qrng:  qrng,
		qzipf: rand.NewZipf(qrng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1)),
	}
	g.reweigh(0)
	return g
}

// makeVocab builds the keyword list. The head of the vocabulary carries a
// few semantically meaningful words so the examples read naturally; the
// tail is synthetic.
func makeVocab(name string, n int) []string {
	head := []string{"fire", "rescue", "flood", "storm", "evacuation", "traffic", "concert", "sale", "food", "news"}
	vocab := make([]string, 0, n)
	for i := 0; i < n && i < len(head); i++ {
		vocab = append(vocab, head[i])
	}
	for i := len(vocab); i < n; i++ {
		vocab = append(vocab, fmt.Sprintf("%s_tag%04d", shortName(name), i))
	}
	return vocab
}

func shortName(name string) string {
	if name == "" {
		return "gen"
	}
	if len(name) > 2 {
		return name[:2]
	}
	return name
}

// reweigh recomputes cumulative hotspot weights, rotating the weight vector
// under drift so hotspot prominence shifts over time.
func (g *Generator) reweigh(now int64) {
	n := len(g.cfg.Hotspots)
	if n == 0 {
		return
	}
	rot := 0
	if g.cfg.DriftPeriodMS > 0 {
		rot = int(now/g.cfg.DriftPeriodMS) % n
	}
	g.weights = g.weights[:0]
	total := 0.0
	for i := 0; i < n; i++ {
		total += g.cfg.Hotspots[(i+rot)%n].Weight
		g.weights = append(g.weights, total)
	}
}

// Name returns the dataset name.
func (g *Generator) Name() string { return g.cfg.Name }

// World returns the spatial domain.
func (g *Generator) World() geo.Rect { return g.cfg.World }

// Vocab returns the keyword vocabulary ordered from most to least popular.
func (g *Generator) Vocab() []string { return g.vocab }

// Now returns the timestamp of the most recently emitted object.
func (g *Generator) Now() int64 { return g.now }

// Next emits the next stream object. Timestamps advance by exponential
// inter-arrival times with the configured mean rate.
func (g *Generator) Next() stream.Object {
	g.nowF += g.rng.ExpFloat64() / g.cfg.RatePerMS
	g.now = int64(g.nowF)
	if g.cfg.DriftPeriodMS > 0 {
		g.reweigh(g.now)
	}
	o := stream.Object{
		ID:        g.nextID,
		Loc:       g.samplePoint(),
		Keywords:  g.sampleKeywords(),
		Timestamp: g.now,
	}
	g.nextID++
	return o
}

// samplePoint draws a location from the hotspot mixture plus uniform floor.
func (g *Generator) samplePoint() geo.Point {
	w := g.cfg.World
	if len(g.cfg.Hotspots) == 0 || g.rng.Float64() < g.cfg.UniformFrac {
		return geo.Pt(
			w.MinX+g.rng.Float64()*w.Width(),
			w.MinY+g.rng.Float64()*w.Height(),
		)
	}
	total := g.weights[len(g.weights)-1]
	target := g.rng.Float64() * total
	hi := 0
	for hi < len(g.weights)-1 && g.weights[hi] < target {
		hi++
	}
	// weights[hi] was built from the drift-rotated weight vector, so slot
	// hi's *location* keeps its own center while its prominence shifts.
	h := g.cfg.Hotspots[hi]
	p := geo.Pt(
		h.Center.X+g.rng.NormFloat64()*h.Sigma,
		h.Center.Y+g.rng.NormFloat64()*h.Sigma,
	)
	return w.Clamp(p)
}

// sampleKeywords draws KwMin..KwMax distinct Zipf-ranked keywords.
func (g *Generator) sampleKeywords() []string {
	n := g.cfg.KwMin
	if g.cfg.KwMax > g.cfg.KwMin {
		n += g.rng.Intn(g.cfg.KwMax - g.cfg.KwMin + 1)
	}
	if n == 0 {
		return nil
	}
	kws := make([]string, 0, n)
	for len(kws) < n {
		kw := g.vocab[int(g.zipf.Uint64())]
		dup := false
		for _, k := range kws {
			if k == kw {
				dup = true
				break
			}
		}
		if !dup {
			kws = append(kws, kw)
		}
	}
	return kws
}

// SampleQueryPoint draws a query focal point: 80% follows the data hotspot
// mixture (search traffic tracks population), 20% uniform — the
// substitution for the paper's Bing mobile-search locations.
func (g *Generator) SampleQueryPoint() geo.Point {
	w := g.cfg.World
	if len(g.cfg.Hotspots) == 0 || g.qrng.Float64() < 0.2 {
		return geo.Pt(
			w.MinX+g.qrng.Float64()*w.Width(),
			w.MinY+g.qrng.Float64()*w.Height(),
		)
	}
	h := g.cfg.Hotspots[g.qrng.Intn(len(g.cfg.Hotspots))]
	return w.Clamp(geo.Pt(
		h.Center.X+g.qrng.NormFloat64()*h.Sigma*2,
		h.Center.Y+g.qrng.NormFloat64()*h.Sigma*2,
	))
}

// SampleQueryKeyword draws a keyword for queries, biased toward popular
// words like real search traffic, with a uniform tail so rare- and
// zero-result queries occur.
func (g *Generator) SampleQueryKeyword() string {
	if g.qrng.Float64() < 0.1 {
		return g.vocab[g.qrng.Intn(len(g.vocab))]
	}
	return g.vocab[int(g.qzipf.Uint64())]
}

// QueryRand exposes the query-side RNG so workload generators share one
// reproducible source for range sizes and mix draws.
func (g *Generator) QueryRand() *rand.Rand { return g.qrng }
