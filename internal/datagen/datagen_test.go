package datagen

import (
	"math"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
)

func TestDeterminism(t *testing.T) {
	a, b := Twitter(42, 2), Twitter(42, 2)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.ID != ob.ID || oa.Loc != ob.Loc || oa.Timestamp != ob.Timestamp {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, oa, ob)
		}
		if len(oa.Keywords) != len(ob.Keywords) {
			t.Fatalf("keyword counts diverge at %d", i)
		}
		for j := range oa.Keywords {
			if oa.Keywords[j] != ob.Keywords[j] {
				t.Fatalf("keywords diverge at %d", i)
			}
		}
	}
	c := Twitter(43, 2)
	diff := false
	for i := 0; i < 100; i++ {
		if a.Next().Loc != c.Next().Loc {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestTimestampsNonDecreasingAndRate(t *testing.T) {
	g := Twitter(1, 2.0)
	last := int64(-1)
	const n = 50000
	var final int64
	for i := 0; i < n; i++ {
		o := g.Next()
		if o.Timestamp < last {
			t.Fatalf("timestamp went backwards at %d: %d < %d", i, o.Timestamp, last)
		}
		last = o.Timestamp
		final = o.Timestamp
	}
	// 50k objects at 2/ms should take ~25k ms.
	if final < 20_000 || final > 31_000 {
		t.Errorf("elapsed = %dms for %d objects at 2/ms, want ~25000", final, n)
	}
	if g.Now() != final {
		t.Errorf("Now = %d, want %d", g.Now(), final)
	}
}

func TestObjectsInsideWorld(t *testing.T) {
	for _, g := range []*Generator{Twitter(2, 2), EBird(2, 2), CheckIn(2, 2)} {
		t.Run(g.Name(), func(t *testing.T) {
			for i := 0; i < 20000; i++ {
				o := g.Next()
				if !g.World().Contains(o.Loc) {
					t.Fatalf("object %d at %v outside world %v", i, o.Loc, g.World())
				}
				if len(o.Keywords) == 0 {
					t.Fatalf("object %d has no keywords", i)
				}
			}
		})
	}
}

func TestSpatialSkew(t *testing.T) {
	// Twitter data must be heavily clustered: the NYC hotspot area should
	// hold far more than its uniform share of points.
	g := Twitter(3, 2)
	nyc := geo.CenteredRect(geo.Pt(-74.0, 40.7), 4, 4)
	in := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if nyc.Contains(g.Next().Loc) {
			in++
		}
	}
	uniformShare := nyc.Area() / g.World().Area()
	got := float64(in) / n
	if got < 5*uniformShare {
		t.Errorf("NYC share %.4f, uniform share %.4f: not clustered", got, uniformShare)
	}
}

func TestKeywordSkew(t *testing.T) {
	g := Twitter(4, 2)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		for _, kw := range g.Next().Keywords {
			counts[kw]++
		}
	}
	// Zipf: the most popular keyword (vocab[0]) dominates.
	top := counts[g.Vocab()[0]]
	if top < n/10 {
		t.Errorf("top keyword count %d of %d: not skewed", top, n)
	}
	// But the tail exists: many distinct keywords appear.
	if len(counts) < 200 {
		t.Errorf("only %d distinct keywords", len(counts))
	}
}

func TestEBirdSmallVocabulary(t *testing.T) {
	g := EBird(5, 2)
	seen := map[string]struct{}{}
	for i := 0; i < 20000; i++ {
		for _, kw := range g.Next().Keywords {
			seen[kw] = struct{}{}
		}
	}
	if len(seen) > 60 {
		t.Errorf("eBird vocabulary %d exceeds configured 60", len(seen))
	}
	if len(seen) < 10 {
		t.Errorf("eBird vocabulary %d suspiciously small", len(seen))
	}
}

func TestDriftShiftsDistribution(t *testing.T) {
	// With drift enabled, hotspot weight rotates: the share of points near
	// a fixed hotspot should change materially across drift periods.
	g := Twitter(6, 2)
	nyc := geo.CenteredRect(geo.Pt(-74.0, 40.7), 3, 3)
	shareOver := func(n int) float64 {
		in := 0
		for i := 0; i < n; i++ {
			if nyc.Contains(g.Next().Loc) {
				in++
			}
		}
		return float64(in) / float64(n)
	}
	const block = 100_000 // ≈50s of virtual time at 2/ms
	s1 := shareOver(block)
	// Skip ahead several drift periods.
	for i := 0; i < 3*block; i++ {
		g.Next()
	}
	s2 := shareOver(block)
	if math.Abs(s1-s2) < 0.01 {
		t.Errorf("no drift observed: shares %.4f vs %.4f", s1, s2)
	}
}

func TestQuerySamplers(t *testing.T) {
	g := CheckIn(7, 2)
	for i := 0; i < 5000; i++ {
		p := g.SampleQueryPoint()
		if !g.World().Contains(p) {
			t.Fatalf("query point %v outside world", p)
		}
	}
	seen := map[string]struct{}{}
	for i := 0; i < 5000; i++ {
		kw := g.SampleQueryKeyword()
		if kw == "" {
			t.Fatal("empty query keyword")
		}
		seen[kw] = struct{}{}
	}
	if len(seen) < 20 {
		t.Errorf("query keywords too uniform: %d distinct", len(seen))
	}
	if g.QueryRand() == nil {
		t.Error("QueryRand nil")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Twitter", "eBird", "CheckIn"} {
		if g := ByName(name, 1, 1); g.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown name should panic")
		}
	}()
	ByName("nope", 1, 1)
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Name: "x", World: geo.UnitSquare, UniformFrac: 1,
		VocabSize: 10, ZipfS: 1.2, KwMin: 1, KwMax: 2, RatePerMS: 1,
	}
	if New(base) == nil {
		t.Fatal("valid config rejected")
	}
	for name, mut := range map[string]func(c Config) Config{
		"empty world":  func(c Config) Config { c.World = geo.Rect{}; return c },
		"zero vocab":   func(c Config) Config { c.VocabSize = 0; return c },
		"zipf too low": func(c Config) Config { c.ZipfS = 1.0; return c },
		"kw inverted":  func(c Config) Config { c.KwMin = 3; c.KwMax = 1; return c },
		"zero rate":    func(c Config) Config { c.RatePerMS = 0; return c },
		"no sources":   func(c Config) Config { c.UniformFrac = 0.5; return c },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(mut(base))
		})
	}
}

func TestVocabSemanticHead(t *testing.T) {
	g := Twitter(8, 1)
	if g.Vocab()[0] != "fire" {
		t.Errorf("vocab head = %q, want \"fire\"", g.Vocab()[0])
	}
	if len(g.Vocab()) != 5000 {
		t.Errorf("vocab size = %d", len(g.Vocab()))
	}
}

func BenchmarkNext(b *testing.B) {
	g := Twitter(1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
