package datagen

import "github.com/spatiotext/latest/internal/geo"

// conus is a continental-US-like lon/lat bounding box used by the Twitter
// and eBird simulations (the paper's streams are US-centric).
var conus = geo.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}

// Twitter simulates the paper's 75M-geotagged-tweet stream: many urban
// hotspots over CONUS, a large Zipf hashtag vocabulary, 1-3 keywords per
// tweet, and slow hotspot drift (trending-topic movement). rate is objects
// per virtual ms; the paper's stream averages ~2 tweets/ms.
func Twitter(seed int64, rate float64) *Generator {
	return New(Config{
		Name:  "Twitter",
		World: conus,
		Hotspots: []Hotspot{
			{Center: geo.Pt(-74.0, 40.7), Sigma: 0.8, Weight: 14},  // NYC
			{Center: geo.Pt(-118.2, 34.1), Sigma: 0.9, Weight: 12}, // LA
			{Center: geo.Pt(-87.6, 41.9), Sigma: 0.7, Weight: 8},   // Chicago
			{Center: geo.Pt(-95.4, 29.8), Sigma: 0.8, Weight: 7},   // Houston
			{Center: geo.Pt(-112.1, 33.4), Sigma: 0.7, Weight: 4},  // Phoenix
			{Center: geo.Pt(-75.2, 39.9), Sigma: 0.6, Weight: 4},   // Philly
			{Center: geo.Pt(-122.4, 37.8), Sigma: 0.5, Weight: 6},  // SF
			{Center: geo.Pt(-84.4, 33.7), Sigma: 0.7, Weight: 5},   // Atlanta
			{Center: geo.Pt(-80.2, 25.8), Sigma: 0.5, Weight: 5},   // Miami
			{Center: geo.Pt(-104.9, 39.7), Sigma: 0.6, Weight: 3},  // Denver
			{Center: geo.Pt(-122.3, 47.6), Sigma: 0.5, Weight: 4},  // Seattle
			{Center: geo.Pt(-97.7, 30.3), Sigma: 0.6, Weight: 3},   // Austin
		},
		UniformFrac:   0.2,
		VocabSize:     5000,
		ZipfS:         1.1,
		KwMin:         1,
		KwMax:         3,
		RatePerMS:     rate,
		DriftPeriodMS: 120_000,
		Seed:          seed,
	})
}

// EBird simulates the 41M-record eBird stream: observation clusters along
// migration-corridor bands, a small categorical vocabulary (protocol and
// breeding codes), 1-2 keywords per record, lower keyword entropy than
// Twitter — the spatially dominated dataset of the paper.
func EBird(seed int64, rate float64) *Generator {
	// A diagonal band of clusters (Atlantic flyway flavour) plus interior
	// refuges.
	return New(Config{
		Name:  "eBird",
		World: conus,
		Hotspots: []Hotspot{
			{Center: geo.Pt(-70.5, 43.5), Sigma: 1.4, Weight: 6},
			{Center: geo.Pt(-75.0, 40.0), Sigma: 1.3, Weight: 8},
			{Center: geo.Pt(-79.0, 36.0), Sigma: 1.5, Weight: 7},
			{Center: geo.Pt(-82.0, 31.0), Sigma: 1.4, Weight: 6},
			{Center: geo.Pt(-81.5, 27.0), Sigma: 1.1, Weight: 7},
			{Center: geo.Pt(-90.1, 35.1), Sigma: 1.6, Weight: 5}, // Mississippi flyway
			{Center: geo.Pt(-93.3, 44.9), Sigma: 1.4, Weight: 4},
			{Center: geo.Pt(-106.5, 35.1), Sigma: 1.7, Weight: 3}, // Rio Grande
			{Center: geo.Pt(-121.5, 38.6), Sigma: 1.2, Weight: 5}, // Central Valley
		},
		UniformFrac: 0.1,
		VocabSize:   60, // protocol type, breeding category, species codes
		ZipfS:       1.3,
		KwMin:       1,
		KwMax:       2,
		RatePerMS:   rate,
		Seed:        seed,
	})
}

// CheckIn simulates the 973K Foursquare check-in stream: tight urban POI
// cores, a mid-sized tag vocabulary, the smallest volume of the three.
func CheckIn(seed int64, rate float64) *Generator {
	return New(Config{
		Name:  "CheckIn",
		World: conus,
		Hotspots: []Hotspot{
			{Center: geo.Pt(-74.0, 40.7), Sigma: 0.25, Weight: 12}, // NYC
			{Center: geo.Pt(-118.2, 34.1), Sigma: 0.3, Weight: 8},  // LA
			{Center: geo.Pt(-87.6, 41.9), Sigma: 0.25, Weight: 6},  // Chicago
			{Center: geo.Pt(-122.4, 37.8), Sigma: 0.2, Weight: 6},  // SF
			{Center: geo.Pt(-80.2, 25.8), Sigma: 0.2, Weight: 4},   // Miami
			{Center: geo.Pt(-97.7, 30.3), Sigma: 0.2, Weight: 3},   // Austin
		},
		UniformFrac: 0.08,
		VocabSize:   800,
		ZipfS:       1.15,
		KwMin:       1,
		KwMax:       3,
		RatePerMS:   rate,
		Seed:        seed,
	})
}

// ByName builds one of the three preset datasets by figure label. It
// panics on unknown names, which indicates a harness typo.
func ByName(name string, seed int64, rate float64) *Generator {
	switch name {
	case "Twitter":
		return Twitter(seed, rate)
	case "eBird":
		return EBird(seed, rate)
	case "CheckIn":
		return CheckIn(seed, rate)
	default:
		panic("datagen: unknown dataset " + name)
	}
}
