package estimator

import (
	"fmt"

	"github.com/spatiotext/latest/internal/asptree"
	"github.com/spatiotext/latest/internal/stream"
)

// AASP defaults. The paper's "split value of 0.5" is interpreted as the
// node split threshold being 0.5% of the expected windowed arrivals; with
// this repository's default synthetic rates that lands near 64 points per
// node, which is what defaultAASPSplit encodes directly so the structure is
// deterministic regardless of rate.
const (
	defaultAASPSplit    = 64
	defaultAASPMaxNodes = 32768
	defaultAASPSlices   = 8
	defaultAASPKwBucket = 64
)

// AASP is the augmented adaptive space-partitioning tree estimator
// (Figure 1(c)): a compressed 4-ary quadtree with windowed per-node count
// rings, per-node keyword summaries and a KMV synopsis. The tight coupling
// of spatial and keyword statistics is the paper's explanation for its
// weak performance on mixed workloads (§VI-D) — faithfully reproduced here,
// since keyword fractions degrade wherever spatial cells mix vocabularies.
type AASP struct {
	tree   *asptree.Tree
	slicer Slicer
}

// NewAASP builds the estimator; p.Scale multiplies the node budget.
func NewAASP(p Params) *AASP {
	// A larger memory budget buys finer spatial granularity: the split
	// threshold shrinks as the node budget grows, so Fig. 13's budget axis
	// moves both the cap and the resolution.
	split := int(float64(defaultAASPSplit) / scaleOf(p))
	if split < 8 {
		split = 8
	}
	return &AASP{
		tree: asptree.New(p.World, asptree.Config{
			SplitThreshold: split,
			MaxNodes:       p.scaledInt(defaultAASPMaxNodes, 128),
			Slices:         defaultAASPSlices,
			KeywordBuckets: defaultAASPKwBucket,
		}),
		slicer: NewSlicer(p.Span, defaultAASPSlices),
	}
}

// Name implements Estimator.
func (a *AASP) Name() string { return NameAASP }

func (a *AASP) advance(ts int64) {
	for i := a.slicer.AdvanceTo(ts); i > 0; i-- {
		a.tree.AdvanceSlice()
	}
}

// Insert implements Estimator.
func (a *AASP) Insert(o *stream.Object) {
	a.advance(o.Timestamp)
	a.tree.Insert(o.Loc, o.Keywords)
}

// Estimate implements Estimator. Every query consults the KMV synopsis for
// the background keyword frequency floor — an inherent per-query cost of
// the augmented design that the paper's latency numbers reflect on all
// workloads.
func (a *AASP) Estimate(q *stream.Query) float64 {
	a.advance(q.Timestamp)
	floor := a.tree.KeywordFloor()
	switch q.Type() {
	case stream.SpatialQuery:
		return a.tree.EstimateRange(q.Range)
	case stream.KeywordQuery:
		est := a.tree.EstimateKeywords(q.Keywords)
		if lo := floor * float64(a.tree.Live()) * float64(len(q.Keywords)); est < lo {
			est = lo
		}
		return est
	default:
		est := a.tree.EstimateRangeKeywords(q.Range, q.Keywords)
		if lo := floor * a.tree.EstimateRange(q.Range) * float64(len(q.Keywords)); est < lo {
			est = lo
		}
		return est
	}
}

// Observe implements Estimator; the tree does not learn from feedback.
func (a *AASP) Observe(q *stream.Query, actual float64) {}

// Reset implements Estimator.
func (a *AASP) Reset() {
	a.tree.Reset()
	a.slicer.Reset()
}

// MemoryBytes implements Estimator.
func (a *AASP) MemoryBytes() int { return a.tree.MemoryBytes() }

// NodeCount exposes the tree size for tests and diagnostics.
func (a *AASP) NodeCount() int { return a.tree.NodeCount() }

// String summarizes state for diagnostics.
func (a *AASP) String() string {
	return fmt.Sprintf("AASP{nodes=%d live=%d}", a.tree.NodeCount(), a.tree.Live())
}
