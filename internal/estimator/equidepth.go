package estimator

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// Equi-depth histogram defaults.
const (
	defaultEDColumns   = 16 // k: k×k buckets total
	defaultEDSampleCap = 8192
	defaultEDRebuild   = 4096 // inserts between boundary rebuilds
)

// NameED is the equi-depth histogram's registry name. It is not part of
// the paper's six-estimator fleet; RegisterExtras adds it for
// installations that want a skew-robust spatial estimator (§IV mentions
// non-uniform binning as a hybrid-structure variant, and the paper cites
// Muralikrishna & DeWitt's equi-depth multidimensional histograms).
const NameED = "ED"

// EquiDepth is a two-dimensional equi-depth histogram over the sliding
// window: bucket boundaries adapt so each bucket holds roughly the same
// number of points, making the per-bucket uniformity assumption far safer
// under spatial skew than the equi-width H4096. Boundaries are recomputed
// periodically from a windowed reservoir sample (the classic
// rebuild-from-sample approach); between rebuilds the sample itself
// provides the per-bucket masses, so estimates track the window even as
// boundaries age.
//
// Like H4096 it keeps purely spatial statistics: keyword predicates are
// ignored, pure keyword queries fall back to the window count.
type EquiDepth struct {
	world   geo.Rect
	span    int64
	k       int
	counter *WindowCounter
	src     *countedSource
	rng     *rand.Rand

	capacity     int
	samples      []sample
	sinceRebuild int
	rebuilds     int

	// xCuts[i] is the right edge of column i (len k, last = world MaxX);
	// yCuts[c][i] is the top edge of bucket i in column c.
	xCuts []float64
	yCuts [][]float64
	built bool
}

// NewEquiDepth builds the estimator; p.Scale multiplies the sample
// capacity and the bucket count.
func NewEquiDepth(p Params) *EquiDepth {
	k := p.scaledInt(defaultEDColumns, 4)
	src, rng := newCountedRand(p.Seed + 0x4544)
	return &EquiDepth{
		world:    p.World,
		span:     p.Span,
		k:        k,
		counter:  NewWindowCounter(p.Span, defaultHistSlices),
		src:      src,
		rng:      rng,
		capacity: p.scaledInt(defaultEDSampleCap, 64),
	}
}

// RegisterExtras adds the optional non-paper estimators to a registry.
func RegisterExtras(r *Registry) {
	r.Register(NameED, func(p Params) Estimator { return NewEquiDepth(p) })
}

// Name implements Estimator.
func (e *EquiDepth) Name() string { return NameED }

// Columns returns k (the histogram is k×k buckets).
func (e *EquiDepth) Columns() int { return e.k }

// Rebuilds reports how many boundary recomputations have run.
func (e *EquiDepth) Rebuilds() int { return e.rebuilds }

// Insert implements Estimator: windowed reservoir sampling plus periodic
// boundary rebuilds.
func (e *EquiDepth) Insert(o *stream.Object) {
	e.counter.Add(o.Timestamp)
	s := sample{loc: o.Loc, ts: o.Timestamp}
	if len(e.samples) < e.capacity {
		e.samples = append(e.samples, s)
	} else {
		n := int(e.counter.Live(o.Timestamp))
		if n < e.capacity {
			n = e.capacity
		}
		if j := e.rng.Intn(n); j < e.capacity {
			e.samples[j] = s
		}
	}
	e.sinceRebuild++
	if e.sinceRebuild >= defaultEDRebuild || !e.built {
		e.rebuild(o.Timestamp)
	}
}

// rebuild purges expired samples and recomputes equi-depth boundaries.
func (e *EquiDepth) rebuild(now int64) {
	cutoff := now - e.span
	for i := 0; i < len(e.samples); {
		if e.samples[i].ts < cutoff {
			e.samples[i] = e.samples[len(e.samples)-1]
			e.samples = e.samples[:len(e.samples)-1]
			continue
		}
		i++
	}
	e.sinceRebuild = 0
	if len(e.samples) < e.k*e.k {
		e.built = false
		return
	}
	e.rebuilds++

	// Column cuts: x-quantiles of the sample.
	xs := make([]float64, len(e.samples))
	for i := range e.samples {
		xs[i] = e.samples[i].loc.X
	}
	sort.Float64s(xs)
	e.xCuts = quantileCuts(xs, e.k, e.world.MaxX)

	// Row cuts per column: y-quantiles of the column's members.
	cols := make([][]float64, e.k)
	for i := range e.samples {
		c := e.columnOf(e.samples[i].loc.X)
		cols[c] = append(cols[c], e.samples[i].loc.Y)
	}
	e.yCuts = make([][]float64, e.k)
	for c := range cols {
		sort.Float64s(cols[c])
		if len(cols[c]) == 0 {
			// Empty column: uniform cuts.
			e.yCuts[c] = uniformCuts(e.world.MinY, e.world.MaxY, e.k)
			continue
		}
		e.yCuts[c] = quantileCuts(cols[c], e.k, e.world.MaxY)
	}
	e.built = true
}

// quantileCuts returns k right-edges splitting sorted values into k
// near-equal parts; the final edge is forced to worldMax so the buckets
// tile the domain.
func quantileCuts(sorted []float64, k int, worldMax float64) []float64 {
	cuts := make([]float64, k)
	n := len(sorted)
	for i := 0; i < k-1; i++ {
		idx := (i + 1) * n / k
		if idx >= n {
			idx = n - 1
		}
		cuts[i] = sorted[idx]
	}
	cuts[k-1] = worldMax
	// Enforce monotonicity under duplicate values.
	for i := 1; i < k; i++ {
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	return cuts
}

func uniformCuts(lo, hi float64, k int) []float64 {
	cuts := make([]float64, k)
	for i := 0; i < k; i++ {
		cuts[i] = lo + (hi-lo)*float64(i+1)/float64(k)
	}
	return cuts
}

// columnOf locates x's column by binary search over the cuts.
func (e *EquiDepth) columnOf(x float64) int {
	c := sort.SearchFloat64s(e.xCuts, x)
	if c >= e.k {
		c = e.k - 1
	}
	return c
}

// bucketRect returns bucket (c, r)'s rectangle.
func (e *EquiDepth) bucketRect(c, r int) geo.Rect {
	minX := e.world.MinX
	if c > 0 {
		minX = e.xCuts[c-1]
	}
	minY := e.world.MinY
	if r > 0 {
		minY = e.yCuts[c][r-1]
	}
	return geo.Rect{MinX: minX, MinY: minY, MaxX: e.xCuts[c], MaxY: e.yCuts[c][r]}
}

// Estimate implements Estimator. The sample provides per-bucket masses;
// boundaries provide the partial-overlap interpolation.
func (e *EquiDepth) Estimate(q *stream.Query) float64 {
	w := e.counter.Live(q.Timestamp)
	if !q.HasRange {
		// No spatial statistics apply: honest fallback, exactly like H4096.
		return w
	}
	if !e.built || len(e.samples) == 0 {
		// Boundaries unavailable: fall back to a full uniform assumption —
		// the range's share of the world's area.
		return w * q.Range.Intersect(e.world).Area() / e.world.Area()
	}
	cutoff := q.Timestamp - e.span
	// Per-bucket live sample counts.
	bucketCount := make([]float64, e.k*e.k)
	live := 0.0
	for i := range e.samples {
		if e.samples[i].ts < cutoff {
			continue
		}
		live++
		c := e.columnOf(e.samples[i].loc.X)
		r := sort.SearchFloat64s(e.yCuts[c], e.samples[i].loc.Y)
		if r >= e.k {
			r = e.k - 1
		}
		bucketCount[c*e.k+r]++
	}
	if live == 0 {
		return 0
	}
	frac := 0.0
	for c := 0; c < e.k; c++ {
		colRect := geo.Rect{MinX: e.world.MinX, MinY: e.world.MinY, MaxX: e.xCuts[c], MaxY: e.world.MaxY}
		if c > 0 {
			colRect.MinX = e.xCuts[c-1]
		}
		if !colRect.Intersects(q.Range) {
			continue
		}
		for r := 0; r < e.k; r++ {
			n := bucketCount[c*e.k+r]
			if n == 0 {
				continue
			}
			b := e.bucketRect(c, r)
			if q.Range.ContainsRect(b) {
				frac += n
			} else if b.Intersects(q.Range) {
				frac += n * q.Range.OverlapFraction(b)
			}
		}
	}
	return frac / live * w
}

// Observe implements Estimator; no feedback learning.
func (e *EquiDepth) Observe(q *stream.Query, actual float64) {}

// Reset implements Estimator.
func (e *EquiDepth) Reset() {
	e.samples = e.samples[:0]
	e.counter.Reset()
	e.built = false
	e.sinceRebuild = 0
}

// MemoryBytes implements Estimator.
func (e *EquiDepth) MemoryBytes() int {
	return 64 + 32*cap(e.samples) + 8*e.k*(e.k+1) + e.counter.MemoryBytes()
}

// String summarizes state for diagnostics.
func (e *EquiDepth) String() string {
	return fmt.Sprintf("ED{k=%d samples=%d rebuilds=%d}", e.k, len(e.samples), e.rebuilds)
}
