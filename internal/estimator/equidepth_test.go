package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
)

func TestEquiDepthRegisterExtras(t *testing.T) {
	r := DefaultRegistry()
	RegisterExtras(r)
	e, err := r.Build(NameED, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != NameED {
		t.Errorf("Name = %q", e.Name())
	}
	if len(r.Names()) != 7 {
		t.Errorf("registry has %d estimators", len(r.Names()))
	}
}

func TestEquiDepthUniformData(t *testing.T) {
	p := testParams()
	ed := NewEquiDepth(p)
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 20000; i++ {
		ts++
		o := stream.Object{Loc: geo.Pt(rng.Float64(), rng.Float64()), Timestamp: ts}
		ed.Insert(&o)
	}
	if ed.Rebuilds() == 0 {
		t.Fatal("never rebuilt boundaries")
	}
	for _, frac := range []float64{0.25, 0.04} {
		side := math.Sqrt(frac)
		q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.5, 0.5), side, side), ts)
		got := ed.Estimate(&q)
		want := frac * 10_000 // window holds span=10s at 1/ms
		if rel := math.Abs(got-want) / want; rel > 0.2 {
			t.Errorf("frac %v: estimate %v, want ~%v", frac, got, want)
		}
	}
}

func TestEquiDepthBeatsEquiWidthOnSkew(t *testing.T) {
	// Heavily clustered data with a query slicing through the cluster:
	// equi-depth boundaries follow the density and should estimate better
	// than the equi-width histogram's sub-cell interpolation.
	p := testParams()
	ed := NewEquiDepth(p)
	h := NewHistogram(p)
	w := stream.NewWindow(geo.UnitSquare, p.Span, 1024)
	rng := rand.New(rand.NewSource(2))
	ts := int64(0)
	for i := 0; i < 20000; i++ {
		ts++
		var pt geo.Point
		if rng.Float64() < 0.95 {
			pt = geo.UnitSquare.Clamp(geo.Pt(0.5+rng.NormFloat64()*0.004, 0.5+rng.NormFloat64()*0.004))
		} else {
			pt = geo.Pt(rng.Float64(), rng.Float64())
		}
		o := stream.Object{ID: uint64(i), Loc: pt, Timestamp: ts}
		ed.Insert(&o)
		h.Insert(&o)
		w.Insert(o)
	}
	// Queries at cluster scale (much smaller than H4096's 1/64 cells).
	var edAcc, hAcc float64
	const trials = 40
	for i := 0; i < trials; i++ {
		c := geo.Pt(0.5+rng.NormFloat64()*0.003, 0.5+rng.NormFloat64()*0.003)
		q := stream.SpatialQ(geo.CenteredRect(c, 0.004, 0.004), ts)
		actual := float64(w.Answer(&q))
		edAcc += metrics.Accuracy(ed.Estimate(&q), actual)
		hAcc += metrics.Accuracy(h.Estimate(&q), actual)
	}
	edAcc /= trials
	hAcc /= trials
	if edAcc <= hAcc {
		t.Errorf("equi-depth %.3f did not beat equi-width %.3f on skewed sub-cell queries", edAcc, hAcc)
	}
	if edAcc < 0.5 {
		t.Errorf("equi-depth accuracy %.3f too low", edAcc)
	}
}

func TestEquiDepthKeywordFallback(t *testing.T) {
	p := testParams()
	ed := NewEquiDepth(p)
	ts := int64(0)
	for i := 0; i < 500; i++ {
		ts++
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{"x"}, Timestamp: ts}
		ed.Insert(&o)
	}
	q := stream.KeywordQ([]string{"nope"}, ts)
	if got := ed.Estimate(&q); math.Abs(got-500) > 1 {
		t.Errorf("keyword fallback = %v, want window count 500", got)
	}
}

func TestEquiDepthExpiry(t *testing.T) {
	p := testParams()
	ed := NewEquiDepth(p)
	for i := 0; i < 1000; i++ {
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Timestamp: int64(i)}
		ed.Insert(&o)
	}
	q := stream.SpatialQ(geo.UnitSquare, 50_000)
	if got := ed.Estimate(&q); got != 0 {
		t.Errorf("stale estimate = %v", got)
	}
}

func TestEquiDepthUnbuiltFallsBackToUniform(t *testing.T) {
	p := testParams()
	ed := NewEquiDepth(p)
	// Too few samples to build boundaries (k*k = 256 minimum).
	for i := 0; i < 50; i++ {
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Timestamp: int64(i)}
		ed.Insert(&o)
	}
	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 1}, 50)
	got := ed.Estimate(&q)
	if math.Abs(got-25) > 1 { // 50 objects × half the world
		t.Errorf("uniform fallback = %v, want ~25", got)
	}
}

func TestEquiDepthResetAndString(t *testing.T) {
	p := testParams()
	ed := NewEquiDepth(p)
	rng := rand.New(rand.NewSource(3))
	ts := int64(0)
	for i := 0; i < 6000; i++ {
		ts++
		o := stream.Object{Loc: geo.Pt(rng.Float64(), rng.Float64()), Timestamp: ts}
		ed.Insert(&o)
	}
	ed.Reset()
	q := stream.SpatialQ(geo.UnitSquare, ts)
	if got := ed.Estimate(&q); got != 0 {
		t.Errorf("post-Reset estimate = %v", got)
	}
	if ed.String() == "" || ed.MemoryBytes() <= 0 {
		t.Error("String/MemoryBytes broken")
	}
}

func TestQuantileCuts(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	cuts := quantileCuts(sorted, 4, 100)
	if cuts[3] != 100 {
		t.Errorf("last cut = %v, want worldMax", cuts[3])
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			t.Errorf("cuts not monotone: %v", cuts)
		}
	}
	// Duplicates collapse but stay monotone.
	dup := []float64{5, 5, 5, 5, 5, 5}
	cuts = quantileCuts(dup, 3, 10)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			t.Errorf("dup cuts not monotone: %v", cuts)
		}
	}
}
