// Package estimator implements the six selectivity estimators the paper
// drives through LATEST (§IV, §VI-A):
//
//	H4096 — two-dimensional equi-width histogram (4096 cells)
//	RSL   — reservoir sampling list (Algorithm R over the window)
//	RSH   — reservoir sampling hashmap (reservoir indexed by a 2-D grid)
//	AASP  — augmented adaptive space-partitioning tree
//	FFN   — workload-driven feed-forward neural network
//	SPN   — data-driven sum-product network
//
// All estimators summarise the same sliding time window S_T and answer the
// same RC-DVQ interface; none stores the raw window (that is
// internal/stream's job). The package is deliberately orthogonal to the
// switching logic in internal/core: LATEST can drive any Estimator
// implementation registered with the Registry, including user-defined ones.
package estimator

import (
	"fmt"
	"sort"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// Estimator is a windowed RC-DVQ selectivity estimator. Implementations are
// single-goroutine: the stream driver owns them.
type Estimator interface {
	// Name identifies the estimator in model features, logs and figures.
	Name() string
	// Insert observes a stream object. Timestamps must be non-decreasing
	// across calls; estimators use them to expire their summaries.
	Insert(o *stream.Object)
	// Estimate answers an RC-DVQ with an approximate count over the window
	// ending at q.Timestamp.
	Estimate(q *stream.Query) float64
	// Observe feeds back the true selectivity of an executed query — the
	// paper's system-log signal. Workload-driven estimators (FFN) learn
	// from it; structural estimators ignore it.
	Observe(q *stream.Query, actual float64)
	// Reset wipes the estimator back to empty. The paper wipes all inactive
	// estimators after pre-training (§V-C) and pre-fills fresh ones before
	// a switch (§V-D).
	Reset()
	// MemoryBytes approximates the summary's current footprint.
	MemoryBytes() int
}

// Params carries the environment every estimator factory needs.
type Params struct {
	// World is the spatial domain.
	World geo.Rect
	// Span is the time window T in virtual milliseconds.
	Span int64
	// Scale multiplies every capacity default; the memory-budget experiment
	// (Fig. 13) sweeps it. Zero means 1.
	Scale float64
	// Seed feeds the estimators' internal randomness (reservoir choices,
	// network init) so runs are reproducible.
	Seed int64
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// scaledInt returns n scaled by the memory budget, floored at lo.
func (p Params) scaledInt(n, lo int) int {
	v := int(float64(n) * p.scale())
	if v < lo {
		return lo
	}
	return v
}

// Factory builds a fresh estimator.
type Factory func(p Params) Estimator

// Registry maps estimator names to factories. LATEST consults it to build
// its fleet; callers may register their own estimators (the paper's §IV
// notes administrators can pick any estimator set).
type Registry struct {
	factories map[string]Factory
	order     []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under name, preserving registration order.
// Registering a duplicate name panics: silently replacing an estimator
// would corrupt trained model labels.
func (r *Registry) Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("estimator: Register requires a name and a factory")
	}
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("estimator: duplicate registration of %q", name))
	}
	r.factories[name] = f
	r.order = append(r.order, name)
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Build constructs the named estimator, or an error for unknown names.
func (r *Registry) Build(name string, p Params) (Estimator, error) {
	f, ok := r.factories[name]
	if !ok {
		known := append([]string(nil), r.order...)
		sort.Strings(known)
		return nil, fmt.Errorf("estimator: unknown estimator %q (registered: %v)", name, known)
	}
	return f(p), nil
}

// BuildAll constructs every registered estimator in registration order.
func (r *Registry) BuildAll(p Params) []Estimator {
	out := make([]Estimator, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.factories[name](p))
	}
	return out
}

// DefaultRegistry returns a registry pre-loaded with the paper's six
// estimators under their paper names.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(NameH4096, func(p Params) Estimator { return NewHistogram(p) })
	r.Register(NameRSL, func(p Params) Estimator { return NewReservoirList(p) })
	r.Register(NameRSH, func(p Params) Estimator { return NewReservoirHashmap(p) })
	r.Register(NameAASP, func(p Params) Estimator { return NewAASP(p) })
	r.Register(NameFFN, func(p Params) Estimator { return NewFFN(p) })
	r.Register(NameSPN, func(p Params) Estimator { return NewSPN(p) })
	return r
}

// Canonical estimator names as used throughout the paper's figures.
const (
	NameH4096 = "H4096"
	NameRSL   = "RSL"
	NameRSH   = "RSH"
	NameAASP  = "AASP"
	NameFFN   = "FFN"
	NameSPN   = "SPN"
)

// scaleOf exposes the effective memory scale to estimator constructors.
func scaleOf(p Params) float64 { return p.scale() }
