package estimator

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
)

// testParams is the shared environment for estimator tests: unit-square
// world, a 10-second window.
func testParams() Params {
	return Params{World: geo.UnitSquare, Span: 10_000, Seed: 1}
}

// genObject draws a synthetic object: 70% from two Gaussian hotspots, 30%
// uniform, with 1-3 Zipf-flavoured keywords.
func genObject(rng *rand.Rand, id uint64, ts int64) stream.Object {
	var p geo.Point
	switch {
	case rng.Float64() < 0.35:
		p = geo.Pt(0.3+rng.NormFloat64()*0.05, 0.3+rng.NormFloat64()*0.05)
	case rng.Float64() < 0.55:
		p = geo.Pt(0.75+rng.NormFloat64()*0.04, 0.65+rng.NormFloat64()*0.04)
	default:
		p = geo.Pt(rng.Float64(), rng.Float64())
	}
	p = geo.UnitSquare.Clamp(p)
	nk := 1 + rng.Intn(3)
	kws := make([]string, nk)
	for i := range kws {
		// Squared uniform gives a skewed (Zipf-ish) keyword popularity.
		kws[i] = fmt.Sprintf("kw%d", int(rng.Float64()*rng.Float64()*50))
	}
	return stream.Object{ID: id, Loc: p, Keywords: kws, Timestamp: ts}
}

// feedBoth inserts n objects into the estimator and the exact window, one
// per virtual millisecond.
func feedBoth(t *testing.T, e Estimator, w *stream.Window, n int, seed int64) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		w.Insert(o)
		e.Insert(&o)
	}
	return ts
}

// queryMix yields one of each query type around the data hotspots.
func queryMix(ts int64) []stream.Query {
	r1 := geo.CenteredRect(geo.Pt(0.3, 0.3), 0.2, 0.2)
	r2 := geo.CenteredRect(geo.Pt(0.75, 0.65), 0.15, 0.15)
	r3 := geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	return []stream.Query{
		stream.SpatialQ(r1, ts),
		stream.SpatialQ(r3, ts),
		stream.KeywordQ([]string{"kw0"}, ts),
		stream.KeywordQ([]string{"kw3", "kw7"}, ts),
		stream.HybridQ(r2, []string{"kw0"}, ts),
		stream.HybridQ(r1, []string{"kw1", "kw2"}, ts),
	}
}

func TestRegistry(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	want := []string{NameH4096, NameRSL, NameRSH, NameAASP, NameFFN, NameSPN}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], n)
		}
	}
	if _, err := r.Build("nope", testParams()); err == nil {
		t.Error("unknown name should error")
	}
	e, err := r.Build(NameRSL, testParams())
	if err != nil || e.Name() != NameRSL {
		t.Errorf("Build(RSL) = %v, %v", e, err)
	}
	all := r.BuildAll(testParams())
	if len(all) != 6 {
		t.Fatalf("BuildAll built %d", len(all))
	}
	for i, e := range all {
		if e.Name() != want[i] {
			t.Errorf("BuildAll[%d] = %q", i, e.Name())
		}
	}
	// Duplicate registration panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register should panic")
			}
		}()
		r.Register(NameRSL, func(p Params) Estimator { return nil })
	}()
	// Nil factory panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil factory should panic")
			}
		}()
		NewRegistry().Register("x", nil)
	}()
}

func TestSlicer(t *testing.T) {
	s := NewSlicer(1000, 10) // 100ms slices
	if s.Slices() != 10 {
		t.Fatalf("Slices = %d", s.Slices())
	}
	if got := s.AdvanceTo(500); got != 0 {
		t.Errorf("first call anchors: steps = %d", got)
	}
	if got := s.AdvanceTo(599); got != 0 {
		t.Errorf("within slice: steps = %d", got)
	}
	if got := s.AdvanceTo(600); got != 1 {
		t.Errorf("boundary crossing: steps = %d", got)
	}
	if got := s.AdvanceTo(650); got != 0 {
		t.Errorf("same slice again: steps = %d", got)
	}
	if got := s.AdvanceTo(950); got != 3 {
		t.Errorf("multi-step: steps = %d", got)
	}
	// A huge jump caps at the ring size.
	if got := s.AdvanceTo(1_000_000); got != 10 {
		t.Errorf("giant jump: steps = %d, want 10", got)
	}
	// After the jump, the boundary is beyond the timestamp.
	if got := s.AdvanceTo(1_000_001); got != 0 {
		t.Errorf("post-jump: steps = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad slicer args should panic")
		}
	}()
	NewSlicer(0, 4)
}

func TestWindowCounter(t *testing.T) {
	w := NewWindowCounter(1000, 10)
	for ts := int64(1); ts <= 1000; ts++ {
		w.Add(ts)
	}
	if got := w.Live(1000); got != 1000 {
		t.Fatalf("Live = %v", got)
	}
	// 500ms later, roughly half the window expired (slice granularity).
	got := w.Live(1500)
	if got < 400 || got > 600 {
		t.Errorf("Live(+500ms) = %v, want ~500", got)
	}
	// Far in the future everything expires.
	if got := w.Live(100_000); got != 0 {
		t.Errorf("Live(far) = %v", got)
	}
	w.Reset()
	if got := w.Live(200_000); got != 0 {
		t.Errorf("post-Reset Live = %v", got)
	}
	if w.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

// TestInterfaceConformance drives all six estimators through the same
// stream and checks the universal contract: non-negative finite estimates,
// positive memory, and a Reset that actually empties state.
func TestInterfaceConformance(t *testing.T) {
	for _, name := range DefaultRegistry().Names() {
		t.Run(name, func(t *testing.T) {
			e, err := DefaultRegistry().Build(name, testParams())
			if err != nil {
				t.Fatal(err)
			}
			w := stream.NewWindow(geo.UnitSquare, 10_000, 1024)
			ts := feedBoth(t, e, w, 8000, 99)
			for _, q := range queryMix(ts) {
				q := q
				got := e.Estimate(&q)
				if got < 0 || math.IsNaN(got) || math.IsInf(got, 0) {
					t.Errorf("%v estimate = %v", q, got)
				}
				e.Observe(&q, float64(w.Answer(&q)))
			}
			if e.MemoryBytes() <= 0 {
				t.Error("MemoryBytes should be positive")
			}
			e.Reset()
			q := stream.SpatialQ(geo.UnitSquare, ts)
			if got := e.Estimate(&q); got != 0 {
				t.Errorf("post-Reset estimate = %v, want 0", got)
			}
		})
	}
}

// TestStructuralAccuracy checks that each structural estimator lands within
// a tolerance band on the query types it is designed for.
func TestStructuralAccuracy(t *testing.T) {
	cases := []struct {
		name    string
		queries func(ts int64) []stream.Query
		minAcc  float64
	}{
		{NameH4096, func(ts int64) []stream.Query {
			return []stream.Query{
				stream.SpatialQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.2, 0.2), ts),
				stream.SpatialQ(geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}, ts),
				stream.SpatialQ(geo.CenteredRect(geo.Pt(0.75, 0.65), 0.3, 0.3), ts),
			}
		}, 0.85},
		{NameRSL, func(ts int64) []stream.Query { return queryMix(ts) }, 0.7},
		{NameRSH, func(ts int64) []stream.Query { return queryMix(ts) }, 0.7},
		{NameAASP, func(ts int64) []stream.Query {
			return []stream.Query{
				stream.SpatialQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.2, 0.2), ts),
				stream.SpatialQ(geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}, ts),
			}
		}, 0.7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := DefaultRegistry().Build(tc.name, testParams())
			if err != nil {
				t.Fatal(err)
			}
			w := stream.NewWindow(geo.UnitSquare, 10_000, 1024)
			ts := feedBoth(t, e, w, 9000, 7)
			total := 0.0
			qs := tc.queries(ts)
			for _, q := range qs {
				q := q
				est := e.Estimate(&q)
				actual := float64(w.Answer(&q))
				total += metrics.Accuracy(est, actual)
			}
			if avg := total / float64(len(qs)); avg < tc.minAcc {
				t.Errorf("mean accuracy %.3f below %.2f", avg, tc.minAcc)
			}
		})
	}
}
