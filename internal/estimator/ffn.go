package estimator

import (
	"fmt"
	"math"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/kmv"
	"github.com/spatiotext/latest/internal/mlp"
	"github.com/spatiotext/latest/internal/stream"
)

// FFN hyper-parameters. Learning rate and momentum are the WEKA defaults
// the paper quotes (§VI-A: lr 0.3, momentum 0.2, unipolar sigmoid).
const (
	ffnKwFeatures    = 8   // keyword hash indicator width
	ffnReplayBuffer  = 512 // recent observations kept for consolidation
	ffnConsolidateAt = 256 // observations between replay passes
	ffnReplayEpochs  = 3
	// ffnLogCap normalizes log1p(selectivity) onto [0,1]; exp(16)≈8.9M
	// comfortably exceeds any window count this repository produces.
	ffnLogCap = 16.0
)

// FFN is the workload-driven feed-forward network baseline: it never sees
// the stream, only (query, true selectivity) pairs from the system logs,
// and regresses log-scaled selectivity from query features. Its paper role
// is the cautionary one — decent once trained on a stationary workload,
// slow to adapt when the workload or window drifts, since its knowledge
// lives entirely in weights trained on past queries.
type FFN struct {
	world  geo.Rect
	netCfg mlp.Config
	net    *mlp.Network

	// replay buffer of recent observations
	xs [][]float64
	ys [][]float64
	n  int // observations since last consolidation

	trained bool
}

// NewFFN builds the estimator. p.Scale multiplies the hidden width.
func NewFFN(p Params) *FFN {
	cfg := mlp.Config{
		Inputs:       ffnInputDim,
		Hidden:       []int{p.scaledInt(24, 4), p.scaledInt(12, 2)},
		Outputs:      1,
		LearningRate: 0.3,
		Momentum:     0.2,
		Seed:         p.Seed + 0x46464E,
	}
	return &FFN{world: p.World, netCfg: cfg, net: mlp.New(cfg)}
}

// ffnInputDim: type flags (2) + range geometry (4) + keyword count (1) +
// keyword hash indicators.
const ffnInputDim = 7 + ffnKwFeatures

// Name implements Estimator.
func (f *FFN) Name() string { return NameFFN }

// features encodes a query into the network input vector.
func (f *FFN) features(q *stream.Query) []float64 {
	x := make([]float64, ffnInputDim)
	if q.HasRange {
		x[0] = 1
		cx := (q.Range.Center().X - f.world.MinX) / f.world.Width()
		cy := (q.Range.Center().Y - f.world.MinY) / f.world.Height()
		x[2] = clamp01(cx)
		x[3] = clamp01(cy)
		x[4] = clamp01(q.Range.Width() / f.world.Width())
		x[5] = clamp01(q.Range.Height() / f.world.Height())
	} else {
		x[2], x[3] = 0.5, 0.5
	}
	if len(q.Keywords) > 0 {
		x[1] = 1
		x[6] = math.Min(float64(len(q.Keywords))/5, 1)
		for _, kw := range q.Keywords {
			x[7+int(kmv.Hash64(kw)%ffnKwFeatures)] = 1
		}
	}
	return x
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Insert implements Estimator. The FFN is workload-driven: stream objects
// carry no training signal for it, so inserts are no-ops.
func (f *FFN) Insert(o *stream.Object) {}

// Estimate implements Estimator. Before any observation the network's
// output is arbitrary, so an untrained FFN answers 0 — honestly useless,
// exactly like an untrained model in the paper's pre-training phase.
func (f *FFN) Estimate(q *stream.Query) float64 {
	if !f.trained {
		return 0
	}
	y := f.net.Predict(f.features(q))
	return math.Expm1(y * ffnLogCap)
}

// Observe implements Estimator: one online SGD step per executed query,
// plus a short replay pass over the recent buffer every ffnConsolidateAt
// observations.
func (f *FFN) Observe(q *stream.Query, actual float64) {
	x := f.features(q)
	y := []float64{clamp01(math.Log1p(math.Max(actual, 0)) / ffnLogCap)}
	f.net.Train(x, y)
	f.trained = true

	if len(f.xs) < ffnReplayBuffer {
		f.xs = append(f.xs, x)
		f.ys = append(f.ys, y)
	} else {
		idx := f.n % ffnReplayBuffer
		f.xs[idx] = x
		f.ys[idx] = y
	}
	f.n++
	if f.n%ffnConsolidateAt == 0 {
		f.net.Fit(f.xs, f.ys, ffnReplayEpochs, 0)
	}
}

// Reset implements Estimator: weights are reinitialized from the original
// seed and the replay buffer dropped.
func (f *FFN) Reset() {
	f.net = mlp.New(f.netCfg)
	f.xs, f.ys = nil, nil
	f.n = 0
	f.trained = false
}

// MemoryBytes implements Estimator: weights plus the replay buffer.
func (f *FFN) MemoryBytes() int {
	return 8*f.net.NumParameters() + (8*ffnInputDim+16)*len(f.xs)
}

// String summarizes state for diagnostics.
func (f *FFN) String() string {
	return fmt.Sprintf("FFN{params=%d obs=%d}", f.net.NumParameters(), f.n)
}
