package estimator

import (
	"math"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

func TestFFNFeatureEncoding(t *testing.T) {
	f := NewFFN(testParams()) // unit-square world

	// Pure spatial query: range flags and geometry set, keyword features 0.
	sq := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.5, 0.25), 0.2, 0.1), 0)
	x := f.features(&sq)
	if len(x) != ffnInputDim {
		t.Fatalf("dim = %d", len(x))
	}
	if x[0] != 1 || x[1] != 0 {
		t.Errorf("type flags = %v, %v", x[0], x[1])
	}
	if math.Abs(x[2]-0.5) > 1e-9 || math.Abs(x[3]-0.25) > 1e-9 {
		t.Errorf("center = %v, %v", x[2], x[3])
	}
	if math.Abs(x[4]-0.2) > 1e-9 || math.Abs(x[5]-0.1) > 1e-9 {
		t.Errorf("extent = %v, %v", x[4], x[5])
	}
	if x[6] != 0 {
		t.Errorf("kw count feature = %v", x[6])
	}
	for i := 7; i < ffnInputDim; i++ {
		if x[i] != 0 {
			t.Errorf("kw indicator %d = %v on a spatial query", i, x[i])
		}
	}

	// Pure keyword query: no-range defaults, keyword features set.
	kq := stream.KeywordQ([]string{"fire", "rescue"}, 0)
	x = f.features(&kq)
	if x[0] != 0 || x[1] != 1 {
		t.Errorf("type flags = %v, %v", x[0], x[1])
	}
	if x[2] != 0.5 || x[3] != 0.5 || x[4] != 0 || x[5] != 0 {
		t.Errorf("absent-range geometry = %v", x[2:6])
	}
	if math.Abs(x[6]-0.4) > 1e-9 { // 2 keywords / 5
		t.Errorf("kw count feature = %v", x[6])
	}
	hot := 0
	for i := 7; i < ffnInputDim; i++ {
		if x[i] == 1 {
			hot++
		}
	}
	if hot < 1 || hot > 2 {
		t.Errorf("%d hash indicators set for 2 keywords", hot)
	}

	// Same keywords always produce the same encoding (determinism).
	x2 := f.features(&kq)
	for i := range x {
		if x[i] != x2[i] {
			t.Fatalf("encoding not deterministic at %d", i)
		}
	}

	// Out-of-world ranges clamp into [0,1].
	wild := stream.SpatialQ(geo.Rect{MinX: -5, MinY: -5, MaxX: 10, MaxY: 10}, 0)
	x = f.features(&wild)
	for i := 2; i <= 5; i++ {
		if x[i] < 0 || x[i] > 1 {
			t.Errorf("feature %d = %v outside [0,1]", i, x[i])
		}
	}
}

func TestFFNMemoryGrowsWithObservations(t *testing.T) {
	f := NewFFN(testParams())
	before := f.MemoryBytes()
	q := stream.KeywordQ([]string{"x"}, 0)
	for i := 0; i < 100; i++ {
		f.Observe(&q, 50)
	}
	if f.MemoryBytes() <= before {
		t.Errorf("memory did not grow with the replay buffer: %d -> %d", before, f.MemoryBytes())
	}
	if f.String() == "" {
		t.Error("String empty")
	}
}

func TestFFNScaleChangesArchitecture(t *testing.T) {
	p := testParams()
	small := NewFFN(p)
	p.Scale = 4
	big := NewFFN(p)
	if big.net.NumParameters() <= small.net.NumParameters() {
		t.Errorf("scaled FFN not bigger: %d vs %d",
			big.net.NumParameters(), small.net.NumParameters())
	}
}
