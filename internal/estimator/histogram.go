package estimator

import (
	"fmt"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// defaultHistCells is the paper's H4096 configuration: a 64×64 equi-width
// grid over the world.
const defaultHistCells = 4096

// defaultHistSlices is the expiry ring length for windowed cell counters.
const defaultHistSlices = 16

// Histogram is the two-dimensional equi-width histogram estimator
// (Figure 1(a)). Each cell holds a windowed count ring; queries sum fully
// covered cells and interpolate partially covered ones by area under the
// per-cell uniformity assumption.
//
// The histogram keeps purely spatial statistics (§VI-E): it ignores keyword
// predicates entirely, which is exactly why its accuracy collapses on
// keyword-heavy workloads while staying the fastest estimator everywhere —
// the trade-off LATEST exploits when spatial queries dominate.
type Histogram struct {
	grid   *geo.Grid
	slicer Slicer
	// ring[s*cells+c] is slice s's count for cell c; live[c] caches sums.
	ring []float64
	live []float64
	cur  int

	totalLive float64
}

// NewHistogram builds the estimator; p.Scale multiplies the cell count
// (rounded to the nearest perfect square) for the memory-budget experiment.
func NewHistogram(p Params) *Histogram {
	cells := nearestSquare(p.scaledInt(defaultHistCells, 16))
	g := geo.NewSquareGrid(p.World, cells)
	return &Histogram{
		grid:   g,
		slicer: NewSlicer(p.Span, defaultHistSlices),
		ring:   make([]float64, defaultHistSlices*cells),
		live:   make([]float64, cells),
	}
}

// nearestSquare rounds n to the nearest perfect square ≥ 1.
func nearestSquare(n int) int {
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	// side² ≤ n < (side+1)²: pick the closer one.
	if n-side*side > (side+1)*(side+1)-n {
		side++
	}
	return side * side
}

// Name implements Estimator.
func (h *Histogram) Name() string { return NameH4096 }

// Cells returns the configured cell count, used by tests and DESIGN docs.
func (h *Histogram) Cells() int { return h.grid.NumCells() }

func (h *Histogram) rotate(n int) {
	cells := h.grid.NumCells()
	for i := 0; i < n; i++ {
		h.cur = (h.cur + 1) % h.slicer.Slices()
		row := h.ring[h.cur*cells : (h.cur+1)*cells]
		for c, v := range row {
			if v != 0 {
				h.live[c] -= v
				h.totalLive -= v
				row[c] = 0
			}
		}
	}
}

// Insert implements Estimator.
func (h *Histogram) Insert(o *stream.Object) {
	h.rotate(h.slicer.AdvanceTo(o.Timestamp))
	c := h.grid.CellOf(o.Loc)
	h.ring[h.cur*h.grid.NumCells()+c]++
	h.live[c]++
	h.totalLive++
}

// Estimate implements Estimator. Pure keyword queries fall back to the full
// window count — the histogram has no keyword statistics, so this is its
// honest (and badly overestimating) answer.
func (h *Histogram) Estimate(q *stream.Query) float64 {
	h.rotate(h.slicer.AdvanceTo(q.Timestamp))
	if !q.HasRange {
		return h.totalLive
	}
	cr := h.grid.CellsOverlapping(q.Range)
	est := 0.0
	h.grid.ForEachCell(cr, func(idx int, cell geo.Rect) bool {
		v := h.live[idx]
		if v == 0 {
			return true
		}
		if q.Range.ContainsRect(cell) {
			est += v
		} else {
			est += v * q.Range.OverlapFraction(cell)
		}
		return true
	})
	return est
}

// Observe implements Estimator; the histogram does not learn from feedback.
func (h *Histogram) Observe(q *stream.Query, actual float64) {}

// Reset implements Estimator.
func (h *Histogram) Reset() {
	for i := range h.ring {
		h.ring[i] = 0
	}
	for i := range h.live {
		h.live[i] = 0
	}
	h.cur = 0
	h.totalLive = 0
	h.slicer.Reset()
}

// MemoryBytes implements Estimator.
func (h *Histogram) MemoryBytes() int {
	return 64 + 8*(len(h.ring)+len(h.live))
}

// String summarizes the configuration.
func (h *Histogram) String() string {
	return fmt.Sprintf("H{cells=%d live=%.0f}", h.grid.NumCells(), h.totalLive)
}
