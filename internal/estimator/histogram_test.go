package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

func TestNearestSquare(t *testing.T) {
	tests := []struct{ in, want int }{
		{4096, 4096}, {4095, 4096}, {4097, 4096},
		{1, 1}, {2, 1}, {3, 4}, {16, 16}, {17, 16}, {24, 25},
		{1024, 1024}, {2048, 2025}, // 45² = 2025 vs 46² = 2116
	}
	for _, tc := range tests {
		if got := nearestSquare(tc.in); got != tc.want {
			t.Errorf("nearestSquare(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestHistogramDefaultCells(t *testing.T) {
	h := NewHistogram(testParams())
	if h.Cells() != 4096 {
		t.Errorf("Cells = %d, want 4096", h.Cells())
	}
	p := testParams()
	p.Scale = 0.25
	if got := NewHistogram(p).Cells(); got != 1024 {
		t.Errorf("scaled Cells = %d, want 1024", got)
	}
}

func TestHistogramExactOnAlignedRanges(t *testing.T) {
	h := NewHistogram(testParams())
	// 64x64 grid: cells are 1/64 wide. Insert points in known cells.
	ts := int64(0)
	for i := 0; i < 640; i++ {
		ts++
		// x in [0, 0.5): exactly the left half.
		o := stream.Object{Loc: geo.Pt(float64(i%32)/64+0.001, 0.5), Timestamp: ts}
		h.Insert(&o)
	}
	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 1}, ts)
	if got := h.Estimate(&q); math.Abs(got-640) > 1e-9 {
		t.Errorf("aligned estimate = %v, want 640", got)
	}
	q2 := stream.SpatialQ(geo.Rect{MinX: 0.5, MinY: 0, MaxX: 1, MaxY: 1}, ts)
	if got := h.Estimate(&q2); got != 0 {
		t.Errorf("right half = %v, want 0", got)
	}
}

func TestHistogramPartialCellInterpolation(t *testing.T) {
	h := NewHistogram(testParams())
	// Fill one cell (cell of (0.5,0.5)) with 100 points.
	ts := int64(0)
	for i := 0; i < 100; i++ {
		ts++
		o := stream.Object{Loc: geo.Pt(0.505, 0.505), Timestamp: ts}
		h.Insert(&o)
	}
	// A query covering exactly half that cell's area estimates ~50 under
	// the uniformity assumption.
	cellW := 1.0 / 64
	cellMinX := math.Floor(0.505/cellW) * cellW
	cellMinY := math.Floor(0.505/cellW) * cellW
	q := stream.SpatialQ(geo.Rect{MinX: cellMinX, MinY: cellMinY, MaxX: cellMinX + cellW/2, MaxY: cellMinY + cellW}, ts)
	if got := h.Estimate(&q); math.Abs(got-50) > 1e-6 {
		t.Errorf("half-cell estimate = %v, want 50", got)
	}
}

func TestHistogramIgnoresKeywords(t *testing.T) {
	h := NewHistogram(testParams())
	ts := int64(0)
	for i := 0; i < 200; i++ {
		ts++
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{"fire"}, Timestamp: ts}
		h.Insert(&o)
	}
	// Pure keyword query falls back to the full window count.
	kq := stream.KeywordQ([]string{"nonexistent"}, ts)
	if got := h.Estimate(&kq); got != 200 {
		t.Errorf("keyword fallback = %v, want 200 (total live)", got)
	}
	// Hybrid query ignores the keyword predicate.
	hq := stream.HybridQ(geo.UnitSquare, []string{"nonexistent"}, ts)
	if got := h.Estimate(&hq); math.Abs(got-200) > 1e-9 {
		t.Errorf("hybrid estimate = %v, want 200", got)
	}
}

func TestHistogramWindowExpiry(t *testing.T) {
	p := testParams() // span 10s, 16 slices of 625ms
	h := NewHistogram(p)
	o := stream.Object{Loc: geo.Pt(0.5, 0.5), Timestamp: 0}
	h.Insert(&o)
	q := stream.SpatialQ(geo.UnitSquare, 0)
	if got := h.Estimate(&q); got != 1 {
		t.Fatalf("fresh estimate = %v", got)
	}
	// Within the window the count survives.
	q.Timestamp = 9000
	if got := h.Estimate(&q); got != 1 {
		t.Errorf("estimate at 9s = %v, want 1", got)
	}
	// Past span + slice slack it must be gone.
	q.Timestamp = 12_000
	if got := h.Estimate(&q); got != 0 {
		t.Errorf("estimate at 12s = %v, want 0", got)
	}
}

func TestHistogramAccuracyUniform(t *testing.T) {
	h := NewHistogram(testParams())
	rng := rand.New(rand.NewSource(11))
	ts := int64(0)
	const n = 50000
	for i := 0; i < n; i++ {
		if i%5 == 0 {
			ts++
		}
		o := stream.Object{Loc: geo.Pt(rng.Float64(), rng.Float64()), Timestamp: ts}
		h.Insert(&o)
	}
	for _, frac := range []float64{0.25, 0.09, 0.01} {
		side := math.Sqrt(frac)
		q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.5, 0.5), side, side), ts)
		got := h.Estimate(&q)
		want := frac * n
		if rel := math.Abs(got-want) / want; rel > 0.1 {
			t.Errorf("frac %v: estimate %v, want ~%v (rel %.3f)", frac, got, want, rel)
		}
	}
}

func TestHistogramResetAndString(t *testing.T) {
	h := NewHistogram(testParams())
	o := stream.Object{Loc: geo.Pt(0.5, 0.5), Timestamp: 1}
	h.Insert(&o)
	h.Reset()
	q := stream.SpatialQ(geo.UnitSquare, 1)
	if got := h.Estimate(&q); got != 0 {
		t.Errorf("post-Reset estimate = %v", got)
	}
	if h.String() == "" || h.MemoryBytes() <= 0 {
		t.Error("String/MemoryBytes broken")
	}
}
