package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
)

func TestAASPDelegation(t *testing.T) {
	p := testParams()
	a := NewAASP(p)
	w := stream.NewWindow(geo.UnitSquare, p.Span, 1024)
	ts := feedBoth(t, a, w, 15000, 41)

	sq := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.2, 0.2), ts)
	actual := float64(w.Answer(&sq))
	if acc := metrics.Accuracy(a.Estimate(&sq), actual); acc < 0.6 {
		t.Errorf("spatial accuracy %.3f", acc)
	}
	kq := stream.KeywordQ([]string{"kw0"}, ts)
	kActual := float64(w.Answer(&kq))
	kEst := a.Estimate(&kq)
	// AASP keyword estimates are collision-inflated; require the right
	// order of magnitude rather than tight accuracy.
	if kEst < kActual*0.5 || kEst > kActual*4 {
		t.Errorf("keyword estimate %v vs actual %v", kEst, kActual)
	}
	if a.NodeCount() <= 1 {
		t.Error("tree did not adapt")
	}
}

func TestAASPWindowExpiry(t *testing.T) {
	p := testParams()
	a := NewAASP(p)
	for i := 0; i < 1000; i++ {
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{"x"}, Timestamp: int64(i)}
		a.Insert(&o)
	}
	q := stream.SpatialQ(geo.UnitSquare, 30_000)
	if got := a.Estimate(&q); got != 0 {
		t.Errorf("stale estimate = %v", got)
	}
}

func TestFFNUntrainedReturnsZero(t *testing.T) {
	f := NewFFN(testParams())
	q := stream.SpatialQ(geo.UnitSquare, 0)
	if got := f.Estimate(&q); got != 0 {
		t.Errorf("untrained estimate = %v", got)
	}
}

func TestFFNLearnsWorkload(t *testing.T) {
	// A stationary workload: selectivity is a deterministic function of the
	// range width. The FFN should learn it from feedback alone.
	p := testParams()
	f := NewFFN(p)
	rng := rand.New(rand.NewSource(17))
	trueSel := func(q *stream.Query) float64 {
		// Proportional to area over a 100k-object window.
		return q.Range.Area() * 100_000
	}
	makeQ := func() stream.Query {
		side := 0.1 + rng.Float64()*0.4
		c := geo.Pt(0.2+rng.Float64()*0.6, 0.2+rng.Float64()*0.6)
		return stream.SpatialQ(geo.CenteredRect(c, side, side), 0)
	}
	for i := 0; i < 4000; i++ {
		q := makeQ()
		f.Observe(&q, trueSel(&q))
	}
	// Evaluate on fresh queries.
	total := 0.0
	const evalN = 200
	for i := 0; i < evalN; i++ {
		q := makeQ()
		total += metrics.Accuracy(f.Estimate(&q), trueSel(&q))
	}
	if avg := total / evalN; avg < 0.6 {
		t.Errorf("FFN mean accuracy %.3f on stationary workload", avg)
	}
}

func TestFFNFailsToAdaptQuickly(t *testing.T) {
	// The paper's criticism: after a workload shift the FFN keeps answering
	// from stale weights. Train hard on one regime, shift, and check the
	// immediate post-shift error is large.
	p := testParams()
	f := NewFFN(p)
	qA := stream.KeywordQ([]string{"alpha"}, 0)
	qB := stream.KeywordQ([]string{"beta7"}, 0)
	for i := 0; i < 2000; i++ {
		f.Observe(&qA, 50_000)
	}
	// Immediately after the shift, the answer for the same feature-shaped
	// query must still reflect the old regime.
	got := f.Estimate(&qB)
	// beta7 hashes to a different keyword bucket with high probability, but
	// every other feature matches; an adaptive estimator would answer ~100.
	if math.Abs(got-100) < 1000 {
		t.Skip("hash buckets happened to separate the keywords fully; adaptation criticism not observable on this pair")
	}
	if got < 1000 {
		t.Errorf("expected stale high answer, got %v", got)
	}
}

func TestFFNReset(t *testing.T) {
	f := NewFFN(testParams())
	q := stream.KeywordQ([]string{"x"}, 0)
	f.Observe(&q, 1000)
	if f.Estimate(&q) == 0 {
		t.Fatal("trained FFN should answer nonzero")
	}
	f.Reset()
	if got := f.Estimate(&q); got != 0 {
		t.Errorf("post-Reset estimate = %v", got)
	}
}

func TestSPNEstimatorSpatial(t *testing.T) {
	p := testParams()
	s := NewSPN(p)
	w := stream.NewWindow(geo.UnitSquare, p.Span, 1024)
	ts := feedBoth(t, s, w, 20000, 61)
	q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.3, 0.3), ts)
	actual := float64(w.Answer(&q))
	est := s.Estimate(&q)
	if acc := metrics.Accuracy(est, actual); acc < 0.5 {
		t.Errorf("SPN spatial estimate %v vs %v (acc %.3f)", est, actual, acc)
	}
	if s.Retrains() == 0 {
		t.Error("SPN never retrained over 20k inserts")
	}
}

func TestSPNEstimatorKeyword(t *testing.T) {
	p := testParams()
	s := NewSPN(p)
	ts := int64(0)
	for i := 0; i < 10000; i++ {
		ts++
		kw := "rare"
		if i%5 != 0 {
			kw = "common"
		}
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{kw}, Timestamp: ts}
		s.Insert(&o)
	}
	q := stream.KeywordQ([]string{"rare"}, ts)
	got := s.Estimate(&q)
	want := 2000.0 // 20% of window
	if got < want*0.5 || got > want*2 {
		t.Errorf("keyword estimate %v, want ~%v", got, want)
	}
}

func TestSPNEstimatorUntrainedWithSamplesTrainsLazily(t *testing.T) {
	p := testParams()
	s := NewSPN(p)
	rng := rand.New(rand.NewSource(3))
	ts := int64(0)
	// Fewer inserts than the retrain interval: first Estimate triggers a
	// lazy train.
	for i := 0; i < 500; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		s.Insert(&o)
	}
	q := stream.SpatialQ(geo.UnitSquare, ts)
	got := s.Estimate(&q)
	if got < 250 || got > 1000 {
		t.Errorf("lazy-trained whole-world estimate = %v, want ~500", got)
	}
}

func TestSPNEstimatorReset(t *testing.T) {
	p := testParams()
	s := NewSPN(p)
	rng := rand.New(rand.NewSource(4))
	ts := int64(0)
	for i := 0; i < 6000; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		s.Insert(&o)
	}
	s.Reset()
	q := stream.SpatialQ(geo.UnitSquare, ts)
	if got := s.Estimate(&q); got != 0 {
		t.Errorf("post-Reset estimate = %v", got)
	}
}
