package estimator

import (
	"fmt"
	"math/rand"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// defaultReservoirCapacity is the sampling list size at Scale=1. The paper
// uses one million objects against a 75M-object stream; this default keeps
// the same ~2% sampling ratio against this repository's synthetic streams.
const defaultReservoirCapacity = 16384

// sample is a retained stream object. Keyword slices are shared with the
// inserted object, which the driver treats as immutable after insert.
type sample struct {
	loc geo.Point
	kws []string
	ts  int64
}

// ReservoirList is the RSL estimator: Vitter's Algorithm R over the sliding
// window (Figure 1(b)'s list without the grid). Each arrival replaces a
// random slot with probability capacity/|window arrivals|, which keeps the
// list approximately uniform over the live window; expired samples are
// purged lazily during the full scan every estimate performs. Estimates are
// the matching sample fraction scaled by the windowed arrival count.
type ReservoirList struct {
	capacity int
	src      *countedSource
	rng      *rand.Rand
	counter  *WindowCounter
	samples  []sample
	span     int64
}

// NewReservoirList builds the RSL estimator.
func NewReservoirList(p Params) *ReservoirList {
	src, rng := newCountedRand(p.Seed + 0x5271)
	return &ReservoirList{
		capacity: p.scaledInt(defaultReservoirCapacity, 64),
		src:      src,
		rng:      rng,
		counter:  NewWindowCounter(p.Span, defaultHistSlices),
		span:     p.Span,
	}
}

// Name implements Estimator.
func (r *ReservoirList) Name() string { return NameRSL }

// Capacity returns the sampling list size.
func (r *ReservoirList) Capacity() int { return r.capacity }

// Len returns the current number of retained samples (live or not yet
// purged).
func (r *ReservoirList) Len() int { return len(r.samples) }

// Insert implements Estimator.
func (r *ReservoirList) Insert(o *stream.Object) {
	r.counter.Add(o.Timestamp)
	s := sample{loc: o.Loc, kws: o.Keywords, ts: o.Timestamp}
	if len(r.samples) < r.capacity {
		r.samples = append(r.samples, s)
		return
	}
	n := int(r.counter.Live(o.Timestamp))
	if n < r.capacity {
		n = r.capacity
	}
	if j := r.rng.Intn(n); j < r.capacity {
		r.samples[j] = s
	}
}

// Estimate implements Estimator. The scan purges expired samples in place,
// so the sample set self-cleans at query time.
func (r *ReservoirList) Estimate(q *stream.Query) float64 {
	cutoff := q.Timestamp - r.span
	matches := 0
	for i := 0; i < len(r.samples); {
		s := &r.samples[i]
		if s.ts < cutoff {
			r.samples[i] = r.samples[len(r.samples)-1]
			r.samples = r.samples[:len(r.samples)-1]
			continue
		}
		if sampleMatches(s, q) {
			matches++
		}
		i++
	}
	live := len(r.samples)
	if live == 0 {
		return 0
	}
	w := r.counter.Live(q.Timestamp)
	return float64(matches) / float64(live) * w
}

// sampleMatches applies both RC-DVQ predicates to a retained sample.
func sampleMatches(s *sample, q *stream.Query) bool {
	if q.HasRange && !q.Range.Contains(s.loc) {
		return false
	}
	if len(q.Keywords) > 0 {
		found := false
	outer:
		for _, kw := range s.kws {
			for _, qk := range q.Keywords {
				if kw == qk {
					found = true
					break outer
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Observe implements Estimator; sampling estimators ignore feedback.
func (r *ReservoirList) Observe(q *stream.Query, actual float64) {}

// Reset implements Estimator.
func (r *ReservoirList) Reset() {
	r.samples = r.samples[:0]
	r.counter.Reset()
}

// MemoryBytes implements Estimator: ~48 bytes per retained sample plus the
// arrival counter.
func (r *ReservoirList) MemoryBytes() int {
	return 64 + 48*cap(r.samples) + r.counter.MemoryBytes()
}

// String summarizes state for diagnostics.
func (r *ReservoirList) String() string {
	return fmt.Sprintf("RSL{cap=%d len=%d}", r.capacity, len(r.samples))
}
