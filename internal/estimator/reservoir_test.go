package estimator

import (
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
)

func TestReservoirFillsThenSamples(t *testing.T) {
	p := testParams()
	r := NewReservoirList(p)
	rng := rand.New(rand.NewSource(1))
	// Below capacity: every object is retained.
	for i := 0; i < 100; i++ {
		o := genObject(rng, uint64(i), int64(i+1))
		r.Insert(&o)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	// Far beyond capacity the list stays at capacity.
	for i := 100; i < r.Capacity()*3; i++ {
		o := genObject(rng, uint64(i), int64(i+1))
		r.Insert(&o)
	}
	if r.Len() != r.Capacity() {
		t.Fatalf("Len = %d, want capacity %d", r.Len(), r.Capacity())
	}
}

func TestReservoirEstimateAccuracy(t *testing.T) {
	for _, build := range []struct {
		name string
		f    func(Params) Estimator
	}{
		{"RSL", func(p Params) Estimator { return NewReservoirList(p) }},
		{"RSH", func(p Params) Estimator { return NewReservoirHashmap(p) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			p := testParams()
			e := build.f(p)
			w := stream.NewWindow(geo.UnitSquare, p.Span, 1024)
			ts := feedBoth(t, e, w, 20000, 21)
			// Keyword and hybrid queries: reservoirs carry full objects and
			// should do well.
			qs := []stream.Query{
				stream.KeywordQ([]string{"kw0"}, ts),
				stream.KeywordQ([]string{"kw1", "kw4"}, ts),
				stream.HybridQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.25, 0.25), []string{"kw0"}, ts),
				stream.SpatialQ(geo.CenteredRect(geo.Pt(0.75, 0.65), 0.2, 0.2), ts),
			}
			for _, q := range qs {
				q := q
				est := e.Estimate(&q)
				actual := float64(w.Answer(&q))
				if acc := metrics.Accuracy(est, actual); acc < 0.7 {
					t.Errorf("%v: est %v vs actual %v (acc %.3f)", q, est, actual, acc)
				}
			}
		})
	}
}

func TestReservoirExpiry(t *testing.T) {
	p := testParams() // 10s window
	r := NewReservoirList(p)
	for i := 0; i < 500; i++ {
		o := stream.Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{"old"}, Timestamp: int64(i)}
		r.Insert(&o)
	}
	// 30 seconds later everything is stale: estimate 0 and purge happens.
	q := stream.KeywordQ([]string{"old"}, 30_000)
	if got := r.Estimate(&q); got != 0 {
		t.Errorf("stale estimate = %v, want 0", got)
	}
	if r.Len() != 0 {
		t.Errorf("purge left %d samples", r.Len())
	}
}

func TestRSHSlotMapInvariants(t *testing.T) {
	p := testParams()
	r := NewReservoirHashmap(p)
	rng := rand.New(rand.NewSource(5))
	checkInvariants := func(stage string) {
		t.Helper()
		seen := 0
		for cell, b := range r.buckets {
			for pos, j := range b {
				s := &r.samples[j]
				if int(s.cell) != cell || int(s.pos) != pos {
					t.Fatalf("%s: slot %d backlink broken: cell %d/%d pos %d/%d",
						stage, j, s.cell, cell, s.pos, pos)
				}
				seen++
			}
		}
		if seen != len(r.samples) {
			t.Fatalf("%s: buckets hold %d refs, samples %d", stage, seen, len(r.samples))
		}
	}
	// Fill phase.
	ts := int64(0)
	for i := 0; i < 200; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		r.Insert(&o)
	}
	checkInvariants("fill")
	// Churn phase (replacements).
	for i := 0; i < r.Capacity()*2; i++ {
		ts++
		o := genObject(rng, uint64(1000+i), ts)
		r.Insert(&o)
	}
	checkInvariants("churn")
	// Expiry churn: jump time so purges fire.
	for i := 0; i < 5000; i++ {
		ts += 5
		o := genObject(rng, uint64(90000+i), ts)
		r.Insert(&o)
	}
	checkInvariants("expiry")
	// Query-time purge path.
	q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.3, 0.3), ts+20_000)
	_ = r.Estimate(&q)
	checkInvariants("query purge")
	kq := stream.KeywordQ([]string{"kw0"}, ts+20_000)
	_ = r.Estimate(&kq)
	checkInvariants("keyword purge")
	if r.Len() != 0 {
		t.Errorf("all samples expired but Len = %d", r.Len())
	}
}

func TestRSHAgreesWithRSL(t *testing.T) {
	// Same stream, same seed conventions: both samplers should produce
	// estimates in the same ballpark (they share the estimation math).
	p := testParams()
	rsl := NewReservoirList(p)
	rsh := NewReservoirHashmap(p)
	w := stream.NewWindow(geo.UnitSquare, p.Span, 1024)
	rng := rand.New(rand.NewSource(31))
	ts := int64(0)
	for i := 0; i < 15000; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		w.Insert(o)
		rsl.Insert(&o)
		rsh.Insert(&o)
	}
	q := stream.HybridQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.3, 0.3), []string{"kw0", "kw2"}, ts)
	actual := float64(w.Answer(&q))
	a, b := rsl.Estimate(&q), rsh.Estimate(&q)
	if metrics.Accuracy(a, actual) < 0.7 || metrics.Accuracy(b, actual) < 0.7 {
		t.Errorf("RSL %v, RSH %v vs actual %v", a, b, actual)
	}
}

func TestRSHReset(t *testing.T) {
	p := testParams()
	r := NewReservoirHashmap(p)
	rng := rand.New(rand.NewSource(8))
	ts := int64(0)
	for i := 0; i < 1000; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		r.Insert(&o)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	for _, b := range r.buckets {
		if len(b) != 0 {
			t.Fatal("bucket not cleared by Reset")
		}
	}
	// Usable after reset.
	o := genObject(rng, 1, ts+1)
	r.Insert(&o)
	if r.Len() != 1 {
		t.Fatal("insert after Reset failed")
	}
}

func TestSampleMatches(t *testing.T) {
	s := sample{loc: geo.Pt(0.5, 0.5), kws: []string{"a", "b"}}
	r := geo.CenteredRect(geo.Pt(0.5, 0.5), 0.2, 0.2)
	far := geo.CenteredRect(geo.Pt(0.9, 0.9), 0.05, 0.05)
	cases := []struct {
		q    stream.Query
		want bool
	}{
		{stream.SpatialQ(r, 0), true},
		{stream.SpatialQ(far, 0), false},
		{stream.KeywordQ([]string{"a"}, 0), true},
		{stream.KeywordQ([]string{"z"}, 0), false},
		{stream.KeywordQ([]string{"z", "b"}, 0), true},
		{stream.HybridQ(r, []string{"a"}, 0), true},
		{stream.HybridQ(r, []string{"z"}, 0), false},
		{stream.HybridQ(far, []string{"a"}, 0), false},
	}
	for _, tc := range cases {
		q := tc.q
		if got := sampleMatches(&s, &q); got != tc.want {
			t.Errorf("sampleMatches(%v) = %v, want %v", q, got, tc.want)
		}
	}
}

func BenchmarkRSLEstimate(b *testing.B) {
	p := testParams()
	r := NewReservoirList(p)
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 40000; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		r.Insert(&o)
	}
	q := stream.HybridQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.3, 0.3), []string{"kw0"}, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Estimate(&q)
	}
}

func BenchmarkRSHEstimateSpatial(b *testing.B) {
	p := testParams()
	r := NewReservoirHashmap(p)
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 40000; i++ {
		ts++
		o := genObject(rng, uint64(i), ts)
		r.Insert(&o)
	}
	q := stream.HybridQ(geo.CenteredRect(geo.Pt(0.3, 0.3), 0.3, 0.3), []string{"kw0"}, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Estimate(&q)
	}
}
