package estimator

import "math/rand"

// countedSource wraps math/rand's generator with an advance counter so an
// estimator's RNG position serializes as (seed, n) and restores by
// replaying n draws. Go's rngSource advances exactly once per Int63 or
// Uint64 call (Int63 delegates to Uint64), so the counter fully determines
// the stream position; rand.Rand's extra buffered state only serves Read,
// which no estimator calls.
type countedSource struct {
	seed int64
	n    uint64
	src  rand.Source64
}

// newCountedRand builds a counted source and a rand.Rand drawing from it.
func newCountedRand(seed int64) (*countedSource, *rand.Rand) {
	cs := &countedSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
	return cs, rand.New(cs)
}

// Int63 implements rand.Source.
func (c *countedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *countedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed implements rand.Source.
func (c *countedSource) Seed(seed int64) {
	c.seed = seed
	c.n = 0
	c.src.Seed(seed)
}

// save appends the RNG position to an encoder-compatible pair.
func (c *countedSource) state() (seed int64, n uint64) { return c.seed, c.n }

// restore repositions the stream at (seed, n): reseed, then replay n draws.
func (c *countedSource) restore(seed int64, n uint64) {
	c.src.Seed(seed)
	c.seed = seed
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n = n
}
