package estimator

import (
	"fmt"
	"math/rand"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// defaultRSHGridCells matches the paper's RSH configuration: the reservoir
// is indexed by a 4096-cell grid.
const defaultRSHGridCells = 4096

// ReservoirHashmap is the RSH estimator (Figure 1(b)): the same windowed
// Algorithm R reservoir as RSL, but every retained sample is also threaded
// into a 2-D grid bucket. Spatial and hybrid queries then touch only the
// buckets overlapping the query range instead of scanning the whole list —
// the iteration-overhead reduction the paper credits hybrid structures with.
// Pure keyword queries still scan everything, so RSH's latency advantage
// appears exactly where the paper reports it: on spatially constrained
// workloads.
//
// The reservoir is a slot-map: samples live in a flat array; each bucket
// stores slot indices and each slot knows its position in its bucket, so
// replacement and purge are O(1) per sample.
type ReservoirHashmap struct {
	capacity int
	src      *countedSource
	rng      *rand.Rand
	counter  *WindowCounter
	grid     *geo.Grid
	span     int64

	samples []rshSample
	buckets [][]int32
}

type rshSample struct {
	sample
	cell int32
	pos  int32 // index of this slot within buckets[cell]
}

// NewReservoirHashmap builds the RSH estimator.
func NewReservoirHashmap(p Params) *ReservoirHashmap {
	cells := nearestSquare(p.scaledInt(defaultRSHGridCells, 16))
	g := geo.NewSquareGrid(p.World, cells)
	src, rng := newCountedRand(p.Seed + 0x5248)
	return &ReservoirHashmap{
		capacity: p.scaledInt(defaultReservoirCapacity, 64),
		src:      src,
		rng:      rng,
		counter:  NewWindowCounter(p.Span, defaultHistSlices),
		grid:     g,
		span:     p.Span,
		buckets:  make([][]int32, g.NumCells()),
	}
}

// Name implements Estimator.
func (r *ReservoirHashmap) Name() string { return NameRSH }

// Capacity returns the reservoir size.
func (r *ReservoirHashmap) Capacity() int { return r.capacity }

// Len returns the number of retained samples.
func (r *ReservoirHashmap) Len() int { return len(r.samples) }

// detach unlinks slot j from its bucket.
func (r *ReservoirHashmap) detach(j int32) {
	s := &r.samples[j]
	b := r.buckets[s.cell]
	last := int32(len(b) - 1)
	moved := b[last]
	b[s.pos] = moved
	r.samples[moved].pos = s.pos
	r.buckets[s.cell] = b[:last]
}

// attach links slot j (whose sample fields are already set) into its cell
// bucket.
func (r *ReservoirHashmap) attach(j int32) {
	s := &r.samples[j]
	s.cell = int32(r.grid.CellOf(s.loc))
	r.buckets[s.cell] = append(r.buckets[s.cell], j)
	s.pos = int32(len(r.buckets[s.cell]) - 1)
}

// removeSlot purges slot j entirely, swapping the last slot into its place.
func (r *ReservoirHashmap) removeSlot(j int32) {
	r.detach(j)
	last := int32(len(r.samples) - 1)
	if j != last {
		// Move the final slot into j and fix its bucket backlink.
		r.samples[j] = r.samples[last]
		r.buckets[r.samples[j].cell][r.samples[j].pos] = j
	}
	r.samples = r.samples[:last]
}

// Insert implements Estimator.
func (r *ReservoirHashmap) Insert(o *stream.Object) {
	r.counter.Add(o.Timestamp)
	// Lazy purge: retire a few stale slots per insert so expired samples
	// never accumulate past a small fraction of the reservoir.
	r.purgeSome(o.Timestamp-r.span, 4)
	if len(r.samples) < r.capacity {
		j := int32(len(r.samples))
		r.samples = append(r.samples, rshSample{sample: sample{loc: o.Loc, kws: o.Keywords, ts: o.Timestamp}})
		r.attach(j)
		return
	}
	n := int(r.counter.Live(o.Timestamp))
	if n < r.capacity {
		n = r.capacity
	}
	if j := r.rng.Intn(n); j < r.capacity {
		jj := int32(j)
		r.detach(jj)
		r.samples[jj].sample = sample{loc: o.Loc, kws: o.Keywords, ts: o.Timestamp}
		r.attach(jj)
	}
}

// purgeSome checks up to n random slots and removes expired ones, keeping
// the expired fraction of the reservoir small between query-time purges.
func (r *ReservoirHashmap) purgeSome(cutoff int64, n int) {
	for i := 0; i < n && len(r.samples) > 0; i++ {
		j := int32(r.rng.Intn(len(r.samples)))
		if r.samples[j].ts < cutoff {
			r.removeSlot(j)
		}
	}
}

// Estimate implements Estimator. Spatial and hybrid queries visit only the
// grid buckets overlapping the range; pure keyword queries scan all slots.
func (r *ReservoirHashmap) Estimate(q *stream.Query) float64 {
	cutoff := q.Timestamp - r.span
	matches := 0
	if q.HasRange {
		cr := r.grid.CellsOverlapping(q.Range)
		r.grid.ForEachCell(cr, func(idx int, cell geo.Rect) bool {
			b := r.buckets[idx]
			for bi := 0; bi < len(b); {
				j := b[bi]
				s := &r.samples[j]
				if s.ts < cutoff {
					r.removeSlot(j) // swaps within this bucket or shrinks it
					b = r.buckets[idx]
					continue
				}
				if sampleMatches(&s.sample, q) {
					matches++
				}
				bi++
			}
			return true
		})
	} else {
		for j := 0; j < len(r.samples); {
			s := &r.samples[j]
			if s.ts < cutoff {
				r.removeSlot(int32(j))
				continue
			}
			if sampleMatches(&s.sample, q) {
				matches++
			}
			j++
		}
	}
	live := len(r.samples)
	if live == 0 {
		return 0
	}
	w := r.counter.Live(q.Timestamp)
	return float64(matches) / float64(live) * w
}

// Observe implements Estimator; sampling estimators ignore feedback.
func (r *ReservoirHashmap) Observe(q *stream.Query, actual float64) {}

// Reset implements Estimator.
func (r *ReservoirHashmap) Reset() {
	r.samples = r.samples[:0]
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
	}
	r.counter.Reset()
}

// MemoryBytes implements Estimator.
func (r *ReservoirHashmap) MemoryBytes() int {
	b := 64 + 56*cap(r.samples) + r.counter.MemoryBytes()
	for i := range r.buckets {
		b += 4 * cap(r.buckets[i])
	}
	b += 24 * len(r.buckets)
	return b
}

// String summarizes state for diagnostics.
func (r *ReservoirHashmap) String() string {
	return fmt.Sprintf("RSH{cap=%d len=%d cells=%d}", r.capacity, len(r.samples), r.grid.NumCells())
}
