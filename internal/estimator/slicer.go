package estimator

import "fmt"

// Slicer converts a stream of non-decreasing timestamps into ring-rotation
// steps: the window span is divided into a fixed number of slices and every
// estimator ring (histogram counters, tree counters, arrival counters)
// rotates in lockstep when the virtual clock crosses a slice boundary.
// Expiry granularity is therefore span/slices — the paper's estimators make
// the same approximation implicitly by batching summary refreshes.
type Slicer struct {
	dur      int64
	slices   int
	started  bool
	boundary int64 // first timestamp belonging to the *next* slice
}

// NewSlicer divides span into the given number of slices. Both must be
// positive; the slice duration is floored at 1ms.
func NewSlicer(span int64, slices int) Slicer {
	if span <= 0 || slices <= 0 {
		panic(fmt.Sprintf("estimator: slicer needs positive span/slices, got %d/%d", span, slices))
	}
	dur := span / int64(slices)
	if dur < 1 {
		dur = 1
	}
	return Slicer{dur: dur, slices: slices}
}

// Slices returns the ring length.
func (s *Slicer) Slices() int { return s.slices }

// AdvanceTo moves the slicer to timestamp ts and returns how many ring
// rotations the caller must perform, capped at the ring length (rotating a
// ring its full length clears it; further rotations are pointless). The
// first timestamp anchors the slice grid.
func (s *Slicer) AdvanceTo(ts int64) int {
	if !s.started {
		s.started = true
		s.boundary = ts + s.dur
		return 0
	}
	if ts < s.boundary {
		return 0
	}
	steps := int((ts-s.boundary)/s.dur) + 1
	s.boundary += int64(steps) * s.dur
	if steps > s.slices {
		steps = s.slices
	}
	return steps
}

// Reset forgets the anchor so the next timestamp re-anchors the grid.
func (s *Slicer) Reset() { s.started = false }

// WindowCounter tracks (approximately) how many objects arrived in the
// current window: a ring of per-slice arrival counts. Sampling estimators
// use it to scale sample fractions up to window counts — the |S_T| term —
// without help from the exact store.
type WindowCounter struct {
	slicer Slicer
	counts []float64
	cur    int
	live   float64
}

// NewWindowCounter creates a counter with the given span and slice count.
func NewWindowCounter(span int64, slices int) *WindowCounter {
	return &WindowCounter{
		slicer: NewSlicer(span, slices),
		counts: make([]float64, slices),
	}
}

// rotate applies n ring rotations.
func (w *WindowCounter) rotate(n int) {
	for i := 0; i < n; i++ {
		w.cur = (w.cur + 1) % len(w.counts)
		w.live -= w.counts[w.cur]
		w.counts[w.cur] = 0
	}
}

// Add records an arrival at timestamp ts.
func (w *WindowCounter) Add(ts int64) {
	w.rotate(w.slicer.AdvanceTo(ts))
	w.counts[w.cur]++
	w.live++
}

// Live returns the window arrival count as of timestamp ts.
func (w *WindowCounter) Live(ts int64) float64 {
	w.rotate(w.slicer.AdvanceTo(ts))
	return w.live
}

// Reset clears all counts.
func (w *WindowCounter) Reset() {
	w.slicer.Reset()
	for i := range w.counts {
		w.counts[i] = 0
	}
	w.cur, w.live = 0, 0
}

// MemoryBytes approximates the counter footprint.
func (w *WindowCounter) MemoryBytes() int { return 64 + 8*len(w.counts) }
