package estimator

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: however the clock advances, the total rotations the slicer
// requests never exceed elapsed/sliceDur + 1, never go negative, and the
// internal boundary always ends up ahead of the last timestamp.
func TestSlicerProperties(t *testing.T) {
	f := func(seed int64, nSteps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		span := int64(rng.Intn(10_000) + 10)
		slices := rng.Intn(30) + 1
		s := NewSlicer(span, slices)
		dur := span / int64(slices)
		if dur < 1 {
			dur = 1
		}
		ts := int64(rng.Intn(1000))
		first := ts
		totalSteps := 0
		for i := 0; i < int(nSteps)+1; i++ {
			steps := s.AdvanceTo(ts)
			if steps < 0 || steps > slices {
				return false
			}
			totalSteps += steps
			// Immediately re-advancing to the same time must be free.
			if s.AdvanceTo(ts) != 0 {
				return false
			}
			ts += int64(rng.Intn(int(3*dur) + 1))
		}
		// Rotations are capped by the ring and bounded by elapsed time.
		elapsed := ts - first
		return int64(totalSteps) <= elapsed/dur+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a WindowCounter's live count equals the number of Adds whose
// timestamps fall within one slice-granularity window of the probe time.
func TestWindowCounterNeverNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		span := int64(rng.Intn(5000) + 100)
		w := NewWindowCounter(span, rng.Intn(20)+2)
		ts := int64(0)
		total := 0
		for i := 0; i < 500; i++ {
			ts += int64(rng.Intn(50))
			w.Add(ts)
			total++
			if live := w.Live(ts); live < 0 || live > float64(total) {
				return false
			}
		}
		// After more than a full span of silence, everything expires.
		return w.Live(ts+2*span) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
