package estimator

import (
	"fmt"
	"math/rand"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/kmv"
	"github.com/spatiotext/latest/internal/spn"
	"github.com/spatiotext/latest/internal/stream"
)

// SPN estimator defaults.
const (
	defaultSPNComponents = 8
	defaultSPNBins       = 32
	defaultSPNKwBuckets  = 64
	defaultSPNSampleCap  = 4096
	defaultSPNRetrain    = 4096 // inserts between full retrains
)

// SPNEstimator is the data-driven sum-product network baseline: it keeps a
// windowed reservoir of raw objects and periodically retrains an SPN over
// it, answering queries as model probability × windowed arrival count. The
// periodic full retrain is the paper's core criticism of data-driven models
// on streams ("very high computational intensity to update the model with
// high-velocity data") and dominates this estimator's maintenance cost.
type SPNEstimator struct {
	world   geo.Rect
	span    int64
	net     *spn.Network
	counter *WindowCounter
	src     *countedSource
	rng     *rand.Rand

	capacity     int
	samples      []sample
	sinceRetrain int
	retrainEvery int
	retrains     int
}

// NewSPN builds the estimator; p.Scale multiplies the component count and
// sample capacity.
func NewSPN(p Params) *SPNEstimator {
	src, rng := newCountedRand(p.Seed + 0x53504E)
	return &SPNEstimator{
		world: p.World,
		span:  p.Span,
		net: spn.New(spn.Config{
			Components: p.scaledInt(defaultSPNComponents, 2),
			XBins:      p.scaledInt(defaultSPNBins, 8),
			YBins:      p.scaledInt(defaultSPNBins, 8),
			KwBuckets:  defaultSPNKwBuckets,
			Seed:       p.Seed + 0x53504E,
		}),
		counter:      NewWindowCounter(p.Span, defaultHistSlices),
		src:          src,
		rng:          rng,
		capacity:     p.scaledInt(defaultSPNSampleCap, 64),
		retrainEvery: defaultSPNRetrain,
	}
}

// Name implements Estimator.
func (s *SPNEstimator) Name() string { return NameSPN }

// Retrains returns how many full model rebuilds have run, a cost the
// ablation benchmarks report.
func (s *SPNEstimator) Retrains() int { return s.retrains }

// Insert implements Estimator: windowed reservoir sampling plus periodic
// retraining.
func (s *SPNEstimator) Insert(o *stream.Object) {
	s.counter.Add(o.Timestamp)
	sm := sample{loc: o.Loc, kws: o.Keywords, ts: o.Timestamp}
	if len(s.samples) < s.capacity {
		s.samples = append(s.samples, sm)
	} else {
		n := int(s.counter.Live(o.Timestamp))
		if n < s.capacity {
			n = s.capacity
		}
		if j := s.rng.Intn(n); j < s.capacity {
			s.samples[j] = sm
		}
	}
	s.sinceRetrain++
	if s.sinceRetrain >= s.retrainEvery {
		s.retrain(o.Timestamp)
	}
}

// retrain purges expired samples and rebuilds the SPN from the survivors.
func (s *SPNEstimator) retrain(now int64) {
	cutoff := now - s.span
	for i := 0; i < len(s.samples); {
		if s.samples[i].ts < cutoff {
			s.samples[i] = s.samples[len(s.samples)-1]
			s.samples = s.samples[:len(s.samples)-1]
			continue
		}
		i++
	}
	train := make([]spn.Sample, len(s.samples))
	for i := range s.samples {
		train[i] = spn.Sample{
			X:   (s.samples[i].loc.X - s.world.MinX) / s.world.Width(),
			Y:   (s.samples[i].loc.Y - s.world.MinY) / s.world.Height(),
			KwB: s.kwBuckets(s.samples[i].kws),
		}
	}
	s.net.Train(train)
	s.sinceRetrain = 0
	s.retrains++
}

func (s *SPNEstimator) kwBuckets(kws []string) []int {
	if len(kws) == 0 {
		return nil
	}
	out := make([]int, len(kws))
	for i, kw := range kws {
		out[i] = int(kmv.Hash64(kw) % defaultSPNKwBuckets)
	}
	return out
}

// Estimate implements Estimator.
func (s *SPNEstimator) Estimate(q *stream.Query) float64 {
	if !s.net.Trained() {
		// Before the first retrain the model is a uniform prior; force an
		// early train if we already have samples so pre-training queries
		// get real answers.
		if len(s.samples) > 0 {
			s.retrain(q.Timestamp)
		} else {
			return 0
		}
	}
	rq := spn.RangeQuery{KwB: s.kwBuckets(q.Keywords)}
	if q.HasRange {
		rq.HasRange = true
		rq.XLo = (q.Range.MinX - s.world.MinX) / s.world.Width()
		rq.XHi = (q.Range.MaxX - s.world.MinX) / s.world.Width()
		rq.YLo = (q.Range.MinY - s.world.MinY) / s.world.Height()
		rq.YHi = (q.Range.MaxY - s.world.MinY) / s.world.Height()
	}
	return s.net.Prob(rq) * s.counter.Live(q.Timestamp)
}

// Observe implements Estimator; the SPN is data-driven and ignores query
// feedback.
func (s *SPNEstimator) Observe(q *stream.Query, actual float64) {}

// Reset implements Estimator.
func (s *SPNEstimator) Reset() {
	s.samples = s.samples[:0]
	s.counter.Reset()
	s.net.Train(nil)
	s.sinceRetrain = 0
}

// MemoryBytes implements Estimator.
func (s *SPNEstimator) MemoryBytes() int {
	return s.net.MemoryBytes() + 48*cap(s.samples) + s.counter.MemoryBytes()
}

// String summarizes state for diagnostics.
func (s *SPNEstimator) String() string {
	return fmt.Sprintf("SPN{samples=%d retrains=%d %v}", len(s.samples), s.retrains, s.net)
}
