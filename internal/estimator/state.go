package estimator

import (
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/persist"
)

// Stateful is implemented by estimators whose internal state serializes
// bit-exactly: a restored estimator answers every future query and absorbs
// every future insert exactly as the original would have. Estimators built
// by this package all implement it; third-party registry entries that do
// not are restored by replaying the restored window through the usual
// refill path instead.
//
// LoadState must be called on a freshly constructed estimator with the
// same Params; on error the estimator must be discarded.
type Stateful interface {
	SaveState(e *persist.Enc)
	LoadState(d *persist.Dec) error
}

// --- shared component codecs ---

func saveSlicer(e *persist.Enc, s *Slicer) {
	e.Bool(s.started)
	e.I64(s.boundary)
}

func loadSlicer(d *persist.Dec, s *Slicer) error {
	started := d.Bool()
	boundary := d.I64()
	if d.Err() != nil {
		return d.Err()
	}
	s.started, s.boundary = started, boundary
	return nil
}

// SaveState serializes the arrival counter.
func (w *WindowCounter) SaveState(e *persist.Enc) {
	saveSlicer(e, &w.slicer)
	e.F64s(w.counts)
	e.Int(w.cur)
	e.F64(w.live)
}

// LoadState restores a counter saved with the same span and slice count.
func (w *WindowCounter) LoadState(d *persist.Dec) error {
	const op = "window counter"
	sl := w.slicer
	if err := loadSlicer(d, &sl); err != nil {
		return err
	}
	counts := d.F64s()
	cur := d.Int()
	live := d.F64()
	if d.Err() != nil {
		return d.Err()
	}
	if len(counts) != len(w.counts) {
		return persist.Errf(persist.CodeMismatch, op, "%d slices, receiver has %d", len(counts), len(w.counts))
	}
	if cur < 0 || cur >= len(w.counts) {
		return persist.Errf(persist.CodeMalformed, op, "current slice %d of %d", cur, len(w.counts))
	}
	w.slicer = sl
	copy(w.counts, counts)
	w.cur, w.live = cur, live
	return nil
}

func saveSample(e *persist.Enc, s *sample) {
	e.F64(s.loc.X)
	e.F64(s.loc.Y)
	e.I64(s.ts)
	e.Strs(s.kws)
}

func loadSample(d *persist.Dec) sample {
	x := d.F64()
	y := d.F64()
	ts := d.I64()
	kws := d.Strs()
	return sample{loc: geo.Point{X: x, Y: y}, ts: ts, kws: kws}
}

// sampleCount reads a sample-array length prefix, bounding it by the
// reservoir capacity (same Params ⇒ same capacity, so more is malformed).
func sampleCount(d *persist.Dec, capacity int, op string) (int, error) {
	n := int(d.U32())
	if d.Err() != nil {
		return 0, d.Err()
	}
	if n < 0 || n > capacity {
		return 0, persist.Errf(persist.CodeMalformed, op, "%d samples exceeds capacity %d", n, capacity)
	}
	return n, nil
}

// --- H4096 ---

// SaveState implements Stateful.
func (h *Histogram) SaveState(e *persist.Enc) {
	saveSlicer(e, &h.slicer)
	e.F64s(h.ring)
	e.F64s(h.live)
	e.Int(h.cur)
	e.F64(h.totalLive)
}

// LoadState implements Stateful.
func (h *Histogram) LoadState(d *persist.Dec) error {
	const op = "histogram"
	sl := h.slicer
	if err := loadSlicer(d, &sl); err != nil {
		return err
	}
	ring := d.F64s()
	live := d.F64s()
	cur := d.Int()
	totalLive := d.F64()
	if d.Err() != nil {
		return d.Err()
	}
	if len(ring) != len(h.ring) || len(live) != len(h.live) {
		return persist.Errf(persist.CodeMismatch, op,
			"ring %d / live %d, receiver %d / %d", len(ring), len(live), len(h.ring), len(h.live))
	}
	if cur < 0 || cur >= h.slicer.Slices() {
		return persist.Errf(persist.CodeMalformed, op, "current slice %d of %d", cur, h.slicer.Slices())
	}
	h.slicer = sl
	copy(h.ring, ring)
	copy(h.live, live)
	h.cur, h.totalLive = cur, totalLive
	return nil
}

// --- RSL ---

// SaveState implements Stateful.
func (r *ReservoirList) SaveState(e *persist.Enc) {
	seed, n := r.src.state()
	e.I64(seed)
	e.U64(n)
	r.counter.SaveState(e)
	e.U32(uint32(len(r.samples)))
	for i := range r.samples {
		saveSample(e, &r.samples[i])
	}
}

// LoadState implements Stateful.
func (r *ReservoirList) LoadState(d *persist.Dec) error {
	seed := d.I64()
	rngN := d.U64()
	if err := r.counter.LoadState(d); err != nil {
		return err
	}
	count, err := sampleCount(d, r.capacity, "rsl")
	if err != nil {
		return err
	}
	samples := make([]sample, 0, count)
	for i := 0; i < count; i++ {
		samples = append(samples, loadSample(d))
	}
	if d.Err() != nil {
		return d.Err()
	}
	r.src.restore(seed, rngN)
	r.samples = samples
	return nil
}

// --- RSH ---

// SaveState implements Stateful. Slots are written in array order with
// their position inside their grid bucket: the slot array's layout governs
// future reservoir replacement and the bucket order governs purge order,
// so both must survive exactly. Cells re-derive from the sample location.
func (r *ReservoirHashmap) SaveState(e *persist.Enc) {
	seed, n := r.src.state()
	e.I64(seed)
	e.U64(n)
	r.counter.SaveState(e)
	e.U32(uint32(len(r.samples)))
	for i := range r.samples {
		saveSample(e, &r.samples[i].sample)
		e.U32(uint32(r.samples[i].pos))
	}
}

// LoadState implements Stateful.
func (r *ReservoirHashmap) LoadState(d *persist.Dec) error {
	const op = "rsh"
	seed := d.I64()
	rngN := d.U64()
	if err := r.counter.LoadState(d); err != nil {
		return err
	}
	count, err := sampleCount(d, r.capacity, op)
	if err != nil {
		return err
	}
	samples := make([]rshSample, 0, count)
	perCell := make(map[int32]int32, count)
	for i := 0; i < count; i++ {
		s := loadSample(d)
		pos := int32(d.U32())
		cell := int32(r.grid.CellOf(s.loc))
		samples = append(samples, rshSample{sample: s, cell: cell, pos: pos})
		perCell[cell]++
	}
	if d.Err() != nil {
		return d.Err()
	}
	// Rebuild buckets by placing each slot at its recorded position; any
	// duplicate or out-of-range position means the image is inconsistent.
	buckets := make([][]int32, len(r.buckets))
	for cell, n := range perCell {
		b := make([]int32, n)
		for i := range b {
			b[i] = -1
		}
		buckets[cell] = b
	}
	for j := range samples {
		s := &samples[j]
		b := buckets[s.cell]
		if s.pos < 0 || int(s.pos) >= len(b) || b[s.pos] != -1 {
			return persist.Errf(persist.CodeMalformed, op, "slot %d bucket position %d invalid", j, s.pos)
		}
		b[s.pos] = int32(j)
	}
	r.src.restore(seed, rngN)
	r.samples = samples
	for i := range r.buckets {
		if buckets[i] != nil {
			r.buckets[i] = buckets[i]
		} else {
			r.buckets[i] = r.buckets[i][:0]
		}
	}
	return nil
}

// --- AASP ---

// SaveState implements Stateful.
func (a *AASP) SaveState(e *persist.Enc) {
	saveSlicer(e, &a.slicer)
	a.tree.SaveState(e)
}

// LoadState implements Stateful.
func (a *AASP) LoadState(d *persist.Dec) error {
	sl := a.slicer
	if err := loadSlicer(d, &sl); err != nil {
		return err
	}
	if err := a.tree.LoadState(d); err != nil {
		return err
	}
	a.slicer = sl
	return nil
}

// --- FFN ---

// SaveState implements Stateful.
func (f *FFN) SaveState(e *persist.Enc) {
	f.net.SaveState(e)
	e.Int(len(f.xs))
	for i := range f.xs {
		e.F64s(f.xs[i])
		e.F64s(f.ys[i])
	}
	e.Int(f.n)
	e.Bool(f.trained)
}

// LoadState implements Stateful.
func (f *FFN) LoadState(d *persist.Dec) error {
	const op = "ffn"
	if err := f.net.LoadState(d); err != nil {
		return err
	}
	count := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if count < 0 || count > ffnReplayBuffer {
		return persist.Errf(persist.CodeMalformed, op, "replay buffer length %d (cap %d)", count, ffnReplayBuffer)
	}
	xs := make([][]float64, 0, count)
	ys := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		x := d.F64s()
		y := d.F64s()
		if d.Err() != nil {
			return d.Err()
		}
		if len(x) != ffnInputDim || len(y) != 1 {
			return persist.Errf(persist.CodeMalformed, op, "replay sample dims %d/%d, want %d/1", len(x), len(y), ffnInputDim)
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	n := d.Int()
	trained := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	f.xs, f.ys, f.n, f.trained = xs, ys, n, trained
	return nil
}

// --- SPN ---

// SaveState implements Stateful.
func (s *SPNEstimator) SaveState(e *persist.Enc) {
	seed, n := s.src.state()
	e.I64(seed)
	e.U64(n)
	s.counter.SaveState(e)
	e.U32(uint32(len(s.samples)))
	for i := range s.samples {
		saveSample(e, &s.samples[i])
	}
	e.Int(s.sinceRetrain)
	e.Int(s.retrains)
	s.net.SaveState(e)
}

// LoadState implements Stateful.
func (s *SPNEstimator) LoadState(d *persist.Dec) error {
	seed := d.I64()
	rngN := d.U64()
	if err := s.counter.LoadState(d); err != nil {
		return err
	}
	count, err := sampleCount(d, s.capacity, "spn")
	if err != nil {
		return err
	}
	samples := make([]sample, 0, count)
	for i := 0; i < count; i++ {
		samples = append(samples, loadSample(d))
	}
	sinceRetrain := d.Int()
	retrains := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if err := s.net.LoadState(d); err != nil {
		return err
	}
	s.src.restore(seed, rngN)
	s.samples = samples
	s.sinceRetrain, s.retrains = sinceRetrain, retrains
	return nil
}

// --- ED ---

// SaveState implements Stateful.
func (e *EquiDepth) SaveState(enc *persist.Enc) {
	seed, n := e.src.state()
	enc.I64(seed)
	enc.U64(n)
	e.counter.SaveState(enc)
	enc.U32(uint32(len(e.samples)))
	for i := range e.samples {
		saveSample(enc, &e.samples[i])
	}
	enc.Int(e.sinceRebuild)
	enc.Int(e.rebuilds)
	enc.F64s(e.xCuts)
	enc.Int(len(e.yCuts))
	for _, row := range e.yCuts {
		enc.F64s(row)
	}
	enc.Bool(e.built)
}

// LoadState implements Stateful.
func (e *EquiDepth) LoadState(d *persist.Dec) error {
	const op = "equidepth"
	seed := d.I64()
	rngN := d.U64()
	if err := e.counter.LoadState(d); err != nil {
		return err
	}
	count, err := sampleCount(d, e.capacity, op)
	if err != nil {
		return err
	}
	samples := make([]sample, 0, count)
	for i := 0; i < count; i++ {
		samples = append(samples, loadSample(d))
	}
	sinceRebuild := d.Int()
	rebuilds := d.Int()
	xCuts := d.F64s()
	yRows := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if len(xCuts) != 0 && len(xCuts) != e.k {
		return persist.Errf(persist.CodeMismatch, op, "%d column cuts, receiver k=%d", len(xCuts), e.k)
	}
	if yRows != 0 && yRows != e.k {
		return persist.Errf(persist.CodeMismatch, op, "%d cut rows, receiver k=%d", yRows, e.k)
	}
	var yCuts [][]float64
	for i := 0; i < yRows; i++ {
		row := d.F64s()
		if d.Err() != nil {
			return d.Err()
		}
		if len(row) != e.k {
			return persist.Errf(persist.CodeMismatch, op, "cut row %d has %d cuts, receiver k=%d", i, len(row), e.k)
		}
		yCuts = append(yCuts, row)
	}
	built := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if built && (len(xCuts) != e.k || yRows != e.k) {
		return persist.Errf(persist.CodeMalformed, op, "built histogram without complete cuts")
	}
	e.src.restore(seed, rngN)
	e.samples = samples
	e.sinceRebuild, e.rebuilds = sinceRebuild, rebuilds
	e.xCuts, e.yCuts, e.built = xCuts, yCuts, built
	return nil
}
