package experiments

import (
	"fmt"
	"io"
	"strings"
)

// AlphaChoiceRow is one Table II row: LATEST's choice at three time points
// for one α value.
type AlphaChoiceRow struct {
	Alpha   float64   `json:"alpha"`
	ChoiceT [3]string `json:"choices"` // at t=20, t=60, t=100
}

// AlphaResult reproduces Table II: the impact of α on LATEST's choice over
// query workload TwQW3.
type AlphaResult struct {
	Dataset  string           `json:"dataset"`
	Workload string           `json:"workload"`
	Rows     []AlphaChoiceRow `json:"rows"`
}

// alphaTablePoints are the paper's read-out times.
var alphaTablePoints = [3]int{20, 60, 100}

// alphaTableValues are the paper's α column values.
var alphaTableValues = []float64{0, 0.3, 0.5, 0.7, 1}

// RunAlphaChoices regenerates Table II: for each α it runs TwQW3 and reads
// the model's recommendation at t = 20, 60, 100 of the incremental
// timeline. Recommendations, not just the active estimator, are recorded —
// the paper notes the choice reflects the model's preference even when no
// switch was warranted.
func RunAlphaChoices(cfg RunConfig) *AlphaResult {
	cfg = cfg.withDefaults()
	if cfg.Workload == "" {
		cfg.Workload = "TwQW3"
	}
	if cfg.Dataset == "" {
		cfg.Dataset = "Twitter"
	}
	res := &AlphaResult{Dataset: cfg.Dataset, Workload: cfg.Workload}
	for _, alpha := range alphaTableValues {
		run := cfg
		run.Alpha = alpha
		run.AlphaSet = true
		row := AlphaChoiceRow{Alpha: alpha}
		e := newEnv(run)
		e.warmup()
		e.pretrain()
		perBucket := run.Queries / 100
		if perBucket < 1 {
			perBucket = 1
		}
		point := 0
		active := map[string]int{}
		for b := 1; b <= 100 && e.wl.Remaining() > 0; b++ {
			clearCounts(active)
			for i := 0; i < perBucket && e.wl.Remaining() > 0; i++ {
				active[e.step(e.wl).active]++
			}
			if point < len(alphaTablePoints) && b >= alphaTablePoints[point] {
				// LATEST's choice at this time point is the estimator it
				// actually employed for the bucket's queries.
				row.ChoiceT[point] = dominant(active)
				point++
			}
		}
		for point < len(alphaTablePoints) {
			row.ChoiceT[point] = e.module.ActiveName()
			point++
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteTo renders Table II.
func (r *AlphaResult) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# Table II — impact of α on %s (%s)\n", r.Workload, r.Dataset)
	fmt.Fprintf(&b, "%-6s %-8s %-8s %-8s\n", "alpha", "t=20", "t=60", "t=100")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6.1f %-8s %-8s %-8s\n", row.Alpha, row.ChoiceT[0], row.ChoiceT[1], row.ChoiceT[2])
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ChoiceFor returns the row for the given α, used by tests.
func (r *AlphaResult) ChoiceFor(alpha float64) ([3]string, bool) {
	for _, row := range r.Rows {
		if row.Alpha == alpha {
			return row.ChoiceT, true
		}
	}
	return [3]string{}, false
}
