// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI). Each experiment id (fig3, table1, …) maps to a
// runner that replays (dataset, workload, parameters) through LATEST and a
// shadow fleet of estimators and emits the same rows/series the paper
// reports. DESIGN.md §2 is the index; EXPERIMENTS.md records paper-vs-
// measured for every artifact.
//
// The figures plot latency and accuracy for *every* estimator over the
// stream lifetime, not only the active one ("the values of accuracy and
// latency … are provided by the estimator based only on the incoming data
// and queries, regardless of whether a certain estimator is selected",
// §VI-C). The harness therefore maintains a shadow fleet — all six
// estimators fed with the full stream and measured on every query —
// alongside the LATEST module that makes the actual switching decisions.
package experiments

import (
	"time"

	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/hoeffding"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/workload"
)

// RunConfig scales an experiment run. Zero values take defaults sized so
// the full suite completes in minutes on a laptop while preserving the
// paper's sampling ratios (reservoirs hold ~25% of the window, as 1M
// samples did against the paper's windows).
type RunConfig struct {
	// Dataset is "Twitter", "eBird" or "CheckIn".
	Dataset string
	// Workload is a preset name (TwQW1, EbRQW1, …).
	Workload string
	// Queries is the incremental-phase query count — the t0..t100 span.
	// Default 3000.
	Queries int
	// PretrainQueries is the pre-training phase length. Default 600.
	PretrainQueries int
	// WindowMS is the time window T. Default 30000.
	WindowMS int64
	// Rate is stream objects per virtual ms. Default 2.
	Rate float64
	// ObjectsPerQuery interleaves this many arrivals before each query.
	// Default 40.
	ObjectsPerQuery int
	// Alpha (with AlphaSet) is the accuracy/latency weight. Default 0.5.
	Alpha    float64
	AlphaSet bool
	// Tau and Beta are the switching thresholds. Defaults 0.75 / 0.8.
	Tau, Beta float64
	// Grace overrides the Hoeffding tree's grace period (0 = WEKA default).
	Grace int
	// Scale is the estimator memory multiplier. Default 1.
	Scale float64
	// Seed drives all randomness. Default 1.
	Seed int64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Queries == 0 {
		c.Queries = 3000
	}
	if c.PretrainQueries == 0 {
		c.PretrainQueries = 600
	}
	if c.WindowMS == 0 {
		c.WindowMS = 30_000
	}
	if c.Rate == 0 {
		c.Rate = 2
	}
	if c.ObjectsPerQuery == 0 {
		c.ObjectsPerQuery = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// env is one wired-up experiment environment.
type env struct {
	cfg    RunConfig
	data   *datagen.Generator
	pre    *workload.Generator
	wl     *workload.Generator
	oracle *stream.Window
	module *core.Module
	shadow []estimator.Estimator
	names  []string
}

// newEnv wires dataset, workload, oracle, module and shadow fleet.
func newEnv(cfg RunConfig) *env {
	return newEnvSpec(cfg, workload.ByName(cfg.withDefaults().Workload))
}

// newEnvSpec is newEnv with an explicit (possibly modified) workload spec,
// which the parameter sweeps use.
func newEnvSpec(cfg RunConfig, spec workload.Spec) *env {
	cfg = cfg.withDefaults()
	data := datagen.ByName(cfg.Dataset, cfg.Seed, cfg.Rate)
	// The phase schedule spans the *incremental* timeline (that is what the
	// figures plot as t0..t100). Pre-training draws from a flattened
	// single-phase copy carrying the workload's overall mix, so the model
	// sees every regime before the timeline starts.
	pre := workload.NewGenerator(flatten(spec), data, cfg.PretrainQueries)
	wl := workload.NewGenerator(spec, data, cfg.Queries)
	oracle := stream.NewWindow(data.World(), cfg.WindowMS, 4096)
	reg := estimator.DefaultRegistry()
	params := estimator.Params{World: data.World(), Span: cfg.WindowMS, Scale: cfg.Scale, Seed: cfg.Seed}
	// Adaptation reaction time scales with the run length so figure
	// positions are comparable across scales: the monitored window is 5%
	// of the timeline.
	accWindow := cfg.Queries / 20
	if accWindow < 60 {
		accWindow = 60
	}
	module, err := core.New(core.Config{
		World:           data.World(),
		Span:            cfg.WindowMS,
		Registry:        reg,
		Alpha:           cfg.Alpha,
		AlphaSet:        cfg.AlphaSet,
		Tau:             cfg.Tau,
		Beta:            cfg.Beta,
		AccWindow:       accWindow,
		PretrainQueries: cfg.PretrainQueries,
		Hoeffding:       hoeffding.Config{GracePeriod: cfg.Grace},
		Scale:           cfg.Scale,
		Seed:            cfg.Seed,
		Refill: func(e estimator.Estimator) {
			oracle.Each(func(o *stream.Object) bool {
				e.Insert(o)
				return true
			})
		},
	})
	if err != nil {
		panic(err) // RunConfig is code-authored; this is a harness bug
	}
	return &env{
		cfg:    cfg,
		data:   data,
		pre:    pre,
		wl:     wl,
		oracle: oracle,
		module: module,
		shadow: reg.BuildAll(params),
		names:  reg.Names(),
	}
}

// feed streams n objects into the oracle, the module and the shadow fleet.
func (e *env) feed(n int) {
	for i := 0; i < n; i++ {
		o := e.data.Next()
		e.oracle.Insert(o)
		e.module.Insert(&o)
		for _, s := range e.shadow {
			s.Insert(&o)
		}
	}
}

// warmup fills one full window of data before any query is issued.
func (e *env) warmup() {
	e.feed(int(float64(e.cfg.WindowMS) * e.cfg.Rate))
}

// measurement is one query's outcome across the shadow fleet.
type measurement struct {
	q        stream.Query
	actual   float64
	accuracy []float64       // per shadow estimator
	latency  []time.Duration // per shadow estimator
	active   string          // module's active estimator at query time
	modEst   float64         // module's answer
}

// step interleaves arrivals, issues the next query from gen, measures the
// shadow fleet, runs the module's Estimate/Observe cycle, and returns the
// measurement.
func (e *env) step(gen *workload.Generator) measurement {
	e.feed(e.cfg.ObjectsPerQuery)
	q := gen.Next(e.data.Now())
	m := measurement{
		q:        q,
		accuracy: make([]float64, len(e.shadow)),
		latency:  make([]time.Duration, len(e.shadow)),
		active:   e.module.ActiveName(),
	}
	m.modEst = e.module.Estimate(&q)
	actual := float64(e.oracle.Answer(&q))
	m.actual = actual
	for i, s := range e.shadow {
		start := time.Now()
		est := s.Estimate(&q)
		m.latency[i] = time.Since(start)
		m.accuracy[i] = metrics.Accuracy(est, actual)
		s.Observe(&q, actual)
	}
	e.module.Observe(actual)
	return m
}

// pretrain drives the module through its pre-training phase.
func (e *env) pretrain() {
	for e.pre.Remaining() > 0 {
		e.step(e.pre)
	}
	if e.module.Phase() != core.PhaseIncremental {
		panic("experiments: module did not reach incremental phase")
	}
}

// flatten collapses a phase schedule into one phase carrying the
// duration-weighted overall mix.
func flatten(s workload.Spec) workload.Spec {
	var mix workload.Mix
	prev := 0.0
	for _, p := range s.Phases {
		w := p.Until - prev
		mix.Spatial += w * p.Mix.Spatial
		mix.Keyword += w * p.Mix.Keyword
		mix.Hybrid += w * p.Mix.Hybrid
		prev = p.Until
	}
	// Renormalize away float drift so spec validation's sum check passes.
	total := mix.Spatial + mix.Keyword + mix.Hybrid
	mix.Spatial /= total
	mix.Keyword /= total
	mix.Hybrid /= total
	s.Phases = []workload.Phase{{Until: 1, Mix: mix}}
	return s
}
