package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/spatiotext/latest/internal/workload"
)

// small returns a RunConfig sized for tests: big enough for phases and
// switches to materialize, small enough to keep the suite fast.
func small() RunConfig {
	return RunConfig{Queries: 1200, PretrainQueries: 300}
}

func TestFlatten(t *testing.T) {
	spec := workload.ByName("TwQW1")
	flat := flatten(spec)
	if len(flat.Phases) != 1 || flat.Phases[0].Until != 1 {
		t.Fatalf("flatten produced %+v", flat.Phases)
	}
	m := flat.Phases[0].Mix
	if math.Abs(m.Spatial+m.Keyword+m.Hybrid-1) > 1e-9 {
		t.Errorf("flattened mix sums to %v", m.Spatial+m.Keyword+m.Hybrid)
	}
	// TwQW1 is roughly one-third of each type overall.
	for name, v := range map[string]float64{"spatial": m.Spatial, "keyword": m.Keyword, "hybrid": m.Hybrid} {
		if v < 0.15 || v > 0.55 {
			t.Errorf("flattened %s = %v, want roughly a third", name, v)
		}
	}
	// Single-phase specs flatten to themselves.
	f2 := flatten(workload.ByName("TwQW2"))
	if f2.Phases[0].Mix.Spatial != 1 {
		t.Errorf("TwQW2 flatten = %+v", f2.Phases[0].Mix)
	}
}

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}.withDefaults()
	if c.Queries != 3000 || c.PretrainQueries != 600 || c.WindowMS != 30000 ||
		c.Rate != 2 || c.ObjectsPerQuery != 40 || c.Seed != 1 || c.Scale != 1 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestSwitchTimelineTwQW6(t *testing.T) {
	cfg := small()
	cfg.Dataset, cfg.Workload = "Twitter", "TwQW6"
	res := RunSwitchTimeline("fig4", cfg)

	if len(res.Points) < 95 {
		t.Fatalf("only %d timeline points", len(res.Points))
	}
	// Paper shape: at least one switch into H4096 during the spatial phase
	// and one back to a sampling estimator afterwards.
	intoH, backToSampler := false, false
	for _, s := range res.Switches {
		if s.T < 0 || s.T > 100 {
			t.Errorf("switch outside timeline: %+v", s)
		}
		if s.To == "H4096" {
			intoH = true
		}
		if intoH && (s.To == "RSH" || s.To == "RSL") {
			backToSampler = true
		}
	}
	if !intoH || !backToSampler {
		t.Errorf("TwQW6 switch shape missing: %+v", res.Switches)
	}
	// H4096 is the lowest-latency estimator overall.
	hLat := res.MeanLatencyUS("H4096")
	for _, other := range []string{"RSL", "RSH", "AASP"} {
		if hLat >= res.MeanLatencyUS(other) {
			t.Errorf("H4096 latency %v not below %s %v", hLat, other, res.MeanLatencyUS(other))
		}
	}
	// The module's served accuracy beats the always-H4096 strawman on this
	// keyword-heavy workload.
	if res.ModuleAccuracy < res.MeanAccuracy("H4096") {
		t.Errorf("module accuracy %v below static H4096 %v", res.ModuleAccuracy, res.MeanAccuracy("H4096"))
	}
	if res.ModuleAccuracy < 0.6 {
		t.Errorf("module accuracy %v too low", res.ModuleAccuracy)
	}
	// ActiveAt is consistent with the recorded points.
	if res.ActiveAt(0) == "" || res.ActiveAt(100) == "" {
		t.Error("ActiveAt returned empty")
	}
	// Rendering and JSON round-trips work.
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("WriteTo: %v (%d bytes)", err, buf.Len())
	}
	var back TimelineResult
	data, err := json.Marshal(res)
	if err != nil || json.Unmarshal(data, &back) != nil {
		t.Errorf("JSON round-trip failed: %v", err)
	}
	if back.Experiment != "fig4" {
		t.Errorf("round-trip experiment = %q", back.Experiment)
	}
}

func TestSwitchTimelineEbird(t *testing.T) {
	cfg := small()
	cfg.Dataset, cfg.Workload = "eBird", "EbRQW1"
	res := RunSwitchTimeline("fig5", cfg)
	// Paper shape: a single switch from the RSH default to H4096, which is
	// both fastest and (near-)most accurate on the pure-spatial real
	// workload.
	if len(res.Switches) < 1 {
		t.Fatalf("no switches on EbRQW1")
	}
	if res.Switches[0].From != "RSH" || res.Switches[0].To != "H4096" {
		t.Errorf("first switch %+v, want RSH->H4096", res.Switches[0])
	}
	if res.ActiveAt(90) != "H4096" {
		t.Errorf("late active = %q, want H4096", res.ActiveAt(90))
	}
	if res.ModuleAccuracy < 0.8 {
		t.Errorf("module accuracy %v", res.ModuleAccuracy)
	}
}

func TestIndexOverheadShape(t *testing.T) {
	cfg := small()
	cfg.Queries = 600
	res := RunIndexOverhead(cfg)
	if len(res.Rows) != 11 {
		t.Fatalf("Table I has %d rows, want 11", len(res.Rows))
	}
	// On the keyword workloads (CheckIn, Twitter) the full index must cost
	// several times the sampling estimators (the paper's headline claim).
	for _, ds := range []string{"CheckIn", "Twitter"} {
		for _, est := range []string{"RSL", "RSH"} {
			row, ok := res.Row(ds, est)
			if !ok {
				t.Fatalf("missing row %s/%s", ds, est)
			}
			if row.OverheadFactor < 1.5 {
				t.Errorf("%s/%s overhead %.1fx, want >1.5x", ds, est, row.OverheadFactor)
			}
			if row.EstAccuracy < 0.6 {
				t.Errorf("%s/%s accuracy %.2f", ds, est, row.EstAccuracy)
			}
		}
		// AASP is the least accurate structural estimator on its rows.
		aasp, _ := res.Row(ds, "AASP")
		rsl, _ := res.Row(ds, "RSL")
		if aasp.EstAccuracy >= rsl.EstAccuracy {
			t.Errorf("%s: AASP %.2f not below RSL %.2f", ds, aasp.EstAccuracy, rsl.EstAccuracy)
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("WriteTo failed: %v", err)
	}
}

func TestAlphaChoicesShape(t *testing.T) {
	cfg := small()
	res := RunAlphaChoices(cfg)
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
	// α=0: accuracy-dominant — early/mid choices are sampling estimators.
	lo, ok := res.ChoiceFor(0)
	if !ok {
		t.Fatal("missing α=0 row")
	}
	if lo[0] != "RSH" && lo[0] != "RSL" {
		t.Errorf("α=0 t=20 choice %q, want a sampler", lo[0])
	}
	// α=1: latency-dominant — late choices are the fast estimators.
	hi, ok := res.ChoiceFor(1)
	if !ok {
		t.Fatal("missing α=1 row")
	}
	for i := 1; i < 3; i++ {
		if hi[i] != "H4096" && hi[i] != "FFN" && hi[i] != "SPN" {
			t.Errorf("α=1 choice[%d] = %q, want a low-latency estimator", i, hi[i])
		}
	}
	var buf bytes.Buffer
	res.WriteTo(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestSpatialSweepShape(t *testing.T) {
	cfg := small()
	cfg.Queries, cfg.PretrainQueries = 500, 150
	cfg.Dataset, cfg.Workload = "Twitter", "TwQW2"
	res := RunSpatialSweep("fig9", cfg, []float64{0.01, 0.04, 0.08})
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		// H4096 dominates latency at every range size on spatial queries.
		if p.LatencyUS["H4096"] >= p.LatencyUS["RSL"] {
			t.Errorf("x=%v: H4096 %.1fµs not below RSL %.1fµs", p.X, p.LatencyUS["H4096"], p.LatencyUS["RSL"])
		}
		// Sub-cell ranges (x below the 1/64 cell side) pay interpolation
		// error; larger ranges must be sharp.
		floor := 0.75
		if p.X < 1.0/64 {
			floor = 0.55
		}
		if p.Accuracy["H4096"] < floor {
			t.Errorf("x=%v: H4096 accuracy %.2f on pure spatial", p.X, p.Accuracy["H4096"])
		}
		if p.Choice == "" {
			t.Error("missing LATEST choice")
		}
	}
}

func TestSpatialSweepConvertsKeywordWorkload(t *testing.T) {
	cfg := small()
	cfg.Queries, cfg.PretrainQueries = 400, 150
	cfg.Dataset, cfg.Workload = "Twitter", "TwQW4"
	res := RunSpatialSweep("fig10", cfg, []float64{0.04})
	// TwQW4 is keyword-only; the sweep must have attached ranges (hybrid),
	// which shows as sampling estimators having meaningful accuracy while
	// H4096 (keyword-blind) collapses.
	p := res.Points[0]
	if p.Accuracy["RSH"] < 0.5 {
		t.Errorf("RSH accuracy %.2f", p.Accuracy["RSH"])
	}
	if p.Accuracy["H4096"] > p.Accuracy["RSH"] {
		t.Errorf("H4096 %.2f should not beat RSH %.2f on hybrid queries", p.Accuracy["H4096"], p.Accuracy["RSH"])
	}
}

func TestKeywordSweepShape(t *testing.T) {
	cfg := small()
	cfg.Queries, cfg.PretrainQueries = 400, 150
	cfg.Dataset, cfg.Workload = "Twitter", "TwQW5"
	res := RunKeywordSweep("fig11", cfg, []int{1, 3, 5})
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if _, present := p.Accuracy["H4096"]; present {
			t.Error("H4096 must be excluded from Fig. 11")
		}
		// Sampling estimators stay accurate across keyword counts.
		if p.Accuracy["RSH"] < 0.7 || p.Accuracy["RSL"] < 0.7 {
			t.Errorf("x=%v sampler accuracy RSL %.2f RSH %.2f", p.X, p.Accuracy["RSL"], p.Accuracy["RSH"])
		}
		// LATEST's choice is one of the reported estimators.
		if p.Choice == "H4096" {
			t.Errorf("LATEST chose the keyword-blind estimator on a keyword workload")
		}
	}
}

func TestMemorySweepShape(t *testing.T) {
	cfg := small()
	cfg.Queries, cfg.PretrainQueries = 400, 150
	cfg.Dataset, cfg.Workload = "Twitter", "TwQW1"
	res := RunMemorySweep("fig13", cfg, []float64{0.25, 1, 4})
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Memory footprints grow with the budget for the capacity-bound
	// estimators.
	for _, name := range []string{"RSL", "RSH", "AASP"} {
		lo := res.Points[0].MemoryB[name]
		hi := res.Points[2].MemoryB[name]
		if lo <= 0 || hi <= lo {
			t.Errorf("%s memory did not grow with budget: %d -> %d", name, lo, hi)
		}
	}
	// Accuracy does not collapse at the largest budget.
	last := res.Points[2]
	if last.Accuracy["RSH"] < res.Points[0].Accuracy["RSH"]-0.1 {
		t.Errorf("RSH accuracy shrank with memory: %.2f -> %.2f",
			res.Points[0].Accuracy["RSH"], last.Accuracy["RSH"])
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("IDs = %v", ids)
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("no description for %s", id)
		}
	}
	if _, err := Run("nope", RunConfig{}); err == nil {
		t.Error("unknown id accepted")
	}
	// A registry-dispatched run honours overrides and completes.
	cfg := small()
	cfg.Queries, cfg.PretrainQueries = 300, 100
	res, err := Run("fig6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl, ok := res.(*TimelineResult)
	if !ok {
		t.Fatalf("fig6 result type %T", res)
	}
	if tl.Alpha != 0 {
		t.Errorf("fig6 α = %v, want 0", tl.Alpha)
	}
	if tl.Workload != "TwQW3" {
		t.Errorf("fig6 workload = %q", tl.Workload)
	}
}
