package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestResultsMarshalJSON guards the machine-readable output of
// `latest-bench -json` for every result type: valid JSON, stable key
// fields, and lossless round trips of the numeric payloads.
func TestResultsMarshalJSON(t *testing.T) {
	overhead := &OverheadResult{Rows: []OverheadRow{{
		Dataset: "Twitter", Index: "Grid", IndexLatency: 2 * time.Millisecond,
		Estimator: "RSH", EstLatency: 500 * time.Microsecond,
		EstAccuracy: 0.82, OverheadFactor: 4.0,
	}}}
	alpha := &AlphaResult{Dataset: "Twitter", Workload: "TwQW3",
		Rows: []AlphaChoiceRow{{Alpha: 0.5, ChoiceT: [3]string{"RSL", "RSH", "RSH"}}}}
	sweep := &SweepResult{Experiment: "fig13", Dataset: "Twitter", Workload: "TwQW1",
		XLabel: "memory", Estimators: []string{"RSH"},
		Points: []SweepPoint{{
			X:         2,
			LatencyUS: map[string]float64{"RSH": 500},
			Accuracy:  map[string]float64{"RSH": 0.87},
			MemoryB:   map[string]int{"RSH": 1 << 20},
			Choice:    "RSH",
		}}}
	timeline := &TimelineResult{Experiment: "fig3", Dataset: "Twitter", Workload: "TwQW1",
		Alpha: 0.5, Estimators: []string{"RSH"},
		Points:   []TimelinePoint{{T: 10, LatencyUS: map[string]float64{"RSH": 200}, Accuracy: map[string]float64{"RSH": 0.8}, Active: "RSH"}},
		Switches: []TimelineSwitch{{T: 19, From: "RSH", To: "H4096", Prefilled: true}},
	}

	for name, res := range map[string]Result{
		"overhead": overhead, "alpha": alpha, "sweep": sweep, "timeline": timeline,
	} {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if !json.Valid(data) {
				t.Fatal("invalid JSON")
			}
			var buf bytes.Buffer
			if _, err := res.WriteTo(&buf); err != nil || buf.Len() == 0 {
				t.Fatalf("WriteTo: %v (%d bytes)", err, buf.Len())
			}
		})
	}

	// Spot-check a round trip.
	data, _ := json.Marshal(sweep)
	var back SweepResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Points[0].MemoryB["RSH"] != 1<<20 || back.Points[0].Accuracy["RSH"] != 0.87 {
		t.Errorf("sweep round trip: %+v", back.Points[0])
	}
	// Overhead durations serialize as nanoseconds and must survive.
	data, _ = json.Marshal(overhead)
	var backO OverheadResult
	if err := json.Unmarshal(data, &backO); err != nil {
		t.Fatal(err)
	}
	if backO.Rows[0].IndexLatency != 2*time.Millisecond {
		t.Errorf("latency round trip: %v", backO.Rows[0].IndexLatency)
	}
}

func TestTimelineAccessorsOnSynthetic(t *testing.T) {
	r := &TimelineResult{Estimators: []string{"A", "B"}}
	for i := 0; i <= 100; i += 10 {
		r.Points = append(r.Points, TimelinePoint{
			T:         i,
			LatencyUS: map[string]float64{"A": float64(i), "B": 2 * float64(i)},
			Accuracy:  map[string]float64{"A": 0.5, "B": 0.9},
			Active:    "B",
		})
	}
	if got := r.MeanAccuracy("B"); got < 0.9-1e-9 || got > 0.9+1e-9 {
		t.Errorf("MeanAccuracy = %v", got)
	}
	if got := r.MeanLatencyUS("A"); got != 50 {
		t.Errorf("MeanLatencyUS = %v", got)
	}
	if got := r.MeanAccuracy("missing"); got != 0 {
		t.Errorf("missing estimator accuracy = %v", got)
	}
	if got := r.ActiveAt(47); got != "B" {
		t.Errorf("ActiveAt = %q", got)
	}
	empty := &TimelineResult{}
	if empty.ActiveAt(50) != "" {
		t.Error("empty ActiveAt should be \"\"")
	}
}
