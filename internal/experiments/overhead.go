package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/index"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/workload"
)

// OverheadRow is one Table I row: a full index's query latency next to an
// estimator's latency and accuracy on the same (dataset, workload).
type OverheadRow struct {
	Dataset        string        `json:"dataset"`
	Index          string        `json:"index"`
	IndexLatency   time.Duration `json:"index_latency"`
	Estimator      string        `json:"estimator"`
	EstLatency     time.Duration `json:"est_latency"`
	EstAccuracy    float64       `json:"est_accuracy"`
	OverheadFactor float64       `json:"overhead_factor"` // index / estimator latency
}

// OverheadResult reproduces Table I.
type OverheadResult struct {
	Rows []OverheadRow `json:"rows"`
}

// tableIPairings mirrors the paper's Table I: grid indexes against the
// grid-flavoured estimators, quadtree indexes against AASP.
var tableIPairings = []struct {
	dataset, wl string
	index       string
	estimators  []string
}{
	{"eBird", "EbRQW1", "Grid", []string{estimator.NameH4096, estimator.NameRSL, estimator.NameRSH}},
	{"eBird", "EbRQW1", "QuadTree", []string{estimator.NameAASP}},
	{"CheckIn", "CiQW1", "Grid", []string{estimator.NameRSL, estimator.NameRSH}},
	{"CheckIn", "CiQW1", "QuadTree", []string{estimator.NameAASP}},
	{"Twitter", "TwQW4", "Grid", []string{estimator.NameH4096, estimator.NameRSL, estimator.NameRSH}},
	{"Twitter", "TwQW4", "QuadTree", []string{estimator.NameAASP}},
}

// overheadCell is one measured (dataset, workload, index) combination.
type overheadCell struct {
	idxLat time.Duration
	estLat map[string]time.Duration
	estAcc map[string]float64
}

// RunIndexOverhead regenerates Table I: for each (dataset, workload) pair
// it feeds the same stream into a full index and the estimator fleet, then
// measures exact-search latency against estimator latency/accuracy.
func RunIndexOverhead(cfg RunConfig) *OverheadResult {
	cfg = cfg.withDefaults()
	res := &OverheadResult{}
	type key struct{ dataset, wl, idx string }
	cache := map[key]*overheadCell{}
	for _, p := range tableIPairings {
		k := key{p.dataset, p.wl, p.index}
		cell, ok := cache[k]
		if !ok {
			cell = runOverheadCell(cfg, p.dataset, p.wl, p.index)
			cache[k] = cell
		}
		for _, estName := range p.estimators {
			row := OverheadRow{
				Dataset:      p.dataset,
				Index:        p.index,
				IndexLatency: cell.idxLat,
				Estimator:    estName,
				EstLatency:   cell.estLat[estName],
				EstAccuracy:  cell.estAcc[estName],
			}
			if row.EstLatency > 0 {
				row.OverheadFactor = float64(row.IndexLatency) / float64(row.EstLatency)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// runOverheadCell feeds one stream into one index plus the fleet and
// measures everything on the workload's queries.
func runOverheadCell(cfg RunConfig, dataset, wl, idxName string) *overheadCell {
	data := datagen.ByName(dataset, cfg.Seed, cfg.Rate)
	spec := workload.ByName(wl)
	queries := cfg.Queries / 2
	if queries < 200 {
		queries = 200
	}
	gen := workload.NewGenerator(spec, data, queries)
	oracle := stream.NewWindow(data.World(), cfg.WindowMS, 4096)

	var idx index.Index
	if idxName == "Grid" {
		idx = index.NewGrid(data.World(), 4096, cfg.WindowMS)
	} else {
		idx = index.NewQuadTree(data.World(), cfg.WindowMS)
	}
	reg := estimator.DefaultRegistry()
	fleet := reg.BuildAll(estimator.Params{
		World: data.World(), Span: cfg.WindowMS, Scale: cfg.Scale, Seed: cfg.Seed,
	})
	names := reg.Names()

	feed := func(n int) {
		for i := 0; i < n; i++ {
			o := data.Next()
			oracle.Insert(o)
			idx.Insert(&o)
			for _, f := range fleet {
				f.Insert(&o)
			}
		}
	}
	feed(int(float64(cfg.WindowMS) * cfg.Rate)) // one full warm-up window

	var idxLat metrics.LatencyTracker
	estLat := make([]metrics.LatencyTracker, len(fleet))
	estAcc := make([]metrics.Welford, len(fleet))
	for gen.Remaining() > 0 {
		feed(cfg.ObjectsPerQuery)
		q := gen.Next(data.Now())
		actual := float64(oracle.Answer(&q))

		start := time.Now()
		_ = idx.Search(&q) // the query processor materializes the results
		idxLat.Add(time.Since(start))

		for i, f := range fleet {
			start = time.Now()
			est := f.Estimate(&q)
			estLat[i].Add(time.Since(start))
			estAcc[i].Add(metrics.Accuracy(est, actual))
			f.Observe(&q, actual)
		}
	}
	cell := &overheadCell{
		idxLat: idxLat.Mean(),
		estLat: make(map[string]time.Duration, len(names)),
		estAcc: make(map[string]float64, len(names)),
	}
	for i, name := range names {
		cell.estLat[name] = estLat[i].Mean()
		cell.estAcc[name] = estAcc[i].Mean()
	}
	return cell
}

// WriteTo renders Table I.
func (r *OverheadResult) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "# Table I — index overhead vs estimators")
	fmt.Fprintf(&b, "%-10s %-9s %12s   %-6s %12s %9s %9s\n",
		"dataset", "index", "idx-latency", "est", "est-latency", "accuracy", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-9s %12s   %-6s %12s %8.0f%% %8.1fx\n",
			row.Dataset, row.Index, row.IndexLatency.Round(time.Microsecond),
			row.Estimator, row.EstLatency.Round(time.Microsecond),
			row.EstAccuracy*100, row.OverheadFactor)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Row finds the row for (dataset, estimator), used by tests.
func (r *OverheadResult) Row(dataset, est string) (OverheadRow, bool) {
	for _, row := range r.Rows {
		if row.Dataset == dataset && row.Estimator == est {
			return row, true
		}
	}
	return OverheadRow{}, false
}
