package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Result is any experiment output that can render itself; all results are
// also JSON-marshalable for machine consumption.
type Result interface {
	WriteTo(w io.Writer) (int64, error)
}

// Runner executes one experiment with caller-supplied scaling.
type Runner func(cfg RunConfig) Result

// experimentDef binds an id to its paper defaults and runner.
type experimentDef struct {
	id       string
	describe string
	defaults RunConfig
	run      Runner
}

// defs is the per-experiment index (DESIGN.md §2): one entry per table and
// figure in the paper's evaluation section.
var defs = []experimentDef{
	{
		id: "fig3", describe: "Fig. 3 — estimator switches on TwQW1 (changing thirds)",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW1"},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig3", cfg) },
	},
	{
		id: "fig4", describe: "Fig. 4 — estimator switches on TwQW6 (different phase order)",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW6"},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig4", cfg) },
	},
	{
		id: "fig5", describe: "Fig. 5 — estimator switches on EbRQW1 (real spatial requests)",
		defaults: RunConfig{Dataset: "eBird", Workload: "EbRQW1"},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig5", cfg) },
	},
	{
		id: "table1", describe: "Table I — full-index overhead vs estimators",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW4"},
		run:      func(cfg RunConfig) Result { return RunIndexOverhead(cfg) },
	},
	{
		id: "table2", describe: "Table II — impact of α on TwQW3 choices",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW3"},
		run:      func(cfg RunConfig) Result { return RunAlphaChoices(cfg) },
	},
	{
		id: "fig6", describe: "Fig. 6 — TwQW3 switches at α=0 (accuracy only)",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW3", Alpha: 0, AlphaSet: true},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig6", cfg) },
	},
	{
		id: "fig7", describe: "Fig. 7 — TwQW3 switches at α=1 (latency only)",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW3", Alpha: 1, AlphaSet: true},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig7", cfg) },
	},
	{
		id: "fig8", describe: "Fig. 8 — EbRQW1 switches at α=1",
		defaults: RunConfig{Dataset: "eBird", Workload: "EbRQW1", Alpha: 1, AlphaSet: true},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig8", cfg) },
	},
	{
		id: "fig9", describe: "Fig. 9 — varying spatial ranges on TwQW1",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW1"},
		run:      func(cfg RunConfig) Result { return RunSpatialSweep("fig9", cfg, nil) },
	},
	{
		id: "fig10", describe: "Fig. 10 — varying spatial ranges on TwQW4",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW4"},
		run:      func(cfg RunConfig) Result { return RunSpatialSweep("fig10", cfg, nil) },
	},
	{
		id: "fig11", describe: "Fig. 11 — varying keyword set size on TwQW5 (H4096 excluded)",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW5"},
		run:      func(cfg RunConfig) Result { return RunKeywordSweep("fig11", cfg, nil) },
	},
	{
		id: "fig12", describe: "Fig. 12 — estimator switches on CiQW1",
		defaults: RunConfig{Dataset: "CheckIn", Workload: "CiQW1"},
		run:      func(cfg RunConfig) Result { return RunSwitchTimeline("fig12", cfg) },
	},
	{
		id: "fig13", describe: "Fig. 13 — varying memory budget (Twitter)",
		defaults: RunConfig{Dataset: "Twitter", Workload: "TwQW1"},
		run:      func(cfg RunConfig) Result { return RunMemorySweep("fig13", cfg, nil) },
	},
}

// IDs lists every experiment id in paper order.
func IDs() []string {
	out := make([]string, 0, len(defs))
	for _, d := range defs {
		out = append(out, d.id)
	}
	return out
}

// Describe returns the one-line description for an experiment id.
func Describe(id string) string {
	for _, d := range defs {
		if d.id == id {
			return d.describe
		}
	}
	return ""
}

// Run executes the experiment by id. Zero fields of cfg inherit the
// experiment's paper defaults (dataset, workload, α), then the global
// scaling defaults.
func Run(id string, cfg RunConfig) (Result, error) {
	for _, d := range defs {
		if d.id != id {
			continue
		}
		merged := d.defaults
		if cfg.Dataset != "" {
			merged.Dataset = cfg.Dataset
		}
		if cfg.Workload != "" {
			merged.Workload = cfg.Workload
		}
		if cfg.AlphaSet {
			merged.Alpha, merged.AlphaSet = cfg.Alpha, true
		}
		merged.Queries = cfg.Queries
		merged.PretrainQueries = cfg.PretrainQueries
		merged.WindowMS = cfg.WindowMS
		merged.Rate = cfg.Rate
		merged.ObjectsPerQuery = cfg.ObjectsPerQuery
		merged.Tau = cfg.Tau
		merged.Beta = cfg.Beta
		merged.Grace = cfg.Grace
		merged.Scale = cfg.Scale
		merged.Seed = cfg.Seed
		return d.run(merged), nil
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
}
