package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/spatiotext/latest/internal/workload"
)

// SweepPoint is one x-axis position of a parameter-sweep figure.
type SweepPoint struct {
	X         float64            `json:"x"`
	LatencyUS map[string]float64 `json:"latency_us"`
	Accuracy  map[string]float64 `json:"accuracy"`
	MemoryB   map[string]int     `json:"memory_bytes,omitempty"`
	Choice    string             `json:"choice"` // LATEST's employed estimator
}

// SweepResult reproduces the parameter-sweep figures (Figs. 9-11, 13).
type SweepResult struct {
	Experiment string       `json:"experiment"`
	Dataset    string       `json:"dataset"`
	Workload   string       `json:"workload"`
	XLabel     string       `json:"x_label"`
	Estimators []string     `json:"estimators"`
	Points     []SweepPoint `json:"points"`
}

// DefaultSpatialSides is the paper's spatial-range sweep: range side as a
// fraction of the world's side (0.5% … 8%).
var DefaultSpatialSides = []float64{0.005, 0.01, 0.02, 0.04, 0.08}

// DefaultKeywordCounts is the Fig. 11 sweep of keywords per query.
var DefaultKeywordCounts = []int{1, 2, 3, 4, 5}

// DefaultMemoryScales is the Fig. 13 sweep of the estimator memory budget
// relative to the defaults.
var DefaultMemoryScales = []float64{0.25, 0.5, 1, 2, 4}

// runSweepPoint runs one env to completion and aggregates per-estimator
// means plus LATEST's dominant choice over the final quarter of the run.
func runSweepPoint(cfg RunConfig, spec workload.Spec, x float64, withMem bool) SweepPoint {
	e := newEnvSpec(cfg, spec)
	e.warmup()
	e.pretrain()
	latSum := make(map[string]float64, len(e.names))
	accSum := make(map[string]float64, len(e.names))
	tailActive := map[string]int{}
	n := 0
	total := cfg.Queries
	for e.wl.Remaining() > 0 {
		m := e.step(e.wl)
		n++
		for ei, name := range e.names {
			latSum[name] += float64(m.latency[ei].Microseconds())
			accSum[name] += m.accuracy[ei]
		}
		if n > total*3/4 {
			tailActive[m.active]++
		}
	}
	p := SweepPoint{
		X:         x,
		LatencyUS: make(map[string]float64, len(e.names)),
		Accuracy:  make(map[string]float64, len(e.names)),
		Choice:    dominant(tailActive),
	}
	for _, name := range e.names {
		p.LatencyUS[name] = latSum[name] / float64(n)
		p.Accuracy[name] = accSum[name] / float64(n)
	}
	if withMem {
		p.MemoryB = make(map[string]int, len(e.names))
		for i, name := range e.names {
			p.MemoryB[name] = e.shadow[i].MemoryBytes()
		}
	}
	return p
}

// RunSpatialSweep regenerates Figs. 9/10: per-estimator latency and
// accuracy at fixed spatial range sides on the given workload.
func RunSpatialSweep(experiment string, cfg RunConfig, sides []float64) *SweepResult {
	cfg = cfg.withDefaults()
	if len(sides) == 0 {
		sides = DefaultSpatialSides
	}
	base := workload.ByName(cfg.Workload)
	res := &SweepResult{
		Experiment: experiment, Dataset: cfg.Dataset, Workload: cfg.Workload,
		XLabel: "range side (fraction of world side)",
	}
	for _, side := range sides {
		spec := base.WithRangeSide(side)
		if spec.MixAt(0).Spatial+spec.MixAt(0).Hybrid == 0 {
			// A keyword-only workload swept over ranges becomes hybrid:
			// attach the range to every query (Fig. 10 does this to TwQW4).
			spec.Phases = []workload.Phase{{Until: 1, Mix: workload.Mix{Hybrid: 1}}}
		}
		p := runSweepPoint(cfg, spec, side, false)
		res.Points = append(res.Points, p)
		if res.Estimators == nil {
			res.Estimators = namesOf(p)
		}
	}
	return res
}

// RunKeywordSweep regenerates Fig. 11: per-estimator latency and accuracy
// as the query keyword count grows 1..5 on TwQW5. H4096 is excluded from
// the report exactly as the paper excludes it ("it uses purely spatial
// statistics").
func RunKeywordSweep(experiment string, cfg RunConfig, counts []int) *SweepResult {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = DefaultKeywordCounts
	}
	base := workload.ByName(cfg.Workload)
	res := &SweepResult{
		Experiment: experiment, Dataset: cfg.Dataset, Workload: cfg.Workload,
		XLabel: "keywords per query",
	}
	for _, k := range counts {
		p := runSweepPoint(cfg, base.WithKeywordCount(k), float64(k), false)
		delete(p.LatencyUS, "H4096")
		delete(p.Accuracy, "H4096")
		res.Points = append(res.Points, p)
		if res.Estimators == nil {
			res.Estimators = namesOf(p)
		}
	}
	return res
}

// RunMemorySweep regenerates Fig. 13: per-estimator latency and accuracy
// across memory budgets on the Twitter dataset.
func RunMemorySweep(experiment string, cfg RunConfig, scales []float64) *SweepResult {
	cfg = cfg.withDefaults()
	if len(scales) == 0 {
		scales = DefaultMemoryScales
	}
	base := workload.ByName(cfg.Workload)
	res := &SweepResult{
		Experiment: experiment, Dataset: cfg.Dataset, Workload: cfg.Workload,
		XLabel: "memory budget (x default)",
	}
	for _, scale := range scales {
		run := cfg
		run.Scale = scale
		p := runSweepPoint(run, base, scale, true)
		res.Points = append(res.Points, p)
		if res.Estimators == nil {
			res.Estimators = namesOf(p)
		}
	}
	return res
}

func namesOf(p SweepPoint) []string {
	names := make([]string, 0, len(p.Accuracy))
	for _, n := range []string{"H4096", "RSL", "RSH", "AASP", "FFN", "SPN"} {
		if _, ok := p.Accuracy[n]; ok {
			names = append(names, n)
		}
	}
	return names
}

// AccuracySeries returns one estimator's accuracy by x, used by tests.
func (r *SweepResult) AccuracySeries(name string) []float64 {
	out := make([]float64, 0, len(r.Points))
	for _, p := range r.Points {
		out = append(out, p.Accuracy[name])
	}
	return out
}

// LatencySeries returns one estimator's latency (µs) by x.
func (r *SweepResult) LatencySeries(name string) []float64 {
	out := make([]float64, 0, len(r.Points))
	for _, p := range r.Points {
		out = append(out, p.LatencyUS[name])
	}
	return out
}

// WriteTo renders the sweep as aligned rows.
func (r *SweepResult) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s / %s (x = %s)\n", r.Experiment, r.Dataset, r.Workload, r.XLabel)
	fmt.Fprintf(&b, "%-8s %-7s", "x", "choice")
	for _, n := range r.Estimators {
		fmt.Fprintf(&b, " %12s", n+"(us/acc)")
	}
	fmt.Fprintln(&b)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8.3f %-7s", p.X, p.Choice)
		for _, n := range r.Estimators {
			fmt.Fprintf(&b, " %7.1f/%.2f", p.LatencyUS[n], p.Accuracy[n])
		}
		fmt.Fprintln(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
