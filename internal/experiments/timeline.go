package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/spatiotext/latest/internal/metrics"
)

// TimelinePoint is one t_i bucket of a switch-timeline figure: the mean
// latency (µs) and accuracy of every estimator over that bucket's queries,
// plus which estimator LATEST had employed.
type TimelinePoint struct {
	T         int                `json:"t"` // 0..100
	LatencyUS map[string]float64 `json:"latency_us"`
	Accuracy  map[string]float64 `json:"accuracy"`
	Active    string             `json:"active"`
}

// TimelineSwitch is a switch event mapped onto the percent timeline.
type TimelineSwitch struct {
	T         int    `json:"t"`
	From      string `json:"from"`
	To        string `json:"to"`
	Prefilled bool   `json:"prefilled"`
}

// TimelineResult reproduces one of the estimator-switch figures
// (Figs. 3-8, 12): per-estimator latency and accuracy series over the
// incremental phase t0..t100 with LATEST's switches marked.
type TimelineResult struct {
	Experiment string           `json:"experiment"`
	Dataset    string           `json:"dataset"`
	Workload   string           `json:"workload"`
	Alpha      float64          `json:"alpha"`
	Estimators []string         `json:"estimators"`
	Points     []TimelinePoint  `json:"points"`
	Switches   []TimelineSwitch `json:"switches"`
	// ModuleAccuracy is the mean accuracy of the answers LATEST actually
	// served (always the active estimator's), the headline effectiveness
	// number.
	ModuleAccuracy float64 `json:"module_accuracy"`
}

// ActiveAt returns the employed estimator at percent point t.
func (r *TimelineResult) ActiveAt(t int) string {
	if len(r.Points) == 0 {
		return ""
	}
	best, bestD := 0, 1<<30
	for i, p := range r.Points {
		d := p.T - t
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return r.Points[best].Active
}

// MeanAccuracy returns an estimator's mean accuracy across the timeline.
func (r *TimelineResult) MeanAccuracy(name string) float64 {
	total, n := 0.0, 0
	for _, p := range r.Points {
		if v, ok := p.Accuracy[name]; ok {
			total += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// MeanLatencyUS returns an estimator's mean latency (µs) across the
// timeline.
func (r *TimelineResult) MeanLatencyUS(name string) float64 {
	total, n := 0.0, 0
	for _, p := range r.Points {
		if v, ok := p.LatencyUS[name]; ok {
			total += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// RunSwitchTimeline executes a switch-timeline experiment.
func RunSwitchTimeline(experiment string, cfg RunConfig) *TimelineResult {
	cfg = cfg.withDefaults()
	e := newEnv(cfg)
	e.warmup()
	e.pretrain()

	res := &TimelineResult{
		Experiment: experiment,
		Dataset:    cfg.Dataset,
		Workload:   cfg.Workload,
		Alpha:      moduleAlpha(cfg),
		Estimators: e.names,
	}
	const buckets = 100
	perBucket := cfg.Queries / buckets
	if perBucket < 1 {
		perBucket = 1
	}
	modAccTotal := 0.0
	queries := 0
	activeCount := map[string]int{}
	for b := 0; b <= buckets && e.wl.Remaining() > 0; b++ {
		latSum := make(map[string]float64, len(e.names))
		accSum := make(map[string]float64, len(e.names))
		clearCounts(activeCount)
		n := 0
		for i := 0; i < perBucket && e.wl.Remaining() > 0; i++ {
			m := e.step(e.wl)
			queries++
			for ei, name := range e.names {
				latSum[name] += float64(m.latency[ei].Microseconds())
				accSum[name] += m.accuracy[ei]
			}
			activeCount[m.active]++
			modAccTotal += accuracyOfModule(m)
			n++
		}
		if n == 0 {
			break
		}
		p := TimelinePoint{
			T:         b,
			LatencyUS: make(map[string]float64, len(e.names)),
			Accuracy:  make(map[string]float64, len(e.names)),
			Active:    dominant(activeCount),
		}
		for _, name := range e.names {
			p.LatencyUS[name] = latSum[name] / float64(n)
			p.Accuracy[name] = accSum[name] / float64(n)
		}
		res.Points = append(res.Points, p)
	}
	for _, ev := range e.module.Switches() {
		res.Switches = append(res.Switches, TimelineSwitch{
			T:         ev.QueryIndex * 100 / cfg.Queries,
			From:      ev.From,
			To:        ev.To,
			Prefilled: ev.Prefilled,
		})
	}
	if queries > 0 {
		res.ModuleAccuracy = modAccTotal / float64(queries)
	}
	return res
}

func moduleAlpha(cfg RunConfig) float64 {
	if cfg.AlphaSet || cfg.Alpha != 0 {
		return cfg.Alpha
	}
	return 0.5
}

func accuracyOfModule(m measurement) float64 {
	// The module served m.modEst; score it like any estimator.
	return metrics.Accuracy(m.modEst, m.actual)
}

func clearCounts(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func dominant(m map[string]int) string {
	best, bestN := "", -1
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic tie-break
	for _, k := range names {
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	return best
}

// WriteTo renders the result as the figure's data: one row per t with the
// active estimator and per-estimator (latency, accuracy) pairs, followed by
// the switch list.
func (r *TimelineResult) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s / %s (α=%.2f)\n", r.Experiment, r.Dataset, r.Workload, r.Alpha)
	fmt.Fprintf(&b, "# module accuracy (answers served): %.3f\n", r.ModuleAccuracy)
	fmt.Fprintf(&b, "%-4s %-7s", "t", "active")
	for _, n := range r.Estimators {
		fmt.Fprintf(&b, " %12s", n+"(us/acc)")
	}
	fmt.Fprintln(&b)
	for _, p := range r.Points {
		if p.T%5 != 0 {
			continue // print every 5th point; full data in JSON
		}
		fmt.Fprintf(&b, "%-4d %-7s", p.T, p.Active)
		for _, n := range r.Estimators {
			fmt.Fprintf(&b, " %7.1f/%.2f", p.LatencyUS[n], p.Accuracy[n])
		}
		fmt.Fprintln(&b)
	}
	if len(r.Switches) == 0 {
		fmt.Fprintln(&b, "switches: none")
	} else {
		fmt.Fprint(&b, "switches:")
		for i, s := range r.Switches {
			fmt.Fprintf(&b, " S%d@t%d %s->%s", i+1, s.T, s.From, s.To)
		}
		fmt.Fprintln(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
