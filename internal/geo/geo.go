// Package geo provides the planar geometry primitives used throughout the
// LATEST reproduction: points, axis-aligned rectangles, uniform grid cell
// arithmetic and Z-order (Morton) encoding.
//
// Coordinates follow the paper's convention of longitude/latitude pairs, but
// nothing in this package assumes geographic semantics except the optional
// haversine helper; all estimators treat space as a flat 2-D plane bounded
// by a world rectangle.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in 2-D space. X is longitude-like, Y is latitude-like.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// DistanceTo returns the Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SquaredDistanceTo returns the squared Euclidean distance between p and q.
// It avoids the square root for comparison-only uses.
func (p Point) SquaredDistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// EarthRadiusKM is the mean Earth radius used by HaversineKM.
const EarthRadiusKM = 6371.0088

// HaversineKM returns the great-circle distance in kilometres between two
// lon/lat points. Only used by examples that want human-readable distances;
// the estimators themselves are planar.
func HaversineKM(a, b Point) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKM * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Rect is an axis-aligned rectangle, closed on the min edges and open on the
// max edges ([MinX, MaxX) × [MinY, MaxY)) so that adjacent grid cells tile
// space without double-counting boundary points. The sole exception is the
// world rectangle's own max edges, which callers typically nudge outward by
// an epsilon so the extreme data point still lands inside.
type Rect struct {
	MinX, MinY float64
	MaxX, MaxY float64
}

// NewRect builds a Rect from two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// RectWH builds a Rect from a min corner plus width and height.
func RectWH(min Point, w, h float64) Rect {
	return Rect{MinX: min.X, MinY: min.Y, MaxX: min.X + w, MaxY: min.Y + h}
}

// CenteredRect builds a Rect centred on c with the given width and height.
func CenteredRect(c Point, w, h float64) Rect {
	return Rect{MinX: c.X - w/2, MinY: c.Y - h/2, MaxX: c.X + w/2, MaxY: c.Y + h/2}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6f,%.6f]x[%.6f,%.6f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Width returns MaxX-MinX.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns MaxY-MinY.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area; degenerate rectangles have area 0.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the rectangle's centre point.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Valid reports whether the rectangle's coordinates are finite and ordered.
func (r Rect) Valid() bool {
	for _, v := range [...]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Contains reports whether p lies inside r (min-closed, max-open).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Intersect returns the overlap of r and s; the result is Empty when they
// do not intersect.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand returns r grown by d on every side (shrunk when d is negative).
func (r Rect) Expand(d float64) Rect {
	out := Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Clamp returns p moved to the nearest point inside r (max edges treated as
// inclusive for clamping purposes, then nudged just inside).
func (r Rect) Clamp(p Point) Point {
	x := math.Max(r.MinX, math.Min(p.X, math.Nextafter(r.MaxX, r.MinX)))
	y := math.Max(r.MinY, math.Min(p.Y, math.Nextafter(r.MaxY, r.MinY)))
	return Point{x, y}
}

// OverlapFraction returns |r∩s| / |s|: the fraction of s's area covered by
// r. Returns 0 when s has zero area and does not contain... (degenerate s
// counts as fully covered when its min corner is inside r, matching the
// point-query limit).
func (r Rect) OverlapFraction(s Rect) float64 {
	if s.Area() == 0 {
		if r.Contains(Point{s.MinX, s.MinY}) {
			return 1
		}
		return 0
	}
	return r.Intersect(s).Area() / s.Area()
}

// Quadrants splits r into its four child quadrants in Z order:
// SW, SE, NW, NE.
func (r Rect) Quadrants() [4]Rect {
	cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	return [4]Rect{
		{r.MinX, r.MinY, cx, cy}, // SW
		{cx, r.MinY, r.MaxX, cy}, // SE
		{r.MinX, cy, cx, r.MaxY}, // NW
		{cx, cy, r.MaxX, r.MaxY}, // NE
	}
}

// QuadrantOf returns which quadrant index (as produced by Quadrants) point p
// falls in. p is assumed to be inside r.
func (r Rect) QuadrantOf(p Point) int {
	cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	q := 0
	if p.X >= cx {
		q |= 1
	}
	if p.Y >= cy {
		q |= 2
	}
	return q
}

// WorldWGS84 is a convenient world rectangle in degrees, with the max edges
// nudged outward so (180, 90) itself is representable.
var WorldWGS84 = Rect{MinX: -180, MinY: -90, MaxX: 180.000001, MaxY: 90.000001}

// UnitSquare is the [0,1) × [0,1) world used by most tests.
var UnitSquare = Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
