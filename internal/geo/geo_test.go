package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(1.5, 0), Pt(0, 2), 2.5},
	}
	for _, tc := range tests {
		if got := tc.a.DistanceTo(tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DistanceTo(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.a.SquaredDistanceTo(tc.b); math.Abs(got-tc.want*tc.want) > 1e-9 {
			t.Errorf("SquaredDistanceTo(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want*tc.want)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Riverside, CA to Thousand Oaks, CA is roughly 130 km.
	riverside := Pt(-117.3962, 33.9534)
	thousandOaks := Pt(-118.8376, 34.1706)
	d := HaversineKM(riverside, thousandOaks)
	if d < 120 || d > 145 {
		t.Errorf("Riverside->Thousand Oaks = %.1f km, want ~130", d)
	}
	if got := HaversineKM(riverside, riverside); got != 0 {
		t.Errorf("zero distance = %v", got)
	}
	// Antipodal points are half the circumference apart.
	half := math.Pi * EarthRadiusKM
	if got := HaversineKM(Pt(0, 0), Pt(180, 0)); math.Abs(got-half) > 1 {
		t.Errorf("antipodal = %v, want %v", got, half)
	}
}

func TestNewRectOrdersCorners(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	want := Rect{MinX: 2, MinY: 1, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectAccessors(t *testing.T) {
	r := RectWH(Pt(1, 2), 3, 4)
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("WH = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v", r.Area())
	}
	if c := r.Center(); c != Pt(2.5, 4) {
		t.Errorf("Center = %v", c)
	}
	if CenteredRect(Pt(2.5, 4), 3, 4) != r {
		t.Errorf("CenteredRect round-trip failed")
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},     // min corner included
		{Pt(1, 1), false},    // max corner excluded
		{Pt(1, 0), false},    // max X edge excluded
		{Pt(0, 1), false},    // max Y edge excluded
		{Pt(0.5, 0.5), true}, // interior
		{Pt(-0.1, 0.5), false},
		{Pt(0.5, 1.0000001), false},
	}
	for _, tc := range tests {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		b    Rect
		want Rect
		hits bool
	}{
		{"full overlap", Rect{2, 2, 4, 4}, Rect{2, 2, 4, 4}, true},
		{"partial", Rect{5, 5, 15, 15}, Rect{5, 5, 10, 10}, true},
		{"touching edges do not intersect", Rect{10, 0, 20, 10}, Rect{}, false},
		{"disjoint", Rect{20, 20, 30, 30}, Rect{}, false},
		{"identical", a, a, true},
		{"contains a", Rect{-5, -5, 15, 15}, a, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.Intersects(tc.b); got != tc.hits {
				t.Errorf("Intersects = %v, want %v", got, tc.hits)
			}
			if got := a.Intersect(tc.b); got != tc.want {
				t.Errorf("Intersect = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	if got := a.Union(b); got != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union = %v", got)
	}
	if got := a.Expand(1); got != (Rect{-1, -1, 2, 2}) {
		t.Errorf("Expand = %v", got)
	}
	if got := a.Expand(-1); !got.Empty() {
		t.Errorf("over-shrunk Expand should be empty, got %v", got)
	}
}

func TestOverlapFraction(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		s    Rect
		want float64
	}{
		{Rect{0, 0, 10, 10}, 1},
		{Rect{0, 0, 20, 10}, 0.5},
		{Rect{-10, 0, 10, 10}, 0.5},
		{Rect{20, 20, 30, 30}, 0},
		{Rect{5, 5, 15, 15}, 0.25},
	}
	for _, tc := range tests {
		if got := r.OverlapFraction(tc.s); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("OverlapFraction(%v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestQuadrants(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	q := r.Quadrants()
	want := [4]Rect{
		{0, 0, 1, 1}, {1, 0, 2, 1}, {0, 1, 1, 2}, {1, 1, 2, 2},
	}
	if q != want {
		t.Fatalf("Quadrants = %v, want %v", q, want)
	}
	// Every quadrant's points map back to its own index.
	for i, qr := range q {
		if got := r.QuadrantOf(qr.Center()); got != i {
			t.Errorf("QuadrantOf(center of quadrant %d) = %d", i, got)
		}
	}
	// Quadrants tile the parent: areas sum and pairwise disjoint.
	total := 0.0
	for _, qr := range q {
		total += qr.Area()
	}
	if math.Abs(total-r.Area()) > 1e-12 {
		t.Errorf("quadrant areas sum to %v, want %v", total, r.Area())
	}
}

func TestClamp(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	tests := []struct {
		in Point
	}{
		{Pt(-5, 0.5)}, {Pt(5, 0.5)}, {Pt(0.5, -5)}, {Pt(0.5, 5)}, {Pt(2, 2)}, {Pt(0.5, 0.5)},
	}
	for _, tc := range tests {
		got := r.Clamp(tc.in)
		if !r.Contains(got) {
			t.Errorf("Clamp(%v) = %v not contained in %v", tc.in, got, r)
		}
	}
	// Interior points are unchanged.
	if got := r.Clamp(Pt(0.25, 0.75)); got != Pt(0.25, 0.75) {
		t.Errorf("Clamp moved interior point: %v", got)
	}
}

func TestRectValid(t *testing.T) {
	if !(Rect{0, 0, 1, 1}).Valid() {
		t.Error("unit rect should be valid")
	}
	if (Rect{1, 0, 0, 1}).Valid() {
		t.Error("inverted rect should be invalid")
	}
	if (Rect{math.NaN(), 0, 1, 1}).Valid() {
		t.Error("NaN rect should be invalid")
	}
	if (Rect{0, 0, math.Inf(1), 1}).Valid() {
		t.Error("Inf rect should be invalid")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectWH(Pt(norm(ax), norm(ay)), pos(aw), pos(ah))
		b := RectWH(Pt(norm(bx), norm(by)), pos(bw), pos(bh))
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if i1.Empty() {
			return true
		}
		return a.ContainsRect(i1) && b.ContainsRect(i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands; intersect(a, union) == a.
func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectWH(Pt(norm(ax), norm(ay)), pos(aw), pos(ah))
		b := RectWH(Pt(norm(bx), norm(by)), pos(bw), pos(bh))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) && u.Intersect(a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// norm squashes an arbitrary float into a sane coordinate.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

// pos squashes an arbitrary float into a positive extent.
func pos(v float64) float64 {
	v = math.Abs(norm(v))
	if v < 1e-9 {
		return 1e-9
	}
	return v
}

func TestMortonRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		col, row := rng.Uint32()&0xFFFF, rng.Uint32()&0xFFFF
		c2, r2 := MortonDecode(Morton(col, row))
		if c2 != col || r2 != row {
			t.Fatalf("Morton round trip (%d,%d) -> (%d,%d)", col, row, c2, r2)
		}
	}
}

func TestMortonOrdering(t *testing.T) {
	// Z-order of the 2x2 grid is SW(0,0) SE(1,0) NW(0,1) NE(1,1).
	codes := []uint64{Morton(0, 0), Morton(1, 0), Morton(0, 1), Morton(1, 1)}
	for i := 1; i < len(codes); i++ {
		if codes[i] <= codes[i-1] {
			t.Errorf("Z-order not increasing at %d: %v", i, codes)
		}
	}
}
