package geo

import (
	"fmt"
	"math"
)

// Grid maps points in a world rectangle onto a Cols×Rows uniform cell grid.
// It is the shared cell arithmetic behind the 2-D histogram estimator, the
// reservoir-sampling hashmap and the full Grid index, so that all three
// agree exactly on which cell a point belongs to.
type Grid struct {
	World Rect
	Cols  int
	Rows  int

	cellW float64
	cellH float64
}

// NewGrid creates a grid over world with the given column and row counts.
// It panics on non-positive dimensions or an empty world, which are
// programming errors rather than runtime conditions.
func NewGrid(world Rect, cols, rows int) *Grid {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("geo: grid dimensions must be positive, got %dx%d", cols, rows))
	}
	if world.Empty() || !world.Valid() {
		panic(fmt.Sprintf("geo: grid world must be a valid non-empty rect, got %v", world))
	}
	return &Grid{
		World: world,
		Cols:  cols,
		Rows:  rows,
		cellW: world.Width() / float64(cols),
		cellH: world.Height() / float64(rows),
	}
}

// NewSquareGrid creates a grid with cells² = n total cells arranged in a
// √n × √n layout. n must be a perfect square (the paper's H4096 uses 64×64).
func NewSquareGrid(world Rect, n int) *Grid {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		panic(fmt.Sprintf("geo: %d is not a perfect square", n))
	}
	return NewGrid(world, side, side)
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.Cols * g.Rows }

// CellSize returns the width and height of a single cell.
func (g *Grid) CellSize() (w, h float64) { return g.cellW, g.cellH }

// CellOf returns the flat cell index of point p, clamping out-of-world
// points onto the boundary cells so a slightly-out-of-range coordinate never
// corrupts downstream counters.
func (g *Grid) CellOf(p Point) int {
	c, r := g.ColRowOf(p)
	return r*g.Cols + c
}

// ColRowOf returns the (column, row) of point p with boundary clamping.
func (g *Grid) ColRowOf(p Point) (col, row int) {
	col = int((p.X - g.World.MinX) / g.cellW)
	row = int((p.Y - g.World.MinY) / g.cellH)
	if col < 0 {
		col = 0
	} else if col >= g.Cols {
		col = g.Cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.Rows {
		row = g.Rows - 1
	}
	return col, row
}

// CellRect returns the rectangle of the cell with flat index idx.
// It panics when idx is out of range.
func (g *Grid) CellRect(idx int) Rect {
	if idx < 0 || idx >= g.NumCells() {
		panic(fmt.Sprintf("geo: cell index %d out of range [0,%d)", idx, g.NumCells()))
	}
	col, row := idx%g.Cols, idx/g.Cols
	minX := g.World.MinX + float64(col)*g.cellW
	minY := g.World.MinY + float64(row)*g.cellH
	return Rect{MinX: minX, MinY: minY, MaxX: minX + g.cellW, MaxY: minY + g.cellH}
}

// CellRange describes the rectangle of cells [ColMin,ColMax]×[RowMin,RowMax]
// overlapped by a query rectangle.
type CellRange struct {
	ColMin, ColMax int
	RowMin, RowMax int
}

// Empty reports whether the range covers no cells.
func (cr CellRange) Empty() bool { return cr.ColMax < cr.ColMin || cr.RowMax < cr.RowMin }

// Count returns the number of cells in the range.
func (cr CellRange) Count() int {
	if cr.Empty() {
		return 0
	}
	return (cr.ColMax - cr.ColMin + 1) * (cr.RowMax - cr.RowMin + 1)
}

// CellsOverlapping returns the inclusive range of cells intersecting rect r,
// clipped to the grid. The returned range is Empty when r misses the world.
func (g *Grid) CellsOverlapping(r Rect) CellRange {
	clipped := g.World.Intersect(r)
	if clipped.Empty() {
		return CellRange{ColMin: 0, ColMax: -1, RowMin: 0, RowMax: -1}
	}
	colMin := int((clipped.MinX - g.World.MinX) / g.cellW)
	rowMin := int((clipped.MinY - g.World.MinY) / g.cellH)
	// The max edge is exclusive; nudge inward so an exactly-aligned query
	// edge does not pull in the next cell row/column.
	colMax := int(math.Nextafter((clipped.MaxX-g.World.MinX)/g.cellW, -1))
	rowMax := int(math.Nextafter((clipped.MaxY-g.World.MinY)/g.cellH, -1))
	if colMax >= g.Cols {
		colMax = g.Cols - 1
	}
	if rowMax >= g.Rows {
		rowMax = g.Rows - 1
	}
	if colMin < 0 {
		colMin = 0
	}
	if rowMin < 0 {
		rowMin = 0
	}
	if colMax < colMin || rowMax < rowMin {
		return CellRange{ColMin: 0, ColMax: -1, RowMin: 0, RowMax: -1}
	}
	return CellRange{ColMin: colMin, ColMax: colMax, RowMin: rowMin, RowMax: rowMax}
}

// ForEachCell calls fn with the flat index and rectangle of every cell in
// cr. fn returning false stops the iteration early.
func (g *Grid) ForEachCell(cr CellRange, fn func(idx int, cell Rect) bool) {
	for row := cr.RowMin; row <= cr.RowMax; row++ {
		for col := cr.ColMin; col <= cr.ColMax; col++ {
			idx := row*g.Cols + col
			if !fn(idx, g.CellRect(idx)) {
				return
			}
		}
	}
}

// Morton interleaves the low 16 bits of col and row into a Z-order code.
// Used to lay quadtree traversals and grid scans out in a cache-friendlier
// order; 16 bits per axis comfortably covers any grid this package builds.
func Morton(col, row uint32) uint64 {
	return spread(col) | spread(row)<<1
}

// MortonDecode is the inverse of Morton.
func MortonDecode(code uint64) (col, row uint32) {
	return compact(code), compact(code >> 1)
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func compact(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}
