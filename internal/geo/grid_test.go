package geo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero cols", func() { NewGrid(UnitSquare, 0, 4) }},
		{"negative rows", func() { NewGrid(UnitSquare, 4, -1) }},
		{"empty world", func() { NewGrid(Rect{}, 4, 4) }},
		{"non-square count", func() { NewSquareGrid(UnitSquare, 4095) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSquareGrid4096(t *testing.T) {
	g := NewSquareGrid(UnitSquare, 4096)
	if g.Cols != 64 || g.Rows != 64 {
		t.Fatalf("got %dx%d, want 64x64", g.Cols, g.Rows)
	}
	if g.NumCells() != 4096 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	w, h := g.CellSize()
	if w != 1.0/64 || h != 1.0/64 {
		t.Fatalf("CellSize = %v,%v", w, h)
	}
}

func TestCellOfCorners(t *testing.T) {
	g := NewGrid(UnitSquare, 4, 4)
	tests := []struct {
		p    Point
		want int
	}{
		{Pt(0, 0), 0},
		{Pt(0.999, 0.999), 15},
		{Pt(0.25, 0), 1},       // exactly on a cell boundary goes right
		{Pt(0, 0.25), 4},       // boundary row goes up
		{Pt(0.5, 0.5), 10},     // centre
		{Pt(-1, -1), 0},        // clamped
		{Pt(2, 2), 15},         // clamped
		{Pt(0.26, 0.74), 9},    // col 1, row 2
		{Pt(0.99999, 0.0), 3},  // top of first row
		{Pt(0.0, 0.99999), 12}, // first col, last row
	}
	for _, tc := range tests {
		if got := g.CellOf(tc.p); got != tc.want {
			t.Errorf("CellOf(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	g := NewGrid(Rect{-10, -5, 30, 15}, 8, 5)
	for idx := 0; idx < g.NumCells(); idx++ {
		cell := g.CellRect(idx)
		if got := g.CellOf(cell.Center()); got != idx {
			t.Fatalf("cell %d center maps to %d", idx, got)
		}
		// Min corner belongs to the cell (half-open semantics).
		if got := g.CellOf(Point{cell.MinX, cell.MinY}); got != idx {
			t.Fatalf("cell %d min corner maps to %d", idx, got)
		}
	}
}

func TestCellRectPanicsOutOfRange(t *testing.T) {
	g := NewGrid(UnitSquare, 2, 2)
	for _, idx := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CellRect(%d) should panic", idx)
				}
			}()
			g.CellRect(idx)
		}()
	}
}

func TestCellsOverlapping(t *testing.T) {
	g := NewGrid(UnitSquare, 4, 4)
	tests := []struct {
		name string
		r    Rect
		want CellRange
	}{
		{"whole world", UnitSquare, CellRange{0, 3, 0, 3}},
		{"single cell interior", Rect{0.1, 0.1, 0.2, 0.2}, CellRange{0, 0, 0, 0}},
		{"exactly one cell", Rect{0.25, 0.25, 0.5, 0.5}, CellRange{1, 1, 1, 1}},
		{"two cols", Rect{0.2, 0.1, 0.3, 0.2}, CellRange{0, 1, 0, 0}},
		{"miss", Rect{2, 2, 3, 3}, CellRange{0, -1, 0, -1}},
		{"overhang clips", Rect{-1, -1, 0.1, 0.1}, CellRange{0, 0, 0, 0}},
		{"beyond max clips", Rect{0.9, 0.9, 5, 5}, CellRange{3, 3, 3, 3}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := g.CellsOverlapping(tc.r)
			if got != tc.want {
				t.Errorf("CellsOverlapping(%v) = %+v, want %+v", tc.r, got, tc.want)
			}
		})
	}
}

func TestCellRangeCount(t *testing.T) {
	if c := (CellRange{0, 3, 0, 3}).Count(); c != 16 {
		t.Errorf("Count = %d", c)
	}
	if c := (CellRange{0, -1, 0, -1}).Count(); c != 0 {
		t.Errorf("empty Count = %d", c)
	}
	if !(CellRange{2, 1, 0, 0}).Empty() {
		t.Error("inverted range should be empty")
	}
}

func TestForEachCellVisitsAllAndStops(t *testing.T) {
	g := NewGrid(UnitSquare, 4, 4)
	cr := g.CellsOverlapping(UnitSquare)
	var visited []int
	g.ForEachCell(cr, func(idx int, cell Rect) bool {
		visited = append(visited, idx)
		return true
	})
	if len(visited) != 16 {
		t.Fatalf("visited %d cells, want 16", len(visited))
	}
	for i, idx := range visited {
		if i > 0 && idx <= visited[i-1] {
			t.Fatalf("visit order not increasing: %v", visited)
		}
	}
	// Early stop.
	n := 0
	g.ForEachCell(cr, func(idx int, cell Rect) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
}

// Property: every point inside the world maps to a cell whose rect
// contains it, and that cell is within every overlap range computed from a
// rect containing the point.
func TestGridPointCellConsistency(t *testing.T) {
	g := NewGrid(Rect{-100, -50, 100, 50}, 17, 13) // deliberately non-square, odd
	rng := rand.New(rand.NewSource(7))
	f := func(fx, fy float64) bool {
		x := g.World.MinX + pos01(fx)*g.World.Width()
		y := g.World.MinY + pos01(fy)*g.World.Height()
		p := Pt(x, y)
		idx := g.CellOf(p)
		if !g.CellRect(idx).Contains(p) {
			return false
		}
		// A random query rect around p must include p's cell in its range.
		qw := rng.Float64()*20 + 1e-6
		qh := rng.Float64()*20 + 1e-6
		cr := g.CellsOverlapping(CenteredRect(p, qw, qh))
		col, row := g.ColRowOf(p)
		return col >= cr.ColMin && col <= cr.ColMax && row >= cr.RowMin && row <= cr.RowMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the union of CellsOverlapping cell rects covers the clipped
// query rect.
func TestCellsOverlappingCoversQuery(t *testing.T) {
	g := NewGrid(UnitSquare, 9, 6)
	f := func(ax, ay, w, h float64) bool {
		q := RectWH(Pt(pos01(ax), pos01(ay)), pos01(w)*0.5+1e-9, pos01(h)*0.5+1e-9)
		cr := g.CellsOverlapping(q)
		clipped := g.World.Intersect(q)
		if clipped.Empty() {
			return cr.Empty()
		}
		var cover Rect
		g.ForEachCell(cr, func(idx int, cell Rect) bool {
			cover = cover.Union(cell)
			return true
		})
		// Cell rects are derived via MinX+col*cellW, so their union may be a
		// few ulps narrower than the clipped query; grow by an epsilon.
		return cover.Expand(1e-9).ContainsRect(clipped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func pos01(v float64) float64 {
	v = norm(v) / 1000
	if v < 0 {
		v = -v
	}
	return v
}

func BenchmarkCellOf(b *testing.B) {
	g := NewSquareGrid(UnitSquare, 4096)
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 1024)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CellOf(pts[i&1023])
	}
}

func BenchmarkCellsOverlapping(b *testing.B) {
	g := NewSquareGrid(UnitSquare, 4096)
	q := Rect{0.2, 0.3, 0.6, 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CellsOverlapping(q)
	}
}
