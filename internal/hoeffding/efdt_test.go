package hoeffding

import (
	"math/rand"
	"testing"
)

// driftAttrs: two nominal attributes; which one determines the class flips
// between regimes.
var driftAttrs = []Attribute{
	{Name: "a", Kind: Nominal, NumValues: 2},
	{Name: "b", Kind: Nominal, NumValues: 2},
}

// feedRegime trains n instances where the class equals the chosen
// attribute's value and the other attribute is noise.
func feedRegime(tr *Tree, rng *rand.Rand, n int, signalAttr int) {
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x := []float64{float64(a), float64(b)}
		cls := a
		if signalAttr == 1 {
			cls = b
		}
		tr.Learn(x, cls)
	}
}

// regimeAccuracy evaluates the tree on fresh draws of the regime.
func regimeAccuracy(tr *Tree, rng *rand.Rand, signalAttr int) float64 {
	correct := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x := []float64{float64(a), float64(b)}
		want := a
		if signalAttr == 1 {
			want = b
		}
		if tr.Predict(x) == want {
			correct++
		}
	}
	return float64(correct) / trials
}

func TestEFDTRevisesSplitUnderDrift(t *testing.T) {
	cfg := Config{GracePeriod: 100, ReevaluateSplits: true}
	tr := New(driftAttrs, []string{"c0", "c1"}, cfg)
	rng := rand.New(rand.NewSource(1))

	// Regime A: attribute 0 is the signal.
	feedRegime(tr, rng, 5000, 0)
	if tr.Splits() == 0 {
		t.Fatal("no initial split")
	}
	if acc := regimeAccuracy(tr, rng, 0); acc < 0.95 {
		t.Fatalf("regime A accuracy %.3f", acc)
	}
	// Regime B: attribute 1 takes over. EFDT must revise the root split.
	feedRegime(tr, rng, 20000, 1)
	if tr.Resplits() == 0 {
		t.Fatal("EFDT never revised its split under drift")
	}
	if acc := regimeAccuracy(tr, rng, 1); acc < 0.9 {
		t.Errorf("regime B accuracy %.3f after revision", acc)
	}
}

func TestPlainVFDTDoesNotRevise(t *testing.T) {
	tr := New(driftAttrs, []string{"c0", "c1"}, Config{GracePeriod: 100})
	rng := rand.New(rand.NewSource(2))
	feedRegime(tr, rng, 5000, 0)
	feedRegime(tr, rng, 20000, 1)
	if tr.Resplits() != 0 {
		t.Errorf("plain VFDT revised splits: %d", tr.Resplits())
	}
	// Its root still tests attribute 0; regime-B accuracy is only what the
	// (re-filled) leaves can recover, not a clean re-split. This documents
	// the gap EFDT closes — the leaves below the stale root *can* adapt,
	// so we only assert EFDT's structural advantage, not a fixed number.
	if tr.root.isLeaf() || tr.root.splitAttr != 0 {
		t.Errorf("expected the stale root split to persist")
	}
}

func TestEFDTNodeAccountingStaysConsistent(t *testing.T) {
	cfg := Config{GracePeriod: 50, ReevaluateSplits: true, TieThreshold: 0.1}
	tr := New(
		[]Attribute{
			{Name: "a", Kind: Nominal, NumValues: 3},
			{Name: "v", Kind: Numeric},
		},
		[]string{"x", "y", "z"},
		cfg,
	)
	rng := rand.New(rand.NewSource(3))
	// Alternate regimes to force several revisions, then verify NodeCount
	// matches an actual walk.
	for round := 0; round < 6; round++ {
		for i := 0; i < 3000; i++ {
			a := rng.Intn(3)
			v := rng.Float64()
			var cls int
			if round%2 == 0 {
				cls = a
			} else {
				cls = int(v * 3)
				if cls > 2 {
					cls = 2
				}
			}
			tr.Learn([]float64{float64(a), v}, cls)
		}
	}
	if got, want := tr.NodeCount(), tr.subtreeSize(tr.root); got != want {
		t.Errorf("NodeCount = %d, walk says %d", got, want)
	}
	if tr.NodeCount() < 1 {
		t.Error("node count broken")
	}
}

func TestEFDTAccuracyNotWorseOnStationary(t *testing.T) {
	// On a stationary problem EFDT should match VFDT closely (no
	// gratuitous churn).
	mk := func(anytime bool) float64 {
		tr := New(driftAttrs, []string{"c0", "c1"},
			Config{GracePeriod: 100, ReevaluateSplits: anytime})
		rng := rand.New(rand.NewSource(4))
		feedRegime(tr, rng, 10000, 0)
		return regimeAccuracy(tr, rng, 0)
	}
	vfdt, efdt := mk(false), mk(true)
	if efdt < vfdt-0.02 {
		t.Errorf("EFDT %.3f materially below VFDT %.3f on stationary data", efdt, vfdt)
	}
}

func BenchmarkLearnEFDT(b *testing.B) {
	tr := New(driftAttrs, []string{"c0", "c1"},
		Config{GracePeriod: 200, ReevaluateSplits: true})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, bb := rng.Intn(2), rng.Intn(2)
		tr.Learn([]float64{float64(a), float64(bb)}, a)
	}
}
