// Package hoeffding implements the Very Fast Decision Tree (VFDT) of
// Domingos & Hulten ("Mining High-Speed Data Streams"), the incremental
// classifier at the heart of LATEST (§V-B). The configuration mirrors the
// WEKA HoeffdingTree options the paper uses: information-gain splits,
// Majority Class leaf prediction, and WEKA's default grace period, delta
// and tie threshold.
//
// The tree learns from a stream of labelled instances in constant time per
// instance. Each leaf accumulates sufficient statistics — per-value class
// counts for nominal attributes, per-class Gaussians for numeric ones — and
// attempts a split every GracePeriod instances: the best attribute splits
// when its information gain beats the runner-up by the Hoeffding bound
// ε = sqrt(R²·ln(1/δ) / 2n), or when the two are tied within TieThreshold.
package hoeffding

import (
	"fmt"
	"math"
)

// AttributeKind distinguishes nominal from numeric attributes.
type AttributeKind int

const (
	// Nominal attributes take one of a fixed set of values, encoded as the
	// value's index.
	Nominal AttributeKind = iota
	// Numeric attributes are real-valued.
	Numeric
)

// Attribute describes one feature column.
type Attribute struct {
	Name string
	Kind AttributeKind
	// NumValues is the domain size for nominal attributes (ignored for
	// numeric ones).
	NumValues int
}

// LeafStrategy selects how leaves turn their statistics into predictions,
// mirroring WEKA's leaf prediction strategy option. The paper configures
// Majority Class (§VI-A); the Naive Bayes variants exploit the per-leaf
// attribute observers for finer-grained predictions.
type LeafStrategy int

const (
	// MajorityClass predicts the most frequent class at the leaf.
	MajorityClass LeafStrategy = iota
	// NaiveBayes predicts argmax P(class)·∏P(attrᵢ|class) from the leaf's
	// observers.
	NaiveBayes
	// NaiveBayesAdaptive tracks both predictors' prequential accuracy per
	// leaf and uses whichever has been better there (WEKA's default).
	NaiveBayesAdaptive
)

// Config holds the VFDT hyper-parameters. Zero values take the WEKA
// defaults quoted in the comments.
type Config struct {
	// GracePeriod is the number of instances a leaf absorbs between split
	// attempts. WEKA default: 200.
	GracePeriod int
	// Delta is the Hoeffding bound's confidence parameter (probability of
	// choosing the wrong attribute). WEKA default: 1e-7.
	Delta float64
	// TieThreshold breaks near-ties: if ε falls below it, the best
	// attribute splits even without dominating the runner-up. WEKA
	// default: 0.05.
	TieThreshold float64
	// NumCandidates is how many thresholds a numeric attribute evaluates
	// between its observed min and max. Default: 10.
	NumCandidates int
	// MaxDepth caps tree depth (0 = 32).
	MaxDepth int
	// Leaf selects the leaf prediction strategy. Default: MajorityClass,
	// the paper's configuration.
	Leaf LeafStrategy
	// ReevaluateSplits enables EFDT/HATT mode (Manapragada et al.,
	// "Extremely Fast Decision Tree" — the paper's reference [44]):
	// internal nodes keep their sufficient statistics and periodically
	// re-test their split choice; when another attribute's gain beats the
	// installed split by the Hoeffding bound, the subtree is replaced.
	// This lets the tree *revise* early decisions under drift instead of
	// waiting for a full rebuild. Off by default (plain VFDT, the WEKA
	// behaviour the paper configures).
	ReevaluateSplits bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.GracePeriod <= 0 {
		out.GracePeriod = 200
	}
	if out.Delta <= 0 {
		out.Delta = 1e-7
	}
	if out.TieThreshold <= 0 {
		out.TieThreshold = 0.05
	}
	if out.NumCandidates <= 0 {
		out.NumCandidates = 10
	}
	if out.MaxDepth <= 0 {
		out.MaxDepth = 32
	}
	return out
}

// gaussian is a per-class running Gaussian estimator (Welford).
type gaussian struct {
	n    float64
	mean float64
	m2   float64
}

func (g *gaussian) add(v float64) {
	g.n++
	d := v - g.mean
	g.mean += d / g.n
	g.m2 += d * (v - g.mean)
}

func (g *gaussian) variance() float64 {
	if g.n < 2 {
		return 0
	}
	return g.m2 / (g.n - 1)
}

// cdf is the Gaussian CDF at v.
func (g *gaussian) cdf(v float64) float64 {
	if g.n == 0 {
		return 0.5
	}
	sd := math.Sqrt(g.variance())
	if sd < 1e-12 {
		if v < g.mean {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((v-g.mean)/(sd*math.Sqrt2)))
}

// nominalObserver tracks counts[value][class].
type nominalObserver struct {
	counts [][]float64
}

func newNominalObserver(values, classes int) *nominalObserver {
	c := make([][]float64, values)
	for i := range c {
		c[i] = make([]float64, classes)
	}
	return &nominalObserver{counts: c}
}

func (o *nominalObserver) observe(value int, class int) {
	if value < 0 {
		value = 0
	}
	if value >= len(o.counts) {
		value = len(o.counts) - 1
	}
	o.counts[value][class]++
}

// numericObserver tracks per-class Gaussians plus the global value range.
type numericObserver struct {
	perClass []gaussian
	min, max float64
	seen     bool
}

func newNumericObserver(classes int) *numericObserver {
	return &numericObserver{perClass: make([]gaussian, classes)}
}

func (o *numericObserver) observe(v float64, class int) {
	o.perClass[class].add(v)
	if !o.seen {
		o.min, o.max, o.seen = v, v, true
	} else {
		if v < o.min {
			o.min = v
		}
		if v > o.max {
			o.max = v
		}
	}
}

// node is a tree node: either a leaf with observers or an internal split.
type node struct {
	// Split fields (internal nodes).
	splitAttr int
	threshold float64 // numeric splits: left if v <= threshold
	children  []*node // nominal: one per value; numeric: [left, right]

	// Leaf fields.
	classCounts []float64
	nominal     map[int]*nominalObserver
	numeric     map[int]*numericObserver
	seenAtSplit float64 // instances seen at the last split attempt
	depth       int

	// Adaptive leaf-strategy bookkeeping: prequential correct counts of
	// the two predictors at this leaf.
	mcCorrect float64
	nbCorrect float64
}

func (n *node) isLeaf() bool { return n.children == nil }

func (n *node) total() float64 {
	t := 0.0
	for _, c := range n.classCounts {
		t += c
	}
	return t
}

// majority returns the index of the most frequent class at the leaf, or -1
// for an empty leaf.
func (n *node) majority() int {
	best, bestC := -1, 0.0
	for i, c := range n.classCounts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}

// Tree is the VFDT classifier. Not safe for concurrent use.
type Tree struct {
	cfg     Config
	attrs   []Attribute
	classes []string
	root    *node

	nodes     int
	instances int
	splits    int
	resplits  int
}

// New creates an empty tree. Attributes and classes are fixed for the
// tree's lifetime; classes must be non-empty and nominal attributes need at
// least two values.
func New(attrs []Attribute, classes []string, cfg Config) *Tree {
	if len(classes) < 2 {
		panic(fmt.Sprintf("hoeffding: need at least 2 classes, got %d", len(classes)))
	}
	for _, a := range attrs {
		if a.Kind == Nominal && a.NumValues < 2 {
			panic(fmt.Sprintf("hoeffding: nominal attribute %q needs ≥2 values", a.Name))
		}
	}
	t := &Tree{cfg: cfg.withDefaults(), attrs: attrs, classes: classes}
	t.root = t.newLeaf(0)
	t.nodes = 1
	return t
}

func (t *Tree) newLeaf(depth int) *node {
	return &node{
		classCounts: make([]float64, len(t.classes)),
		nominal:     make(map[int]*nominalObserver),
		numeric:     make(map[int]*numericObserver),
		depth:       depth,
	}
}

// Classes returns the class names.
func (t *Tree) Classes() []string { return t.classes }

// NodeCount returns the number of tree nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// Splits returns how many leaf splits have occurred.
func (t *Tree) Splits() int { return t.splits }

// Resplits returns how many internal-node split revisions have occurred
// (EFDT mode only).
func (t *Tree) Resplits() int { return t.resplits }

// Instances returns how many training instances the tree has absorbed.
func (t *Tree) Instances() int { return t.instances }

// sortToLeaf routes an instance to its leaf.
func (t *Tree) sortToLeaf(x []float64) *node {
	n := t.root
	for !n.isLeaf() {
		attr := t.attrs[n.splitAttr]
		var idx int
		if attr.Kind == Nominal {
			idx = int(x[n.splitAttr])
			if idx < 0 {
				idx = 0
			}
			if idx >= len(n.children) {
				idx = len(n.children) - 1
			}
		} else {
			if x[n.splitAttr] <= n.threshold {
				idx = 0
			} else {
				idx = 1
			}
		}
		n = n.children[idx]
	}
	return n
}

// Learn absorbs one labelled instance. x must have one entry per attribute
// (nominal entries are value indices); class is the label index.
func (t *Tree) Learn(x []float64, class int) {
	if len(x) != len(t.attrs) {
		panic(fmt.Sprintf("hoeffding: instance has %d attributes, tree expects %d", len(x), len(t.attrs)))
	}
	if class < 0 || class >= len(t.classes) {
		panic(fmt.Sprintf("hoeffding: class %d out of range [0,%d)", class, len(t.classes)))
	}
	t.instances++
	if t.cfg.ReevaluateSplits {
		t.learnAnytime(x, class)
		return
	}
	leaf := t.sortToLeaf(x)
	t.scoreLeafPredictors(leaf, x, class)
	t.observeAt(leaf, x, class)
	if leaf.total()-leaf.seenAtSplit >= float64(t.cfg.GracePeriod) && leaf.depth < t.cfg.MaxDepth {
		t.attemptSplit(leaf)
	}
}

// scoreLeafPredictors updates the adaptive strategy's prequential tallies
// before the instance is absorbed.
func (t *Tree) scoreLeafPredictors(leaf *node, x []float64, class int) {
	if t.cfg.Leaf != NaiveBayesAdaptive {
		return
	}
	if leaf.majority() == class {
		leaf.mcCorrect++
	}
	if t.naiveBayes(leaf, x) == class {
		leaf.nbCorrect++
	}
}

// observeAt folds one instance into a node's counts and observers.
func (t *Tree) observeAt(n *node, x []float64, class int) {
	n.classCounts[class]++
	for ai, attr := range t.attrs {
		if attr.Kind == Nominal {
			obs := n.nominal[ai]
			if obs == nil {
				obs = newNominalObserver(attr.NumValues, len(t.classes))
				n.nominal[ai] = obs
			}
			obs.observe(int(x[ai]), class)
		} else {
			obs := n.numeric[ai]
			if obs == nil {
				obs = newNumericObserver(len(t.classes))
				n.numeric[ai] = obs
			}
			obs.observe(x[ai], class)
		}
	}
}

// learnAnytime is the EFDT training path: the instance updates statistics
// at *every* node it passes through, leaves split as in VFDT, and internal
// nodes periodically re-test whether their installed split is still the
// Hoeffding-best choice — replacing the subtree when it is not.
func (t *Tree) learnAnytime(x []float64, class int) {
	n := t.root
	for {
		if n.isLeaf() {
			t.scoreLeafPredictors(n, x, class)
		}
		t.observeAt(n, x, class)
		due := n.total()-n.seenAtSplit >= float64(t.cfg.GracePeriod)
		if n.isLeaf() {
			if due && n.depth < t.cfg.MaxDepth {
				t.attemptSplit(n)
			}
			return
		}
		if due {
			t.reevaluate(n)
			if n.isLeaf() {
				// The split was retracted; continue as a leaf next time.
				return
			}
		}
		n = n.children[t.routeIndex(n, x)]
	}
}

// routeIndex picks the child index an instance follows at an internal node.
func (t *Tree) routeIndex(n *node, x []float64) int {
	if t.attrs[n.splitAttr].Kind == Nominal {
		idx := int(x[n.splitAttr])
		if idx < 0 {
			idx = 0
		}
		if idx >= len(n.children) {
			idx = len(n.children) - 1
		}
		return idx
	}
	if x[n.splitAttr] <= n.threshold {
		return 0
	}
	return 1
}

// reevaluate re-tests an internal node's split (EFDT): when a different
// attribute's gain now dominates the installed one by the Hoeffding bound,
// the stale subtree is discarded and the node re-splits on the winner.
func (t *Tree) reevaluate(n *node) {
	n.seenAtSplit = n.total()
	baseEntropy := entropy(n.classCounts)
	if baseEntropy == 0 {
		return
	}
	var best candidate
	var current candidate
	for ai, attr := range t.attrs {
		var c candidate
		if attr.Kind == Nominal {
			c = t.nominalCandidate(n, ai, baseEntropy)
		} else {
			c = t.numericCandidate(n, ai, baseEntropy)
		}
		if ai == n.splitAttr {
			current = c
		}
		if !c.valid {
			continue
		}
		if !best.valid || c.gain > best.gain {
			best = c
		}
	}
	if !best.valid || best.attr == n.splitAttr {
		return
	}
	currentGain := 0.0
	if current.valid {
		currentGain = current.gain
	}
	total := n.total()
	r := math.Log2(float64(len(t.classes)))
	eps := math.Sqrt(r * r * math.Log(1/t.cfg.Delta) / (2 * total))
	if best.gain-currentGain <= eps {
		return
	}
	// Kill the stale subtree and re-split on the winner.
	t.nodes -= t.subtreeSize(n) - 1
	n.children = nil
	t.split(n, best)
	t.resplits++
}

// subtreeSize counts the nodes rooted at n (including n).
func (t *Tree) subtreeSize(n *node) int {
	if n.isLeaf() {
		return 1
	}
	total := 1
	for _, c := range n.children {
		total += t.subtreeSize(c)
	}
	return total
}

// Predict classifies an instance via the configured leaf strategy, or 0
// when the tree has seen nothing.
func (t *Tree) Predict(x []float64) int {
	leaf := t.sortToLeaf(x)
	if p := t.leafPredict(leaf, x); p >= 0 {
		return p
	}
	return 0
}

// leafPredict applies the leaf strategy; -1 for an empty leaf.
func (t *Tree) leafPredict(leaf *node, x []float64) int {
	switch t.cfg.Leaf {
	case NaiveBayes:
		return t.naiveBayes(leaf, x)
	case NaiveBayesAdaptive:
		if leaf.nbCorrect > leaf.mcCorrect {
			return t.naiveBayes(leaf, x)
		}
		return leaf.majority()
	default:
		return leaf.majority()
	}
}

// naiveBayes scores argmax log P(c) + Σ log P(xᵢ|c) from the leaf's
// observers, with Laplace smoothing on nominal counts and the per-class
// Gaussians on numeric attributes. Falls back to majority when the leaf
// has no observers (e.g. plain-VFDT internal statistics were discarded).
func (t *Tree) naiveBayes(leaf *node, x []float64) int {
	total := leaf.total()
	if total == 0 {
		return -1
	}
	if leaf.nominal == nil && leaf.numeric == nil {
		return leaf.majority()
	}
	best, bestLL := -1, math.Inf(-1)
	for cls, cc := range leaf.classCounts {
		if cc == 0 {
			continue
		}
		ll := math.Log(cc / total)
		for ai, attr := range t.attrs {
			if attr.Kind == Nominal {
				obs := leaf.nominal[ai]
				if obs == nil {
					continue
				}
				v := int(x[ai])
				if v < 0 {
					v = 0
				}
				if v >= len(obs.counts) {
					v = len(obs.counts) - 1
				}
				ll += math.Log((obs.counts[v][cls] + 1) / (cc + float64(attr.NumValues)))
			} else {
				obs := leaf.numeric[ai]
				if obs == nil {
					continue
				}
				g := &obs.perClass[cls]
				if g.n < 2 {
					continue
				}
				sd := math.Sqrt(g.variance())
				if sd < 1e-9 {
					sd = 1e-9
				}
				d := (x[ai] - g.mean) / sd
				ll += -0.5*d*d - math.Log(sd)
			}
		}
		if ll > bestLL {
			best, bestLL = cls, ll
		}
	}
	if best < 0 {
		return leaf.majority()
	}
	return best
}

// PredictProba returns the normalized class distribution at the instance's
// leaf (uniform for an empty leaf).
func (t *Tree) PredictProba(x []float64) []float64 {
	leaf := t.sortToLeaf(x)
	out := make([]float64, len(t.classes))
	total := leaf.total()
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, c := range leaf.classCounts {
		out[i] = c / total
	}
	return out
}

// candidate is a potential split of one attribute.
type candidate struct {
	attr      int
	gain      float64
	threshold float64 // numeric only
	valid     bool
}

// attemptSplit evaluates the Hoeffding bound at a leaf.
func (t *Tree) attemptSplit(leaf *node) {
	leaf.seenAtSplit = leaf.total()
	baseEntropy := entropy(leaf.classCounts)
	if baseEntropy == 0 {
		return // pure leaf: nothing to gain
	}
	best, second := candidate{}, candidate{}
	for ai, attr := range t.attrs {
		var c candidate
		if attr.Kind == Nominal {
			c = t.nominalCandidate(leaf, ai, baseEntropy)
		} else {
			c = t.numericCandidate(leaf, ai, baseEntropy)
		}
		if !c.valid {
			continue
		}
		if c.gain > best.gain || !best.valid {
			second = best
			best = c
		} else if c.gain > second.gain || !second.valid {
			second = c
		}
	}
	if !best.valid || best.gain <= 0 {
		return
	}
	n := leaf.total()
	r := math.Log2(float64(len(t.classes)))
	eps := math.Sqrt(r * r * math.Log(1/t.cfg.Delta) / (2 * n))
	secondGain := 0.0
	if second.valid {
		secondGain = second.gain
	}
	if best.gain-secondGain > eps || eps < t.cfg.TieThreshold {
		t.split(leaf, best)
	}
}

// nominalCandidate computes the info gain of a multiway nominal split.
func (t *Tree) nominalCandidate(leaf *node, ai int, baseEntropy float64) candidate {
	obs := leaf.nominal[ai]
	if obs == nil {
		return candidate{}
	}
	total := leaf.total()
	weighted := 0.0
	nonEmpty := 0
	for _, counts := range obs.counts {
		sub := 0.0
		for _, c := range counts {
			sub += c
		}
		if sub == 0 {
			continue
		}
		nonEmpty++
		weighted += sub / total * entropy(counts)
	}
	if nonEmpty < 2 {
		return candidate{} // splitting on a constant attribute is useless
	}
	return candidate{attr: ai, gain: baseEntropy - weighted, valid: true}
}

// numericCandidate evaluates equally spaced thresholds between the observed
// min and max, estimating the class distribution on each side from the
// per-class Gaussians (WEKA's Gaussian approximation).
func (t *Tree) numericCandidate(leaf *node, ai int, baseEntropy float64) candidate {
	obs := leaf.numeric[ai]
	if obs == nil || !obs.seen || obs.max <= obs.min {
		return candidate{}
	}
	total := leaf.total()
	bestGain, bestThresh := -1.0, 0.0
	k := t.cfg.NumCandidates
	left := make([]float64, len(t.classes))
	right := make([]float64, len(t.classes))
	for i := 1; i <= k; i++ {
		thresh := obs.min + (obs.max-obs.min)*float64(i)/float64(k+1)
		lTot, rTot := 0.0, 0.0
		for cls := range t.classes {
			g := &obs.perClass[cls]
			below := g.n * g.cdf(thresh)
			left[cls] = below
			right[cls] = g.n - below
			lTot += below
			rTot += g.n - below
		}
		if lTot < 1 || rTot < 1 {
			continue
		}
		gain := baseEntropy - (lTot/total*entropy(left) + rTot/total*entropy(right))
		if gain > bestGain {
			bestGain, bestThresh = gain, thresh
		}
	}
	if bestGain < 0 {
		return candidate{}
	}
	return candidate{attr: ai, gain: bestGain, threshold: bestThresh, valid: true}
}

// split converts a leaf into an internal node. Children start with the
// parent's class distribution projected through the observer so Majority
// Class predictions stay sensible immediately after the split.
func (t *Tree) split(leaf *node, c candidate) {
	attr := t.attrs[c.attr]
	var children []*node
	if attr.Kind == Nominal {
		obs := leaf.nominal[c.attr]
		children = make([]*node, attr.NumValues)
		for v := range children {
			child := t.newLeaf(leaf.depth + 1)
			if obs != nil {
				copy(child.classCounts, obs.counts[v])
			}
			children[v] = child
		}
	} else {
		obs := leaf.numeric[c.attr]
		lo, hi := t.newLeaf(leaf.depth+1), t.newLeaf(leaf.depth+1)
		for cls := range t.classes {
			g := &obs.perClass[cls]
			below := g.n * g.cdf(c.threshold)
			lo.classCounts[cls] = below
			hi.classCounts[cls] = g.n - below
		}
		children = []*node{lo, hi}
	}
	leaf.children = children
	leaf.splitAttr = c.attr
	leaf.threshold = c.threshold
	if !t.cfg.ReevaluateSplits {
		// Plain VFDT discards the observers once split; EFDT keeps them so
		// the split can be re-tested later.
		leaf.nominal = nil
		leaf.numeric = nil
	}
	t.nodes += len(children)
	t.splits++
}

// entropy is Shannon entropy in bits of an unnormalized count vector.
func entropy(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Depth returns the maximum leaf depth.
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.isLeaf() {
			return n.depth
		}
		d := n.depth
		for _, c := range n.children {
			if cd := walk(c); cd > d {
				d = cd
			}
		}
		return d
	}
	return walk(t.root)
}

// Reset wipes the tree back to a single empty leaf — the paper's manual
// retraining trigger (§V-D) rebuilds from here.
func (t *Tree) Reset() {
	t.root = t.newLeaf(0)
	t.nodes = 1
	t.instances = 0
	t.splits = 0
	t.resplits = 0
}
