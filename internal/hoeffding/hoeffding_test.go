package hoeffding

import (
	"math"
	"math/rand"
	"testing"
)

// twoClassNominal is a helper schema: one binary nominal attribute, two
// classes.
func twoClassNominal() *Tree {
	return New(
		[]Attribute{{Name: "a", Kind: Nominal, NumValues: 2}},
		[]string{"no", "yes"},
		Config{GracePeriod: 50},
	)
}

func TestEmptyTreePredicts(t *testing.T) {
	tr := twoClassNominal()
	if got := tr.Predict([]float64{0}); got != 0 {
		t.Errorf("empty Predict = %d", got)
	}
	p := tr.PredictProba([]float64{1})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("empty PredictProba = %v", p)
	}
	if tr.NodeCount() != 1 || tr.Depth() != 0 {
		t.Errorf("empty tree shape: nodes=%d depth=%d", tr.NodeCount(), tr.Depth())
	}
}

func TestLearnsNominalFunction(t *testing.T) {
	// class = attribute value, deterministic.
	tr := twoClassNominal()
	for i := 0; i < 1000; i++ {
		v := float64(i % 2)
		tr.Learn([]float64{v}, i%2)
	}
	if tr.Splits() == 0 {
		t.Fatal("no split on a perfectly predictive attribute")
	}
	if got := tr.Predict([]float64{0}); got != 0 {
		t.Errorf("Predict(0) = %d", got)
	}
	if got := tr.Predict([]float64{1}); got != 1 {
		t.Errorf("Predict(1) = %d", got)
	}
}

func TestMajorityClassBeforeSplit(t *testing.T) {
	tr := twoClassNominal()
	// Fewer than the grace period: no split possible, majority rules.
	for i := 0; i < 30; i++ {
		tr.Learn([]float64{float64(i % 2)}, 1)
	}
	for i := 0; i < 10; i++ {
		tr.Learn([]float64{float64(i % 2)}, 0)
	}
	if tr.Splits() != 0 {
		t.Fatal("split before grace period")
	}
	if got := tr.Predict([]float64{0}); got != 1 {
		t.Errorf("majority Predict = %d, want 1", got)
	}
}

func TestLearnsNumericThreshold(t *testing.T) {
	// class = v > 0.6, numeric attribute.
	tr := New(
		[]Attribute{{Name: "v", Kind: Numeric}},
		[]string{"lo", "hi"},
		Config{GracePeriod: 100},
	)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := rng.Float64()
		cls := 0
		if v > 0.6 {
			cls = 1
		}
		tr.Learn([]float64{v}, cls)
	}
	if tr.Splits() == 0 {
		t.Fatal("no split on a separable numeric attribute")
	}
	correct := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		v := rng.Float64()
		want := 0
		if v > 0.6 {
			want = 1
		}
		if tr.Predict([]float64{v}) == want {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.9 {
		t.Errorf("numeric threshold accuracy %.3f", acc)
	}
}

func TestPicksInformativeAttribute(t *testing.T) {
	// Attribute 1 is pure noise; attribute 0 decides the class. The first
	// split must use attribute 0.
	tr := New(
		[]Attribute{
			{Name: "signal", Kind: Nominal, NumValues: 2},
			{Name: "noise", Kind: Nominal, NumValues: 2},
		},
		[]string{"a", "b"},
		Config{GracePeriod: 100},
	)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		sig := float64(rng.Intn(2))
		noise := float64(rng.Intn(2))
		tr.Learn([]float64{sig, noise}, int(sig))
	}
	if tr.Splits() == 0 {
		t.Fatal("no split")
	}
	if tr.root.isLeaf() || tr.root.splitAttr != 0 {
		t.Errorf("root split on attribute %d, want 0", tr.root.splitAttr)
	}
}

func TestXorNeedsTwoLevels(t *testing.T) {
	// class = a XOR b: no single attribute is informative, but two levels
	// of splits solve it. The tie threshold lets VFDT split anyway and the
	// second level separates the classes.
	tr := New(
		[]Attribute{
			{Name: "a", Kind: Nominal, NumValues: 2},
			{Name: "b", Kind: Nominal, NumValues: 2},
		},
		[]string{"zero", "one"},
		Config{GracePeriod: 100, TieThreshold: 0.1},
	)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		tr.Learn([]float64{float64(a), float64(b)}, a^b)
	}
	correct := 0
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if tr.Predict([]float64{float64(a), float64(b)}) == a^b {
				correct++
			}
		}
	}
	if correct < 4 {
		t.Errorf("XOR: %d/4 correct (depth=%d splits=%d)", correct, tr.Depth(), tr.Splits())
	}
}

func TestIncrementalAccuracyImproves(t *testing.T) {
	// Prequential evaluation on a 3-class problem driven by a mix of one
	// nominal and one numeric attribute: later accuracy must beat early
	// accuracy (the paper's "learning accuracy significantly improves over
	// time").
	attrs := []Attribute{
		{Name: "qtype", Kind: Nominal, NumValues: 3},
		{Name: "size", Kind: Numeric},
	}
	tr := New(attrs, []string{"c0", "c1", "c2"}, Config{})
	rng := rand.New(rand.NewSource(4))
	label := func(qt int, size float64) int {
		switch qt {
		case 0:
			return 0
		case 1:
			if size > 0.5 {
				return 1
			}
			return 2
		default:
			return 1
		}
	}
	evalEvery := 2000
	var first, last float64
	for block := 0; block < 10; block++ {
		correct := 0
		for i := 0; i < evalEvery; i++ {
			qt := rng.Intn(3)
			size := rng.Float64()
			x := []float64{float64(qt), size}
			want := label(qt, size)
			if tr.Predict(x) == want {
				correct++
			}
			tr.Learn(x, want)
		}
		acc := float64(correct) / float64(evalEvery)
		if block == 0 {
			first = acc
		}
		if block == 9 {
			last = acc
		}
	}
	if last < 0.95 {
		t.Errorf("final prequential accuracy %.3f", last)
	}
	if last <= first {
		t.Errorf("accuracy did not improve: first %.3f, last %.3f", first, last)
	}
}

func TestNoSplitOnPureLeaf(t *testing.T) {
	tr := twoClassNominal()
	for i := 0; i < 1000; i++ {
		tr.Learn([]float64{float64(i % 2)}, 0) // always class 0
	}
	if tr.Splits() != 0 {
		t.Errorf("pure stream caused %d splits", tr.Splits())
	}
}

func TestNoSplitOnConstantAttribute(t *testing.T) {
	tr := twoClassNominal()
	rng := rand.New(rand.NewSource(5))
	// Attribute always 0, labels random: nothing to split on.
	for i := 0; i < 5000; i++ {
		tr.Learn([]float64{0}, rng.Intn(2))
	}
	if tr.Splits() != 0 {
		t.Errorf("constant attribute caused %d splits", tr.Splits())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	tr := New(
		[]Attribute{{Name: "v", Kind: Numeric}},
		[]string{"a", "b"},
		Config{GracePeriod: 50, MaxDepth: 2, TieThreshold: 0.5},
	)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50000; i++ {
		v := rng.Float64()
		cls := 0
		if int(v*16)%2 == 1 { // a striped function needing depth
			cls = 1
		}
		tr.Learn([]float64{v}, cls)
	}
	if d := tr.Depth(); d > 2 {
		t.Errorf("Depth = %d exceeds MaxDepth 2", d)
	}
}

func TestOutOfRangeNominalClamped(t *testing.T) {
	tr := twoClassNominal()
	for i := 0; i < 500; i++ {
		tr.Learn([]float64{float64(i % 2)}, i%2)
	}
	// Prediction with an out-of-range nominal value must not panic.
	_ = tr.Predict([]float64{7})
	_ = tr.Predict([]float64{-3})
	tr.Learn([]float64{9}, 1) // clamped to the last value
}

func TestLearnPanicsOnBadInput(t *testing.T) {
	tr := twoClassNominal()
	for name, fn := range map[string]func(){
		"wrong width": func() { tr.Learn([]float64{1, 2}, 0) },
		"bad class":   func() { tr.Learn([]float64{0}, 5) },
		"neg class":   func() { tr.Learn([]float64{0}, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"one class":   func() { New(nil, []string{"only"}, Config{}) },
		"bad nominal": func() { New([]Attribute{{Kind: Nominal, NumValues: 1}}, []string{"a", "b"}, Config{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestReset(t *testing.T) {
	tr := twoClassNominal()
	for i := 0; i < 2000; i++ {
		tr.Learn([]float64{float64(i % 2)}, i%2)
	}
	if tr.Splits() == 0 {
		t.Fatal("setup: expected splits")
	}
	tr.Reset()
	if tr.NodeCount() != 1 || tr.Instances() != 0 || tr.Splits() != 0 {
		t.Errorf("Reset incomplete: nodes=%d instances=%d splits=%d",
			tr.NodeCount(), tr.Instances(), tr.Splits())
	}
	if got := tr.Predict([]float64{1}); got != 0 {
		t.Errorf("post-Reset Predict = %d", got)
	}
}

func TestPredictProbaSums(t *testing.T) {
	tr := twoClassNominal()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		v := rng.Intn(2)
		cls := v
		if rng.Float64() < 0.2 {
			cls = 1 - cls
		}
		tr.Learn([]float64{float64(v)}, cls)
	}
	for v := 0; v < 2; v++ {
		p := tr.PredictProba([]float64{float64(v)})
		sum := p[0] + p[1]
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("proba sums to %v", sum)
		}
		if p[v] < 0.6 {
			t.Errorf("p[%d] = %v, want dominant", v, p[v])
		}
	}
}

func TestEntropy(t *testing.T) {
	tests := []struct {
		counts []float64
		want   float64
	}{
		{[]float64{0, 0}, 0},
		{[]float64{5, 0}, 0},
		{[]float64{5, 5}, 1},
		{[]float64{1, 1, 1, 1}, 2},
		{[]float64{3, 1}, 0.8112781244591328},
	}
	for _, tc := range tests {
		if got := entropy(tc.counts); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("entropy(%v) = %v, want %v", tc.counts, got, tc.want)
		}
	}
}

func TestGaussianCDF(t *testing.T) {
	var g gaussian
	if got := g.cdf(0); got != 0.5 {
		t.Errorf("empty gaussian cdf = %v", got)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		g.add(rng.NormFloat64()*2 + 10)
	}
	if math.Abs(g.mean-10) > 0.1 {
		t.Errorf("mean = %v", g.mean)
	}
	if math.Abs(g.cdf(10)-0.5) > 0.02 {
		t.Errorf("cdf(mean) = %v", g.cdf(10))
	}
	if math.Abs(g.cdf(12)-0.8413) > 0.02 {
		t.Errorf("cdf(+1σ) = %v", g.cdf(12))
	}
	// Zero-variance gaussian: step function.
	var g2 gaussian
	g2.add(5)
	g2.add(5)
	if g2.cdf(4.9) != 0 || g2.cdf(5.1) != 1 {
		t.Errorf("degenerate cdf: %v / %v", g2.cdf(4.9), g2.cdf(5.1))
	}
}

func BenchmarkLearn(b *testing.B) {
	attrs := []Attribute{
		{Name: "qtype", Kind: Nominal, NumValues: 3},
		{Name: "est", Kind: Nominal, NumValues: 6},
		{Name: "acc", Kind: Numeric},
		{Name: "lat", Kind: Numeric},
		{Name: "err", Kind: Numeric},
	}
	tr := New(attrs, []string{"H4096", "RSL", "RSH", "AASP", "FFN", "SPN"}, Config{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := []float64{float64(rng.Intn(3)), float64(rng.Intn(6)), rng.Float64(), rng.Float64(), rng.Float64()}
		tr.Learn(x, rng.Intn(6))
	}
}

func BenchmarkPredict(b *testing.B) {
	attrs := []Attribute{
		{Name: "qtype", Kind: Nominal, NumValues: 3},
		{Name: "size", Kind: Numeric},
	}
	tr := New(attrs, []string{"a", "b", "c"}, Config{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		x := []float64{float64(rng.Intn(3)), rng.Float64()}
		tr.Learn(x, rng.Intn(3))
	}
	x := []float64{1, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Predict(x)
	}
}
