package hoeffding

import (
	"math/rand"
	"testing"
)

// leafStrategyProblem: within any leaf the numeric attribute still carries
// class signal, so Naive Bayes (which reads the leaf's observers) should
// beat Majority Class before splits catch up. A single numeric attribute
// with three class bands works: early in training there is exactly one
// leaf, where MC is right ~1/3 of the time and NB nearly always.
func leafStrategyProblem(rng *rand.Rand) ([]float64, int) {
	v := rng.Float64()
	cls := 0
	switch {
	case v > 0.66:
		cls = 2
	case v > 0.33:
		cls = 1
	}
	return []float64{v}, cls
}

func prequential(t *testing.T, strategy LeafStrategy, n int, seed int64) float64 {
	t.Helper()
	tr := New(
		[]Attribute{{Name: "v", Kind: Numeric}},
		[]string{"a", "b", "c"},
		Config{GracePeriod: 10_000, Leaf: strategy}, // huge grace: leaf-only regime
	)
	rng := rand.New(rand.NewSource(seed))
	correct := 0
	for i := 0; i < n; i++ {
		x, cls := leafStrategyProblem(rng)
		if tr.Predict(x) == cls {
			correct++
		}
		tr.Learn(x, cls)
	}
	return float64(correct) / float64(n)
}

func TestNaiveBayesLeavesBeatMajorityPreSplit(t *testing.T) {
	mc := prequential(t, MajorityClass, 3000, 1)
	nb := prequential(t, NaiveBayes, 3000, 1)
	if mc > 0.45 {
		t.Fatalf("majority class suspiciously good pre-split: %.3f", mc)
	}
	if nb < 0.85 {
		t.Fatalf("naive bayes leaves should dominate pre-split: %.3f", nb)
	}
	if nb <= mc+0.2 {
		t.Errorf("nb %.3f vs mc %.3f: expected a wide gap", nb, mc)
	}
}

func TestNaiveBayesAdaptiveTracksBetterPredictor(t *testing.T) {
	ad := prequential(t, NaiveBayesAdaptive, 3000, 2)
	nb := prequential(t, NaiveBayes, 3000, 2)
	// Adaptive should converge to NB here (within a warm-up gap).
	if ad < nb-0.1 {
		t.Errorf("adaptive %.3f lags naive bayes %.3f", ad, nb)
	}
}

func TestNaiveBayesNominalAttributes(t *testing.T) {
	// Class = attribute value with 10% noise; one giant leaf. NB reads the
	// per-value counts and recovers the mapping.
	tr := New(
		[]Attribute{{Name: "a", Kind: Nominal, NumValues: 3}},
		[]string{"x", "y", "z"},
		Config{GracePeriod: 1 << 20, Leaf: NaiveBayes},
	)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := rng.Intn(3)
		cls := v
		if rng.Float64() < 0.1 {
			cls = rng.Intn(3)
		}
		tr.Learn([]float64{float64(v)}, cls)
	}
	for v := 0; v < 3; v++ {
		if got := tr.Predict([]float64{float64(v)}); got != v {
			t.Errorf("Predict(%d) = %d", v, got)
		}
	}
}

func TestNaiveBayesEmptyAndDegenerateLeaves(t *testing.T) {
	tr := New(
		[]Attribute{{Name: "v", Kind: Numeric}},
		[]string{"a", "b"},
		Config{Leaf: NaiveBayes},
	)
	// Empty tree predicts 0 without panicking.
	if got := tr.Predict([]float64{0.5}); got != 0 {
		t.Errorf("empty Predict = %d", got)
	}
	// Single observation: Gaussian has n<2, NB falls back gracefully.
	tr.Learn([]float64{0.5}, 1)
	if got := tr.Predict([]float64{0.5}); got != 1 {
		t.Errorf("one-shot Predict = %d", got)
	}
}

func TestNaiveBayesWithEFDT(t *testing.T) {
	// The strategies compose: EFDT keeps observers at internal nodes, NB
	// leaves keep predicting; nothing panics and accuracy is sane.
	tr := New(
		[]Attribute{
			{Name: "a", Kind: Nominal, NumValues: 2},
			{Name: "v", Kind: Numeric},
		},
		[]string{"x", "y"},
		Config{GracePeriod: 100, Leaf: NaiveBayesAdaptive, ReevaluateSplits: true},
	)
	rng := rand.New(rand.NewSource(4))
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		a := rng.Intn(2)
		v := rng.Float64()
		cls := a
		if i > 10000 { // drift: numeric takes over
			cls = 0
			if v > 0.5 {
				cls = 1
			}
		}
		x := []float64{float64(a), v}
		if i > 15000 {
			if tr.Predict(x) == cls {
				correct++
			}
			total++
		}
		tr.Learn(x, cls)
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("EFDT+NB post-drift accuracy %.3f", acc)
	}
}
