package hoeffding

import "github.com/spatiotext/latest/internal/persist"

// SaveState serializes the tree: shape fingerprint, counters, then a
// preorder node walk. Observer maps are written in ascending attribute
// index order so the encoding is deterministic regardless of map iteration
// order. Node depths re-derive from the walk.
func (t *Tree) SaveState(e *persist.Enc) {
	e.Int(len(t.attrs))
	e.Int(len(t.classes))
	e.Int(t.nodes)
	e.Int(t.instances)
	e.Int(t.splits)
	e.Int(t.resplits)
	t.saveNode(e, t.root)
}

func (t *Tree) saveNode(e *persist.Enc, n *node) {
	e.Bool(n.isLeaf())
	if !n.isLeaf() {
		e.Int(n.splitAttr)
		e.F64(n.threshold)
		e.Int(len(n.children))
	}
	e.F64s(n.classCounts)
	e.F64(n.seenAtSplit)
	e.F64(n.mcCorrect)
	e.F64(n.nbCorrect)

	e.Bool(n.nominal != nil)
	if n.nominal != nil {
		saved := 0
		for ai := range t.attrs {
			if n.nominal[ai] != nil {
				saved++
			}
		}
		e.Int(saved)
		for ai := range t.attrs {
			obs := n.nominal[ai]
			if obs == nil {
				continue
			}
			e.Int(ai)
			e.Int(len(obs.counts))
			for _, row := range obs.counts {
				e.F64s(row)
			}
		}
	}
	e.Bool(n.numeric != nil)
	if n.numeric != nil {
		saved := 0
		for ai := range t.attrs {
			if n.numeric[ai] != nil {
				saved++
			}
		}
		e.Int(saved)
		for ai := range t.attrs {
			obs := n.numeric[ai]
			if obs == nil {
				continue
			}
			e.Int(ai)
			for ci := range obs.perClass {
				g := &obs.perClass[ci]
				e.F64(g.n)
				e.F64(g.mean)
				e.F64(g.m2)
			}
			e.F64(obs.min)
			e.F64(obs.max)
			e.Bool(obs.seen)
		}
	}
	if !n.isLeaf() {
		for _, c := range n.children {
			t.saveNode(e, c)
		}
	}
}

// LoadState restores a tree saved with the same attribute/class schema.
// The restore is atomic: the receiver is untouched on error.
func (t *Tree) LoadState(d *persist.Dec) error {
	const op = "hoeffding tree"
	attrs := d.Int()
	classes := d.Int()
	nodes := d.Int()
	instances := d.Int()
	splits := d.Int()
	resplits := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if attrs != len(t.attrs) || classes != len(t.classes) {
		return persist.Errf(persist.CodeMismatch, op,
			"schema %d attrs / %d classes, receiver has %d / %d",
			attrs, classes, len(t.attrs), len(t.classes))
	}
	if nodes < 1 {
		return persist.Errf(persist.CodeMalformed, op, "node count %d", nodes)
	}
	read := 1
	root, err := t.loadNode(d, 0, &read, nodes)
	if err != nil {
		return err
	}
	if read != nodes {
		return persist.Errf(persist.CodeMalformed, op, "%d nodes decoded, header says %d", read, nodes)
	}
	t.root, t.nodes, t.instances, t.splits, t.resplits = root, nodes, instances, splits, resplits
	return nil
}

func (t *Tree) loadNode(d *persist.Dec, depth int, read *int, limit int) (*node, error) {
	const op = "hoeffding node"
	if depth > t.cfg.MaxDepth {
		return nil, persist.Errf(persist.CodeMalformed, op, "depth exceeds max %d", t.cfg.MaxDepth)
	}
	leaf := d.Bool()
	splitAttr, childCount := 0, 0
	threshold := 0.0
	if !leaf {
		splitAttr = d.Int()
		threshold = d.F64()
		childCount = d.Int()
	}
	classCounts := d.F64s()
	seenAtSplit := d.F64()
	mcCorrect := d.F64()
	nbCorrect := d.F64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(classCounts) != len(t.classes) {
		return nil, persist.Errf(persist.CodeMismatch, op, "%d class counts, tree has %d classes", len(classCounts), len(t.classes))
	}
	n := &node{
		classCounts: classCounts,
		seenAtSplit: seenAtSplit,
		mcCorrect:   mcCorrect,
		nbCorrect:   nbCorrect,
		depth:       depth,
	}
	if d.Bool() { // nominal observers present
		n.nominal = make(map[int]*nominalObserver)
		count := d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if count < 0 || count > len(t.attrs) {
			return nil, persist.Errf(persist.CodeMalformed, op, "%d nominal observers", count)
		}
		for i := 0; i < count; i++ {
			ai := d.Int()
			values := d.Int()
			if d.Err() != nil {
				return nil, d.Err()
			}
			if ai < 0 || ai >= len(t.attrs) || t.attrs[ai].Kind != Nominal {
				return nil, persist.Errf(persist.CodeMalformed, op, "nominal observer on attribute %d", ai)
			}
			if values != t.attrs[ai].NumValues {
				return nil, persist.Errf(persist.CodeMismatch, op, "attribute %d has %d values, schema says %d", ai, values, t.attrs[ai].NumValues)
			}
			obs := &nominalObserver{counts: make([][]float64, values)}
			for v := 0; v < values; v++ {
				row := d.F64s()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if len(row) != len(t.classes) {
					return nil, persist.Errf(persist.CodeMismatch, op, "observer row has %d classes, tree has %d", len(row), len(t.classes))
				}
				obs.counts[v] = row
			}
			n.nominal[ai] = obs
		}
	}
	if d.Bool() { // numeric observers present
		n.numeric = make(map[int]*numericObserver)
		count := d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if count < 0 || count > len(t.attrs) {
			return nil, persist.Errf(persist.CodeMalformed, op, "%d numeric observers", count)
		}
		for i := 0; i < count; i++ {
			ai := d.Int()
			if d.Err() != nil {
				return nil, d.Err()
			}
			if ai < 0 || ai >= len(t.attrs) || t.attrs[ai].Kind != Numeric {
				return nil, persist.Errf(persist.CodeMalformed, op, "numeric observer on attribute %d", ai)
			}
			obs := newNumericObserver(len(t.classes))
			for ci := range obs.perClass {
				obs.perClass[ci].n = d.F64()
				obs.perClass[ci].mean = d.F64()
				obs.perClass[ci].m2 = d.F64()
			}
			obs.min = d.F64()
			obs.max = d.F64()
			obs.seen = d.Bool()
			if d.Err() != nil {
				return nil, d.Err()
			}
			n.numeric[ai] = obs
		}
	}
	if leaf {
		return n, nil
	}
	if splitAttr < 0 || splitAttr >= len(t.attrs) {
		return nil, persist.Errf(persist.CodeMalformed, op, "split attribute %d of %d", splitAttr, len(t.attrs))
	}
	want := 2
	if t.attrs[splitAttr].Kind == Nominal {
		want = t.attrs[splitAttr].NumValues
	}
	if childCount != want {
		return nil, persist.Errf(persist.CodeMalformed, op, "%d children for attribute %d, want %d", childCount, splitAttr, want)
	}
	*read += childCount
	if *read > limit {
		return nil, persist.Errf(persist.CodeMalformed, op, "more nodes than the header's %d", limit)
	}
	n.splitAttr = splitAttr
	n.threshold = threshold
	n.children = make([]*node, childCount)
	for i := range n.children {
		child, err := t.loadNode(d, depth+1, read, limit)
		if err != nil {
			return nil, err
		}
		n.children[i] = child
	}
	return n, nil
}
