// Package index implements full (non-approximate) spatial-keyword indexes:
// a uniform Grid index and a bucket PR QuadTree index. Unlike the
// estimators, these answer RC-DVQ queries *exactly* by enumerating the
// matching objects — the work a query processor actually performs — which
// is precisely why Table I reports them costing an order of magnitude more
// latency than the estimator LATEST picks. They also serve as the "execute
// on actual data" stage whose results feed the system logs.
package index

import (
	"fmt"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// Index is a full spatial-keyword index over the sliding window.
type Index interface {
	// Name identifies the index in Table I rows.
	Name() string
	// Insert adds an object; timestamps must be non-decreasing.
	Insert(o *stream.Object)
	// Search enumerates the IDs of window objects matching the query. The
	// result slice is freshly allocated.
	Search(q *stream.Query) []uint64
	// Count returns the exact number of matches (Search without
	// materializing IDs).
	Count(q *stream.Query) int
	// Len returns the number of live objects retained.
	Len() int
	// MemoryBytes approximates the index footprint.
	MemoryBytes() int
}

// Grid is a uniform-grid spatial index: each cell stores its objects in
// arrival order. Eviction pops expired objects from cell fronts during a
// periodic sweep; queries simply skip objects outside the window.
type Grid struct {
	grid  *geo.Grid
	span  int64
	cells [][]stream.Object
	heads []int
	live  int

	sinceSweep int
	lastTs     int64
}

// gridSweepEvery is how many inserts pass between eviction sweeps.
const gridSweepEvery = 4096

// NewGrid builds a grid index with the given total cell count (a perfect
// square) over world, retaining span milliseconds.
func NewGrid(world geo.Rect, cells int, span int64) *Grid {
	g := geo.NewSquareGrid(world, cells)
	return &Grid{
		grid:  g,
		span:  span,
		cells: make([][]stream.Object, g.NumCells()),
		heads: make([]int, g.NumCells()),
	}
}

// Name implements Index.
func (g *Grid) Name() string { return "Grid" }

// Len implements Index.
func (g *Grid) Len() int { return g.live }

// Insert implements Index.
func (g *Grid) Insert(o *stream.Object) {
	c := g.grid.CellOf(o.Loc)
	g.cells[c] = append(g.cells[c], *o)
	g.live++
	g.lastTs = o.Timestamp
	g.sinceSweep++
	if g.sinceSweep >= gridSweepEvery {
		g.sweep(o.Timestamp - g.span)
	}
}

// sweep removes expired objects from every cell front. Within a cell,
// objects are in arrival order, so expiry is always a prefix.
func (g *Grid) sweep(cutoff int64) {
	g.sinceSweep = 0
	for ci := range g.cells {
		cell := g.cells[ci]
		h := g.heads[ci]
		for h < len(cell) && cell[h].Timestamp < cutoff {
			h++
			g.live--
		}
		if h*2 >= len(cell) && h > 32 {
			n := copy(cell, cell[h:])
			g.cells[ci] = cell[:n]
			h = 0
		}
		g.heads[ci] = h
	}
}

// Search implements Index.
func (g *Grid) Search(q *stream.Query) []uint64 {
	var out []uint64
	g.scan(q, func(o *stream.Object) { out = append(out, o.ID) })
	return out
}

// Count implements Index.
func (g *Grid) Count(q *stream.Query) int {
	n := 0
	g.scan(q, func(o *stream.Object) { n++ })
	return n
}

// scan visits every matching live object. Spatial queries prune to the
// overlapping cells; keyword-only queries scan all cells — a spatial index
// has no better access path for them, which Table I's latency reflects.
func (g *Grid) scan(q *stream.Query, fn func(o *stream.Object)) {
	cutoff := q.Timestamp - g.span
	visit := func(ci int) {
		cell := g.cells[ci]
		for i := g.heads[ci]; i < len(cell); i++ {
			o := &cell[i]
			if o.Timestamp < cutoff || o.Timestamp > q.Timestamp {
				continue
			}
			if q.Matches(o) {
				fn(o)
			}
		}
	}
	if q.HasRange {
		cr := g.grid.CellsOverlapping(q.Range)
		g.grid.ForEachCell(cr, func(idx int, _ geo.Rect) bool {
			visit(idx)
			return true
		})
		return
	}
	for ci := range g.cells {
		visit(ci)
	}
}

// MemoryBytes implements Index.
func (g *Grid) MemoryBytes() int {
	b := 64
	for ci := range g.cells {
		b += 64*cap(g.cells[ci]) + 24
	}
	return b
}

// String summarizes state for diagnostics.
func (g *Grid) String() string {
	return fmt.Sprintf("Grid{cells=%d live=%d}", g.grid.NumCells(), g.live)
}
