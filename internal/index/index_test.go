package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

const testSpan = 10_000

func builders() []struct {
	name string
	f    func() Index
} {
	return []struct {
		name string
		f    func() Index
	}{
		{"Grid", func() Index { return NewGrid(geo.UnitSquare, 4096, testSpan) }},
		{"QuadTree", func() Index { return NewQuadTree(geo.UnitSquare, testSpan) }},
	}
}

func genObj(rng *rand.Rand, id uint64, ts int64) stream.Object {
	kws := []string{fmt.Sprintf("kw%d", rng.Intn(30))}
	if rng.Intn(2) == 0 {
		kws = append(kws, fmt.Sprintf("kw%d", rng.Intn(30)))
	}
	return stream.Object{
		ID:        id,
		Loc:       geo.Pt(rng.Float64(), rng.Float64()),
		Keywords:  kws,
		Timestamp: ts,
	}
}

func genQuery(rng *rand.Rand, ts int64) stream.Query {
	switch rng.Intn(3) {
	case 0:
		return stream.SpatialQ(randRect(rng), ts)
	case 1:
		return stream.KeywordQ([]string{fmt.Sprintf("kw%d", rng.Intn(30))}, ts)
	default:
		return stream.HybridQ(randRect(rng), []string{fmt.Sprintf("kw%d", rng.Intn(30))}, ts)
	}
}

func randRect(rng *rand.Rand) geo.Rect {
	return geo.CenteredRect(geo.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.4+0.02, rng.Float64()*0.4+0.02)
}

// TestIndexesMatchOracle verifies both full indexes return exactly the
// oracle's answers (IDs, not just counts) across mixed query types and
// window churn.
func TestIndexesMatchOracle(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			idx := b.f()
			var all []stream.Object
			rng := rand.New(rand.NewSource(77))
			ts := int64(0)
			for i := 0; i < 20000; i++ {
				ts += int64(rng.Intn(3))
				o := genObj(rng, uint64(i), ts)
				all = append(all, o)
				idx.Insert(&o)

				if i%701 == 0 {
					q := genQuery(rng, ts)
					got := idx.Search(&q)
					want := bruteIDs(all, &q, ts-testSpan)
					sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
					if len(got) != len(want) {
						t.Fatalf("at %d, %v: got %d ids, want %d", i, q, len(got), len(want))
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("at %d: id mismatch at %d: %d vs %d", i, j, got[j], want[j])
						}
					}
					if c := idx.Count(&q); c != len(want) {
						t.Fatalf("Count = %d, want %d", c, len(want))
					}
				}
			}
		})
	}
}

func bruteIDs(objs []stream.Object, q *stream.Query, cutoff int64) []uint64 {
	var out []uint64
	for i := range objs {
		o := &objs[i]
		if o.Timestamp < cutoff || o.Timestamp > q.Timestamp {
			continue
		}
		if q.Matches(o) {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestEvictionBoundsMemory(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			idx := b.f()
			rng := rand.New(rand.NewSource(5))
			// 200k inserts at 1/ms: window holds only the last 10k.
			ts := int64(0)
			for i := 0; i < 200_000; i++ {
				ts++
				o := genObj(rng, uint64(i), ts)
				idx.Insert(&o)
			}
			// Live count must be near the window population (sweeps lag by
			// their amortization interval).
			live := idx.Len()
			if live < 9000 || live > 30_000 {
				t.Errorf("Len = %d, want ~10000 (bounded)", live)
			}
		})
	}
}

func TestQuadTreeStructure(t *testing.T) {
	qt := NewQuadTree(geo.UnitSquare, testSpan)
	if qt.Nodes() != 1 {
		t.Fatalf("fresh Nodes = %d", qt.Nodes())
	}
	rng := rand.New(rand.NewSource(9))
	ts := int64(0)
	for i := 0; i < 5000; i++ {
		ts++
		o := genObj(rng, uint64(i), ts)
		qt.Insert(&o)
	}
	if qt.Nodes() <= 1 {
		t.Error("quadtree never split")
	}
	if qt.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	if qt.String() == "" {
		t.Error("String empty")
	}
}

func TestQuadTreeRebuildKeepsAnswers(t *testing.T) {
	qt := NewQuadTree(geo.UnitSquare, 1000) // tiny window forces rebuilds
	var all []stream.Object
	rng := rand.New(rand.NewSource(13))
	ts := int64(0)
	for i := 0; i < 50_000; i++ {
		ts++
		o := genObj(rng, uint64(i), ts)
		all = append(all, o)
		qt.Insert(&o)
	}
	q := stream.SpatialQ(geo.CenteredRect(geo.Pt(0.5, 0.5), 0.5, 0.5), ts)
	got := qt.Count(&q)
	want := len(bruteIDs(all, &q, ts-1000))
	if got != want {
		t.Errorf("post-rebuild Count = %d, want %d", got, want)
	}
}

func TestGridKeywordScanMatches(t *testing.T) {
	g := NewGrid(geo.UnitSquare, 1024, testSpan)
	var all []stream.Object
	rng := rand.New(rand.NewSource(17))
	ts := int64(0)
	for i := 0; i < 10000; i++ {
		ts++
		o := genObj(rng, uint64(i), ts)
		all = append(all, o)
		g.Insert(&o)
	}
	q := stream.KeywordQ([]string{"kw0", "kw5"}, ts)
	if got, want := g.Count(&q), len(bruteIDs(all, &q, ts-testSpan)); got != want {
		t.Errorf("keyword Count = %d, want %d", got, want)
	}
}

func TestInvalidWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewQuadTree(geo.Rect{}, 100)
}

func BenchmarkGridSearch(b *testing.B) {
	g := NewGrid(geo.UnitSquare, 4096, 1_000_000)
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 100_000; i++ {
		ts++
		o := genObj(rng, uint64(i), ts)
		g.Insert(&o)
	}
	q := stream.HybridQ(geo.CenteredRect(geo.Pt(0.5, 0.5), 0.3, 0.3), []string{"kw0"}, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Count(&q)
	}
}

func BenchmarkQuadTreeSearch(b *testing.B) {
	qt := NewQuadTree(geo.UnitSquare, 1_000_000)
	rng := rand.New(rand.NewSource(1))
	ts := int64(0)
	for i := 0; i < 100_000; i++ {
		ts++
		o := genObj(rng, uint64(i), ts)
		qt.Insert(&o)
	}
	q := stream.HybridQ(geo.CenteredRect(geo.Pt(0.5, 0.5), 0.3, 0.3), []string{"kw0"}, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qt.Count(&q)
	}
}
