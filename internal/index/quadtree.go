package index

import (
	"fmt"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// QuadTree defaults.
const (
	qtLeafCapacity = 64
	qtMaxDepth     = 16
	// qtRebuildSlack: rebuild once expired objects exceed this fraction of
	// the tree's population.
	qtRebuildSlack = 0.5
	// qtCheckEvery is how many inserts pass between liveness censuses.
	qtCheckEvery = 4096
)

// QuadTree is a bucket PR quadtree storing full objects. Leaves split at
// qtLeafCapacity; expired objects become invisible to queries immediately
// (timestamp check) and are physically reclaimed by a full rebuild once
// they exceed half the population — the standard amortized approach for
// append-heavy streaming indexes.
type QuadTree struct {
	world geo.Rect
	span  int64
	root  *qtNode

	total      int // objects physically stored
	oldest     int64
	lastTs     int64
	nodes      int
	sinceCheck int
}

type qtNode struct {
	bounds   geo.Rect
	depth    int
	children *[4]*qtNode
	objs     []stream.Object
}

// NewQuadTree builds a quadtree index over world retaining span ms.
func NewQuadTree(world geo.Rect, span int64) *QuadTree {
	if world.Empty() || !world.Valid() {
		panic(fmt.Sprintf("index: invalid world %v", world))
	}
	return &QuadTree{
		world: world,
		span:  span,
		root:  &qtNode{bounds: world},
		nodes: 1,
	}
}

// Name implements Index.
func (t *QuadTree) Name() string { return "QuadTree" }

// Len implements Index: live (unexpired) objects.
func (t *QuadTree) Len() int {
	cutoff := t.lastTs - t.span
	n := 0
	t.walk(t.root, func(nd *qtNode) {
		for i := range nd.objs {
			if nd.objs[i].Timestamp >= cutoff {
				n++
			}
		}
	})
	return n
}

// Nodes returns the structural node count.
func (t *QuadTree) Nodes() int { return t.nodes }

func (t *QuadTree) walk(n *qtNode, fn func(*qtNode)) {
	fn(n)
	if n.children != nil {
		for _, c := range n.children {
			t.walk(c, fn)
		}
	}
}

// Insert implements Index.
func (t *QuadTree) Insert(o *stream.Object) {
	if t.total == 0 {
		t.oldest = o.Timestamp
	}
	t.lastTs = o.Timestamp
	t.insert(t.root, o)
	t.total++
	t.sinceCheck++
	// Rebuild when expired mass dominates. The liveness census is O(total),
	// so it only runs every qtCheckEvery inserts once the oldest stored
	// object has fallen out of the window.
	if t.sinceCheck >= qtCheckEvery {
		t.sinceCheck = 0
		cutoff := o.Timestamp - t.span
		if t.oldest < cutoff {
			if live := t.countLive(cutoff); float64(t.total-live) > qtRebuildSlack*float64(t.total) {
				t.rebuild(cutoff)
			}
		}
	}
}

func (t *QuadTree) insert(n *qtNode, o *stream.Object) {
	for n.children != nil {
		n = n.children[n.bounds.QuadrantOf(o.Loc)]
	}
	n.objs = append(n.objs, *o)
	if len(n.objs) > qtLeafCapacity && n.depth < qtMaxDepth {
		t.splitLeaf(n)
	}
}

func (t *QuadTree) splitLeaf(n *qtNode) {
	quads := n.bounds.Quadrants()
	var ch [4]*qtNode
	for i := range ch {
		ch[i] = &qtNode{bounds: quads[i], depth: n.depth + 1}
	}
	for i := range n.objs {
		o := &n.objs[i]
		c := ch[n.bounds.QuadrantOf(o.Loc)]
		c.objs = append(c.objs, *o)
	}
	n.objs = nil
	n.children = &ch
	t.nodes += 4
}

func (t *QuadTree) countLive(cutoff int64) int {
	n := 0
	t.walk(t.root, func(nd *qtNode) {
		for i := range nd.objs {
			if nd.objs[i].Timestamp >= cutoff {
				n++
			}
		}
	})
	return n
}

// rebuild reconstructs the tree from live objects only.
func (t *QuadTree) rebuild(cutoff int64) {
	var live []stream.Object
	t.walk(t.root, func(nd *qtNode) {
		for i := range nd.objs {
			if nd.objs[i].Timestamp >= cutoff {
				live = append(live, nd.objs[i])
			}
		}
	})
	t.root = &qtNode{bounds: t.world}
	t.nodes = 1
	t.total = len(live)
	// Survivors are all ≥ cutoff; cutoff is a safe lower bound for the
	// next census trigger (walk order is not arrival order, so live[0]
	// would not be the true oldest).
	t.oldest = cutoff
	for i := range live {
		t.insert(t.root, &live[i])
	}
}

// Search implements Index.
func (t *QuadTree) Search(q *stream.Query) []uint64 {
	var out []uint64
	t.scan(q, func(o *stream.Object) { out = append(out, o.ID) })
	return out
}

// Count implements Index.
func (t *QuadTree) Count(q *stream.Query) int {
	n := 0
	t.scan(q, func(o *stream.Object) { n++ })
	return n
}

func (t *QuadTree) scan(q *stream.Query, fn func(o *stream.Object)) {
	cutoff := q.Timestamp - t.span
	var rec func(n *qtNode)
	rec = func(n *qtNode) {
		if q.HasRange && !n.bounds.Intersects(q.Range) {
			return
		}
		if n.children != nil {
			for _, c := range n.children {
				rec(c)
			}
			return
		}
		for i := range n.objs {
			o := &n.objs[i]
			if o.Timestamp < cutoff || o.Timestamp > q.Timestamp {
				continue
			}
			if q.Matches(o) {
				fn(o)
			}
		}
	}
	rec(t.root)
}

// MemoryBytes implements Index.
func (t *QuadTree) MemoryBytes() int {
	b := 0
	t.walk(t.root, func(nd *qtNode) {
		b += 96 + 64*cap(nd.objs)
	})
	return b
}

// String summarizes state for diagnostics.
func (t *QuadTree) String() string {
	return fmt.Sprintf("QuadTree{nodes=%d stored=%d}", t.nodes, t.total)
}
