// Package kmv implements the K-Minimum-Values distinct-value synopsis of
// Bar-Yossef et al. ("Counting Distinct Elements in a Data Stream"), the
// component the AASP estimator uses to summarise the keyword dimension of a
// spatio-textual stream.
//
// A KMV synopsis hashes every element onto [0,1) and retains only the k
// smallest distinct hash values. If the k-th smallest value is u, the
// distinct count is estimated as (k-1)/u. Synopses over disjoint streams
// merge losslessly (union the sets, keep the k smallest), which is what the
// windowed variant exploits: a sliding window is covered by a ring of
// per-time-slice synopses whose merge summarises exactly the live slices.
package kmv

import (
	"container/heap"
	"fmt"
)

// Hash64 hashes a string with FNV-1a followed by a murmur3-style finalizer.
// The finalizer matters: raw FNV-1a has weak avalanche in its upper bits for
// short keys, which would bias the k-th minimum and hence every estimate.
// All synopses in a process must use the same hash so merges are coherent.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// Mix64 is the murmur3 fmix64 finalizer: a bijective scramble giving
// near-ideal avalanche. Exposed for callers that pre-hash integers.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Unit maps a 64-bit hash onto [0, 1).
func Unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// maxHeap is a max-heap of hash values, so the largest of the k retained
// minima sits at the root and is evicted first.
type maxHeap []uint64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Synopsis retains the k smallest distinct hash values seen so far.
// The zero value is not usable; construct with New.
type Synopsis struct {
	k    int
	heap maxHeap
	set  map[uint64]struct{}
}

// New creates a synopsis of size k. Larger k costs more memory and gives a
// relative standard error of roughly 1/√(k-2).
func New(k int) *Synopsis {
	if k < 2 {
		panic(fmt.Sprintf("kmv: k must be at least 2, got %d", k))
	}
	return &Synopsis{k: k, set: make(map[uint64]struct{}, k)}
}

// K returns the synopsis size.
func (s *Synopsis) K() int { return s.k }

// Len returns how many distinct hash values are currently retained
// (min(k, distinct seen)).
func (s *Synopsis) Len() int { return len(s.heap) }

// Add observes a string element.
func (s *Synopsis) Add(elem string) { s.AddHash(Hash64(elem)) }

// AddHash observes a pre-hashed element.
func (s *Synopsis) AddHash(h uint64) {
	if _, dup := s.set[h]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.set[h] = struct{}{}
		heap.Push(&s.heap, h)
		return
	}
	if h >= s.heap[0] {
		return // not among the k smallest
	}
	delete(s.set, s.heap[0])
	s.set[h] = struct{}{}
	s.heap[0] = h
	heap.Fix(&s.heap, 0)
}

// Distinct estimates the number of distinct elements observed.
func (s *Synopsis) Distinct() float64 {
	if len(s.heap) < s.k {
		// Fewer than k distinct values seen: the synopsis is exact.
		return float64(len(s.heap))
	}
	u := Unit(s.heap[0])
	if u <= 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / u
}

// Merge folds other into s. Both synopses must use the same hash; the
// result summarises the union of the two input streams. other may have a
// different k; the receiver keeps its own k.
func (s *Synopsis) Merge(other *Synopsis) {
	if other == nil {
		return
	}
	for h := range other.set {
		s.AddHash(h)
	}
}

// Reset clears the synopsis for reuse.
func (s *Synopsis) Reset() {
	s.heap = s.heap[:0]
	for h := range s.set {
		delete(s.set, h)
	}
}

// Clone returns an independent copy of s.
func (s *Synopsis) Clone() *Synopsis {
	c := New(s.k)
	c.heap = append(c.heap[:0], s.heap...)
	for h := range s.set {
		c.set[h] = struct{}{}
	}
	return c
}

// MemoryBytes approximates the heap+set footprint, used by the memory-budget
// experiment (Fig. 13).
func (s *Synopsis) MemoryBytes() int {
	// Struct overhead plus 8 bytes per heap slot and ~48 bytes per map entry.
	return 64 + 8*cap(s.heap) + 48*len(s.set)
}

// Sliced is a sliding-window KMV: a ring of per-slice synopses. Advancing
// the window drops the oldest slice wholesale, which is the standard way to
// make a merge-able-but-not-deletable sketch windowed. Estimates are served
// from a merge of all live slices, cached until the ring changes.
type Sliced struct {
	k      int
	slices []*Synopsis
	cur    int

	merged *Synopsis // lazily rebuilt cache
	dirty  bool
}

// NewSliced creates a windowed synopsis with n ring slices of size k each.
func NewSliced(k, n int) *Sliced {
	if n < 1 {
		panic(fmt.Sprintf("kmv: slice count must be positive, got %d", n))
	}
	s := &Sliced{k: k, slices: make([]*Synopsis, n), dirty: true}
	for i := range s.slices {
		s.slices[i] = New(k)
	}
	return s
}

// Add observes an element in the current slice.
func (s *Sliced) Add(elem string) {
	s.slices[s.cur].Add(elem)
	s.dirty = true
}

// Advance rotates to the next slice, discarding the slice that falls out of
// the window.
func (s *Sliced) Advance() {
	s.cur = (s.cur + 1) % len(s.slices)
	s.slices[s.cur].Reset()
	s.dirty = true
}

// Distinct estimates the distinct elements across all live slices.
func (s *Sliced) Distinct() float64 {
	if s.dirty || s.merged == nil {
		if s.merged == nil {
			s.merged = New(s.k)
		} else {
			s.merged.Reset()
		}
		for _, sl := range s.slices {
			s.merged.Merge(sl)
		}
		s.dirty = false
	}
	return s.merged.Distinct()
}

// MemoryBytes approximates the total footprint across slices.
func (s *Sliced) MemoryBytes() int {
	total := 0
	for _, sl := range s.slices {
		total += sl.MemoryBytes()
	}
	return total
}
