package kmv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHash64Stability(t *testing.T) {
	// Hash64 is fmix64 applied to FNV-1a; guard the published FNV constants
	// through the bijective finalizer.
	if got := Hash64(""); got != Mix64(14695981039346656037) {
		t.Errorf("Hash64(\"\") = %d", got)
	}
	if got := Hash64("a"); got != Mix64(0xaf63dc4c8601ec8c) {
		t.Errorf("Hash64(\"a\") = %#x", got)
	}
	if Hash64("fire") == Hash64("rescue") {
		t.Error("distinct strings should hash differently")
	}
	if Hash64("fire") != Hash64("fire") {
		t.Error("hash must be deterministic")
	}
}

func TestHash64UpperBitsUniform(t *testing.T) {
	// Sequential short keys must land roughly uniformly on [0,1): this is
	// the property raw FNV-1a lacks and the finalizer restores.
	const n = 50000
	buckets := make([]int, 16)
	for i := 0; i < n; i++ {
		u := Unit(Hash64(fmt.Sprintf("kw%d", i)))
		buckets[int(u*16)]++
	}
	for b, c := range buckets {
		frac := float64(c) / n
		if frac < 0.04 || frac > 0.09 { // ideal 0.0625
			t.Errorf("bucket %d holds %.3f of mass", b, frac)
		}
	}
}

func TestUnitRange(t *testing.T) {
	f := func(h uint64) bool {
		u := Unit(h)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Unit(0) != 0 {
		t.Errorf("Unit(0) = %v", Unit(0))
	}
}

func TestSynopsisExactBelowK(t *testing.T) {
	s := New(64)
	for i := 0; i < 40; i++ {
		s.Add(fmt.Sprintf("kw%d", i))
	}
	// Re-adding duplicates changes nothing.
	for i := 0; i < 40; i++ {
		s.Add(fmt.Sprintf("kw%d", i))
	}
	if got := s.Distinct(); got != 40 {
		t.Errorf("Distinct = %v, want exactly 40", got)
	}
	if s.Len() != 40 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSynopsisEstimateAccuracy(t *testing.T) {
	const trueDistinct = 20000
	s := New(1024)
	for i := 0; i < trueDistinct; i++ {
		s.Add(fmt.Sprintf("elem-%d", i))
	}
	// Duplicates should not move the estimate.
	before := s.Distinct()
	for i := 0; i < trueDistinct; i += 3 {
		s.Add(fmt.Sprintf("elem-%d", i))
	}
	if s.Distinct() != before {
		t.Error("duplicates changed the estimate")
	}
	relErr := math.Abs(s.Distinct()-trueDistinct) / trueDistinct
	// Standard error at k=1024 is ~3%; 15% is a generous determinism-safe bound.
	if relErr > 0.15 {
		t.Errorf("relative error %.3f too high (estimate %v)", relErr, s.Distinct())
	}
}

func TestSynopsisMergeEquivalence(t *testing.T) {
	a, b, both := New(256), New(256), New(256)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		e := fmt.Sprintf("x%d", rng.Intn(8000))
		if i%2 == 0 {
			a.Add(e)
		} else {
			b.Add(e)
		}
		both.Add(e)
	}
	a.Merge(b)
	if got, want := a.Distinct(), both.Distinct(); math.Abs(got-want)/want > 0.1 {
		t.Errorf("merged estimate %v differs from direct %v", got, want)
	}
	a.Merge(nil) // must be a no-op
}

func TestSynopsisKeepsSmallestK(t *testing.T) {
	s := New(4)
	hashes := []uint64{500, 100, 900, 300, 200, 800, 50}
	for _, h := range hashes {
		s.AddHash(h)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The retained set must be {50, 100, 200, 300}.
	for _, h := range []uint64{50, 100, 200, 300} {
		if _, ok := s.set[h]; !ok {
			t.Errorf("missing retained hash %d; set=%v", h, s.set)
		}
	}
	if s.heap[0] != 300 {
		t.Errorf("heap max = %d, want 300", s.heap[0])
	}
}

func TestSynopsisCloneIndependent(t *testing.T) {
	s := New(16)
	for i := 0; i < 10; i++ {
		s.Add(fmt.Sprintf("a%d", i))
	}
	c := s.Clone()
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("b%d", i))
	}
	if s.Distinct() != 10 {
		t.Errorf("clone mutated original: %v", s.Distinct())
	}
	if c.Distinct() != 16 { // capped at k=16 retained, but still <k... 20 distinct > 16
		// 20 distinct with k=16 means estimation kicks in; just sanity-bound it.
		if c.Distinct() < 12 || c.Distinct() > 40 {
			t.Errorf("clone estimate wild: %v", c.Distinct())
		}
	}
}

func TestSynopsisResetAndPanics(t *testing.T) {
	s := New(8)
	s.Add("x")
	s.Reset()
	if s.Len() != 0 || s.Distinct() != 0 {
		t.Error("Reset left state behind")
	}
	defer func() {
		if recover() == nil {
			t.Error("New(1) should panic")
		}
	}()
	New(1)
}

func TestSlicedWindowEviction(t *testing.T) {
	s := NewSliced(256, 4)
	// Slice 0: elements a0..a999; slices 1..3: nothing new.
	for i := 0; i < 1000; i++ {
		s.Add(fmt.Sprintf("a%d", i))
	}
	est := s.Distinct()
	if math.Abs(est-1000)/1000 > 0.2 {
		t.Fatalf("initial estimate %v", est)
	}
	// After 3 advances the a-slice is still live (ring size 4).
	s.Advance()
	s.Advance()
	s.Advance()
	if got := s.Distinct(); math.Abs(got-est) > 1e-9 {
		t.Fatalf("estimate changed while slice still live: %v -> %v", est, got)
	}
	// Fourth advance overwrites the a-slice: estimate drops to ~0.
	s.Advance()
	if got := s.Distinct(); got != 0 {
		t.Fatalf("after eviction Distinct = %v, want 0", got)
	}
}

func TestSlicedMixedSlices(t *testing.T) {
	s := NewSliced(512, 3)
	for i := 0; i < 500; i++ {
		s.Add(fmt.Sprintf("s0-%d", i))
	}
	s.Advance()
	for i := 0; i < 500; i++ {
		s.Add(fmt.Sprintf("s1-%d", i))
	}
	got := s.Distinct()
	if math.Abs(got-1000)/1000 > 0.2 {
		t.Fatalf("two-slice distinct = %v, want ~1000", got)
	}
	s.Advance()
	s.Advance() // evicts slice 0
	got = s.Distinct()
	if math.Abs(got-500)/500 > 0.2 {
		t.Fatalf("after evicting first slice Distinct = %v, want ~500", got)
	}
}

func TestSlicedPanicsOnBadSliceCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSliced(8, 0) should panic")
		}
	}()
	NewSliced(8, 0)
}

func TestMemoryBytesGrowsWithK(t *testing.T) {
	small, large := New(64), New(1024)
	for i := 0; i < 5000; i++ {
		e := fmt.Sprintf("m%d", i)
		small.Add(e)
		large.Add(e)
	}
	if small.MemoryBytes() >= large.MemoryBytes() {
		t.Errorf("memory: k=64 %d >= k=1024 %d", small.MemoryBytes(), large.MemoryBytes())
	}
	sl := NewSliced(64, 8)
	if sl.MemoryBytes() <= 0 {
		t.Error("sliced memory should be positive")
	}
}

// Property: Distinct never exceeds the true distinct count by more than a
// loose multiplicative factor for adversarial small inputs, and is exact
// below k.
func TestDistinctNeverNegative(t *testing.T) {
	f := func(elems []string) bool {
		s := New(32)
		seen := map[string]struct{}{}
		for _, e := range elems {
			s.Add(e)
			seen[e] = struct{}{}
		}
		d := s.Distinct()
		if d < 0 {
			return false
		}
		if len(seen) < 32 && d != float64(len(seen)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSynopsisAdd(b *testing.B) {
	s := New(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddHash(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkSlicedDistinct(b *testing.B) {
	s := NewSliced(1024, 16)
	for i := 0; i < 100_000; i++ {
		s.Add(fmt.Sprintf("e%d", i))
		if i%6250 == 0 {
			s.Advance()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.dirty = true // defeat the cache to measure a full merge
		_ = s.Distinct()
	}
}
