package kmv

import "github.com/spatiotext/latest/internal/persist"

// SaveState serializes the synopsis. The heap is written in slice layout
// order — heap layout determines future evictions, so a restored synopsis
// must keep the exact array, not just the same value set. The membership
// set is rebuilt from the heap on load.
func (s *Synopsis) SaveState(e *persist.Enc) {
	e.Int(s.k)
	e.U32(uint32(len(s.heap)))
	for _, h := range s.heap {
		e.U64(h)
	}
}

// LoadState restores a synopsis saved with the same k. The receiver is
// reset first; on error it must be discarded.
func (s *Synopsis) LoadState(d *persist.Dec) error {
	const op = "kmv synopsis"
	k := d.Int()
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if k != s.k {
		return persist.Errf(persist.CodeMismatch, op, "k %d, receiver built with %d", k, s.k)
	}
	if n < 0 || n > k || n*8 > d.Remaining() {
		return persist.Errf(persist.CodeMalformed, op, "heap length %d", n)
	}
	s.Reset()
	for i := 0; i < n; i++ {
		h := d.U64()
		if _, dup := s.set[h]; dup {
			return persist.Errf(persist.CodeMalformed, op, "duplicate hash %016x in heap", h)
		}
		s.heap = append(s.heap, h)
		s.set[h] = struct{}{}
	}
	return d.Err()
}

// SaveState serializes the windowed synopsis: shape, ring position and
// every slice. The merged cache is not saved; it rebuilds lazily.
func (s *Sliced) SaveState(e *persist.Enc) {
	e.Int(s.k)
	e.Int(len(s.slices))
	e.Int(s.cur)
	for _, sl := range s.slices {
		sl.SaveState(e)
	}
}

// LoadState restores a windowed synopsis saved with the same shape. On
// error the receiver must be discarded.
func (s *Sliced) LoadState(d *persist.Dec) error {
	const op = "kmv sliced"
	k := d.Int()
	n := d.Int()
	cur := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if k != s.k || n != len(s.slices) {
		return persist.Errf(persist.CodeMismatch, op, "shape k=%d n=%d, receiver k=%d n=%d", k, n, s.k, len(s.slices))
	}
	if cur < 0 || cur >= n {
		return persist.Errf(persist.CodeMalformed, op, "current slice %d of %d", cur, n)
	}
	for _, sl := range s.slices {
		if err := sl.LoadState(d); err != nil {
			return err
		}
	}
	s.cur = cur
	s.dirty = true
	return nil
}
