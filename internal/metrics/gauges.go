package metrics

import (
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/telemetry"
)

// FeedSampleInterval is the single-object ingest sampling rate: one Feed
// in every FeedSampleInterval is wrapped in clock reads and recorded into
// the feed-latency histogram. Power of two so the sampling test is a mask,
// not a division, on the hot path.
const FeedSampleInterval = 64

// ShardGauges is a set of lock-free per-shard operational counters and
// latency histograms. A sharded deployment keeps one per shard; the ingest
// and query paths update them with atomic adds (never taking the shard
// lock longer than needed), and Stats() readers take a consistent-enough
// Snapshot without stopping traffic.
//
// Latencies are kept as log-bucketed histograms (telemetry.Histogram), so
// snapshots carry p50/p95/p99/max — not just lifetime means.
type ShardGauges struct {
	feeds         atomic.Uint64
	reordered     atomic.Uint64
	occupancy     atomic.Int64
	prefillAsync  atomic.Uint64
	prefillInline atomic.Uint64

	validationRejected atomic.Uint64
	validationClamped  atomic.Uint64
	prefillQueueFull   atomic.Uint64

	// ingestRate is the rolling per-second feed rate, merged from its ring
	// only at read time; ingestBacklog is the shard's queued-but-unapplied
	// pipeline chunk count and ingestBackpressure counts hand-offs that
	// found the queue full and had to block.
	ingestRate         RollingCounter
	ingestBacklog      atomic.Int64
	ingestBackpressure atomic.Uint64

	feedHist  telemetry.Histogram // sampled single-object ingests
	batchHist telemetry.Histogram // whole FeedBatch calls
	queryHist telemetry.Histogram // estimate/execute cycles
}

// RecordFeeds counts n single-object ingests without sampling.
func (g *ShardGauges) RecordFeeds(n int) {
	g.feeds.Add(uint64(n))
	g.ingestRate.Add(time.Now(), n)
}

// RecordFeed counts one single-object ingest and reports whether the
// caller should time this one (1 in FeedSampleInterval) and hand the
// duration to RecordFeedLatency. The sampling decision rides on the feed
// counter itself, so the unsampled hot path pays exactly one atomic add.
func (g *ShardGauges) RecordFeed() (sample bool) {
	g.ingestRate.Add(time.Now(), 1)
	return g.feeds.Add(1)&(FeedSampleInterval-1) == 0
}

// RecordFeedLatency records one sampled single-object ingest duration.
func (g *ShardGauges) RecordFeedLatency(d time.Duration) { g.feedHist.Record(d) }

// RecordBatch counts one ingested batch of n objects and its duration.
func (g *ShardGauges) RecordBatch(n int, d time.Duration) {
	g.feeds.Add(uint64(n))
	g.ingestRate.Add(time.Now(), n)
	g.batchHist.Record(d)
}

// RecordQuery counts one estimate/execute cycle and its duration.
func (g *ShardGauges) RecordQuery(d time.Duration) { g.queryHist.Record(d) }

// RecordPrefill counts one estimator pre-fill replay by execution mode:
// async (the shard's background worker ran it) or inline (on the query
// path — either by configuration or as the fallback when the worker's
// queue was full).
func (g *ShardGauges) RecordPrefill(async bool) {
	if async {
		g.prefillAsync.Add(1)
	} else {
		g.prefillInline.Add(1)
	}
}

// RecordReordered counts an object whose timestamp had to be clamped to
// the shard's high-water mark (out-of-order arrival across producers).
func (g *ShardGauges) RecordReordered() { g.reordered.Add(1) }

// RecordValidationRejected counts one object or query refused by the input
// validation policy (NaN/Inf coordinates, unrepairable geometry, or any
// non-conforming input under the strict policy).
func (g *ShardGauges) RecordValidationRejected() { g.validationRejected.Add(1) }

// RecordValidationClamped counts one object or query the clamp policy
// repaired in place (coordinates pulled into the world, inverted rectangle
// corners swapped, regressed timestamp clamped forward).
func (g *ShardGauges) RecordValidationClamped() { g.validationClamped.Add(1) }

// RecordPrefillQueueFull counts one deferred pre-fill that found the
// shard's queue full and fell back to an inline replay — the backpressure
// signal that the queue depth is undersized for the switch rate.
func (g *ShardGauges) RecordPrefillQueueFull() { g.prefillQueueFull.Add(1) }

// RecordIngestBackpressure counts one feed hand-off that found the shard's
// ingest queue full and blocked until the feed worker caught up — the
// signal that the queue depth (or the shard count) is undersized for the
// producer rate.
func (g *ShardGauges) RecordIngestBackpressure() { g.ingestBackpressure.Add(1) }

// SetIngestBacklog publishes the shard's queued-but-unapplied ingest
// pipeline chunk count.
func (g *ShardGauges) SetIngestBacklog(n int) { g.ingestBacklog.Store(int64(n)) }

// SetOccupancy publishes the shard's live window size.
func (g *ShardGauges) SetOccupancy(n int) { g.occupancy.Store(int64(n)) }

// GaugeSnapshot is a point-in-time copy of a shard's gauges. It is a plain
// comparable value (the histograms use fixed-size bucket arrays).
type GaugeSnapshot struct {
	// Feeds is the lifetime ingested-object count (singles and batches).
	Feeds uint64
	// Batches is the lifetime ingested-batch count.
	Batches uint64
	// Queries is the lifetime estimate/execute count.
	Queries uint64
	// Reordered counts objects whose timestamps were clamped forward.
	Reordered uint64
	// PrefillsAsync and PrefillsInline count estimator pre-fill replays by
	// where they ran.
	PrefillsAsync  uint64
	PrefillsInline uint64
	// ValidationRejected counts inputs refused by the validation policy and
	// ValidationClamped inputs it repaired in place.
	ValidationRejected uint64
	ValidationClamped  uint64
	// PrefillQueueFull counts deferred pre-fills that hit a full queue and
	// fell back to an inline replay (backpressure events).
	PrefillQueueFull uint64
	// IngestRatePerSec is the trailing mean feed rate (objects/second over
	// the last RollingWindowSeconds completed seconds).
	IngestRatePerSec float64
	// IngestBacklog is the number of routed chunks queued to the shard's
	// feed worker but not yet applied; IngestBackpressure counts hand-offs
	// that found the queue full and blocked.
	IngestBacklog      int
	IngestBackpressure uint64
	// AvgBatchLatency is the mean wall-clock duration per ingested batch,
	// kept for dashboards that want a single number (derived from the
	// histogram).
	AvgBatchLatency time.Duration
	// AvgQueryLatency is the mean wall-clock duration per query.
	AvgQueryLatency time.Duration
	// Occupancy is the last published live window size.
	Occupancy int
	// FeedLatency holds sampled single-object ingest latencies (one in
	// FeedSampleInterval), BatchLatency per-batch ingest latencies, and
	// QueryLatency full estimate/execute cycles.
	FeedLatency  telemetry.HistSnapshot
	BatchLatency telemetry.HistSnapshot
	QueryLatency telemetry.HistSnapshot
}

// Snapshot reads the gauges. Each field is read atomically; fields are not
// mutually consistent under concurrent updates, which is fine for
// monitoring.
func (g *ShardGauges) Snapshot() GaugeSnapshot {
	s := GaugeSnapshot{
		Feeds:              g.feeds.Load(),
		Reordered:          g.reordered.Load(),
		PrefillsAsync:      g.prefillAsync.Load(),
		PrefillsInline:     g.prefillInline.Load(),
		ValidationRejected: g.validationRejected.Load(),
		ValidationClamped:  g.validationClamped.Load(),
		PrefillQueueFull:   g.prefillQueueFull.Load(),
		IngestRatePerSec:   g.ingestRate.RateAt(time.Now()),
		IngestBacklog:      int(g.ingestBacklog.Load()),
		IngestBackpressure: g.ingestBackpressure.Load(),
		Occupancy:          int(g.occupancy.Load()),
		FeedLatency:        g.feedHist.Snapshot(),
		BatchLatency:       g.batchHist.Snapshot(),
		QueryLatency:       g.queryHist.Snapshot(),
	}
	s.Batches = s.BatchLatency.Count
	s.Queries = s.QueryLatency.Count
	s.AvgBatchLatency = s.BatchLatency.Mean()
	s.AvgQueryLatency = s.QueryLatency.Mean()
	return s
}
