package metrics

import (
	"sync/atomic"
	"time"
)

// ShardGauges is a set of lock-free per-shard operational counters. A
// sharded deployment keeps one per shard; the ingest and query paths
// update them with atomic adds (never taking the shard lock longer than
// needed), and Stats() readers take a consistent-enough Snapshot without
// stopping traffic.
type ShardGauges struct {
	feeds      atomic.Uint64
	batches    atomic.Uint64
	queries    atomic.Uint64
	reordered  atomic.Uint64
	batchNanos atomic.Int64
	queryNanos atomic.Int64
	occupancy  atomic.Int64
}

// RecordFeeds counts n single-object ingests.
func (g *ShardGauges) RecordFeeds(n int) { g.feeds.Add(uint64(n)) }

// RecordBatch counts one ingested batch of n objects and its duration.
// Only batches are timed: wrapping every single-object Feed in two clock
// reads would tax the hot path the gauges exist to observe.
func (g *ShardGauges) RecordBatch(n int, d time.Duration) {
	g.feeds.Add(uint64(n))
	g.batches.Add(1)
	g.batchNanos.Add(int64(d))
}

// RecordQuery counts one estimate/execute cycle and its duration.
func (g *ShardGauges) RecordQuery(d time.Duration) {
	g.queries.Add(1)
	g.queryNanos.Add(int64(d))
}

// RecordReordered counts an object whose timestamp had to be clamped to
// the shard's high-water mark (out-of-order arrival across producers).
func (g *ShardGauges) RecordReordered() { g.reordered.Add(1) }

// SetOccupancy publishes the shard's live window size.
func (g *ShardGauges) SetOccupancy(n int) { g.occupancy.Store(int64(n)) }

// GaugeSnapshot is a point-in-time copy of a shard's gauges.
type GaugeSnapshot struct {
	// Feeds is the lifetime ingested-object count (singles and batches).
	Feeds uint64
	// Batches is the lifetime ingested-batch count.
	Batches uint64
	// Queries is the lifetime estimate/execute count.
	Queries uint64
	// Reordered counts objects whose timestamps were clamped forward.
	Reordered uint64
	// AvgBatchLatency is the mean wall-clock duration per ingested batch.
	AvgBatchLatency time.Duration
	// AvgQueryLatency is the mean wall-clock duration per query.
	AvgQueryLatency time.Duration
	// Occupancy is the last published live window size.
	Occupancy int
}

// Snapshot reads the gauges. Each field is read atomically; fields are not
// mutually consistent under concurrent updates, which is fine for
// monitoring.
func (g *ShardGauges) Snapshot() GaugeSnapshot {
	s := GaugeSnapshot{
		Feeds:     g.feeds.Load(),
		Batches:   g.batches.Load(),
		Queries:   g.queries.Load(),
		Reordered: g.reordered.Load(),
		Occupancy: int(g.occupancy.Load()),
	}
	if s.Batches > 0 {
		s.AvgBatchLatency = time.Duration(g.batchNanos.Load() / int64(s.Batches))
	}
	if s.Queries > 0 {
		s.AvgQueryLatency = time.Duration(g.queryNanos.Load() / int64(s.Queries))
	}
	return s
}
