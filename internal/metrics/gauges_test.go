package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestShardGauges(t *testing.T) {
	var g ShardGauges
	g.RecordFeeds(3)
	g.RecordBatch(7, 70*time.Millisecond)
	g.RecordBatch(3, 30*time.Millisecond)
	g.RecordQuery(10 * time.Millisecond)
	g.RecordQuery(30 * time.Millisecond)
	g.RecordReordered()
	g.SetOccupancy(42)

	s := g.Snapshot()
	if s.Feeds != 13 || s.Batches != 2 || s.Queries != 2 || s.Reordered != 1 || s.Occupancy != 42 {
		t.Errorf("snapshot counts = %+v", s)
	}
	if s.AvgBatchLatency != 50*time.Millisecond {
		t.Errorf("avg batch latency = %v", s.AvgBatchLatency)
	}
	if s.AvgQueryLatency != 20*time.Millisecond {
		t.Errorf("avg query latency = %v", s.AvgQueryLatency)
	}
}

func TestShardGaugesZero(t *testing.T) {
	var g ShardGauges
	s := g.Snapshot()
	if s != (GaugeSnapshot{}) {
		t.Errorf("zero gauges snapshot = %+v", s)
	}
}

// TestShardGaugesConcurrent hammers the gauges from many goroutines; the
// assertions are exact because every update is atomic. Run with -race.
func TestShardGaugesConcurrent(t *testing.T) {
	var g ShardGauges
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				g.RecordFeeds(1)
				g.RecordQuery(time.Microsecond)
				g.SetOccupancy(i)
			}
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Feeds != workers*each || s.Queries != workers*each {
		t.Errorf("feeds=%d queries=%d, want %d each", s.Feeds, s.Queries, workers*each)
	}
}
