package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestShardGauges(t *testing.T) {
	var g ShardGauges
	g.RecordFeeds(3)
	g.RecordBatch(7, 70*time.Millisecond)
	g.RecordBatch(3, 30*time.Millisecond)
	g.RecordQuery(10 * time.Millisecond)
	g.RecordQuery(30 * time.Millisecond)
	g.RecordReordered()
	g.SetOccupancy(42)

	s := g.Snapshot()
	if s.Feeds != 13 || s.Batches != 2 || s.Queries != 2 || s.Reordered != 1 || s.Occupancy != 42 {
		t.Errorf("snapshot counts = %+v", s)
	}
	if s.AvgBatchLatency != 50*time.Millisecond {
		t.Errorf("avg batch latency = %v", s.AvgBatchLatency)
	}
	if s.AvgQueryLatency != 20*time.Millisecond {
		t.Errorf("avg query latency = %v", s.AvgQueryLatency)
	}
}

func TestShardGaugesZero(t *testing.T) {
	var g ShardGauges
	s := g.Snapshot()
	if s != (GaugeSnapshot{}) {
		t.Errorf("zero gauges snapshot = %+v", s)
	}
}

// TestShardGaugesFeedSampling verifies the 1-in-N single-feed sampling
// cadence rides the feed counter exactly.
func TestShardGaugesFeedSampling(t *testing.T) {
	var g ShardGauges
	sampled := 0
	const n = 4 * FeedSampleInterval
	for i := 0; i < n; i++ {
		if g.RecordFeed() {
			sampled++
			g.RecordFeedLatency(time.Microsecond)
		}
	}
	if sampled != n/FeedSampleInterval {
		t.Errorf("sampled %d of %d feeds, want %d", sampled, n, n/FeedSampleInterval)
	}
	s := g.Snapshot()
	if s.Feeds != n {
		t.Errorf("feeds = %d, want %d", s.Feeds, n)
	}
	if s.FeedLatency.Count != uint64(sampled) {
		t.Errorf("feed histogram count = %d, want %d", s.FeedLatency.Count, sampled)
	}
	// Mixing RecordFeeds batch-style counting keeps the total coherent.
	g.RecordFeeds(5)
	if got := g.Snapshot().Feeds; got != n+5 {
		t.Errorf("feeds after RecordFeeds = %d, want %d", got, n+5)
	}
}

// TestShardGaugesHistograms verifies the latency histograms behind the
// derived averages expose percentiles and maxima.
func TestShardGaugesHistograms(t *testing.T) {
	var g ShardGauges
	for i := 0; i < 99; i++ {
		g.RecordQuery(100 * time.Microsecond)
	}
	g.RecordQuery(10 * time.Millisecond)
	s := g.Snapshot()
	if s.Queries != 100 {
		t.Fatalf("queries = %d", s.Queries)
	}
	if s.QueryLatency.Max != 10*time.Millisecond {
		t.Errorf("max = %v", s.QueryLatency.Max)
	}
	if p50 := s.QueryLatency.P50(); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want ~100µs", p50)
	}
	if p99 := s.QueryLatency.P99(); p99 < s.QueryLatency.P50() {
		t.Errorf("p99 %v below p50", p99)
	}
}

func TestShardGaugesPrefills(t *testing.T) {
	var g ShardGauges
	g.RecordPrefill(true)
	g.RecordPrefill(true)
	g.RecordPrefill(false)
	s := g.Snapshot()
	if s.PrefillsAsync != 2 || s.PrefillsInline != 1 {
		t.Errorf("prefills = async %d inline %d", s.PrefillsAsync, s.PrefillsInline)
	}
}

// TestShardGaugesConcurrent hammers the gauges from many goroutines; the
// assertions are exact because every update is atomic. Run with -race.
func TestShardGaugesConcurrent(t *testing.T) {
	var g ShardGauges
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				g.RecordFeeds(1)
				g.RecordQuery(time.Microsecond)
				g.SetOccupancy(i)
			}
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Feeds != workers*each || s.Queries != workers*each {
		t.Errorf("feeds=%d queries=%d, want %d each", s.Feeds, s.Queries, workers*each)
	}
}
