// Package metrics provides the measurement plumbing of the reproduction:
// estimation accuracy and error definitions, sliding-window averages (the
// τ-threshold monitor of §V-D), min-max feature normalizers (the α scaling
// of §V-C), exponential moving averages, latency trackers and time-series
// recorders for the figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// RelativeError returns |est-actual| / max(actual, 1). The floor of 1 keeps
// zero-selectivity queries well-defined: estimating 5 when the truth is 0 is
// an error of 5, not infinity.
func RelativeError(est, actual float64) float64 {
	denom := math.Max(actual, 1)
	return math.Abs(est-actual) / denom
}

// Accuracy is the paper's headline measure: 1 − relative error, clamped to
// [0,1] so wildly wrong estimates saturate at zero rather than going
// negative.
func Accuracy(est, actual float64) float64 {
	a := 1 - RelativeError(est, actual)
	if a < 0 {
		return 0
	}
	return a
}

// QError is the symmetric multiplicative error max(est/actual, actual/est),
// with both sides floored at 1 to keep zero counts finite. Perfect
// estimates score 1.
func QError(est, actual float64) float64 {
	e := math.Max(est, 1)
	a := math.Max(actual, 1)
	return math.Max(e/a, a/e)
}

// MinMax is an online min-max normalizer: it tracks the observed range of a
// feature and maps values onto [0,1] (§V-C scales both accuracy and latency
// this way before applying α).
type MinMax struct {
	min, max float64
	seen     bool
}

// Observe extends the tracked range with v.
func (m *MinMax) Observe(v float64) {
	if !m.seen {
		m.min, m.max, m.seen = v, v, true
		return
	}
	if v < m.min {
		m.min = v
	}
	if v > m.max {
		m.max = v
	}
}

// Normalize maps v onto [0,1] within the observed range, clamping values
// outside it. Before any observation, or with a degenerate range, it
// returns 0.5 (no information either way).
func (m *MinMax) Normalize(v float64) float64 {
	if !m.seen || m.max <= m.min {
		return 0.5
	}
	n := (v - m.min) / (m.max - m.min)
	if n < 0 {
		return 0
	}
	if n > 1 {
		return 1
	}
	return n
}

// Range returns the observed (min, max) and whether anything was observed.
func (m *MinMax) Range() (lo, hi float64, ok bool) { return m.min, m.max, m.seen }

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA creates an EWMA with smoothing factor alpha ∈ (0,1]; larger alpha
// weights recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha must be in (0,1], got %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds v into the average and returns the new value.
func (e *EWMA) Update(v float64) float64 {
	if !e.seen {
		e.value, e.seen = v, true
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Seen reports whether any sample has been folded in.
func (e *EWMA) Seen() bool { return e.seen }

// SlidingAverage is the mean of the most recent N samples — the paper's
// "average accuracy score over queries that arrived in the past time
// window", which the Estimator Adaptor compares against τ and β·τ.
type SlidingAverage struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

// NewSlidingAverage creates a window of size capacity.
func NewSlidingAverage(capacity int) *SlidingAverage {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: sliding window capacity must be positive, got %d", capacity))
	}
	return &SlidingAverage{buf: make([]float64, capacity)}
}

// Add inserts a sample, evicting the oldest when full.
func (s *SlidingAverage) Add(v float64) {
	if s.n == len(s.buf) {
		s.sum -= s.buf[s.next]
	} else {
		s.n++
	}
	s.buf[s.next] = v
	s.sum += v
	s.next = (s.next + 1) % len(s.buf)
}

// Mean returns the window mean, or 0 when empty.
func (s *SlidingAverage) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Len returns the number of live samples.
func (s *SlidingAverage) Len() int { return s.n }

// Full reports whether the window has reached capacity.
func (s *SlidingAverage) Full() bool { return s.n == len(s.buf) }

// Reset empties the window.
func (s *SlidingAverage) Reset() {
	s.n, s.next, s.sum = 0, 0, 0
}

// LatencyTracker accumulates durations and reports summary statistics. It
// retains every sample (estimation latencies are tiny) and sorts lazily.
type LatencyTracker struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// Add records one latency sample.
func (l *LatencyTracker) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sum += d
	l.sorted = false
}

// Count returns the number of samples.
func (l *LatencyTracker) Count() int { return len(l.samples) }

// Mean returns the average latency (0 when empty).
func (l *LatencyTracker) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / time.Duration(len(l.samples))
}

// Percentile returns the p-quantile (p ∈ [0,1]) by nearest-rank; 0 when
// empty.
func (l *LatencyTracker) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(math.Ceil(p*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Reset drops all samples.
func (l *LatencyTracker) Reset() {
	l.samples = l.samples[:0]
	l.sum = 0
	l.sorted = false
}

// Point is one time-series sample.
type Point struct {
	T float64 // x-axis position (e.g. the paper's t_0..t_100 timeline)
	V float64
}

// Series is a named time series, the raw material of every figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// MeanV returns the mean of the values, or 0 when empty.
func (s *Series) MeanV() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// At returns the value at the point whose T is nearest to t, or 0 on an
// empty series. Use AtOK when the caller needs to distinguish an empty
// series from a genuine zero sample.
func (s *Series) At(t float64) float64 {
	v, _ := s.AtOK(t)
	return v
}

// AtOK returns the value at the point whose T is nearest to t, and whether
// the series holds any points at all.
func (s *Series) AtOK(t float64) (float64, bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	best, bestD := 0, math.Inf(1)
	for i, p := range s.Points {
		if d := math.Abs(p.T - t); d < bestD {
			best, bestD = i, d
		}
	}
	return s.Points[best].V, true
}

// Welford tracks running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the sample standard deviation (0 with fewer than two
// observations).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
