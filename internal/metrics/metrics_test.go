package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRelativeErrorAndAccuracy(t *testing.T) {
	tests := []struct {
		est, actual float64
		wantErr     float64
		wantAcc     float64
	}{
		{100, 100, 0, 1},
		{50, 100, 0.5, 0.5},
		{150, 100, 0.5, 0.5},
		{300, 100, 2, 0},     // accuracy clamps at 0
		{5, 0, 5, 0},         // zero actual: floor denominator at 1
		{0, 0, 0, 1},         // both zero: perfect
		{0.5, 0.4, 0.1, 0.9}, // sub-1 actuals also floored
		{90, 100, 0.1, 0.9},
	}
	for _, tc := range tests {
		if got := RelativeError(tc.est, tc.actual); math.Abs(got-tc.wantErr) > 1e-12 {
			t.Errorf("RelativeError(%v,%v) = %v, want %v", tc.est, tc.actual, got, tc.wantErr)
		}
		if got := Accuracy(tc.est, tc.actual); math.Abs(got-tc.wantAcc) > 1e-12 {
			t.Errorf("Accuracy(%v,%v) = %v, want %v", tc.est, tc.actual, got, tc.wantAcc)
		}
	}
}

func TestAccuracyBounds(t *testing.T) {
	f := func(est, actual float64) bool {
		if math.IsNaN(est) || math.IsInf(est, 0) || math.IsNaN(actual) || math.IsInf(actual, 0) {
			return true
		}
		a := Accuracy(math.Abs(est), math.Abs(actual))
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQError(t *testing.T) {
	tests := []struct {
		est, actual, want float64
	}{
		{100, 100, 1},
		{200, 100, 2},
		{50, 100, 2},
		{0, 100, 100}, // floored est
		{0, 0, 1},
	}
	for _, tc := range tests {
		if got := QError(tc.est, tc.actual); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("QError(%v,%v) = %v, want %v", tc.est, tc.actual, got, tc.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	var m MinMax
	if got := m.Normalize(5); got != 0.5 {
		t.Errorf("unseeded Normalize = %v, want 0.5", got)
	}
	m.Observe(10)
	if got := m.Normalize(10); got != 0.5 {
		t.Errorf("degenerate-range Normalize = %v, want 0.5", got)
	}
	m.Observe(20)
	tests := []struct{ v, want float64 }{
		{10, 0}, {20, 1}, {15, 0.5}, {5, 0}, {25, 1},
	}
	for _, tc := range tests {
		if got := m.Normalize(tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Normalize(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	lo, hi, ok := m.Range()
	if !ok || lo != 10 || hi != 20 {
		t.Errorf("Range = %v,%v,%v", lo, hi, ok)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seen() || e.Value() != 0 {
		t.Error("fresh EWMA should be unseen and zero")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Errorf("first update = %v, want 10", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Errorf("second update = %v, want 15", e.Value())
	}
	e.Update(15)
	if e.Value() != 15 {
		t.Errorf("third update = %v, want 15", e.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewEWMA(0) should panic")
		}
	}()
	NewEWMA(0)
}

func TestSlidingAverage(t *testing.T) {
	s := NewSlidingAverage(3)
	if s.Mean() != 0 || s.Len() != 0 || s.Full() {
		t.Error("fresh window state wrong")
	}
	s.Add(1)
	s.Add(2)
	if got := s.Mean(); got != 1.5 {
		t.Errorf("Mean = %v", got)
	}
	s.Add(3)
	if !s.Full() || s.Mean() != 2 {
		t.Errorf("full window Mean = %v", s.Mean())
	}
	s.Add(10) // evicts 1
	if got := s.Mean(); got != 5 {
		t.Errorf("after eviction Mean = %v, want 5", got)
	}
	s.Reset()
	if s.Len() != 0 || s.Mean() != 0 {
		t.Error("Reset incomplete")
	}
	// Long stream: sum drift stays negligible.
	for i := 0; i < 100000; i++ {
		s.Add(float64(i % 7))
	}
	want := float64((99999%7 + 99998%7 + 99997%7)) / 3
	if math.Abs(s.Mean()-want) > 1e-9 {
		t.Errorf("drift: Mean = %v, want %v", s.Mean(), want)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSlidingAverage(0) should panic")
		}
	}()
	NewSlidingAverage(0)
}

func TestLatencyTracker(t *testing.T) {
	var l LatencyTracker
	if l.Mean() != 0 || l.Percentile(0.5) != 0 || l.Count() != 0 {
		t.Error("empty tracker should report zeros")
	}
	for _, d := range []time.Duration{5, 1, 9, 3, 7} {
		l.Add(d * time.Millisecond)
	}
	if l.Count() != 5 {
		t.Errorf("Count = %d", l.Count())
	}
	if got := l.Mean(); got != 5*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := l.Percentile(0.5); got != 5*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
	if got := l.Percentile(1.0); got != 9*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	if got := l.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("P0 = %v", got)
	}
	// Adding after a sort keeps stats correct.
	l.Add(11 * time.Millisecond)
	if got := l.Percentile(1.0); got != 11*time.Millisecond {
		t.Errorf("P100 after add = %v", got)
	}
	l.Reset()
	if l.Count() != 0 || l.Mean() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "acc"
	s.Add(0, 0.5)
	s.Add(50, 0.7)
	s.Add(100, 0.9)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.MeanV(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("MeanV = %v", got)
	}
	if got := s.At(49); got != 0.7 {
		t.Errorf("At(49) = %v", got)
	}
	if got := s.At(-10); got != 0.5 {
		t.Errorf("At(-10) = %v", got)
	}
	var empty Series
	if empty.MeanV() != 0 {
		t.Error("empty MeanV should be 0")
	}
	// Regression: At on an empty series used to panic mid-experiment; it
	// must degrade to zero, with AtOK carrying the emptiness signal.
	if got := empty.At(0); got != 0 {
		t.Errorf("empty At(0) = %v, want 0", got)
	}
	if v, ok := empty.AtOK(0); ok || v != 0 {
		t.Errorf("empty AtOK(0) = (%v, %v), want (0, false)", v, ok)
	}
	if v, ok := s.AtOK(49); !ok || v != 0.7 {
		t.Errorf("AtOK(49) = (%v, %v), want (0.7, true)", v, ok)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.Count() != 0 {
		t.Error("fresh Welford state wrong")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Sample stddev of the classic dataset is ~2.138.
	if math.Abs(w.StdDev()-2.138089935299395) > 1e-9 {
		t.Errorf("StdDev = %v", w.StdDev())
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
}
