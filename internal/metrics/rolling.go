package metrics

import (
	"sync/atomic"
	"time"
)

// rollingBuckets is the ring size of a RollingCounter: one bucket per
// wall-clock second, power of two so bucket selection is a mask. It must
// exceed rollingWindow by enough slack that a slow reader never races the
// writer recycling the bucket it is summing.
const (
	rollingBuckets = 16
	// RollingWindowSeconds is the span a RollingCounter's rate averages
	// over: the trailing completed seconds before the read instant.
	RollingWindowSeconds = 10
)

// RollingCounter is a lock-free rolling-window event counter: a fixed ring
// of per-second buckets, each stamped with the epoch second it covers.
// Writers touch exactly one bucket per Add (a stamp check plus an atomic
// add); the trailing rate is merged from the ring only at read time, so
// the hot path never contends with scrapes.
//
// The stamp check-then-reset is not atomic across racing writers on the
// same fresh second — a handful of events can be dropped at a bucket
// boundary under multi-writer use. The sharded engine gives each shard's
// counter a single writer (the shard's feed worker), where the race cannot
// occur; either way this is monitoring, not accounting.
type RollingCounter struct {
	slots [rollingBuckets]rollingSlot
}

type rollingSlot struct {
	sec   atomic.Int64
	count atomic.Uint64
}

// Add records n events at time t.
func (r *RollingCounter) Add(t time.Time, n int) {
	sec := t.Unix()
	s := &r.slots[int(sec&(rollingBuckets-1))]
	if s.sec.Load() != sec {
		// Recycle the bucket for the new second it now covers.
		s.sec.Store(sec)
		s.count.Store(0)
	}
	s.count.Add(uint64(n))
}

// RateAt returns the mean events/second over the RollingWindowSeconds
// completed seconds before t. The current (partial) second is excluded so
// the rate never dips just because the second it is read in has barely
// started.
func (r *RollingCounter) RateAt(t time.Time) float64 {
	now := t.Unix()
	var total uint64
	for i := range r.slots {
		s := &r.slots[i]
		if sec := s.sec.Load(); sec >= now-RollingWindowSeconds && sec < now {
			total += s.count.Load()
		}
	}
	return float64(total) / RollingWindowSeconds
}
