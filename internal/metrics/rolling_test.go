package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestRollingCounterRate(t *testing.T) {
	var r RollingCounter
	base := time.Unix(1_700_000_000, 0)
	// 100 events in each of the 10 seconds before the read instant.
	for s := 0; s < RollingWindowSeconds; s++ {
		r.Add(base.Add(time.Duration(s)*time.Second), 100)
	}
	read := base.Add(RollingWindowSeconds * time.Second)
	if got := r.RateAt(read); got != 100 {
		t.Errorf("RateAt = %v, want 100", got)
	}
	// The current partial second must not count.
	r.Add(read, 1_000_000)
	if got := r.RateAt(read); got != 100 {
		t.Errorf("RateAt with partial second = %v, want 100", got)
	}
}

func TestRollingCounterExpiry(t *testing.T) {
	var r RollingCounter
	base := time.Unix(1_700_000_000, 0)
	r.Add(base, 500)
	// Just inside the window: still counted.
	if got := r.RateAt(base.Add(RollingWindowSeconds * time.Second)); got != 50 {
		t.Errorf("RateAt inside window = %v, want 50", got)
	}
	// One second later the bucket has aged out.
	if got := r.RateAt(base.Add((RollingWindowSeconds + 1) * time.Second)); got != 0 {
		t.Errorf("RateAt past window = %v, want 0", got)
	}
}

func TestRollingCounterBucketRecycle(t *testing.T) {
	var r RollingCounter
	base := time.Unix(1_700_000_000, 0)
	r.Add(base, 7)
	// rollingBuckets seconds later the same slot is reused; the stale
	// count must not leak into the new second.
	later := base.Add(rollingBuckets * time.Second)
	r.Add(later, 3)
	want := 3.0 / RollingWindowSeconds
	if got := r.RateAt(later.Add(time.Second)); got != want {
		t.Errorf("RateAt after recycle = %v, want %v", got, want)
	}
}

func TestRollingCounterConcurrentReads(t *testing.T) {
	// Readers must never race the single writer (the -race build checks
	// the memory model; values are only loosely asserted).
	var r RollingCounter
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.RateAt(time.Now())
				}
			}
		}()
	}
	for i := 0; i < 10_000; i++ {
		r.Add(time.Now(), 1)
	}
	close(stop)
	wg.Wait()
}
