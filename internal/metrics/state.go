package metrics

import "github.com/spatiotext/latest/internal/persist"

// State codecs for the incremental statistics that survive a snapshot.
// Alpha (EWMA) and capacity (SlidingAverage) come from the constructor, so
// only the accumulated values are written; the restore side validates shape
// against the receiver.

// SaveState serializes the normalizer.
func (m *MinMax) SaveState(e *persist.Enc) {
	e.F64(m.min)
	e.F64(m.max)
	e.Bool(m.seen)
}

// LoadState restores a saved normalizer.
func (m *MinMax) LoadState(d *persist.Dec) error {
	min := d.F64()
	max := d.F64()
	seen := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	m.min, m.max, m.seen = min, max, seen
	return nil
}

// SaveState serializes the average's accumulated value.
func (e *EWMA) SaveState(enc *persist.Enc) {
	enc.F64(e.value)
	enc.Bool(e.seen)
}

// LoadState restores a saved average into a receiver built with the same
// alpha.
func (e *EWMA) LoadState(d *persist.Dec) error {
	value := d.F64()
	seen := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	e.value, e.seen = value, seen
	return nil
}

// SaveState serializes the window including the incremental sum — the sum
// is not recomputed on load because float addition is order-sensitive and a
// recomputed sum could diverge from the original by an ulp.
func (s *SlidingAverage) SaveState(e *persist.Enc) {
	e.F64s(s.buf)
	e.Int(s.next)
	e.Int(s.n)
	e.F64(s.sum)
}

// LoadState restores a window saved with the same capacity.
func (s *SlidingAverage) LoadState(d *persist.Dec) error {
	const op = "sliding average"
	buf := d.F64s()
	next := d.Int()
	n := d.Int()
	sum := d.F64()
	if d.Err() != nil {
		return d.Err()
	}
	if len(buf) != len(s.buf) {
		return persist.Errf(persist.CodeMismatch, op, "capacity %d, receiver %d", len(buf), len(s.buf))
	}
	if n < 0 || n > len(s.buf) || next < 0 || next >= len(s.buf) {
		return persist.Errf(persist.CodeMalformed, op, "n=%d next=%d cap=%d", n, next, len(s.buf))
	}
	copy(s.buf, buf)
	s.next, s.n, s.sum = next, n, sum
	return nil
}
