// Package mlp is a minimal feed-forward neural network — dense layers,
// unipolar sigmoid activations and stochastic gradient descent with
// momentum — standing in for the WEKA MultilayerPerceptron the paper uses
// as its workload-driven FFN baseline (§VI-A: learning rate 0.3, momentum
// 0.2, unipolar sigmoid).
//
// The network regresses a single output in [0,1]; the FFN estimator feeds
// it normalized query features and rescales the output to a selectivity.
package mlp

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes the network shape and trainer.
type Config struct {
	// Inputs is the input dimension.
	Inputs int
	// Hidden lists hidden-layer widths, e.g. {16, 8}.
	Hidden []int
	// Outputs is the output dimension (the FFN estimator uses 1).
	Outputs int
	// LearningRate for SGD; the paper's value is 0.3.
	LearningRate float64
	// Momentum coefficient; the paper's value is 0.2.
	Momentum float64
	// Seed for weight initialization, making runs reproducible.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.LearningRate == 0 {
		out.LearningRate = 0.3
	}
	if out.Momentum == 0 {
		out.Momentum = 0.2
	}
	if out.Outputs == 0 {
		out.Outputs = 1
	}
	return out
}

// layer is a dense layer with sigmoid activation.
type layer struct {
	in, out int
	w       []float64 // out × in, row-major
	b       []float64 // out
	dw      []float64 // momentum buffers
	db      []float64

	// forward scratch
	z []float64 // pre-activation
	a []float64 // activation
	// backward scratch
	delta []float64
}

// Network is a feed-forward sigmoid network. Not safe for concurrent use.
type Network struct {
	cfg    Config
	layers []*layer
}

// New constructs a network with Xavier-style uniform initialization.
func New(cfg Config) *Network {
	c := cfg.withDefaults()
	if c.Inputs <= 0 || c.Outputs <= 0 {
		panic(fmt.Sprintf("mlp: need positive inputs/outputs, got %d/%d", c.Inputs, c.Outputs))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	sizes := append([]int{c.Inputs}, c.Hidden...)
	sizes = append(sizes, c.Outputs)
	n := &Network{cfg: c}
	for i := 1; i < len(sizes); i++ {
		in, out := sizes[i-1], sizes[i]
		if in <= 0 || out <= 0 {
			panic(fmt.Sprintf("mlp: layer sizes must be positive, got %v", sizes))
		}
		l := &layer{
			in: in, out: out,
			w: make([]float64, out*in), b: make([]float64, out),
			dw: make([]float64, out*in), db: make([]float64, out),
			z: make([]float64, out), a: make([]float64, out),
			delta: make([]float64, out),
		}
		scale := math.Sqrt(6.0 / float64(in+out))
		for j := range l.w {
			l.w[j] = (rng.Float64()*2 - 1) * scale
		}
		n.layers = append(n.layers, l)
	}
	return n
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs inference and returns the output activations. The returned
// slice is owned by the network and valid until the next call.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.cfg.Inputs {
		panic(fmt.Sprintf("mlp: input dim %d, want %d", len(x), n.cfg.Inputs))
	}
	a := x
	for _, l := range n.layers {
		for o := 0; o < l.out; o++ {
			z := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range a {
				z += row[i] * v
			}
			l.z[o] = z
			l.a[o] = sigmoid(z)
		}
		a = l.a
	}
	return a
}

// Predict returns the first output for input x — the common single-output
// regression case.
func (n *Network) Predict(x []float64) float64 { return n.Forward(x)[0] }

// Train performs one SGD-with-momentum step on a single example and returns
// the example's pre-update squared error. Targets must be in (0,1) for the
// sigmoid output to reach them.
func (n *Network) Train(x, target []float64) float64 {
	out := n.Forward(x)
	if len(target) != len(out) {
		panic(fmt.Sprintf("mlp: target dim %d, want %d", len(target), len(out)))
	}
	// Output deltas: dE/dz = (a - t) * a * (1 - a) for MSE + sigmoid.
	last := n.layers[len(n.layers)-1]
	loss := 0.0
	for o := range out {
		err := out[o] - target[o]
		loss += err * err
		last.delta[o] = err * out[o] * (1 - out[o])
	}
	// Backpropagate deltas.
	for li := len(n.layers) - 2; li >= 0; li-- {
		l, next := n.layers[li], n.layers[li+1]
		for i := 0; i < l.out; i++ {
			sum := 0.0
			for o := 0; o < next.out; o++ {
				sum += next.w[o*next.in+i] * next.delta[o]
			}
			a := l.a[i]
			l.delta[i] = sum * a * (1 - a)
		}
	}
	// Apply gradients with momentum. The input to layer 0 is x; to layer k
	// it is layer k-1's activation.
	prev := x
	for _, l := range n.layers {
		lr, mom := n.cfg.LearningRate, n.cfg.Momentum
		for o := 0; o < l.out; o++ {
			d := l.delta[o]
			row := l.w[o*l.in : (o+1)*l.in]
			drow := l.dw[o*l.in : (o+1)*l.in]
			for i, v := range prev {
				step := -lr*d*v + mom*drow[i]
				drow[i] = step
				row[i] += step
			}
			step := -lr*d + mom*l.db[o]
			l.db[o] = step
			l.b[o] += step
		}
		prev = l.a
	}
	return loss
}

// fitPatience is how many consecutive non-improving epochs Fit tolerates
// before stopping. Generous enough to ride out the flat plateau sigmoid
// nets show early in training (XOR sits near loss 0.17 for dozens of
// epochs before breaking symmetry).
const fitPatience = 60

// Fit trains over the dataset for at most epochs passes, shuffling each
// epoch with the network's seed, and stops early once the mean epoch loss
// stops improving by more than tol (the paper trains "until the
// generalization gap stops shrinking"). It returns the epochs actually run
// and the final mean loss.
func (n *Network) Fit(xs [][]float64, ys [][]float64, epochs int, tol float64) (int, float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("mlp: %d inputs vs %d targets", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(n.cfg.Seed + 1))
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	best := math.Inf(1)
	stall := 0
	var mean float64
	e := 0
	for ; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			total += n.Train(xs[idx], ys[idx])
		}
		mean = total / float64(len(xs))
		if best-mean > tol {
			best = mean
			stall = 0
		} else {
			stall++
			if stall >= fitPatience {
				e++
				break
			}
		}
	}
	return e, mean
}

// NumParameters returns the total weight+bias count, a proxy for the FFN's
// memory footprint in the budget experiment.
func (n *Network) NumParameters() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}
