package mlp

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapeAndRange(t *testing.T) {
	n := New(Config{Inputs: 3, Hidden: []int{5, 4}, Outputs: 2, Seed: 1})
	out := n.Forward([]float64{0.1, 0.5, 0.9})
	if len(out) != 2 {
		t.Fatalf("output dim = %d", len(out))
	}
	for _, v := range out {
		if v <= 0 || v >= 1 || math.IsNaN(v) {
			t.Errorf("sigmoid output out of (0,1): %v", v)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(Config{Inputs: 2, Hidden: []int{4}, Seed: 7})
	b := New(Config{Inputs: 2, Hidden: []int{4}, Seed: 7})
	x := []float64{0.3, 0.6}
	if a.Predict(x) != b.Predict(x) {
		t.Error("same seed must give identical networks")
	}
	c := New(Config{Inputs: 2, Hidden: []int{4}, Seed: 8})
	if a.Predict(x) == c.Predict(x) {
		t.Error("different seeds should differ")
	}
}

func TestLearnsXOR(t *testing.T) {
	// The classic non-linearly-separable sanity check.
	n := New(Config{Inputs: 2, Hidden: []int{8}, Outputs: 1, Seed: 3})
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := [][]float64{{0.1}, {0.9}, {0.9}, {0.1}}
	epochs, loss := n.Fit(xs, ys, 20000, 1e-9)
	if loss > 0.01 {
		t.Fatalf("XOR not learned after %d epochs: loss %v", epochs, loss)
	}
	for i, x := range xs {
		p := n.Predict(x)
		if math.Abs(p-ys[i][0]) > 0.2 {
			t.Errorf("xor(%v) = %v, want ~%v", x, p, ys[i][0])
		}
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	// y = 0.2 + 0.5*x1 + 0.2*x2, inputs in [0,1].
	rng := rand.New(rand.NewSource(9))
	var xs, ys [][]float64
	for i := 0; i < 400; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, []float64{0.2 + 0.5*x1 + 0.2*x2})
	}
	n := New(Config{Inputs: 2, Hidden: []int{6}, Seed: 11})
	_, loss := n.Fit(xs, ys, 500, 1e-8)
	if loss > 0.002 {
		t.Fatalf("linear fn not learned: loss %v", loss)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	n := New(Config{Inputs: 1, Hidden: []int{4}, Seed: 2})
	x, y := []float64{0.5}, []float64{0.8}
	first := n.Train(x, y)
	var last float64
	for i := 0; i < 200; i++ {
		last = n.Train(x, y)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestFitEarlyStop(t *testing.T) {
	// A constant target is learned almost immediately; Fit should stop far
	// before the epoch cap.
	xs := [][]float64{{0.1}, {0.4}, {0.9}}
	ys := [][]float64{{0.5}, {0.5}, {0.5}}
	n := New(Config{Inputs: 1, Hidden: []int{3}, Seed: 4})
	epochs, _ := n.Fit(xs, ys, 100000, 1e-7)
	if epochs >= 100000 {
		t.Errorf("early stop never triggered (%d epochs)", epochs)
	}
}

func TestFitEmptyDataset(t *testing.T) {
	n := New(Config{Inputs: 2, Seed: 1})
	if e, l := n.Fit(nil, nil, 100, 1e-6); e != 0 || l != 0 {
		t.Errorf("empty Fit = (%d, %v)", e, l)
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero inputs":     func() { New(Config{Inputs: 0}) },
		"bad hidden":      func() { New(Config{Inputs: 2, Hidden: []int{0}}) },
		"wrong input dim": func() { New(Config{Inputs: 2, Seed: 1}).Forward([]float64{1}) },
		"wrong target":    func() { New(Config{Inputs: 1, Seed: 1}).Train([]float64{1}, []float64{1, 2}) },
		"mismatched fit":  func() { New(Config{Inputs: 1, Seed: 1}).Fit([][]float64{{1}}, nil, 1, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestNumParameters(t *testing.T) {
	n := New(Config{Inputs: 3, Hidden: []int{5}, Outputs: 2, Seed: 1})
	// (3*5 + 5) + (5*2 + 2) = 20 + 12 = 32
	if got := n.NumParameters(); got != 32 {
		t.Errorf("NumParameters = %d, want 32", got)
	}
}

func TestNoHiddenLayerIsLogisticRegression(t *testing.T) {
	n := New(Config{Inputs: 2, Outputs: 1, Seed: 5})
	xs := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	ys := [][]float64{{0.1}, {0.9}, {0.5}, {0.5}}
	if _, loss := n.Fit(xs, ys, 2000, 1e-9); loss > 0.05 {
		t.Errorf("separable data not fit by perceptron: %v", loss)
	}
}

func BenchmarkPredict(b *testing.B) {
	n := New(Config{Inputs: 8, Hidden: []int{16, 8}, Seed: 1})
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i) / 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Predict(x)
	}
}

func BenchmarkTrain(b *testing.B) {
	n := New(Config{Inputs: 8, Hidden: []int{16, 8}, Seed: 1})
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i) / 8
	}
	y := []float64{0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Train(x, y)
	}
}
