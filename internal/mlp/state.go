package mlp

import "github.com/spatiotext/latest/internal/persist"

// SaveState serializes the learned parameters: per-layer weights, biases
// and momentum buffers. The forward/backward scratch slices are transient
// and not written. Fit reseeds its shuffle RNG from the config on every
// call, so no trainer RNG position needs saving.
func (n *Network) SaveState(e *persist.Enc) {
	e.Int(len(n.layers))
	for _, l := range n.layers {
		e.Int(l.in)
		e.Int(l.out)
		e.F64s(l.w)
		e.F64s(l.b)
		e.F64s(l.dw)
		e.F64s(l.db)
	}
}

// LoadState restores parameters into a network built with the same shape.
// On error the receiver must be discarded.
func (n *Network) LoadState(d *persist.Dec) error {
	const op = "mlp network"
	count := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if count != len(n.layers) {
		return persist.Errf(persist.CodeMismatch, op, "%d layers, receiver has %d", count, len(n.layers))
	}
	for li, l := range n.layers {
		in := d.Int()
		out := d.Int()
		w := d.F64s()
		b := d.F64s()
		dw := d.F64s()
		db := d.F64s()
		if d.Err() != nil {
			return d.Err()
		}
		if in != l.in || out != l.out ||
			len(w) != len(l.w) || len(b) != len(l.b) ||
			len(dw) != len(l.dw) || len(db) != len(l.db) {
			return persist.Errf(persist.CodeMismatch, op, "layer %d shape %dx%d, receiver %dx%d", li, in, out, l.in, l.out)
		}
		copy(l.w, w)
		copy(l.b, b)
		copy(l.dw, dw)
		copy(l.db, db)
	}
	return nil
}
