// Package netchaos is a deterministic in-process TCP fault injector for
// tests: a proxy that sits between a client and an upstream server and
// breaks the connection on cue — after an exact number of relayed bytes,
// with added latency, or by going silent without closing.
//
// Determinism is the point. Real networks fail at random moments; tests
// need the failure to land on the same byte every run, so the proxy
// counts bytes per direction and cuts (or stalls) exactly at the
// configured offset. Cutting mid-frame — after a frame header but before
// its payload — is how reconnect and retry logic gets exercised on the
// hard path rather than the tidy close-between-requests path.
package netchaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnPlan scripts the faults for one proxied connection. The zero plan
// relays faithfully. Byte counts are cumulative per direction from the
// moment the connection is accepted; 0 means "never".
type ConnPlan struct {
	// Delay is added before each chunk is relayed, in both directions.
	// Models link latency; lets deadline tests run against a slow path.
	Delay time.Duration

	// CutDownstreamAfter closes both sides of the connection once this
	// many upstream→client bytes have been relayed. Landing it inside a
	// response frame simulates a server that dies mid-reply.
	CutDownstreamAfter int64

	// CutUpstreamAfter closes both sides once this many client→upstream
	// bytes have been relayed. Landing it inside a request frame
	// simulates a client link dying mid-send.
	CutUpstreamAfter int64

	// BlackholeAfter stops relaying in both directions after this many
	// total bytes (either direction) without closing anything: the
	// connection looks alive but nothing moves. Models a partitioned
	// link; only deadlines get a test out of it.
	BlackholeAfter int64
}

// Proxy is a TCP relay in front of a fixed upstream address. Each
// accepted connection n gets plans[n]; past the end of the slice the
// last plan repeats (an empty slice relays everything faithfully).
type Proxy struct {
	ln       net.Listener
	upstream string
	plans    []ConnPlan
	conns    atomic.Int64
	wg       sync.WaitGroup
	closed   atomic.Bool

	mu     sync.Mutex
	active []net.Conn
}

// New starts a proxy on a loopback port relaying to upstream.
func New(upstream string, plans ...ConnPlan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, upstream: upstream, plans: plans}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the client dials.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns reports how many connections the proxy has accepted. Tests use
// the delta to prove a client redialed (or didn't).
func (p *Proxy) Conns() int64 { return p.conns.Load() }

// Close stops accepting and waits for in-flight relays to wind down.
// In-flight connections are severed, not drained — without that, a relay
// pipe parked in Read on a healthy connection would hold Close hostage.
func (p *Proxy) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.ln.Close()
	p.mu.Lock()
	for _, c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// track registers a socket to be severed by Close. Closing an already
// closed conn is harmless, so relays never bother deregistering.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.active = append(p.active, c)
	sever := p.closed.Load()
	p.mu.Unlock()
	// Racing with Close: the sweep may already have run, so sever here.
	if sever {
		c.Close()
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.conns.Add(1) - 1
		plan := ConnPlan{}
		if n := len(p.plans); n > 0 {
			if idx >= int64(n) {
				plan = p.plans[n-1]
			} else {
				plan = p.plans[idx]
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.relay(client, plan)
		}()
	}
}

// relay shuttles bytes between the client and a fresh upstream
// connection, applying the plan. Either cut threshold closes both
// sockets so each end observes the failure promptly.
func (p *Proxy) relay(client net.Conn, plan ConnPlan) {
	defer client.Close()
	p.track(client)
	server, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return
	}
	defer server.Close()
	p.track(server)

	st := &relayState{plan: plan, client: client, server: server}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); st.pipe(server, client, plan.CutUpstreamAfter) }()
	go func() { defer wg.Done(); st.pipe(client, server, plan.CutDownstreamAfter) }()
	wg.Wait()
}

type relayState struct {
	plan    ConnPlan
	client  net.Conn
	server  net.Conn
	total   atomic.Int64
	blocked atomic.Bool
}

// severBoth closes both sockets: a cut must be visible to each end, not
// just the direction that tripped it.
func (st *relayState) severBoth() {
	st.client.Close()
	st.server.Close()
}

// pipe copies src→dst until EOF, a cut threshold, or a blackhole. cut is
// the cumulative byte count in THIS direction at which to sever; 0
// disables. Writes are split so the cut lands exactly at the threshold —
// a frame can be torn at any byte, not just chunk boundaries.
func (st *relayState) pipe(dst, src net.Conn, cut int64) {
	var sent int64
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if st.plan.Delay > 0 {
				time.Sleep(st.plan.Delay)
			}
			chunk := buf[:n]
			if cut > 0 && sent+int64(n) >= cut {
				chunk = buf[:cut-sent]
			}
			if st.plan.BlackholeAfter > 0 {
				if t := st.total.Add(int64(len(chunk))); t >= st.plan.BlackholeAfter {
					st.blocked.Store(true)
				}
			}
			if st.blocked.Load() {
				// Swallow silently: the link is partitioned, both ends
				// still believe the connection is up.
				continue
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			sent += int64(len(chunk))
			if cut > 0 && sent >= cut {
				st.severBoth()
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate EOF downstream without killing the
			// reverse direction (a server may still be flushing replies).
			if cw, ok := dst.(*net.TCPConn); ok {
				cw.CloseWrite()
			}
			return
		}
	}
}
