package netchaos

import (
	"bytes"
	"io"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// echoUpstream is a real TCP server that echoes everything back. Returns
// its address and a count of connections it accepted.
func echoUpstream(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepted atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func() {
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	return ln.Addr().String(), &accepted
}

// TestFaithfulRelay: the zero plan must be invisible — bytes round-trip
// unmodified and in full.
func TestFaithfulRelay(t *testing.T) {
	addr, _ := echoUpstream(t)
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	msg := bytes.Repeat([]byte("spatiotext"), 100)
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("relay corrupted the stream")
	}
	if p.Conns() != 1 {
		t.Fatalf("Conns = %d, want 1", p.Conns())
	}
}

// TestCutDownstreamExactByte: the cut must land on the configured byte,
// not a chunk boundary — the client sees exactly N bytes then a dead
// socket.
func TestCutDownstreamExactByte(t *testing.T) {
	addr, _ := echoUpstream(t)
	const cut = 37
	p, err := New(addr, ConnPlan{CutDownstreamAfter: cut})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(nc)
	if len(got) != cut {
		t.Fatalf("client received %d bytes, want exactly %d", len(got), cut)
	}
}

// TestCutUpstreamExactByte: the upstream server receives exactly N bytes
// of the client's send before the connection dies under it.
func TestCutUpstreamExactByte(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan int, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		b, _ := io.ReadAll(nc)
		received <- len(b)
	}()

	const cut = 41
	p, err := New(ln.Addr().String(), ConnPlan{CutUpstreamAfter: cut})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write(bytes.Repeat([]byte("y"), 100))
	if got := <-received; got != cut {
		t.Fatalf("upstream received %d bytes, want exactly %d", got, cut)
	}
	// The cut severs the client side too — a read must fail promptly
	// rather than hang on a half-dead proxy.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("client read succeeded after upstream cut")
	} else if os.IsTimeout(err) {
		t.Fatal("client socket left hanging instead of closed")
	}
}

// TestBlackhole: past the threshold the connection goes silent without
// closing — reads time out rather than erroring.
func TestBlackhole(t *testing.T) {
	addr, _ := echoUpstream(t)
	p, err := New(addr, ConnPlan{BlackholeAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// 20 bytes in one write: threshold trips inside the chunk, nothing of
	// it is relayed, so nothing echoes back.
	nc.Write(bytes.Repeat([]byte("z"), 20))
	nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	_, rerr := nc.Read(buf)
	if rerr == nil {
		t.Fatal("read returned data through a blackholed link")
	}
	if !os.IsTimeout(rerr) {
		t.Fatalf("read error = %v, want timeout (connection must stay open, just silent)", rerr)
	}
}

// TestPlanPerConnection: each accepted connection takes its own plan and
// the last plan repeats for the overflow.
func TestPlanPerConnection(t *testing.T) {
	addr, _ := echoUpstream(t)
	p, err := New(addr,
		ConnPlan{CutDownstreamAfter: 1}, // conn 0: nearly useless
		ConnPlan{},                      // conn 1+ : faithful
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	roundTrip := func() (int, error) {
		nc, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.Write([]byte("hello"))
		// Half-close so the echo upstream sees EOF, finishes its copy and
		// closes — EOF then propagates back and ReadAll returns promptly.
		nc.(*net.TCPConn).CloseWrite()
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		b, _ := io.ReadAll(nc)
		return len(b), nil
	}
	if n, _ := roundTrip(); n != 1 {
		t.Fatalf("conn 0 relayed %d bytes, want 1", n)
	}
	for i := 1; i <= 2; i++ {
		if n, _ := roundTrip(); n != 5 {
			t.Fatalf("conn %d relayed %d bytes, want 5 (last plan must repeat)", i, n)
		}
	}
	if p.Conns() != 3 {
		t.Fatalf("Conns = %d, want 3", p.Conns())
	}
}
