package persist

import (
	"encoding/binary"
	"math"
)

// codec.go holds the binary primitives every state encoder in the
// repository shares: little-endian fixed-width integers, IEEE-754 floats,
// length-prefixed strings and byte blobs, and homogeneous slices. The
// decoder is sticky-error and bounds-checked so a corrupted or adversarial
// payload can neither panic nor force a huge allocation: every
// length-prefixed read is validated against the bytes actually remaining.

// Enc appends binary values to a growing buffer. The zero value is ready
// to use.
type Enc struct {
	b []byte
}

// Data returns the encoded bytes.
func (e *Enc) Data() []byte { return e.b }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.b) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends an IEEE-754 double, bit-exact.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed UTF-8 string (u32 length).
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Blob appends a length-prefixed byte slice (u32 length).
func (e *Enc) Blob(p []byte) {
	e.U32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// F64s appends a length-prefixed []float64.
func (e *Enc) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// U32s appends a length-prefixed []uint32.
func (e *Enc) U32s(vs []uint32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(v)
	}
}

// Strs appends a length-prefixed []string.
func (e *Enc) Strs(vs []string) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Str(v)
	}
}

// Dec reads binary values from a buffer with a sticky error: the first
// failed read poisons the decoder and every later read returns the zero
// value. Callers check Err (or Done) once at the end instead of after
// every field.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec wraps data for decoding.
func NewDec(data []byte) *Dec { return &Dec{b: data} }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns how many bytes are left to read.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Done returns the sticky error, or a typed malformed error when bytes
// remain unread — a section must be consumed exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return Errf(CodeMalformed, "decode", "%d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// fail poisons the decoder.
func (d *Dec) fail(op string) {
	if d.err == nil {
		d.err = Errf(CodeTruncated, "decode", "%s past end at offset %d", op, d.off)
	}
}

// take returns the next n bytes, or nil after poisoning the decoder.
func (d *Dec) take(n int, op string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(op)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	p := d.take(1, "u8")
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	p := d.take(2, "u16")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	p := d.take(4, "u32")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	p := d.take(8, "u64")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads an IEEE-754 double.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// length reads a u32 length prefix and validates that `unit` bytes per
// element still fit in the remaining buffer, bounding allocations.
func (d *Dec) length(unit int, op string) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*unit > d.Remaining() {
		if d.err == nil {
			d.err = Errf(CodeMalformed, "decode", "%s length %d exceeds %d remaining bytes", op, n, d.Remaining())
		}
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.length(1, "string")
	p := d.take(n, "string")
	if p == nil {
		return ""
	}
	return string(p)
}

// Blob reads a length-prefixed byte slice (copied).
func (d *Dec) Blob() []byte {
	n := d.length(1, "blob")
	p := d.take(n, "blob")
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// F64s reads a length-prefixed []float64.
func (d *Dec) F64s() []float64 {
	n := d.length(8, "[]float64")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Dec) I64s() []int64 {
	n := d.length(8, "[]int64")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// U32s reads a length-prefixed []uint32.
func (d *Dec) U32s() []uint32 {
	n := d.length(4, "[]uint32")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.U32()
	}
	return out
}

// Strs reads a length-prefixed []string.
func (d *Dec) Strs() []string {
	n := d.length(4, "[]string")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.Str()
	}
	return out
}
