package persist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// fault.go is the deterministic disk-fault injector: a Store wrapper that
// fails chosen operations on chosen calls, so the durability stack's
// degraded-mode machinery can be driven through ENOSPC-style append
// failures, fsync errors, torn writes and unreadable artifacts without a
// real failing disk. It mirrors the internal/resilience injector design —
// a rule list evaluated per call, first firing rule wins, SetEnabled for
// runtime arming — but draws no randomness at all: rules trigger on exact
// call counts, so a chaos run replays bit-identically under -race and
// across platforms.

// FaultOp names a Store (or AppendFile) operation for rule matching.
type FaultOp uint8

const (
	// FaultAnyOp matches every operation.
	FaultAnyOp FaultOp = iota
	// FaultSave matches Store.Save (atomic snapshot writes).
	FaultSave
	// FaultLoad matches Store.Load.
	FaultLoad
	// FaultList matches Store.List.
	FaultList
	// FaultRemove matches Store.Remove.
	FaultRemove
	// FaultOpenAppend matches Store.OpenAppend (WAL open/rotation).
	FaultOpenAppend
	// FaultAppend matches AppendFile.Append (WAL record writes).
	FaultAppend
	// FaultSync matches AppendFile.Sync (WAL fsync batches; Close syncs
	// too, so a sync rule can also fail Close).
	FaultSync
)

// String implements fmt.Stringer.
func (o FaultOp) String() string {
	switch o {
	case FaultAnyOp:
		return "any"
	case FaultSave:
		return "save"
	case FaultLoad:
		return "load"
	case FaultList:
		return "list"
	case FaultRemove:
		return "remove"
	case FaultOpenAppend:
		return "open-append"
	case FaultAppend:
		return "append"
	case FaultSync:
		return "sync"
	default:
		return fmt.Sprintf("FaultOp(%d)", uint8(o))
	}
}

// FaultKind is how a firing rule manifests.
type FaultKind uint8

const (
	// FaultFail returns an injected error without touching the store —
	// the ENOSPC/EIO shape: the operation simply did not happen.
	FaultFail FaultKind = iota
	// FaultShortWrite (Append only) writes a prefix of the record and
	// then errors — the torn-write shape: garbage lands on disk and the
	// recovery path's CRC framing must truncate it away. For other ops it
	// behaves like FaultFail.
	FaultShortWrite
)

// ErrInjected is wrapped by every error a FaultStore injects, so tests
// can tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// injectedErr builds the op-shaped injected error. The detail strings
// mimic the errno text a real disk failure would carry.
func injectedErr(op FaultOp, name string) error {
	detail := "input/output error"
	switch op {
	case FaultSave, FaultAppend:
		detail = "no space left on device"
	case FaultRemove:
		detail = "operation not permitted"
	}
	return fmt.Errorf("%w: %s %s: %s", ErrInjected, op, name, detail)
}

// FaultRule fires an injected fault on deterministic call counts.
type FaultRule struct {
	// Op restricts the rule to one operation; FaultAnyOp matches all.
	Op FaultOp
	// Name restricts the rule to one file; empty matches all.
	Name string
	// Kind is the failure shape (FaultFail default).
	Kind FaultKind
	// After arms the rule only once this many matching calls have been
	// seen: After 0 fires from the first matching call, After N lets N
	// calls through first.
	After uint64
	// Count expires the rule after it has fired this many times; 0 never
	// expires.
	Count uint64
}

// faultRuleState pairs a rule with its per-rule deterministic counters.
type faultRuleState struct {
	FaultRule
	seen  uint64 // matching calls observed
	fired uint64 // faults injected
}

// matches reports whether the rule covers this call.
func (r *faultRuleState) matches(op FaultOp, name string) bool {
	if r.Op != FaultAnyOp && r.Op != op {
		return false
	}
	return r.Name == "" || r.Name == name
}

// FaultStore wraps a Store with rule-driven fault injection. All Store
// methods pass through to the inner store unless a rule fires; OpenAppend
// returns a FaultWAL so append/fsync failures inject at the WAL layer.
// Safe for concurrent use; counters are store-wide so rules stay
// deterministic across WAL rotations.
type FaultStore struct {
	inner   Store
	enabled atomic.Bool

	mu       sync.Mutex
	rules    []*faultRuleState
	injected atomic.Uint64
}

// NewFaultStore wraps inner with the given rules. The store starts
// enabled; SetEnabled(false) turns every rule into a no-op (calls are not
// counted while disabled, so re-enabling resumes the same deterministic
// schedule).
func NewFaultStore(inner Store, rules ...FaultRule) *FaultStore {
	fs := &FaultStore{inner: inner}
	for _, r := range rules {
		fs.rules = append(fs.rules, &faultRuleState{FaultRule: r})
	}
	fs.enabled.Store(true)
	return fs
}

// SetEnabled flips injection at runtime. Safe for concurrent use.
func (fs *FaultStore) SetEnabled(on bool) { fs.enabled.Store(on) }

// Injected returns how many faults have fired.
func (fs *FaultStore) Injected() uint64 { return fs.injected.Load() }

// Inner returns the wrapped store (tests corrupt or inspect through it).
func (fs *FaultStore) Inner() Store { return fs.inner }

// decide evaluates the rules for one call: every matching rule advances
// its counter, and the first armed, unexpired match fires. Purely
// counter-driven — no RNG — so a fault schedule is a function of the call
// sequence alone.
func (fs *FaultStore) decide(op FaultOp, name string) (FaultKind, bool) {
	if !fs.enabled.Load() {
		return 0, false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var kind FaultKind
	fired := false
	for _, r := range fs.rules {
		if !r.matches(op, name) {
			continue
		}
		r.seen++
		if fired {
			continue // first firing rule wins, later matches only count
		}
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		kind = r.Kind
		fired = true
	}
	if fired {
		fs.injected.Add(1)
	}
	return kind, fired
}

// Save implements Store.
func (fs *FaultStore) Save(name string, data []byte) error {
	if _, fire := fs.decide(FaultSave, name); fire {
		return injectedErr(FaultSave, name)
	}
	return fs.inner.Save(name, data)
}

// Load implements Store.
func (fs *FaultStore) Load(name string) ([]byte, error) {
	if _, fire := fs.decide(FaultLoad, name); fire {
		return nil, injectedErr(FaultLoad, name)
	}
	return fs.inner.Load(name)
}

// List implements Store.
func (fs *FaultStore) List() ([]string, error) {
	if _, fire := fs.decide(FaultList, ""); fire {
		return nil, injectedErr(FaultList, "store")
	}
	return fs.inner.List()
}

// Remove implements Store.
func (fs *FaultStore) Remove(name string) error {
	if _, fire := fs.decide(FaultRemove, name); fire {
		return injectedErr(FaultRemove, name)
	}
	return fs.inner.Remove(name)
}

// OpenAppend implements Store, wrapping the handle in a FaultWAL so
// append and fsync rules apply to it.
func (fs *FaultStore) OpenAppend(name string, truncateTo int64) (AppendFile, error) {
	if _, fire := fs.decide(FaultOpenAppend, name); fire {
		return nil, injectedErr(FaultOpenAppend, name)
	}
	f, err := fs.inner.OpenAppend(name, truncateTo)
	if err != nil {
		return nil, err
	}
	return &FaultWAL{inner: f, fs: fs, name: name}, nil
}

// FaultWAL is the fault-injecting AppendFile a FaultStore's OpenAppend
// returns: Append and Sync consult the store's rules (counters are shared
// store-wide, so a schedule spans WAL rotations). A FaultShortWrite
// append writes roughly half the record before erroring, leaving a torn
// frame the CRC-checked replay must drop.
type FaultWAL struct {
	inner AppendFile
	fs    *FaultStore
	name  string
}

// Append implements AppendFile.
func (w *FaultWAL) Append(p []byte) error {
	if kind, fire := w.fs.decide(FaultAppend, w.name); fire {
		if kind == FaultShortWrite && len(p) > 1 {
			// A torn write: part of the frame lands, then the device
			// fails. Ignore the inner error — the injected one wins.
			_ = w.inner.Append(p[:len(p)/2])
		}
		return injectedErr(FaultAppend, w.name)
	}
	return w.inner.Append(p)
}

// Sync implements AppendFile.
func (w *FaultWAL) Sync() error {
	if _, fire := w.fs.decide(FaultSync, w.name); fire {
		return injectedErr(FaultSync, w.name)
	}
	return w.inner.Sync()
}

// Close implements AppendFile. Close fsyncs, so a sync rule fails it.
func (w *FaultWAL) Close() error {
	if _, fire := w.fs.decide(FaultSync, w.name); fire {
		w.inner.Close() // release the handle regardless
		return injectedErr(FaultSync, w.name)
	}
	return w.inner.Close()
}
