package persist

import (
	"errors"
	"testing"
)

// fault_test.go pins the deterministic fault injector: exact-call
// triggering, expiry, torn-write shapes, and the naming helpers the
// generation-fallback recovery depends on.

func TestFaultStoreAppendRule(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultRule{Op: FaultAppend, After: 2, Count: 3})
	f, err := fs.OpenAppend("feed-00000000.wal", -1)
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte("0123456789")
	var outcomes []bool
	for i := 0; i < 8; i++ {
		outcomes = append(outcomes, f.Append(rec) == nil)
	}
	// After=2 lets two appends through, Count=3 fails the next three, then
	// the rule is spent and appends succeed again.
	want := []bool{true, true, false, false, false, true, true, true}
	for i, ok := range outcomes {
		if ok != want[i] {
			t.Fatalf("append %d ok=%v, want %v (all: %v)", i, ok, want[i], outcomes)
		}
	}
	if got := fs.Injected(); got != 3 {
		t.Fatalf("Injected() = %d, want 3", got)
	}
}

func TestFaultStoreErrInjected(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultRule{Op: FaultSave})
	err := fs.Save(SnapshotName, []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Save error %v is not ErrInjected", err)
	}
	// The typed persist code must be absent: an injected disk error is an
	// I/O failure, not a format refusal.
	if code := CodeOf(err); code != 0 {
		t.Fatalf("injected error carries persist code %v", code)
	}
}

func TestFaultStoreShortWriteLeavesTornFrame(t *testing.T) {
	inner := NewMemStore()
	fs := NewFaultStore(inner, FaultRule{Op: FaultAppend, Kind: FaultShortWrite, After: 1, Count: 1})
	wal, _, _, err := OpenWAL(fs, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Append([]byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Append([]byte("second-record")); err == nil {
		t.Fatal("short-write append did not error")
	}
	// The torn frame landed: the file is longer than one clean record but
	// parses back to exactly that record.
	data, err := inner.Load(WALName(0))
	if err != nil {
		t.Fatal(err)
	}
	records, tail := ParseWAL(data)
	if len(records) != 1 || string(records[0]) != "first-record" {
		t.Fatalf("parsed %d records, want the 1 clean one", len(records))
	}
	if tail.DroppedBytes == 0 {
		t.Fatal("short write left no torn tail to drop")
	}
}

func TestFaultStoreSetEnabled(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultRule{Op: FaultSave})
	fs.SetEnabled(false)
	if err := fs.Save("a", nil); err != nil {
		t.Fatalf("disabled injector still fired: %v", err)
	}
	fs.SetEnabled(true)
	if err := fs.Save("a", nil); err == nil {
		t.Fatal("re-enabled injector did not fire")
	}
}

func TestFaultStoreNameAndOpMatching(t *testing.T) {
	fs := NewFaultStore(NewMemStore(),
		FaultRule{Op: FaultSync, Name: "feed-00000001.wal"})
	f0, err := fs.OpenAppend(WALName(0), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f0.Sync(); err != nil {
		t.Fatalf("sync on unmatched name failed: %v", err)
	}
	f1, err := fs.OpenAppend(WALName(1), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Sync(); err == nil {
		t.Fatal("sync on matched name did not fail")
	}
	if err := f1.Append([]byte("x")); err != nil {
		t.Fatalf("append must not match a sync rule: %v", err)
	}
}

func TestSnapshotNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{0, 1, 7, 99999999, 1 << 40} {
		name := SnapshotNameFor(gen)
		got, ok := ParseSnapshotName(name)
		if !ok || got != gen {
			t.Fatalf("ParseSnapshotName(%q) = %d,%v want %d,true", name, got, ok, gen)
		}
	}
	for _, bad := range []string{SnapshotName, "snapshot-.snap", "snapshot-x.snap", "feed-00000001.wal", "snapshot-00000001"} {
		if _, ok := ParseSnapshotName(bad); ok {
			t.Fatalf("ParseSnapshotName accepted %q", bad)
		}
	}
}

func TestWALNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{0, 3, 12345678} {
		name := WALName(gen)
		got, ok := ParseWALName(name)
		if !ok || got != gen {
			t.Fatalf("ParseWALName(%q) = %d,%v want %d,true", name, got, ok, gen)
		}
	}
	for _, bad := range []string{"feed-.wal", "feed-x.wal", SnapshotName, "feed-00000001"} {
		if _, ok := ParseWALName(bad); ok {
			t.Fatalf("ParseWALName accepted %q", bad)
		}
	}
}
